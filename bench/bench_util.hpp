// bench_util.hpp -- shared helpers for the paper-reproduction benches.
//
// Every bench binary regenerates one table or figure of the paper
// (see DESIGN.md Sec. 5) and prints rows in the same structure the paper
// reports.  Absolute numbers are not comparable to the paper's Catalyst
// cluster -- the *shape* (who wins, by what factor, where crossovers fall)
// is what EXPERIMENTS.md checks.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>

namespace tripoll::bench {

/// CI smoke mode for the micro benches: small problem sizes and short
/// measurement windows (seconds, not minutes).  Enabled by a `--quick`
/// argument (stripped from argv so Google Benchmark never sees it) or the
/// TRIPOLL_BENCH_QUICK environment variable.
[[nodiscard]] inline bool quick_mode(int& argc, char** argv) {
  bool quick = false;
  if (const char* s = std::getenv("TRIPOLL_BENCH_QUICK")) {
    quick = s[0] != '\0' && s[0] != '0';
  }
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--quick") {
      quick = true;
      continue;
    }
    argv[out++] = argv[i];
  }
  argc = out;
  return quick;
}

/// Scale adjustment for every bench: TRIPOLL_BENCH_SCALE_DELTA shifts all
/// graph sizes by a power of two (negative = faster runs).
[[nodiscard]] inline int scale_delta_from_env(int default_delta = 0) {
  if (const char* s = std::getenv("TRIPOLL_BENCH_SCALE_DELTA")) {
    return std::atoi(s);
  }
  return default_delta;
}

/// Rank counts used by scaling benches, bounded by hardware concurrency on
/// this single-node simulation; override with TRIPOLL_BENCH_MAX_RANKS.
[[nodiscard]] inline int max_ranks_from_env(int default_max = 16) {
  if (const char* s = std::getenv("TRIPOLL_BENCH_MAX_RANKS")) {
    return std::atoi(s);
  }
  return default_max;
}

[[nodiscard]] inline std::string human_bytes(std::uint64_t bytes) {
  char buf[32];
  if (bytes >= 1024ull * 1024 * 1024) {
    std::snprintf(buf, sizeof buf, "%.2f GB", static_cast<double>(bytes) / (1024.0 * 1024 * 1024));
  } else if (bytes >= 1024ull * 1024) {
    std::snprintf(buf, sizeof buf, "%.1f MB", static_cast<double>(bytes) / (1024.0 * 1024));
  } else if (bytes >= 1024) {
    std::snprintf(buf, sizeof buf, "%.1f KB", static_cast<double>(bytes) / 1024.0);
  } else {
    std::snprintf(buf, sizeof buf, "%llu B", (unsigned long long)bytes);
  }
  return buf;
}

[[nodiscard]] inline std::string human_count(std::uint64_t n) {
  char buf[32];
  if (n >= 1'000'000'000ull) {
    std::snprintf(buf, sizeof buf, "%.2fB", static_cast<double>(n) / 1e9);
  } else if (n >= 1'000'000ull) {
    std::snprintf(buf, sizeof buf, "%.2fM", static_cast<double>(n) / 1e6);
  } else if (n >= 10'000ull) {
    std::snprintf(buf, sizeof buf, "%.1fK", static_cast<double>(n) / 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%llu", (unsigned long long)n);
  }
  return buf;
}

inline void print_header(const char* title, const char* paper_ref) {
  std::printf("\n=== %s ===\n", title);
  std::printf("(reproduces %s; shapes comparable, absolute numbers are "
              "single-node simulation)\n\n", paper_ref);
}

inline void print_rule(int width = 100) {
  for (int i = 0; i < width; ++i) std::printf("-");
  std::printf("\n");
}

}  // namespace tripoll::bench
