// bench_fig4_strong_scaling -- reproduces Fig. 4 (strong scaling of the
// Push-Pull algorithm's three phases on four graphs).
//
// For each stand-in dataset and rank count: wall time of the dry-run
// (push-vs-pull decision pass), push phase and pull phase, plus the overall
// speedup relative to the smallest configuration.  The paper's shape: good
// scaling to mid rank counts, then stagnation as shrinking per-rank edge
// counts remove aggregation opportunities (the pull phase fades; cf. the
// Table 3 pulls-per-rank collapse).
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "comm/runtime.hpp"
#include "core/callbacks.hpp"
#include "core/survey.hpp"
#include "gen/presets.hpp"

namespace cb = tripoll::callbacks;
namespace comm = tripoll::comm;
namespace gen = tripoll::gen;

int main() {
  const int delta = tripoll::bench::scale_delta_from_env(-1);
  const int max_ranks = tripoll::bench::max_ranks_from_env(16);

  tripoll::bench::print_header(
      "Fig. 4: strong scaling of Push-Pull phases (triangle counting)", "Fig. 4");
  std::printf("%-22s %6s %10s %10s %10s %10s %9s %10s\n", "graph", "ranks",
              "dry-run(s)", "push(s)", "pull(s)", "total(s)", "speedup", "pulls/rank");
  tripoll::bench::print_rule(96);

  std::vector<int> rank_counts;
  for (int r = 2; r <= max_ranks; r *= 2) rank_counts.push_back(r);

  for (const auto& spec : gen::standard_suite(delta)) {
    double base_time = 0.0;
    for (const int ranks : rank_counts) {
      tripoll::survey_result result;
      comm::runtime::run(ranks, [&](comm::communicator& c) {
        gen::plain_graph g(c);
        gen::build_dataset(c, g, spec);
        cb::count_context ctx;
        result = tripoll::triangle_survey(g, cb::count_callback{}, ctx,
                                          {tripoll::survey_mode::push_pull});
      });
      if (ranks == rank_counts.front()) base_time = result.total.seconds;
      std::printf("%-22s %6d %10.3f %10.3f %10.3f %10.3f %8.2fx %10.1f\n",
                  spec.name.c_str(), ranks, result.dry_run.seconds,
                  result.push.seconds, result.pull.seconds, result.total.seconds,
                  base_time / result.total.seconds, result.pulls_per_rank(ranks));
    }
    tripoll::bench::print_rule(96);
  }
  return 0;
}
