// bench_micro_serialization -- microbenchmark of the cereal stand-in
// (supporting Sec. 4.1.2: serialization cost is "a small amount of
// computing overhead") and of the buffer pool that recycles transport
// payload storage.
//
// Run with --quick (or TRIPOLL_BENCH_QUICK=1) for the CI smoke: small
// sizes, short measurement windows, same benchmark names.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <string>
#include <tuple>
#include <vector>

#include "bench_micro_main.hpp"
#include "serial/buffer.hpp"
#include "serial/serialize.hpp"

namespace ts = tripoll::serial;

namespace {

void BM_PackU64(benchmark::State& state) {
  ts::byte_buffer buf(1 << 20);
  std::uint64_t v = 0xDEADBEEF;
  for (auto _ : state) {
    buf.clear();
    for (int i = 0; i < 1024; ++i) ts::pack(buf, v);
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetBytesProcessed(state.iterations() * 1024 * sizeof(v));
}

void BM_PackString(benchmark::State& state) {
  ts::byte_buffer buf(1 << 20);
  const std::string s(static_cast<std::size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    buf.clear();
    for (int i = 0; i < 256; ++i) ts::pack(buf, s);
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetBytesProcessed(state.iterations() * 256 * static_cast<std::int64_t>(s.size()));
}

void BM_PackVectorPod(benchmark::State& state) {
  ts::byte_buffer buf(1 << 22);
  std::vector<std::uint64_t> v(static_cast<std::size_t>(state.range(0)), 42);
  for (auto _ : state) {
    buf.clear();
    ts::pack(buf, v);
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(v.size()) * 8);
}

void BM_RoundtripWedgeMessage(benchmark::State& state) {
  // The hot message of a survey: (handle, q, p, meta, meta, candidates).
  struct candidate {
    std::uint64_t r, deg;
  };
  std::vector<candidate> suffix(static_cast<std::size_t>(state.range(0)),
                                candidate{7, 9});
  ts::byte_buffer buf(1 << 22);
  for (auto _ : state) {
    buf.clear();
    ts::pack(buf, std::uint32_t{3}, std::uint64_t{11}, std::uint64_t{13}, suffix);
    ts::buffer_reader rd(buf.view());
    std::uint32_t h;
    std::uint64_t q, p;
    std::vector<candidate> out;
    ts::unpack(rd, h, q, p, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(suffix.size()) * 16);
}

void BM_RoundtripWedgeMessageSum(benchmark::State& state) {
  // Owning-vector receive path WITH element access (sum), the before side
  // of the zero-copy comparison: unpack copies every candidate into a
  // fresh vector, then the handler walks them.
  struct candidate {
    std::uint64_t r, deg;
  };
  std::vector<candidate> suffix(static_cast<std::size_t>(state.range(0)),
                                candidate{7, 9});
  ts::byte_buffer buf(1 << 22);
  for (auto _ : state) {
    buf.clear();
    ts::pack(buf, std::uint32_t{3}, std::uint64_t{11}, std::uint64_t{13}, suffix);
    ts::buffer_reader rd(buf.view());
    std::uint32_t h;
    std::uint64_t q, p;
    std::vector<candidate> out;
    ts::unpack(rd, h, q, p, out);
    std::uint64_t sum = 0;
    for (const candidate& c : out) sum += c.r + c.deg;
    benchmark::DoNotOptimize(sum);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(suffix.size()) * 16);
}

void BM_RoundtripWedgeMessageView(benchmark::State& state) {
  // Zero-copy receive path: the candidate batch is unpacked as a wire_span
  // viewing the serialized bytes (no allocation, no element copies), the
  // way the survey engine's wedge handlers consume it.  Elements are still
  // touched (summed) so the comparison against the vector roundtrip above
  // reflects access through the view, not just skipping the copy.
  struct candidate {
    std::uint64_t r, deg;
  };
  std::vector<candidate> suffix(static_cast<std::size_t>(state.range(0)),
                                candidate{7, 9});
  ts::byte_buffer buf(1 << 22);
  for (auto _ : state) {
    buf.clear();
    ts::pack(buf, std::uint32_t{3}, std::uint64_t{11}, std::uint64_t{13},
             ts::as_wire_span(suffix));
    ts::buffer_reader rd(buf.view());
    std::uint32_t h;
    std::uint64_t q, p;
    ts::wire_span<candidate> out;
    ts::unpack(rd, h, q, p, out);
    std::uint64_t sum = 0;
    for (const candidate c : out) sum += c.r + c.deg;
    benchmark::DoNotOptimize(sum);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(suffix.size()) * 16);
}

void BM_UnpackStringView(benchmark::State& state) {
  // Zero-copy string deserialization: string_view pointing into the buffer.
  ts::byte_buffer buf;
  const std::string s(static_cast<std::size_t>(state.range(0)), 'y');
  for (int i = 0; i < 256; ++i) ts::pack(buf, s);
  for (auto _ : state) {
    ts::buffer_reader rd(buf.view());
    std::string_view out;
    std::size_t total = 0;
    for (int i = 0; i < 256; ++i) {
      ts::unpack(rd, out);
      total += out.size();
    }
    benchmark::DoNotOptimize(total);
  }
  state.SetBytesProcessed(state.iterations() * 256 * static_cast<std::int64_t>(s.size()));
}

void BM_UnpackString(benchmark::State& state) {
  ts::byte_buffer buf;
  const std::string s(static_cast<std::size_t>(state.range(0)), 'y');
  for (int i = 0; i < 256; ++i) ts::pack(buf, s);
  for (auto _ : state) {
    ts::buffer_reader rd(buf.view());
    std::string out;
    for (int i = 0; i < 256; ++i) ts::unpack(rd, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(state.iterations() * 256 * static_cast<std::int64_t>(s.size()));
}

void BM_Varint(benchmark::State& state) {
  ts::byte_buffer buf;
  for (auto _ : state) {
    buf.clear();
    ts::writer w(buf);
    for (std::uint64_t i = 0; i < 4096; ++i) w.write_varint(i * i);
    ts::buffer_reader rd(buf.view());
    ts::reader r(rd);
    std::uint64_t sum = 0;
    for (std::uint64_t i = 0; i < 4096; ++i) sum += r.read_varint();
    benchmark::DoNotOptimize(sum);
  }
}

// The payload-storage cycle of the transport hot path: flush hands a buffer
// away, drain recycles one back.  Pooled steady state performs no
// allocations; the fresh variant allocates and frees every cycle.
void BM_BufferCyclePooled(benchmark::State& state) {
  const auto bytes = static_cast<std::size_t>(state.range(0));
  ts::buffer_pool pool(16);
  const std::uint64_t fill = 0x5555AAAA5555AAAAull;
  for (auto _ : state) {
    ts::byte_buffer buf = pool.acquire(bytes);
    for (std::size_t n = 0; n < bytes; n += sizeof(fill)) buf.append(&fill, sizeof(fill));
    benchmark::DoNotOptimize(buf.data());
    pool.recycle(std::move(buf));
  }
  state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(bytes));
}

void BM_BufferCycleFresh(benchmark::State& state) {
  const auto bytes = static_cast<std::size_t>(state.range(0));
  const std::uint64_t fill = 0x5555AAAA5555AAAAull;
  for (auto _ : state) {
    ts::byte_buffer buf(bytes);
    for (std::size_t n = 0; n < bytes; n += sizeof(fill)) buf.append(&fill, sizeof(fill));
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(bytes));
}

void register_benchmarks(bool quick) {
  const double min_time = quick ? 0.02 : 0.5;
  auto tune = [&](benchmark::internal::Benchmark* b) { b->MinTime(min_time); };

  tune(benchmark::RegisterBenchmark("BM_PackU64", BM_PackU64));

  const std::vector<std::int64_t> string_sizes =
      quick ? std::vector<std::int64_t>{8, 64} : std::vector<std::int64_t>{8, 64, 1024};
  for (auto n : string_sizes) {
    tune(benchmark::RegisterBenchmark("BM_PackString", BM_PackString)->Arg(n));
    tune(benchmark::RegisterBenchmark("BM_UnpackString", BM_UnpackString)->Arg(n));
    tune(benchmark::RegisterBenchmark("BM_UnpackStringView", BM_UnpackStringView)->Arg(n));
  }

  const std::vector<std::int64_t> pod_sizes =
      quick ? std::vector<std::int64_t>{64, 4096}
            : std::vector<std::int64_t>{64, 4096, 262144};
  for (auto n : pod_sizes) {
    tune(benchmark::RegisterBenchmark("BM_PackVectorPod", BM_PackVectorPod)->Arg(n));
  }

  const std::vector<std::int64_t> wedge_sizes =
      quick ? std::vector<std::int64_t>{4, 64} : std::vector<std::int64_t>{4, 64, 1024};
  for (auto n : wedge_sizes) {
    tune(benchmark::RegisterBenchmark("BM_RoundtripWedgeMessage", BM_RoundtripWedgeMessage)
             ->Arg(n));
    tune(benchmark::RegisterBenchmark("BM_RoundtripWedgeMessageSum",
                                      BM_RoundtripWedgeMessageSum)
             ->Arg(n));
    tune(benchmark::RegisterBenchmark("BM_RoundtripWedgeMessageView",
                                      BM_RoundtripWedgeMessageView)
             ->Arg(n));
  }

  tune(benchmark::RegisterBenchmark("BM_Varint", BM_Varint));

  const std::vector<std::int64_t> cycle_sizes =
      quick ? std::vector<std::int64_t>{4096} : std::vector<std::int64_t>{4096, 65536};
  for (auto n : cycle_sizes) {
    tune(benchmark::RegisterBenchmark("BM_BufferCyclePooled", BM_BufferCyclePooled)->Arg(n));
    tune(benchmark::RegisterBenchmark("BM_BufferCycleFresh", BM_BufferCycleFresh)->Arg(n));
  }
}

}  // namespace

int main(int argc, char** argv) {
  return tripoll::bench::run_micro_benchmark(
      argc, argv, [](bool quick) { register_benchmarks(quick); });
}
