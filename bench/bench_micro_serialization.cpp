// bench_micro_serialization -- microbenchmark of the cereal stand-in
// (supporting Sec. 4.1.2: serialization cost is "a small amount of
// computing overhead").
#include <benchmark/benchmark.h>

#include <cstdint>
#include <string>
#include <tuple>
#include <vector>

#include "serial/buffer.hpp"
#include "serial/serialize.hpp"

namespace ts = tripoll::serial;

namespace {

void BM_PackU64(benchmark::State& state) {
  ts::byte_buffer buf(1 << 20);
  std::uint64_t v = 0xDEADBEEF;
  for (auto _ : state) {
    buf.clear();
    for (int i = 0; i < 1024; ++i) ts::pack(buf, v);
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetBytesProcessed(state.iterations() * 1024 * sizeof(v));
}
BENCHMARK(BM_PackU64);

void BM_PackString(benchmark::State& state) {
  ts::byte_buffer buf(1 << 20);
  const std::string s(static_cast<std::size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    buf.clear();
    for (int i = 0; i < 256; ++i) ts::pack(buf, s);
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetBytesProcessed(state.iterations() * 256 * static_cast<std::int64_t>(s.size()));
}
BENCHMARK(BM_PackString)->Arg(8)->Arg(64)->Arg(1024);

void BM_PackVectorPod(benchmark::State& state) {
  ts::byte_buffer buf(1 << 22);
  std::vector<std::uint64_t> v(static_cast<std::size_t>(state.range(0)), 42);
  for (auto _ : state) {
    buf.clear();
    ts::pack(buf, v);
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(v.size()) * 8);
}
BENCHMARK(BM_PackVectorPod)->Arg(64)->Arg(4096)->Arg(262144);

void BM_RoundtripWedgeMessage(benchmark::State& state) {
  // The hot message of a survey: (handle, q, p, meta, meta, candidates).
  struct candidate {
    std::uint64_t r, deg;
  };
  std::vector<candidate> suffix(static_cast<std::size_t>(state.range(0)),
                                candidate{7, 9});
  ts::byte_buffer buf(1 << 22);
  for (auto _ : state) {
    buf.clear();
    ts::pack(buf, std::uint32_t{3}, std::uint64_t{11}, std::uint64_t{13}, suffix);
    ts::buffer_reader rd(buf.view());
    std::uint32_t h;
    std::uint64_t q, p;
    std::vector<candidate> out;
    ts::unpack(rd, h, q, p, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(suffix.size()) * 16);
}
BENCHMARK(BM_RoundtripWedgeMessage)->Arg(4)->Arg(64)->Arg(1024);

void BM_UnpackString(benchmark::State& state) {
  ts::byte_buffer buf;
  const std::string s(static_cast<std::size_t>(state.range(0)), 'y');
  for (int i = 0; i < 256; ++i) ts::pack(buf, s);
  for (auto _ : state) {
    ts::buffer_reader rd(buf.view());
    std::string out;
    for (int i = 0; i < 256; ++i) ts::unpack(rd, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(state.iterations() * 256 * static_cast<std::int64_t>(s.size()));
}
BENCHMARK(BM_UnpackString)->Arg(8)->Arg(64)->Arg(1024);

void BM_Varint(benchmark::State& state) {
  ts::byte_buffer buf;
  for (auto _ : state) {
    buf.clear();
    ts::writer w(buf);
    for (std::uint64_t i = 0; i < 4096; ++i) w.write_varint(i * i);
    ts::buffer_reader rd(buf.view());
    ts::reader r(rd);
    std::uint64_t sum = 0;
    for (std::uint64_t i = 0; i < 4096; ++i) sum += r.read_varint();
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_Varint);

}  // namespace

BENCHMARK_MAIN();
