// bench_fig7_closure_scaling -- reproduces Fig. 7 (strong scaling of the
// closure-time survey, with per-phase breakdown) and Table 3 (average
// vertices pulled per rank as the rank count grows).
//
// Expected shapes: the survey keeps scaling further than plain counting on
// social-like topology (paper: "performance scales well out to 256 nodes
// for this problem"), and the per-phase breakdown shifts from pull-heavy at
// few ranks to almost entirely push-based at many ranks -- visible as the
// Table 3 pulls-per-rank collapse.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "comm/counting_set.hpp"
#include "comm/runtime.hpp"
#include "core/callbacks.hpp"
#include "core/survey.hpp"
#include "gen/presets.hpp"
#include "gen/temporal.hpp"

namespace cb = tripoll::callbacks;
namespace comm = tripoll::comm;
namespace gen = tripoll::gen;

int main() {
  const int delta = tripoll::bench::scale_delta_from_env(0);
  const int max_ranks = tripoll::bench::max_ranks_from_env(16);

  gen::temporal_params params;
  params.scale = static_cast<std::uint32_t>(std::max(8, 15 + delta));

  tripoll::bench::print_header(
      "Fig. 7 + Table 3: strong scaling of the closure-time survey", "Fig. 7 / Table 3");
  std::printf("%6s %10s %10s %10s %10s %9s %12s\n", "ranks", "dry-run(s)",
              "push(s)", "pull(s)", "total(s)", "speedup", "pulls/rank");
  tripoll::bench::print_rule(76);

  double base_time = 0.0;
  for (int ranks = 2; ranks <= max_ranks; ranks *= 2) {
    tripoll::survey_result result;
    comm::runtime::run(ranks, [&](comm::communicator& c) {
      gen::temporal_graph g(c);
      gen::build_temporal_graph(c, g, params);
      comm::counting_set<cb::closure_bin> counters(c);
      cb::closure_time_context ctx{&counters};
      result = cb::plan_for(g, cb::closure_time_callback{}, ctx)
                   .run({tripoll::survey_mode::push_pull})
                   .slice(0);
      counters.finalize();
    });
    if (base_time == 0.0) base_time = result.total.seconds;
    std::printf("%6d %10.3f %10.3f %10.3f %10.3f %8.2fx %12.1f\n", ranks,
                result.dry_run.seconds, result.push.seconds, result.pull.seconds,
                result.total.seconds, base_time / result.total.seconds,
                result.pulls_per_rank(ranks));
  }
  std::printf("\n(Table 3 column = pulls/rank: average number of vertices "
              "pulled per rank,\n expected to fall steeply as ranks grow)\n");
  return 0;
}
