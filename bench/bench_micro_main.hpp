// bench_micro_main.hpp -- shared entry point for the Google-Benchmark-based
// micro benches: strips the --quick flag (see bench_util.hpp), registers the
// bench's cases for the chosen mode, then hands argv to the benchmark
// library.
#pragma once

#include <benchmark/benchmark.h>

#include "bench_util.hpp"

namespace tripoll::bench {

template <typename RegisterFn>
int run_micro_benchmark(int argc, char** argv, RegisterFn&& register_benchmarks) {
  const bool quick = quick_mode(argc, argv);
  register_benchmarks(quick);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace tripoll::bench
