// bench_fig6_reddit_closure -- reproduces Fig. 6 (distribution of triangle
// closing times and joint closing-vs-opening distribution) on the
// Reddit-like temporal graph.
//
// Expected shape: humans close triangles over a wide range of long log2
// bins (wedges form faster than triangles close; mass concentrates at
// close >= open), while the bot subpopulation contributes a separated
// fast-closure mode in the lowest bins -- the "coordinated machine
// activity" signature the paper's narrative anticipates.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>

#include "bench_util.hpp"
#include "comm/counting_set.hpp"
#include "comm/runtime.hpp"
#include "core/callbacks.hpp"
#include "core/survey.hpp"
#include "gen/presets.hpp"
#include "gen/temporal.hpp"

namespace cb = tripoll::callbacks;
namespace comm = tripoll::comm;
namespace gen = tripoll::gen;

int main() {
  const int delta = tripoll::bench::scale_delta_from_env(0);
  const int ranks = std::min(tripoll::bench::max_ranks_from_env(), 16);

  gen::temporal_params params;
  params.scale = static_cast<std::uint32_t>(std::max(8, 15 + delta));
  params.bot_fraction = 0.03;

  tripoll::bench::print_header(
      "Fig. 6: triangle closure-time distributions (Reddit-like graph)", "Fig. 6");

  std::map<cb::closure_bin, std::uint64_t> joint;
  tripoll::survey_result result;
  comm::runtime::run(ranks, [&](comm::communicator& c) {
    gen::temporal_graph g(c);
    gen::build_temporal_graph(c, g, params);
    comm::counting_set<cb::closure_bin> counters(c);
    cb::closure_time_context ctx{&counters};
    result = cb::plan_for(g, cb::closure_time_callback{}, ctx)
                 .run({tripoll::survey_mode::push_pull})
                 .slice(0);
    counters.finalize();
    auto gathered = counters.gather_all();  // collective: all ranks participate
    if (c.rank0()) joint = std::move(gathered);
  });

  std::printf("surveyed %s triangles in %.3fs on %d ranks\n\n",
              tripoll::bench::human_count(result.triangles_found).c_str(),
              result.total.seconds, ranks);

  std::map<std::uint32_t, std::uint64_t> close_marginal, open_marginal;
  for (const auto& [bin, n] : joint) {
    open_marginal[bin.first] += n;
    close_marginal[bin.second] += n;
  }

  std::printf("closing-time distribution (bin = ceil(log2(seconds)); log-scaled bars):\n");
  for (const auto& [bin, n] : close_marginal) {
    std::printf("  close 2^%-2u s %12llu  ", bin, (unsigned long long)n);
    const int stars = n > 0 ? 1 + static_cast<int>(4.0 * std::log10(static_cast<double>(n))) : 0;
    for (int i = 0; i < std::min(stars, 60); ++i) std::printf("*");
    std::printf("\n");
  }

  std::printf("\nopening-time distribution:\n");
  for (const auto& [bin, n] : open_marginal) {
    std::printf("  open  2^%-2u s %12llu\n", bin, (unsigned long long)n);
  }

  std::printf("\njoint distribution rows=open cols=close, cells = ceil(log10(count)):\n");
  std::uint32_t max_bin = 0;
  for (const auto& [bin, n] : joint) max_bin = std::max({max_bin, bin.first, bin.second});
  std::printf("       ");
  for (std::uint32_t cl = 0; cl <= max_bin; ++cl) std::printf("%3u", cl % 10);
  std::printf("\n");
  for (std::uint32_t op = 0; op <= max_bin; ++op) {
    std::printf("  %4u ", op);
    for (std::uint32_t cl = 0; cl <= max_bin; ++cl) {
      const auto it = joint.find({op, cl});
      if (it == joint.end()) {
        std::printf("  .");
      } else {
        std::printf("%3d", static_cast<int>(std::log10(static_cast<double>(it->second))) + 1);
      }
    }
    std::printf("\n");
  }
  std::printf("\n(support only at close >= open, a structural invariant: "
              "t3-t1 >= t2-t1)\n");
  return 0;
}
