// bench_ablation_partition -- ablation of vertex-id randomization
// (DESIGN.md choice M4; paper Sec. 4.2 uses "random or cyclic partitionings"
// and relies on the DODGr construction to tame hub imbalance).
//
// Compares survey time and per-rank load spread on the same R-MAT topology
// with ids scrambled (degree-decorrelated placement, the default) vs
// unscrambled (R-MAT's hot low ids cluster, emulating a naive contiguous-id
// hash that correlates with degree).
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "comm/runtime.hpp"
#include "core/callbacks.hpp"
#include "core/survey.hpp"
#include "gen/distribute.hpp"
#include "gen/presets.hpp"
#include "gen/rmat.hpp"
#include "graph/builder.hpp"

namespace cb = tripoll::callbacks;
namespace comm = tripoll::comm;
namespace gen = tripoll::gen;
namespace graph = tripoll::graph;

namespace {

struct run_metrics {
  double seconds = 0.0;
  double edge_imbalance = 0.0;  ///< max/mean out-edges per rank
};

run_metrics run_once(int ranks, std::uint32_t scale, bool scramble) {
  run_metrics m;
  comm::runtime::run(ranks, [&](comm::communicator& c) {
    gen::rmat_generator rmat(
        gen::rmat_params{scale, 16, 0.57, 0.19, 0.19, 2024, scramble});
    graph::graph_builder<graph::none, graph::none> builder(c);
    gen::for_rank_slice(c, rmat.num_edges(), [&](std::uint64_t k) {
      const auto e = rmat.edge_at(k);
      builder.add_edge(e.u, e.v);
    });
    gen::plain_graph g(c);
    builder.build_into(g);

    std::uint64_t local_edges = 0;
    g.for_all_local([&](const graph::vertex_id&, const auto& rec) {
      local_edges += rec.adj.size();
    });
    const auto per_rank = c.all_gather(local_edges);

    cb::count_context ctx;
    const auto result = tripoll::triangle_survey(g, cb::count_callback{}, ctx,
                                                 {tripoll::survey_mode::push_pull});
    if (c.rank0()) {
      m.seconds = result.total.seconds;
      const auto max_e = *std::max_element(per_rank.begin(), per_rank.end());
      std::uint64_t total = 0;
      for (const auto e : per_rank) total += e;
      m.edge_imbalance = static_cast<double>(max_e) /
                         (static_cast<double>(total) / static_cast<double>(ranks));
    }
  });
  return m;
}

}  // namespace

int main() {
  const int delta = tripoll::bench::scale_delta_from_env(-1);
  const int ranks = std::min(tripoll::bench::max_ranks_from_env(), 16);
  const auto scale = static_cast<std::uint32_t>(std::max(8, 16 + delta));

  tripoll::bench::print_header(
      "Ablation: vertex-id randomization vs degree-correlated placement",
      "Sec. 4.2 design choice");
  std::printf("R-MAT scale %u, %d ranks\n\n", scale, ranks);
  std::printf("%-26s %10s %18s\n", "placement", "time(s)", "edge imbalance");
  tripoll::bench::print_rule(58);

  const auto scrambled = run_once(ranks, scale, true);
  std::printf("%-26s %10.3f %17.2fx\n", "scrambled ids (default)", scrambled.seconds,
              scrambled.edge_imbalance);
  const auto raw = run_once(ranks, scale, false);
  std::printf("%-26s %10.3f %17.2fx\n", "raw R-MAT ids", raw.seconds,
              raw.edge_imbalance);
  std::printf("\n(imbalance = max/mean DODGr out-edges per rank; the DODGr\n"
              "orientation bounds hub out-degrees, so both stay usable -- the\n"
              "paper's argument for settling on cheap random placement)\n");
  return 0;
}
