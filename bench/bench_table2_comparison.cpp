// bench_table2_comparison -- reproduces Table 2 (end-to-end runtime of
// TriPoll vs tailored distributed triangle counters).
//
// Comparators (re-implemented, see src/baselines):
//  * Pearce et al. [42]  -- asynchronous per-wedge closure queries
//  * Tom & Karypis [58]  -- 2D masked-SpGEMM (requires square rank counts)
//  * TriC [20]           -- contiguous 1D partitions + batched supersteps
// plus the serial and OpenMP shared-memory references.
//
// Expected shape (paper): TriPoll comparable or better than Pearce et al.
// everywhere (1.8-6.8x); Tom-2D fastest on mid-size social graphs but
// unscalable past its grid; TriC slowest.  All counters must agree on |T|.
#include <cstdio>
#include <vector>

#include "baselines/pearce_tc.hpp"
#include "baselines/serial_tc.hpp"
#include "baselines/tom2d_tc.hpp"
#include "baselines/tric_tc.hpp"
#include "bench_util.hpp"
#include "comm/runtime.hpp"
#include "core/callbacks.hpp"
#include "core/survey.hpp"
#include "gen/presets.hpp"

namespace cb = tripoll::callbacks;
namespace comm = tripoll::comm;
namespace gen = tripoll::gen;
namespace tb = tripoll::baselines;

int main() {
  const int delta = tripoll::bench::scale_delta_from_env(-1);
  // 16 is a perfect square, so every comparator can run, like the paper's
  // 1024-core configuration chosen for Tom et al.'s square-grid demand.
  const int ranks = 16;

  tripoll::bench::print_header(
      "Table 2: end-to-end runtime comparison (seconds, 16 ranks)", "Table 2");
  std::printf("%-22s %10s %10s %10s %10s %10s %10s %12s\n", "graph", "TriPoll",
              "TriPollPO", "Pearce", "Tom2D", "TriC", "OpenMP", "|T| (agree)");
  tripoll::bench::print_rule(104);

  auto suite = gen::standard_suite(delta);
  suite.insert(suite.begin(), gen::livejournal_like(delta));

  for (const auto& spec : suite) {
    double t_pp = 0, t_po = 0, t_pearce = 0, t_tom = 0, t_tric = 0;
    std::uint64_t count_pp = 0;
    bool agree = true;

    comm::runtime::run(ranks, [&](comm::communicator& c) {
      gen::plain_graph g(c);
      gen::build_dataset(c, g, spec);

      cb::count_context ctx_pp;
      const auto pp = tripoll::triangle_survey(g, cb::count_callback{}, ctx_pp,
                                               {tripoll::survey_mode::push_pull});
      const auto n_pp = ctx_pp.global_count(c);

      cb::count_context ctx_po;
      const auto po = tripoll::triangle_survey(g, cb::count_callback{}, ctx_po,
                                               {tripoll::survey_mode::push_only});
      const auto n_po = ctx_po.global_count(c);

      const auto pearce = tb::pearce_triangle_count(c, g);
      const auto tom = tb::tom2d_triangle_count(c, g);
      const auto tric = tb::tric_triangle_count(c, g);

      if (c.rank0()) {
        t_pp = pp.total.seconds;
        t_po = po.total.seconds;
        t_pearce = pearce.seconds;
        t_tom = tom.seconds;
        t_tric = tric.seconds;
        count_pp = n_pp;
        agree = n_pp == n_po && n_pp == pearce.triangles && n_pp == tom.triangles &&
                n_pp == tric.triangles;
      }
    });

    // Shared-memory reference on the same edge stream (single process).
    double t_omp = 0;
    {
      std::vector<tripoll::graph::edge> edges;
      if (spec.kind == gen::dataset_kind::rmat) {
        const gen::rmat_generator g2(spec.rmat);
        for (std::uint64_t k = 0; k < g2.num_edges(); ++k) edges.push_back(g2.edge_at(k));
      } else {
        const gen::web_generator g2(spec.web);
        for (std::uint64_t k = 0; k < g2.num_edges(); ++k) {
          const auto e = g2.edge_at(k);
          edges.push_back({e.u, e.v});
        }
      }
      const tb::ordered_csr csr(edges);
      const auto t0 = std::chrono::steady_clock::now();
      const auto n_omp = tb::openmp_triangle_count(csr);
      t_omp = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
      agree = agree && n_omp == count_pp;
    }

    std::printf("%-22s %10.3f %10.3f %10.3f %10.3f %10.3f %10.3f %10s %s\n",
                spec.name.c_str(), t_pp, t_po, t_pearce, t_tom, t_tric, t_omp,
                tripoll::bench::human_count(count_pp).c_str(),
                agree ? "yes" : "MISMATCH");
  }
  std::printf("\nTriPollPO = Push-Only engine. All columns count the same graphs;\n"
              "the |T| column reports the TriPoll count and whether all agree.\n");
  return 0;
}
