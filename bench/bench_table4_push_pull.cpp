// bench_table4_push_pull -- reproduces Table 4 (Push-Only vs Push-Pull:
// runtime AND measured communication volume across rank counts).
//
// The paper's shapes this bench checks (see EXPERIMENTS.md):
//  * Push-Only volume is nearly flat in the rank count; Push-Pull volume
//    *grows* with ranks (shrinking per-rank aggregation opportunities).
//  * On hub-heavy web graphs Push-Pull slashes volume (paper: >10x on
//    web-cc12) and wins big on runtime (~6x there).
//  * On Friendster-like social graphs there is little to pull: the dry-run
//    overhead makes Push-Pull comparable or slower, and its volume can
//    overtake Push-Only at high rank counts.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "comm/runtime.hpp"
#include "core/callbacks.hpp"
#include "core/survey.hpp"
#include "gen/presets.hpp"

namespace cb = tripoll::callbacks;
namespace comm = tripoll::comm;
namespace gen = tripoll::gen;
using tripoll::bench::human_bytes;

int main() {
  const int delta = tripoll::bench::scale_delta_from_env(-1);
  const int max_ranks = tripoll::bench::max_ranks_from_env(16);

  tripoll::bench::print_header(
      "Table 4: Push-Only vs Push-Pull, runtime and communication volume", "Table 4");

  std::vector<int> rank_counts;
  for (int r = 2; r <= max_ranks; r *= 2) rank_counts.push_back(r);

  for (const auto& spec : gen::standard_suite(delta)) {
    std::printf("%s\n", spec.name.c_str());
    std::printf("  %-28s", "measurement");
    for (const int r : rank_counts) std::printf(" %11d", r);
    std::printf("  (ranks)\n");
    tripoll::bench::print_rule(96);

    std::vector<tripoll::survey_result> push_only, push_pull;
    for (const int ranks : rank_counts) {
      comm::runtime::run(ranks, [&](comm::communicator& c) {
        gen::plain_graph g(c);
        gen::build_dataset(c, g, spec);
        cb::count_context ctx_po;
        const auto po = tripoll::triangle_survey(g, cb::count_callback{}, ctx_po,
                                                 {tripoll::survey_mode::push_only});
        cb::count_context ctx_pp;
        const auto pp = tripoll::triangle_survey(g, cb::count_callback{}, ctx_pp,
                                                 {tripoll::survey_mode::push_pull});
        if (c.rank0()) {
          push_only.push_back(po);
          push_pull.push_back(pp);
        }
      });
    }

    std::printf("  %-28s", "comm volume  Push-Only");
    for (const auto& r : push_only) std::printf(" %11s", human_bytes(r.total.volume_bytes).c_str());
    std::printf("\n  %-28s", "             Push-Pull");
    for (const auto& r : push_pull) std::printf(" %11s", human_bytes(r.total.volume_bytes).c_str());
    std::printf("\n  %-28s", "runtime (s)  Push-Only");
    for (const auto& r : push_only) std::printf(" %11.3f", r.total.seconds);
    std::printf("\n  %-28s", "             Push-Pull");
    for (const auto& r : push_pull) std::printf(" %11.3f", r.total.seconds);
    std::printf("\n  %-28s", "volume ratio (PO/PP)");
    for (std::size_t i = 0; i < push_only.size(); ++i) {
      const double ratio = push_pull[i].total.volume_bytes > 0
                               ? static_cast<double>(push_only[i].total.volume_bytes) /
                                     static_cast<double>(push_pull[i].total.volume_bytes)
                               : 0.0;
      std::printf(" %10.2fx", ratio);
    }
    std::printf("\n");
    tripoll::bench::print_rule(96);
  }
  return 0;
}
