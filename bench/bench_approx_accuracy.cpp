// bench_approx_accuracy -- approximate vs exact triangle counting.
//
// Supports the paper's Sec. 1 framing: "techniques that approximate
// triangle counts [often] suffice", but metadata surveys need every
// triangle.  This bench quantifies the trade on the stand-in datasets:
// wedge-sampling error and time vs the exact TriPoll survey.
#include <cmath>
#include <cstdio>

#include "baselines/approx_tc.hpp"
#include "bench_util.hpp"
#include "comm/runtime.hpp"
#include "core/callbacks.hpp"
#include "core/survey.hpp"
#include "gen/presets.hpp"

namespace cb = tripoll::callbacks;
namespace comm = tripoll::comm;
namespace gen = tripoll::gen;
namespace tb = tripoll::baselines;

int main() {
  const int delta = tripoll::bench::scale_delta_from_env(-1);
  const int ranks = std::min(tripoll::bench::max_ranks_from_env(), 8);

  tripoll::bench::print_header(
      "Approximate (wedge sampling) vs exact triangle counting",
      "Sec. 1 approximation discussion");
  std::printf("%-22s %10s %12s %12s %8s %10s %10s\n", "graph", "samples", "exact |T|",
              "estimate", "err%", "exact(s)", "approx(s)");
  tripoll::bench::print_rule(92);

  for (const auto& spec : gen::standard_suite(delta)) {
    for (const std::uint64_t samples : {10'000ull, 100'000ull, 1'000'000ull}) {
      std::uint64_t exact = 0;
      double exact_s = 0, approx_s = 0, estimate = 0;
      comm::runtime::run(ranks, [&](comm::communicator& c) {
        gen::plain_graph g(c);
        gen::build_dataset(c, g, spec);
        cb::count_context ctx;
        const auto r = tripoll::triangle_survey(g, cb::count_callback{}, ctx,
                                                {tripoll::survey_mode::push_pull});
        const auto n = ctx.global_count(c);
        const auto a = tb::approx_triangle_count(c, g, samples, 99);
        if (c.rank0()) {
          exact = n;
          exact_s = r.total.seconds;
          approx_s = a.seconds;
          estimate = a.estimate;
        }
      });
      const double err =
          exact > 0 ? 100.0 * std::abs(estimate - static_cast<double>(exact)) /
                          static_cast<double>(exact)
                    : 0.0;
      std::printf("%-22s %10llu %12s %12.0f %7.2f%% %10.3f %10.3f\n", spec.name.c_str(),
                  (unsigned long long)samples,
                  tripoll::bench::human_count(exact).c_str(), estimate, err, exact_s,
                  approx_s);
    }
    tripoll::bench::print_rule(92);
  }
  return 0;
}
