// bench_streaming_ingest -- streaming overlay vs full rebuild (PR 10
// acceptance numbers).
//
// Freezes the rmat ablation preset as the resident base, composes delta
// batches of 0.1% / 1% / 10% of |E| as uniform churn (new edges between
// uniformly-sampled existing vertices -- the steady-state feed model) plus
// one edge-biased `hub` case for context (see delta_mode), and measures per
// case (2 inproc ranks, so survey volume/messages are real inter-rank
// traffic):
//   * rebuild+survey wall: build the whole graph from scratch (shuffle,
//     degree ordering, freeze) and answer the steady-state query -- a
//     windowed survey over ~10% of the timestamp range (the streaming
//     workload this PR exists for: per-batch surveys of recent edges),
//   * ingest+survey wall: apply the delta as one overlay batch over the
//     resident frozen base and answer the same windowed query over
//     base+delta,
//   * full-survey wall over the overlay, for context (an unwindowed
//     all-history survey costs the same on both paths, so it bounds the
//     end-to-end speedup at ~(build+survey)/survey instead),
//   * compaction wall: incremental re-freeze of the overlay (stored ranks
//     reused -- no shuffle, no re-peel).
// Unwindowed triangle counts, survey volume and message counts must be
// bit-identical between the rebuild, the overlay and the compacted graph
// (degree ordering re-derives identical ranks), and the windowed fire
// counts must match between rebuild and overlay; any divergence is FATAL.
//
// `--json <path>` writes a `pr10_streaming_cases` object consumed by
// tools/check_bench_regression.py --streaming-gates, which asserts
//   * bit-identity (triangles / volume / messages / window fires)
//     unconditionally,
//   * ingest+windowed-survey >= --streaming-speedup-min (10x) faster than
//     rebuild+windowed-survey on the 1% delta case,
//   * windowed survey volume strictly below the unwindowed volume.
// `--quick` shrinks the graph and repetitions for CI.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "bench_util.hpp"
#include "comm/runtime.hpp"
#include "core/callbacks.hpp"
#include "core/survey.hpp"
#include "gen/distribute.hpp"
#include "gen/rmat.hpp"
#include "graph/builder.hpp"
#include "graph/frozen.hpp"
#include "graph/overlay.hpp"
#include "serial/hash.hpp"

namespace cb = tripoll::callbacks;
namespace comm = tripoll::comm;
namespace gen = tripoll::gen;
namespace graph = tripoll::graph;

namespace {

using clock_type = std::chrono::steady_clock;

double seconds_since(clock_type::time_point t0) {
  return std::chrono::duration<double>(clock_type::now() - t0).count();
}

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

/// Timestamps in [0, 1000000), the same deterministic hash the CLI and the
/// service tests stamp --meta snapshots with.
std::uint64_t edge_ts(graph::vertex_id u, graph::vertex_id v) {
  const auto lo = std::min(u, v);
  const auto hi = std::max(u, v);
  return tripoll::serial::hash_combine(tripoll::serial::splitmix64(lo), hi) % 1000000;
}

struct undirected_edge {
  graph::vertex_id u = 0;
  graph::vertex_id v = 0;
};

/// The streaming base: a large, moderate-density rmat (edge factor 2, so
/// ~8 avg degree over the active vertices, vs ~78 for the dense ablation
/// preset).  Streaming cost scales with the sum of the batch endpoints'
/// degrees -- the state a batch touches -- while a rebuild pays for every
/// edge, so the base must look like a real feed (|E|/|V| moderate, state
/// large) for the comparison to mean anything.  Normalized (u < v),
/// deduplicated, no self loops: the ground truth both the rebuild and the
/// overlay paths must reproduce.
std::vector<undirected_edge> preset_edges(comm::communicator& c, int delta) {
  gen::rmat_params params;
  params.scale = static_cast<std::uint32_t>(std::max(4, 17 + delta));
  params.edge_factor = 2;
  params.a = 0.48;
  params.b = params.c = 0.21;
  params.seed = 505;
  const gen::rmat_generator g(params);
  std::vector<std::pair<graph::vertex_id, graph::vertex_id>> raw;
  gen::for_rank_slice(c, g.num_edges(), [&](std::uint64_t k) {
    const auto e = g.edge_at(k);
    if (e.u == e.v) return;
    raw.emplace_back(std::min(e.u, e.v), std::max(e.u, e.v));
  });
  std::sort(raw.begin(), raw.end());
  raw.erase(std::unique(raw.begin(), raw.end()), raw.end());
  std::vector<undirected_edge> out;
  out.reserve(raw.size());
  for (const auto& [u, v] : raw) out.push_back({u, v});
  return out;
}

struct survey_metrics {
  std::uint64_t triangles = 0;
  std::uint64_t volume = 0;
  std::uint64_t messages = 0;
};

template <typename Graph>
survey_metrics run_survey(comm::communicator& c, Graph& g) {
  cb::count_context ctx;
  const auto r = cb::plan_for(g, cb::count_callback{}, ctx).run({}).slice(0);
  return {ctx.global_count(c), r.total.volume_bytes, r.total.messages};
}

/// The steady-state query: a windowed count over ~10% of the [0, 1000000)
/// timestamp range (the sender-side wedge filter skips everything else).
constexpr std::uint64_t kWindowT0 = 0;
constexpr std::uint64_t kWindowT1 = 100000;

struct windowed_metrics {
  std::uint64_t fires = 0;
  std::uint64_t volume = 0;
};

template <typename Graph>
windowed_metrics run_windowed_survey(comm::communicator& c, Graph& g) {
  cb::count_context ctx;
  const auto r = cb::plan_for(g, cb::count_callback{}, ctx)
                     .window(kWindowT0, kWindowT1)
                     .run({})
                     .slice(0);
  return {ctx.global_count(c), r.total.volume_bytes};
}

using base_graph = graph::frozen_dodgr<graph::none, std::uint64_t>;

/// Build + freeze the given undirected edges under degree ordering; each
/// rank contributes its stripe, like a real distributed ingest.
base_graph freeze_edges(comm::communicator& c,
                        const std::vector<undirected_edge>& edges) {
  graph::dodgr<graph::none, std::uint64_t> g(c);
  graph::graph_builder<graph::none, std::uint64_t> builder(
      c, graph::ordering_policy::degree);
  for (std::size_t i = 0; i < edges.size(); ++i) {
    if (static_cast<int>(i % static_cast<std::size_t>(c.size())) != c.rank()) continue;
    builder.add_edge(edges[i].u, edges[i].v, edge_ts(edges[i].u, edges[i].v));
  }
  builder.build_into(g);
  return graph::freeze(g);
}

struct stream_case {
  std::uint64_t base_edges = 0;
  std::uint64_t delta_edges = 0;
  double rebuild_seconds = 0.0;       ///< build + freeze + windowed survey
  double incremental_seconds = 0.0;   ///< overlay ingest + windowed survey
  double full_survey_seconds = 0.0;   ///< unwindowed survey over the overlay
  double compact_seconds = 0.0;
  std::uint64_t triangles_rebuild = 0;
  std::uint64_t triangles_overlay = 0;
  std::uint64_t triangles_compacted = 0;
  std::uint64_t volume_rebuild = 0;
  std::uint64_t volume_overlay = 0;
  std::uint64_t messages_rebuild = 0;
  std::uint64_t messages_overlay = 0;
  std::uint64_t full_volume = 0;    ///< unwindowed survey volume (== overlay)
  std::uint64_t window_volume = 0;  ///< same plan under .window(t0, t1)
  std::uint64_t window_fires = 0;
  std::uint64_t window_fires_rebuild = 0;

  [[nodiscard]] double speedup() const {
    return incremental_seconds > 0 ? rebuild_seconds / incremental_seconds : 0.0;
  }
  [[nodiscard]] double window_reduction() const {
    return window_volume > 0
               ? static_cast<double>(full_volume) / static_cast<double>(window_volume)
               : 0.0;
  }
};

/// How a case composes its delta batch.
///   churn    -- NEW edges between uniformly-sampled existing vertices (the
///               steady-state model: a typical batch touches typical
///               endpoints).  This is the composition the speedup gate
///               runs on.
///   hub_tail -- every `stride`-th edge of the rmat multiset (edge-biased,
///               i.e. concentrated on hubs: one hub rank bump makes the
///               eager <+ cache refresh touch the hub's whole neighborhood,
///               so sum-of-endpoint-degree -- and with it ingest cost --
///               approaches O(|E|) even at a 1% batch).  Reported for
///               context, not gated.
enum class delta_mode { churn, hub_tail };

stream_case run_case(const std::vector<undirected_edge>& edges,
                     double delta_fraction, int reps, delta_mode mode) {
  stream_case out;
  const std::uint64_t total = edges.size();
  const auto delta_count = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(static_cast<double>(total) * delta_fraction));
  std::vector<undirected_edge> base_edges;
  std::vector<undirected_edge> delta_edges;
  if (mode == delta_mode::hub_tail) {
    const std::uint64_t stride = total / delta_count;
    for (std::uint64_t i = 0; i < total; ++i) {
      if (i % stride == 0 && delta_edges.size() < delta_count) {
        delta_edges.push_back(edges[i]);
      } else {
        base_edges.push_back(edges[i]);
      }
    }
  } else {
    base_edges = edges;
    std::vector<graph::vertex_id> verts;
    verts.reserve(edges.size() * 2);
    for (const auto& e : edges) {
      verts.push_back(e.u);
      verts.push_back(e.v);
    }
    std::sort(verts.begin(), verts.end());
    verts.erase(std::unique(verts.begin(), verts.end()), verts.end());
    // Preset vertex ids fit in 32 bits, so a packed pair keys the edge set.
    const auto pack = [](graph::vertex_id u, graph::vertex_id v) {
      return (static_cast<std::uint64_t>(u) << 32) | v;
    };
    std::unordered_set<std::uint64_t> present;
    present.reserve(edges.size() * 2);
    for (const auto& e : edges) present.insert(pack(e.u, e.v));
    std::uint64_t s = 0x243f6a8885a308d3ull;  // fixed seed: runs are repeatable
    while (delta_edges.size() < delta_count) {
      const auto a = verts[tripoll::serial::splitmix64(s++) % verts.size()];
      const auto b = verts[tripoll::serial::splitmix64(s++) % verts.size()];
      if (a == b) continue;
      const auto u = std::min(a, b);
      const auto v = std::max(a, b);
      if (!present.insert(pack(u, v)).second) continue;
      delta_edges.push_back({u, v});
    }
  }
  std::vector<undirected_edge> all_edges = base_edges;
  all_edges.insert(all_edges.end(), delta_edges.begin(), delta_edges.end());
  out.base_edges = base_edges.size();
  out.delta_edges = delta_edges.size();

  comm::runtime::run(2, [&](comm::communicator& c) {
    // The resident base is frozen once; every incremental rep pays only the
    // overlay wrap (untimed -- a resident service holds it already), the
    // batch ingest and the windowed survey.  Each rank contributes its
    // stripe of the batch, like a real distributed feed.
    auto base = freeze_edges(c, base_edges);
    graph::overlay<graph::none, std::uint64_t>::edge_batch batch;
    for (std::size_t i = 0; i < delta_edges.size(); ++i) {
      if (static_cast<int>(i % static_cast<std::size_t>(c.size())) != c.rank()) continue;
      const auto& e = delta_edges[i];
      batch.push_back({e.u, e.v, edge_ts(e.u, e.v)});
    }

    std::vector<double> rebuild, incremental, full_survey;
    for (int r = 0; r < reps; ++r) {
      auto t0 = clock_type::now();
      auto full = freeze_edges(c, all_edges);
      const auto wr = run_windowed_survey(c, full);
      rebuild.push_back(seconds_since(t0));
      if (c.rank0()) out.window_fires_rebuild = wr.fires;

      graph::overlay ov(base);
      t0 = clock_type::now();
      (void)ov.ingest(batch);
      const auto wo = run_windowed_survey(c, ov);
      incremental.push_back(seconds_since(t0));
      if (c.rank0()) {
        out.window_fires = wo.fires;
        out.window_volume = wo.volume;
      }

      if (r + 1 == reps) {
        // Unwindowed all-history surveys: the bit-identity matrix and the
        // context wall that bounds full-resurvey speedups.
        const auto rm = run_survey(c, full);
        t0 = clock_type::now();
        const auto om = run_survey(c, ov);
        full_survey.push_back(seconds_since(t0));
        if (c.rank0()) {
          out.triangles_rebuild = rm.triangles;
          out.volume_rebuild = rm.volume;
          out.messages_rebuild = rm.messages;
          out.triangles_overlay = om.triangles;
          out.volume_overlay = om.volume;
          out.messages_overlay = om.messages;
          out.full_volume = om.volume;
        }

        const auto ct0 = clock_type::now();
        auto compacted = ov.compact({});
        const double cs = seconds_since(ct0);
        const auto cm = run_survey(c, compacted);
        if (c.rank0()) {
          out.compact_seconds = cs;
          out.triangles_compacted = cm.triangles;
        }
      }
    }
    if (c.rank0()) {
      out.rebuild_seconds = median(rebuild);
      out.incremental_seconds = median(incremental);
      out.full_survey_seconds = median(full_survey);
    }
  });
  return out;
}

void print_case(const std::string& name, const stream_case& sc) {
  std::printf("%-14s base %8llu + delta %7llu  rebuild %7.4fs  ingest %7.4fs "
              "(%6.2fx)  full survey %7.4fs  compact %7.4fs\n",
              name.c_str(), (unsigned long long)sc.base_edges,
              (unsigned long long)sc.delta_edges, sc.rebuild_seconds,
              sc.incremental_seconds, sc.speedup(), sc.full_survey_seconds,
              sc.compact_seconds);
  std::printf("%-14s triangles %llu  volume %llu B  window volume %llu B "
              "(%4.1fx smaller, %llu fires)\n",
              "", (unsigned long long)sc.triangles_overlay,
              (unsigned long long)sc.full_volume,
              (unsigned long long)sc.window_volume, sc.window_reduction(),
              (unsigned long long)sc.window_fires);
}

void write_json(const char* path, const std::map<std::string, stream_case>& cases,
                int delta) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path);
    std::exit(2);
  }
  std::fprintf(f, "{\n  \"pr10_streaming_cases\": {\n");
  std::size_t i = 0;
  for (const auto& [name, sc] : cases) {
    std::fprintf(
        f,
        "    \"%s\": {\"base_edges\": %llu, \"delta_edges\": %llu, "
        "\"rebuild_seconds\": %.6f, \"incremental_seconds\": %.6f, "
        "\"full_survey_seconds\": %.6f, \"compact_seconds\": %.6f, "
        "\"triangles_rebuild\": %llu, \"triangles_overlay\": %llu, "
        "\"triangles_compacted\": %llu, "
        "\"volume_rebuild\": %llu, \"volume_overlay\": %llu, "
        "\"messages_rebuild\": %llu, \"messages_overlay\": %llu, "
        "\"full_volume\": %llu, \"window_volume\": %llu, "
        "\"window_fires\": %llu, \"window_fires_rebuild\": %llu}%s\n",
        name.c_str(), (unsigned long long)sc.base_edges,
        (unsigned long long)sc.delta_edges, sc.rebuild_seconds,
        sc.incremental_seconds, sc.full_survey_seconds, sc.compact_seconds,
        (unsigned long long)sc.triangles_rebuild,
        (unsigned long long)sc.triangles_overlay,
        (unsigned long long)sc.triangles_compacted,
        (unsigned long long)sc.volume_rebuild,
        (unsigned long long)sc.volume_overlay,
        (unsigned long long)sc.messages_rebuild,
        (unsigned long long)sc.messages_overlay,
        (unsigned long long)sc.full_volume, (unsigned long long)sc.window_volume,
        (unsigned long long)sc.window_fires,
        (unsigned long long)sc.window_fires_rebuild,
        ++i == cases.size() ? "" : ",");
  }
  std::fprintf(f, "  },\n  \"params\": {\"ranks\": 2, \"delta\": %d, "
               "\"hw_threads\": %u}\n}\n",
               delta, std::thread::hardware_concurrency());
  std::fclose(f);
  std::printf("\nwrote %s\n", path);
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = tripoll::bench::quick_mode(argc, argv);
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      if (i + 1 >= argc || argv[i + 1][0] == '-') {
        std::fprintf(stderr, "--json needs an output path\n");
        return 2;
      }
      json_path = argv[++i];
    }
  }

  const int delta = quick ? -1 : tripoll::bench::scale_delta_from_env(1);
  const int reps = quick ? 3 : 5;

  tripoll::bench::print_header(
      "Streaming overlay: incremental ingest+survey vs full rebuild", "PR 10");

  std::vector<undirected_edge> edges;
  comm::runtime::run(1, [&](comm::communicator& c) { edges = preset_edges(c, delta); });

  const std::map<std::string, std::pair<double, delta_mode>> fractions = {
      {"delta_0.1pct", {0.001, delta_mode::churn}},
      {"delta_1pct", {0.01, delta_mode::churn}},
      {"delta_10pct", {0.1, delta_mode::churn}},
      {"delta_1pct_hub", {0.01, delta_mode::hub_tail}}};
  std::map<std::string, stream_case> cases;
  for (const auto& [name, mode] : fractions) {
    cases[name] = run_case(edges, mode.first, reps, mode.second);
    print_case(name, cases[name]);
    const auto& sc = cases[name];
    if (sc.triangles_rebuild != sc.triangles_overlay ||
        sc.triangles_rebuild != sc.triangles_compacted ||
        sc.volume_rebuild != sc.volume_overlay ||
        sc.messages_rebuild != sc.messages_overlay ||
        sc.window_fires != sc.window_fires_rebuild) {
      std::fprintf(stderr,
                   "FATAL: %s: overlay diverged from rebuild (triangles %llu/%llu/%llu, "
                   "volume %llu/%llu, messages %llu/%llu)\n",
                   name.c_str(), (unsigned long long)sc.triangles_rebuild,
                   (unsigned long long)sc.triangles_overlay,
                   (unsigned long long)sc.triangles_compacted,
                   (unsigned long long)sc.volume_rebuild,
                   (unsigned long long)sc.volume_overlay,
                   (unsigned long long)sc.messages_rebuild,
                   (unsigned long long)sc.messages_overlay);
      return 1;
    }
    if (sc.window_volume >= sc.full_volume) {
      std::fprintf(stderr,
                   "FATAL: %s: windowed survey volume %llu B did not drop below "
                   "the unwindowed %llu B\n",
                   name.c_str(), (unsigned long long)sc.window_volume,
                   (unsigned long long)sc.full_volume);
      return 1;
    }
  }
  if (json_path != nullptr) write_json(json_path, cases, delta);
  return 0;
}
