// bench_parallel_traversal -- intra-rank parallel survey scaling and the
// hub/tail bitmap kernel ablation (PR 6 acceptance numbers).
//
// For each preset (rmat / web) this bench builds the graph once, freezes
// it, then measures the counting survey (registered through the plan
// reduction hook, so intersection fires run on worker threads) at
// TRIPOLL_THREADS in {1, 2, 4, 8}:
//   * median wall time per thread count -> speedup-per-core,
//   * triangles / volume_bytes / messages per thread count (must be
//     bit-identical; the binary exits 1 if they move),
//   * the bitmap/list kernel mix, plus a 4-thread run on a bitmap-free
//     freeze of the same graph -> the hub-kernel gain on skewed graphs.
//
// `--json <path>` writes a `pr6_parallel_cases` object consumed by
// tools/check_bench_regression.py --parallel-gates, which asserts
//   * identical counts/volume/messages across every thread count,
//   * speedup at 4 threads >= --parallel-speedup-min (1.6) on the rmat
//     case (skipped when the machine has fewer than 4 hardware threads),
//   * a positive hub bitmap-kernel share on the skewed (web) case.
// `--quick` shrinks the graphs and repetitions for CI.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "comm/runtime.hpp"
#include "core/callbacks.hpp"
#include "core/survey.hpp"
#include "gen/presets.hpp"
#include "graph/builder.hpp"
#include "graph/frozen.hpp"

namespace cb = tripoll::callbacks;
namespace comm = tripoll::comm;
namespace gen = tripoll::gen;
namespace graph = tripoll::graph;

namespace {

using clock_type = std::chrono::steady_clock;

struct thread_sample {
  int threads = 0;
  double seconds = 0.0;           ///< median survey wall time (max over ranks)
  std::uint64_t triangles = 0;
  std::uint64_t volume_bytes = 0;
  std::uint64_t messages = 0;
  std::uint64_t bitmap_batches = 0;
  std::uint64_t list_batches = 0;
};

struct parallel_case {
  std::uint64_t edges = 0;
  std::vector<thread_sample> samples;
  double nobitmap_seconds = 0.0;   ///< 4-thread run, bitmap rows disabled
  std::uint64_t nobitmap_triangles = 0;

  [[nodiscard]] const thread_sample* at(int threads) const {
    for (const auto& s : samples) {
      if (s.threads == threads) return &s;
    }
    return nullptr;
  }
  [[nodiscard]] double speedup(int threads) const {
    const auto* s1 = at(1);
    const auto* st = at(threads);
    return (s1 && st && st->seconds > 0) ? s1->seconds / st->seconds : 0.0;
  }
};

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

template <typename Graph>
thread_sample measure(comm::communicator& c, Graph& fz, int threads, int reps) {
  thread_sample s;
  s.threads = threads;
  std::vector<double> times;
  for (int r = 0; r < reps; ++r) {
    cb::count_context ctx;
    const auto res = cb::plan_for_reduced(fz, cb::count_callback{}, ctx,
                                          cb::count_reduce{})
                         .run({tripoll::survey_mode::push_pull, threads});
    times.push_back(res.total.total.seconds);
    s.triangles = ctx.global_count(c);
    s.volume_bytes = res.total.total.volume_bytes;
    s.messages = res.total.total.messages;
    s.bitmap_batches = res.total.bitmap_batches;
    s.list_batches = res.total.list_batches;
  }
  s.seconds = median(times);
  return s;
}

parallel_case run_case(const std::string& which, int ranks, int delta, int reps,
                       const std::vector<int>& thread_counts) {
  parallel_case out;
  comm::runtime::run(ranks, [&](comm::communicator& c) {
    gen::plain_graph g(c);
    // Degree ordering keeps hub out-degrees high, so the skewed presets
    // actually exercise the bitmap rows (degeneracy ordering bounds
    // out-degrees by the core number, starving the hub path).
    graph::graph_builder<graph::none, graph::none> builder(
        c, graph::ordering_policy::degree);
    gen::for_preset_edges(c, which, delta, [&](graph::vertex_id u, graph::vertex_id v) {
      builder.add_edge(u, v);
    });
    builder.build_into(g);
    // The default bitmap budget (2 B/edge) is a production memory guard
    // that rejects most hub rows when neighbour ids are spread across the
    // whole id space, as they are on these presets.  This bench ablates the
    // kernel itself, so admit wider rows and a lower hub threshold.
    graph::freeze_options on;
    on.hub_degree_threshold = 32;
    on.hub_bitmap_max_bytes_per_edge = 256;
    auto fz = graph::freeze(g, on);

    std::vector<thread_sample> samples;
    for (const int t : thread_counts) {
      samples.push_back(measure(c, fz, t, reps));
    }

    // Kernel ablation: same graph and budget, bitmap rows disabled, 4 threads.
    graph::freeze_options off = on;
    off.build_hub_bitmaps = false;
    auto fz_off = graph::freeze(g, off);
    const auto off_sample = measure(c, fz_off, 4, reps);

    const auto stats = fz.global_storage_stats();  // collective: every rank
    if (c.rank0()) {
      out.edges = stats.edges;
      out.samples = samples;
      out.nobitmap_seconds = off_sample.seconds;
      out.nobitmap_triangles = off_sample.triangles;
    }
  });
  return out;
}

void print_case(const std::string& name, const parallel_case& pc) {
  std::printf("%-8s edges %9llu\n", name.c_str(), (unsigned long long)pc.edges);
  for (const auto& s : pc.samples) {
    std::printf("  threads %d  %8.4fs  speedup %5.2fx  tri %llu  "
                "bitmap/list batches %llu/%llu\n",
                s.threads, s.seconds, pc.speedup(s.threads),
                (unsigned long long)s.triangles, (unsigned long long)s.bitmap_batches,
                (unsigned long long)s.list_batches);
  }
  const auto* s4 = pc.at(4);
  if (s4 != nullptr && s4->seconds > 0) {
    std::printf("  bitmaps off (4t) %8.4fs  hub-kernel gain %5.2fx\n",
                pc.nobitmap_seconds, pc.nobitmap_seconds / s4->seconds);
  }
}

void write_json(const char* path, const std::map<std::string, parallel_case>& cases,
                int ranks, int delta, unsigned hw_threads) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path);
    std::exit(2);
  }
  std::fprintf(f, "{\n  \"pr6_parallel_cases\": {\n");
  std::size_t i = 0;
  for (const auto& [name, pc] : cases) {
    std::fprintf(f, "    \"%s\": {\"edges\": %llu, \"threads\": [\n", name.c_str(),
                 (unsigned long long)pc.edges);
    for (std::size_t k = 0; k < pc.samples.size(); ++k) {
      const auto& s = pc.samples[k];
      std::fprintf(f,
                   "      {\"threads\": %d, \"seconds\": %.6f, \"triangles\": %llu, "
                   "\"volume_bytes\": %llu, \"messages\": %llu, "
                   "\"bitmap_batches\": %llu, \"list_batches\": %llu}%s\n",
                   s.threads, s.seconds, (unsigned long long)s.triangles,
                   (unsigned long long)s.volume_bytes, (unsigned long long)s.messages,
                   (unsigned long long)s.bitmap_batches,
                   (unsigned long long)s.list_batches,
                   k + 1 == pc.samples.size() ? "" : ",");
    }
    std::fprintf(f,
                 "    ], \"speedup_4t\": %.3f, \"nobitmap_seconds\": %.6f, "
                 "\"nobitmap_triangles\": %llu}%s\n",
                 pc.speedup(4), pc.nobitmap_seconds,
                 (unsigned long long)pc.nobitmap_triangles,
                 ++i == cases.size() ? "" : ",");
  }
  std::fprintf(f,
               "  },\n  \"params\": {\"ranks\": %d, \"delta\": %d, "
               "\"hw_threads\": %u}\n}\n",
               ranks, delta, hw_threads);
  std::fclose(f);
  std::printf("\nwrote %s\n", path);
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = tripoll::bench::quick_mode(argc, argv);
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      if (i + 1 >= argc || argv[i + 1][0] == '-') {
        std::fprintf(stderr, "--json needs an output path\n");
        return 2;
      }
      json_path = argv[++i];
    }
  }

  const int ranks = 2;
  const int delta = quick ? -2 : tripoll::bench::scale_delta_from_env(0);
  const int reps = quick ? 5 : 9;
  const unsigned hw_threads = std::thread::hardware_concurrency();
  const std::vector<int> thread_counts{1, 2, 4, 8};

  tripoll::bench::print_header(
      "Intra-rank parallel traversal (speedup per core, hub/tail kernel mix)",
      "PR 6");
  std::printf("hardware threads: %u, ranks: %d\n\n", hw_threads, ranks);

  std::map<std::string, parallel_case> cases;
  for (const std::string which : {"rmat", "web"}) {
    cases[which] = run_case(which, ranks, delta, reps, thread_counts);
    print_case(which, cases[which]);
    // Bit-identity across thread counts is a correctness property, not a
    // performance one: fail loudly right here.
    const auto& pc = cases[which];
    for (const auto& s : pc.samples) {
      const auto& base = pc.samples.front();
      if (s.triangles != base.triangles || s.volume_bytes != base.volume_bytes ||
          s.messages != base.messages || s.bitmap_batches != base.bitmap_batches ||
          s.list_batches != base.list_batches) {
        std::fprintf(stderr,
                     "FATAL: %s diverged at %d threads (tri %llu vs %llu, vol %llu "
                     "vs %llu, msg %llu vs %llu)\n",
                     which.c_str(), s.threads, (unsigned long long)s.triangles,
                     (unsigned long long)base.triangles,
                     (unsigned long long)s.volume_bytes,
                     (unsigned long long)base.volume_bytes,
                     (unsigned long long)s.messages, (unsigned long long)base.messages);
        return 1;
      }
    }
    if (pc.nobitmap_triangles != pc.samples.front().triangles) {
      std::fprintf(stderr, "FATAL: %s bitmap on/off changed the triangle count\n",
                   which.c_str());
      return 1;
    }
  }
  if (json_path != nullptr) write_json(json_path, cases, ranks, delta, hw_threads);
  return 0;
}
