// bench_fig9_metadata_impact -- reproduces Fig. 9 (effect of nontrivial
// metadata on the weak scaling of Push-Pull and Push-Only).
//
// The paper repeats the Fig. 5 weak-scaling R-MAT runs twice: once with
// dummy metadata and a counting callback, once with each vertex's degree as
// metadata and a callback counting log2-degree triples.  Expected shape:
// the metadata+callback variant cuts throughput by a factor just under 2
// across sizes, for both engines, without changing the scaling shape.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "comm/counting_set.hpp"
#include "comm/runtime.hpp"
#include "core/callbacks.hpp"
#include "core/survey.hpp"
#include "gen/distribute.hpp"
#include "gen/presets.hpp"
#include "gen/rmat.hpp"
#include "graph/builder.hpp"

namespace cb = tripoll::callbacks;
namespace comm = tripoll::comm;
namespace gen = tripoll::gen;
namespace graph = tripoll::graph;

namespace {

/// Work rate |W+|/(N*t) for the dummy-metadata counting survey.
double plain_rate(int ranks, std::uint32_t scale, tripoll::survey_mode mode) {
  tripoll::survey_result result;
  graph::graph_census census{};
  comm::runtime::run(ranks, [&](comm::communicator& c) {
    gen::rmat_generator rmat(gen::rmat_params{scale, 16, 0.57, 0.19, 0.19, 777, true});
    graph::graph_builder<graph::none, graph::none> builder(c);
    gen::for_rank_slice(c, rmat.num_edges(), [&](std::uint64_t k) {
      const auto e = rmat.edge_at(k);
      builder.add_edge(e.u, e.v);
    });
    gen::plain_graph g(c);
    builder.build_into(g);
    census = g.census();
    cb::count_context ctx;
    result = tripoll::triangle_survey(g, cb::count_callback{}, ctx, {mode});
  });
  return static_cast<double>(census.wedge_checks) /
         (static_cast<double>(ranks) * result.total.seconds);
}

/// Work rate with per-vertex degree metadata and the log2-degree-triple
/// counting callback (Sec. 5.9).
double metadata_rate(int ranks, std::uint32_t scale, tripoll::survey_mode mode) {
  tripoll::survey_result result;
  graph::graph_census census{};
  comm::runtime::run(ranks, [&](comm::communicator& c) {
    gen::rmat_generator rmat(gen::rmat_params{scale, 16, 0.57, 0.19, 0.19, 777, true});
    // First pass: count degrees locally from the deterministic stream (the
    // degree is the metadata the paper attaches in this experiment).
    graph::graph_builder<std::uint64_t, graph::none> builder(c);
    gen::for_rank_slice(c, rmat.num_edges(), [&](std::uint64_t k) {
      const auto e = rmat.edge_at(k);
      builder.add_edge(e.u, e.v);
    });
    graph::dodgr<std::uint64_t, graph::none> g(c);
    builder.build_into(g);
    // Set each vertex's metadata to its own ordering rank (== degree under
    // the default policy this bench builds with; rank-local fix-up).
    g.for_all_local([](const graph::vertex_id&, auto& rec) { rec.meta = rec.order_rank; });
    // Target metadata along adjacency must match too.
    g.for_all_local([](const graph::vertex_id&, auto& rec) {
      for (auto& e : rec.adj) e.target_meta = e.target_rank;
    });
    census = g.census();
    comm::counting_set<cb::degree_triple> counters(c);
    cb::degree_triple_context ctx{&counters};
    result = tripoll::triangle_survey(g, cb::degree_triple_callback{}, ctx, {mode});
    counters.finalize();
  });
  return static_cast<double>(census.wedge_checks) /
         (static_cast<double>(ranks) * result.total.seconds);
}

}  // namespace

int main() {
  const int delta = tripoll::bench::scale_delta_from_env(0);
  const int max_ranks = tripoll::bench::max_ranks_from_env(16);
  const auto base_scale = static_cast<std::uint32_t>(std::max(8, 13 + delta));

  tripoll::bench::print_header(
      "Fig. 9: metadata impact on weak scaling (rates = |W+|/(N*t))", "Fig. 9");
  std::printf("%6s %7s | %14s %14s %7s | %14s %14s %7s\n", "ranks", "scale",
              "PP dummy", "PP degree-md", "ratio", "PO dummy", "PO degree-md", "ratio");
  tripoll::bench::print_rule(104);

  for (int ranks = 1; ranks <= max_ranks; ranks *= 2) {
    std::uint32_t scale = base_scale;
    for (int r = ranks; r > 1; r /= 2) ++scale;

    const double pp_plain = plain_rate(ranks, scale, tripoll::survey_mode::push_pull);
    const double pp_meta = metadata_rate(ranks, scale, tripoll::survey_mode::push_pull);
    const double po_plain = plain_rate(ranks, scale, tripoll::survey_mode::push_only);
    const double po_meta = metadata_rate(ranks, scale, tripoll::survey_mode::push_only);

    std::printf("%6d %7u | %14s %14s %6.2fx | %14s %14s %6.2fx\n", ranks, scale,
                tripoll::bench::human_count(static_cast<std::uint64_t>(pp_plain)).c_str(),
                tripoll::bench::human_count(static_cast<std::uint64_t>(pp_meta)).c_str(),
                pp_meta > 0 ? pp_plain / pp_meta : 0.0,
                tripoll::bench::human_count(static_cast<std::uint64_t>(po_plain)).c_str(),
                tripoll::bench::human_count(static_cast<std::uint64_t>(po_meta)).c_str(),
                po_meta > 0 ? po_plain / po_meta : 0.0);
  }
  std::printf("\n(PP = Push-Pull, PO = Push-Only; paper: metadata+callback cuts "
              "throughput by a factor just under 2 for both)\n");
  return 0;
}
