// bench_fig9_metadata_impact -- reproduces Fig. 9 (effect of nontrivial
// metadata on the weak scaling of Push-Pull and Push-Only), extended with
// the survey-plan wire-projection and multi-survey-fusion cases.
//
// Part 1 (the paper's figure): the Fig. 5 weak-scaling R-MAT runs twice --
// once with dummy metadata and a counting callback, once with each vertex's
// degree as metadata and a callback counting log2-degree triples.  Expected
// shape: the metadata+callback variant cuts throughput by a factor just
// under 2 across sizes, for both engines, without changing the scaling
// shape.
//
// Part 2 (plan API): a rich-metadata R-MAT graph (64-byte vertex profiles,
// 64-byte edge interaction records) surveyed through
//   * an identity-projection plan (full structs on the wire),
//   * a projected plan (edge -> 8-byte timestamp, vertex -> nothing),
//   * three single-callback projected runs, and
//   * one fused 3-callback projected plan,
// reporting survey volume_bytes for each.  `--json <path>` writes the cases
// for tools/check_bench_regression.py --plan-gates, which asserts the
// acceptance ratios (projection >= 2x volume reduction at identical
// triangle counts; fused traffic within 1.1x of a single run); `--quick`
// shrinks sizes for CI and skips the weak-scaling tables.
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "comm/counting_set.hpp"
#include "comm/runtime.hpp"
#include "core/callbacks.hpp"
#include "core/survey.hpp"
#include "serial/wire_guard.hpp"
#include "gen/distribute.hpp"
#include "gen/presets.hpp"
#include "gen/rmat.hpp"
#include "graph/builder.hpp"
#include "serial/hash.hpp"

namespace cb = tripoll::callbacks;
namespace comm = tripoll::comm;
namespace gen = tripoll::gen;
namespace graph = tripoll::graph;

namespace {

// --- Part 1: the paper's weak-scaling figure -------------------------------------

/// Work rate |W+|/(N*t) for the dummy-metadata counting survey.
double plain_rate(int ranks, std::uint32_t scale, tripoll::survey_mode mode) {
  tripoll::survey_result result;
  graph::graph_census census{};
  comm::runtime::run(ranks, [&](comm::communicator& c) {
    gen::rmat_generator rmat(gen::rmat_params{scale, 16, 0.57, 0.19, 0.19, 777, true});
    graph::graph_builder<graph::none, graph::none> builder(c);
    gen::for_rank_slice(c, rmat.num_edges(), [&](std::uint64_t k) {
      const auto e = rmat.edge_at(k);
      builder.add_edge(e.u, e.v);
    });
    gen::plain_graph g(c);
    builder.build_into(g);
    census = g.census();
    cb::count_context ctx;
    result = cb::plan_for(g, cb::count_callback{}, ctx).run({mode}).slice(0);
  });
  return static_cast<double>(census.wedge_checks) /
         (static_cast<double>(ranks) * result.total.seconds);
}

/// Work rate with per-vertex degree metadata and the log2-degree-triple
/// counting callback (Sec. 5.9).  Deliberately identity-projected: this is
/// the paper's "nontrivial metadata on the wire" data point.
double metadata_rate(int ranks, std::uint32_t scale, tripoll::survey_mode mode) {
  tripoll::survey_result result;
  graph::graph_census census{};
  comm::runtime::run(ranks, [&](comm::communicator& c) {
    gen::rmat_generator rmat(gen::rmat_params{scale, 16, 0.57, 0.19, 0.19, 777, true});
    // First pass: count degrees locally from the deterministic stream (the
    // degree is the metadata the paper attaches in this experiment).
    graph::graph_builder<std::uint64_t, graph::none> builder(c);
    gen::for_rank_slice(c, rmat.num_edges(), [&](std::uint64_t k) {
      const auto e = rmat.edge_at(k);
      builder.add_edge(e.u, e.v);
    });
    graph::dodgr<std::uint64_t, graph::none> g(c);
    builder.build_into(g);
    // Set each vertex's metadata to its own ordering rank (== degree under
    // the default policy this bench builds with; rank-local fix-up).
    g.for_all_local([](const graph::vertex_id&, auto& rec) { rec.meta = rec.order_rank; });
    // Target metadata along adjacency must match too.
    g.for_all_local([](const graph::vertex_id&, auto& rec) {
      for (auto& e : rec.adj) e.target_meta = e.target_rank;
    });
    census = g.census();
    comm::counting_set<cb::degree_triple> counters(c);
    cb::degree_triple_context ctx{&counters};
    result = tripoll::survey(g)
                 .add(cb::degree_triple_callback{}, ctx)  // identity projections
                 .run({mode})
                 .slice(0);
    counters.finalize();
  });
  return static_cast<double>(census.wedge_checks) /
         (static_cast<double>(ranks) * result.total.seconds);
}

// --- Part 2: plan projection / fusion cases --------------------------------------

/// 64-byte vertex profile: the survey reads none of it (or at most one
/// field), so identity projection is maximally wasteful.
struct rich_vertex_meta {
  std::uint64_t degree = 0;
  std::uint64_t join_time = 0;
  char name[48] = {};
};
static_assert(sizeof(rich_vertex_meta) == 64);
TRIPOLL_WIRE_ASSERT(rich_vertex_meta, degree, join_time, name);

/// 64-byte edge interaction record; the closure analysis reads only the
/// 8-byte timestamp.
struct rich_edge_meta {
  std::uint64_t timestamp = 0;
  std::uint64_t weight = 0;
  char tag[48] = {};
};
static_assert(sizeof(rich_edge_meta) == 64);
TRIPOLL_WIRE_ASSERT(rich_edge_meta, timestamp, weight, tag);

using rich_graph = graph::dodgr<rich_vertex_meta, rich_edge_meta>;

std::uint64_t edge_ts(graph::vertex_id u, graph::vertex_id v) {
  const auto lo = std::min(u, v);
  const auto hi = std::max(u, v);
  return tripoll::serial::hash_combine(tripoll::serial::splitmix64(lo), hi) % 1000000;
}

/// Local (no-RPC) closure histogram so the measured volume is pure
/// traversal traffic, not counting-set chatter.
struct closure_hist_ctx {
  std::map<cb::closure_bin, std::uint64_t> bins;
};

void bin_closure(std::uint64_t a, std::uint64_t b, std::uint64_t c,
                 closure_hist_ctx& ctx) {
  ++ctx.bins[cb::closure_bin_of(a, b, c)];
}

/// Identity-projection closure callback: digs the timestamp out of the
/// full 64-byte struct that crossed the wire.
struct rich_closure_cb {
  template <typename View>
  void operator()(const View& v, closure_hist_ctx& ctx) const {
    bin_closure(v.meta_pq.timestamp, v.meta_pr.timestamp, v.meta_qr.timestamp, ctx);
  }
};

/// Projected closure callback: the 8-byte timestamp IS the edge metadata.
struct ts_closure_cb {
  template <typename View>
  void operator()(const View& v, closure_hist_ctx& ctx) const {
    bin_closure(static_cast<std::uint64_t>(v.meta_pq),
                static_cast<std::uint64_t>(v.meta_pr),
                static_cast<std::uint64_t>(v.meta_qr), ctx);
  }
};

/// Stateful bool-returning filter on the projected timestamps.
struct hot_filter_cb {
  std::uint64_t threshold = 0;

  template <typename View>
  bool operator()(const View& v, std::uint64_t& hot) const {
    if (static_cast<std::uint64_t>(v.meta_pq) < threshold ||
        static_cast<std::uint64_t>(v.meta_pr) < threshold ||
        static_cast<std::uint64_t>(v.meta_qr) < threshold) {
      return false;
    }
    ++hot;
    return true;
  }
};

struct plan_case {
  std::uint64_t volume_bytes = 0;
  std::uint64_t messages = 0;
  std::uint64_t triangles = 0;
  double seconds = 0.0;
  std::uint64_t checksum = 0;  ///< additive closure-histogram digest (0 if n/a)
};

/// Additive histogram digest: sum over bins of count * hash(bin), summed
/// across ranks -- deterministic and comparable between runs.
std::uint64_t hist_checksum(const closure_hist_ctx& ctx) {
  std::uint64_t sum = 0;
  for (const auto& [bin, n] : ctx.bins) {
    sum += n * tripoll::serial::splitmix64((std::uint64_t{bin.first} << 32) | bin.second);
  }
  return sum;
}

void build_rich_graph(comm::communicator& c, rich_graph& g, std::uint32_t scale) {
  graph::graph_builder<rich_vertex_meta, rich_edge_meta> builder(c);
  gen::rmat_generator rmat(gen::rmat_params{scale, 16, 0.57, 0.19, 0.19, 777, true});
  gen::for_rank_slice(c, rmat.num_edges(), [&](std::uint64_t k) {
    const auto e = rmat.edge_at(k);
    rich_edge_meta em;
    em.timestamp = edge_ts(e.u, e.v);
    em.weight = (e.u + e.v) % 97;
    std::snprintf(em.tag, sizeof em.tag, "interaction-%llu",
                  (unsigned long long)(em.timestamp % 1000));
    builder.add_edge(e.u, e.v, em);
  });
  builder.build_into(g);
  // Rank-local metadata fix-up (pure function of the id: deterministic).
  g.for_all_local([](const graph::vertex_id& v, auto& rec) {
    const auto fill = [](rich_vertex_meta& m, graph::vertex_id id, std::uint64_t degree) {
      m.degree = degree;
      m.join_time = tripoll::serial::splitmix64(id) % 1000000;
      std::snprintf(m.name, sizeof m.name, "user-%llu", (unsigned long long)id);
    };
    fill(rec.meta, v, rec.degree);
    for (auto& e : rec.adj) fill(e.target_meta, e.target, 0);
  });
}

/// Run one plan case over a freshly built rich graph.
template <typename RunFn>
plan_case run_case(int ranks, std::uint32_t scale, RunFn&& survey_fn) {
  plan_case out;
  comm::runtime::run(ranks, [&](comm::communicator& c) {
    rich_graph g(c);
    build_rich_graph(c, g, scale);
    closure_hist_ctx hist;
    const auto [result, used_hist] = survey_fn(g, hist);
    const auto checksum = c.all_reduce_sum(used_hist ? hist_checksum(hist) : 0);
    if (c.rank0()) {
      out.volume_bytes = result.total.volume_bytes;
      out.messages = result.total.messages;
      out.triangles = result.triangles_found;
      out.seconds = result.total.seconds;
      out.checksum = checksum;
    }
  });
  return out;
}

void print_case(const char* name, const plan_case& pc) {
  std::printf("%-18s %12s %10s tri %10llu  %.3fs\n", name,
              tripoll::bench::human_bytes(pc.volume_bytes).c_str(),
              tripoll::bench::human_count(pc.messages).c_str(),
              (unsigned long long)pc.triangles, pc.seconds);
}

void write_json(const char* path, const std::map<std::string, plan_case>& cases,
                std::uint32_t scale, int ranks) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path);
    std::exit(2);
  }
  std::fprintf(f, "{\n  \"pr4_plan_cases\": {\n");
  std::size_t i = 0;
  for (const auto& [name, pc] : cases) {
    std::fprintf(f,
                 "    \"%s\": {\"volume_bytes\": %llu, \"messages\": %llu, "
                 "\"triangles\": %llu, \"seconds\": %.6f, \"checksum\": %llu}%s\n",
                 name.c_str(), (unsigned long long)pc.volume_bytes,
                 (unsigned long long)pc.messages, (unsigned long long)pc.triangles,
                 pc.seconds, (unsigned long long)pc.checksum,
                 ++i == cases.size() ? "" : ",");
  }
  std::fprintf(f, "  },\n");
  std::fprintf(f,
               "  \"params\": {\"scale\": %u, \"ranks\": %d, "
               "\"vertex_meta_bytes\": 64, \"edge_meta_bytes\": 64}\n}\n",
               scale, ranks);
  std::fclose(f);
  std::printf("\nwrote %s\n", path);
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = tripoll::bench::quick_mode(argc, argv);
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      if (i + 1 >= argc || argv[i + 1][0] == '-') {
        std::fprintf(stderr, "--json needs an output path\n");
        return 2;
      }
      json_path = argv[++i];
    }
  }

  const int delta = tripoll::bench::scale_delta_from_env(0);
  const int max_ranks = tripoll::bench::max_ranks_from_env(16);
  const auto base_scale = static_cast<std::uint32_t>(std::max(8, 13 + delta));

  if (!quick) {
    tripoll::bench::print_header(
        "Fig. 9: metadata impact on weak scaling (rates = |W+|/(N*t))", "Fig. 9");
    std::printf("%6s %7s | %14s %14s %7s | %14s %14s %7s\n", "ranks", "scale",
                "PP dummy", "PP degree-md", "ratio", "PO dummy", "PO degree-md", "ratio");
    tripoll::bench::print_rule(104);

    for (int ranks = 1; ranks <= max_ranks; ranks *= 2) {
      std::uint32_t scale = base_scale;
      for (int r = ranks; r > 1; r /= 2) ++scale;

      const double pp_plain = plain_rate(ranks, scale, tripoll::survey_mode::push_pull);
      const double pp_meta = metadata_rate(ranks, scale, tripoll::survey_mode::push_pull);
      const double po_plain = plain_rate(ranks, scale, tripoll::survey_mode::push_only);
      const double po_meta = metadata_rate(ranks, scale, tripoll::survey_mode::push_only);

      std::printf("%6d %7u | %14s %14s %6.2fx | %14s %14s %6.2fx\n", ranks, scale,
                  tripoll::bench::human_count(static_cast<std::uint64_t>(pp_plain)).c_str(),
                  tripoll::bench::human_count(static_cast<std::uint64_t>(pp_meta)).c_str(),
                  pp_meta > 0 ? pp_plain / pp_meta : 0.0,
                  tripoll::bench::human_count(static_cast<std::uint64_t>(po_plain)).c_str(),
                  tripoll::bench::human_count(static_cast<std::uint64_t>(po_meta)).c_str(),
                  po_meta > 0 ? po_plain / po_meta : 0.0);
    }
    std::printf("\n(PP = Push-Pull, PO = Push-Only; paper: metadata+callback cuts "
                "throughput by a factor just under 2 for both)\n");
  }

  // --- Part 2: plan projection / fusion -----------------------------------------
  const int plan_ranks = quick ? 4 : std::min(8, max_ranks);
  const std::uint32_t plan_scale =
      quick ? 10u : static_cast<std::uint32_t>(std::max(8, 12 + delta));
  const auto mode = tripoll::survey_mode::push_pull;

  tripoll::bench::print_header(
      "Survey-plan wire projection & fusion (rich 64B/64B metadata R-MAT)",
      "PR 4 acceptance; extends Fig. 9");
  std::printf("scale %u, %d ranks, push_pull; volume = survey remote bytes\n\n",
              plan_scale, plan_ranks);

  std::map<std::string, plan_case> cases;

  cases["identity_closure"] = run_case(plan_ranks, plan_scale, [&](rich_graph& g,
                                                                   closure_hist_ctx& h) {
    auto r = tripoll::survey(g).add(rich_closure_cb{}, h).run({mode});
    return std::pair(r.slice(0), true);
  });
  cases["projected_closure"] =
      run_case(plan_ranks, plan_scale, [&](rich_graph& g, closure_hist_ctx& h) {
        auto r = tripoll::survey(g)
                     .project_vertex(tripoll::drop_projection{})
                     .project_edge([](const rich_edge_meta& e) { return e.timestamp; })
                     .add(ts_closure_cb{}, h)
                     .run({mode});
        return std::pair(r.slice(0), true);
      });
  cases["single_count"] =
      run_case(plan_ranks, plan_scale, [&](rich_graph& g, closure_hist_ctx&) {
        cb::count_context ctx;
        auto r = tripoll::survey(g)
                     .project_vertex(tripoll::drop_projection{})
                     .project_edge([](const rich_edge_meta& e) { return e.timestamp; })
                     .add(cb::count_callback{}, ctx)
                     .run({mode});
        return std::pair(r.slice(0), false);
      });
  cases["single_closure"] = cases["projected_closure"];
  cases["single_hot_filter"] =
      run_case(plan_ranks, plan_scale, [&](rich_graph& g, closure_hist_ctx&) {
        std::uint64_t hot = 0;
        auto r = tripoll::survey(g)
                     .project_vertex(tripoll::drop_projection{})
                     .project_edge([](const rich_edge_meta& e) { return e.timestamp; })
                     .add(hot_filter_cb{500000}, hot)
                     .run({mode});
        return std::pair(r.slice(0), false);
      });
  cases["fused3"] = run_case(plan_ranks, plan_scale, [&](rich_graph& g,
                                                         closure_hist_ctx& h) {
    cb::count_context ctx;
    std::uint64_t hot = 0;
    auto r = tripoll::survey(g)
                 .project_vertex(tripoll::drop_projection{})
                 .project_edge([](const rich_edge_meta& e) { return e.timestamp; })
                 .add(cb::count_callback{}, ctx)
                 .add(ts_closure_cb{}, h)
                 .add(hot_filter_cb{500000}, hot)
                 .run({mode});
    return std::pair(r.slice(1), true);
  });

  for (const auto& [name, pc] : cases) print_case(name.c_str(), pc);

  const auto& ident = cases["identity_closure"];
  const auto& proj = cases["projected_closure"];
  const auto& fused = cases["fused3"];
  const std::uint64_t single_max =
      std::max({cases["single_count"].volume_bytes, cases["single_closure"].volume_bytes,
                cases["single_hot_filter"].volume_bytes});
  const std::uint64_t sequential_sum = cases["single_count"].volume_bytes +
                                       cases["single_closure"].volume_bytes +
                                       cases["single_hot_filter"].volume_bytes;
  std::printf("\nprojection volume reduction : %.2fx (identity / projected)\n",
              proj.volume_bytes ? static_cast<double>(ident.volume_bytes) /
                                      static_cast<double>(proj.volume_bytes)
                                : 0.0);
  std::printf("fused vs worst single run   : %.3fx\n",
              single_max ? static_cast<double>(fused.volume_bytes) /
                               static_cast<double>(single_max)
                         : 0.0);
  std::printf("3 sequential runs vs fused  : %.2fx\n",
              fused.volume_bytes ? static_cast<double>(sequential_sum) /
                                       static_cast<double>(fused.volume_bytes)
                                 : 0.0);
  std::printf("triangles identical         : %s; closure digests identical: %s\n",
              (ident.triangles == proj.triangles && proj.triangles == fused.triangles)
                  ? "yes"
                  : "NO",
              (ident.checksum == proj.checksum && proj.checksum == fused.checksum)
                  ? "yes"
                  : "NO");

  if (json_path != nullptr) write_json(json_path, cases, plan_scale, plan_ranks);
  return 0;
}
