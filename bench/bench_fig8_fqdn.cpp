// bench_fig8_fqdn -- reproduces the Sec. 5.8 / Fig. 8 experiment: FQDN
// analysis of triangles in the web graph with string vertex metadata.
//
// Reported, mirroring the paper's numbers for WDC-2012:
//  * runtime of the FQDN 3-tuple survey vs plain counting on the same graph
//    (paper: 1694.6s vs 456.7s, a ~3.7x metadata overhead),
//  * the number of triangles with 3 distinct FQDNs and of unique 3-tuples
//    (paper: 248.7B and 39.2B),
//  * the focus-domain ("amazon.com") pair distribution that Fig. 8 plots,
//    post-processed from the survey output.
#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "comm/counting_set.hpp"
#include "comm/runtime.hpp"
#include "core/callbacks.hpp"
#include "core/survey.hpp"
#include "gen/presets.hpp"
#include "gen/web.hpp"

namespace cb = tripoll::callbacks;
namespace comm = tripoll::comm;
namespace gen = tripoll::gen;

int main() {
  const int delta = tripoll::bench::scale_delta_from_env(0);
  const int ranks = std::min(tripoll::bench::max_ranks_from_env(), 16);

  gen::web_params params;
  params.scale = static_cast<std::uint32_t>(std::max(8, 15 + delta));
  // More domains and more cross-domain links than the scaling presets:
  // tuple diversity and distinct-FQDN triangles are what make the metadata
  // survey expensive relative to plain counting (paper Sec. 5.8).
  params.num_domains = std::uint32_t{1} << (params.scale > 3 ? params.scale - 3 : 1);
  params.p_intra_domain = 0.20;
  params.p_hub = 0.30;
  params.p_community = 0.35;

  tripoll::bench::print_header("Fig. 8 / Sec 5.8: FQDN survey on the web graph",
                               "Fig. 8");

  // Pass 1: plain triangle count on the same topology, no vertex metadata.
  // Run twice; the first run warms the allocator and is discarded.
  double plain_seconds = 0.0;
  std::uint64_t plain_triangles = 0;
  for (int pass = 0; pass < 2; ++pass) {
    gen::dataset_spec spec;
    spec.kind = gen::dataset_kind::web;
    spec.web = params;
    comm::runtime::run(ranks, [&](comm::communicator& c) {
      gen::plain_graph g(c);
      gen::build_dataset(c, g, spec);
      cb::count_context ctx;
      const auto r = cb::plan_for(g, cb::count_callback{}, ctx)
                         .run({tripoll::survey_mode::push_pull})
                         .slice(0);
      const auto total = ctx.global_count(c);
      if (c.rank0()) {
        plain_seconds = r.total.seconds;
        plain_triangles = total;
      }
    });
  }

  // Pass 2: the FQDN 3-tuple survey with string metadata.
  std::map<cb::fqdn_tuple, std::uint64_t> tuples;
  double fqdn_seconds = 0.0;
  std::uint64_t distinct_triangles = 0, unique_tuples = 0;
  comm::runtime::run(ranks, [&](comm::communicator& c) {
    gen::web_graph g(c);
    gen::build_web_graph(c, g, params);
    // Small cache relative to the tuple diversity: at paper scale (39.2B
    // unique tuples) the per-rank cache misses constantly, so nearly every
    // increment becomes an RPC; emulate that regime here.
    comm::counting_set<cb::fqdn_tuple> counters(c, /*cache_capacity=*/64);
    cb::fqdn_tuple_context ctx{&counters};
    const auto r = cb::plan_for(g, cb::fqdn_tuple_callback{}, ctx)
                       .run({tripoll::survey_mode::push_pull})
                       .slice(0);
    counters.finalize();
    const auto distinct = c.all_reduce_sum(ctx.distinct_fqdn_triangles);
    const auto uniq = counters.global_size();
    auto gathered = counters.gather_all();  // collective: all ranks participate
    if (c.rank0()) {
      fqdn_seconds = r.total.seconds;
      distinct_triangles = distinct;
      unique_tuples = uniq;
      tuples = std::move(gathered);
    }
  });

  std::printf("plain count        : %s triangles in %.3fs\n",
              tripoll::bench::human_count(plain_triangles).c_str(), plain_seconds);
  std::printf("FQDN tuple survey  : %.3fs  (metadata overhead %.2fx; paper: 3.7x)\n",
              fqdn_seconds, plain_seconds > 0 ? fqdn_seconds / plain_seconds : 0.0);
  std::printf("distinct-FQDN triangles: %s   unique FQDN 3-tuples: %s\n\n",
              tripoll::bench::human_count(distinct_triangles).c_str(),
              tripoll::bench::human_count(unique_tuples).c_str());

  // Post-processing around the focus domain (paper: done on one machine).
  const std::string focus = "amazon.com";
  std::map<std::pair<std::string, std::string>, std::uint64_t> pairs;
  for (const auto& [tuple, n] : tuples) {
    const auto& [a, b, d] = tuple;
    if (a == focus) {
      pairs[{b, d}] += n;
    } else if (b == focus) {
      pairs[{a, d}] += n;
    } else if (d == focus) {
      pairs[{a, b}] += n;
    }
  }
  std::vector<std::pair<std::uint64_t, std::pair<std::string, std::string>>> top;
  for (const auto& [pr, n] : pairs) top.emplace_back(n, pr);
  std::sort(top.rbegin(), top.rend());
  std::printf("top FQDN pairs in triangles with \"%s\" (%zu pairs total):\n",
              focus.c_str(), pairs.size());
  for (std::size_t i = 0; i < std::min<std::size_t>(top.size(), 20); ++i) {
    std::printf("  %10llu  %s + %s\n", (unsigned long long)top[i].first,
                top[i].second.first.c_str(), top[i].second.second.c_str());
  }

  // Per-domain totals with the focus domain (the dense rows of Fig. 8:
  // the amazon family, competitors, and topical communities).
  std::map<std::string, std::uint64_t> row_totals;
  for (const auto& [pr, n] : pairs) {
    row_totals[pr.first] += n;
    row_totals[pr.second] += n;
  }
  std::vector<std::pair<std::uint64_t, std::string>> rows;
  for (const auto& [d, n] : row_totals) rows.emplace_back(n, d);
  std::sort(rows.rbegin(), rows.rend());
  std::printf("\ndomains most co-triangulated with \"%s\":\n", focus.c_str());
  for (std::size_t i = 0; i < std::min<std::size_t>(rows.size(), 12); ++i) {
    std::printf("  %10llu  %s\n", (unsigned long long)rows[i].first,
                rows[i].second.c_str());
  }
  return 0;
}
