// bench_table1_datasets -- reproduces Table 1 (dataset census).
//
// For every stand-in graph: |V|, |E| (directed, paper convention), |T|,
// d_max and d_max^+, plus |W+| (the wedge-check work driver used by the
// weak-scaling metric).  |T| is computed by a TriPoll survey.
#include <cstdio>

#include "bench_util.hpp"
#include "comm/runtime.hpp"
#include "core/callbacks.hpp"
#include "core/survey.hpp"
#include "gen/presets.hpp"
#include "gen/temporal.hpp"

namespace cb = tripoll::callbacks;
namespace comm = tripoll::comm;
namespace gen = tripoll::gen;
using tripoll::bench::human_count;

int main() {
  const int delta = tripoll::bench::scale_delta_from_env();
  const int ranks = std::min(tripoll::bench::max_ranks_from_env(), 16);

  tripoll::bench::print_header("Table 1: datasets", "Table 1");
  std::printf("%-22s %10s %12s %12s %8s %8s %12s\n", "graph", "|V|", "|E|(dir)",
              "|T|", "dmax", "dmax+", "|W+|");
  tripoll::bench::print_rule(92);

  auto suite = gen::standard_suite(delta);
  suite.insert(suite.begin(), gen::livejournal_like(delta));

  for (const auto& spec : suite) {
    comm::runtime::run(ranks, [&](comm::communicator& c) {
      gen::plain_graph g(c);
      gen::build_dataset(c, g, spec);
      const auto census = g.census();
      cb::count_context ctx;
      tripoll::triangle_survey(g, cb::count_callback{}, ctx,
                               {tripoll::survey_mode::push_pull});
      const auto triangles = ctx.global_count(c);
      if (c.rank0()) {
        std::printf("%-22s %10s %12s %12s %8llu %8llu %12s\n", spec.name.c_str(),
                    human_count(census.num_vertices).c_str(),
                    human_count(census.num_directed_edges).c_str(),
                    human_count(triangles).c_str(),
                    (unsigned long long)census.max_degree,
                    (unsigned long long)census.max_out_degree,
                    human_count(census.wedge_checks).c_str());
      }
    });
  }

  // The Reddit-like temporal graph row (the paper's last Table 1 row).
  {
    gen::temporal_params params;
    params.scale = static_cast<std::uint32_t>(std::max(4, 15 + delta));
    comm::runtime::run(ranks, [&](comm::communicator& c) {
      gen::temporal_graph g(c);
      gen::build_temporal_graph(c, g, params);
      const auto census = g.census();
      cb::count_context ctx;
      tripoll::triangle_survey(g, cb::count_callback{}, ctx,
                               {tripoll::survey_mode::push_pull});
      const auto triangles = ctx.global_count(c);
      if (c.rank0()) {
        std::printf("%-22s %10s %12s %12s %8llu %8llu %12s\n", "reddit-like",
                    human_count(census.num_vertices).c_str(),
                    human_count(census.num_directed_edges).c_str(),
                    human_count(triangles).c_str(),
                    (unsigned long long)census.max_degree,
                    (unsigned long long)census.max_out_degree,
                    human_count(census.wedge_checks).c_str());
      }
    });
  }
  return 0;
}
