// bench_snapshot_io -- parallel ingest-to-freeze pipeline and snapshot
// codecs (PR 8 acceptance numbers).
//
// For each ablation preset (rmat / temporal / web) this bench writes the
// graph to an edge-list file once, then measures:
//   * edge-list ingest wall at 1 thread vs 4 threads (median of N reps,
//     identical edge counts asserted) and the resulting MB/s,
//   * freeze wall at 1 thread vs 4 threads over the same built graph,
//   * snapshot file bytes per directed edge for the raw (v2) and
//     compressed (v3) codecs, and the time-to-first-survey of each: load
//     plus one counting survey, because the raw path's mmap defers its
//     page faults to the traversal -- timing the load call alone would
//     credit raw with work it has merely postponed (median of N reps;
//     identical triangle counts asserted).
//
// `--json <path>` writes a `pr8_io_cases` object consumed by
// tools/check_bench_regression.py --io-gates, which asserts
//   * identical triangle counts between the raw and compressed loads,
//   * raw/compressed snapshot size ratio >= --io-compression-min,
//   * compressed/raw load wall ratio <= --io-load-max,
//   * (ingest+freeze) 1-thread/4-thread speedup >= --io-speedup-min,
//     skipped when params.hw_threads < 4.
// `--quick` shrinks the graphs and repetitions for CI.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "bench_util.hpp"
#include "comm/runtime.hpp"
#include "core/callbacks.hpp"
#include "core/survey.hpp"
#include "gen/presets.hpp"
#include "graph/builder.hpp"
#include "graph/frozen.hpp"
#include "graph/io.hpp"
#include "graph/snapshot.hpp"

namespace cb = tripoll::callbacks;
namespace comm = tripoll::comm;
namespace gen = tripoll::gen;
namespace graph = tripoll::graph;

namespace {

using clock_type = std::chrono::steady_clock;

double seconds_since(clock_type::time_point t0) {
  return std::chrono::duration<double>(clock_type::now() - t0).count();
}

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

struct io_case {
  std::uint64_t edges = 0;       ///< global directed (out-)edges after build
  std::uint64_t file_bytes = 0;  ///< edge-list file size
  std::uint64_t ingested = 0;    ///< parsed edges (identical at any threads)
  double ingest_seconds_1t = 0.0;
  double ingest_seconds_4t = 0.0;
  double freeze_seconds_1t = 0.0;
  double freeze_seconds_4t = 0.0;
  std::uint64_t snapshot_bytes_raw = 0;
  std::uint64_t snapshot_bytes_compressed = 0;
  double load_seconds_raw = 0.0;
  double load_seconds_compressed = 0.0;
  std::uint64_t triangles_raw = 0;
  std::uint64_t triangles_compressed = 0;

  [[nodiscard]] double ingest_mb_per_s() const {
    return ingest_seconds_4t > 0
               ? static_cast<double>(file_bytes) / 1e6 / ingest_seconds_4t
               : 0.0;
  }
  [[nodiscard]] double combined_speedup() const {
    const double par = ingest_seconds_4t + freeze_seconds_4t;
    return par > 0 ? (ingest_seconds_1t + freeze_seconds_1t) / par : 0.0;
  }
  [[nodiscard]] double compression_ratio() const {
    return snapshot_bytes_compressed > 0
               ? static_cast<double>(snapshot_bytes_raw) /
                     static_cast<double>(snapshot_bytes_compressed)
               : 0.0;
  }
};

/// Write one preset's edge list to a file (single rank, deterministic).
std::uint64_t write_preset_file(const std::string& which, int delta,
                                const std::string& path) {
  std::uint64_t lines = 0;
  comm::runtime::run(1, [&](comm::communicator& c) {
    graph::edge_list_writer out(path);
    gen::for_preset_edges(c, which, delta, [&](graph::vertex_id u, graph::vertex_id v) {
      out.write(u, v);
      ++lines;
    });
  });
  return lines;
}

io_case run_case(const std::string& which, int delta, int reps) {
  io_case out;
  const std::string stem =
      (std::filesystem::temp_directory_path() /
       ("tripoll_bench_io_" + which + "_" + std::to_string(::getpid())))
          .string();
  const std::string edges_path = stem + ".txt";
  (void)write_preset_file(which, delta, edges_path);
  out.file_bytes = std::filesystem::file_size(edges_path);

  comm::runtime::run(1, [&](comm::communicator& c) {
    // Ingest wall at 1 vs 4 threads (sink only counts; the parse itself is
    // what scales).  Medians over alternating reps.
    std::vector<double> ing1, ing4;
    std::uint64_t edges_1t = 0, edges_4t = 0;
    for (int r = 0; r < reps; ++r) {
      for (const int threads : {1, 4}) {
        graph::ingest_options opts;
        opts.threads = threads;
        std::uint64_t n = 0;
        const auto t0 = clock_type::now();
        const auto stats = graph::read_edge_list(
            c, edges_path, [&](const graph::parsed_edge&) { ++n; }, opts);
        const double s = seconds_since(t0);
        (threads == 1 ? ing1 : ing4).push_back(s);
        (threads == 1 ? edges_1t : edges_4t) = n;
        (void)stats;
      }
    }
    if (edges_1t != edges_4t) {
      std::fprintf(stderr, "FATAL: parallel ingest parsed %llu edges, serial %llu\n",
                   (unsigned long long)edges_4t, (unsigned long long)edges_1t);
      std::exit(1);
    }
    out.ingested = edges_1t;
    out.ingest_seconds_1t = median(ing1);
    out.ingest_seconds_4t = median(ing4);

    // Build once, freeze repeatedly at 1 vs 4 threads.
    gen::plain_graph g(c);
    graph::graph_builder<graph::none, graph::none> builder(
        c, graph::ordering_policy::degeneracy);
    graph::read_edge_list(c, edges_path, [&](const graph::parsed_edge& e) {
      builder.add_edge(e.u, e.v);
    });
    builder.build_into(g);
    std::vector<double> frz1, frz4;
    for (int r = 0; r < reps; ++r) {
      for (const int threads : {1, 4}) {
        graph::freeze_options opts;
        opts.threads = threads;
        const auto t0 = clock_type::now();
        auto fz = graph::freeze(g, opts);
        (threads == 1 ? frz1 : frz4).push_back(seconds_since(t0));
        if (r == 0 && threads == 1) out.edges = fz.local_num_edges();
      }
    }
    out.freeze_seconds_1t = median(frz1);
    out.freeze_seconds_4t = median(frz4);

    // Snapshot codecs: bytes on disk and time-to-first-survey (load plus
    // one counting survey -- mmap's lazy page faults land in the traversal,
    // so this is the walltime the two paths genuinely compete on; the files
    // were just written, so the page cache is hot for both).
    auto fz = graph::freeze(g);
    out.snapshot_bytes_raw = graph::save_snapshot(fz, stem + ".raw");
    out.snapshot_bytes_compressed =
        graph::save_snapshot(fz, stem + ".cmp", graph::snapshot_codec::compressed);
    std::vector<double> load_raw, load_cmp;
    for (int r = 0; r < reps; ++r) {
      auto t0 = clock_type::now();
      {
        auto a = graph::load_snapshot<graph::none, graph::none>(c, stem + ".raw");
        cb::count_context ctx;
        (void)cb::plan_for(a, cb::count_callback{}, ctx).run({});
        out.triangles_raw = ctx.global_count(c);
      }
      load_raw.push_back(seconds_since(t0));
      t0 = clock_type::now();
      {
        auto b = graph::load_snapshot<graph::none, graph::none>(c, stem + ".cmp");
        cb::count_context ctx;
        (void)cb::plan_for(b, cb::count_callback{}, ctx).run({});
        out.triangles_compressed = ctx.global_count(c);
      }
      load_cmp.push_back(seconds_since(t0));
    }
    out.load_seconds_raw = median(load_raw);
    out.load_seconds_compressed = median(load_cmp);
  });

  std::filesystem::remove(edges_path);
  std::filesystem::remove(graph::snapshot_rank_path(stem + ".raw", 0));
  std::filesystem::remove(graph::snapshot_rank_path(stem + ".cmp", 0));
  return out;
}

void print_case(const std::string& name, const io_case& ic) {
  std::printf("%-10s edges %9llu  ingest %6.4fs -> %6.4fs  freeze %6.4fs -> %6.4fs  "
              "pipeline %4.2fx  %6.1f MB/s\n",
              name.c_str(), (unsigned long long)ic.edges, ic.ingest_seconds_1t,
              ic.ingest_seconds_4t, ic.freeze_seconds_1t, ic.freeze_seconds_4t,
              ic.combined_speedup(), ic.ingest_mb_per_s());
  std::printf("%-10s snapshot %8llu B raw, %8llu B v3 (%4.2fx)  load+survey %6.4fs raw, "
              "%6.4fs v3\n",
              "", (unsigned long long)ic.snapshot_bytes_raw,
              (unsigned long long)ic.snapshot_bytes_compressed, ic.compression_ratio(),
              ic.load_seconds_raw, ic.load_seconds_compressed);
}

void write_json(const char* path, const std::map<std::string, io_case>& cases,
                int delta) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path);
    std::exit(2);
  }
  std::fprintf(f, "{\n  \"pr8_io_cases\": {\n");
  std::size_t i = 0;
  for (const auto& [name, ic] : cases) {
    std::fprintf(
        f,
        "    \"%s\": {\"edges\": %llu, \"file_bytes\": %llu, "
        "\"ingest_seconds_1t\": %.6f, \"ingest_seconds_4t\": %.6f, "
        "\"ingest_mb_per_s\": %.2f, "
        "\"freeze_seconds_1t\": %.6f, \"freeze_seconds_4t\": %.6f, "
        "\"snapshot_bytes_raw\": %llu, \"snapshot_bytes_compressed\": %llu, "
        "\"load_seconds_raw\": %.6f, \"load_seconds_compressed\": %.6f, "
        "\"triangles_raw\": %llu, \"triangles_compressed\": %llu}%s\n",
        name.c_str(), (unsigned long long)ic.edges,
        (unsigned long long)ic.file_bytes, ic.ingest_seconds_1t, ic.ingest_seconds_4t,
        ic.ingest_mb_per_s(), ic.freeze_seconds_1t, ic.freeze_seconds_4t,
        (unsigned long long)ic.snapshot_bytes_raw,
        (unsigned long long)ic.snapshot_bytes_compressed, ic.load_seconds_raw,
        ic.load_seconds_compressed, (unsigned long long)ic.triangles_raw,
        (unsigned long long)ic.triangles_compressed, ++i == cases.size() ? "" : ",");
  }
  std::fprintf(f, "  },\n  \"params\": {\"ranks\": 1, \"delta\": %d, "
               "\"hw_threads\": %u}\n}\n",
               delta, std::thread::hardware_concurrency());
  std::fclose(f);
  std::printf("\nwrote %s\n", path);
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = tripoll::bench::quick_mode(argc, argv);
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      if (i + 1 >= argc || argv[i + 1][0] == '-') {
        std::fprintf(stderr, "--json needs an output path\n");
        return 2;
      }
      json_path = argv[++i];
    }
  }

  const int delta = quick ? -1 : tripoll::bench::scale_delta_from_env(1);
  const int reps = quick ? 3 : 7;

  tripoll::bench::print_header(
      "Parallel ingest-to-freeze pipeline and snapshot codecs (raw v2 vs v3)",
      "PR 8");
  std::map<std::string, io_case> cases;
  for (const std::string which : {"rmat", "temporal", "web"}) {
    cases[which] = run_case(which, delta, reps);
    print_case(which, cases[which]);
    const auto& ic = cases[which];
    if (ic.triangles_raw != ic.triangles_compressed) {
      std::fprintf(stderr,
                   "FATAL: triangle counts diverge on %s (raw %llu, compressed %llu)\n",
                   which.c_str(), (unsigned long long)ic.triangles_raw,
                   (unsigned long long)ic.triangles_compressed);
      return 1;
    }
  }
  if (json_path != nullptr) write_json(json_path, cases, delta);
  return 0;
}
