// bench_storage_frozen -- frozen CSR storage vs the mutable distributed_map
// form (PR 5 acceptance numbers).
//
// For each ablation preset (rmat / temporal / web) this bench builds the
// graph once, then measures:
//   * survey wall time over the mutable map storage vs the frozen arenas
//     (median of N runs; push_pull mode, counting survey, identical counts
//     asserted),
//   * resident bytes per directed edge for both forms (map: measured
//     per-record heap footprint incl. hash-node and vector overhead;
//     frozen: exact arena + index bytes),
//   * freeze time, snapshot save time, and snapshot load time (mmap) --
//     the cost of entering the frozen world and of skipping rebuild+peel
//     on the next session.
//
// `--json <path>` writes a `pr5_storage_cases` object consumed by
// tools/check_bench_regression.py --storage-gates, which asserts
//   * identical triangle counts between the storage forms,
//   * frozen/map traversal time ratio <= --storage-traversal-max,
//   * frozen bytes-per-edge <= --storage-bpe-max and <= the map's.
// `--quick` shrinks the graphs and repetitions for CI.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include <unistd.h>

#include "bench_util.hpp"
#include "comm/runtime.hpp"
#include "core/callbacks.hpp"
#include "core/survey.hpp"
#include "gen/distribute.hpp"
#include "gen/presets.hpp"
#include "gen/rmat.hpp"
#include "gen/temporal.hpp"
#include "gen/web.hpp"
#include "graph/builder.hpp"
#include "graph/frozen.hpp"
#include "graph/snapshot.hpp"

namespace cb = tripoll::callbacks;
namespace comm = tripoll::comm;
namespace gen = tripoll::gen;
namespace graph = tripoll::graph;

namespace {

using clock_type = std::chrono::steady_clock;

double seconds_since(clock_type::time_point t0) {
  return std::chrono::duration<double>(clock_type::now() - t0).count();
}

/// Measured heap footprint of the mutable map storage on this rank:
/// unordered_map bucket array + one allocated node per vertex + each
/// record's adjacency vector capacity.
template <typename Graph>
std::uint64_t map_local_bytes(Graph& g) {
  std::uint64_t bytes = g.storage().local_storage().bucket_count() * sizeof(void*);
  g.for_all_local([&](const graph::vertex_id&, const auto& rec) {
    using record_type = std::remove_cvref_t<decltype(rec)>;
    using entry_type = typename std::remove_cvref_t<decltype(rec.adj)>::value_type;
    bytes += sizeof(std::pair<const graph::vertex_id, record_type>) + sizeof(void*);
    bytes += rec.adj.capacity() * sizeof(entry_type);
  });
  return bytes;
}

struct storage_case {
  std::uint64_t edges = 0;           ///< global directed edges
  std::uint64_t triangles_map = 0;
  std::uint64_t triangles_frozen = 0;
  std::uint64_t triangles_loaded = 0;
  double map_seconds = 0.0;          ///< median survey time, map storage
  double frozen_seconds = 0.0;       ///< median survey time, frozen storage
  double freeze_seconds = 0.0;
  double save_seconds = 0.0;
  double load_seconds = 0.0;         ///< mmap + index rebuild
  double map_bytes_per_edge = 0.0;
  double frozen_bytes_per_edge = 0.0;
};

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

storage_case run_case(const std::string& which, int ranks, int delta, int reps) {
  storage_case out;
  const std::string prefix =
      (std::filesystem::temp_directory_path() /
       ("tripoll_bench_snap_" + which + "_" + std::to_string(::getpid())))
          .string();
  comm::runtime::run(ranks, [&](comm::communicator& c) {
    gen::plain_graph g(c);
    graph::graph_builder<graph::none, graph::none> builder(
        c, graph::ordering_policy::degeneracy);
    gen::for_preset_edges(c, which, delta,
                 [&](graph::vertex_id u, graph::vertex_id v) { builder.add_edge(u, v); });
    builder.build_into(g);

    // Freeze (timed; max over ranks via barrier bracketing).
    c.barrier();
    auto t0 = clock_type::now();
    auto fz = graph::freeze(g);
    c.barrier();
    const double freeze_s = c.all_reduce_max(seconds_since(t0));

    // Alternate map/frozen surveys so thermal/noise drift hits both forms.
    std::vector<double> map_times, frozen_times;
    std::uint64_t tri_map = 0, tri_frozen = 0;
    for (int r = 0; r < reps; ++r) {
      cb::count_context ctx_m;
      const auto rm = cb::plan_for(g, cb::count_callback{}, ctx_m).run({}).slice(0);
      map_times.push_back(rm.total.seconds);
      tri_map = ctx_m.global_count(c);
      cb::count_context ctx_f;
      const auto rf = cb::plan_for(fz, cb::count_callback{}, ctx_f).run({}).slice(0);
      frozen_times.push_back(rf.total.seconds);
      tri_frozen = ctx_f.global_count(c);
    }

    // Storage footprints (global sums).
    const auto frozen_stats = fz.global_storage_stats();
    const auto map_bytes = c.all_reduce_sum(map_local_bytes(g));

    // Snapshot save + mmap load (timed).
    c.barrier();
    t0 = clock_type::now();
    (void)graph::save_snapshot(fz, prefix);
    const double save_s = c.all_reduce_max(seconds_since(t0));
    c.barrier();
    t0 = clock_type::now();
    auto loaded = graph::load_snapshot<graph::none, graph::none>(c, prefix);
    c.barrier();
    const double load_s = c.all_reduce_max(seconds_since(t0));
    cb::count_context ctx_l;
    (void)cb::plan_for(loaded, cb::count_callback{}, ctx_l).run({}).slice(0);
    const auto tri_loaded = ctx_l.global_count(c);

    if (c.rank0()) {
      out.edges = frozen_stats.edges;
      out.triangles_map = tri_map;
      out.triangles_frozen = tri_frozen;
      out.triangles_loaded = tri_loaded;
      out.map_seconds = median(map_times);
      out.frozen_seconds = median(frozen_times);
      out.freeze_seconds = freeze_s;
      out.save_seconds = save_s;
      out.load_seconds = load_s;
      out.map_bytes_per_edge =
          static_cast<double>(map_bytes) / static_cast<double>(frozen_stats.edges);
      out.frozen_bytes_per_edge = frozen_stats.bytes_per_edge();
      for (int r = 0; r < ranks; ++r) {
        std::filesystem::remove(graph::snapshot_rank_path(prefix, r));
      }
    }
  });
  return out;
}

void print_case(const std::string& name, const storage_case& sc) {
  std::printf("%-10s edges %9llu  map %7.4fs  frozen %7.4fs  ratio %5.3fx  "
              "B/edge %6.1f -> %5.1f  freeze %6.4fs save %6.4fs load %6.4fs\n",
              name.c_str(), (unsigned long long)sc.edges, sc.map_seconds,
              sc.frozen_seconds,
              sc.map_seconds > 0 ? sc.frozen_seconds / sc.map_seconds : 0.0,
              sc.map_bytes_per_edge, sc.frozen_bytes_per_edge, sc.freeze_seconds,
              sc.save_seconds, sc.load_seconds);
}

void write_json(const char* path, const std::map<std::string, storage_case>& cases,
                int ranks, int delta) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path);
    std::exit(2);
  }
  std::fprintf(f, "{\n  \"pr5_storage_cases\": {\n");
  std::size_t i = 0;
  for (const auto& [name, sc] : cases) {
    std::fprintf(
        f,
        "    \"%s\": {\"edges\": %llu, \"triangles_map\": %llu, "
        "\"triangles_frozen\": %llu, \"triangles_loaded\": %llu, "
        "\"map_seconds\": %.6f, \"frozen_seconds\": %.6f, "
        "\"freeze_seconds\": %.6f, \"save_seconds\": %.6f, \"load_seconds\": %.6f, "
        "\"map_bytes_per_edge\": %.2f, \"frozen_bytes_per_edge\": %.2f}%s\n",
        name.c_str(), (unsigned long long)sc.edges,
        (unsigned long long)sc.triangles_map, (unsigned long long)sc.triangles_frozen,
        (unsigned long long)sc.triangles_loaded, sc.map_seconds, sc.frozen_seconds,
        sc.freeze_seconds, sc.save_seconds, sc.load_seconds, sc.map_bytes_per_edge,
        sc.frozen_bytes_per_edge, ++i == cases.size() ? "" : ",");
  }
  std::fprintf(f, "  },\n  \"params\": {\"ranks\": %d, \"delta\": %d}\n}\n", ranks,
               delta);
  std::fclose(f);
  std::printf("\nwrote %s\n", path);
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = tripoll::bench::quick_mode(argc, argv);
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      if (i + 1 >= argc || argv[i + 1][0] == '-') {
        std::fprintf(stderr, "--json needs an output path\n");
        return 2;
      }
      json_path = argv[++i];
    }
  }

  const int ranks = 4;
  const int delta = quick ? -2 : tripoll::bench::scale_delta_from_env(0);
  const int reps = quick ? 5 : 9;

  tripoll::bench::print_header(
      "Frozen CSR storage vs distributed_map (traversal time, bytes/edge, snapshots)",
      "PR 5");
  std::map<std::string, storage_case> cases;
  for (const std::string which : {"rmat", "temporal", "web"}) {
    cases[which] = run_case(which, ranks, delta, reps);
    print_case(which, cases[which]);
    const auto& sc = cases[which];
    if (sc.triangles_map != sc.triangles_frozen ||
        sc.triangles_map != sc.triangles_loaded) {
      std::fprintf(stderr, "FATAL: triangle counts diverge on %s (map %llu, frozen "
                           "%llu, loaded %llu)\n",
                   which.c_str(), (unsigned long long)sc.triangles_map,
                   (unsigned long long)sc.triangles_frozen,
                   (unsigned long long)sc.triangles_loaded);
      return 1;
    }
  }
  if (json_path != nullptr) write_json(json_path, cases, ranks, delta);
  return 0;
}
