// bench_ablation_buffering -- ablation of the message-buffering threshold
// (DESIGN.md choice M3; paper Sec. 4.1.1: buffering small RPCs into large
// transport messages is the core of YGM's scalability story).
//
// Sweeps the per-destination flush threshold from "nearly unbuffered" to
// large, measuring survey runtime and transport buffer counts.  Expected
// shape: tiny buffers explode the number of transport messages and slow
// everything down; returns diminish after a few KiB.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "comm/runtime.hpp"
#include "core/callbacks.hpp"
#include "core/survey.hpp"
#include "gen/presets.hpp"

namespace cb = tripoll::callbacks;
namespace comm = tripoll::comm;
namespace gen = tripoll::gen;

int main() {
  const int delta = tripoll::bench::scale_delta_from_env(-1);
  const int ranks = std::min(tripoll::bench::max_ranks_from_env(), 8);
  const auto spec = gen::standard_suite(delta)[1];  // twitter-like

  tripoll::bench::print_header(
      "Ablation: per-destination buffer flush threshold (YGM buffering)",
      "Sec. 4.1.1 design choice");
  std::printf("dataset: %s, %d ranks\n\n", spec.name.c_str(), ranks);
  std::printf("%12s %10s %14s %14s %12s\n", "buffer", "time(s)", "transport bufs",
              "RPC messages", "bytes/buf");
  tripoll::bench::print_rule(68);

  for (const std::size_t capacity :
       {std::size_t{64}, std::size_t{512}, std::size_t{4096}, std::size_t{16384},
        std::size_t{65536}, std::size_t{262144}}) {
    comm::config cfg;
    cfg.buffer_capacity = capacity;
    tripoll::survey_result result;
    comm::stats_snapshot before{}, after{};
    comm::runtime::run(
        ranks,
        [&](comm::communicator& c) {
          gen::plain_graph g(c);
          gen::build_dataset(c, g, spec);
          c.barrier();
          if (c.rank0()) before = c.stats();
          c.barrier();
          cb::count_context ctx;
          result = tripoll::triangle_survey(g, cb::count_callback{}, ctx,
                                            {tripoll::survey_mode::push_pull});
          if (c.rank0()) after = c.stats();
          c.barrier();
        },
        cfg);
    const auto bufs = after.buffers_sent - before.buffers_sent;
    const auto msgs = after.messages_sent - before.messages_sent;
    const auto bytes = (after.remote_bytes + after.local_bytes) -
                       (before.remote_bytes + before.local_bytes);
    std::printf("%12s %10.3f %14s %14s %12s\n",
                tripoll::bench::human_bytes(capacity).c_str(), result.total.seconds,
                tripoll::bench::human_count(bufs).c_str(),
                tripoll::bench::human_count(msgs).c_str(),
                tripoll::bench::human_bytes(bufs > 0 ? bytes / bufs : 0).c_str());
  }
  return 0;
}
