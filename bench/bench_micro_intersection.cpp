// bench_micro_intersection -- microbenchmark of the three adjacency
// intersection strategies the distributed-TC literature uses (Sec. 2:
// binary search, merge-path, hashing) and that back the survey engine's
// wedge-closing step.
//
// Expected shape: merge-path wins when |A| ~ |B| (the survey's common
// case: suffix vs adjacency of similar degree class); binary search wins
// when |A| << |B|; hashing pays off only when the build cost amortizes.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

#include "core/intersect.hpp"

namespace {

std::vector<std::uint64_t> sorted_random(std::size_t n, std::uint64_t universe,
                                         std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<std::uint64_t> v(n);
  for (auto& x : v) x = rng() % universe;
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
  return v;
}

constexpr auto kIdentity = [](std::uint64_t x) { return x; };

void BM_MergePath(benchmark::State& state) {
  const auto a = sorted_random(static_cast<std::size_t>(state.range(0)), 1 << 20, 1);
  const auto b = sorted_random(static_cast<std::size_t>(state.range(1)), 1 << 20, 2);
  for (auto _ : state) {
    std::uint64_t hits = 0;
    tripoll::core::merge_path_intersect(a.begin(), a.end(), b.begin(), b.end(),
                                        kIdentity, kIdentity,
                                        [&](auto, auto) { ++hits; });
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(a.size() + b.size()));
}
BENCHMARK(BM_MergePath)->Args({64, 64})->Args({64, 4096})->Args({4096, 4096})->Args({16, 65536});

void BM_BinarySearch(benchmark::State& state) {
  const auto a = sorted_random(static_cast<std::size_t>(state.range(0)), 1 << 20, 1);
  const auto b = sorted_random(static_cast<std::size_t>(state.range(1)), 1 << 20, 2);
  for (auto _ : state) {
    std::uint64_t hits = 0;
    tripoll::core::binary_search_intersect(a.begin(), a.end(), b.begin(), b.end(),
                                           kIdentity, kIdentity,
                                           [&](auto, auto) { ++hits; });
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(a.size()));
}
BENCHMARK(BM_BinarySearch)->Args({64, 64})->Args({64, 4096})->Args({4096, 4096})->Args({16, 65536});

void BM_Hash(benchmark::State& state) {
  const auto a = sorted_random(static_cast<std::size_t>(state.range(0)), 1 << 20, 1);
  const auto b = sorted_random(static_cast<std::size_t>(state.range(1)), 1 << 20, 2);
  for (auto _ : state) {
    std::uint64_t hits = 0;
    tripoll::core::hash_intersect(a.begin(), a.end(), b.begin(), b.end(), kIdentity,
                                  kIdentity, [&](auto, auto) { ++hits; });
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(a.size() + b.size()));
}
BENCHMARK(BM_Hash)->Args({64, 64})->Args({64, 4096})->Args({4096, 4096})->Args({16, 65536});

}  // namespace

BENCHMARK_MAIN();
