// bench_micro_intersection -- microbenchmark of the adjacency intersection
// strategies the distributed-TC literature uses (Sec. 2: binary search,
// merge-path, hashing) plus the galloping and adaptive kernels that back
// the survey engine's wedge-closing step.
//
// Expected shape: merge-path wins when |A| ~ |B| (the survey's common
// case: suffix vs adjacency of similar degree class); galloping/binary
// search win when |A| << |B| (short suffix meeting a hub vertex); hashing
// pays off only when the build cost amortizes.  The adaptive kernel --
// what the survey engine actually calls -- should track the best of
// merge-path and galloping across all shapes.
//
// Run with --quick (or TRIPOLL_BENCH_QUICK=1) for the CI smoke: small
// sizes, short measurement windows, same benchmark names.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

#include "bench_micro_main.hpp"
#include "core/intersect.hpp"

namespace {

std::vector<std::uint64_t> sorted_random(std::size_t n, std::uint64_t universe,
                                         std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<std::uint64_t> v(n);
  for (auto& x : v) x = rng() % universe;
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
  return v;
}

constexpr auto kIdentity = [](std::uint64_t x) { return x; };

template <typename Kernel>
void run_kernel(benchmark::State& state, Kernel&& kernel, bool count_both) {
  const auto a = sorted_random(static_cast<std::size_t>(state.range(0)), 1 << 20, 1);
  const auto b = sorted_random(static_cast<std::size_t>(state.range(1)), 1 << 20, 2);
  for (auto _ : state) {
    std::uint64_t hits = 0;
    kernel(a.begin(), a.end(), b.begin(), b.end(), kIdentity, kIdentity,
           [&](auto, auto) { ++hits; });
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(count_both ? a.size() + b.size()
                                                               : a.size()));
}

void BM_MergePath(benchmark::State& state) {
  run_kernel(state, [](auto... args) { tripoll::core::merge_path_intersect(args...); },
             /*count_both=*/true);
}

void BM_BinarySearch(benchmark::State& state) {
  run_kernel(state, [](auto... args) { tripoll::core::binary_search_intersect(args...); },
             /*count_both=*/false);
}

void BM_Hash(benchmark::State& state) {
  run_kernel(state, [](auto... args) { tripoll::core::hash_intersect(args...); },
             /*count_both=*/true);
}

void BM_Gallop(benchmark::State& state) {
  run_kernel(state, [](auto... args) { tripoll::core::gallop_intersect(args...); },
             /*count_both=*/false);
}

// The kernel the survey engine calls at both wedge-closing sites.
void BM_Adaptive(benchmark::State& state) {
  run_kernel(state, [](auto... args) { tripoll::core::adaptive_intersect(args...); },
             /*count_both=*/true);
}

void register_benchmarks(bool quick) {
  const double min_time = quick ? 0.02 : 0.5;
  using args_t = std::vector<std::pair<std::int64_t, std::int64_t>>;
  const args_t shapes = quick
                            ? args_t{{64, 64}, {64, 4096}, {16, 65536}}
                            : args_t{{64, 64}, {64, 4096}, {4096, 4096}, {16, 65536}};
  const std::vector<std::pair<const char*, void (*)(benchmark::State&)>> kernels = {
      {"BM_MergePath", BM_MergePath}, {"BM_BinarySearch", BM_BinarySearch},
      {"BM_Hash", BM_Hash},           {"BM_Gallop", BM_Gallop},
      {"BM_Adaptive", BM_Adaptive},
  };
  for (const auto& [name, fn] : kernels) {
    for (const auto& [na, nb] : shapes) {
      benchmark::RegisterBenchmark(name, fn)->Args({na, nb})->MinTime(min_time);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  return tripoll::bench::run_micro_benchmark(
      argc, argv, [](bool quick) { register_benchmarks(quick); });
}
