// bench_fig5_weak_scaling -- reproduces Fig. 5 (weak scaling on R-MAT).
//
// One R-MAT scale step per rank doubling (the paper uses scale 24 per node
// up to scale 32 on 256 nodes; this single-node run uses a smaller base).
// The vertical axis is the paper's work rate |W+| / (N * t): wedge checks
// per rank-second.  Expected shape: the rate decays as the graph grows,
// because a fixed number of local edges shares ever fewer common targets,
// eroding the aggregation the Push-Pull algorithm exploits.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "comm/runtime.hpp"
#include "core/callbacks.hpp"
#include "core/survey.hpp"
#include "gen/distribute.hpp"
#include "gen/presets.hpp"
#include "gen/rmat.hpp"
#include "graph/builder.hpp"

namespace cb = tripoll::callbacks;
namespace comm = tripoll::comm;
namespace gen = tripoll::gen;
namespace graph = tripoll::graph;

int main() {
  const int delta = tripoll::bench::scale_delta_from_env(0);
  const int max_ranks = tripoll::bench::max_ranks_from_env(16);
  const auto base_scale = static_cast<std::uint32_t>(std::max(8, 13 + delta));

  tripoll::bench::print_header(
      "Fig. 5: weak scaling, R-MAT (one scale step per rank doubling)", "Fig. 5");
  std::printf("%6s %7s %12s %10s %12s %16s\n", "ranks", "scale", "|W+|",
              "time(s)", "|T|", "|W+|/(N*t)");
  tripoll::bench::print_rule(70);

  for (int ranks = 1; ranks <= max_ranks; ranks *= 2) {
    std::uint32_t scale = base_scale;
    for (int r = ranks; r > 1; r /= 2) ++scale;

    tripoll::survey_result result;
    graph::graph_census census{};
    std::uint64_t triangles = 0;
    comm::runtime::run(ranks, [&](comm::communicator& c) {
      gen::rmat_generator rmat(gen::rmat_params{scale, 16, 0.57, 0.19, 0.19, 4242, true});
      graph::graph_builder<graph::none, graph::none> builder(c);
      gen::for_rank_slice(c, rmat.num_edges(), [&](std::uint64_t k) {
        const auto e = rmat.edge_at(k);
        builder.add_edge(e.u, e.v);
      });
      gen::plain_graph g(c);
      builder.build_into(g);
      census = g.census();
      cb::count_context ctx;
      result = tripoll::triangle_survey(g, cb::count_callback{}, ctx,
                                        {tripoll::survey_mode::push_pull});
      triangles = ctx.global_count(c);
    });

    const double rate = static_cast<double>(census.wedge_checks) /
                        (static_cast<double>(ranks) * result.total.seconds);
    std::printf("%6d %7u %12s %10.3f %12s %16s\n", ranks, scale,
                tripoll::bench::human_count(census.wedge_checks).c_str(),
                result.total.seconds,
                tripoll::bench::human_count(triangles).c_str(),
                tripoll::bench::human_count(static_cast<std::uint64_t>(rate)).c_str());
  }
  return 0;
}
