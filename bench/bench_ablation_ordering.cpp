// bench_ablation_ordering -- degree vs degeneracy vertex ordering
// (graph/ordering.hpp; Pashanasangi & Seshadhri's degeneracy-ordering
// insight applied to TriPoll's DODGr).
//
// For each preset (RMAT social, Reddit-like temporal, hub-heavy web) and
// each --ordering policy, reports the census columns the ordering controls
// (|W+| = wedge checks, d+max) plus build time (the peeling pass is part of
// construction), survey time and communication volume, and cross-checks
// that both orderings find the same global triangle count.
//
// Accepts --ordering {degree,degeneracy} to run one policy only; default
// runs both and prints the reduction factors.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "comm/runtime.hpp"
#include "core/callbacks.hpp"
#include "core/survey.hpp"
#include "gen/distribute.hpp"
#include "gen/presets.hpp"
#include "gen/temporal.hpp"
#include "graph/builder.hpp"
#include "graph/ordering.hpp"

namespace cb = tripoll::callbacks;
namespace comm = tripoll::comm;
namespace gen = tripoll::gen;
namespace graph = tripoll::graph;

namespace {

struct run_metrics {
  tripoll::graph::graph_census census{};
  double build_seconds = 0.0;
  double survey_seconds = 0.0;
  std::uint64_t survey_volume = 0;
  std::uint64_t triangles = 0;
  std::uint64_t degeneracy = 0;  ///< 0 under degree order
};

template <typename BuildFn>
run_metrics run_once(int ranks, graph::ordering_policy ordering, BuildFn&& build) {
  run_metrics m;
  comm::runtime::run(ranks, [&](comm::communicator& c) {
    const auto t0 = std::chrono::steady_clock::now();
    gen::plain_graph g(c);
    const auto degeneracy = build(c, g, ordering);
    const double build_s = std::chrono::duration<double>(
        std::chrono::steady_clock::now() - t0).count();

    cb::count_context ctx;
    const auto result = tripoll::triangle_survey(g, cb::count_callback{}, ctx,
                                                 {tripoll::survey_mode::push_pull});
    const auto triangles = ctx.global_count(c);
    const auto census = g.census();
    const auto max_build = c.all_reduce_max(build_s);
    if (c.rank0()) {
      m.census = census;
      m.build_seconds = max_build;
      m.survey_seconds = result.total.seconds;
      m.survey_volume = result.total.volume_bytes;
      m.triangles = triangles;
      m.degeneracy = degeneracy;
    }
  });
  return m;
}

void print_row(const char* ordering, const run_metrics& m) {
  std::printf("%-12s %12s %8llu %9.3f %9.3f %11s %12s\n", ordering,
              tripoll::bench::human_count(m.census.wedge_checks).c_str(),
              (unsigned long long)m.census.max_out_degree, m.build_seconds,
              m.survey_seconds, tripoll::bench::human_bytes(m.survey_volume).c_str(),
              tripoll::bench::human_count(m.triangles).c_str());
}

void print_preset(const char* name, const run_metrics& degree,
                  const run_metrics& core) {
  std::printf("\n-- %s --\n", name);
  std::printf("%-12s %12s %8s %9s %9s %11s %12s\n", "ordering", "|W+|", "d+max",
              "build(s)", "survey(s)", "volume", "triangles");
  tripoll::bench::print_rule(80);
  print_row("degree", degree);
  print_row("degeneracy", core);
  const double wedge_ratio =
      core.census.wedge_checks > 0
          ? static_cast<double>(degree.census.wedge_checks) /
                static_cast<double>(core.census.wedge_checks)
          : 0.0;
  std::printf("degeneracy %llu; |W+| reduction %.3fx; counts %s\n",
              (unsigned long long)core.degeneracy, wedge_ratio,
              degree.triangles == core.triangles ? "identical" : "MISMATCH!");
}

}  // namespace

int main(int argc, char** argv) {
  const int delta = tripoll::bench::scale_delta_from_env(-1);
  const int ranks = std::min(tripoll::bench::max_ranks_from_env(), 8);
  bool run_degree = true, run_core = true;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--ordering") == 0) {
      const auto parsed = graph::parse_ordering(argv[i + 1]);
      if (!parsed) {
        std::fprintf(stderr, "unknown ordering '%s' (degree|degeneracy)\n", argv[i + 1]);
        return 2;
      }
      run_degree = *parsed == graph::ordering_policy::degree;
      run_core = !run_degree;
    }
  }

  tripoll::bench::print_header(
      "Ablation: degree vs degeneracy vertex ordering",
      "Pashanasangi & Seshadhri degeneracy-ordering insight, Sec. 3/4.3 order");
  std::printf("%d ranks, scale delta %d\n", ranks, delta);

  const auto rmat_spec = gen::livejournal_like(delta);
  const auto build_rmat = [&](comm::communicator& c, gen::plain_graph& g,
                              graph::ordering_policy ordering) {
    graph::graph_builder<graph::none, graph::none> builder(c, ordering);
    const gen::rmat_generator rmat(rmat_spec.rmat);
    gen::for_rank_slice(c, rmat.num_edges(), [&](std::uint64_t k) {
      const auto e = rmat.edge_at(k);
      builder.add_edge(e.u, e.v);
    });
    builder.build_into(g);
    return builder.peel_stats().degeneracy;
  };

  gen::temporal_params temporal;
  temporal.scale = static_cast<std::uint32_t>(std::max(8, 13 + delta));
  const auto build_temporal = [&](comm::communicator& c, gen::plain_graph& g,
                                  graph::ordering_policy ordering) {
    // Timestamps are irrelevant to the ordering ablation; build plain.
    graph::graph_builder<graph::none, graph::none> builder(c, ordering);
    const gen::temporal_generator tgen(temporal);
    gen::for_rank_slice(c, tgen.num_edges(), [&](std::uint64_t k) {
      const auto e = tgen.edge_at(k);
      builder.add_edge(e.u, e.v);
    });
    builder.build_into(g);
    return builder.peel_stats().degeneracy;
  };

  const auto web_spec = gen::standard_suite(delta)[3];  // webcc12-host-like
  const auto build_web = [&](comm::communicator& c, gen::plain_graph& g,
                             graph::ordering_policy ordering) {
    graph::graph_builder<graph::none, graph::none> builder(c, ordering);
    const gen::web_generator wgen(web_spec.web);
    gen::for_rank_slice(c, wgen.num_edges(), [&](std::uint64_t k) {
      const auto e = wgen.edge_at(k);
      builder.add_edge(e.u, e.v);
    });
    builder.build_into(g);
    return builder.peel_stats().degeneracy;
  };

  const auto run_pair = [&](const char* name, auto&& build) {
    run_metrics degree, core;
    if (run_degree) degree = run_once(ranks, graph::ordering_policy::degree, build);
    if (run_core) core = run_once(ranks, graph::ordering_policy::degeneracy, build);
    if (run_degree && run_core) {
      print_preset(name, degree, core);
    } else {
      std::printf("\n-- %s --\n", name);
      print_row(run_degree ? "degree" : "degeneracy", run_degree ? degree : core);
    }
  };

  run_pair(("rmat social (" + rmat_spec.name + ")").c_str(), build_rmat);
  run_pair("temporal (reddit-like)", build_temporal);
  run_pair(("web (" + web_spec.name + ")").c_str(), build_web);

  std::printf("\n(|W+| = sum_v C(d+(v),2), the survey's wedge-check total; the\n"
              "degeneracy order bounds every d+ by the core number, so the\n"
              "reduction grows with degree skew)\n");
  return 0;
}
