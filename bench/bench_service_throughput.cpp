// bench_service_throughput -- resident survey service: fused plans/sec,
// admission-window fusion ratio and cache-hit latency (PR 9 acceptance
// numbers).
//
// For each measured preset this bench freezes a metadata-rich graph
// in-memory, runs the daemon on the inproc runtime inside a thread, and
// drives it over real Unix-domain sockets with 8 client threads:
//   * FUSED:    window 10 ms, max_batch 8, cache off -- concurrent misses
//               share one traversal per admission window,
//   * UNFUSED:  window 0, max_batch 1, cache off -- every plan pays its own
//               traversal (the fusion-off baseline),
//   * CACHE:    sequential client; cold submissions (distinct plans, each a
//               traversal) vs repeat submissions (served from the LRU).
// Every daemon reply is checked against a standalone run_units() reference;
// a mismatch is FATAL.
//
// `--json <path>` writes a `pr9_service_cases` object consumed by
// tools/check_bench_regression.py --service-gates, which asserts
//   * identical unit results between daemon replies and the standalone
//     traversal (bit-identity is unconditional),
//   * fused/unfused plans-per-second ratio >= --service-fusion-min (1.5)
//     at 8 clients,
//   * cold/hit latency ratio >= --service-cache-min (10) (cache hits skip
//     the traversal entirely),
//   * fused traversal count strictly below the plan count (the admission
//     window actually batched).
// `--quick` shrinks the graph and round counts for CI.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "bench_util.hpp"
#include "comm/runtime.hpp"
#include "comm/service_client.hpp"
#include "gen/presets.hpp"
#include "graph/builder.hpp"
#include "graph/frozen.hpp"
#include "serial/hash.hpp"
#include "service/survey_service.hpp"

namespace comm = tripoll::comm;
namespace gen = tripoll::gen;
namespace graph = tripoll::graph;
namespace svc = tripoll::service;

namespace {

using clock_type = std::chrono::steady_clock;

double seconds_since(clock_type::time_point t0) {
  return std::chrono::duration<double>(clock_type::now() - t0).count();
}

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

std::uint64_t edge_ts(graph::vertex_id u, graph::vertex_id v) {
  const auto lo = std::min(u, v);
  const auto hi = std::max(u, v);
  return tripoll::serial::hash_combine(tripoll::serial::splitmix64(lo), hi) % 1000000;
}

std::uint64_t vertex_label(graph::vertex_id v) {
  return tripoll::serial::splitmix64(v ^ 0x5EED) % 64;
}

graph::frozen_dodgr<std::uint64_t, std::uint64_t> build_frozen(
    comm::communicator& c, const std::string& which, int delta) {
  graph::dodgr<std::uint64_t, std::uint64_t> g(c);
  graph::graph_builder<std::uint64_t, std::uint64_t> builder(c);
  gen::for_preset_edges(c, which, delta, [&](graph::vertex_id u, graph::vertex_id v) {
    builder.add_edge(u, v, edge_ts(u, v));
  });
  builder.build_into(g);
  g.for_all_local([](const graph::vertex_id& v, auto& rec) {
    rec.meta = vertex_label(v);
    for (auto& e : rec.adj) e.target_meta = vertex_label(e.target);
  });
  return graph::freeze(g);
}

svc::plan_unit unit(svc::unit_kind kind, std::uint64_t param = 0) {
  return svc::plan_unit{static_cast<std::uint64_t>(kind), param};
}

/// The 8-client working set: one distinct plan per client slot.
std::vector<std::vector<svc::plan_unit>> client_plans() {
  std::vector<std::vector<svc::plan_unit>> plans;
  plans.push_back({unit(svc::unit_kind::count)});
  for (std::uint64_t t = 1; t <= 5; ++t) {
    plans.push_back({unit(svc::unit_kind::hot_count, t * 150000)});
  }
  plans.push_back({unit(svc::unit_kind::closure_digest)});
  plans.push_back({unit(svc::unit_kind::max_label), unit(svc::unit_kind::count)});
  return plans;
}

std::string fresh_socket_spec() {
  static std::atomic<int> counter{0};
  return "unix:/tmp/tripoll-bench-svc-" + std::to_string(::getpid()) + "-" +
         std::to_string(counter.fetch_add(1)) + ".sock";
}

struct workload_result {
  double wall_seconds = 0.0;
  std::uint64_t plans = 0;
  svc::service_stats stats;
  std::uint64_t mismatches = 0;
};

/// Serve `which` with `opts` and run `body(spec)` as the client side; the
/// daemon's final stats are captured through a control connection.
template <typename Body>
workload_result with_daemon(const std::string& which, int delta,
                            svc::service_options opts, Body&& body) {
  const std::string spec = fresh_socket_spec();
  opts.endpoint_spec = spec;
  opts.install_signals = false;
  workload_result out;
  std::thread daemon([&] {
    comm::runtime::run(1, [&](comm::communicator& c) {
      auto g = build_frozen(c, which, delta);
      svc::survey_service d(g, opts);
      (void)d.serve();
    });
  });
  body(spec, out);
  {
    comm::service_client control(spec);
    out.stats = control.stats();
    control.shutdown();
  }
  daemon.join();
  return out;
}

/// Expected per-unit results, computed once standalone (no daemon).
std::map<std::pair<std::uint64_t, std::uint64_t>, svc::unit_result> reference(
    const std::string& which, int delta,
    const std::vector<std::vector<svc::plan_unit>>& plans,
    std::uint64_t* triangles) {
  std::vector<svc::plan_unit> all;
  for (const auto& p : plans) all.insert(all.end(), p.begin(), p.end());
  std::sort(all.begin(), all.end());
  all.erase(std::unique(all.begin(), all.end()), all.end());
  std::map<std::pair<std::uint64_t, std::uint64_t>, svc::unit_result> expected;
  comm::runtime::run(1, [&](comm::communicator& c) {
    auto g = build_frozen(c, which, delta);
    std::uint64_t tri = 0;
    const auto res = svc::run_units(g, all, svc::kModePushPull, 0, &tri);
    for (const auto& r : res) expected[{r.kind, r.param}] = r;
    *triangles = tri;
  });
  return expected;
}

/// 8 client threads x `rounds` submissions each; every reply is verified
/// against `expected`.
workload_result run_concurrent(
    const std::string& which, int delta, svc::service_options opts, int rounds,
    const std::vector<std::vector<svc::plan_unit>>& plans,
    const std::map<std::pair<std::uint64_t, std::uint64_t>, svc::unit_result>&
        expected) {
  return with_daemon(which, delta, opts, [&](const std::string& spec,
                                             workload_result& out) {
    constexpr int kClients = 8;
    std::atomic<std::uint64_t> mismatches{0};
    const auto t0 = clock_type::now();
    std::vector<std::thread> clients;
    for (int t = 0; t < kClients; ++t) {
      clients.emplace_back([&, t] {
        comm::service_client client(spec);
        for (int r = 0; r < rounds; ++r) {
          svc::plan_request req;
          req.units = plans[static_cast<std::size_t>(t) % plans.size()];
          const auto resp = client.submit(req);
          svc::plan_request canon = req;
          svc::canonicalize(canon);
          for (std::size_t i = 0; i < resp.units.size(); ++i) {
            const auto it = expected.find({canon.units[i].kind, canon.units[i].param});
            if (it == expected.end() || resp.units[i].fires != it->second.fires ||
                resp.units[i].value != it->second.value) {
              mismatches.fetch_add(1);
            }
          }
        }
      });
    }
    for (auto& th : clients) th.join();
    out.wall_seconds = seconds_since(t0);
    out.plans = static_cast<std::uint64_t>(kClients) * rounds;
    out.mismatches = mismatches.load();
  });
}

struct service_case {
  std::uint64_t plans = 0;
  double fused_plans_per_sec = 0.0;
  double unfused_plans_per_sec = 0.0;
  std::uint64_t fused_traversals = 0;
  std::uint64_t unfused_traversals = 0;
  double cold_seconds = 0.0;  ///< median cold (traversing) submit latency
  double hit_seconds = 0.0;   ///< median cache-hit submit latency
  std::uint64_t triangles = 0;
  std::uint64_t mismatches = 0;

  [[nodiscard]] double fusion_ratio() const {
    return unfused_plans_per_sec > 0 ? fused_plans_per_sec / unfused_plans_per_sec
                                     : 0.0;
  }
  [[nodiscard]] double cache_speedup() const {
    return hit_seconds > 0 ? cold_seconds / hit_seconds : 0.0;
  }
};

service_case run_case(const std::string& which, int delta, int rounds, int reps) {
  service_case out;
  const auto plans = client_plans();
  const auto expected = reference(which, delta, plans, &out.triangles);

  // FUSED: the admission window holds concurrent misses for one traversal.
  svc::service_options fused;
  fused.window_ms = 10;
  fused.max_batch = 8;
  fused.cache_capacity = 0;
  const auto f = run_concurrent(which, delta, fused, rounds, plans, expected);
  out.plans = f.plans;
  out.fused_plans_per_sec = f.plans / f.wall_seconds;
  out.fused_traversals = f.stats.traversals;
  out.mismatches += f.mismatches;

  // UNFUSED: window 0 / batch 1 -- every plan pays a full traversal.
  svc::service_options unfused;
  unfused.window_ms = 0;
  unfused.max_batch = 1;
  unfused.cache_capacity = 0;
  const auto u = run_concurrent(which, delta, unfused, rounds, plans, expected);
  out.unfused_plans_per_sec = u.plans / u.wall_seconds;
  out.unfused_traversals = u.stats.traversals;
  out.mismatches += u.mismatches;

  // CACHE: sequential client; distinct plans are cold, repeats are hits.
  svc::service_options cached;
  cached.window_ms = 0;
  cached.max_batch = 1;
  cached.cache_capacity = 64;
  std::pair<double, double> cold_hit_medians{0.0, 0.0};
  const auto c = with_daemon(which, delta, cached, [&](const std::string& spec,
                                                       workload_result& w) {
    comm::service_client client(spec);
    std::vector<double> cold, hit;
    for (int r = 0; r < reps; ++r) {
      svc::plan_request req;  // distinct per rep: never cached yet
      req.units = {unit(svc::unit_kind::hot_count, 1000 + static_cast<std::uint64_t>(r))};
      auto t0 = clock_type::now();
      const auto cold_body = client.submit_raw(req);
      cold.push_back(seconds_since(t0));
      t0 = clock_type::now();
      const auto hit_body = client.submit_raw(req);  // same canonical plan
      hit.push_back(seconds_since(t0));
      if (hit_body != cold_body) w.mismatches += 1;
    }
    w.plans = static_cast<std::uint64_t>(reps) * 2;
    cold_hit_medians = {median(cold), median(hit)};
  });
  out.cold_seconds = cold_hit_medians.first;
  out.hit_seconds = cold_hit_medians.second;
  out.mismatches += c.mismatches;
  return out;
}

void print_case(const std::string& name, const service_case& sc) {
  std::printf("%-10s %5llu plans  fused %8.0f/s (%llu traversals)  "
              "unfused %8.0f/s (%llu)  fusion %5.2fx\n",
              name.c_str(), (unsigned long long)sc.plans, sc.fused_plans_per_sec,
              (unsigned long long)sc.fused_traversals, sc.unfused_plans_per_sec,
              (unsigned long long)sc.unfused_traversals, sc.fusion_ratio());
  std::printf("%-10s cold %8.5fs  cache hit %8.6fs  speedup %6.1fx  "
              "triangles %llu\n",
              "", sc.cold_seconds, sc.hit_seconds, sc.cache_speedup(),
              (unsigned long long)sc.triangles);
}

void write_json(const char* path, const std::map<std::string, service_case>& cases,
                int delta) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path);
    std::exit(2);
  }
  std::fprintf(f, "{\n  \"pr9_service_cases\": {\n");
  std::size_t i = 0;
  for (const auto& [name, sc] : cases) {
    std::fprintf(
        f,
        "    \"%s\": {\"plans\": %llu, "
        "\"fused_plans_per_sec\": %.2f, \"unfused_plans_per_sec\": %.2f, "
        "\"fused_traversals\": %llu, \"unfused_traversals\": %llu, "
        "\"cold_seconds\": %.6f, \"hit_seconds\": %.6f, "
        "\"triangles\": %llu, \"mismatches\": %llu}%s\n",
        name.c_str(), (unsigned long long)sc.plans, sc.fused_plans_per_sec,
        sc.unfused_plans_per_sec, (unsigned long long)sc.fused_traversals,
        (unsigned long long)sc.unfused_traversals, sc.cold_seconds, sc.hit_seconds,
        (unsigned long long)sc.triangles, (unsigned long long)sc.mismatches,
        ++i == cases.size() ? "" : ",");
  }
  std::fprintf(f, "  },\n  \"params\": {\"ranks\": 1, \"delta\": %d, "
               "\"clients\": 8, \"hw_threads\": %u}\n}\n",
               delta, std::thread::hardware_concurrency());
  std::fclose(f);
  std::printf("\nwrote %s\n", path);
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = tripoll::bench::quick_mode(argc, argv);
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      if (i + 1 >= argc || argv[i + 1][0] == '-') {
        std::fprintf(stderr, "--json needs an output path\n");
        return 2;
      }
      json_path = argv[++i];
    }
  }

  const int delta = quick ? -1 : tripoll::bench::scale_delta_from_env(1);
  const int rounds = quick ? 4 : 16;
  const int reps = quick ? 7 : 15;

  tripoll::bench::print_header(
      "Resident survey service: fused plans/sec, fusion ratio, cache latency",
      "PR 9");
  std::map<std::string, service_case> cases;
  std::vector<std::string> which = {"rmat"};
  if (!quick) which.push_back("temporal");
  for (const auto& name : which) {
    cases[name] = run_case(name, delta, rounds, reps);
    print_case(name, cases[name]);
    if (cases[name].mismatches != 0) {
      std::fprintf(stderr,
                   "FATAL: %llu daemon replies diverged from the standalone "
                   "traversal on %s\n",
                   (unsigned long long)cases[name].mismatches, name.c_str());
      return 1;
    }
  }
  if (json_path != nullptr) write_json(json_path, cases, delta);
  return 0;
}
