#!/usr/bin/env python3
"""Per-phase bench regression gate.

Compares a quick-mode Google Benchmark JSON artifact (the bench-smoke CI job)
against the committed BENCH_*.json trajectory at the repo root and fails when
any case regresses by more than the threshold.

Baseline extraction: every BENCH_<pr>.json is scanned, in ascending PR order,
for (a) arrays of objects carrying "case" + "after_ns" (the before/after rows
the PR logs record) and (b) a "new_cases_after_only" {name: ns} object.  The
latest PR that mentions a case wins, so the committed files form a
trajectory, not a single frozen baseline.

Quick mode keeps the full-run benchmark names and per-case problem sizes
(only the measurement window shrinks), so per-case nanoseconds are directly
comparable -- but quick mode registers a *subset* of the cases (the largest
shapes are dropped), so baselines without a matching current case are simply
not gated; the gate prints only what it compared.  CI machines are noisy,
hence the generous default threshold.

Survey-plan gates (PR 4): --plan-gates points at the JSON emitted by
`bench_fig9_metadata_impact --json` and asserts the plan-API acceptance
ratios from that run's `pr4_plan_cases`:
  * identical triangle counts (and closure digests) across the identity,
    projected and fused cases,
  * projected-plan survey volume at least --plan-reduction-min (2.0) times
    smaller than the identity plan,
  * fused 3-callback traffic within --plan-fusion-max (1.1) of the worst
    single-callback run.
These are ratio gates against the same run, so they need no committed
baseline; BENCH_pr4.json records the trajectory for humans.

Storage gates (PR 5): --storage-gates points at the JSON emitted by
`bench_storage_frozen --json` and asserts, from that run's
`pr5_storage_cases`:
  * identical triangle counts across the map, frozen and snapshot-loaded
    storage forms (per case),
  * frozen/map traversal time ratio <= --storage-traversal-max (1.2) per
    case and <= --storage-traversal-geomean (1.0) in geometric mean (the
    frozen CSR path must beat the map path overall, not just avoid
    regressing it),
  * frozen bytes-per-edge <= --storage-bpe-max (34.0) and <=
    --storage-bpe-ratio (0.75) of the map form's footprint.
Like the plan gates these are ratios within one run, needing no committed
baseline; BENCH_pr5.json records the trajectory for humans.

Parallel gates (PR 6): --parallel-gates points at the JSON emitted by
`bench_parallel_traversal --json` and asserts, from that run's
`pr6_parallel_cases`:
  * identical triangles / volume_bytes / messages / kernel mix across every
    thread count of every case (bit-identity is unconditional),
  * rmat speedup at 4 threads >= --parallel-speedup-min (1.6), skipped when
    the recording machine had fewer than 4 hardware threads,
  * the skewed (web) case closed at least one batch via the hub bitmap
    kernel (the freeze-time rows exist and the dispatch reaches them).
Like the other gates these are checks within one run, needing no committed
baseline; BENCH_pr6.json records the trajectory for humans.

IO gates (PR 8): --io-gates points at the JSON emitted by
`bench_snapshot_io --json` and asserts, from that run's `pr8_io_cases`:
  * identical triangle counts between the raw (v2) and compressed (v3)
    snapshot loads of every case (bit-identity is unconditional),
  * raw/compressed snapshot byte ratio >= --io-compression-min (1.7) per
    case (the delta/varint codecs must actually shrink the file),
  * compressed/raw load wall ratio <= --io-load-max (1.15) per case (the
    parallel per-section decode must stay near the mmap hot-cache path),
  * combined (ingest+freeze) 1-thread/4-thread speedup >=
    --io-speedup-min (1.6) on rmat, skipped when the recording machine
    had fewer than 4 hardware threads.
Like the other gates these are checks within one run, needing no committed
baseline; BENCH_pr8.json records the trajectory for humans.

Service gates (PR 9): --service-gates points at the JSON emitted by
`bench_service_throughput --json` and asserts, from that run's
`pr9_service_cases`:
  * zero mismatches between daemon replies and the standalone traversal of
    the same unit list (bit-identity is unconditional),
  * fused/unfused plans-per-second ratio >= --service-fusion-min (1.5) at
    8 concurrent clients (the admission window must actually pay off),
  * fused traversal count strictly below the plan count (plans really
    shared traversals) while the unfused run traversed once per plan,
  * cold/hit latency ratio >= --service-cache-min (10) (an LRU hit skips
    the traversal entirely and replays the cached reply bytes).
Like the other gates these are checks within one run, needing no committed
baseline; BENCH_pr9.json records the trajectory for humans.

Streaming gates (PR 10): --streaming-gates points at the JSON emitted by
`bench_streaming_ingest --json` and asserts, from that run's
`pr10_streaming_cases`:
  * bit-identity unconditionally on EVERY case: identical triangle counts
    across the full rebuild, the overlay and the compacted re-freeze;
    identical unwindowed survey volume and message counts between rebuild
    and overlay; identical windowed fire counts between rebuild and
    overlay,
  * overlay ingest + windowed survey >= --streaming-speedup-min (10.0)
    times faster end-to-end than rebuild + windowed survey on the
    `delta_1pct` case (the uniform-churn 1%-of-|E| batch; the hub-biased
    `delta_1pct_hub` case is identity-checked but not speed-gated -- its
    sum-of-endpoint-degrees cost model is documented in
    docs/STREAMING.md),
  * windowed survey volume strictly below the unwindowed volume per case
    (the window filter must prune traffic, not just results).
Like the other gates these are checks within one run, needing no committed
baseline; BENCH_pr10.json records the trajectory for humans.

Usage:
  tools/check_bench_regression.py --current bench-results [--baseline-dir .]
                                  [--threshold 3.0] [--plan-gates fig9.json]
                                  [--storage-gates storage.json]
                                  [--parallel-gates parallel.json]
                                  [--io-gates io.json]
                                  [--service-gates service.json]
                                  [--streaming-gates streaming.json]
At least one of --current / --plan-gates / --storage-gates /
--parallel-gates / --io-gates / --service-gates / --streaming-gates is
required.
Exit status: 0 ok, 1 regression found, 2 usage/IO error.
"""

import argparse
import glob
import json
import os
import re
import sys


def load_baselines(baseline_dir):
    """Return {case_name: (ns, source_file)} from the BENCH_*.json trajectory."""
    files = glob.glob(os.path.join(baseline_dir, "BENCH_*.json"))

    def pr_number(path):
        m = re.search(r"BENCH_\D*(\d+)", os.path.basename(path))
        return int(m.group(1)) if m else -1

    baselines = {}
    for path in sorted(files, key=pr_number):
        try:
            with open(path) as f:
                doc = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            print(f"warning: skipping unreadable baseline {path}: {e}")
            continue
        for value in doc.values():
            if isinstance(value, list):
                for row in value:
                    if isinstance(row, dict) and "case" in row and "after_ns" in row:
                        # "A -> B" rows rename a case; the new name is the target.
                        name = row["case"].split("->")[-1].strip()
                        baselines[name] = (float(row["after_ns"]), path)
        extra = doc.get("new_cases_after_only")
        if isinstance(extra, dict):
            for name, ns in extra.items():
                baselines[name] = (float(ns), path)
    return baselines


def normalize_name(name):
    """Drop Google Benchmark option suffixes (quick mode appends
    /min_time:..., repetitions append /repeats:...) so quick-mode cases match
    the full-run names the BENCH_*.json files record."""
    return re.sub(r"/(min_time|min_warmup_time|repeats|iterations|threads"
                  r"|real_time|process_time|manual_time):?[^/]*", "", name)


def load_current(current_dir):
    """Return {case_name: ns} from Google Benchmark JSON files in a directory."""
    results = {}
    paths = glob.glob(os.path.join(current_dir, "*.json"))
    if not paths:
        raise FileNotFoundError(f"no *.json bench results under {current_dir}")
    for path in paths:
        with open(path) as f:
            doc = json.load(f)
        for bench in doc.get("benchmarks", []):
            if bench.get("aggregate_name"):  # skip mean/median/stddev rows
                continue
            unit = bench.get("time_unit", "ns")
            scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}.get(unit)
            if scale is None:
                print(f"warning: unknown time unit '{unit}' for {bench.get('name')}")
                continue
            results[normalize_name(bench["name"])] = float(bench["cpu_time"]) * scale
    return results


def check_plan_gates(path, reduction_min, fusion_max):
    """Verify the survey-plan acceptance ratios in a fig9 --json artifact.
    Returns a list of failure strings (empty = all gates pass)."""
    with open(path) as f:
        doc = json.load(f)
    cases = doc.get("pr4_plan_cases")
    if not isinstance(cases, dict):
        return [f"{path}: no pr4_plan_cases object"]
    needed = ["identity_closure", "projected_closure", "fused3",
              "single_count", "single_closure", "single_hot_filter"]
    missing = [n for n in needed if n not in cases]
    if missing:
        return [f"{path}: missing plan cases: {', '.join(missing)}"]

    failures = []
    ident, proj, fused = (cases[n] for n in
                          ("identity_closure", "projected_closure", "fused3"))

    tri = {n: cases[n]["triangles"] for n in
           ("identity_closure", "projected_closure", "fused3")}
    if len(set(tri.values())) != 1:
        failures.append(f"triangle counts differ across plan cases: {tri}")
    digests = {n: cases[n].get("checksum", 0) for n in
               ("identity_closure", "projected_closure", "fused3")}
    if len(set(digests.values())) != 1:
        failures.append(f"closure digests differ across plan cases: {digests}")

    reduction = (ident["volume_bytes"] / proj["volume_bytes"]
                 if proj["volume_bytes"] else float("inf"))
    print(f"plan gate: projection volume reduction {reduction:.2f}x "
          f"(needs >= {reduction_min:.2f}x)")
    if reduction < reduction_min:
        failures.append(f"projection reduced volume only {reduction:.2f}x "
                        f"(< {reduction_min:.2f}x)")

    single_max = max(cases[n]["volume_bytes"] for n in
                     ("single_count", "single_closure", "single_hot_filter"))
    fusion = (fused["volume_bytes"] / single_max if single_max else float("inf"))
    sequential = sum(cases[n]["volume_bytes"] for n in
                     ("single_count", "single_closure", "single_hot_filter"))
    seq_ratio = sequential / fused["volume_bytes"] if fused["volume_bytes"] else 0.0
    print(f"plan gate: fused 3-callback traffic {fusion:.3f}x of worst single "
          f"run (needs <= {fusion_max:.2f}x); 3 sequential runs = "
          f"{seq_ratio:.2f}x fused")
    if fusion > fusion_max:
        failures.append(f"fused traffic {fusion:.3f}x of a single run "
                        f"(> {fusion_max:.2f}x)")
    return failures


def check_storage_gates(path, traversal_max, traversal_geomean, bpe_max, bpe_ratio):
    """Verify the frozen-storage acceptance ratios in a bench_storage_frozen
    --json artifact.  Returns a list of failure strings (empty = pass)."""
    import math

    with open(path) as f:
        doc = json.load(f)
    cases = doc.get("pr5_storage_cases")
    if not isinstance(cases, dict) or not cases:
        return [f"{path}: no pr5_storage_cases object"]

    failures = []
    log_ratios = []
    for name, case in sorted(cases.items()):
        tri = {case.get("triangles_map"), case.get("triangles_frozen"),
               case.get("triangles_loaded")}
        if len(tri) != 1 or None in tri:
            failures.append(f"{name}: triangle counts diverge across storage "
                            f"forms: {sorted(tri, key=str)}")
        map_s = case.get("map_seconds", 0.0)
        frozen_s = case.get("frozen_seconds", 0.0)
        ratio = frozen_s / map_s if map_s > 0 else float("inf")
        log_ratios.append(math.log(ratio) if ratio > 0 else 0.0)
        bpe = case.get("frozen_bytes_per_edge", float("inf"))
        map_bpe = case.get("map_bytes_per_edge", 0.0)
        rel = bpe / map_bpe if map_bpe > 0 else float("inf")
        print(f"storage gate: {name}: traversal {ratio:.3f}x of map "
              f"(needs <= {traversal_max:.2f}x), {bpe:.1f} B/edge "
              f"(needs <= {bpe_max:.1f} and <= {bpe_ratio:.2f}x map's {map_bpe:.1f})")
        if ratio > traversal_max:
            failures.append(f"{name}: frozen traversal {ratio:.3f}x slower than "
                            f"map (> {traversal_max:.2f}x)")
        if bpe > bpe_max:
            failures.append(f"{name}: frozen storage {bpe:.1f} B/edge "
                            f"(> {bpe_max:.1f})")
        if rel > bpe_ratio:
            failures.append(f"{name}: frozen storage {rel:.2f}x of map's "
                            f"footprint (> {bpe_ratio:.2f}x)")
    geomean = math.exp(sum(log_ratios) / len(log_ratios))
    print(f"storage gate: traversal geomean {geomean:.3f}x "
          f"(needs <= {traversal_geomean:.2f}x)")
    if geomean > traversal_geomean:
        failures.append(f"frozen traversal geomean {geomean:.3f}x of map "
                        f"(> {traversal_geomean:.2f}x)")
    return failures


def check_parallel_gates(path, speedup_min):
    """Verify the parallel-traversal acceptance ratios in a
    bench_parallel_traversal --json artifact.  Returns a list of failure
    strings (empty = pass)."""
    with open(path) as f:
        doc = json.load(f)
    cases = doc.get("pr6_parallel_cases")
    if not isinstance(cases, dict) or not cases:
        return [f"{path}: no pr6_parallel_cases object"]
    hw_threads = doc.get("params", {}).get("hw_threads", 0)

    failures = []
    for name, case in sorted(cases.items()):
        samples = case.get("threads", [])
        if not samples:
            failures.append(f"{name}: no thread samples")
            continue
        base = samples[0]
        for s in samples[1:]:
            for key in ("triangles", "volume_bytes", "messages",
                        "bitmap_batches", "list_batches"):
                if s.get(key) != base.get(key):
                    failures.append(
                        f"{name}: {key} diverged at {s.get('threads')} threads "
                        f"({s.get(key)} vs {base.get(key)})")
        if case.get("nobitmap_triangles") != base.get("triangles"):
            failures.append(f"{name}: bitmap on/off changed the triangle count "
                            f"({case.get('nobitmap_triangles')} vs "
                            f"{base.get('triangles')})")
        speedup = case.get("speedup_4t", 0.0)
        print(f"parallel gate: {name}: speedup at 4 threads {speedup:.2f}x "
              f"(needs >= {speedup_min:.2f}x on rmat; hw_threads={hw_threads})")
        if name == "rmat":
            if hw_threads >= 4:
                if speedup < speedup_min:
                    failures.append(f"rmat: 4-thread speedup {speedup:.2f}x "
                                    f"(< {speedup_min:.2f}x)")
            else:
                print("parallel gate: fewer than 4 hardware threads, "
                      "speedup gate skipped")
        if name == "web":
            if base.get("bitmap_batches", 0) <= 0:
                failures.append("web: skewed case closed zero batches via the "
                                "hub bitmap kernel")
    return failures


def check_io_gates(path, compression_min, load_max, speedup_min):
    """Verify the ingest/snapshot acceptance ratios in a bench_snapshot_io
    --json artifact.  Returns a list of failure strings (empty = pass)."""
    with open(path) as f:
        doc = json.load(f)
    cases = doc.get("pr8_io_cases")
    if not isinstance(cases, dict) or not cases:
        return [f"{path}: no pr8_io_cases object"]
    hw_threads = doc.get("params", {}).get("hw_threads", 0)

    failures = []
    for name, case in sorted(cases.items()):
        if case.get("triangles_raw") != case.get("triangles_compressed"):
            failures.append(f"{name}: triangle counts diverge across snapshot "
                            f"codecs ({case.get('triangles_raw')} raw vs "
                            f"{case.get('triangles_compressed')} compressed)")
        raw_b = case.get("snapshot_bytes_raw", 0)
        cmp_b = case.get("snapshot_bytes_compressed", 0)
        compression = raw_b / cmp_b if cmp_b > 0 else 0.0
        raw_s = case.get("load_seconds_raw", 0.0)
        cmp_s = case.get("load_seconds_compressed", 0.0)
        load_ratio = cmp_s / raw_s if raw_s > 0 else float("inf")
        serial_s = (case.get("ingest_seconds_1t", 0.0)
                    + case.get("freeze_seconds_1t", 0.0))
        par_s = (case.get("ingest_seconds_4t", 0.0)
                 + case.get("freeze_seconds_4t", 0.0))
        speedup = serial_s / par_s if par_s > 0 else 0.0
        print(f"io gate: {name}: compression {compression:.2f}x "
              f"(needs >= {compression_min:.2f}x), load {load_ratio:.3f}x of "
              f"mmap (needs <= {load_max:.2f}x), pipeline speedup "
              f"{speedup:.2f}x (needs >= {speedup_min:.2f}x on rmat; "
              f"hw_threads={hw_threads})")
        if compression < compression_min:
            failures.append(f"{name}: compressed snapshot only {compression:.2f}x "
                            f"smaller than raw (< {compression_min:.2f}x)")
        if load_ratio > load_max:
            failures.append(f"{name}: compressed load {load_ratio:.3f}x of the "
                            f"mmap path (> {load_max:.2f}x)")
        if name == "rmat":
            if hw_threads >= 4:
                if speedup < speedup_min:
                    failures.append(f"rmat: ingest+freeze 4-thread speedup "
                                    f"{speedup:.2f}x (< {speedup_min:.2f}x)")
            else:
                print("io gate: fewer than 4 hardware threads, "
                      "speedup gate skipped")
    return failures


def check_service_gates(path, fusion_min, cache_min):
    """Verify the resident-service acceptance ratios in a
    bench_service_throughput --json artifact.  Returns a list of failure
    strings (empty = pass)."""
    with open(path) as f:
        doc = json.load(f)
    cases = doc.get("pr9_service_cases")
    if not isinstance(cases, dict) or not cases:
        return [f"{path}: no pr9_service_cases object"]

    failures = []
    for name, case in sorted(cases.items()):
        if case.get("mismatches", 1) != 0:
            failures.append(f"{name}: {case.get('mismatches')} daemon replies "
                            f"diverged from the standalone traversal")
        plans = case.get("plans", 0)
        fused_tps = case.get("fused_plans_per_sec", 0.0)
        unfused_tps = case.get("unfused_plans_per_sec", 0.0)
        fusion = fused_tps / unfused_tps if unfused_tps > 0 else 0.0
        fused_trav = case.get("fused_traversals", plans)
        unfused_trav = case.get("unfused_traversals", 0)
        cold_s = case.get("cold_seconds", 0.0)
        hit_s = case.get("hit_seconds", 0.0)
        cache = cold_s / hit_s if hit_s > 0 else 0.0
        print(f"service gate: {name}: fusion {fusion:.2f}x "
              f"(needs >= {fusion_min:.2f}x; {fused_trav} traversals for "
              f"{plans} plans vs {unfused_trav} unfused), cache hit "
              f"{cache:.1f}x faster than cold (needs >= {cache_min:.1f}x)")
        if fusion < fusion_min:
            failures.append(f"{name}: fused throughput only {fusion:.2f}x the "
                            f"unfused daemon (< {fusion_min:.2f}x)")
        if plans > 0 and fused_trav >= plans:
            failures.append(f"{name}: fused daemon ran {fused_trav} traversals "
                            f"for {plans} plans (no batching happened)")
        if plans > 0 and unfused_trav != plans:
            failures.append(f"{name}: unfused daemon ran {unfused_trav} "
                            f"traversals for {plans} plans (baseline is not "
                            f"one-traversal-per-plan)")
        if cache < cache_min:
            failures.append(f"{name}: cache hit only {cache:.1f}x faster than "
                            f"a cold submission (< {cache_min:.1f}x)")
    return failures


def check_streaming_gates(path, speedup_min):
    """Verify the streaming-overlay acceptance ratios in a
    bench_streaming_ingest --json artifact.  Returns a list of failure
    strings (empty = pass)."""
    with open(path) as f:
        doc = json.load(f)
    cases = doc.get("pr10_streaming_cases")
    if not isinstance(cases, dict) or not cases:
        return [f"{path}: no pr10_streaming_cases object"]

    failures = []
    for name, case in sorted(cases.items()):
        tri = {case.get("triangles_rebuild"), case.get("triangles_overlay"),
               case.get("triangles_compacted")}
        if len(tri) != 1 or None in tri:
            failures.append(f"{name}: triangle counts diverge across rebuild/"
                            f"overlay/compacted: {sorted(tri, key=str)}")
        for key in ("volume", "messages"):
            if case.get(f"{key}_rebuild") != case.get(f"{key}_overlay"):
                failures.append(
                    f"{name}: unwindowed {key} diverged "
                    f"({case.get(f'{key}_rebuild')} rebuild vs "
                    f"{case.get(f'{key}_overlay')} overlay)")
        if case.get("window_fires") != case.get("window_fires_rebuild"):
            failures.append(f"{name}: windowed fire counts diverged "
                            f"({case.get('window_fires_rebuild')} rebuild vs "
                            f"{case.get('window_fires')} overlay)")
        inc_s = case.get("incremental_seconds", 0.0)
        reb_s = case.get("rebuild_seconds", 0.0)
        speedup = reb_s / inc_s if inc_s > 0 else 0.0
        full_v = case.get("full_volume", 0)
        win_v = case.get("window_volume", 0)
        gated = " (gated)" if name == "delta_1pct" else ""
        print(f"streaming gate: {name}: ingest+survey {speedup:.2f}x faster "
              f"than rebuild+survey{gated} (delta_1pct needs >= "
              f"{speedup_min:.2f}x), window volume {win_v} B of {full_v} B")
        if name == "delta_1pct" and speedup < speedup_min:
            failures.append(f"delta_1pct: incremental path only {speedup:.2f}x "
                            f"faster than the rebuild (< {speedup_min:.2f}x)")
        if win_v >= full_v:
            failures.append(f"{name}: windowed survey volume {win_v} B did not "
                            f"drop below the unwindowed {full_v} B")
    if "delta_1pct" not in cases:
        failures.append(f"{path}: no delta_1pct case to speed-gate")
    return failures


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--current",
                        help="directory of Google Benchmark JSON files from this run")
    parser.add_argument("--baseline-dir", default=".",
                        help="directory holding the committed BENCH_*.json files")
    parser.add_argument("--threshold", type=float, default=3.0,
                        help="fail when current/baseline exceeds this ratio")
    parser.add_argument("--plan-gates",
                        help="fig9 --json artifact to check the survey-plan "
                             "acceptance ratios against")
    parser.add_argument("--plan-reduction-min", type=float, default=2.0,
                        help="minimum identity/projected volume ratio")
    parser.add_argument("--plan-fusion-max", type=float, default=1.1,
                        help="maximum fused/single volume ratio")
    parser.add_argument("--storage-gates",
                        help="bench_storage_frozen --json artifact to check the "
                             "frozen-storage acceptance ratios against")
    parser.add_argument("--storage-traversal-max", type=float, default=1.2,
                        help="maximum per-case frozen/map survey time ratio")
    parser.add_argument("--storage-traversal-geomean", type=float, default=1.0,
                        help="maximum geomean frozen/map survey time ratio")
    parser.add_argument("--storage-bpe-max", type=float, default=34.0,
                        help="maximum frozen bytes per directed edge")
    parser.add_argument("--storage-bpe-ratio", type=float, default=0.75,
                        help="maximum frozen/map bytes-per-edge ratio")
    parser.add_argument("--parallel-gates",
                        help="bench_parallel_traversal --json artifact to check "
                             "the parallel-traversal acceptance gates against")
    parser.add_argument("--parallel-speedup-min", type=float, default=1.6,
                        help="minimum rmat speedup at 4 threads (skipped on "
                             "machines with < 4 hardware threads)")
    parser.add_argument("--io-gates",
                        help="bench_snapshot_io --json artifact to check the "
                             "ingest/snapshot acceptance gates against")
    parser.add_argument("--io-compression-min", type=float, default=1.7,
                        help="minimum raw/compressed snapshot byte ratio")
    parser.add_argument("--io-load-max", type=float, default=1.15,
                        help="maximum compressed/raw snapshot load wall ratio")
    parser.add_argument("--io-speedup-min", type=float, default=1.6,
                        help="minimum rmat ingest+freeze speedup at 4 threads "
                             "(skipped on machines with < 4 hardware threads)")
    parser.add_argument("--service-gates",
                        help="bench_service_throughput --json artifact to check "
                             "the resident-service acceptance gates against")
    parser.add_argument("--service-fusion-min", type=float, default=1.5,
                        help="minimum fused/unfused plans-per-second ratio at "
                             "8 concurrent clients")
    parser.add_argument("--service-cache-min", type=float, default=10.0,
                        help="minimum cold/hit submit latency ratio for an "
                             "LRU cache hit")
    parser.add_argument("--streaming-gates",
                        help="bench_streaming_ingest --json artifact to check "
                             "the streaming-overlay acceptance gates against")
    parser.add_argument("--streaming-speedup-min", type=float, default=10.0,
                        help="minimum rebuild/incremental end-to-end wall "
                             "ratio on the 1%%-of-|E| churn batch")
    args = parser.parse_args()

    if (not args.current and not args.plan_gates and not args.storage_gates
            and not args.parallel_gates and not args.io_gates
            and not args.service_gates and not args.streaming_gates):
        parser.error("need --current, --plan-gates, --storage-gates, "
                     "--parallel-gates, --io-gates, --service-gates and/or "
                     "--streaming-gates")

    # All requested checks always run so one CI pass reports every failure
    # class; the combined exit status is the worst of them.
    gate_failures = []
    if args.plan_gates:
        try:
            failures = check_plan_gates(args.plan_gates, args.plan_reduction_min,
                                        args.plan_fusion_max)
        except (OSError, json.JSONDecodeError) as e:
            print(f"error: {e}")
            return 2
        if failures:
            print("\nFAIL: survey-plan gate(s) violated:")
            for f in failures:
                print(f"  {f}")
        else:
            print("OK: survey-plan gates pass")
        gate_failures += failures
    if args.storage_gates:
        try:
            failures = check_storage_gates(
                args.storage_gates, args.storage_traversal_max,
                args.storage_traversal_geomean, args.storage_bpe_max,
                args.storage_bpe_ratio)
        except (OSError, json.JSONDecodeError) as e:
            print(f"error: {e}")
            return 2
        if failures:
            print("\nFAIL: frozen-storage gate(s) violated:")
            for f in failures:
                print(f"  {f}")
        else:
            print("OK: frozen-storage gates pass")
        gate_failures += failures
    if args.parallel_gates:
        try:
            failures = check_parallel_gates(args.parallel_gates,
                                            args.parallel_speedup_min)
        except (OSError, json.JSONDecodeError) as e:
            print(f"error: {e}")
            return 2
        if failures:
            print("\nFAIL: parallel-traversal gate(s) violated:")
            for f in failures:
                print(f"  {f}")
        else:
            print("OK: parallel-traversal gates pass")
        gate_failures += failures
    if args.io_gates:
        try:
            failures = check_io_gates(args.io_gates, args.io_compression_min,
                                      args.io_load_max, args.io_speedup_min)
        except (OSError, json.JSONDecodeError) as e:
            print(f"error: {e}")
            return 2
        if failures:
            print("\nFAIL: ingest/snapshot gate(s) violated:")
            for f in failures:
                print(f"  {f}")
        else:
            print("OK: ingest/snapshot gates pass")
        gate_failures += failures
    if args.service_gates:
        try:
            failures = check_service_gates(args.service_gates,
                                           args.service_fusion_min,
                                           args.service_cache_min)
        except (OSError, json.JSONDecodeError) as e:
            print(f"error: {e}")
            return 2
        if failures:
            print("\nFAIL: resident-service gate(s) violated:")
            for f in failures:
                print(f"  {f}")
        else:
            print("OK: resident-service gates pass")
        gate_failures += failures
    if args.streaming_gates:
        try:
            failures = check_streaming_gates(args.streaming_gates,
                                             args.streaming_speedup_min)
        except (OSError, json.JSONDecodeError) as e:
            print(f"error: {e}")
            return 2
        if failures:
            print("\nFAIL: streaming-overlay gate(s) violated:")
            for f in failures:
                print(f"  {f}")
        else:
            print("OK: streaming-overlay gates pass")
        gate_failures += failures
    if not args.current:
        return 1 if gate_failures else 0

    try:
        baselines = load_baselines(args.baseline_dir)
        current = load_current(args.current)
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: {e}")
        return 2
    if not baselines:
        print(f"error: no baseline cases found in {args.baseline_dir}/BENCH_*.json")
        return 2

    regressions = []
    compared = 0
    print(f"{'case':40s} {'baseline':>12s} {'current':>12s} {'ratio':>7s}")
    for name in sorted(current):
        if name not in baselines:
            print(f"{name:40s} {'(new)':>12s} {current[name]:>10.1f}ns       -")
            continue
        base_ns, source = baselines[name]
        ratio = current[name] / base_ns if base_ns > 0 else float("inf")
        flag = "  REGRESSION" if ratio > args.threshold else ""
        print(f"{name:40s} {base_ns:>10.1f}ns {current[name]:>10.1f}ns {ratio:>6.2f}x{flag}")
        compared += 1
        if ratio > args.threshold:
            regressions.append((name, ratio, source))

    if compared == 0:
        print("error: no current case matched any committed baseline")
        return 2
    if regressions:
        print(f"\nFAIL: {len(regressions)} case(s) regressed beyond "
              f"{args.threshold:.2f}x:")
        for name, ratio, source in regressions:
            print(f"  {name}: {ratio:.2f}x vs {source}")
        return 1
    print(f"\nOK: {compared} case(s) within {args.threshold:.2f}x of the "
          f"committed trajectory")
    return 1 if gate_failures else 0


if __name__ == "__main__":
    sys.exit(main())
