#!/usr/bin/env bash
# launch_hosts.sh -- launch one TriPoll rank per hostfile line over the TCP
# rendezvous path of the socket backend (TRIPOLL_HOSTS).
#
# Usage:
#   launch_hosts.sh <hostfile> <command> [args...]
#
#   hostfile   one "host[:port]" per line; blank lines and '#' comments are
#              skipped.  Lines without an explicit :port get
#              TRIPOLL_BASE_PORT+rank (base defaults to 17700).
#   command    executed once per rank with TRIPOLL_RANK, TRIPOLL_NRANKS and
#              TRIPOLL_HOSTS exported.  localhost / 127.0.0.1 / the local
#              hostname spawn directly; every other host launches via
#              `ssh -o BatchMode=yes` (the command path must be valid
#              there, e.g. a shared filesystem).
#
# Example -- four ranks, two per machine:
#   $ cat hosts.txt
#   nodeA:17700
#   nodeA:17701
#   nodeB:17700
#   nodeB:17701
#   $ tools/launch_hosts.sh hosts.txt build/tripoll_cli \
#         preset rmat 4 -2 --backend socket
#
# Works just as well for the resident survey service: point it at
# `build/tripoll_cli serve <prefix> <nranks> --backend socket
#  --endpoint tcp:0.0.0.0:9000` and rank 0's host serves clients
# (docs/SERVICE.md).
#
# Exit status: 0 when every rank exits 0, else 1 (each failing rank is
# reported on stderr).
set -u

if [ $# -lt 2 ]; then
  echo "usage: launch_hosts.sh <hostfile> <command> [args...]" >&2
  exit 2
fi

HOSTFILE="$1"
shift
if [ ! -r "$HOSTFILE" ]; then
  echo "launch_hosts: cannot read hostfile '$HOSTFILE'" >&2
  exit 2
fi
BASE_PORT="${TRIPOLL_BASE_PORT:-17700}"

hosts=()
endpoints=()
while IFS= read -r line || [ -n "$line" ]; do
  line="${line%%#*}"
  line="$(printf '%s' "$line" | tr -d '[:space:]')"
  [ -n "$line" ] || continue
  case "$line" in
    *:*) host="${line%%:*}" port="${line##*:}" ;;
    *)   host="$line" port="$((BASE_PORT + ${#hosts[@]}))" ;;
  esac
  hosts+=("$host")
  endpoints+=("$host:$port")
done <"$HOSTFILE"

NRANKS=${#hosts[@]}
if [ "$NRANKS" -lt 1 ]; then
  echo "launch_hosts: hostfile '$HOSTFILE' lists no hosts" >&2
  exit 2
fi
HOSTLIST="$(IFS=,; echo "${endpoints[*]}")"
LOCAL_NAME="$(hostname 2>/dev/null || echo localhost)"

pids=()
for r in $(seq 0 $((NRANKS - 1))); do
  host="${hosts[$r]}"
  if [ "$host" = "localhost" ] || [ "$host" = "127.0.0.1" ] || [ "$host" = "$LOCAL_NAME" ]; then
    TRIPOLL_RANK="$r" TRIPOLL_NRANKS="$NRANKS" TRIPOLL_HOSTS="$HOSTLIST" "$@" &
  else
    # shellcheck disable=SC2029  # remote expansion of the flattened command is intended
    ssh -o BatchMode=yes "$host" \
      "TRIPOLL_RANK=$r TRIPOLL_NRANKS=$NRANKS TRIPOLL_HOSTS='$HOSTLIST' $*" &
  fi
  pids+=($!)
done

status=0
for r in $(seq 0 $((NRANKS - 1))); do
  if ! wait "${pids[$r]}"; then
    echo "launch_hosts: rank $r (${hosts[$r]}) exited nonzero" >&2
    status=1
  fi
done
exit "$status"
