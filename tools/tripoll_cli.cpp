// tripoll_cli -- command-line driver for the TriPoll library.
//
// Subcommands (all run on the distributed runtime):
//   gen <kind> <scale> <out.txt>        generate an edge list (rmat|er|web|temporal)
//   census <edges.txt> [ranks]          |V|, |E|, degrees, |W+| of a file
//   count <edges.txt> [ranks] [mode]    exact triangle count (push_pull|push_only)
//   approx <edges.txt> [samples]        wedge-sampling estimate
//   clustering <edges.txt> [ranks]      transitivity + average local cc
//   closure <edges.txt> [ranks]         closure-time survey (3rd column = timestamp)
//   preset <rmat|temporal|web> [ranks] [delta]
//                                       build an ablation preset and print the
//                                       deterministic survey metrics (used by the
//                                       cross-backend smoke test)
//   plan <rmat|temporal|web> [ranks] [delta]
//                                       attach deterministic rich metadata to a
//                                       preset and run a fused 3-callback
//                                       PROJECTED survey plan (count + closure
//                                       times + stateful hot-triangle filter)
//                                       next to an identity-projection run;
//                                       prints deterministic metrics (also used
//                                       by the cross-backend smoke test)
//   frozen <rmat|temporal|web> [ranks] [delta]
//                                       build a preset, survey it from the
//                                       mutable map AND the frozen CSR arenas
//                                       (plus a projection-pushdown freeze);
//                                       prints deterministic metrics for all
//                                       three (cross-backend smoke test)
//   snapshot save <edges.txt> <prefix> [ranks]
//                                       build + freeze a graph from a file and
//                                       write per-rank CSR snapshot files
//                                       (--compress: delta/varint v3 layout)
//   snapshot load <prefix> [ranks] [push_pull|push_only]
//                                       mmap the snapshot (skipping edge
//                                       shuffle and ordering peel) and run the
//                                       counting survey
//   serve <prefix> [ranks]              mmap the snapshot and run the resident
//                                       survey service on --endpoint until
//                                       SHUTDOWN or SIGTERM (docs/SERVICE.md)
//   query <endpoint> <spec>...          submit one plan to a running daemon
//                                       (count | hot[:n] | closure | maxlabel |
//                                       window:t0:t1), fetch stats, or request
//                                       shutdown
//   ingest <prefix> <batch.txt> [ranks] load a snapshot, wrap it in the mutable
//                                       streaming overlay, apply the edge batch
//                                       and survey base+delta (--compact: also
//                                       re-freeze incrementally and save a v3
//                                       snapshot at <prefix>-compacted); see
//                                       docs/STREAMING.md
//
// Options:
//   --ordering {degree,degeneracy}   DODGr <+ vertex order (graph-building cmds)
//   --backend {inproc,socket}        transport backend (default inproc)
//   --threads {n}                    worker threads per rank for frozen-graph
//                                    surveys (default TRIPOLL_THREADS env or 1)
//
// Backend selection: `--backend socket` runs every rank as a separate OS
// process.  Without TRIPOLL_RANK set, the CLI forks <ranks> local processes
// connected over Unix-domain sockets.  With TRIPOLL_RANK / TRIPOLL_NRANKS /
// TRIPOLL_SOCKET_DIR (or TRIPOLL_HOSTS) set by an external launcher, this
// process joins the rendezvous as that single rank -- launch the CLI once
// per rank:
//
//   for r in 0 1 2 3; do
//     TRIPOLL_RANK=$r TRIPOLL_NRANKS=4 TRIPOLL_SOCKET_DIR=/tmp/tp  (one line)
//       tripoll_cli count /tmp/g.txt 4 --backend socket &
//   done; wait
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <type_traits>

#include "baselines/approx_tc.hpp"
#include "comm/runtime.hpp"
#include "comm/service_client.hpp"
#include "core/analytics.hpp"
#include "core/callbacks.hpp"
#include "core/survey.hpp"
#include "gen/distribute.hpp"
#include "gen/erdos_renyi.hpp"
#include "gen/presets.hpp"
#include "gen/rmat.hpp"
#include "gen/temporal.hpp"
#include "gen/web.hpp"
#include "graph/builder.hpp"
#include "graph/frozen.hpp"
#include "graph/io.hpp"
#include "graph/ordering.hpp"
#include "graph/overlay.hpp"
#include "graph/snapshot.hpp"
#include "serial/hash.hpp"
#include "service/survey_service.hpp"

namespace cb = tripoll::callbacks;
namespace comm = tripoll::comm;
namespace gen = tripoll::gen;
namespace graph = tripoll::graph;
namespace svc = tripoll::service;
namespace ta = tripoll::analytics;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  tripoll_cli gen <rmat|er|web|temporal> <scale> <out.txt>\n"
               "  tripoll_cli census <edges.txt> [ranks]\n"
               "  tripoll_cli count <edges.txt> [ranks] [push_pull|push_only]\n"
               "  tripoll_cli approx <edges.txt> [samples]\n"
               "  tripoll_cli clustering <edges.txt> [ranks]\n"
               "  tripoll_cli closure <edges.txt> [ranks]\n"
               "  tripoll_cli preset <rmat|temporal|web> [ranks] [delta]\n"
               "  tripoll_cli plan <rmat|temporal|web> [ranks] [delta]\n"
               "  tripoll_cli frozen <rmat|temporal|web> [ranks] [delta]\n"
               "  tripoll_cli snapshot save <edges.txt> <prefix> [ranks]\n"
               "  tripoll_cli snapshot load <prefix> [ranks] [push_pull|push_only]\n"
               "  tripoll_cli serve <prefix> [ranks]\n"
               "  tripoll_cli query <endpoint> "
               "<count|hot[:n]|closure|maxlabel|window:t0:t1|stats|shutdown>...\n"
               "  tripoll_cli ingest <prefix> <batch.txt> [ranks]\n"
               "options:\n"
               "  --ordering <degree|degeneracy>  DODGr <+ vertex order (default degree)\n"
               "  --backend <inproc|socket>       transport backend (default inproc;\n"
               "                                  socket forks one process per rank, or\n"
               "                                  joins a TRIPOLL_RANK rendezvous)\n"
               "  --threads <n>                   worker threads per rank for frozen-graph\n"
               "                                  surveys, parallel ingest and freeze\n"
               "                                  (default: TRIPOLL_THREADS env or 1;\n"
               "                                  results are identical at any count)\n"
               "  --compress                      snapshot save: write the v3 compressed\n"
               "                                  layout (delta/varint-packed columns)\n"
               "  --meta                          snapshot save: attach the deterministic\n"
               "                                  plan metadata (u64 timestamps + labels)\n"
               "  --endpoint <spec>               serve/query: unix:<path> or tcp:host:port\n"
               "                                  (default unix:/tmp/tripoll-service.sock)\n"
               "  --window <ms>                   serve: admission window (default 5)\n"
               "  --max-batch <n>                 serve: plans fused per round (default 8)\n"
               "  --cache <n>                     serve: LRU result entries; 0 disables\n"
               "                                  (default 64)\n"
               "  --compact                       ingest: re-freeze the overlay after the\n"
               "                                  batch and save <prefix>-compacted\n");
  return 2;
}

/// Flags stripped from argv before positional parsing.
graph::ordering_policy g_ordering = graph::ordering_policy::degree;
comm::backend_kind g_backend = comm::backend_kind::inproc;
int g_threads = 0;  ///< 0 = TRIPOLL_THREADS env, else 1 (docs/THREADING.md)
bool g_compress = false;  ///< snapshot save: v3 compressed layout
bool g_meta = false;      ///< snapshot save: attach deterministic plan metadata
bool g_compact = false;   ///< ingest: re-freeze + save after applying the batch
std::string g_endpoint = "unix:/tmp/tripoll-service.sock";
std::uint64_t g_window_ms = 5;   ///< serve: admission window
std::uint64_t g_max_batch = 8;   ///< serve: plans fused per round
std::uint64_t g_cache = 64;      ///< serve: LRU result entries (0 disables)

/// Strip `--flag <x>` / `--flag=<x>` style options from argv; returns false
/// (and prints usage) on an unknown value or missing argument.
bool strip_flags(int& argc, char** argv) {
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--compress") {
      g_compress = true;
      continue;
    }
    if (arg == "--meta") {
      g_meta = true;
      continue;
    }
    if (arg == "--compact") {
      g_compact = true;
      continue;
    }
    std::string name;
    std::string value;
    for (const char* flag : {"--ordering", "--backend", "--threads", "--endpoint",
                             "--window", "--max-batch", "--cache"}) {
      const std::string prefix = std::string(flag) + "=";
      if (arg == flag) {
        if (i + 1 >= argc) return false;
        name = flag;
        value = argv[++i];
        break;
      }
      if (arg.rfind(prefix, 0) == 0) {
        name = flag;
        value = arg.substr(prefix.size());
        break;
      }
    }
    if (name.empty()) {
      argv[out++] = argv[i];
      continue;
    }
    if (name == "--ordering") {
      const auto parsed = graph::parse_ordering(value);
      if (!parsed) {
        std::fprintf(stderr, "unknown ordering '%s'\n", value.c_str());
        return false;
      }
      g_ordering = *parsed;
    } else if (name == "--backend") {
      if (value == "inproc") {
        g_backend = comm::backend_kind::inproc;
      } else if (value == "socket") {
        g_backend = comm::backend_kind::socket;
      } else {
        std::fprintf(stderr, "unknown backend '%s' (inproc|socket)\n", value.c_str());
        return false;
      }
    } else if (name == "--threads") {
      const int n = std::atoi(value.c_str());
      if (n < 1) {
        std::fprintf(stderr, "bad thread count '%s' (want >= 1)\n", value.c_str());
        return false;
      }
      g_threads = n;
    } else if (name == "--endpoint") {
      g_endpoint = value;
    } else if (name == "--window") {
      g_window_ms = static_cast<std::uint64_t>(std::atoll(value.c_str()));
    } else if (name == "--max-batch") {
      const long long n = std::atoll(value.c_str());
      if (n < 1) {
        std::fprintf(stderr, "bad batch size '%s' (want >= 1)\n", value.c_str());
        return false;
      }
      g_max_batch = static_cast<std::uint64_t>(n);
    } else if (name == "--cache") {
      g_cache = static_cast<std::uint64_t>(std::atoll(value.c_str()));
    }
  }
  argc = out;
  return true;
}

/// Run `fn` on `ranks` ranks over the selected backend.
template <typename F>
void run_spmd(int ranks, F&& fn) {
  comm::runtime::run_backend(g_backend, ranks, std::forward<F>(fn));
}

int cmd_gen(int argc, char** argv) {
  if (argc < 5) return usage();
  const std::string kind = argv[2];
  const auto scale = static_cast<std::uint32_t>(std::atoi(argv[3]));
  const std::string out = argv[4];
  graph::edge_list_writer writer(out);
  std::uint64_t edges = 0;
  if (kind == "rmat") {
    gen::rmat_generator g(gen::rmat_params{scale, 16, 0.57, 0.19, 0.19, 42, true});
    for (std::uint64_t k = 0; k < g.num_edges(); ++k) {
      const auto e = g.edge_at(k);
      writer.write(e.u, e.v);
    }
    edges = g.num_edges();
  } else if (kind == "er") {
    gen::erdos_renyi_generator g(std::uint64_t{1} << scale,
                                 (std::uint64_t{1} << scale) * 16, 42);
    for (std::uint64_t k = 0; k < g.num_edges(); ++k) {
      const auto e = g.edge_at(k);
      writer.write(e.u, e.v);
    }
    edges = g.num_edges();
  } else if (kind == "web") {
    gen::web_params p;
    p.scale = scale;
    gen::web_generator g(p);
    for (std::uint64_t k = 0; k < g.num_edges(); ++k) {
      const auto e = g.edge_at(k);
      writer.write(e.u, e.v);
    }
    edges = g.num_edges();
  } else if (kind == "temporal") {
    gen::temporal_params p;
    p.scale = scale;
    gen::temporal_generator g(p);
    for (std::uint64_t k = 0; k < g.num_edges(); ++k) {
      const auto e = g.edge_at(k);
      writer.write(e.u, e.v, e.timestamp);
    }
    edges = g.num_edges();
  } else {
    return usage();
  }
  std::printf("wrote %llu edges to %s\n", (unsigned long long)edges, out.c_str());
  return 0;
}

template <typename Fn>
int with_plain_graph_from_file(const std::string& path, int ranks, Fn&& fn) {
  run_spmd(ranks, [&](comm::communicator& c) {
    graph::graph_builder<graph::none, graph::none> builder(c, g_ordering);
    graph::read_edge_list(c, path, [&](const graph::parsed_edge& e) {
      builder.add_edge(e.u, e.v);
    });
    graph::dodgr<graph::none, graph::none> g(c);
    builder.build_into(g);
    fn(c, g);
  });
  return 0;
}

using gen::for_preset_edges;

/// Deterministic survey report of one ablation preset: everything printed
/// is a global count or an all-reduced sum, so the output is bit-identical
/// across backends and ranks (wall times deliberately omitted).  The
/// socket-smoke ctest diffs this against the inproc run.
int cmd_preset(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string which = argv[2];
  const int ranks = argc > 3 ? std::atoi(argv[3]) : 4;
  const int delta = argc > 4 ? std::atoi(argv[4]) : -2;
  if (which != "rmat" && which != "temporal" && which != "web") return usage();

  run_spmd(ranks, [&](comm::communicator& c) {
    gen::plain_graph g(c);
    graph::graph_builder<graph::none, graph::none> builder(c, g_ordering);
    for_preset_edges(c, which, delta,
                     [&](graph::vertex_id u, graph::vertex_id v) { builder.add_edge(u, v); });
    builder.build_into(g);

    cb::count_context ctx;
    const auto r = cb::plan_for(g, cb::count_callback{}, ctx).run({}).slice(0);
    const auto triangles = ctx.global_count(c);
    const auto census = g.census();
    if (c.rank0()) {
      std::printf("preset %s ranks %d delta %d ordering %s mode push_pull\n",
                  which.c_str(), ranks, delta, graph::ordering_name(g.ordering()));
      std::printf("census |V| %llu |E|+ %llu dmax %llu dmax+ %llu |W+| %llu\n",
                  (unsigned long long)census.num_vertices,
                  (unsigned long long)census.num_directed_edges,
                  (unsigned long long)census.max_degree,
                  (unsigned long long)census.max_out_degree,
                  (unsigned long long)census.wedge_checks);
      std::printf("triangles %llu\n", (unsigned long long)triangles);
      std::printf("phase dry_run volume %llu messages %llu\n",
                  (unsigned long long)r.dry_run.volume_bytes,
                  (unsigned long long)r.dry_run.messages);
      std::printf("phase push volume %llu messages %llu\n",
                  (unsigned long long)r.push.volume_bytes,
                  (unsigned long long)r.push.messages);
      std::printf("phase pull volume %llu messages %llu\n",
                  (unsigned long long)r.pull.volume_bytes,
                  (unsigned long long)r.pull.messages);
      std::printf("totals volume %llu messages %llu pulls %llu push_batches %llu "
                  "candidates %llu filtered %llu\n",
                  (unsigned long long)r.total.volume_bytes,
                  (unsigned long long)r.total.messages,
                  (unsigned long long)r.pulls_granted,
                  (unsigned long long)r.push_batches,
                  (unsigned long long)r.wedge_candidates,
                  (unsigned long long)r.proposals_filtered);
    }
  });
  return 0;
}

/// Deterministic rich metadata for `plan`: an interaction timestamp per
/// edge and a degree-like label per vertex, both pure functions of the
/// vertex ids so every backend and rank assignment computes the same graph.
std::uint64_t plan_edge_ts(graph::vertex_id u, graph::vertex_id v) {
  const auto lo = std::min(u, v);
  const auto hi = std::max(u, v);
  return tripoll::serial::hash_combine(tripoll::serial::splitmix64(lo), hi) % 1000000;
}

std::uint64_t plan_vertex_label(graph::vertex_id v) {
  return tripoll::serial::splitmix64(v ^ 0x5EED) % 64;
}

/// Stateful plan callback (carried by value in the plan): counts triangles
/// whose three projected timestamps all clear the threshold; bool return =
/// "did I fire", so its result slice reports the filtered count.
struct hot_triangle_filter {
  std::uint64_t threshold = 0;

  template <typename View>
  bool operator()(const View& v, std::uint64_t& hot) const {
    const auto a = static_cast<std::uint64_t>(v.meta_pq);
    const auto b = static_cast<std::uint64_t>(v.meta_pr);
    const auto t = static_cast<std::uint64_t>(v.meta_qr);
    if (a < threshold || b < threshold || t < threshold) return false;
    ++hot;
    return true;
  }
};

/// Fused projected survey plan over a preset graph with deterministic rich
/// metadata: one traversal drives (1) triangle counting, (2) the closure
/// time histogram and (3) a stateful hot-triangle filter, with vertex
/// metadata projected to its label and edge metadata to its timestamp.  An
/// identity-projection single-callback run prints next to it.  All printed
/// values are global reductions -- bit-identical across backends; the
/// socket-smoke ctest diffs this output against the inproc run.
int cmd_plan(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string which = argv[2];
  const int ranks = argc > 3 ? std::atoi(argv[3]) : 4;
  const int delta = argc > 4 ? std::atoi(argv[4]) : -2;
  if (which != "rmat" && which != "temporal" && which != "web") return usage();

  run_spmd(ranks, [&](comm::communicator& c) {
    graph::dodgr<std::uint64_t, std::uint64_t> g(c);
    graph::graph_builder<std::uint64_t, std::uint64_t> builder(c, g_ordering);
    for_preset_edges(c, which, delta, [&](graph::vertex_id u, graph::vertex_id v) {
      builder.add_edge(u, v, plan_edge_ts(u, v));
    });
    builder.build_into(g);
    // Vertex labels are attached rank-locally after the build (pure
    // function of the id, so no exchange is needed).
    g.for_all_local([](const graph::vertex_id& v, auto& rec) {
      rec.meta = plan_vertex_label(v);
      for (auto& e : rec.adj) e.target_meta = plan_vertex_label(e.target);
    });

    // Identity-projection single-callback run: full metadata on the wire.
    comm::counting_set<cb::closure_bin> id_bins(c);
    cb::closure_time_context id_ctx{&id_bins};
    const auto identity =
        tripoll::survey(g).add(cb::closure_time_callback{}, id_ctx).run({}).slice(0);
    id_bins.finalize();

    // Fused 3-callback projected plan: one traversal, minimal wire types.
    comm::counting_set<cb::closure_bin> bins(c);
    cb::count_context count_ctx;
    cb::closure_time_context closure_ctx{&bins};
    std::uint64_t hot_local = 0;
    auto fused = tripoll::survey(g)
                     .project_vertex(cb::degree_projection{})
                     .project_edge(cb::timestamp_projection{})
                     .add(cb::count_callback{}, count_ctx)
                     .add(cb::closure_time_callback{}, closure_ctx)
                     .add(hot_triangle_filter{500000}, hot_local)
                     .run({});
    bins.finalize();

    // Deterministic digest of the closure histogram (identical on the
    // identity and projected runs if and only if the surveys agree).
    const auto digest = [](const std::map<cb::closure_bin, std::uint64_t>& h) {
      std::uint64_t d = 0;
      for (const auto& [bin, n] : h) {
        d = tripoll::serial::hash_combine(d, (std::uint64_t{bin.first} << 32) | bin.second);
        d = tripoll::serial::hash_combine(d, n);
      }
      return d;
    };
    const auto id_hist = id_bins.gather_all();
    const auto fused_hist = bins.gather_all();
    const auto hot_global = c.all_reduce_sum(hot_local);

    if (c.rank0()) {
      std::printf("plan %s ranks %d delta %d ordering %s mode push_pull\n",
                  which.c_str(), ranks, delta, graph::ordering_name(g.ordering()));
      std::printf("identity  triangles %llu volume %llu messages %llu digest %016llx\n",
                  (unsigned long long)identity.triangles_found,
                  (unsigned long long)identity.total.volume_bytes,
                  (unsigned long long)identity.total.messages,
                  (unsigned long long)digest(id_hist));
      std::printf("projected triangles %llu volume %llu messages %llu digest %016llx\n",
                  (unsigned long long)fused.total.triangles_found,
                  (unsigned long long)fused.total.total.volume_bytes,
                  (unsigned long long)fused.total.total.messages,
                  (unsigned long long)digest(fused_hist));
      std::printf("fused invocations count %llu closure %llu hot %llu (hot global %llu)\n",
                  (unsigned long long)fused.invocations[0],
                  (unsigned long long)fused.invocations[1],
                  (unsigned long long)fused.invocations[2],
                  (unsigned long long)hot_global);
    }
  });
  return 0;
}

/// Print one deterministic survey line (global reductions only).
void print_survey_line(const char* tag, std::uint64_t triangles,
                       const tripoll::survey_result& r) {
  std::printf("%-9s triangles %llu volume %llu messages %llu pulls %llu "
              "candidates %llu\n",
              tag, (unsigned long long)triangles,
              (unsigned long long)r.total.volume_bytes,
              (unsigned long long)r.total.messages,
              (unsigned long long)r.pulls_granted,
              (unsigned long long)r.wedge_candidates);
}

/// Deterministic map-vs-frozen comparison over a preset graph: the same
/// survey runs from the mutable map, an identity freeze, and a
/// projection-pushdown freeze.  All printed values are global reductions --
/// bit-identical across backends; the socket-smoke ctest diffs this output.
int cmd_frozen(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string which = argv[2];
  const int ranks = argc > 3 ? std::atoi(argv[3]) : 4;
  const int delta = argc > 4 ? std::atoi(argv[4]) : -2;
  if (which != "rmat" && which != "temporal" && which != "web") return usage();

  run_spmd(ranks, [&](comm::communicator& c) {
    graph::dodgr<std::uint64_t, std::uint64_t> g(c);
    graph::graph_builder<std::uint64_t, std::uint64_t> builder(c, g_ordering);
    for_preset_edges(c, which, delta, [&](graph::vertex_id u, graph::vertex_id v) {
      builder.add_edge(u, v, plan_edge_ts(u, v));
    });
    builder.build_into(g);
    g.for_all_local([](const graph::vertex_id& v, auto& rec) {
      rec.meta = plan_vertex_label(v);
      for (auto& e : rec.adj) e.target_meta = plan_vertex_label(e.target);
    });

    // Map path: per-message projection of edge meta to its timestamp.
    comm::counting_set<cb::closure_bin> map_bins(c);
    cb::closure_time_context map_ctx{&map_bins};
    const auto map_res =
        cb::plan_for(g, cb::closure_time_callback{}, map_ctx).run({}).slice(0);
    map_bins.finalize();

    // Identity freeze: same metadata, CSR arenas.
    auto fz = graph::freeze(g);
    comm::counting_set<cb::closure_bin> fz_bins(c);
    cb::closure_time_context fz_ctx{&fz_bins};
    const auto fz_res =
        cb::plan_for(fz, cb::closure_time_callback{}, fz_ctx)
            .run({tripoll::survey_mode::push_pull, g_threads})
            .slice(0);
    fz_bins.finalize();

    // Projection push-down: the arenas store only the survey's projection
    // (vertex meta dropped, edge meta -> timestamp).
    auto pd = graph::freeze(g, tripoll::drop_projection{}, cb::timestamp_projection{});
    comm::counting_set<cb::closure_bin> pd_bins(c);
    cb::closure_time_context pd_ctx{&pd_bins};
    const auto pd_res = tripoll::survey(pd)
                            .add(cb::closure_time_callback{}, pd_ctx)
                            .run({tripoll::survey_mode::push_pull, g_threads})
                            .slice(0);
    pd_bins.finalize();

    const auto digest = [](const std::map<cb::closure_bin, std::uint64_t>& h) {
      std::uint64_t d = 0;
      for (const auto& [bin, n] : h) {
        d = tripoll::serial::hash_combine(d, (std::uint64_t{bin.first} << 32) | bin.second);
        d = tripoll::serial::hash_combine(d, n);
      }
      return d;
    };
    const auto map_digest = digest(map_bins.gather_all());
    const auto fz_digest = digest(fz_bins.gather_all());
    const auto pd_digest = digest(pd_bins.gather_all());
    const auto storage = fz.global_storage_stats();
    const auto pd_storage = pd.global_storage_stats();

    if (c.rank0()) {
      std::printf("frozen %s ranks %d delta %d ordering %s mode push_pull\n",
                  which.c_str(), ranks, delta, graph::ordering_name(g.ordering()));
      print_survey_line("map", map_res.triangles_found, map_res);
      print_survey_line("frozen", fz_res.triangles_found, fz_res);
      print_survey_line("pushdown", pd_res.triangles_found, pd_res);
      std::printf("digests map %016llx frozen %016llx pushdown %016llx\n",
                  (unsigned long long)map_digest, (unsigned long long)fz_digest,
                  (unsigned long long)pd_digest);
      std::printf("arena bytes frozen %llu pushdown %llu (edges %llu)\n",
                  (unsigned long long)(storage.vertex_bytes + storage.edge_bytes),
                  (unsigned long long)(pd_storage.vertex_bytes + pd_storage.edge_bytes),
                  (unsigned long long)storage.edges);
    }
  });
  return 0;
}

/// `snapshot save` body, templated over "plain" vs "--meta" (deterministic
/// u64 timestamps on edges and labels on vertices, the same functions the
/// `plan` command uses -- so a served snapshot's hot/closure/maxlabel units
/// are reproducible from the edge list alone).
template <bool WithMeta>
void snapshot_save_run(const std::string& path, const std::string& prefix, int ranks) {
  using Meta = std::conditional_t<WithMeta, std::uint64_t, graph::none>;
  run_spmd(ranks, [&](comm::communicator& c) {
    graph::graph_builder<Meta, Meta> builder(c, g_ordering);
    graph::ingest_options in;
    in.threads = g_threads;
    graph::read_edge_list(
        c, path,
        [&](const graph::parsed_edge& e) {
          if constexpr (WithMeta) {
            builder.add_edge(e.u, e.v, plan_edge_ts(e.u, e.v));
          } else {
            builder.add_edge(e.u, e.v);
          }
        },
        in);
    graph::dodgr<Meta, Meta> g(c);
    builder.build_into(g);
    if constexpr (WithMeta) {
      g.for_all_local([](const graph::vertex_id& v, auto& rec) {
        rec.meta = plan_vertex_label(v);
        for (auto& e : rec.adj) e.target_meta = plan_vertex_label(e.target);
      });
    }
    graph::freeze_options fo;
    fo.threads = g_threads;
    auto fz = graph::freeze(g, fo);
    const auto codec = g_compress ? tripoll::graph::snapshot_codec::compressed
                                  : tripoll::graph::snapshot_codec::raw;
    const auto bytes =
        fz.comm().all_reduce_sum(tripoll::graph::save_snapshot(fz, prefix, codec));
    const auto census = fz.census();
    if (c.rank0()) {
      std::printf("snapshot saved %s ranks %d ordering %s\n", prefix.c_str(), ranks,
                  graph::ordering_name(fz.ordering()));
      std::printf("census |V| %llu |E|+ %llu dmax %llu dmax+ %llu |W+| %llu\n",
                  (unsigned long long)census.num_vertices,
                  (unsigned long long)census.num_directed_edges,
                  (unsigned long long)census.max_degree,
                  (unsigned long long)census.max_out_degree,
                  (unsigned long long)census.wedge_checks);
      std::printf("snapshot bytes %llu\n", (unsigned long long)bytes);
    }
  });
}

/// Frozen-graph snapshot workflow for plain edge-list files.  `save` builds
/// (and optionally degeneracy-orders) the graph once and writes per-rank
/// CSR arenas; `load` mmaps them back -- no edge shuffle, no re-peel -- and
/// runs the counting survey.  Output is deterministic for the smoke test.
int cmd_snapshot(int argc, char** argv) {
  if (argc < 4) return usage();
  const std::string verb = argv[2];

  if (verb == "save") {
    if (argc < 5) return usage();
    const std::string path = argv[3];
    const std::string prefix = argv[4];
    const int ranks = argc > 5 ? std::atoi(argv[5]) : 4;
    if (g_meta) {
      snapshot_save_run<true>(path, prefix, ranks);
    } else {
      snapshot_save_run<false>(path, prefix, ranks);
    }
    return 0;
  }

  if (verb == "load") {
    const std::string prefix = argv[3];
    const int ranks = argc > 4 ? std::atoi(argv[4]) : 4;
    const auto mode = (argc > 5 && std::strcmp(argv[5], "push_only") == 0)
                          ? tripoll::survey_mode::push_only
                          : tripoll::survey_mode::push_pull;
    // Dispatch on the stored metadata layout so --meta (and compacted
    // overlay) snapshots load too; the counting survey ignores metadata.
    const auto peek = graph::peek_snapshot(graph::snapshot_rank_path(prefix, 0));
    const bool with_meta = peek.vmeta_size == 8 && peek.emeta_size == 8;
    if (!with_meta && (peek.vmeta_size != 0 || peek.emeta_size != 0)) {
      std::fprintf(stderr, "snapshot load: unsupported metadata layout (%llu/%llu bytes)\n",
                   (unsigned long long)peek.vmeta_size,
                   (unsigned long long)peek.emeta_size);
      return 1;
    }
    run_spmd(ranks, [&](comm::communicator& c) {
      auto load_and_survey = [&](auto meta_tag) {
        using Meta = typename decltype(meta_tag)::type;
        auto g = graph::load_snapshot<Meta, Meta>(c, prefix);
        const auto census = g.census();
        cb::count_context ctx;
        const auto r =
            cb::plan_for(g, cb::count_callback{}, ctx).run({mode, g_threads}).slice(0);
        const auto triangles = ctx.global_count(c);
        if (c.rank0()) {
          std::printf("snapshot loaded %s ranks %d ordering %s mode %s\n",
                      prefix.c_str(), ranks, graph::ordering_name(g.ordering()),
                      mode == tripoll::survey_mode::push_only ? "push_only"
                                                              : "push_pull");
          std::printf("census |V| %llu |E|+ %llu dmax %llu dmax+ %llu |W+| %llu\n",
                      (unsigned long long)census.num_vertices,
                      (unsigned long long)census.num_directed_edges,
                      (unsigned long long)census.max_degree,
                      (unsigned long long)census.max_out_degree,
                      (unsigned long long)census.wedge_checks);
          print_survey_line("loaded", triangles, r);
        }
      };
      if (with_meta) {
        load_and_survey(std::type_identity<std::uint64_t>{});
      } else {
        load_and_survey(std::type_identity<graph::none>{});
      }
    });
    return 0;
  }
  return usage();
}

/// `serve` body: load the snapshot as the given metadata types and run the
/// resident survey daemon until a SHUTDOWN frame or SIGTERM/SIGINT.
template <typename VMeta, typename EMeta>
int serve_snapshot(const std::string& prefix, int ranks) {
  int rc = 0;
  run_spmd(ranks, [&](comm::communicator& c) {
    auto g = graph::load_snapshot<VMeta, EMeta>(c, prefix);
    svc::service_options opts;
    opts.endpoint_spec = g_endpoint;
    opts.window_ms = g_window_ms;
    opts.max_batch = g_max_batch;
    opts.cache_capacity = g_cache;
    opts.threads = g_threads;
    if (c.rank0()) {
      std::fprintf(stderr, "serving %s on %s (ranks %d)\n", prefix.c_str(),
                   g_endpoint.c_str(), ranks);
    }
    svc::survey_service daemon(g, opts);
    const int r = daemon.serve();
    if (c.rank0()) rc = r;
  });
  return rc;
}

/// Resident survey service over a saved snapshot.  The stored metadata
/// element sizes (peeked from rank 0's file) pick the graph type.
int cmd_serve(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string prefix = argv[2];
  const int ranks = argc > 3 ? std::atoi(argv[3]) : 1;
  const auto peek = graph::peek_snapshot(graph::snapshot_rank_path(prefix, 0));
  if (peek.vmeta_size == 0 && peek.emeta_size == 0) {
    return serve_snapshot<graph::none, graph::none>(prefix, ranks);
  }
  if (peek.vmeta_size == 8 && peek.emeta_size == 8) {
    return serve_snapshot<std::uint64_t, std::uint64_t>(prefix, ranks);
  }
  std::fprintf(stderr,
               "serve: unsupported snapshot metadata layout (%llu/%llu bytes); "
               "save with no metadata or with --meta\n",
               (unsigned long long)peek.vmeta_size,
               (unsigned long long)peek.emeta_size);
  return 1;
}

/// `ingest` body: load the snapshot as the given metadata types, wrap it in
/// the streaming overlay, apply the batch file and survey base+delta.  With
/// --compact, also re-freeze incrementally (reusing the stored ordering
/// ranks) and save a v3 snapshot at <prefix>-compacted.  Every printed
/// value is a global reduction -- the socket smoke test diffs this output
/// across backends.
template <bool WithMeta>
int ingest_run(const std::string& prefix, const std::string& batch_path, int ranks) {
  using Meta = std::conditional_t<WithMeta, std::uint64_t, graph::none>;
  run_spmd(ranks, [&](comm::communicator& c) {
    auto base = graph::load_snapshot<Meta, Meta>(c, prefix);
    graph::overlay ov(base);
    typename graph::overlay<Meta, Meta>::edge_batch batch;
    graph::read_edge_list(c, batch_path, [&](const graph::parsed_edge& e) {
      if constexpr (WithMeta) {
        // A third column is the timestamp; otherwise fall back to the same
        // deterministic metadata the --meta snapshot was saved with.
        batch.push_back({e.u, e.v, e.weight ? *e.weight : plan_edge_ts(e.u, e.v)});
      } else {
        batch.push_back({e.u, e.v, {}});
      }
    });
    graph::overlay_ingest_stats st;
    if constexpr (WithMeta) {
      st = ov.ingest(batch,
                     [](graph::vertex_id v) { return plan_vertex_label(v); });
    } else {
      st = ov.ingest(batch);
    }
    const auto census = ov.census();
    cb::count_context ctx;
    const auto r = cb::plan_for(ov, cb::count_callback{}, ctx).run({}).slice(0);
    const auto triangles = ctx.global_count(c);
    if (c.rank0()) {
      std::printf("ingest %s ranks %d ordering %s meta %s\n", prefix.c_str(), ranks,
                  graph::ordering_name(ov.ordering()), WithMeta ? "u64" : "none");
      std::printf("batch submitted %llu accepted %llu dup_batch %llu dup_base %llu "
                  "self_loops %llu new_vertices %llu rebuilt %llu\n",
                  (unsigned long long)st.submitted, (unsigned long long)st.accepted,
                  (unsigned long long)st.duplicate_batch,
                  (unsigned long long)st.duplicate_base,
                  (unsigned long long)st.self_loops,
                  (unsigned long long)st.new_vertices,
                  (unsigned long long)st.rebuilt_vertices);
      std::printf("census |V| %llu |E|+ %llu dmax %llu dmax+ %llu |W+| %llu\n",
                  (unsigned long long)census.num_vertices,
                  (unsigned long long)census.num_directed_edges,
                  (unsigned long long)census.max_degree,
                  (unsigned long long)census.max_out_degree,
                  (unsigned long long)census.wedge_checks);
      print_survey_line("overlay", triangles, r);
    }
    if (g_compact) {
      graph::freeze_options fo;
      fo.threads = g_threads;
      auto fz = ov.compact(fo);
      const auto codec = g_compress ? tripoll::graph::snapshot_codec::compressed
                                    : tripoll::graph::snapshot_codec::raw;
      const auto bytes = c.all_reduce_sum(
          tripoll::graph::save_snapshot(fz, prefix + "-compacted", codec));
      cb::count_context cctx;
      const auto cr = cb::plan_for(fz, cb::count_callback{}, cctx)
                          .run({tripoll::survey_mode::push_pull, g_threads})
                          .slice(0);
      const auto ctri = cctx.global_count(c);
      if (c.rank0()) {
        print_survey_line("compacted", ctri, cr);
        std::printf("compacted snapshot %s-compacted bytes %llu\n", prefix.c_str(),
                    (unsigned long long)bytes);
      }
    }
  });
  return 0;
}

/// Streaming overlay ingest over a saved snapshot.  The stored metadata
/// element sizes (peeked from rank 0's file) pick the overlay type, exactly
/// like `serve`.
int cmd_ingest(int argc, char** argv) {
  if (argc < 4) return usage();
  const std::string prefix = argv[2];
  const std::string batch_path = argv[3];
  const int ranks = argc > 4 ? std::atoi(argv[4]) : 1;
  const auto peek = graph::peek_snapshot(graph::snapshot_rank_path(prefix, 0));
  if (peek.vmeta_size == 0 && peek.emeta_size == 0) {
    return ingest_run<false>(prefix, batch_path, ranks);
  }
  if (peek.vmeta_size == 8 && peek.emeta_size == 8) {
    return ingest_run<true>(prefix, batch_path, ranks);
  }
  std::fprintf(stderr,
               "ingest: unsupported snapshot metadata layout (%llu/%llu bytes); "
               "save with no metadata or with --meta\n",
               (unsigned long long)peek.vmeta_size,
               (unsigned long long)peek.emeta_size);
  return 1;
}

[[nodiscard]] const char* unit_kind_name(std::uint64_t kind) {
  switch (static_cast<svc::unit_kind>(kind)) {
    case svc::unit_kind::count: return "count";
    case svc::unit_kind::hot_count: return "hot_count";
    case svc::unit_kind::closure_digest: return "closure_digest";
    case svc::unit_kind::max_label: return "max_label";
    case svc::unit_kind::window: return "window";
  }
  return "unknown";
}

/// One-shot client of a running daemon.  Unit specs accumulate into ONE
/// plan; `stats` / `shutdown` run after it.  Every printed value is a
/// global reduction served by the daemon, so the output is diffable against
/// the standalone `preset` / `plan` runs (the socket smoke test does).
int cmd_query(int argc, char** argv) {
  if (argc < 4) return usage();
  const std::string spec = argv[2];
  svc::plan_request req;
  bool do_stats = false;
  bool do_shutdown = false;
  for (int i = 3; i < argc; ++i) {
    const std::string s = argv[i];
    svc::plan_unit u;
    if (s == "stats") {
      do_stats = true;
      continue;
    }
    if (s == "shutdown") {
      do_shutdown = true;
      continue;
    }
    if (s == "count") {
      u.kind = static_cast<std::uint64_t>(svc::unit_kind::count);
    } else if (s == "hot" || s.rfind("hot:", 0) == 0) {
      u.kind = static_cast<std::uint64_t>(svc::unit_kind::hot_count);
      u.param = s == "hot" ? 500000 : std::strtoull(s.c_str() + 4, nullptr, 10);
    } else if (s == "closure") {
      u.kind = static_cast<std::uint64_t>(svc::unit_kind::closure_digest);
    } else if (s == "maxlabel") {
      u.kind = static_cast<std::uint64_t>(svc::unit_kind::max_label);
    } else if (s.rfind("window:", 0) == 0) {
      const char* p = s.c_str() + 7;
      char* end = nullptr;
      const unsigned long long t0 = std::strtoull(p, &end, 10);
      if (end == p || *end != ':') {
        std::fprintf(stderr, "query: bad window spec '%s' (want window:t0:t1)\n",
                     s.c_str());
        return usage();
      }
      const char* q = end + 1;
      const unsigned long long t1 = std::strtoull(q, &end, 10);
      if (end == q || *end != '\0') {
        std::fprintf(stderr, "query: bad window spec '%s' (want window:t0:t1)\n",
                     s.c_str());
        return usage();
      }
      if (t0 > 0xffffffffull || t1 > 0xffffffffull) {
        std::fprintf(stderr, "query: window bounds must fit in 32 bits\n");
        return usage();
      }
      u.kind = static_cast<std::uint64_t>(svc::unit_kind::window);
      u.param = svc::pack_window_param(t0, t1);
    } else {
      std::fprintf(stderr, "query: unknown spec '%s'\n", s.c_str());
      return usage();
    }
    req.units.push_back(u);
  }

  comm::service_client client(spec, 30.0);
  if (!req.units.empty()) {
    const auto resp = client.submit(req);
    std::printf("response snapshot %016llx engine_triangles %llu units %zu\n",
                (unsigned long long)resp.snapshot_id,
                (unsigned long long)resp.engine_triangles, resp.units.size());
    for (const auto& u : resp.units) {
      std::printf("unit %s param %llu fires %llu value %llu\n",
                  unit_kind_name(u.kind), (unsigned long long)u.param,
                  (unsigned long long)u.fires, (unsigned long long)u.value);
    }
  }
  if (do_stats) {
    const auto s = client.stats();
    std::printf("stats snapshot %016llx ranks %llu served %llu hits %llu "
                "misses %llu traversals %llu batches %llu max_batch %llu "
                "rejected %llu invalidated %llu\n",
                (unsigned long long)s.snapshot_id, (unsigned long long)s.nranks,
                (unsigned long long)s.plans_served, (unsigned long long)s.cache_hits,
                (unsigned long long)s.cache_misses, (unsigned long long)s.traversals,
                (unsigned long long)s.batches, (unsigned long long)s.max_batch,
                (unsigned long long)s.rejected,
                (unsigned long long)s.invalidation_evictions);
  }
  if (do_shutdown) {
    client.shutdown();
    std::printf("shutdown ok\n");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (!strip_flags(argc, argv)) return usage();
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "gen") return cmd_gen(argc, argv);
    if (cmd == "preset") return cmd_preset(argc, argv);
    if (cmd == "plan") return cmd_plan(argc, argv);
    if (cmd == "frozen") return cmd_frozen(argc, argv);
    if (cmd == "snapshot") return cmd_snapshot(argc, argv);
    if (cmd == "serve") return cmd_serve(argc, argv);
    if (cmd == "query") return cmd_query(argc, argv);
    if (cmd == "ingest") return cmd_ingest(argc, argv);
    if (argc < 3) return usage();
    const std::string path = argv[2];
    const int ranks = argc > 3 ? std::atoi(argv[3]) : 4;

    if (cmd == "census") {
      return with_plain_graph_from_file(path, ranks, [](comm::communicator& c, auto& g) {
        const auto s = g.census();
        if (c.rank0()) {
          std::printf("|V| %llu  |E|(directed) %llu  dmax %llu  dmax+ %llu  |W+| %llu"
                      "  (ordering %s)\n",
                      (unsigned long long)s.num_vertices,
                      (unsigned long long)s.num_directed_edges,
                      (unsigned long long)s.max_degree,
                      (unsigned long long)s.max_out_degree,
                      (unsigned long long)s.wedge_checks,
                      graph::ordering_name(g.ordering()));
        }
      });
    }
    if (cmd == "count") {
      const auto mode = (argc > 4 && std::strcmp(argv[4], "push_only") == 0)
                            ? tripoll::survey_mode::push_only
                            : tripoll::survey_mode::push_pull;
      return with_plain_graph_from_file(path, ranks,
                                        [mode](comm::communicator& c, auto& g) {
        cb::count_context ctx;
        const auto r =
            cb::plan_for(g, cb::count_callback{}, ctx).run({mode, g_threads}).slice(0);
        const auto n = ctx.global_count(c);
        if (c.rank0()) {
          std::printf("triangles %llu  time %.3fs  volume %.2f MB  pulls %llu\n",
                      (unsigned long long)n, r.total.seconds,
                      static_cast<double>(r.total.volume_bytes) / 1e6,
                      (unsigned long long)r.pulls_granted);
        }
      });
    }
    if (cmd == "approx") {
      const auto samples =
          argc > 3 ? static_cast<std::uint64_t>(std::atoll(argv[3])) : 100000ull;
      return with_plain_graph_from_file(path, 4,
                                        [samples](comm::communicator& c, auto& g) {
        const auto r = tripoll::baselines::approx_triangle_count(c, g, samples);
        if (c.rank0()) {
          std::printf("estimate %.0f  (samples %llu, closed %llu, |W+| %llu, %.3fs)\n",
                      r.estimate, (unsigned long long)r.samples,
                      (unsigned long long)r.closed,
                      (unsigned long long)r.total_wedges, r.seconds);
        }
      });
    }
    if (cmd == "clustering") {
      return with_plain_graph_from_file(path, ranks, [](comm::communicator& c, auto& g) {
        const auto s = ta::clustering_coefficients(g);
        if (c.rank0()) {
          std::printf("triangles %llu  transitivity %.4f  avg local cc %.4f  "
                      "(over %llu vertices with d>=2)\n",
                      (unsigned long long)s.triangles, s.transitivity,
                      s.average_local_cc, (unsigned long long)s.eligible_vertices);
        }
      });
    }
    if (cmd == "closure") {
      run_spmd(ranks, [&](comm::communicator& c) {
        graph::graph_builder<graph::none, std::uint64_t, graph::merge::keep_least>
            builder(c, g_ordering);
        graph::read_edge_list(c, path, [&](const graph::parsed_edge& e) {
          builder.add_edge(e.u, e.v, e.weight.value_or(0));
        });
        graph::dodgr<graph::none, std::uint64_t> g(c);
        builder.build_into(g);
        comm::counting_set<cb::closure_bin> counters(c);
        cb::closure_time_context ctx{&counters};
        (void)cb::plan_for(g, cb::closure_time_callback{}, ctx).run();
        counters.finalize();
        auto joint = counters.gather_all();
        if (c.rank0()) {
          std::map<std::uint32_t, std::uint64_t> close_marginal;
          for (const auto& [bin, n] : joint) close_marginal[bin.second] += n;
          for (const auto& [bin, n] : close_marginal) {
            std::printf("close 2^%-2u  %llu\n", bin, (unsigned long long)n);
          }
        }
      });
      return 0;
    }
    return usage();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
