// tripoll_cli -- command-line driver for the TriPoll library.
//
// Subcommands (all run on the distributed runtime):
//   gen <kind> <scale> <out.txt>        generate an edge list (rmat|er|web|temporal)
//   census <edges.txt> [ranks]          |V|, |E|, degrees, |W+| of a file
//   count <edges.txt> [ranks] [mode]    exact triangle count (push_pull|push_only)
//   approx <edges.txt> [samples]        wedge-sampling estimate
//   clustering <edges.txt> [ranks]      transitivity + average local cc
//   closure <edges.txt> [ranks]         closure-time survey (3rd column = timestamp)
//   preset <rmat|temporal|web> [ranks] [delta]
//                                       build an ablation preset and print the
//                                       deterministic survey metrics (used by the
//                                       cross-backend smoke test)
//   plan <rmat|temporal|web> [ranks] [delta]
//                                       attach deterministic rich metadata to a
//                                       preset and run a fused 3-callback
//                                       PROJECTED survey plan (count + closure
//                                       times + stateful hot-triangle filter)
//                                       next to an identity-projection run;
//                                       prints deterministic metrics (also used
//                                       by the cross-backend smoke test)
//
// Options:
//   --ordering {degree,degeneracy}   DODGr <+ vertex order (graph-building cmds)
//   --backend {inproc,socket}        transport backend (default inproc)
//
// Backend selection: `--backend socket` runs every rank as a separate OS
// process.  Without TRIPOLL_RANK set, the CLI forks <ranks> local processes
// connected over Unix-domain sockets.  With TRIPOLL_RANK / TRIPOLL_NRANKS /
// TRIPOLL_SOCKET_DIR (or TRIPOLL_HOSTS) set by an external launcher, this
// process joins the rendezvous as that single rank -- launch the CLI once
// per rank:
//
//   for r in 0 1 2 3; do
//     TRIPOLL_RANK=$r TRIPOLL_NRANKS=4 TRIPOLL_SOCKET_DIR=/tmp/tp  (one line)
//       tripoll_cli count /tmp/g.txt 4 --backend socket &
//   done; wait
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>

#include "baselines/approx_tc.hpp"
#include "comm/runtime.hpp"
#include "core/analytics.hpp"
#include "core/callbacks.hpp"
#include "core/survey.hpp"
#include "gen/distribute.hpp"
#include "gen/erdos_renyi.hpp"
#include "gen/presets.hpp"
#include "gen/rmat.hpp"
#include "gen/temporal.hpp"
#include "gen/web.hpp"
#include "graph/builder.hpp"
#include "graph/io.hpp"
#include "graph/ordering.hpp"
#include "serial/hash.hpp"

namespace cb = tripoll::callbacks;
namespace comm = tripoll::comm;
namespace gen = tripoll::gen;
namespace graph = tripoll::graph;
namespace ta = tripoll::analytics;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  tripoll_cli gen <rmat|er|web|temporal> <scale> <out.txt>\n"
               "  tripoll_cli census <edges.txt> [ranks]\n"
               "  tripoll_cli count <edges.txt> [ranks] [push_pull|push_only]\n"
               "  tripoll_cli approx <edges.txt> [samples]\n"
               "  tripoll_cli clustering <edges.txt> [ranks]\n"
               "  tripoll_cli closure <edges.txt> [ranks]\n"
               "  tripoll_cli preset <rmat|temporal|web> [ranks] [delta]\n"
               "  tripoll_cli plan <rmat|temporal|web> [ranks] [delta]\n"
               "options:\n"
               "  --ordering <degree|degeneracy>  DODGr <+ vertex order (default degree)\n"
               "  --backend <inproc|socket>       transport backend (default inproc;\n"
               "                                  socket forks one process per rank, or\n"
               "                                  joins a TRIPOLL_RANK rendezvous)\n");
  return 2;
}

/// Flags stripped from argv before positional parsing.
graph::ordering_policy g_ordering = graph::ordering_policy::degree;
comm::backend_kind g_backend = comm::backend_kind::inproc;

/// Strip `--flag <x>` / `--flag=<x>` style options from argv; returns false
/// (and prints usage) on an unknown value or missing argument.
bool strip_flags(int& argc, char** argv) {
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    std::string name;
    std::string value;
    for (const char* flag : {"--ordering", "--backend"}) {
      const std::string prefix = std::string(flag) + "=";
      if (arg == flag) {
        if (i + 1 >= argc) return false;
        name = flag;
        value = argv[++i];
        break;
      }
      if (arg.rfind(prefix, 0) == 0) {
        name = flag;
        value = arg.substr(prefix.size());
        break;
      }
    }
    if (name.empty()) {
      argv[out++] = argv[i];
      continue;
    }
    if (name == "--ordering") {
      const auto parsed = graph::parse_ordering(value);
      if (!parsed) {
        std::fprintf(stderr, "unknown ordering '%s'\n", value.c_str());
        return false;
      }
      g_ordering = *parsed;
    } else if (name == "--backend") {
      if (value == "inproc") {
        g_backend = comm::backend_kind::inproc;
      } else if (value == "socket") {
        g_backend = comm::backend_kind::socket;
      } else {
        std::fprintf(stderr, "unknown backend '%s' (inproc|socket)\n", value.c_str());
        return false;
      }
    }
  }
  argc = out;
  return true;
}

/// Run `fn` on `ranks` ranks over the selected backend.
template <typename F>
void run_spmd(int ranks, F&& fn) {
  comm::runtime::run_backend(g_backend, ranks, std::forward<F>(fn));
}

int cmd_gen(int argc, char** argv) {
  if (argc < 5) return usage();
  const std::string kind = argv[2];
  const auto scale = static_cast<std::uint32_t>(std::atoi(argv[3]));
  const std::string out = argv[4];
  graph::edge_list_writer writer(out);
  std::uint64_t edges = 0;
  if (kind == "rmat") {
    gen::rmat_generator g(gen::rmat_params{scale, 16, 0.57, 0.19, 0.19, 42, true});
    for (std::uint64_t k = 0; k < g.num_edges(); ++k) {
      const auto e = g.edge_at(k);
      writer.write(e.u, e.v);
    }
    edges = g.num_edges();
  } else if (kind == "er") {
    gen::erdos_renyi_generator g(std::uint64_t{1} << scale,
                                 (std::uint64_t{1} << scale) * 16, 42);
    for (std::uint64_t k = 0; k < g.num_edges(); ++k) {
      const auto e = g.edge_at(k);
      writer.write(e.u, e.v);
    }
    edges = g.num_edges();
  } else if (kind == "web") {
    gen::web_params p;
    p.scale = scale;
    gen::web_generator g(p);
    for (std::uint64_t k = 0; k < g.num_edges(); ++k) {
      const auto e = g.edge_at(k);
      writer.write(e.u, e.v);
    }
    edges = g.num_edges();
  } else if (kind == "temporal") {
    gen::temporal_params p;
    p.scale = scale;
    gen::temporal_generator g(p);
    for (std::uint64_t k = 0; k < g.num_edges(); ++k) {
      const auto e = g.edge_at(k);
      writer.write(e.u, e.v, e.timestamp);
    }
    edges = g.num_edges();
  } else {
    return usage();
  }
  std::printf("wrote %llu edges to %s\n", (unsigned long long)edges, out.c_str());
  return 0;
}

template <typename Fn>
int with_plain_graph_from_file(const std::string& path, int ranks, Fn&& fn) {
  run_spmd(ranks, [&](comm::communicator& c) {
    graph::graph_builder<graph::none, graph::none> builder(c, g_ordering);
    graph::read_edge_list(c, path, [&](const graph::parsed_edge& e) {
      builder.add_edge(e.u, e.v);
    });
    graph::dodgr<graph::none, graph::none> g(c);
    builder.build_into(g);
    fn(c, g);
  });
  return 0;
}

/// Stream the deterministic edge list of one ablation preset to `fn(u, v)`
/// (this rank's slice).
template <typename Fn>
void for_preset_edges(comm::communicator& c, const std::string& which, int delta,
                      Fn&& fn) {
  if (which == "rmat") {
    const auto spec = gen::livejournal_like(delta);
    const gen::rmat_generator rmat(spec.rmat);
    gen::for_rank_slice(c, rmat.num_edges(), [&](std::uint64_t k) {
      const auto e = rmat.edge_at(k);
      fn(e.u, e.v);
    });
  } else if (which == "temporal") {
    gen::temporal_params params;
    params.scale = static_cast<std::uint32_t>(std::max(8, 13 + delta));
    const gen::temporal_generator tgen(params);
    gen::for_rank_slice(c, tgen.num_edges(), [&](std::uint64_t k) {
      const auto e = tgen.edge_at(k);
      fn(e.u, e.v);
    });
  } else {
    const auto spec = gen::standard_suite(delta)[3];  // webcc12-host-like
    const gen::web_generator wgen(spec.web);
    gen::for_rank_slice(c, wgen.num_edges(), [&](std::uint64_t k) {
      const auto e = wgen.edge_at(k);
      fn(e.u, e.v);
    });
  }
}

/// Deterministic survey report of one ablation preset: everything printed
/// is a global count or an all-reduced sum, so the output is bit-identical
/// across backends and ranks (wall times deliberately omitted).  The
/// socket-smoke ctest diffs this against the inproc run.
int cmd_preset(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string which = argv[2];
  const int ranks = argc > 3 ? std::atoi(argv[3]) : 4;
  const int delta = argc > 4 ? std::atoi(argv[4]) : -2;
  if (which != "rmat" && which != "temporal" && which != "web") return usage();

  run_spmd(ranks, [&](comm::communicator& c) {
    gen::plain_graph g(c);
    graph::graph_builder<graph::none, graph::none> builder(c, g_ordering);
    for_preset_edges(c, which, delta,
                     [&](graph::vertex_id u, graph::vertex_id v) { builder.add_edge(u, v); });
    builder.build_into(g);

    cb::count_context ctx;
    const auto r = cb::plan_for(g, cb::count_callback{}, ctx).run({}).slice(0);
    const auto triangles = ctx.global_count(c);
    const auto census = g.census();
    if (c.rank0()) {
      std::printf("preset %s ranks %d delta %d ordering %s mode push_pull\n",
                  which.c_str(), ranks, delta, graph::ordering_name(g.ordering()));
      std::printf("census |V| %llu |E|+ %llu dmax %llu dmax+ %llu |W+| %llu\n",
                  (unsigned long long)census.num_vertices,
                  (unsigned long long)census.num_directed_edges,
                  (unsigned long long)census.max_degree,
                  (unsigned long long)census.max_out_degree,
                  (unsigned long long)census.wedge_checks);
      std::printf("triangles %llu\n", (unsigned long long)triangles);
      std::printf("phase dry_run volume %llu messages %llu\n",
                  (unsigned long long)r.dry_run.volume_bytes,
                  (unsigned long long)r.dry_run.messages);
      std::printf("phase push volume %llu messages %llu\n",
                  (unsigned long long)r.push.volume_bytes,
                  (unsigned long long)r.push.messages);
      std::printf("phase pull volume %llu messages %llu\n",
                  (unsigned long long)r.pull.volume_bytes,
                  (unsigned long long)r.pull.messages);
      std::printf("totals volume %llu messages %llu pulls %llu push_batches %llu "
                  "candidates %llu filtered %llu\n",
                  (unsigned long long)r.total.volume_bytes,
                  (unsigned long long)r.total.messages,
                  (unsigned long long)r.pulls_granted,
                  (unsigned long long)r.push_batches,
                  (unsigned long long)r.wedge_candidates,
                  (unsigned long long)r.proposals_filtered);
    }
  });
  return 0;
}

/// Deterministic rich metadata for `plan`: an interaction timestamp per
/// edge and a degree-like label per vertex, both pure functions of the
/// vertex ids so every backend and rank assignment computes the same graph.
std::uint64_t plan_edge_ts(graph::vertex_id u, graph::vertex_id v) {
  const auto lo = std::min(u, v);
  const auto hi = std::max(u, v);
  return tripoll::serial::hash_combine(tripoll::serial::splitmix64(lo), hi) % 1000000;
}

std::uint64_t plan_vertex_label(graph::vertex_id v) {
  return tripoll::serial::splitmix64(v ^ 0x5EED) % 64;
}

/// Stateful plan callback (carried by value in the plan): counts triangles
/// whose three projected timestamps all clear the threshold; bool return =
/// "did I fire", so its result slice reports the filtered count.
struct hot_triangle_filter {
  std::uint64_t threshold = 0;

  template <typename View>
  bool operator()(const View& v, std::uint64_t& hot) const {
    const auto a = static_cast<std::uint64_t>(v.meta_pq);
    const auto b = static_cast<std::uint64_t>(v.meta_pr);
    const auto t = static_cast<std::uint64_t>(v.meta_qr);
    if (a < threshold || b < threshold || t < threshold) return false;
    ++hot;
    return true;
  }
};

/// Fused projected survey plan over a preset graph with deterministic rich
/// metadata: one traversal drives (1) triangle counting, (2) the closure
/// time histogram and (3) a stateful hot-triangle filter, with vertex
/// metadata projected to its label and edge metadata to its timestamp.  An
/// identity-projection single-callback run prints next to it.  All printed
/// values are global reductions -- bit-identical across backends; the
/// socket-smoke ctest diffs this output against the inproc run.
int cmd_plan(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string which = argv[2];
  const int ranks = argc > 3 ? std::atoi(argv[3]) : 4;
  const int delta = argc > 4 ? std::atoi(argv[4]) : -2;
  if (which != "rmat" && which != "temporal" && which != "web") return usage();

  run_spmd(ranks, [&](comm::communicator& c) {
    graph::dodgr<std::uint64_t, std::uint64_t> g(c);
    graph::graph_builder<std::uint64_t, std::uint64_t> builder(c, g_ordering);
    for_preset_edges(c, which, delta, [&](graph::vertex_id u, graph::vertex_id v) {
      builder.add_edge(u, v, plan_edge_ts(u, v));
    });
    builder.build_into(g);
    // Vertex labels are attached rank-locally after the build (pure
    // function of the id, so no exchange is needed).
    g.for_all_local([](const graph::vertex_id& v, auto& rec) {
      rec.meta = plan_vertex_label(v);
      for (auto& e : rec.adj) e.target_meta = plan_vertex_label(e.target);
    });

    // Identity-projection single-callback run: full metadata on the wire.
    comm::counting_set<cb::closure_bin> id_bins(c);
    cb::closure_time_context id_ctx{&id_bins};
    const auto identity =
        tripoll::survey(g).add(cb::closure_time_callback{}, id_ctx).run({}).slice(0);
    id_bins.finalize();

    // Fused 3-callback projected plan: one traversal, minimal wire types.
    comm::counting_set<cb::closure_bin> bins(c);
    cb::count_context count_ctx;
    cb::closure_time_context closure_ctx{&bins};
    std::uint64_t hot_local = 0;
    auto fused = tripoll::survey(g)
                     .project_vertex(cb::degree_projection{})
                     .project_edge(cb::timestamp_projection{})
                     .add(cb::count_callback{}, count_ctx)
                     .add(cb::closure_time_callback{}, closure_ctx)
                     .add(hot_triangle_filter{500000}, hot_local)
                     .run({});
    bins.finalize();

    // Deterministic digest of the closure histogram (identical on the
    // identity and projected runs if and only if the surveys agree).
    const auto digest = [](const std::map<cb::closure_bin, std::uint64_t>& h) {
      std::uint64_t d = 0;
      for (const auto& [bin, n] : h) {
        d = tripoll::serial::hash_combine(d, (std::uint64_t{bin.first} << 32) | bin.second);
        d = tripoll::serial::hash_combine(d, n);
      }
      return d;
    };
    const auto id_hist = id_bins.gather_all();
    const auto fused_hist = bins.gather_all();
    const auto hot_global = c.all_reduce_sum(hot_local);

    if (c.rank0()) {
      std::printf("plan %s ranks %d delta %d ordering %s mode push_pull\n",
                  which.c_str(), ranks, delta, graph::ordering_name(g.ordering()));
      std::printf("identity  triangles %llu volume %llu messages %llu digest %016llx\n",
                  (unsigned long long)identity.triangles_found,
                  (unsigned long long)identity.total.volume_bytes,
                  (unsigned long long)identity.total.messages,
                  (unsigned long long)digest(id_hist));
      std::printf("projected triangles %llu volume %llu messages %llu digest %016llx\n",
                  (unsigned long long)fused.total.triangles_found,
                  (unsigned long long)fused.total.total.volume_bytes,
                  (unsigned long long)fused.total.total.messages,
                  (unsigned long long)digest(fused_hist));
      std::printf("fused invocations count %llu closure %llu hot %llu (hot global %llu)\n",
                  (unsigned long long)fused.invocations[0],
                  (unsigned long long)fused.invocations[1],
                  (unsigned long long)fused.invocations[2],
                  (unsigned long long)hot_global);
    }
  });
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (!strip_flags(argc, argv)) return usage();
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "gen") return cmd_gen(argc, argv);
    if (cmd == "preset") return cmd_preset(argc, argv);
    if (cmd == "plan") return cmd_plan(argc, argv);
    if (argc < 3) return usage();
    const std::string path = argv[2];
    const int ranks = argc > 3 ? std::atoi(argv[3]) : 4;

    if (cmd == "census") {
      return with_plain_graph_from_file(path, ranks, [](comm::communicator& c, auto& g) {
        const auto s = g.census();
        if (c.rank0()) {
          std::printf("|V| %llu  |E|(directed) %llu  dmax %llu  dmax+ %llu  |W+| %llu"
                      "  (ordering %s)\n",
                      (unsigned long long)s.num_vertices,
                      (unsigned long long)s.num_directed_edges,
                      (unsigned long long)s.max_degree,
                      (unsigned long long)s.max_out_degree,
                      (unsigned long long)s.wedge_checks,
                      graph::ordering_name(g.ordering()));
        }
      });
    }
    if (cmd == "count") {
      const auto mode = (argc > 4 && std::strcmp(argv[4], "push_only") == 0)
                            ? tripoll::survey_mode::push_only
                            : tripoll::survey_mode::push_pull;
      return with_plain_graph_from_file(path, ranks,
                                        [mode](comm::communicator& c, auto& g) {
        cb::count_context ctx;
        const auto r = cb::plan_for(g, cb::count_callback{}, ctx).run({mode}).slice(0);
        const auto n = ctx.global_count(c);
        if (c.rank0()) {
          std::printf("triangles %llu  time %.3fs  volume %.2f MB  pulls %llu\n",
                      (unsigned long long)n, r.total.seconds,
                      static_cast<double>(r.total.volume_bytes) / 1e6,
                      (unsigned long long)r.pulls_granted);
        }
      });
    }
    if (cmd == "approx") {
      const auto samples =
          argc > 3 ? static_cast<std::uint64_t>(std::atoll(argv[3])) : 100000ull;
      return with_plain_graph_from_file(path, 4,
                                        [samples](comm::communicator& c, auto& g) {
        const auto r = tripoll::baselines::approx_triangle_count(c, g, samples);
        if (c.rank0()) {
          std::printf("estimate %.0f  (samples %llu, closed %llu, |W+| %llu, %.3fs)\n",
                      r.estimate, (unsigned long long)r.samples,
                      (unsigned long long)r.closed,
                      (unsigned long long)r.total_wedges, r.seconds);
        }
      });
    }
    if (cmd == "clustering") {
      return with_plain_graph_from_file(path, ranks, [](comm::communicator& c, auto& g) {
        const auto s = ta::clustering_coefficients(g);
        if (c.rank0()) {
          std::printf("triangles %llu  transitivity %.4f  avg local cc %.4f  "
                      "(over %llu vertices with d>=2)\n",
                      (unsigned long long)s.triangles, s.transitivity,
                      s.average_local_cc, (unsigned long long)s.eligible_vertices);
        }
      });
    }
    if (cmd == "closure") {
      run_spmd(ranks, [&](comm::communicator& c) {
        graph::graph_builder<graph::none, std::uint64_t, graph::merge::keep_least>
            builder(c, g_ordering);
        graph::read_edge_list(c, path, [&](const graph::parsed_edge& e) {
          builder.add_edge(e.u, e.v, e.weight.value_or(0));
        });
        graph::dodgr<graph::none, std::uint64_t> g(c);
        builder.build_into(g);
        comm::counting_set<cb::closure_bin> counters(c);
        cb::closure_time_context ctx{&counters};
        (void)cb::plan_for(g, cb::closure_time_callback{}, ctx).run();
        counters.finalize();
        auto joint = counters.gather_all();
        if (c.rank0()) {
          std::map<std::uint32_t, std::uint64_t> close_marginal;
          for (const auto& [bin, n] : joint) close_marginal[bin.second] += n;
          for (const auto& [bin, n] : close_marginal) {
            std::printf("close 2^%-2u  %llu\n", bin, (unsigned long long)n);
          }
        }
      });
      return 0;
    }
    return usage();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
