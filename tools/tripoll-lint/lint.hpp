// lint.hpp -- tripoll-lint: repo-specific static checks for the wire-format
// and threading contracts.
//
// TriPoll's headline guarantee -- bit-identical triangle counts,
// volume_bytes and messages across backends, thread counts and storage
// forms -- rests on invariants the compiler never sees:
//
//   * bitwise-serialized structs must have no padding and no view members
//     (serial/serialize.hpp's `detail::bitwise` path memcpys sizeof(T));
//   * handler registration must happen during namespace-scope static
//     initialization, or handler ids desynchronize across socket ranks
//     (comm/handler_registry.hpp);
//   * wire_span/string_view handler arguments die with the drained payload
//     and must not escape the handler scope;
//   * receiver-side handlers and `add_reduced` worker callbacks must never
//     block (docs/THREADING.md).
//
// tripoll-lint enforces five checks over the source tree.  It is a
// standalone binary driven by `compile_commands.json` (or explicit paths),
// built on a targeted C++ tokenizer + declaration scanner rather than a
// full frontend: the subset of C++ it understands is exactly the subset
// this repository uses, and the fixture suite in fixtures/ pins the
// behaviour.  The checks, their rationale, and how to add one are
// documented in docs/STATIC_ANALYSIS.md.
//
// Diagnostics follow clang-tidy's format (`file:line:col: warning: ...
// [check-name]`) and honour clang-tidy-style suppressions:
// `// NOLINT`, `// NOLINT(check-name)` and `// NOLINTNEXTLINE(...)`.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <tuple>
#include <vector>

namespace tripoll::lint {

// ---------------------------------------------------------------------------
// Diagnostics and options.
// ---------------------------------------------------------------------------

struct diagnostic {
  std::string file;
  int line = 0;
  int col = 0;
  std::string check;    ///< e.g. "tripoll-wire-padding"
  std::string message;

  friend bool operator<(const diagnostic& a, const diagnostic& b) {
    return std::tie(a.file, a.line, a.col, a.check) <
           std::tie(b.file, b.line, b.col, b.check);
  }
};

/// The five check names, in documentation order.
[[nodiscard]] const std::vector<std::string>& all_checks();

/// Which checks run.  `spec` mirrors clang-tidy's --checks grammar
/// restricted to full names: a comma-separated list of `name` (enable) and
/// `-name` (disable) entries applied left to right, starting from
/// all-enabled when the list is empty or starts with a disable.
struct options {
  std::set<std::string> enabled = default_enabled();

  [[nodiscard]] static std::set<std::string> default_enabled();
  [[nodiscard]] static options from_spec(const std::string& spec);
  [[nodiscard]] bool is_enabled(const std::string& check) const {
    return enabled.count(check) != 0;
  }
};

// ---------------------------------------------------------------------------
// Tokens and the per-file source model.
// ---------------------------------------------------------------------------

struct token {
  enum class kind : std::uint8_t { ident, number, str, chr, punct, eof };
  kind k = kind::eof;
  std::string text;
  int line = 0;
  int col = 0;
};

struct param_decl {
  std::vector<std::string> type_toks;  ///< tokens before the parameter name
  std::string name;                    ///< empty for unnamed parameters
  int line = 0;
};

struct member_decl {
  std::vector<std::string> type_toks;
  std::string name;
  int line = 0;
  int col = 0;
  long long array_count = 1;  ///< from a `name[N]` declarator
  bool no_unique_address = false;
  bool is_bitfield = false;
};

struct function_decl {
  std::string name;  ///< identifier or "operator()"
  std::vector<param_decl> params;
  std::size_t body_begin = 0;  ///< token index just past the opening `{`
  std::size_t body_end = 0;    ///< token index of the closing `}`
  int line = 0;
};

struct struct_decl {
  std::string name;
  int line = 0;
  bool is_template = false;
  std::vector<std::string> template_params;
  std::vector<member_decl> members;
  std::vector<function_decl> methods;
  /// tripoll_force_member_serialize: -1 absent, 1 literally `true`
  /// (bitwise opt-out), 0 any other initializer (conditionally bitwise).
  int force_flag = -1;
  bool has_serialize = false;    ///< declares a serialize(Archive&) member
  bool annotated_wire = false;   ///< `// tripoll-lint: wire-type`
  bool annotated_not_wire = false;  ///< `// tripoll-lint: not-wire`
  bool unanalyzable = false;     ///< bitfields/unions: layout not computable
};

struct call_site {
  std::string name;
  std::size_t tok = 0;  ///< token index of the callee identifier
  int line = 0;
  int col = 0;
  bool in_function_body = false;
};

struct file_model {
  std::string path;
  std::vector<token> toks;
  std::vector<struct_decl> structs;           ///< includes nested structs
  std::vector<function_decl> free_functions;  ///< namespace-scope bodies
  std::vector<call_site> register_calls;      ///< register_thunk call sites
  std::vector<std::size_t> add_reduced_calls; ///< token index of `add_reduced`
  std::set<std::string> wire_span_elems;      ///< X in wire_span<...X>
  /// TRIPOLL_WIRE_ASSERT(T, members...) registrations: type -> member list.
  std::vector<std::pair<std::string, std::vector<std::string>>> wire_asserts;
  std::map<int, std::string> comments;        ///< line -> raw comment text
  std::vector<std::string> quoted_includes;   ///< #include "..." targets
  /// `using name = tokens;` aliases, for member type resolution.
  std::map<std::string, std::vector<std::string>> aliases;
  std::map<std::string, int> enum_underlying;  ///< enum name -> underlying size
};

// ---------------------------------------------------------------------------
// Pipeline.
// ---------------------------------------------------------------------------

/// Tokenize `text` (as if read from `path`).  Never throws on weird input;
/// unknown bytes become single-char punct tokens.
[[nodiscard]] std::vector<token> lex(const std::string& text, file_model& comments_out);

/// Parse one file into the source model.  `text` is the file contents.
[[nodiscard]] file_model parse_source(std::string path, const std::string& text);

/// Read and parse a file from disk.  Throws std::runtime_error if unreadable.
[[nodiscard]] file_model parse_file(const std::string& path);

/// Run all enabled checks over the parsed files; returns sorted diagnostics
/// (NOLINT-suppressed ones already removed).
[[nodiscard]] std::vector<diagnostic> run_checks(const std::vector<file_model>& files,
                                                 const options& opts);

/// Expand files/directories into a sorted list of *.hpp/*.h/*.cpp/*.cc
/// source paths (directories are walked recursively).
[[nodiscard]] std::vector<std::string> collect_sources(
    const std::vector<std::string>& paths);

/// Read `<build_dir>/compile_commands.json` and return the translation
/// units under `root`, plus every project header they reach transitively
/// through quoted includes (resolved against each TU's -I dirs).  Throws
/// std::runtime_error when the database is missing or malformed.
[[nodiscard]] std::vector<std::string> sources_from_compile_commands(
    const std::string& build_dir, const std::string& root);

/// Render one diagnostic in clang-tidy's one-line format.
[[nodiscard]] std::string format_diagnostic(const diagnostic& d);

}  // namespace tripoll::lint
