// checks.cpp -- the five tripoll-lint checks.
//
// Checks 1-2 reason about "wire types": structs that reach serialize.hpp's
// bitwise path.  Lacking a real frontend, wire types are anchored
// syntactically -- a struct is a wire type when any scanned file registers
// it with TRIPOLL_WIRE_ASSERT, names it as a wire_span element, or
// annotates it `// tripoll-lint: wire-type`; `// tripoll-lint: not-wire`
// and a literal-`true` tripoll_force_member_serialize flag opt a struct
// out.  Checks 3-5 are scoped by the repo's structural conventions:
// register_thunk call sites, `*_handler` functor operator() bodies, and
// add_reduced lambda callbacks.  docs/STATIC_ANALYSIS.md documents each
// check; fixtures/ pins the exact diagnostics.

#include <algorithm>
#include <optional>
#include <sstream>

#include "lint.hpp"

namespace tripoll::lint {

namespace {

constexpr const char* kWirePadding = "tripoll-wire-padding";
constexpr const char* kViewMember = "tripoll-bitwise-view-member";
constexpr const char* kStaticInit = "tripoll-handler-static-init";
constexpr const char* kViewEscape = "tripoll-view-escape";
constexpr const char* kCallbackBlocking = "tripoll-callback-blocking";

// ---------------------------------------------------------------------------
// Cross-file context: name registries merged over every scanned file.
// ---------------------------------------------------------------------------

struct global_ctx {
  /// struct name -> (declaration, owning file).  Last definition wins.
  std::map<std::string, std::pair<const struct_decl*, const file_model*>> structs;
  std::map<std::string, std::vector<std::string>> aliases;
  std::map<std::string, int> enums;
  std::set<std::string> wire_types;  ///< anchored wire type names
};

/// Last identifier before a `<` (or overall) in a token sequence: the type
/// name `wedge_candidate` in `core::detail::wedge_candidate<EdgeMeta>`.
std::string base_type_name(const std::vector<std::string>& toks) {
  std::string last;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i] == "<") break;
    if (!toks[i].empty() &&
        (std::isalpha(static_cast<unsigned char>(toks[i][0])) || toks[i][0] == '_')) {
      last = toks[i];
    }
  }
  return last;
}

global_ctx build_ctx(const std::vector<file_model>& files) {
  global_ctx g;
  for (const auto& f : files) {
    for (const auto& s : f.structs) g.structs[s.name] = {&s, &f};
    for (const auto& [k, v] : f.aliases) g.aliases[k] = v;
    for (const auto& [k, v] : f.enum_underlying) g.enums[k] = v;
  }
  // Anchor wire types, then expand one level of aliases so that
  // `wire_span<candidate_type>` anchors `wedge_candidate`.
  std::set<std::string> anchors;
  for (const auto& f : files) {
    for (const auto& [type, members] : f.wire_asserts) anchors.insert(type);
    for (const auto& e : f.wire_span_elems) anchors.insert(e);
    for (const auto& s : f.structs) {
      if (s.annotated_wire) anchors.insert(s.name);
    }
  }
  for (const auto& a : anchors) {
    g.wire_types.insert(a);
    const auto it = g.aliases.find(a);
    if (it != g.aliases.end()) {
      const std::string base = base_type_name(it->second);
      if (!base.empty()) g.wire_types.insert(base);
    }
  }
  return g;
}

// ---------------------------------------------------------------------------
// Layout engine (Itanium-style) for tripoll-wire-padding.
// ---------------------------------------------------------------------------

struct layout {
  std::size_t size = 0;
  std::size_t align = 1;
  bool empty = false;
};

std::optional<layout> builtin_layout(const std::vector<std::string>& idents) {
  std::string joined;
  for (const auto& s : idents) {
    if (!joined.empty()) joined += ' ';
    joined += s;
  }
  static const std::map<std::string, std::size_t> kSizes = {
      {"bool", 1},          {"char", 1},
      {"signed char", 1},   {"unsigned char", 1},
      {"char8_t", 1},       {"byte", 1},
      {"int8_t", 1},        {"uint8_t", 1},
      {"short", 2},         {"unsigned short", 2},
      {"short int", 2},     {"char16_t", 2},
      {"int16_t", 2},       {"uint16_t", 2},
      {"int", 4},           {"unsigned", 4},
      {"unsigned int", 4},  {"char32_t", 4},
      {"wchar_t", 4},       {"int32_t", 4},
      {"uint32_t", 4},      {"float", 4},
      {"long", 8},          {"unsigned long", 8},
      {"long int", 8},      {"long long", 8},
      {"unsigned long long", 8},
      {"long long int", 8}, {"int64_t", 8},
      {"uint64_t", 8},      {"size_t", 8},
      {"ptrdiff_t", 8},     {"intptr_t", 8},
      {"uintptr_t", 8},     {"double", 8},
  };
  const auto it = kSizes.find(joined);
  if (it == kSizes.end()) return std::nullopt;
  return layout{it->second, it->second, false};
}

std::optional<layout> resolve_struct_layout(const struct_decl& sd, const global_ctx& g,
                                            std::set<std::string>& visiting);

/// Resolve the size/alignment of a member type from its tokens.  Returns
/// nullopt for anything outside the supported subset (the caller then skips
/// the whole struct -- no guess, no false positive).
std::optional<layout> resolve_type(const std::vector<std::string>& toks,
                                   const global_ctx& g,
                                   std::set<std::string>& visiting) {
  // Pointers / references first: 8-byte scalars regardless of pointee.
  for (const auto& t : toks) {
    if (t == "*" || t == "&" || t == "&&") return layout{8, 8, false};
  }
  // Strip qualifiers and `ns::` prefixes down to the core ident sequence.
  std::vector<std::string> core;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const std::string& t = toks[i];
    if (t == "const" || t == "volatile" || t == "struct" || t == "class" ||
        t == "typename" || t == "mutable") {
      continue;
    }
    if (t == "::") continue;
    if (i + 1 < toks.size() && toks[i + 1] == "::") continue;  // namespace prefix
    core.push_back(t);
  }
  if (core.empty()) return std::nullopt;
  // std::array<T, N>: element layout times count.
  if (core.front() == "array" && core.size() > 1 && core[1] == "<") {
    int depth = 0;
    std::vector<std::string> elem;
    long long count = -1;
    for (std::size_t i = 1; i < core.size(); ++i) {
      if (core[i] == "<") {
        if (++depth == 1) continue;
      } else if (core[i] == ">") {
        if (--depth == 0) break;
      } else if (core[i] == ">>") {
        depth -= 2;
        if (depth <= 0) break;
      } else if (core[i] == "," && depth == 1) {
        count = -2;  // switch to the count part
        continue;
      }
      if (count == -1) {
        elem.push_back(core[i]);
      } else if (count == -2) {
        try {
          count = std::stoll(core[i]);
        } catch (...) {
          return std::nullopt;
        }
      }
    }
    if (count <= 0) return std::nullopt;
    const auto el = resolve_type(elem, g, visiting);
    if (!el || el->empty) return std::nullopt;
    return layout{el->size * static_cast<std::size_t>(count), el->align, false};
  }
  if (const auto b = builtin_layout(core)) return b;
  if (core.size() == 1) {
    const std::string& name = core.front();
    if (const auto a = g.aliases.find(name); a != g.aliases.end()) {
      if (visiting.count("alias:" + name) != 0) return std::nullopt;
      visiting.insert("alias:" + name);
      auto r = resolve_type(a->second, g, visiting);
      visiting.erase("alias:" + name);
      return r;
    }
    if (const auto e = g.enums.find(name); e != g.enums.end()) {
      if (e->second == 0) return std::nullopt;
      const auto sz = static_cast<std::size_t>(e->second);
      return layout{sz, sz, false};
    }
    if (const auto s = g.structs.find(name); s != g.structs.end()) {
      return resolve_struct_layout(*s->second.first, g, visiting);
    }
  }
  return std::nullopt;
}

std::optional<layout> resolve_struct_layout(const struct_decl& sd, const global_ctx& g,
                                            std::set<std::string>& visiting) {
  if (sd.is_template || sd.unanalyzable) return std::nullopt;
  if (visiting.count(sd.name) != 0) return std::nullopt;  // recursive type
  visiting.insert(sd.name);
  std::size_t off = 0;
  std::size_t max_align = 1;
  bool any = false;
  for (const auto& m : sd.members) {
    const auto l = resolve_type(m.type_toks, g, visiting);
    if (!l) {
      visiting.erase(sd.name);
      return std::nullopt;
    }
    if (l->empty && m.no_unique_address) continue;  // occupies no storage
    const std::size_t sz = (l->empty ? 1 : l->size) *
                           static_cast<std::size_t>(std::max<long long>(m.array_count, 1));
    const std::size_t al = l->empty ? 1 : l->align;
    off = (off + al - 1) / al * al;
    off += sz;
    max_align = std::max(max_align, al);
    any = true;
  }
  visiting.erase(sd.name);
  if (!any) return layout{1, 1, true};  // empty struct
  const std::size_t size = (off + max_align - 1) / max_align * max_align;
  return layout{size, max_align, false};
}

/// Wire ("packed") size: the sum of member sizes, mirroring
/// serial::packed_size_of -- empty members count zero.
std::optional<std::size_t> packed_size(const struct_decl& sd, const global_ctx& g) {
  std::size_t total = 0;
  for (const auto& m : sd.members) {
    std::set<std::string> visiting{sd.name};
    const auto l = resolve_type(m.type_toks, g, visiting);
    if (!l) return std::nullopt;
    if (!l->empty) {
      total += l->size * static_cast<std::size_t>(std::max<long long>(m.array_count, 1));
    }
  }
  return total;
}

// ---------------------------------------------------------------------------
// Check 1: tripoll-wire-padding.
// ---------------------------------------------------------------------------

/// A struct participates in checks 1-2 when it is anchored as a wire type
/// and has not opted out of the bitwise path.
bool is_checked_wire_struct(const struct_decl& sd, const global_ctx& g) {
  if (sd.name.empty() || sd.annotated_not_wire) return false;
  if (sd.force_flag != -1) return false;  // opt-out declared (or conditional)
  return g.wire_types.count(sd.name) != 0;
}

void check_wire_padding(const std::vector<file_model>& files, const global_ctx& g,
                        std::vector<diagnostic>& out) {
  for (const auto& f : files) {
    for (const auto& sd : f.structs) {
      if (!is_checked_wire_struct(sd, g)) continue;
      std::set<std::string> visiting;
      const auto l = resolve_struct_layout(sd, g, visiting);
      const auto packed = packed_size(sd, g);
      if (!l || !packed || l->empty) continue;  // outside the analyzable subset
      if (l->size > *packed) {
        std::ostringstream msg;
        msg << "bitwise wire struct '" << sd.name << "' has " << (l->size - *packed)
            << " byte(s) of padding (sizeof " << l->size << ", member bytes "
            << *packed << "); indeterminate bytes reach the wire through the "
            << "bitwise serialize path -- reorder members or add explicit "
            << "padding fields, and pin the layout with TRIPOLL_WIRE_ASSERT";
        out.push_back({f.path, sd.line, 1, kWirePadding, msg.str()});
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Check 2: tripoll-bitwise-view-member.
// ---------------------------------------------------------------------------

bool is_view_type(const std::vector<std::string>& toks) {
  for (const auto& t : toks) {
    if (t == "*" || t == "&" || t == "&&") return true;
    if (t == "string_view" || t == "wire_span" || t == "span" ||
        t == "unique_ptr" || t == "shared_ptr" || t == "observer_ptr") {
      return true;
    }
  }
  return false;
}

void check_view_member(const std::vector<file_model>& files, const global_ctx& g,
                       std::vector<diagnostic>& out) {
  for (const auto& f : files) {
    for (const auto& sd : f.structs) {
      // Unlike the padding check, templates are fair game here: a view
      // member is wrong for every instantiation.
      if (!is_checked_wire_struct(sd, g)) continue;
      for (const auto& m : sd.members) {
        if (!is_view_type(m.type_toks)) continue;
        std::ostringstream msg;
        msg << "member '" << m.name << "' of bitwise wire struct '" << sd.name
            << "' is a view/pointer type; the bitwise serialize path would "
            << "memcpy the pointer, not the bytes it refers to -- declare "
            << "'static constexpr bool tripoll_force_member_serialize = true;' "
            << "to route the struct through the member-wise archive path";
        out.push_back({f.path, m.line, m.col, kViewMember, msg.str()});
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Check 3: tripoll-handler-static-init.
// ---------------------------------------------------------------------------

void check_handler_static_init(const std::vector<file_model>& files,
                               std::vector<diagnostic>& out) {
  for (const auto& f : files) {
    for (const auto& c : f.register_calls) {
      if (!c.in_function_body) continue;
      out.push_back(
          {f.path, c.line, c.col, kStaticInit,
           "register_thunk called inside a function body; handler ids are "
           "positional and must be assigned during namespace-scope static "
           "initialization so every socket rank derives the same table "
           "(see comm/handler_registry.hpp)"});
    }
  }
}

// ---------------------------------------------------------------------------
// Check 4: tripoll-view-escape.
// ---------------------------------------------------------------------------

/// View-ish tokens for handler parameters.  batch_arg<T> resolves to
/// wire_span<T> for bitwise T, and wire_type_t maps std::string to
/// string_view -- both are views into the drained payload.
bool toks_contain_view(const std::vector<std::string>& toks, const global_ctx& g,
                       std::set<std::string>& seen) {
  for (const auto& t : toks) {
    if (t == "wire_span" || t == "string_view" || t == "span" ||
        t == "batch_arg" || t == "wire_type_t") {
      return true;
    }
  }
  for (const auto& t : toks) {
    const auto it = g.aliases.find(t);
    if (it != g.aliases.end() && seen.insert(t).second &&
        toks_contain_view(it->second, g, seen)) {
      return true;
    }
  }
  return false;
}

bool is_view_param(const param_decl& p, const global_ctx& g) {
  std::set<std::string> seen;
  return toks_contain_view(p.type_toks, g, seen);
}

/// Names of locals initialized from share_current_payload(): capturing one
/// of these alongside a view legitimizes the escape (the payload keepalive
/// idiom from docs/THREADING.md).
std::set<std::string> escort_names(const std::vector<token>& toks, std::size_t begin,
                                   std::size_t end) {
  std::set<std::string> escorts;
  for (std::size_t i = begin; i < end; ++i) {
    if (toks[i].text != "share_current_payload") continue;
    for (std::size_t back = i; back > begin && i - back < 8; --back) {
      if (toks[back].text == "=") {
        if (toks[back - 1].k == token::kind::ident) {
          escorts.insert(toks[back - 1].text);
        }
        break;
      }
    }
  }
  return escorts;
}

void scan_view_escapes(const file_model& f, const function_decl& fn,
                       const global_ctx& g, std::vector<diagnostic>& out) {
  std::vector<std::string> views;
  for (const auto& p : fn.params) {
    if (is_view_param(p, g) && !p.name.empty()) views.push_back(p.name);
  }
  if (views.empty()) return;
  const auto& t = f.toks;
  const std::size_t b = fn.body_begin;
  const std::size_t e = std::min(fn.body_end, t.size());
  const std::set<std::string> escorts = escort_names(t, b, e);
  const auto is_view = [&](const std::string& s) {
    return std::find(views.begin(), views.end(), s) != views.end();
  };
  for (std::size_t i = b; i < e; ++i) {
    // Lambda capture lists.
    if (t[i].text == "[" && t[i + 1].text != "[") {
      const token& prev = t[i - 1];
      const bool subscript = prev.k == token::kind::ident ||
                             prev.k == token::kind::number || prev.text == "]" ||
                             prev.text == ")";
      if (subscript) continue;
      std::size_t close = i + 1;
      int depth = 1;
      while (close < e && depth > 0) {
        if (t[close].text == "[") ++depth;
        if (t[close].text == "]") --depth;
        ++close;
      }
      bool has_escort = false;
      std::vector<std::pair<std::string, int>> captured_views;
      for (std::size_t k = i + 1; k + 1 < close; ++k) {
        if (t[k].k != token::kind::ident) continue;
        if (escorts.count(t[k].text) != 0) has_escort = true;
        if (is_view(t[k].text)) captured_views.emplace_back(t[k].text, t[k].line);
      }
      if (!has_escort) {
        for (const auto& [name, line] : captured_views) {
          std::ostringstream msg;
          msg << "handler view argument '" << name << "' is captured by a "
              << "lambda without a payload keepalive; the span dangles once "
              << "the receive payload drains -- capture a "
              << "share_current_payload() handle alongside it or copy the "
              << "bytes before deferring (docs/THREADING.md)";
          out.push_back({f.path, line, t[i].col, kViewEscape, msg.str()});
        }
      }
      i = close - 1;
      continue;
    }
    if (t[i].k != token::kind::ident || !is_view(t[i].text)) continue;
    const std::string& name = t[i].text;
    // Member store: `this->x = sv` / `x_ = sv`.
    if (i >= 2 && t[i - 1].text == "=") {
      const token& lhs = t[i - 2];
      const bool member_lhs =
          (lhs.k == token::kind::ident && !lhs.text.empty() && lhs.text.back() == '_') ||
          (i >= 4 && t[i - 3].text == "->" && t[i - 4].text == "this");
      if (member_lhs && (t[i + 1].text == ";" || t[i + 1].text == ".")) {
        std::ostringstream msg;
        msg << "handler view argument '" << name << "' is stored in a member; "
            << "it points into the receive payload, which is recycled after "
            << "the handler returns -- copy the bytes instead "
            << "(docs/THREADING.md)";
        out.push_back({f.path, t[i].line, t[i].col, kViewEscape, msg.str()});
        continue;
      }
    }
    // Member-container store: `sink_.push_back(sv)` / `this->sink.insert(sv)`.
    if (t[i - 1].text == "(" &&
        (t[i + 1].text == ")" || t[i + 1].text == ",") && i >= 4) {
      const std::string& callee = t[i - 2].text;
      if (callee == "push_back" || callee == "emplace_back" || callee == "insert" ||
          callee == "assign" || callee == "emplace") {
        const token& obj = t[i - 4];
        const bool member_obj =
            (obj.k == token::kind::ident && !obj.text.empty() &&
             obj.text.back() == '_') ||
            (i >= 6 && t[i - 5].text == "->" && t[i - 6].text == "this");
        if ((t[i - 3].text == "." || t[i - 3].text == "->") && member_obj) {
          std::ostringstream msg;
          msg << "handler view argument '" << name << "' is stored in a member "
              << "container; it points into the receive payload, which is "
              << "recycled after the handler returns -- copy the bytes instead "
              << "(docs/THREADING.md)";
          out.push_back({f.path, t[i].line, t[i].col, kViewEscape, msg.str()});
        }
      }
    }
  }
}

void check_view_escape(const std::vector<file_model>& files, const global_ctx& g,
                       std::vector<diagnostic>& out) {
  for (const auto& f : files) {
    for (const auto& sd : f.structs) {
      if (sd.name.size() < 8 || sd.name.substr(sd.name.size() - 8) != "_handler") {
        continue;
      }
      for (const auto& fn : sd.methods) {
        if (fn.name == "operator()" && fn.body_end > fn.body_begin) {
          scan_view_escapes(f, fn, g, out);
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Check 5: tripoll-callback-blocking.
// ---------------------------------------------------------------------------

void scan_blocking(const file_model& f, std::size_t begin, std::size_t end,
                   const std::string& ctx, std::vector<diagnostic>& out) {
  static const std::set<std::string> kBlockingMember = {
      "barrier",    "all_reduce",     "all_reduce_sum", "all_reduce_max",
      "all_reduce_min", "all_gather", "broadcast",      "global_stats",
      "lock",       "sleep_for",      "sleep_until",    "wait",
      "wait_for",   "wait_until",     "join"};
  static const std::set<std::string> kBlockingType = {
      "lock_guard", "unique_lock", "scoped_lock", "shared_lock",
      "ifstream",   "ofstream",    "fstream",     "condition_variable"};
  static const std::set<std::string> kBlockingFree = {
      "fopen", "fread", "fwrite", "fclose", "getline",
      "usleep", "nanosleep", "sleep", "system"};
  const auto& t = f.toks;
  const std::size_t e = std::min(end, t.size());
  for (std::size_t i = begin; i < e; ++i) {
    if (t[i].k != token::kind::ident) continue;
    const std::string& s = t[i].text;
    const std::string& prev = i > 0 ? t[i - 1].text : t[i].text;
    const std::string& next = i + 1 < e ? t[i + 1].text : t[i].text;
    bool hit = false;
    if (kBlockingType.count(s) != 0) {
      hit = true;  // declaring the type at all is the bug
    } else if (next == "(" && kBlockingMember.count(s) != 0 &&
               (prev == "." || prev == "->" || prev == "::")) {
      hit = true;
    } else if (next == "(" && kBlockingFree.count(s) != 0 &&
               (prev != "." && prev != "->")) {
      hit = true;
    }
    if (!hit) continue;
    std::ostringstream msg;
    msg << "blocking construct '" << s << "' inside " << ctx
        << "; receiver-side handlers and add_reduced callbacks run on the "
        << "progress/worker thread and must never block -- enqueue follow-up "
        << "work with communicator::async instead (docs/THREADING.md)";
    out.push_back({f.path, t[i].line, t[i].col, kCallbackBlocking, msg.str()});
  }
}

void check_callback_blocking(const std::vector<file_model>& files,
                             std::vector<diagnostic>& out) {
  for (const auto& f : files) {
    for (const auto& sd : f.structs) {
      if (sd.name.size() < 8 || sd.name.substr(sd.name.size() - 8) != "_handler") {
        continue;
      }
      for (const auto& fn : sd.methods) {
        if (fn.name == "operator()" && fn.body_end > fn.body_begin) {
          scan_blocking(f, fn.body_begin, fn.body_end,
                        "handler '" + sd.name + "::operator()'", out);
        }
      }
    }
    // add_reduced(..., [](...) { ... }) worker-side callbacks.
    const auto& t = f.toks;
    for (const std::size_t call : f.add_reduced_calls) {
      if (call + 1 >= t.size() || t[call + 1].text != "(") continue;
      // Find the matching close paren, then any lambda bodies inside.
      std::size_t close = call + 1;
      int depth = 0;
      while (close < t.size()) {
        if (t[close].text == "(") ++depth;
        if (t[close].text == ")" && --depth == 0) break;
        ++close;
      }
      for (std::size_t i = call + 2; i < close; ++i) {
        if (t[i].text != "[" || t[i + 1].text == "[") continue;
        const token& prev = t[i - 1];
        if (prev.k == token::kind::ident || prev.text == "]" || prev.text == ")") {
          continue;  // subscript
        }
        // Skip the capture list, optional params, to the body.
        std::size_t j = i + 1;
        int bd = 1;
        while (j < close && bd > 0) {
          if (t[j].text == "[") ++bd;
          if (t[j].text == "]") --bd;
          ++j;
        }
        if (j < close && t[j].text == "(") {
          int pd = 0;
          while (j < close) {
            if (t[j].text == "(") ++pd;
            if (t[j].text == ")" && --pd == 0) {
              ++j;
              break;
            }
            ++j;
          }
        }
        while (j < close && t[j].text != "{") ++j;
        if (j >= close) break;
        std::size_t bend = j;
        int cd = 0;
        while (bend < t.size()) {
          if (t[bend].text == "{") ++cd;
          if (t[bend].text == "}" && --cd == 0) break;
          ++bend;
        }
        scan_blocking(f, j + 1, bend, "an add_reduced callback", out);
        i = bend;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// NOLINT suppression.
// ---------------------------------------------------------------------------

bool nolint_matches(const std::string& comment, const std::string& check,
                    bool nextline) {
  const std::string key = nextline ? "NOLINTNEXTLINE" : "NOLINT";
  std::size_t pos = 0;
  while ((pos = comment.find(key, pos)) != std::string::npos) {
    const std::size_t after = pos + key.size();
    if (!nextline && comment.compare(after, 8, "NEXTLINE") == 0) {
      pos = after;
      continue;  // this occurrence is the longer keyword
    }
    if (after >= comment.size() || comment[after] != '(') return true;  // bare
    const std::size_t close = comment.find(')', after);
    if (close == std::string::npos) return true;
    const std::string list = comment.substr(after + 1, close - after - 1);
    std::stringstream ss(list);
    std::string item;
    while (std::getline(ss, item, ',')) {
      const std::size_t b = item.find_first_not_of(" \t");
      const std::size_t l = item.find_last_not_of(" \t");
      if (b == std::string::npos) continue;
      const std::string trimmed = item.substr(b, l - b + 1);
      if (trimmed == "*" || trimmed == check) return true;
    }
    pos = close;
  }
  return false;
}

bool suppressed(const diagnostic& d, const file_model& f) {
  if (const auto it = f.comments.find(d.line); it != f.comments.end()) {
    if (nolint_matches(it->second, d.check, /*nextline=*/false)) return true;
  }
  if (const auto it = f.comments.find(d.line - 1); it != f.comments.end()) {
    if (nolint_matches(it->second, d.check, /*nextline=*/true)) return true;
  }
  return false;
}

}  // namespace

// ---------------------------------------------------------------------------
// Public API.
// ---------------------------------------------------------------------------

const std::vector<std::string>& all_checks() {
  static const std::vector<std::string> kChecks = {
      kWirePadding, kViewMember, kStaticInit, kViewEscape, kCallbackBlocking};
  return kChecks;
}

std::set<std::string> options::default_enabled() {
  return {all_checks().begin(), all_checks().end()};
}

options options::from_spec(const std::string& spec) {
  options o;
  if (spec.empty()) return o;
  std::stringstream ss(spec);
  std::string item;
  bool first = true;
  while (std::getline(ss, item, ',')) {
    const std::size_t b = item.find_first_not_of(" \t");
    if (b == std::string::npos) continue;
    const std::size_t l = item.find_last_not_of(" \t");
    std::string name = item.substr(b, l - b + 1);
    const bool remove = !name.empty() && name[0] == '-';
    if (remove) name = name.substr(1);
    if (first && !remove) o.enabled.clear();  // positive list: start empty
    first = false;
    if (name == "*") {
      if (remove) o.enabled.clear();
      else o.enabled = default_enabled();
      continue;
    }
    if (remove) o.enabled.erase(name);
    else o.enabled.insert(name);
  }
  return o;
}

std::vector<diagnostic> run_checks(const std::vector<file_model>& files,
                                   const options& opts) {
  const global_ctx g = build_ctx(files);
  std::vector<diagnostic> all;
  if (opts.is_enabled(kWirePadding)) check_wire_padding(files, g, all);
  if (opts.is_enabled(kViewMember)) check_view_member(files, g, all);
  if (opts.is_enabled(kStaticInit)) check_handler_static_init(files, all);
  if (opts.is_enabled(kViewEscape)) check_view_escape(files, g, all);
  if (opts.is_enabled(kCallbackBlocking)) check_callback_blocking(files, all);
  // NOLINT filtering needs the owning file's comment map.
  std::map<std::string, const file_model*> by_path;
  for (const auto& f : files) by_path[f.path] = &f;
  std::vector<diagnostic> kept;
  for (const auto& d : all) {
    const auto it = by_path.find(d.file);
    if (it != by_path.end() && suppressed(d, *it->second)) continue;
    kept.push_back(d);
  }
  std::sort(kept.begin(), kept.end());
  kept.erase(std::unique(kept.begin(), kept.end(),
                         [](const diagnostic& a, const diagnostic& b) {
                           return a.file == b.file && a.line == b.line &&
                                  a.col == b.col && a.check == b.check &&
                                  a.message == b.message;
                         }),
             kept.end());
  return kept;
}

std::string format_diagnostic(const diagnostic& d) {
  std::ostringstream os;
  os << d.file << ':' << d.line << ':' << d.col << ": warning: " << d.message
     << " [" << d.check << ']';
  return os.str();
}

}  // namespace tripoll::lint
