// Fixture: tripoll-view-escape must flag handler view arguments deferred
// past the handler scope without a payload keepalive.  Lambda-capture
// diagnostics anchor to the captured name inside the capture list; store
// diagnostics anchor to the stored name.
#include <cstdint>
#include <string_view>

namespace fixture {

struct wedge_handler {
  void operator()(communicator& c, wire_span<std::uint64_t> candidates) {
    // Deferred without the share_current_payload() escort: the span points
    // into a payload that is recycled when the handler returns.
    c.async(0, [candidates] {  // EXPECT: tripoll-view-escape
      (void)candidates;
    });
  }
};

struct name_handler {
  void operator()(communicator& c, std::string_view name) {
    tasks_.push([this, name] {  // EXPECT: tripoll-view-escape
      consume(name);
    });
    (void)c;
  }
  void consume(std::string_view);
  task_queue tasks_;
};

struct store_handler {
  void operator()(communicator& c, std::string_view label, wire_span<int> xs) {
    last_label_ = label;  // EXPECT: tripoll-view-escape
    pending_.push_back(xs);  // EXPECT: tripoll-view-escape
    (void)c;
  }
  std::string_view last_label_;
  std::vector<wire_span<int>> pending_;
};

}  // namespace fixture
