// Fixture: tripoll-handler-static-init must flag register_thunk calls
// reached from function bodies -- those run at an arbitrary time on one
// rank, desynchronizing the positional handler-id table.
#include <cstdint>

namespace fixture {

struct late_handler {
  void operator()(int) {}
};

// Runtime registration from a free function.
inline std::uint32_t register_late() {
  return thunk_table::instance().register_thunk(nullptr);  // EXPECT: tripoll-handler-static-init
}

// Runtime registration from a member function.
class engine {
 public:
  void enable_extras() {
    extra_id_ = thunk_table::instance().register_thunk(nullptr);  // EXPECT: tripoll-handler-static-init
  }

 private:
  std::uint32_t extra_id_ = 0;
};

// Lazily-initialized function-local static: still a function body -- the
// first caller's timing decides the id.
inline std::uint32_t lazy_id() {
  static const std::uint32_t id =
      thunk_table::instance().register_thunk(nullptr);  // EXPECT: tripoll-handler-static-init
  return id;
}

}  // namespace fixture
