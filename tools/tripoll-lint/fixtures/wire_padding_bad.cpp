// Fixture: tripoll-wire-padding must flag every anchored bitwise struct
// whose sizeof exceeds the sum of its member sizes.  Markers: `EXPECT:
// <check>` on the line the diagnostic anchors to (the struct name line).
#include <array>
#include <cstdint>

namespace fixture {

using vertex_id = std::uint64_t;

// Classic tail-gap: 4-byte tag behind an 8-byte id -> 4 padding bytes.
struct tagged_id {  // EXPECT: tripoll-wire-padding
  vertex_id id = 0;
  std::uint32_t tag = 0;
};
TRIPOLL_WIRE_ASSERT(tagged_id, id, tag);

// Interior hole: u8 then u64 -> 7 bytes of padding in the middle.
struct header_like {  // EXPECT: tripoll-wire-padding
  std::uint8_t kind = 0;
  std::uint64_t length = 0;
};
TRIPOLL_WIRE_ASSERT(header_like, kind, length);

// Anchored through the annotation instead of a TRIPOLL_WIRE_ASSERT.
// tripoll-lint: wire-type
struct annotated_padded {  // EXPECT: tripoll-wire-padding
  std::uint16_t a = 0;
  std::uint64_t b = 0;
};

// Enum with explicit narrow underlying type + multi-declarator members.
enum class color : std::uint8_t { red, green };

struct enum_padded {  // EXPECT: tripoll-wire-padding
  color c = color::red;
  std::uint32_t x = 0, y = 0;
};
TRIPOLL_WIRE_ASSERT(enum_padded, c, x, y);

// Nested struct member: the inner struct is packed, but the outer layout
// still pads the trailing u16 pair up to the u64 alignment.
struct inner_pair {
  std::uint16_t lo = 0;
  std::uint16_t hi = 0;
};

struct outer_padded {  // EXPECT: tripoll-wire-padding
  std::uint64_t key = 0;
  inner_pair p{};
};
TRIPOLL_WIRE_ASSERT(outer_padded, key, p);

}  // namespace fixture
