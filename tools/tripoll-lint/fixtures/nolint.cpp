// Fixture: clang-tidy-style suppressions.  Every violation below carries a
// NOLINT marker, so the whole file must produce zero diagnostics.
#include <cstdint>
#include <mutex>
#include <string_view>

namespace fixture {

// tripoll-lint: wire-type
struct padded_but_waived {  // NOLINT(tripoll-wire-padding)
  std::uint8_t kind = 0;
  std::uint64_t length = 0;
};

// tripoll-lint: wire-type
struct view_but_waived {
  std::uint64_t id = 0;
  // NOLINTNEXTLINE(tripoll-bitwise-view-member)
  std::string_view name;
};

inline std::uint32_t late() {
  return thunk_table::instance().register_thunk(nullptr);  // NOLINT
}

struct quiet_handler {
  void operator()(communicator& c, std::uint64_t v) {
    std::lock_guard<std::mutex> g(m_);  // NOLINT(*)
    total_ += v;
    (void)c;
  }
  std::mutex m_;
  std::uint64_t total_ = 0;
};

}  // namespace fixture
