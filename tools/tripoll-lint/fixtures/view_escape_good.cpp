// Fixture: view usage that tripoll-view-escape must accept -- synchronous
// use, escorted deferral, and copies.
#include <cstdint>
#include <string>
#include <string_view>

namespace fixture {

struct sync_handler {
  // Synchronous consumption within the handler scope is always fine.
  void operator()(communicator& c, wire_span<std::uint64_t> candidates) {
    std::uint64_t sum = 0;
    for (std::size_t i = 0; i < candidates.size(); ++i) sum += candidates[i];
    c.note(sum);
  }
};

struct escorted_handler {
  // The sanctioned idiom (docs/THREADING.md): steal the drained payload and
  // capture the keepalive alongside the views -- the views stay valid for
  // the keepalive's lifetime.
  void operator()(communicator& c, wire_span<std::uint64_t> candidates,
                  std::string_view name) {
    auto payload = c.share_current_payload();
    tasks_.push([payload = std::move(payload), candidates, name] {
      (void)candidates;
      (void)name;
    });
  }
  task_queue tasks_;
};

struct copying_handler {
  // Deferring an owned copy (not the view) is fine; the lambda captures
  // only the copy's name.
  void operator()(communicator& c, std::string_view name) {
    std::string owned{name};
    c.async(0, [owned = std::move(owned)] { (void)owned; });
  }
};

struct subscript_handler {
  // Subscripts are not capture lists: xs[i] must not confuse the scanner.
  void operator()(communicator& c, wire_span<int> xs) {
    int acc = 0;
    for (std::size_t i = 0; i < xs.size(); ++i) acc += xs[i];
    c.note(acc);
  }
};

}  // namespace fixture
