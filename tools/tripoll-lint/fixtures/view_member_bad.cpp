// Fixture: tripoll-bitwise-view-member must flag view/pointer members of
// anchored wire structs that lack the tripoll_force_member_serialize
// opt-out.  Diagnostics anchor to the member name line.
#include <cstdint>
#include <string_view>

namespace fixture {

// tripoll-lint: wire-type
struct labeled_edge {
  std::uint64_t u = 0;
  std::uint64_t v = 0;
  std::string_view label;  // EXPECT: tripoll-bitwise-view-member
};

// tripoll-lint: wire-type
struct raw_pointer_meta {
  std::uint64_t id = 0;
  const char* name = nullptr;  // EXPECT: tripoll-bitwise-view-member
};

// Anchored by appearing as a wire_span element elsewhere in the file.
struct span_elem {
  std::uint64_t id = 0;
  std::string_view tag;  // EXPECT: tripoll-bitwise-view-member
};

inline void uses_span(const wire_span<span_elem>& batch) { (void)batch; }

// Templates are checked too: a view member is wrong in every instantiation.
// tripoll-lint: wire-type
template <typename Meta>
struct templated_candidate {
  std::uint64_t r = 0;
  std::string_view note;  // EXPECT: tripoll-bitwise-view-member
  Meta meta{};
};

}  // namespace fixture
