// Fixture: packed layouts, opt-outs and annotations that tripoll-wire-padding
// must accept without a diagnostic.
#include <array>
#include <cstdint>

namespace fixture {

using vertex_id = std::uint64_t;

// Fully packed: 8 + 8 + 16 = 32 == sizeof.
struct packed_record {
  vertex_id id = 0;
  std::uint64_t rank = 0;
  std::array<char, 16> tag{};
};
TRIPOLL_WIRE_ASSERT(packed_record, id, rank, tag);

// Multi-declarator members, still packed.
struct pair64 {
  std::uint64_t u = 0, v = 0;
};
TRIPOLL_WIRE_ASSERT(pair64, u, v);

// Narrow members ordered widest-first with an explicit trailing pad field:
// every byte of the wire image is named and initialized.
struct explicit_pad {
  std::uint64_t key = 0;
  std::uint32_t tag = 0;
  std::uint8_t flags = 0;
  std::array<std::uint8_t, 3> pad{};
};
TRIPOLL_WIRE_ASSERT(explicit_pad, key, tag, flags, pad);

// Empty metadata behind [[no_unique_address]] occupies no wire bytes.
struct none {};

struct meta_free {
  std::uint64_t r = 0;
  std::uint64_t r_rank = 0;
  [[no_unique_address]] none meta{};
};
TRIPOLL_WIRE_ASSERT(meta_free, r, r_rank, meta);

// Padded, but hand-encoded byte-by-byte -- never memcpy'd.
// tripoll-lint: not-wire
struct framing_header {
  std::uint8_t kind = 0;
  std::uint64_t length = 0;
};

// Padded, but explicitly routed through the member-wise archive path.
struct archived {
  static constexpr bool tripoll_force_member_serialize = true;
  std::uint8_t kind = 0;
  std::uint64_t length = 0;
};

// Padded but never anchored as a wire type: out of scope for the check.
struct plain_struct {
  std::uint8_t a = 0;
  std::uint64_t b = 0;
};

}  // namespace fixture
