// Fixture: registration sites that tripoll-handler-static-init must accept:
// namespace-scope static initialization (the thunk_registration idiom) and
// the registry's own declarations.
#include <cstdint>

namespace fixture {

struct echo_handler {
  void operator()(int) {}
};

// The registry's declaration + definition of register_thunk itself must
// not count as call sites.
class thunk_table {
 public:
  static thunk_table& instance();
  std::uint32_t register_thunk(void (*fn)(const char*, std::size_t));
};

inline std::uint32_t thunk_table::register_thunk(void (*fn)(const char*, std::size_t)) {
  (void)fn;
  return 0;
}

// The sanctioned idiom: a namespace-scope static member initializer runs
// during static initialization, in deterministic declaration order.
template <typename Handler>
struct thunk_registration {
  static const std::uint32_t id;
};

template <typename Handler>
const std::uint32_t thunk_registration<Handler>::id =
    thunk_table::instance().register_thunk(nullptr);

// Namespace-scope variable initializer: also static init.
inline const std::uint32_t echo_id = thunk_table::instance().register_thunk(nullptr);

}  // namespace fixture
