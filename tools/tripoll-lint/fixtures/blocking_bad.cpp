// Fixture: tripoll-callback-blocking must flag blocking constructs inside
// *_handler operator() bodies and add_reduced lambda callbacks.
#include <cstdint>
#include <fstream>
#include <mutex>

namespace fixture {

struct locking_handler {
  void operator()(communicator& c, std::uint64_t v) {
    std::lock_guard<std::mutex> g(m_);  // EXPECT: tripoll-callback-blocking
    total_ += v;
    (void)c;
  }
  std::mutex m_;
  std::uint64_t total_ = 0;
};

struct collective_handler {
  void operator()(communicator& c, std::uint64_t v) {
    c.barrier();  // EXPECT: tripoll-callback-blocking
    sum_ = c.all_reduce_sum(v);  // EXPECT: tripoll-callback-blocking
  }
  std::uint64_t sum_ = 0;
};

struct io_handler {
  void operator()(communicator& c, std::uint64_t v) {
    std::ofstream out("trace.log");  // EXPECT: tripoll-callback-blocking
    out << v;
    (void)c;
  }
};

struct sleepy_handler {
  void operator()(communicator& c, std::uint64_t) {
    std::this_thread::sleep_for(delay_);  // EXPECT: tripoll-callback-blocking
    (void)c;
  }
  std::chrono::milliseconds delay_{1};
};

inline void wire_reductions(counting_set<std::uint64_t>& cs, std::mutex& m) {
  cs.add_reduced(7, [&m](std::uint64_t v) {
    std::unique_lock<std::mutex> g(m);  // EXPECT: tripoll-callback-blocking
    consume(v);
  });
}

}  // namespace fixture
