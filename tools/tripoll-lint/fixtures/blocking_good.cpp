// Fixture: handler bodies that tripoll-callback-blocking must accept --
// non-blocking sends, atomics, and blocking calls outside handler scope.
#include <atomic>
#include <cstdint>
#include <mutex>

namespace fixture {

struct forwarding_handler {
  // async() is the sanctioned follow-up mechanism: enqueue, never wait.
  void operator()(communicator& c, std::uint64_t q, std::uint64_t v) {
    c.async(static_cast<int>(q % 4), forwarding_handler{}, q, v + 1);
  }
};

struct counting_handler {
  void operator()(communicator& c, std::uint64_t v) {
    total_.fetch_add(v, std::memory_order_relaxed);
    (void)c;
  }
  std::atomic<std::uint64_t> total_{0};
};

// Blocking is fine OUTSIDE handler/callback scope: driver code owns the
// progress loop and may use collectives and locks freely.
inline std::uint64_t drive(communicator& c, std::mutex& m, std::uint64_t v) {
  std::lock_guard<std::mutex> g(m);
  c.barrier();
  return c.all_reduce_sum(v);
}

// A functor that is not named *_handler is out of scope for the check.
struct flush_helper {
  void operator()(std::mutex& m) { std::lock_guard<std::mutex> g(m); }
};

}  // namespace fixture
