// Fixture: view members that tripoll-bitwise-view-member must accept.
#include <cstdint>
#include <string_view>

namespace fixture {

// The PR-4 idiom: a view member plus the force flag routes the struct
// through the member-wise archive path, which re-points views into the
// received payload.  Wrong only without the flag.
// tripoll-lint: wire-type
struct labeled_edge {
  static constexpr bool tripoll_force_member_serialize = true;
  std::uint64_t u = 0;
  std::uint64_t v = 0;
  std::string_view label;
};

// A dependent flag (the wedge_candidate pattern) counts as an opt-out: the
// author has made serialization conditional on the metadata type.
// tripoll-lint: wire-type
template <typename Meta>
struct conditional_candidate {
  static constexpr bool tripoll_force_member_serialize = !is_bitwise<Meta>;
  std::uint64_t r = 0;
  Meta meta{};
};

// Value members only: nothing to flag.
struct packed_record {
  std::uint64_t id = 0;
  std::uint64_t rank = 0;
};
TRIPOLL_WIRE_ASSERT(packed_record, id, rank);

// A view member in a struct never anchored as a wire type is fine -- it
// does not reach the serializer.
struct scratch_state {
  std::string_view window;
  std::uint64_t cursor = 0;
};

}  // namespace fixture
