// parser.cpp -- the declaration scanner underneath tripoll-lint.
//
// Not a C++ parser: a targeted scanner that recognizes the declaration
// subset this repository uses -- namespaces, (template) structs/classes
// with data members and inline methods, enums with underlying types, free
// functions -- and records everything the checks need: member lists with
// type tokens, method body token ranges, `register_thunk` call sites,
// `wire_span<...>` element anchors and TRIPOLL_WIRE_ASSERT registrations.
// Anything it does not understand it skips with balanced-delimiter
// matching; unknown constructs degrade to "no model", never to a crash.
// The fixture suite (fixtures/) and the lint-is-clean-on-the-real-tree
// test pin the supported subset.

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "lint.hpp"

namespace tripoll::lint {

namespace {

class scanner {
 public:
  explicit scanner(file_model& m) : m_(m), t_(m.toks), n_(m.toks.size()) {}

  void run() {
    parse_region(0, n_ > 0 ? n_ - 1 : 0, nullptr);
    attach_annotations();
    post_scan();
  }

 private:
  file_model& m_;
  std::vector<token>& t_;
  std::size_t n_;
  std::vector<std::pair<std::size_t, std::size_t>> body_ranges_;

  [[nodiscard]] const token& tok(std::size_t i) const {
    static const token eof{token::kind::eof, "", 0, 0};
    return i < n_ ? t_[i] : eof;
  }
  [[nodiscard]] bool is(std::size_t i, const char* s) const { return tok(i).text == s; }
  [[nodiscard]] bool is_ident(std::size_t i) const {
    return tok(i).k == token::kind::ident;
  }

  /// Skip from an opening delimiter to just past its match.  EOF-safe.
  [[nodiscard]] std::size_t skip_balanced(std::size_t i, const char* open,
                                          const char* close) const {
    int depth = 0;
    while (i < n_) {
      if (is(i, open)) {
        ++depth;
      } else if (is(i, close)) {
        if (--depth == 0) return i + 1;
      }
      ++i;
    }
    return n_;
  }

  /// Skip a template argument/parameter list starting at `<`; `>>` closes
  /// two levels.  Parens and brackets inside are skipped wholesale.
  [[nodiscard]] std::size_t skip_angles(std::size_t i) const {
    int depth = 0;
    while (i < n_) {
      if (is(i, "<")) {
        ++depth;
        ++i;
      } else if (is(i, ">")) {
        if (--depth <= 0) return i + 1;
        ++i;
      } else if (is(i, ">>")) {
        depth -= 2;
        if (depth <= 0) return i + 1;
        ++i;
      } else if (is(i, "(")) {
        i = skip_balanced(i, "(", ")");
      } else if (is(i, "[")) {
        i = skip_balanced(i, "[", "]");
      } else if (is(i, "{")) {
        i = skip_balanced(i, "{", "}");
      } else {
        ++i;
      }
    }
    return n_;
  }

  /// Skip one statement: to `;` at depth 0, or to just past a `}` that
  /// closes a brace opened at depth 0 (inline function bodies).
  [[nodiscard]] std::size_t skip_statement(std::size_t i) const {
    int paren = 0, brace = 0, bracket = 0;
    while (i < n_) {
      const token& t = tok(i);
      if (t.k == token::kind::punct) {
        if (t.text == "(") ++paren;
        else if (t.text == ")") --paren;
        else if (t.text == "[") ++bracket;
        else if (t.text == "]") --bracket;
        else if (t.text == "{") ++brace;
        else if (t.text == "}") {
          --brace;
          if (brace == 0 && paren == 0 && bracket == 0) {
            // `} ;` ends an init; a bare `}` ends an inline body.
            return is(i + 1, ";") ? i + 2 : i + 1;
          }
          if (brace < 0) return i;  // stray: let the caller see it
        } else if (t.text == ";" && paren == 0 && brace == 0 && bracket == 0) {
          return i + 1;
        }
      }
      ++i;
    }
    return n_;
  }

  // --- region / statement dispatch -----------------------------------------

  /// Parse declarations in [i, end).  `cur` is the enclosing struct (null at
  /// namespace scope).
  void parse_region(std::size_t i, std::size_t end, struct_decl* cur) {
    bool pending_template = false;
    std::vector<std::string> pending_tparams;
    bool pending_nua = false;
    while (i < end && i < n_) {
      const token& t = tok(i);
      if (t.k == token::kind::punct) {
        if (t.text == ";") {
          ++i;
        } else if (t.text == "{") {
          i = skip_balanced(i, "{", "}");
        } else if (t.text == "[" && is(i + 1, "[")) {
          i = parse_attribute(i, pending_nua);
          continue;  // keep pending_* alive for the next declaration
        } else if (t.text == "}") {
          ++i;  // tolerated stray (unbalanced #if branches)
        } else {
          ++i;
        }
        if (t.text == ";" || t.text == "{" || t.text == "}") {
          pending_template = false;
          pending_tparams.clear();
          pending_nua = false;
        }
        continue;
      }
      if (t.k != token::kind::ident) {
        ++i;
        continue;
      }
      const std::string& kw = t.text;
      if (kw == "template") {
        pending_template = true;
        parse_template_params(i + 1, pending_tparams);
        i = is(i + 1, "<") ? skip_angles(i + 1) : i + 1;
        continue;
      }
      if (kw == "namespace") {
        std::size_t j = i + 1;
        while (is_ident(j) || is(j, "::")) ++j;
        if (is(j, "{")) {
          const std::size_t close = skip_balanced(j, "{", "}");
          parse_region(j + 1, close - 1, nullptr);
          i = close;
        } else {
          i = skip_statement(j);  // namespace alias
        }
      } else if (kw == "struct" || kw == "class" || kw == "union") {
        i = parse_struct(i, pending_template, pending_tparams, kw == "union");
      } else if (kw == "enum") {
        i = parse_enum(i);
      } else if (kw == "using" || kw == "typedef" || kw == "friend" ||
                 kw == "static_assert") {
        i = skip_statement(i);
      } else if ((kw == "public" || kw == "private" || kw == "protected") &&
                 is(i + 1, ":")) {
        i += 2;
        continue;  // keep pending state
      } else if (kw == "extern" || kw == "inline" || kw == "constexpr" ||
                 kw == "consteval" || kw == "constinit" || kw == "explicit" ||
                 kw == "virtual") {
        ++i;
        continue;  // specifier prefixes: fold into the declaration
      } else {
        i = parse_decl_or_function(i, cur, pending_template, pending_nua);
      }
      pending_template = false;
      pending_tparams.clear();
      pending_nua = false;
    }
  }

  [[nodiscard]] std::size_t parse_attribute(std::size_t i, bool& pending_nua) {
    // `[[ ... ]]`: scan to the closing `]]`.
    std::size_t j = i + 2;
    while (j < n_ && !(is(j, "]") && is(j + 1, "]"))) {
      if (tok(j).text == "no_unique_address") pending_nua = true;
      ++j;
    }
    return j + 2;
  }

  void parse_template_params(std::size_t i, std::vector<std::string>& names) {
    if (!is(i, "<")) return;
    const std::size_t close = skip_angles(i);
    int depth = 0;
    for (std::size_t j = i; j < close; ++j) {
      if (is(j, "<")) ++depth;
      else if (is(j, ">")) --depth;
      else if (is(j, ">>")) depth -= 2;
      else if (depth == 1 && is_ident(j) &&
               (is(j + 1, ",") || is(j + 1, "=") ||
                (is(j + 1, ">") && j + 1 == close - 1) || is(j + 1, "..."))) {
        names.push_back(tok(j).text);
      }
    }
  }

  [[nodiscard]] std::size_t parse_enum(std::size_t i) {
    std::size_t j = i + 1;  // past `enum`
    if (is(j, "class") || is(j, "struct")) ++j;
    std::string name;
    if (is_ident(j)) name = tok(j++).text;
    int size = 4;  // underlying int unless specified
    if (is(j, ":")) {
      ++j;
      std::vector<std::string> base;
      while (j < n_ && !is(j, "{") && !is(j, ";")) base.push_back(tok(j++).text);
      size = builtin_size(base);
    }
    if (!name.empty()) m_.enum_underlying[name] = size;
    if (is(j, "{")) j = skip_balanced(j, "{", "}");
    if (is(j, ";")) ++j;
    return j;
  }

  [[nodiscard]] static int builtin_size(const std::vector<std::string>& toks) {
    std::string joined;
    for (const auto& s : toks) {
      if (s == "std" || s == "::" || s == "const" || s == "constexpr") continue;
      if (!joined.empty()) joined += ' ';
      joined += s;
    }
    if (joined == "bool" || joined == "char" || joined == "signed char" ||
        joined == "unsigned char" || joined == "char8_t" || joined == "byte" ||
        joined == "int8_t" || joined == "uint8_t") {
      return 1;
    }
    if (joined == "short" || joined == "unsigned short" || joined == "char16_t" ||
        joined == "int16_t" || joined == "uint16_t") {
      return 2;
    }
    if (joined == "int" || joined == "unsigned" || joined == "unsigned int" ||
        joined == "char32_t" || joined == "wchar_t" || joined == "int32_t" ||
        joined == "uint32_t" || joined == "float") {
      return 4;
    }
    if (joined == "long" || joined == "unsigned long" || joined == "long long" ||
        joined == "unsigned long long" || joined == "int64_t" || joined == "uint64_t" ||
        joined == "size_t" || joined == "ptrdiff_t" || joined == "intptr_t" ||
        joined == "uintptr_t" || joined == "double") {
      return 8;
    }
    return 0;  // unknown
  }

  // --- structs --------------------------------------------------------------

  [[nodiscard]] std::size_t parse_struct(std::size_t i, bool is_template,
                                         const std::vector<std::string>& tparams,
                                         bool is_union) {
    std::size_t j = i + 1;
    bool nua_dummy = false;
    while (is(j, "[") && is(j + 1, "[")) j = parse_attribute(j, nua_dummy);
    struct_decl sd;
    sd.is_template = is_template;
    sd.template_params = tparams;
    sd.unanalyzable = is_union;
    sd.line = tok(i).line;
    if (is_ident(j)) {
      sd.name = tok(j).text;
      sd.line = tok(j).line;
      ++j;
      // Qualified out-of-line or namespaced name: keep the last component.
      while (is(j, "::") && is_ident(j + 1)) {
        sd.name = tok(j + 1).text;
        j += 2;
      }
    }
    if (is(j, "<")) j = skip_angles(j);  // explicit specialization arguments
    if (is(j, "final")) ++j;
    if (is(j, ";")) return j + 1;  // forward declaration
    if (is(j, ":")) {              // base-clause: skip to the body
      ++j;
      while (j < n_ && !is(j, "{")) {
        if (is(j, "<")) j = skip_angles(j);
        else ++j;
      }
    }
    if (!is(j, "{")) return skip_statement(j);  // something unexpected
    const std::size_t close = skip_balanced(j, "{", "}");
    parse_struct_body(j + 1, close - 1, sd);
    if (!sd.name.empty()) {
      for (const auto& fn : sd.methods) {
        body_ranges_.emplace_back(fn.body_begin, fn.body_end);
      }
      m_.structs.push_back(std::move(sd));
    }
    // Trailing declarators (`} instance;`) -- skip to the semicolon.
    std::size_t k = close;
    while (k < n_ && !is(k, ";")) ++k;
    return k < n_ ? k + 1 : n_;
  }

  void parse_struct_body(std::size_t i, std::size_t end, struct_decl& sd) {
    bool pending_template = false;
    bool pending_nua = false;
    bool pending_static = false;
    while (i < end && i < n_) {
      const token& t = tok(i);
      if (t.k == token::kind::punct) {
        if (t.text == "[" && is(i + 1, "[")) {
          i = parse_attribute(i, pending_nua);
          continue;
        }
        if (t.text == ";") {
          pending_template = pending_static = pending_nua = false;
        }
        if (t.text == "{") {
          i = skip_balanced(i, "{", "}");
          continue;
        }
        ++i;
        continue;
      }
      if (t.k != token::kind::ident) {
        // `~destructor()` and friends: hand to the declaration scanner.
        if (t.text == "~") {
          i = parse_member_or_method(i, end, sd, pending_static, pending_nua);
          pending_template = pending_static = pending_nua = false;
          continue;
        }
        ++i;
        continue;
      }
      const std::string& kw = t.text;
      if (kw == "template") {
        pending_template = true;
        if (is(i + 1, "<")) i = skip_angles(i + 1); else ++i;
        continue;
      }
      if (kw == "struct" || kw == "class" || kw == "union") {
        i = parse_struct(i, pending_template, {}, kw == "union");
        pending_template = false;
        continue;
      }
      if (kw == "enum") {
        i = parse_enum(i);
        continue;
      }
      if (kw == "using" || kw == "typedef" || kw == "friend" || kw == "static_assert") {
        i = skip_statement(i);
        continue;
      }
      if ((kw == "public" || kw == "private" || kw == "protected") && is(i + 1, ":")) {
        i += 2;
        continue;
      }
      if (kw == "static") {
        pending_static = true;
        ++i;
        continue;
      }
      if (kw == "inline" || kw == "constexpr" || kw == "consteval" ||
          kw == "mutable" || kw == "explicit" || kw == "virtual") {
        ++i;
        continue;
      }
      i = parse_member_or_method(i, end, sd, pending_static, pending_nua);
      pending_template = pending_static = pending_nua = false;
    }
  }

  /// Scan one declaration at struct scope: record a data member or an
  /// inline method body.  Returns the index just past the declaration.
  [[nodiscard]] std::size_t parse_member_or_method(std::size_t i, std::size_t end,
                                                   struct_decl& sd, bool is_static,
                                                   bool nua) {
    std::vector<std::string> toks;      // accumulated declaration tokens
    std::vector<std::size_t> idents;    // indices (into t_) of depth-0 idents
    // Declarators flushed at `,` for multi-declarator members (`T u, v;`).
    std::vector<std::pair<std::size_t, long long>> decls;
    std::size_t j = i;
    long long array_count = 1;
    while (j < end && j < n_) {
      const token& t = tok(j);
      if (t.k == token::kind::ident && t.text == "operator") {
        // operator()(params) or operator<op>(params).
        std::string name = "operator";
        std::size_t k = j + 1;
        if (is(k, "(") && is(k + 1, ")")) {
          name = "operator()";
          k += 2;
        } else {
          while (k < n_ && !is(k, "(")) name += tok(k++).text;
        }
        if (is(k, "(")) return finish_method(k, sd, name, tok(j).line);
        j = k;
        continue;
      }
      if (t.k == token::kind::punct) {
        if (t.text == "<") {
          j = skip_angles(j);
          toks.push_back("<...>");
          continue;
        }
        if (t.text == "(") {
          // Function if the parens are followed by body-ish tokens.
          const std::size_t close = skip_balanced(j, "(", ")") - 1;
          std::size_t a = close + 1;
          while (is(a, "const") || is(a, "noexcept") || is(a, "override") ||
                 is(a, "final") || is(a, "mutable") || is(a, "&") || is(a, "&&")) {
            if (is(a, "noexcept") && is(a + 1, "(")) a = skip_balanced(a + 1, "(", ")");
            else ++a;
          }
          std::string name = idents.empty() ? "" : tok(idents.back()).text;
          if (is(a, "{") || is(a, ":") || is(a, "->") || is(a, "requires")) {
            return finish_method(j, sd, name, tok(i).line);
          }
          if (is(a, ";") || is(a, "=")) {
            // Declaration, `= default/delete`, or a macro invocation
            // (e.g. TRIPOLL_WIRE_ASSERT) -- no member to record.
            return skip_statement(a);
          }
          // Variable with paren-init or something odd: skip the statement.
          return skip_statement(j);
        }
        if (t.text == "[") {
          // Array declarator suffix `name[N]`.
          if (tok(j + 1).k == token::kind::number) {
            try {
              array_count = std::stoll(tok(j + 1).text);
            } catch (...) {
              array_count = 1;
            }
          }
          j = skip_balanced(j, "[", "]");
          continue;
        }
        if (t.text == ",") {  // declarator separator: `T u, v;`
          if (!idents.empty()) decls.emplace_back(idents.back(), array_count);
          array_count = 1;
          ++j;
          continue;
        }
        const bool term_eq = t.text == "=";
        const bool term_brace = t.text == "{";
        const bool term_semi = t.text == ";";
        const bool term_colon = t.text == ":";
        if (term_eq || term_brace || term_semi || term_colon) {
          if (is_static) {
            // Static member: only the bitwise opt-out flag matters.
            if (!idents.empty() &&
                tok(idents.back()).text == "tripoll_force_member_serialize") {
              sd.force_flag = (term_eq && is(j + 1, "true") && is(j + 2, ";")) ? 1 : 0;
            }
            return skip_statement(j);
          }
          if (term_colon) {  // bitfield: layout not computable, flag the struct
            sd.unanalyzable = true;
            return skip_statement(j);
          }
          if (idents.empty()) return skip_statement(j);
          decls.emplace_back(idents.back(), array_count);
          // `T x = 0, y = 0;` -- scan the rest of the statement for further
          // declarators at depth 0 (`, ident` after each initializer).
          std::size_t stmt_end = j;
          if (term_eq || term_brace) {
            int paren = 0, brace = 0, bracket = 0;
            std::size_t k = j;
            while (k < n_) {
              const std::string& s = tok(k).text;
              if (s == "(") ++paren;
              else if (s == ")") --paren;
              else if (s == "[") ++bracket;
              else if (s == "]") --bracket;
              else if (s == "{") ++brace;
              else if (s == "}") --brace;
              else if (s == ";" && paren == 0 && brace == 0 && bracket == 0) break;
              else if (s == "," && paren == 0 && brace == 0 && bracket == 0 &&
                       is_ident(k + 1)) {
                const std::string& nxt = tok(k + 2).text;
                if (nxt == "=" || nxt == "{" || nxt == ";" || nxt == "," ||
                    nxt == "[") {
                  long long cnt = 1;
                  if (nxt == "[" && tok(k + 3).k == token::kind::number) {
                    try {
                      cnt = std::stoll(tok(k + 3).text);
                    } catch (...) {
                      cnt = 1;
                    }
                  }
                  decls.emplace_back(k + 1, cnt);
                  ++k;  // step past the declarator name
                }
              }
              ++k;
            }
            stmt_end = k;
          }
          // Type tokens: the raw token texts up to the first declarator name.
          std::vector<std::string> type_toks;
          for (std::size_t k = i; k < decls.front().first; ++k) {
            if (is(k, "<")) {
              const std::size_t c = skip_angles(k);
              for (std::size_t q = k; q < c; ++q) type_toks.push_back(tok(q).text);
              k = c - 1;
              continue;
            }
            type_toks.push_back(tok(k).text);
          }
          for (const auto& [name_idx, count] : decls) {
            member_decl md;
            md.name = tok(name_idx).text;
            md.line = tok(name_idx).line;
            md.col = tok(name_idx).col;
            md.no_unique_address = nua;
            md.array_count = count;
            md.type_toks = type_toks;
            sd.members.push_back(std::move(md));
          }
          if (term_eq || term_brace) {
            return is(stmt_end, ";") ? stmt_end + 1 : stmt_end;
          }
          return skip_statement(j);
        }
        ++j;
        continue;
      }
      if (t.k == token::kind::ident) idents.push_back(j);
      ++j;
    }
    return j;
  }

  /// From the opening `(` of a parameter list: record the method with its
  /// parameters and (when present) inline body range.
  [[nodiscard]] std::size_t finish_method(std::size_t paren, struct_decl& sd,
                                          const std::string& name, int line) {
    function_decl fn;
    fn.name = name;
    fn.line = line;
    const std::size_t close = skip_balanced(paren, "(", ")") - 1;
    parse_params(paren + 1, close, fn.params);
    if (name == "serialize") sd.has_serialize = true;
    // Scan past trailing qualifiers / ctor-init / trailing return to the
    // body (or to `;`/`=` for a declaration).
    std::size_t a = close + 1;
    while (a < n_) {
      if (is(a, "{")) {
        const std::size_t bend = skip_balanced(a, "{", "}");
        fn.body_begin = a + 1;
        fn.body_end = bend - 1;
        sd.methods.push_back(std::move(fn));
        return bend;
      }
      if (is(a, ";")) {
        sd.methods.push_back(std::move(fn));
        return a + 1;
      }
      if (is(a, "=")) return skip_statement(a);  // = default / = delete / = 0
      if (is(a, "(")) {
        a = skip_balanced(a, "(", ")");
        continue;
      }
      if (is(a, "<")) {
        a = skip_angles(a);
        continue;
      }
      ++a;
    }
    return n_;
  }

  void parse_params(std::size_t begin, std::size_t end, std::vector<param_decl>& out) {
    std::size_t start = begin;
    int depth = 0;
    const auto flush = [&](std::size_t stop) {
      if (stop <= start) return;
      param_decl p;
      std::vector<std::size_t> idents;
      for (std::size_t k = start; k < stop; ++k) {
        if (is(k, "<")) {
          const std::size_t c = std::min(skip_angles(k), stop);
          for (std::size_t q = k; q < c; ++q) p.type_toks.push_back(tok(q).text);
          k = c - 1;
          continue;
        }
        if (is(k, "=")) break;  // default argument
        if (is_ident(k)) idents.push_back(k);
        p.type_toks.push_back(tok(k).text);
      }
      if (!idents.empty()) {
        p.name = tok(idents.back()).text;
        p.line = tok(idents.back()).line;
        if (p.type_toks.size() > 1 && p.type_toks.back() == p.name) {
          p.type_toks.pop_back();
        } else {
          p.name.clear();  // single token: a type, not a name
        }
      }
      if (!p.type_toks.empty()) out.push_back(std::move(p));
    };
    for (std::size_t k = begin; k < end && k < n_; ++k) {
      if (is(k, "(")) k = skip_balanced(k, "(", ")") - 1;
      else if (is(k, "<")) k = skip_angles(k) - 1;
      else if (is(k, "{")) k = skip_balanced(k, "{", "}") - 1;
      else if (is(k, ",") && depth == 0) {
        flush(k);
        start = k + 1;
      }
    }
    flush(std::min(end, n_));
  }

  // --- free functions -------------------------------------------------------

  /// Namespace-scope declaration: record free-function bodies (needed to
  /// classify register_thunk call sites); skip everything else.
  [[nodiscard]] std::size_t parse_decl_or_function(std::size_t i, struct_decl* cur,
                                                   bool /*is_template*/, bool nua) {
    if (cur != nullptr) return parse_member_or_method(i, n_, *cur, false, nua);
    std::size_t j = i;
    while (j < n_) {
      const token& t = tok(j);
      if (t.k == token::kind::punct) {
        if (t.text == "<") {
          j = skip_angles(j);
          continue;
        }
        if (t.text == "(") {
          const std::size_t close = skip_balanced(j, "(", ")") - 1;
          std::size_t a = close + 1;
          while (is(a, "const") || is(a, "noexcept") || is(a, "override") ||
                 is(a, "&") || is(a, "&&")) {
            if (is(a, "noexcept") && is(a + 1, "(")) a = skip_balanced(a + 1, "(", ")");
            else ++a;
          }
          if (is(a, "{") || is(a, ":") || is(a, "->") || is(a, "requires")) {
            // Free function with a body.
            std::size_t b = a;
            while (b < n_ && !is(b, "{")) {
              if (is(b, "(")) b = skip_balanced(b, "(", ")");
              else if (is(b, "<")) b = skip_angles(b);
              else ++b;
            }
            if (b >= n_) return n_;
            const std::size_t bend = skip_balanced(b, "{", "}");
            function_decl fn;
            fn.line = tok(i).line;
            fn.body_begin = b + 1;
            fn.body_end = bend - 1;
            // Name: last identifier before the parameter list.
            for (std::size_t k = j; k-- > i;) {
              if (is_ident(k)) {
                fn.name = tok(k).text;
                break;
              }
            }
            parse_params(j + 1, close, fn.params);
            body_ranges_.emplace_back(fn.body_begin, fn.body_end);
            m_.free_functions.push_back(std::move(fn));
            return bend;
          }
          return skip_statement(j);  // declaration / macro / var(init)
        }
        if (t.text == "=" || t.text == "{" || t.text == ";") {
          return skip_statement(i == j ? i : j);
        }
        ++j;
        continue;
      }
      ++j;
      if (j - i > 4096) return skip_statement(i);  // runaway guard
    }
    return n_;
  }

  // --- annotations and global token scans ----------------------------------

  void attach_annotations() {
    for (auto& sd : m_.structs) {
      for (int l = sd.line - 2; l <= sd.line; ++l) {
        const auto it = m_.comments.find(l);
        if (it == m_.comments.end()) continue;
        if (it->second.find("tripoll-lint:") == std::string::npos) continue;
        if (it->second.find("wire-type") != std::string::npos) sd.annotated_wire = true;
        if (it->second.find("not-wire") != std::string::npos) {
          sd.annotated_not_wire = true;
        }
      }
    }
  }

  [[nodiscard]] bool in_any_body(std::size_t idx) const {
    for (const auto& [b, e] : body_ranges_) {
      if (idx >= b && idx < e) return true;
    }
    return false;
  }

  void post_scan() {
    for (std::size_t i = 0; i < n_; ++i) {
      if (!is_ident(i)) continue;
      const std::string& s = tok(i).text;
      if (s == "register_thunk" && is(i + 1, "(")) {
        // Calls only: a preceding identifier (or `>`/`*`/`&`) marks the
        // declaration `uint32_t register_thunk(...)`, not a call.
        const token& prev = tok(i - 1);
        const bool decl_like =
            i > 0 && (prev.k == token::kind::ident || prev.text == ">" ||
                      prev.text == "*" || prev.text == "&");
        if (!decl_like) {
          m_.register_calls.push_back(
              {s, i, tok(i).line, tok(i).col, in_any_body(i)});
        }
      } else if (s == "add_reduced" && is(i + 1, "(")) {
        m_.add_reduced_calls.push_back(i);
      } else if (s == "wire_span" && is(i + 1, "<")) {
        const std::size_t close = skip_angles(i + 1);
        std::string last_ident;
        for (std::size_t k = i + 2; k + 1 < close; ++k) {
          if (is_ident(k)) last_ident = tok(k).text;
        }
        if (!last_ident.empty()) m_.wire_span_elems.insert(last_ident);
      } else if (s == "using" && is_ident(i + 1) && is(i + 2, "=")) {
        // Type alias: record the right-hand-side tokens for size lookup.
        std::vector<std::string> rhs;
        std::size_t k = i + 3;
        while (k < n_ && !is(k, ";")) rhs.push_back(tok(k++).text);
        if (!rhs.empty()) m_.aliases[tok(i + 1).text] = std::move(rhs);
      } else if (s == "TRIPOLL_WIRE_ASSERT" && is(i + 1, "(")) {
        const std::size_t close = skip_balanced(i + 1, "(", ")") - 1;
        std::vector<std::string> names;
        for (std::size_t k = i + 2; k < close; ++k) {
          if (is_ident(k)) names.push_back(tok(k).text);
        }
        if (!names.empty()) {
          std::string type = names.front();
          names.erase(names.begin());
          m_.wire_asserts.emplace_back(std::move(type), std::move(names));
        }
      }
    }
  }
};

}  // namespace

file_model parse_source(std::string path, const std::string& text) {
  file_model m;
  m.path = std::move(path);
  m.toks = lex(text, m);
  scanner(m).run();
  return m;
}

file_model parse_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("tripoll-lint: cannot read '" + path + "'");
  std::ostringstream ss;
  ss << in.rdbuf();
  return parse_source(path, ss.str());
}

}  // namespace tripoll::lint
