// lexer.cpp -- the tokenizer underneath tripoll-lint.
//
// A deliberately small C++ lexer: identifiers, numbers, string/char
// literals (including raw strings), multi-char punctuators, comments.
// Comments are not tokens -- they land in file_model::comments keyed by
// line, which is where NOLINT suppressions and `tripoll-lint:` annotations
// come from.  Preprocessor directives are skipped as whole logical lines
// (honouring backslash continuations), except that `#include "..."`
// targets are recorded for the compile_commands include walk.

#include <cctype>
#include <string>
#include <vector>

#include "lint.hpp"

namespace tripoll::lint {

namespace {

[[nodiscard]] bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

[[nodiscard]] bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Multi-character punctuators we must not split: the parser keys on `::`,
/// `->`, `<=>`, shifts and compound assignments.  Longest match first.
[[nodiscard]] std::size_t punct_len(const std::string& s, std::size_t i) {
  static const char* three[] = {"<=>", "<<=", ">>=", "...", "->*"};
  static const char* two[] = {"::", "->", "==", "!=", "<=", ">=", "&&", "||",
                              "++", "--", "+=", "-=", "*=", "/=", "%=", "&=",
                              "|=", "^=", "<<", ">>", ".*"};
  for (const char* p : three) {
    if (s.compare(i, 3, p) == 0) return 3;
  }
  for (const char* p : two) {
    if (s.compare(i, 2, p) == 0) return 2;
  }
  return 1;
}

}  // namespace

std::vector<token> lex(const std::string& text, file_model& model) {
  std::vector<token> out;
  const std::size_t n = text.size();
  std::size_t i = 0;
  int line = 1;
  int col = 1;

  const auto advance = [&](std::size_t count) {
    for (std::size_t k = 0; k < count && i < n; ++k, ++i) {
      if (text[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
  };

  const auto record_comment = [&](int at_line, const std::string& body) {
    auto& slot = model.comments[at_line];
    if (!slot.empty()) slot += ' ';
    slot += body;
  };

  while (i < n) {
    const char c = text[i];
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == '\v' || c == '\f') {
      advance(1);
      continue;
    }
    // Line comment.
    if (c == '/' && i + 1 < n && text[i + 1] == '/') {
      const int at = line;
      std::size_t end = text.find('\n', i);
      if (end == std::string::npos) end = n;
      record_comment(at, text.substr(i + 2, end - i - 2));
      advance(end - i);
      continue;
    }
    // Block comment: attach to every line it covers so NOLINT works on any.
    if (c == '/' && i + 1 < n && text[i + 1] == '*') {
      std::size_t end = text.find("*/", i + 2);
      if (end == std::string::npos) end = n; else end += 2;
      const std::string body = text.substr(i, end - i);
      int l = line;
      record_comment(l, body);
      for (char bc : body) {
        if (bc == '\n') record_comment(++l, body);
      }
      advance(end - i);
      continue;
    }
    // Preprocessor directive: consume the logical line (with continuations).
    if (c == '#' && (out.empty() || out.back().line != line)) {
      std::size_t end = i;
      while (end < n) {
        std::size_t nl = text.find('\n', end);
        if (nl == std::string::npos) {
          end = n;
          break;
        }
        // Backslash-continued directive line.
        std::size_t back = nl;
        while (back > end && (text[back - 1] == '\r')) --back;
        if (back > end && text[back - 1] == '\\') {
          end = nl + 1;
          continue;
        }
        end = nl;
        break;
      }
      const std::string directive = text.substr(i, end - i);
      // Record quoted-include targets for the include walk.
      std::size_t inc = directive.find("include");
      if (directive.find('#') != std::string::npos && inc != std::string::npos) {
        std::size_t q1 = directive.find('"', inc);
        if (q1 != std::string::npos) {
          std::size_t q2 = directive.find('"', q1 + 1);
          if (q2 != std::string::npos) {
            model.quoted_includes.push_back(directive.substr(q1 + 1, q2 - q1 - 1));
          }
        }
      }
      advance(end - i);
      continue;
    }
    // Raw string literal.
    if (c == 'R' && i + 1 < n && text[i + 1] == '"') {
      std::size_t p = i + 2;
      std::string delim;
      while (p < n && text[p] != '(') delim += text[p++];
      const std::string closer = ")" + delim + "\"";
      std::size_t end = text.find(closer, p);
      end = (end == std::string::npos) ? n : end + closer.size();
      out.push_back({token::kind::str, text.substr(i, end - i), line, col});
      advance(end - i);
      continue;
    }
    // String / char literal.
    if (c == '"' || c == '\'') {
      const char quote = c;
      std::size_t p = i + 1;
      while (p < n && text[p] != quote) {
        if (text[p] == '\\' && p + 1 < n) ++p;
        ++p;
      }
      if (p < n) ++p;
      out.push_back({quote == '"' ? token::kind::str : token::kind::chr,
                     text.substr(i, p - i), line, col});
      advance(p - i);
      continue;
    }
    if (ident_start(c)) {
      std::size_t p = i;
      while (p < n && ident_char(text[p])) ++p;
      out.push_back({token::kind::ident, text.substr(i, p - i), line, col});
      advance(p - i);
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n && std::isdigit(static_cast<unsigned char>(text[i + 1])))) {
      std::size_t p = i;
      while (p < n && (ident_char(text[p]) || text[p] == '.' ||
                       ((text[p] == '+' || text[p] == '-') && p > i &&
                        (text[p - 1] == 'e' || text[p - 1] == 'E' ||
                         text[p - 1] == 'p' || text[p - 1] == 'P')))) {
      ++p;
      }
      out.push_back({token::kind::number, text.substr(i, p - i), line, col});
      advance(p - i);
      continue;
    }
    const std::size_t len = punct_len(text, i);
    out.push_back({token::kind::punct, text.substr(i, len), line, col});
    advance(len);
  }
  out.push_back({token::kind::eof, "", line, col});
  return out;
}

}  // namespace tripoll::lint
