// main.cpp -- tripoll-lint CLI.
//
//   tripoll-lint [options] <paths...>        lint files/directories
//   tripoll-lint -p <build-dir> [--root D]   lint every TU (and reachable
//                                            project header) recorded in
//                                            <build-dir>/compile_commands.json
//
// Options:
//   --checks=<spec>   comma list of check names; '-name' disables, '*' is
//                     everything (clang-tidy style, full names only)
//   --list-checks     print the check names and exit
//   -q, --quiet       suppress the summary line on stderr
//
// Exit status: 0 clean, 1 diagnostics emitted, 2 usage or I/O error.

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "lint.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--checks=<spec>] [--list-checks] [-q] "
               "(-p <build-dir> [--root <dir>] | <paths...>)\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tripoll::lint;
  std::vector<std::string> paths;
  std::string build_dir;
  std::string root = ".";
  std::string checks_spec;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--list-checks") {
      for (const auto& c : all_checks()) std::puts(c.c_str());
      return 0;
    }
    if (a == "-q" || a == "--quiet") {
      quiet = true;
    } else if (a == "-p") {
      if (++i >= argc) return usage(argv[0]);
      build_dir = argv[i];
    } else if (a.rfind("-p", 0) == 0 && a.size() > 2) {
      build_dir = a.substr(2);
    } else if (a == "--root") {
      if (++i >= argc) return usage(argv[0]);
      root = argv[i];
    } else if (a.rfind("--root=", 0) == 0) {
      root = a.substr(7);
    } else if (a.rfind("--checks=", 0) == 0) {
      checks_spec = a.substr(9);
    } else if (a == "--checks") {
      if (++i >= argc) return usage(argv[0]);
      checks_spec = argv[i];
    } else if (a == "-h" || a == "--help") {
      usage(argv[0]);
      return 0;
    } else if (!a.empty() && a[0] == '-') {
      std::fprintf(stderr, "tripoll-lint: unknown option '%s'\n", a.c_str());
      return usage(argv[0]);
    } else {
      paths.push_back(a);
    }
  }
  if (build_dir.empty() && paths.empty()) return usage(argv[0]);

  try {
    std::vector<std::string> sources;
    if (!build_dir.empty()) {
      sources = sources_from_compile_commands(build_dir, root);
    }
    if (!paths.empty()) {
      for (auto& s : collect_sources(paths)) sources.push_back(std::move(s));
    }
    std::vector<file_model> models;
    models.reserve(sources.size());
    for (const auto& s : sources) models.push_back(parse_file(s));

    const options opts = options::from_spec(checks_spec);
    const std::vector<diagnostic> diags = run_checks(models, opts);
    for (const auto& d : diags) std::puts(format_diagnostic(d).c_str());
    if (!quiet) {
      std::fprintf(stderr, "tripoll-lint: %zu file(s), %zu warning(s)\n",
                   models.size(), diags.size());
    }
    return diags.empty() ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }
}
