// compile_commands.cpp -- source discovery for tripoll-lint.
//
// Two entry points: collect_sources() walks explicit files/directories, and
// sources_from_compile_commands() reads a CMake-exported
// compile_commands.json (CMAKE_EXPORT_COMPILE_COMMANDS=ON), takes every
// translation unit under the project root, and chases quoted #include
// targets through each TU's -I directories so headers -- where almost all
// of this repository lives -- are linted too.  The JSON reader below is a
// minimal hand-rolled parser for the database's fixed shape (an array of
// objects with string/array-of-string values); it tolerates and skips
// anything it does not recognize.

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "lint.hpp"

namespace fs = std::filesystem;

namespace tripoll::lint {

namespace {

[[nodiscard]] bool has_source_ext(const fs::path& p) {
  const std::string e = p.extension().string();
  return e == ".hpp" || e == ".h" || e == ".cpp" || e == ".cc" || e == ".cxx" ||
         e == ".hh";
}

/// Directories the walker never descends into: build trees, VCS metadata,
/// and lint fixtures (which are intentionally-bad snippets).
[[nodiscard]] bool skip_dir(const fs::path& p) {
  const std::string name = p.filename().string();
  return name == ".git" || name == "fixtures" || name == "build" ||
         name.rfind("build-", 0) == 0 || name == "_deps" ||
         name == "CMakeFiles";
}

[[nodiscard]] std::string canon(const fs::path& p) {
  std::error_code ec;
  const fs::path c = fs::weakly_canonical(p, ec);
  return (ec ? p.lexically_normal() : c).string();
}

// --- minimal JSON ----------------------------------------------------------

struct json_cursor {
  const std::string& s;
  std::size_t i = 0;

  void skip_ws() {
    while (i < s.size() && (s[i] == ' ' || s[i] == '\t' || s[i] == '\n' || s[i] == '\r')) {
      ++i;
    }
  }
  [[nodiscard]] char peek() {
    skip_ws();
    return i < s.size() ? s[i] : '\0';
  }
  void expect(char c) {
    if (peek() != c) {
      throw std::runtime_error(std::string("tripoll-lint: malformed JSON, expected '") +
                               c + "'");
    }
    ++i;
  }
  [[nodiscard]] std::string parse_string() {
    expect('"');
    std::string out;
    while (i < s.size() && s[i] != '"') {
      char c = s[i++];
      if (c == '\\' && i < s.size()) {
        const char esc = s[i++];
        switch (esc) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          case 'b': c = '\b'; break;
          case 'f': c = '\f'; break;
          case 'u':
            i += 4;  // keep ASCII fallback; paths here are ASCII
            c = '?';
            break;
          default: c = esc; break;
        }
      }
      out += c;
    }
    if (i < s.size()) ++i;  // closing quote
    return out;
  }
  /// Skip any JSON value (used for keys we do not care about).
  void skip_value() {
    const char c = peek();
    if (c == '"') {
      (void)parse_string();
    } else if (c == '[' || c == '{') {
      const char open = c;
      const char close = (c == '[') ? ']' : '}';
      int depth = 0;
      while (i < s.size()) {
        if (s[i] == '"') {
          (void)parse_string();
          continue;
        }
        if (s[i] == open) ++depth;
        if (s[i] == close && --depth == 0) {
          ++i;
          return;
        }
        ++i;
      }
    } else {
      while (i < s.size() && s[i] != ',' && s[i] != '}' && s[i] != ']') ++i;
    }
  }
};

struct compile_entry {
  std::string directory;
  std::string file;
  std::vector<std::string> args;  ///< from "arguments" or a split "command"
};

/// Split a shell-ish command string into argv, honouring quotes.
[[nodiscard]] std::vector<std::string> split_command(const std::string& cmd) {
  std::vector<std::string> out;
  std::string cur;
  char quote = '\0';
  for (std::size_t i = 0; i < cmd.size(); ++i) {
    const char c = cmd[i];
    if (quote != '\0') {
      if (c == quote) quote = '\0';
      else if (c == '\\' && quote == '"' && i + 1 < cmd.size()) cur += cmd[++i];
      else cur += c;
    } else if (c == '\'' || c == '"') {
      quote = c;
    } else if (c == ' ' || c == '\t') {
      if (!cur.empty()) out.push_back(std::move(cur));
      cur.clear();
    } else if (c == '\\' && i + 1 < cmd.size()) {
      cur += cmd[++i];
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) out.push_back(std::move(cur));
  return out;
}

[[nodiscard]] std::vector<compile_entry> parse_database(const std::string& text) {
  json_cursor j{text};
  std::vector<compile_entry> entries;
  j.expect('[');
  if (j.peek() == ']') return entries;
  while (true) {
    j.expect('{');
    compile_entry e;
    if (j.peek() != '}') {
      while (true) {
        const std::string key = j.parse_string();
        j.expect(':');
        if (key == "directory") {
          e.directory = j.parse_string();
        } else if (key == "file") {
          e.file = j.parse_string();
        } else if (key == "command") {
          e.args = split_command(j.parse_string());
        } else if (key == "arguments") {
          j.expect('[');
          if (j.peek() != ']') {
            while (true) {
              e.args.push_back(j.parse_string());
              if (j.peek() != ',') break;
              j.expect(',');
            }
          }
          j.expect(']');
        } else {
          j.skip_value();
        }
        if (j.peek() != ',') break;
        j.expect(',');
      }
    }
    j.expect('}');
    entries.push_back(std::move(e));
    if (j.peek() != ',') break;
    j.expect(',');
  }
  j.expect(']');
  return entries;
}

/// Extract #include "..." targets without a full lex (cheap line scan).
[[nodiscard]] std::vector<std::string> quoted_includes_of(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::vector<std::string> out;
  if (!in) return out;
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t hash = line.find_first_not_of(" \t");
    if (hash == std::string::npos || line[hash] != '#') continue;
    const std::size_t inc = line.find("include", hash);
    if (inc == std::string::npos) continue;
    const std::size_t q1 = line.find('"', inc);
    if (q1 == std::string::npos) continue;
    const std::size_t q2 = line.find('"', q1 + 1);
    if (q2 == std::string::npos) continue;
    out.push_back(line.substr(q1 + 1, q2 - q1 - 1));
  }
  return out;
}

}  // namespace

std::vector<std::string> collect_sources(const std::vector<std::string>& paths) {
  std::set<std::string> out;
  for (const auto& p : paths) {
    const fs::path path(p);
    std::error_code ec;
    if (fs::is_directory(path, ec)) {
      fs::recursive_directory_iterator it(path, fs::directory_options::skip_permission_denied, ec);
      const fs::recursive_directory_iterator end;
      while (!ec && it != end) {
        if (it->is_directory(ec) && skip_dir(it->path())) {
          it.disable_recursion_pending();
        } else if (it->is_regular_file(ec) && has_source_ext(it->path())) {
          out.insert(canon(it->path()));
        }
        it.increment(ec);
      }
    } else if (fs::is_regular_file(path, ec)) {
      out.insert(canon(path));
    } else {
      throw std::runtime_error("tripoll-lint: no such file or directory: '" + p + "'");
    }
  }
  return {out.begin(), out.end()};
}

std::vector<std::string> sources_from_compile_commands(const std::string& build_dir,
                                                       const std::string& root) {
  const fs::path db_path = fs::path(build_dir) / "compile_commands.json";
  std::ifstream in(db_path, std::ios::binary);
  if (!in) {
    throw std::runtime_error(
        "tripoll-lint: cannot read '" + db_path.string() +
        "' (configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON)");
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  const std::vector<compile_entry> entries = parse_database(ss.str());
  const std::string root_canon = canon(root) + "/";
  const auto under_root = [&](const std::string& p) {
    return p.compare(0, root_canon.size(), root_canon) == 0;
  };

  std::set<std::string> result;
  std::vector<std::string> work;  // files whose includes still need chasing
  for (const auto& e : entries) {
    if (e.file.empty()) continue;
    fs::path f(e.file);
    if (f.is_relative() && !e.directory.empty()) f = fs::path(e.directory) / f;
    const std::string cf = canon(f);
    if (!under_root(cf) || !fs::exists(cf)) continue;
    if (result.insert(cf).second) work.push_back(cf);

    // Include dirs for this TU: -I/-isystem flags plus the TU's directory.
    std::vector<fs::path> incdirs;
    incdirs.emplace_back(fs::path(cf).parent_path());
    for (std::size_t i = 0; i < e.args.size(); ++i) {
      const std::string& a = e.args[i];
      std::string dir;
      if (a.rfind("-I", 0) == 0 && a.size() > 2) dir = a.substr(2);
      else if ((a == "-I" || a == "-isystem" || a == "-iquote") && i + 1 < e.args.size()) dir = e.args[i + 1];
      else if (a.rfind("-isystem", 0) == 0 && a.size() > 8) dir = a.substr(8);
      if (dir.empty()) continue;
      fs::path d(dir);
      if (d.is_relative() && !e.directory.empty()) d = fs::path(e.directory) / d;
      incdirs.push_back(d);
    }

    // Chase quoted includes breadth-first, staying under root.
    while (!work.empty()) {
      const std::string cur = work.back();
      work.pop_back();
      for (const auto& inc : quoted_includes_of(cur)) {
        std::vector<fs::path> dirs = incdirs;
        dirs.front() = fs::path(cur).parent_path();  // includer-relative first
        for (const auto& d : dirs) {
          const fs::path cand = d / inc;
          std::error_code ec;
          if (!fs::is_regular_file(cand, ec)) continue;
          const std::string cc = canon(cand);
          if (under_root(cc) && result.insert(cc).second) work.push_back(cc);
          break;
        }
      }
    }
  }
  return {result.begin(), result.end()};
}

}  // namespace tripoll::lint
