// Tests for the streaming overlay (graph/overlay.hpp): base+delta surveys
// bit-identical to a full rebuild at every batch boundary, repeated-edge
// dedup (in-batch and against the stored graph), out-of-order timestamps,
// window boundary semantics, sliding-window expiry, and incremental
// re-freeze compaction (rank reuse + v3 snapshot round-trip).
//
// The socket-backend axis of the identity matrix is exercised end-to-end by
// tests/socket_smoke.sh, which diffs the CLI `ingest` output across the
// inproc and socket backends; here every run uses the inproc runtime.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "comm/runtime.hpp"
#include "core/callbacks.hpp"
#include "core/survey.hpp"
#include "gen/erdos_renyi.hpp"
#include "graph/builder.hpp"
#include "graph/frozen.hpp"
#include "graph/overlay.hpp"
#include "graph/snapshot.hpp"
#include "serial/hash.hpp"

namespace cb = tripoll::callbacks;
namespace tc = tripoll::comm;
namespace tg = tripoll::graph;

namespace {

using edge_pair = std::pair<tg::vertex_id, tg::vertex_id>;

std::uint64_t edge_ts(tg::vertex_id u, tg::vertex_id v) {
  const auto lo = std::min(u, v);
  const auto hi = std::max(u, v);
  return tripoll::serial::hash_combine(tripoll::serial::splitmix64(lo), hi) % 1000000;
}

std::uint64_t vertex_label(tg::vertex_id v) {
  return tripoll::serial::splitmix64(v ^ 0x5EED) % 64;
}

/// Deterministic simple edge set (normalized, self-loop-free, deduplicated)
/// so that base/delta splits consist of genuinely-new edges.
std::vector<edge_pair> er_edges(std::uint64_t nv, std::uint64_t ne, std::uint64_t seed) {
  tripoll::gen::erdos_renyi_generator er(nv, ne, seed);
  std::vector<edge_pair> out;
  std::set<edge_pair> seen;
  for (std::uint64_t k = 0; k < er.num_edges(); ++k) {
    const auto e = er.edge_at(k);
    const auto lo = std::min(e.u, e.v);
    const auto hi = std::max(e.u, e.v);
    if (lo == hi) continue;
    if (!seen.insert({lo, hi}).second) continue;
    out.push_back({lo, hi});
  }
  return out;
}

/// Build + freeze the given edge set (each rank contributes a stripe) with
/// the deterministic plan metadata -- the full-rebuild reference.
tg::frozen_dodgr<std::uint64_t, std::uint64_t> freeze_edges(
    tc::communicator& c, const std::vector<edge_pair>& edges,
    tg::ordering_policy ord) {
  tg::graph_builder<std::uint64_t, std::uint64_t> builder(c, ord);
  for (std::size_t i = 0; i < edges.size(); ++i) {
    if (static_cast<int>(i % static_cast<std::size_t>(c.size())) != c.rank()) continue;
    builder.add_edge(edges[i].first, edges[i].second,
                     edge_ts(edges[i].first, edges[i].second));
  }
  tg::dodgr<std::uint64_t, std::uint64_t> g(c);
  builder.build_into(g);
  g.for_all_local([](const tg::vertex_id& v, auto& rec) {
    rec.meta = vertex_label(v);
    for (auto& e : rec.adj) e.target_meta = vertex_label(e.target);
  });
  return tg::freeze(g);
}

struct metrics {
  std::uint64_t triangles = 0;
  std::uint64_t volume = 0;
  std::uint64_t messages = 0;
};

template <typename Graph>
metrics survey_metrics(tc::communicator& c, Graph& g, int threads = 1) {
  cb::count_context ctx;
  const auto r = cb::plan_for(g, cb::count_callback{}, ctx)
                     .run({tripoll::survey_mode::push_pull, threads})
                     .slice(0);
  return {ctx.global_count(c), r.total.volume_bytes, r.total.messages};
}

template <typename Graph>
std::uint64_t windowed_count(tc::communicator& c, Graph& g, std::uint64_t t0,
                             std::uint64_t t1) {
  cb::count_context ctx;
  (void)cb::plan_for(g, cb::count_callback{}, ctx).window(t0, t1).run({});
  return ctx.global_count(c);
}

std::string fresh_prefix(const char* tag) {
  return std::string("/tmp/tripoll-streaming-") + tag + "-" +
         std::to_string(::getpid());
}

}  // namespace

// --- base+delta bit-identity matrix ------------------------------------------

// Batch sizes x orderings x rank counts; at every batch boundary the overlay
// survey must report the same global triangle count as a full rebuild of
// base+delta -- and the same volume/messages under degree ordering, where
// the overlay's recomputed ranks coincide with the rebuild's.  (Degeneracy
// ranks are sticky by design -- a re-peel is a full-graph pass -- so the
// orientations may differ while the triangle count cannot; the
// overlay-vs-compaction metric identity for degeneracy is covered below.)
// The rebuild is surveyed at 1 and 4 threads: results are thread-invariant.
TEST(StreamingOverlay, BaseDeltaBitIdentityMatrix) {
  const auto edges = er_edges(100, 600, 777);
  ASSERT_GT(edges.size(), 50u);
  const std::size_t base_n = edges.size() * 3 / 5;
  const std::size_t batch_sizes[] = {1, 9, 0};  // 0 = everything left

  for (const auto ord :
       {tg::ordering_policy::degree, tg::ordering_policy::degeneracy}) {
    for (const int ranks : {1, 3}) {
      tc::runtime::run(ranks, [&](tc::communicator& c) {
        std::vector<edge_pair> applied(edges.begin(),
                                       edges.begin() + static_cast<std::ptrdiff_t>(base_n));
        auto base = freeze_edges(c, applied, ord);
        tg::overlay ov(base);

        std::size_t next = base_n;
        for (const std::size_t bs : batch_sizes) {
          const std::size_t take =
              bs == 0 ? edges.size() - next : std::min(bs, edges.size() - next);
          ASSERT_GT(take, 0u);
          // Each rank contributes its stripe of the batch (the CLI's
          // read_edge_list slicing does the same); ingest routes to owners.
          tg::overlay<std::uint64_t, std::uint64_t>::edge_batch batch;
          for (std::size_t i = next; i < next + take; ++i) {
            if (static_cast<int>(i % static_cast<std::size_t>(c.size())) != c.rank()) {
              continue;
            }
            batch.push_back({edges[i].first, edges[i].second,
                             edge_ts(edges[i].first, edges[i].second)});
          }
          const auto st =
              ov.ingest(batch, [](tg::vertex_id v) { return vertex_label(v); });
          EXPECT_EQ(st.accepted, take);
          EXPECT_EQ(st.duplicate_batch + st.duplicate_base + st.self_loops, 0u);
          applied.insert(applied.end(),
                         edges.begin() + static_cast<std::ptrdiff_t>(next),
                         edges.begin() + static_cast<std::ptrdiff_t>(next + take));
          next += take;

          const auto om = survey_metrics(c, ov);
          auto rebuilt = freeze_edges(c, applied, ord);
          const auto m1 = survey_metrics(c, rebuilt, 1);
          const auto m4 = survey_metrics(c, rebuilt, 4);

          EXPECT_EQ(om.triangles, m1.triangles)
              << "ord " << static_cast<int>(ord) << " ranks " << ranks
              << " boundary " << next;
          EXPECT_EQ(m4.triangles, m1.triangles);
          EXPECT_EQ(m4.volume, m1.volume);
          EXPECT_EQ(m4.messages, m1.messages);
          if (ord == tg::ordering_policy::degree) {
            EXPECT_EQ(om.volume, m1.volume);
            EXPECT_EQ(om.messages, m1.messages);
          }
        }
        EXPECT_EQ(next, edges.size());
        EXPECT_EQ(ov.batches_applied(), 3u);
      });
    }
  }
}

// --- dedup + out-of-order timestamps -----------------------------------------

TEST(StreamingOverlay, RepeatedEdgesDedupAndOutOfOrderTimestamps) {
  tc::runtime::run(2, [&](tc::communicator& c) {
    // Base path 1-2-3 with small explicit timestamps.
    tg::graph_builder<std::uint64_t, std::uint64_t> builder(c);
    if (c.rank0()) {
      builder.add_edge(1, 2, 10);
      builder.add_edge(2, 3, 11);
    }
    tg::dodgr<std::uint64_t, std::uint64_t> g(c);
    builder.build_into(g);
    auto base = tg::freeze(g);
    tg::overlay ov(base);

    // One genuinely-new edge (1,3) repeated out of order, a self-loop, and
    // an edge the base already stores.  Contributed by rank 0 only (stats
    // are global, so every rank sees the same outcome).
    tg::overlay<std::uint64_t, std::uint64_t>::edge_batch batch;
    if (c.rank0()) {
      batch = {
          {1, 3, 50}, {3, 1, 20}, {1, 3, 80},  // keep-least merges to ts 20
          {2, 2, 9},                           // self-loop: dropped
          {3, 2, 5},                           // stored edge wins: dropped
      };
    }
    const auto st = ov.ingest(batch);
    EXPECT_EQ(st.submitted, 5u);
    EXPECT_EQ(st.accepted, 1u);
    EXPECT_EQ(st.duplicate_batch, 2u);
    EXPECT_EQ(st.duplicate_base, 1u);
    EXPECT_EQ(st.self_loops, 1u);
    EXPECT_EQ(st.new_vertices, 0u);

    // The merged timestamp must be the LEAST (20): triangle edges are now
    // {10, 11, 20}, observable through half-open window counts.
    EXPECT_EQ(survey_metrics(c, ov).triangles, 1u);
    EXPECT_EQ(windowed_count(c, ov, 10, 21), 1u);
    EXPECT_EQ(windowed_count(c, ov, 10, 20), 0u);  // t1 exclusive: ts 20 out
    EXPECT_EQ(windowed_count(c, ov, 10, 51), 1u);  // 50/80 copies are gone
    EXPECT_EQ(windowed_count(c, ov, 20, 81), 0u);  // base edges filtered out

    // A later batch re-submitting a stored edge never overwrites it.
    tg::overlay<std::uint64_t, std::uint64_t>::edge_batch rebatch;
    if (c.rank0()) rebatch = {{1, 3, 7}};
    const auto st2 = ov.ingest(rebatch);
    EXPECT_EQ(st2.accepted, 0u);
    EXPECT_EQ(st2.duplicate_base, 1u);
    EXPECT_EQ(windowed_count(c, ov, 10, 21), 1u);  // still ts 20
    EXPECT_EQ(windowed_count(c, ov, 7, 12), 0u);   // ts 7 was NOT adopted
  });
}

// --- window boundaries + expiry ----------------------------------------------

TEST(StreamingOverlay, WindowBoundariesAndSlidingExpiry) {
  tc::runtime::run(2, [&](tc::communicator& c) {
    // Two disjoint triangles with known timestamps: {10,20,30} and
    // {100,110,120}.
    tg::graph_builder<std::uint64_t, std::uint64_t> builder(c);
    if (c.rank0()) {
      builder.add_edge(1, 2, 10);
      builder.add_edge(2, 3, 20);
      builder.add_edge(1, 3, 30);
      builder.add_edge(4, 5, 100);
      builder.add_edge(5, 6, 110);
      builder.add_edge(4, 6, 120);
    }
    tg::dodgr<std::uint64_t, std::uint64_t> g(c);
    builder.build_into(g);
    auto base = tg::freeze(g);
    tg::overlay ov(base);

    EXPECT_EQ(survey_metrics(c, ov).triangles, 2u);
    // Half-open [t0, t1): all three edges must be admitted.
    EXPECT_EQ(windowed_count(c, ov, 10, 31), 1u);
    EXPECT_EQ(windowed_count(c, ov, 10, 30), 0u);  // ts 30 excluded at t1
    EXPECT_EQ(windowed_count(c, ov, 11, 31), 0u);  // ts 10 excluded at t0
    EXPECT_EQ(windowed_count(c, ov, 10, 121), 2u);
    EXPECT_EQ(windowed_count(c, ov, 30, 121), 1u);  // only the late triangle
    EXPECT_EQ(windowed_count(c, ov, 0, 0), 0u);     // empty window
    EXPECT_EQ(windowed_count(c, ov, 121, 10), 0u);  // inverted window

    // Slide the window forward: expire everything before t=100.
    const auto st = ov.expire_before(100);
    EXPECT_EQ(st.expired_edges, 3u);
    EXPECT_EQ(survey_metrics(c, ov).triangles, 1u);
    EXPECT_EQ(windowed_count(c, ov, 100, 121), 1u);
    EXPECT_EQ(windowed_count(c, ov, 10, 31), 0u);

    // Expiry composes with ingest: re-adding one aged-out edge does not
    // resurrect the old triangle (its other two edges are gone).
    (void)ov.ingest({{{1, 2, 200}}});
    EXPECT_EQ(survey_metrics(c, ov).triangles, 1u);

    // The expired region compacts away: isolated vertices are dropped.
    auto fz = ov.compact();
    EXPECT_EQ(survey_metrics(c, fz).triangles, 1u);
    EXPECT_EQ(fz.census().num_vertices, 5u);  // 4,5,6 + re-added 1,2
  });
}

// --- compaction: rank reuse + snapshot round trip ----------------------------

TEST(StreamingOverlay, CompactionIdentityAndSnapshotRoundTrip) {
  const auto edges = er_edges(80, 400, 1234);
  const std::size_t base_n = edges.size() * 7 / 10;

  for (const auto ord :
       {tg::ordering_policy::degree, tg::ordering_policy::degeneracy}) {
    tc::runtime::run(3, [&](tc::communicator& c) {
      std::vector<edge_pair> applied(edges.begin(),
                                     edges.begin() + static_cast<std::ptrdiff_t>(base_n));
      auto base = freeze_edges(c, applied, ord);
      tg::overlay ov(base);

      // Two delta batches, then compact.
      const std::size_t mid = base_n + (edges.size() - base_n) / 2;
      for (const auto& [from, to] :
           {std::pair<std::size_t, std::size_t>{base_n, mid}, {mid, edges.size()}}) {
        tg::overlay<std::uint64_t, std::uint64_t>::edge_batch batch;
        for (std::size_t i = from; i < to; ++i) {
          batch.push_back({edges[i].first, edges[i].second,
                           edge_ts(edges[i].first, edges[i].second)});
        }
        (void)ov.ingest(batch, [](tg::vertex_id v) { return vertex_label(v); });
      }
      const auto om = survey_metrics(c, ov);

      auto fz = ov.compact();
      EXPECT_EQ(fz.ordering(), ord);  // ranks reused, ordering tag preserved
      const auto fm = survey_metrics(c, fz);
      // Compaction preserves the overlay's orientation exactly -- full
      // metric identity under BOTH ordering policies (sticky ranks).
      EXPECT_EQ(fm.triangles, om.triangles);
      EXPECT_EQ(fm.volume, om.volume);
      EXPECT_EQ(fm.messages, om.messages);

      applied.insert(applied.end(),
                     edges.begin() + static_cast<std::ptrdiff_t>(base_n), edges.end());
      auto rebuilt = freeze_edges(c, applied, ord);
      const auto rm = survey_metrics(c, rebuilt);
      EXPECT_EQ(fm.triangles, rm.triangles);
      if (ord == tg::ordering_policy::degree) {
        EXPECT_EQ(fm.volume, rm.volume);
        EXPECT_EQ(fm.messages, rm.messages);
      }

      // v3 snapshot round trip of the compacted graph.
      const std::string prefix =
          fresh_prefix(ord == tg::ordering_policy::degree ? "cmp-deg" : "cmp-dgn");
      (void)tg::save_snapshot(fz, prefix, tg::snapshot_codec::compressed);
      c.barrier();
      {
        auto loaded = tg::load_snapshot<std::uint64_t, std::uint64_t>(c, prefix);
        EXPECT_EQ(loaded.ordering(), ord);
        EXPECT_EQ(loaded.snapshot_id(), fz.snapshot_id());
        const auto lm = survey_metrics(c, loaded);
        EXPECT_EQ(lm.triangles, fm.triangles);
        EXPECT_EQ(lm.volume, fm.volume);
        EXPECT_EQ(lm.messages, fm.messages);
      }
      c.barrier();
      (void)std::remove(tg::snapshot_rank_path(prefix, c.rank()).c_str());
    });
  }
}

// --- compaction then further ingest ------------------------------------------

TEST(StreamingOverlay, IngestAfterCompactionKeepsIdentity) {
  const auto edges = er_edges(60, 260, 99);
  const std::size_t a = edges.size() / 2;
  const std::size_t b = a + (edges.size() - a) / 2;

  tc::runtime::run(2, [&](tc::communicator& c) {
    std::vector<edge_pair> applied(edges.begin(),
                                   edges.begin() + static_cast<std::ptrdiff_t>(a));
    auto base = freeze_edges(c, applied, tg::ordering_policy::degree);
    tg::overlay ov(base);
    tg::overlay<std::uint64_t, std::uint64_t>::edge_batch batch;
    for (std::size_t i = a; i < b; ++i) {
      batch.push_back({edges[i].first, edges[i].second,
                       edge_ts(edges[i].first, edges[i].second)});
    }
    (void)ov.ingest(batch, [](tg::vertex_id v) { return vertex_label(v); });

    // Compact, overlay the result, ingest the remaining delta: the steady-
    // state streaming loop.
    auto fz = ov.compact();
    tg::overlay ov2(fz);
    batch.clear();
    for (std::size_t i = b; i < edges.size(); ++i) {
      batch.push_back({edges[i].first, edges[i].second,
                       edge_ts(edges[i].first, edges[i].second)});
    }
    (void)ov2.ingest(batch, [](tg::vertex_id v) { return vertex_label(v); });

    applied.assign(edges.begin(), edges.end());
    auto rebuilt = freeze_edges(c, applied, tg::ordering_policy::degree);
    const auto om = survey_metrics(c, ov2);
    const auto rm = survey_metrics(c, rebuilt);
    EXPECT_EQ(om.triangles, rm.triangles);
    EXPECT_EQ(om.volume, rm.volume);
    EXPECT_EQ(om.messages, rm.messages);
  });
}
