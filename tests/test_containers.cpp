// Tests for the YGM-style distributed containers.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <numeric>
#include <string>
#include <utility>
#include <vector>

#include "comm/counting_set.hpp"
#include "comm/distributed_bag.hpp"
#include "comm/distributed_map.hpp"
#include "comm/runtime.hpp"

namespace tc = tripoll::comm;

TEST(DistributedMap, InsertAndGlobalSize) {
  tc::runtime::run(4, [](tc::communicator& c) {
    tc::distributed_map<std::uint64_t, std::string> map(c);
    c.barrier();
    // Every rank inserts a disjoint key range.
    for (std::uint64_t k = 0; k < 25; ++k) {
      const auto key = static_cast<std::uint64_t>(c.rank()) * 100 + k;
      map.async_insert(key, "v" + std::to_string(key));
    }
    c.barrier();
    EXPECT_EQ(map.global_size(), 100u);
  });
}

TEST(DistributedMap, KeysLandOnOwner) {
  tc::runtime::run(4, [](tc::communicator& c) {
    tc::distributed_map<std::uint64_t, int> map(c);
    c.barrier();
    if (c.rank0()) {
      for (std::uint64_t k = 0; k < 200; ++k) map.async_insert(k, 1);
    }
    c.barrier();
    map.for_all_local([&](const std::uint64_t& k, const int&) {
      EXPECT_EQ(map.owner(k), c.rank());
    });
    EXPECT_EQ(map.global_size(), 200u);
  });
}

TEST(DistributedMap, InsertOverwrites) {
  tc::runtime::run(3, [](tc::communicator& c) {
    tc::distributed_map<std::uint64_t, int> map(c);
    c.barrier();
    map.async_insert(7, c.rank());
    c.barrier();
    map.async_insert(7, 99);
    c.barrier();
    if (const int* v = map.local_find(7)) {
      EXPECT_EQ(*v, 99);
    }
    EXPECT_EQ(map.global_size(), 1u);
  });
}

namespace {

struct add_visitor {
  void operator()(const std::uint64_t& /*key*/, std::uint64_t& value, std::uint64_t by) {
    value += by;
  }
};

struct chain_visitor {
  // Visitor that chains a further async from inside the visit: the map value
  // update triggers a second visit to key+1 until `hops` runs out.
  void operator()(tc::communicator& c, const std::uint64_t& key, std::uint64_t& value,
                  tc::dist_handle<tc::distributed_map<std::uint64_t, std::uint64_t>> h,
                  std::uint32_t hops) {
    value += 1;
    if (hops > 0) {
      c.resolve(h).async_visit(key + 1, chain_visitor{}, h, hops - 1);
    }
  }
};

}  // namespace

TEST(DistributedMap, VisitAccumulates) {
  tc::runtime::run(4, [](tc::communicator& c) {
    tc::distributed_map<std::uint64_t, std::uint64_t> map(c);
    c.barrier();
    // All ranks bump the same 10 keys.
    for (std::uint64_t k = 0; k < 10; ++k) {
      map.async_visit(k, add_visitor{}, std::uint64_t{2});
    }
    c.barrier();
    std::uint64_t local_total = 0;
    map.for_all_local([&](const std::uint64_t&, const std::uint64_t& v) { local_total += v; });
    EXPECT_EQ(c.all_reduce_sum(local_total), 10u * 4u * 2u);
  });
}

TEST(DistributedMap, VisitCanChainAsyncs) {
  tc::runtime::run(4, [](tc::communicator& c) {
    tc::distributed_map<std::uint64_t, std::uint64_t> map(c);
    auto handle = c.register_object(map);
    c.barrier();
    if (c.rank0()) {
      map.async_visit(0, chain_visitor{}, handle, std::uint32_t{31});
    }
    c.barrier();
    EXPECT_EQ(map.global_size(), 32u);
    std::uint64_t local_total = 0;
    map.for_all_local([&](const std::uint64_t&, const std::uint64_t& v) { local_total += v; });
    EXPECT_EQ(c.all_reduce_sum(local_total), 32u);
  });
}

namespace {

struct exists_probe {
  void operator()(const std::string& /*key*/, std::uint64_t& value) { value += 1; }
};

struct bump_string_key {
  void operator()(const std::string& /*key*/, std::uint64_t& value) { value += 1; }
};

}  // namespace

TEST(DistributedMap, VisitIfExistsSkipsMissing) {
  tc::runtime::run(3, [](tc::communicator& c) {
    tc::distributed_map<std::string, std::uint64_t> map(c);
    c.barrier();
    if (c.rank0()) map.async_insert("present", 0);
    c.barrier();
    map.async_visit_if_exists("present", exists_probe{});
    map.async_visit_if_exists("absent", exists_probe{});
    c.barrier();
    EXPECT_EQ(map.global_size(), 1u);  // "absent" was not created
  });
}

TEST(DistributedMap, EraseRemovesGlobally) {
  tc::runtime::run(3, [](tc::communicator& c) {
    tc::distributed_map<std::uint64_t, int> map(c);
    c.barrier();
    if (c.rank0()) {
      for (std::uint64_t k = 0; k < 10; ++k) map.async_insert(k, 1);
    }
    c.barrier();
    if (c.rank() == 1) {
      for (std::uint64_t k = 0; k < 5; ++k) map.async_erase(k);
    }
    c.barrier();
    EXPECT_EQ(map.global_size(), 5u);
  });
}

TEST(DistributedMap, StringKeys) {
  tc::runtime::run(4, [](tc::communicator& c) {
    tc::distributed_map<std::string, std::uint64_t> map(c);
    c.barrier();
    const std::vector<std::string> domains{"amazon.com", "abebooks.com", "llnl.gov",
                                           "example.org"};
    for (const auto& d : domains) map.async_visit(d, bump_string_key{});
    c.barrier();
    EXPECT_EQ(map.global_size(), 4u);
    std::uint64_t local_total = 0;
    map.for_all_local([&](const std::string&, const std::uint64_t& v) { local_total += v; });
    EXPECT_EQ(c.all_reduce_sum(local_total), 16u);
  });
}

// --- counting set ---------------------------------------------------------------

TEST(CountingSet, CountsAcrossRanks) {
  tc::runtime::run(4, [](tc::communicator& c) {
    tc::counting_set<std::string> counts(c);
    c.barrier();
    counts.async_increment("a");
    counts.async_increment("b", 2);
    counts.finalize();
    auto all = counts.gather_all();
    EXPECT_EQ(all.at("a"), 4u);
    EXPECT_EQ(all.at("b"), 8u);
    EXPECT_EQ(counts.global_size(), 2u);
    EXPECT_EQ(counts.global_total(), 12u);
  });
}

TEST(CountingSet, CacheFlushPreservesTotals) {
  // Tiny cache forces many mid-stream flushes; totals must be exact.
  tc::runtime::run(3, [](tc::communicator& c) {
    tc::counting_set<std::uint64_t> counts(c, /*cache_capacity=*/4);
    c.barrier();
    for (std::uint64_t i = 0; i < 1000; ++i) counts.async_increment(i % 13);
    counts.finalize();
    auto all = counts.gather_all();
    std::uint64_t total = 0;
    for (auto& [k, n] : all) {
      EXPECT_LT(k, 13u);
      total += n;
    }
    EXPECT_EQ(total, 3000u);
  });
}

TEST(CountingSet, PairKeysForJointDistributions) {
  // Alg. 4 counts pairs (open_time, close_time).
  tc::runtime::run(4, [](tc::communicator& c) {
    tc::counting_set<std::pair<std::uint32_t, std::uint32_t>> counts(c);
    c.barrier();
    counts.async_increment({static_cast<std::uint32_t>(c.rank() % 2), 7u});
    counts.finalize();
    auto all = counts.gather_all();
    EXPECT_EQ(all.size(), 2u);
    EXPECT_EQ(all.at({0u, 7u}), 2u);
    EXPECT_EQ(all.at({1u, 7u}), 2u);
  });
}

TEST(CountingSet, GatherAllIdenticalOnEveryRank) {
  tc::runtime::run(3, [](tc::communicator& c) {
    tc::counting_set<std::uint64_t> counts(c);
    c.barrier();
    counts.async_increment(static_cast<std::uint64_t>(c.rank()));
    counts.finalize();
    auto all = counts.gather_all();
    EXPECT_EQ(all.size(), 3u);
    for (auto& [k, n] : all) EXPECT_EQ(n, 1u);
  });
}

// --- bag -----------------------------------------------------------------------------

TEST(DistributedBag, GlobalSizeAndBalance) {
  tc::runtime::run(4, [](tc::communicator& c) {
    tc::distributed_bag<std::uint64_t> bag(c);
    c.barrier();
    for (int i = 0; i < 100; ++i) bag.async_insert(static_cast<std::uint64_t>(i));
    c.barrier();
    EXPECT_EQ(bag.global_size(), 400u);
    // Round-robin placement: every rank holds exactly 100.
    EXPECT_EQ(bag.local_size(), 100u);
  });
}

TEST(DistributedBag, LocalInsertSkipsComm) {
  auto stats = tc::runtime::run(2, [](tc::communicator& c) {
    tc::distributed_bag<std::uint64_t> bag(c);
    c.barrier();
    const auto before = c.stats();
    for (int i = 0; i < 100; ++i) bag.local_insert(static_cast<std::uint64_t>(i));
    const auto delta = c.stats() - before;
    EXPECT_EQ(delta.messages_sent, 0u);  // purely local
    c.barrier();
    EXPECT_EQ(bag.global_size(), 200u);
  });
  (void)stats;
}

TEST(DistributedBag, StructPayload) {
  struct edge {
    std::uint64_t src;
    std::uint64_t dst;
    double weight;
  };
  tc::runtime::run(3, [](tc::communicator& c) {
    tc::distributed_bag<edge> bag(c);
    c.barrier();
    if (c.rank0()) {
      for (std::uint64_t i = 0; i < 30; ++i) bag.async_insert({i, i + 1, 0.5});
    }
    c.barrier();
    EXPECT_EQ(bag.global_size(), 30u);
    bag.for_all_local([](const edge& e) { EXPECT_EQ(e.dst, e.src + 1); });
  });
}
