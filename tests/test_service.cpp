// Tests for the resident survey service: protocol canonicalization, the
// snapshot content id, daemon round-trips, fused-batch bit-identity, the
// result cache, malformed-frame handling, graceful shutdown and a
// concurrent-client stress run.
//
// The daemon runs on the inproc runtime inside a std::thread; the test
// thread plays the clients over real Unix-domain sockets.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "comm/runtime.hpp"
#include "comm/service_client.hpp"
#include "gen/presets.hpp"
#include "graph/builder.hpp"
#include "graph/frozen.hpp"
#include "graph/overlay.hpp"
#include "graph/snapshot.hpp"
#include "serial/hash.hpp"
#include "service/survey_service.hpp"

namespace tc = tripoll::comm;
namespace tg = tripoll::graph;
namespace ts = tripoll::service;

namespace {

std::uint64_t edge_ts(tg::vertex_id u, tg::vertex_id v) {
  const auto lo = std::min(u, v);
  const auto hi = std::max(u, v);
  return tripoll::serial::hash_combine(tripoll::serial::splitmix64(lo), hi) % 1000000;
}

std::uint64_t vertex_label(tg::vertex_id v) {
  return tripoll::serial::splitmix64(v ^ 0x5EED) % 64;
}

/// Deterministic metadata-rich frozen preset, identical at any rank count.
tg::frozen_dodgr<std::uint64_t, std::uint64_t> build_frozen(tc::communicator& c) {
  tg::dodgr<std::uint64_t, std::uint64_t> g(c);
  tg::graph_builder<std::uint64_t, std::uint64_t> builder(c);
  tripoll::gen::for_preset_edges(c, "rmat", -4, [&](tg::vertex_id u, tg::vertex_id v) {
    builder.add_edge(u, v, edge_ts(u, v));
  });
  builder.build_into(g);
  g.for_all_local([](const tg::vertex_id& v, auto& rec) {
    rec.meta = vertex_label(v);
    for (auto& e : rec.adj) e.target_meta = vertex_label(e.target);
  });
  return tg::freeze(g);
}

ts::plan_unit unit(ts::unit_kind kind, std::uint64_t param = 0) {
  return ts::plan_unit{static_cast<std::uint64_t>(kind), param};
}

/// Run the fused-unit computation standalone (no daemon) and return rank
/// 0's globally-reduced results -- the bit-identity reference.
std::vector<ts::unit_result> reference_units(int ranks,
                                             const std::vector<ts::plan_unit>& units,
                                             std::uint64_t* triangles = nullptr) {
  std::vector<ts::unit_result> out;
  std::uint64_t tri = 0;
  tc::runtime::run(ranks, [&](tc::communicator& c) {
    auto g = build_frozen(c);
    std::uint64_t t = 0;
    auto r = ts::run_units(g, units, ts::kModePushPull, 0, &t);
    if (c.rank0()) {
      out = std::move(r);
      tri = t;
    }
  });
  if (triangles != nullptr) *triangles = tri;
  return out;
}

std::string fresh_socket_path() {
  static std::atomic<int> counter{0};
  return "/tmp/tripoll-svc-test-" + std::to_string(::getpid()) + "-" +
         std::to_string(counter.fetch_add(1)) + ".sock";
}

/// Serve a metadata-rich preset daemon on `ranks` inproc ranks in a
/// background thread and run `body(endpoint_spec)` as the client side.
/// `body` must stop the daemon (client shutdown or ts::request_stop()); as a
/// failure backstop the helper requests a stop before joining.
template <typename Body>
void with_daemon(int ranks, ts::service_options opts, Body&& body) {
  const std::string spec = "unix:" + fresh_socket_path();
  opts.endpoint_spec = spec;
  opts.install_signals = false;  // gtest owns the process's signal dispositions
  std::atomic<int> serve_rc{-1};
  std::thread daemon([&] {
    tc::runtime::run(ranks, [&](tc::communicator& c) {
      auto g = build_frozen(c);
      ts::survey_service d(g, opts);
      const int rc = d.serve();
      if (c.rank0()) serve_rc.store(rc);
    });
  });
  try {
    body(spec);
  } catch (...) {
    ts::request_stop();
    daemon.join();
    throw;
  }
  daemon.join();
  EXPECT_EQ(serve_rc.load(), 0);
}

ts::service_options sequential_opts() {
  ts::service_options o;
  o.window_ms = 0;  // batch every pending plan immediately
  o.max_batch = 1;
  return o;
}

}  // namespace

// --- protocol ----------------------------------------------------------------

TEST(ServiceProtocol, EndpointGrammar) {
  const auto ux = ts::endpoint::parse("unix:/tmp/x.sock");
  EXPECT_FALSE(ux.tcp);
  EXPECT_EQ(ux.path, "/tmp/x.sock");
  EXPECT_EQ(ux.describe(), "unix:/tmp/x.sock");

  const auto bare = ts::endpoint::parse("/tmp/y.sock");
  EXPECT_FALSE(bare.tcp);
  EXPECT_EQ(bare.path, "/tmp/y.sock");

  const auto tcp = ts::endpoint::parse("tcp:127.0.0.1:9001");
  EXPECT_TRUE(tcp.tcp);
  EXPECT_EQ(tcp.host, "127.0.0.1");
  EXPECT_EQ(tcp.port, 9001);
  EXPECT_EQ(tcp.describe(), "tcp:127.0.0.1:9001");

  EXPECT_THROW((void)ts::endpoint::parse("tcp:nohost"), std::invalid_argument);
  EXPECT_THROW((void)ts::endpoint::parse("tcp:h:99999"), std::invalid_argument);
  EXPECT_THROW((void)ts::endpoint::parse("unix:"), std::invalid_argument);
}

TEST(ServiceProtocol, CanonicalizeSortsDedupesAndPins) {
  ts::plan_request req;
  req.mode = ts::kModePushOnly;
  req.scope = ts::kScopeThreads;
  req.vertex_proj = ts::kProjIdentity;
  req.units = {unit(ts::unit_kind::closure_digest, 7),  // param zeroed
               unit(ts::unit_kind::count, 3),           // param zeroed
               unit(ts::unit_kind::hot_count, 9),
               unit(ts::unit_kind::count, 5)};          // dup after zeroing
  ts::canonicalize(req);
  ASSERT_EQ(req.units.size(), 3u);
  EXPECT_EQ(req.units[0], unit(ts::unit_kind::count));
  EXPECT_EQ(req.units[1], unit(ts::unit_kind::hot_count, 9));
  EXPECT_EQ(req.units[2], unit(ts::unit_kind::closure_digest));
  EXPECT_EQ(req.mode, ts::kModeDaemonDefault);
  EXPECT_EQ(req.scope, ts::kScopeGlobal);
  EXPECT_EQ(req.vertex_proj, ts::kProjAutomatic);

  // Two wordings of the same computation share one canonical key.
  ts::plan_request other;
  other.units = {unit(ts::unit_kind::hot_count, 9), unit(ts::unit_kind::count),
                 unit(ts::unit_kind::count), unit(ts::unit_kind::closure_digest)};
  ts::canonicalize(other);
  EXPECT_EQ(ts::canonical_plan_key(req, 42), ts::canonical_plan_key(other, 42));
  EXPECT_NE(ts::canonical_plan_key(req, 42), ts::canonical_plan_key(other, 43));
}

TEST(ServiceProtocol, ValidateRejectsBadPlans) {
  ts::error_code code{};
  ts::plan_request empty;
  EXPECT_NE(ts::validate_request(empty, 8, 8, code), "");
  EXPECT_EQ(code, ts::error_code::bad_request);

  ts::plan_request unknown;
  unknown.units = {ts::plan_unit{99, 0}};
  EXPECT_NE(ts::validate_request(unknown, 8, 8, code), "");
  EXPECT_EQ(code, ts::error_code::bad_request);

  ts::plan_request needs_meta;
  needs_meta.units = {unit(ts::unit_kind::hot_count, 5)};
  EXPECT_EQ(ts::validate_request(needs_meta, 8, 8, code), "");
  EXPECT_NE(ts::validate_request(needs_meta, 0, 0, code), "");
  EXPECT_EQ(code, ts::error_code::unsupported_unit);

  ts::plan_request plain;
  plain.units = {unit(ts::unit_kind::count)};
  EXPECT_EQ(ts::validate_request(plain, 0, 0, code), "");
}

TEST(ServiceProtocol, WindowUnitsCanonicalizeAndValidate) {
  const auto p = ts::pack_window_param(123, 456);
  EXPECT_EQ(ts::window_param_t0(p), 123u);
  EXPECT_EQ(ts::window_param_t1(p), 456u);

  // The window param carries [t0, t1) and must survive canonicalization;
  // equal windows dedup like any other unit.
  ts::plan_request req;
  req.units = {unit(ts::unit_kind::window, p), unit(ts::unit_kind::count, 9),
               unit(ts::unit_kind::window, p)};
  ts::canonicalize(req);
  ASSERT_EQ(req.units.size(), 2u);
  EXPECT_EQ(req.units[0], unit(ts::unit_kind::count));
  EXPECT_EQ(req.units[1], unit(ts::unit_kind::window, p));

  // Distinct windows are distinct units (and distinct cache keys).
  ts::plan_request two;
  two.units = {unit(ts::unit_kind::window, ts::pack_window_param(0, 10)),
               unit(ts::unit_kind::window, ts::pack_window_param(0, 20))};
  ts::canonicalize(two);
  EXPECT_EQ(two.units.size(), 2u);

  // Windows filter on stored edge metadata, so a metadata-free snapshot
  // cannot serve them.
  ts::error_code code{};
  ts::plan_request w;
  w.units = {unit(ts::unit_kind::window, p)};
  EXPECT_EQ(ts::validate_request(w, 8, 8, code), "");
  EXPECT_NE(ts::validate_request(w, 0, 0, code), "");
  EXPECT_EQ(code, ts::error_code::unsupported_unit);
}

// --- snapshot content id -----------------------------------------------------

TEST(SnapshotContentId, StableAcrossCodecsAndStamped) {
  const std::string raw_prefix = "/tmp/tripoll-svc-id-raw-" + std::to_string(::getpid());
  const std::string v3_prefix = "/tmp/tripoll-svc-id-v3-" + std::to_string(::getpid());
  std::uint64_t id_fresh = 0, id_raw_loaded = 0, id_v3_loaded = 0, id_peeked = 0;
  tc::runtime::run(1, [&](tc::communicator& c) {
    auto g = build_frozen(c);
    id_fresh = g.snapshot_id();
    (void)tg::save_snapshot(g, raw_prefix, tg::snapshot_codec::raw);
    (void)tg::save_snapshot(g, v3_prefix, tg::snapshot_codec::compressed);
    auto raw_loaded = tg::load_snapshot<std::uint64_t, std::uint64_t>(c, raw_prefix);
    auto v3_loaded = tg::load_snapshot<std::uint64_t, std::uint64_t>(c, v3_prefix);
    id_raw_loaded = raw_loaded.snapshot_id();  // recomputed from the columns
    id_v3_loaded = v3_loaded.snapshot_id();    // adopted from the v3 header
    id_peeked = tg::peek_snapshot(tg::snapshot_rank_path(v3_prefix, 0)).content_id;
  });
  EXPECT_NE(id_fresh, 0u);
  EXPECT_EQ(id_raw_loaded, id_fresh);
  EXPECT_EQ(id_v3_loaded, id_fresh);
  EXPECT_EQ(id_peeked, id_fresh);
  // Raw (v2) headers keep the id word zeroed for byte-stability.
  EXPECT_EQ(tg::peek_snapshot(tg::snapshot_rank_path(raw_prefix, 0)).content_id, 0u);
  (void)std::remove(tg::snapshot_rank_path(raw_prefix, 0).c_str());
  (void)std::remove(tg::snapshot_rank_path(v3_prefix, 0).c_str());
}

// --- daemon round trips ------------------------------------------------------

TEST(SurveyService, RoundTripMatchesStandalone) {
  const std::vector<ts::plan_unit> units = {
      unit(ts::unit_kind::count), unit(ts::unit_kind::hot_count, 500000),
      unit(ts::unit_kind::closure_digest), unit(ts::unit_kind::max_label)};
  std::uint64_t ref_triangles = 0;
  const auto ref = reference_units(2, units, &ref_triangles);
  ASSERT_EQ(ref.size(), units.size());
  EXPECT_EQ(ref[0].fires, ref_triangles);

  with_daemon(2, sequential_opts(), [&](const std::string& spec) {
    tc::service_client client(spec);
    ts::plan_request req;
    req.units = units;
    const auto resp = client.submit(req);
    EXPECT_EQ(resp.engine_triangles, ref_triangles);
    ASSERT_EQ(resp.units.size(), ref.size());
    for (std::size_t i = 0; i < ref.size(); ++i) {
      EXPECT_EQ(resp.units[i].kind, ref[i].kind) << "unit " << i;
      EXPECT_EQ(resp.units[i].param, ref[i].param) << "unit " << i;
      EXPECT_EQ(resp.units[i].fires, ref[i].fires) << "unit " << i;
      EXPECT_EQ(resp.units[i].value, ref[i].value) << "unit " << i;
    }
    client.shutdown();
  });
}

TEST(SurveyService, FusedBatchBitIdenticalToSequential) {
  // Four distinct plans.  Sequential daemon: one traversal per plan.
  const std::vector<std::vector<ts::plan_unit>> plans = {
      {unit(ts::unit_kind::count)},
      {unit(ts::unit_kind::hot_count, 500000)},
      {unit(ts::unit_kind::closure_digest), unit(ts::unit_kind::count)},
      {unit(ts::unit_kind::max_label)}};

  std::vector<std::vector<std::byte>> sequential(plans.size());
  with_daemon(1, sequential_opts(), [&](const std::string& spec) {
    tc::service_client client(spec);
    for (std::size_t i = 0; i < plans.size(); ++i) {
      ts::plan_request req;
      req.units = plans[i];
      sequential[i] = client.submit_raw(req);
    }
    client.shutdown();
  });

  // Fused daemon: a wide admission window holds all four plans until the
  // batch is full, so ONE traversal serves them all.
  ts::service_options fused_opts;
  fused_opts.window_ms = 10000;
  fused_opts.max_batch = plans.size();
  fused_opts.cache_capacity = 0;  // isolate fusion from caching
  std::vector<std::vector<std::byte>> fused(plans.size());
  with_daemon(1, fused_opts, [&](const std::string& spec) {
    std::vector<std::thread> clients;
    for (std::size_t i = 0; i < plans.size(); ++i) {
      clients.emplace_back([&, i] {
        tc::service_client client(spec);
        ts::plan_request req;
        req.units = plans[i];
        fused[i] = client.submit_raw(req);
      });
    }
    for (auto& t : clients) t.join();
    tc::service_client control(spec);
    const auto stats = control.stats();
    EXPECT_EQ(stats.plans_served, plans.size());
    EXPECT_EQ(stats.traversals, 1u);  // the whole batch shared one traversal
    EXPECT_EQ(stats.batches, 1u);
    EXPECT_EQ(stats.max_batch, plans.size());
    control.shutdown();
  });

  for (std::size_t i = 0; i < plans.size(); ++i) {
    EXPECT_EQ(fused[i], sequential[i]) << "plan " << i << " reply bytes diverged";
  }
}

TEST(SurveyService, CacheHitReturnsIdenticalBytesWithoutTraversal) {
  with_daemon(1, sequential_opts(), [&](const std::string& spec) {
    tc::service_client client(spec);
    ts::plan_request req;
    req.units = {unit(ts::unit_kind::count), unit(ts::unit_kind::closure_digest)};
    const auto cold = client.submit_raw(req);

    // A differently-worded equivalent plan must hit the same entry.
    ts::plan_request reworded;
    reworded.mode = ts::kModePushOnly;  // canonicalized away
    reworded.units = {unit(ts::unit_kind::closure_digest, 3),
                      unit(ts::unit_kind::count), unit(ts::unit_kind::count)};
    const auto hit = client.submit_raw(reworded);
    EXPECT_EQ(hit, cold);

    const auto stats = client.stats();
    EXPECT_EQ(stats.plans_served, 2u);
    EXPECT_EQ(stats.cache_hits, 1u);
    EXPECT_EQ(stats.cache_misses, 1u);
    EXPECT_EQ(stats.traversals, 1u);  // the hit did NOT re-traverse
    client.shutdown();
  });
}

TEST(SurveyService, LruEvictionReTraverses) {
  ts::service_options opts = sequential_opts();
  opts.cache_capacity = 1;
  with_daemon(1, opts, [&](const std::string& spec) {
    tc::service_client client(spec);
    ts::plan_request a, b;
    a.units = {unit(ts::unit_kind::count)};
    b.units = {unit(ts::unit_kind::max_label)};
    const auto a_cold = client.submit_raw(a);
    (void)client.submit_raw(b);          // evicts a
    const auto a_again = client.submit_raw(a);  // miss: re-traverses
    EXPECT_EQ(a_again, a_cold);          // but still the same bytes
    const auto stats = client.stats();
    EXPECT_EQ(stats.cache_hits, 0u);
    EXPECT_EQ(stats.cache_misses, 3u);
    EXPECT_EQ(stats.traversals, 3u);
    client.shutdown();
  });
}

TEST(SurveyService, WindowUnitsRoundTrip) {
  // Every preset edge timestamp lives in [0, 1000000), so the wide window
  // admits every triangle and must agree with the plain count.
  const auto wide = ts::pack_window_param(0, 1000000);
  const auto narrow = ts::pack_window_param(200000, 800000);
  const std::vector<ts::plan_unit> units = {unit(ts::unit_kind::count),
                                            unit(ts::unit_kind::window, wide),
                                            unit(ts::unit_kind::window, narrow)};
  std::uint64_t ref_triangles = 0;
  const auto ref = reference_units(2, units, &ref_triangles);
  ASSERT_EQ(ref.size(), units.size());
  EXPECT_EQ(ref[0].fires, ref_triangles);
  EXPECT_EQ(ref[1].fires, ref_triangles);          // all-inclusive window
  EXPECT_GT(ref[2].fires, 0u);                     // narrow window: strictly
  EXPECT_LT(ref[2].fires, ref[1].fires);           // between empty and all

  with_daemon(2, sequential_opts(), [&](const std::string& spec) {
    tc::service_client client(spec);
    ts::plan_request req;
    req.units = units;
    const auto resp = client.submit(req);
    EXPECT_EQ(resp.engine_triangles, ref_triangles);
    ASSERT_EQ(resp.units.size(), ref.size());
    for (std::size_t i = 0; i < ref.size(); ++i) {
      EXPECT_EQ(resp.units[i].kind, ref[i].kind) << "unit " << i;
      EXPECT_EQ(resp.units[i].param, ref[i].param) << "unit " << i;
      EXPECT_EQ(resp.units[i].fires, ref[i].fires) << "unit " << i;
      EXPECT_EQ(resp.units[i].value, ref[i].value) << "unit " << i;
    }

    // A window-only plan runs no unwindowed traversal, and its reply must
    // not leak one from a co-batched plan: engine_triangles pins to 0.
    ts::plan_request only;
    only.units = {unit(ts::unit_kind::window, narrow)};
    const auto wresp = client.submit(only);
    EXPECT_EQ(wresp.engine_triangles, 0u);
    ASSERT_EQ(wresp.units.size(), 1u);
    EXPECT_EQ(wresp.units[0].fires, ref[2].fires);

    // Round one: base traversal + two distinct windows = 3.  Round two:
    // one window = 1.
    const auto stats = client.stats();
    EXPECT_EQ(stats.batches, 2u);
    EXPECT_EQ(stats.traversals, 4u);
    client.shutdown();
  });
}

TEST(SurveyService, OverlayInvalidationEvictsStaleEntries) {
  // Serve an overlay, mutate it between serve() sessions, and serve again
  // on the same resident core: the stale cache entry must be evicted (and
  // counted), and the re-submitted plan must see the new snapshot.
  ts::service_options opts = sequential_opts();
  const std::string spec = "unix:" + fresh_socket_path();
  opts.endpoint_spec = spec;
  opts.install_signals = false;
  std::atomic<int> phase{0};
  std::atomic<int> serve_rc{-1};
  std::thread daemon([&] {
    tc::runtime::run(1, [&](tc::communicator& c) {
      auto base = build_frozen(c);
      tg::overlay ov(base);
      ts::survey_service d(ov, opts);
      int rc = d.serve();
      // Mutate strictly between sessions (no follower is parked in a
      // serve() broadcast), closing one new triangle on fresh vertices.
      tg::overlay<std::uint64_t, std::uint64_t>::edge_batch batch = {
          {901, 902, 123}, {902, 903, 456}, {901, 903, 789}};
      (void)ov.ingest(batch, [](tg::vertex_id v) { return vertex_label(v); });
      phase.store(1);
      rc |= d.serve();
      if (c.rank0()) serve_rc.store(rc);
    });
  });
  try {
    ts::plan_request req;
    req.units = {unit(ts::unit_kind::count)};

    tc::service_client a(spec);
    const auto cold = a.submit_raw(req);
    const auto hit = a.submit_raw(req);
    EXPECT_EQ(hit, cold);
    const auto s1 = a.stats();
    EXPECT_EQ(s1.cache_hits, 1u);
    EXPECT_EQ(s1.invalidation_evictions, 0u);
    const std::uint64_t sid1 = s1.snapshot_id;
    a.shutdown();  // ends session one; the core (and its cache) stay resident

    while (phase.load() < 1) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    tc::service_client b(spec);
    const auto warm = b.submit_raw(req);
    EXPECT_NE(warm, cold);  // new snapshot id, one more triangle
    const auto s2 = b.stats();
    EXPECT_NE(s2.snapshot_id, sid1);
    EXPECT_GE(s2.invalidation_evictions, 1u);
    EXPECT_EQ(s2.cache_hits, 1u);    // stats persist across sessions...
    EXPECT_EQ(s2.cache_misses, 2u);  // ...and the resubmit was a miss
    b.shutdown();
  } catch (...) {
    ts::request_stop();
    while (phase.load() < 1) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    ts::request_stop();
    daemon.join();
    throw;
  }
  daemon.join();
  EXPECT_EQ(serve_rc.load(), 0);
}

// --- robustness --------------------------------------------------------------

namespace {

/// Write raw bytes on a fresh connection; read back one frame header (and
/// body) if the daemon answers.  Returns reply type, or -1 on EOF.
int raw_exchange(const std::string& spec, const std::vector<std::byte>& wire,
                 std::vector<std::byte>* reply_body = nullptr) {
  const int fd = ts::dial_endpoint(ts::endpoint::parse(spec), 10.0);
  std::size_t off = 0;
  while (off < wire.size()) {
    const ssize_t w = ::send(fd, wire.data() + off, wire.size() - off, MSG_NOSIGNAL);
    if (w <= 0) break;
    off += static_cast<std::size_t>(w);
  }
  std::byte hdr[tripoll::serial::frame_header::kWireSize];
  std::size_t got = 0;
  while (got < sizeof(hdr)) {
    const ssize_t r = ::recv(fd, hdr + got, sizeof(hdr) - got, 0);
    if (r <= 0) {
      ::close(fd);
      return -1;
    }
    got += static_cast<std::size_t>(r);
  }
  const auto h = tripoll::serial::frame_header::decode(hdr);
  std::vector<std::byte> body(h.body_len);
  got = 0;
  while (got < body.size()) {
    const ssize_t r = ::recv(fd, body.data() + got, body.size() - got, 0);
    if (r <= 0) break;
    got += static_cast<std::size_t>(r);
  }
  if (reply_body != nullptr) *reply_body = std::move(body);
  ::close(fd);
  return h.type;
}

std::vector<std::byte> frame_bytes(std::uint8_t type, std::uint32_t body_len,
                                   const std::vector<std::byte>& body = {}) {
  tripoll::serial::frame_header h;
  h.body_len = body_len;
  h.type = type;
  std::vector<std::byte> out;
  out.reserve(tripoll::serial::frame_header::kWireSize + body.size());
  out.resize(tripoll::serial::frame_header::kWireSize);
  h.encode(out.data());
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

ts::error_code reply_error_code(const std::vector<std::byte>& body) {
  ts::error_reply err;
  tripoll::serial::buffer_reader r(body.data(), body.size());
  tripoll::serial::unpack(r, err);
  return static_cast<ts::error_code>(err.code);
}

}  // namespace

TEST(SurveyService, MalformedFramesAreRejectedWithoutKillingTheDaemon) {
  with_daemon(1, sequential_opts(), [&](const std::string& spec) {
    // Unknown frame type: ERROR(bad_frame), connection closed.
    std::vector<std::byte> body;
    EXPECT_EQ(raw_exchange(spec, frame_bytes(0x99, 0), &body),
              static_cast<int>(ts::frame_type::error));
    EXPECT_EQ(reply_error_code(body), ts::error_code::bad_frame);

    // Oversized announcement: refused before the body is read.
    EXPECT_EQ(raw_exchange(
                  spec, frame_bytes(static_cast<std::uint8_t>(
                                        ts::frame_type::submit_plan),
                                    static_cast<std::uint32_t>(ts::kMaxBodyBytes + 1)),
                  &body),
              static_cast<int>(ts::frame_type::error));
    EXPECT_EQ(reply_error_code(body), ts::error_code::oversized);

    // Garbage SUBMIT_PLAN body: ERROR(bad_request).
    const std::vector<std::byte> garbage(16, std::byte{0xEE});
    EXPECT_EQ(raw_exchange(spec,
                           frame_bytes(static_cast<std::uint8_t>(
                                           ts::frame_type::submit_plan),
                                       static_cast<std::uint32_t>(garbage.size()),
                                       garbage),
                           &body),
              static_cast<int>(ts::frame_type::error));
    EXPECT_EQ(reply_error_code(body), ts::error_code::bad_request);

    // A half-written header followed by a hangup must not wedge anything.
    {
      const int fd = ts::dial_endpoint(ts::endpoint::parse(spec), 10.0);
      const std::byte half[3] = {std::byte{1}, std::byte{2}, std::byte{3}};
      (void)::send(fd, half, sizeof(half), MSG_NOSIGNAL);
      ::close(fd);
    }

    // Unsupported unit on this snapshot type never reaches the engine.
    tc::service_client probe(spec);
    ts::plan_request bad;
    bad.units = {ts::plan_unit{77, 0}};
    EXPECT_THROW((void)probe.submit(bad), tc::service_error);

    // The daemon is still fully alive for a valid plan.
    ts::plan_request ok;
    ok.units = {unit(ts::unit_kind::count)};
    const auto resp = probe.submit(ok);
    EXPECT_GT(resp.units.at(0).fires, 0u);
    probe.shutdown();
  });
}

TEST(SurveyService, ShutdownDrainsQueuedPlansWithError) {
  ts::service_options opts;
  opts.window_ms = 60000;   // nothing batches on its own
  opts.max_batch = 1000;
  with_daemon(1, opts, [&](const std::string& spec) {
    std::atomic<bool> queued_got_shutdown_error{false};
    std::thread queued([&] {
      tc::service_client client(spec);
      ts::plan_request req;
      req.units = {unit(ts::unit_kind::count)};
      try {
        (void)client.submit(req);
      } catch (const tc::service_error& e) {
        queued_got_shutdown_error.store(e.code() == ts::error_code::shutting_down);
      }
    });
    // Let the submission reach the daemon's pending queue, then shut down.
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    tc::service_client control(spec);
    control.shutdown();
    queued.join();
    EXPECT_TRUE(queued_got_shutdown_error.load());
  });
}

TEST(SurveyService, StopRequestDrainsLikeASignal) {
  // request_stop() is exactly what the SIGTERM/SIGINT handler calls, so this
  // covers the drain path; delivery of the OS signal itself is exercised by
  // tests/socket_smoke.sh against a real daemon process.
  ts::service_options opts = sequential_opts();
  with_daemon(1, opts, [&](const std::string& spec) {
    tc::service_client client(spec);
    ts::plan_request req;
    req.units = {unit(ts::unit_kind::count)};
    (void)client.submit(req);
    ts::request_stop();
  });
}

TEST(SurveyService, ConcurrentClientStress) {
  const std::vector<std::vector<ts::plan_unit>> pool = {
      {unit(ts::unit_kind::count)},
      {unit(ts::unit_kind::hot_count, 250000)},
      {unit(ts::unit_kind::hot_count, 750000)},
      {unit(ts::unit_kind::closure_digest)},
      {unit(ts::unit_kind::max_label), unit(ts::unit_kind::count)}};

  // One reference traversal over the union yields every unit's expected
  // numbers (unit results are independent of batch composition).
  std::vector<ts::plan_unit> all;
  for (const auto& p : pool) all.insert(all.end(), p.begin(), p.end());
  std::sort(all.begin(), all.end());
  all.erase(std::unique(all.begin(), all.end()), all.end());
  const auto ref = reference_units(1, all);
  std::map<std::pair<std::uint64_t, std::uint64_t>, ts::unit_result> expected;
  for (const auto& r : ref) expected[{r.kind, r.param}] = r;

  ts::service_options opts;
  opts.window_ms = 1;
  opts.max_batch = 8;
  with_daemon(1, opts, [&](const std::string& spec) {
    constexpr int kClients = 8;
    constexpr int kRounds = 5;
    std::atomic<int> mismatches{0};
    std::vector<std::thread> clients;
    for (int t = 0; t < kClients; ++t) {
      clients.emplace_back([&, t] {
        tc::service_client client(spec);
        for (int round = 0; round < kRounds; ++round) {
          ts::plan_request req;
          req.units = pool[static_cast<std::size_t>(t + round) % pool.size()];
          const auto resp = client.submit(req);
          ts::plan_request canon = req;
          ts::canonicalize(canon);
          if (resp.units.size() != canon.units.size()) {
            mismatches.fetch_add(1);
            continue;
          }
          for (std::size_t i = 0; i < resp.units.size(); ++i) {
            const auto& want = expected.at({canon.units[i].kind, canon.units[i].param});
            if (resp.units[i].fires != want.fires ||
                resp.units[i].value != want.value) {
              mismatches.fetch_add(1);
            }
          }
        }
      });
    }
    for (auto& th : clients) th.join();
    EXPECT_EQ(mismatches.load(), 0);

    tc::service_client control(spec);
    const auto stats = control.stats();
    EXPECT_EQ(stats.plans_served, static_cast<std::uint64_t>(kClients * kRounds));
    EXPECT_EQ(stats.cache_hits + stats.cache_misses, stats.plans_served);
    // Every traversal came from a batch; caching plus fusion must have
    // collapsed the 40 plans into fewer traversals than plans.
    EXPECT_EQ(stats.traversals, stats.batches);
    EXPECT_LT(stats.traversals, stats.plans_served);
    control.shutdown();
  });
}

TEST(SurveyService, TcpEndpointServes) {
  // Port 0 lets the kernel choose; the daemon resolves it, but the client
  // needs a concrete port -- so bind a fixed high port derived from the pid
  // and retry on collision.
  for (int attempt = 0; attempt < 4; ++attempt) {
    const std::uint16_t port =
        static_cast<std::uint16_t>(20000 + (::getpid() + attempt * 131) % 20000);
    bool served = false;
    ts::service_options tcp_opts = sequential_opts();
    tcp_opts.endpoint_spec = "tcp:127.0.0.1:" + std::to_string(port);
    tcp_opts.install_signals = false;
    std::atomic<int> serve_rc{-1};
    std::thread daemon([&] {
      tc::runtime::run(1, [&](tc::communicator& c) {
        auto g = build_frozen(c);
        ts::survey_service d(g, tcp_opts);
        serve_rc.store(d.serve());
      });
    });
    try {
      tc::service_client client(tcp_opts.endpoint_spec, 10.0);
      ts::plan_request req;
      req.units = {unit(ts::unit_kind::count)};
      const auto resp = client.submit(req);
      EXPECT_GT(resp.units.at(0).fires, 0u);
      client.shutdown();
      served = true;
    } catch (...) {
      ts::request_stop();
    }
    daemon.join();
    if (served) {
      EXPECT_EQ(serve_rc.load(), 0);
      return;
    }
  }
  FAIL() << "could not bind any candidate TCP port";
}
