#!/usr/bin/env bash
# Cross-backend multi-process smoke test (ctest: socket_smoke).
#
# Launches tripoll_cli N times as genuinely separate OS processes joined
# through TRIPOLL_RANK/TRIPOLL_NRANKS/TRIPOLL_SOCKET_DIR (the external-
# launcher path of the socket backend) and asserts that triangle counts and
# per-phase survey metrics are bit-identical to the inproc threads-as-ranks
# run on the rmat/temporal/web ablation presets, plus a file-based count
# through the fork launcher (`--backend socket` without TRIPOLL_RANK).
#
# Usage: socket_smoke.sh <path-to-tripoll_cli>
set -u
CLI="${1:?usage: socket_smoke.sh <tripoll_cli>}"
RANKS=4
DELTA="${TRIPOLL_SMOKE_DELTA:--2}"

work="$(mktemp -d "${TMPDIR:-/tmp}/tripoll-smoke-XXXXXX")"
trap 'rm -rf "$work"' EXIT
fail=0

# Run one CLI invocation as $RANKS separate processes; prints rank 0's stdout.
run_socket_external() {
  local sockdir="$work/sock.$$.$RANDOM"
  mkdir -p "$sockdir"
  local pids=() r
  for r in $(seq 0 $((RANKS - 1))); do
    TRIPOLL_RANK=$r TRIPOLL_NRANKS=$RANKS TRIPOLL_SOCKET_DIR="$sockdir" \
      "$CLI" "$@" --backend socket >"$work/out.$r" 2>"$work/err.$r" &
    pids+=($!)
  done
  local status=0 p
  for p in "${pids[@]}"; do
    wait "$p" || status=1
  done
  if [ "$status" -ne 0 ]; then
    echo "socket_smoke: rank process failed for: $*" >&2
    cat "$work"/err.* >&2
    return 1
  fi
  cat "$work/out.0"
}

echo "== preset surveys: inproc vs $RANKS socket processes (delta $DELTA) =="
for preset in rmat temporal web; do
  "$CLI" preset "$preset" "$RANKS" "$DELTA" >"$work/inproc.$preset" || fail=1
  run_socket_external preset "$preset" "$RANKS" "$DELTA" >"$work/socket.$preset" || fail=1
  if diff -u "$work/inproc.$preset" "$work/socket.$preset"; then
    echo "preset $preset: IDENTICAL"
  else
    echo "preset $preset: MISMATCH between inproc and socket backends" >&2
    fail=1
  fi
done

echo "== projected fused survey plan: inproc vs $RANKS socket processes =="
"$CLI" plan rmat "$RANKS" "$DELTA" >"$work/inproc.plan" || fail=1
run_socket_external plan rmat "$RANKS" "$DELTA" >"$work/socket.plan" || fail=1
if diff -u "$work/inproc.plan" "$work/socket.plan"; then
  echo "plan rmat: IDENTICAL"
else
  echo "plan rmat: MISMATCH between inproc and socket backends" >&2
  fail=1
fi

echo "== file-based count through the fork launcher =="
"$CLI" gen rmat 10 "$work/g.txt" >/dev/null || fail=1
inproc_count="$("$CLI" count "$work/g.txt" "$RANKS" | grep -o 'triangles [0-9]*')"
socket_count="$("$CLI" count "$work/g.txt" "$RANKS" --backend socket | grep -o 'triangles [0-9]*')"
echo "inproc: $inproc_count   socket: $socket_count"
if [ -z "$inproc_count" ] || [ "$inproc_count" != "$socket_count" ]; then
  echo "socket_smoke: triangle count mismatch" >&2
  fail=1
fi

# Both orderings must agree across backends as well.
ordering_inproc="$("$CLI" count "$work/g.txt" "$RANKS" --ordering degeneracy | grep -o 'triangles [0-9]*')"
ordering_socket="$("$CLI" count "$work/g.txt" "$RANKS" --ordering degeneracy --backend socket | grep -o 'triangles [0-9]*')"
echo "degeneracy inproc: $ordering_inproc   socket: $ordering_socket"
if [ -z "$ordering_inproc" ] || [ "$ordering_inproc" != "$ordering_socket" ]; then
  echo "socket_smoke: degeneracy-ordering count mismatch" >&2
  fail=1
fi

echo "== frozen CSR storage: inproc vs $RANKS socket processes =="
"$CLI" frozen rmat "$RANKS" "$DELTA" >"$work/inproc.frozen" || fail=1
run_socket_external frozen rmat "$RANKS" "$DELTA" >"$work/socket.frozen" || fail=1
if diff -u "$work/inproc.frozen" "$work/socket.frozen"; then
  echo "frozen rmat: IDENTICAL"
else
  echo "frozen rmat: MISMATCH between inproc and socket backends" >&2
  fail=1
fi

echo "== snapshot save (inproc) / load (both backends, mmap in forked ranks) =="
"$CLI" snapshot save "$work/g.txt" "$work/snap" "$RANKS" --ordering degeneracy \
  >"$work/snap.save" || fail=1
"$CLI" snapshot load "$work/snap" "$RANKS" >"$work/inproc.snapload" || fail=1
run_socket_external snapshot load "$work/snap" "$RANKS" >"$work/socket.snapload" || fail=1
if diff -u "$work/inproc.snapload" "$work/socket.snapload"; then
  echo "snapshot load: IDENTICAL"
else
  echo "snapshot load: MISMATCH between inproc and socket backends" >&2
  fail=1
fi
# The loaded survey must agree with the straight degeneracy-ordered count.
snap_count="$(grep -o 'triangles [0-9]*' "$work/inproc.snapload" | head -1)"
echo "snapshot: $snap_count   direct: $ordering_inproc"
if [ -z "$snap_count" ] || [ "$snap_count" != "$ordering_inproc" ]; then
  echo "socket_smoke: snapshot-loaded triangle count mismatch" >&2
  fail=1
fi

echo "== compressed (v3) snapshot: save --compress --threads 4, load on both backends =="
# Parallel ingest+freeze feeding the delta/varint codec must reproduce the
# raw snapshot's survey output byte-for-byte once loaded, on both backends.
"$CLI" snapshot save "$work/g.txt" "$work/snap_v3" "$RANKS" --ordering degeneracy \
  --compress --threads 4 >"$work/snap_v3.save" || fail=1
"$CLI" snapshot load "$work/snap_v3" "$RANKS" >"$work/inproc.snapload.v3" || fail=1
run_socket_external snapshot load "$work/snap_v3" "$RANKS" >"$work/socket.snapload.v3" || fail=1
# The first line echoes the prefix, which legitimately differs; every
# metric line below it must match the raw snapshot's output exactly.
if diff -u <(tail -n +2 "$work/inproc.snapload") <(tail -n +2 "$work/inproc.snapload.v3"); then
  echo "compressed snapshot load (inproc): IDENTICAL to raw"
else
  echo "compressed snapshot load (inproc): MISMATCH vs raw snapshot" >&2
  fail=1
fi
if diff -u "$work/inproc.snapload.v3" "$work/socket.snapload.v3"; then
  echo "compressed snapshot load (socket): IDENTICAL"
else
  echo "compressed snapshot load: MISMATCH between inproc and socket backends" >&2
  fail=1
fi
# The v3 files must actually be smaller than the raw ones.
raw_bytes="$(cat "$work"/snap.r*.tpsnap 2>/dev/null | wc -c)"
v3_bytes="$(cat "$work"/snap_v3.r*.tpsnap 2>/dev/null | wc -c)"
echo "snapshot bytes: raw $raw_bytes   v3 $v3_bytes"
if [ -z "$v3_bytes" ] || [ "$v3_bytes" -eq 0 ] || [ "$v3_bytes" -ge "$raw_bytes" ]; then
  echo "socket_smoke: compressed snapshot is not smaller than raw" >&2
  fail=1
fi

echo "== streaming overlay: ingest on both backends, --compact round trip =="
# Split the edge list 90/10: freeze the head into a --meta snapshot, stream
# the tail in as a timestamped batch.  Overlay (base+delta) and compacted
# surveys must be bit-identical across backends, the overlay count must
# equal the whole edge list's direct count, and the compacted v3 snapshot
# must reload to that same count.
total_lines="$(wc -l <"$work/g.txt")"
head_lines=$((total_lines * 9 / 10))
head -n "$head_lines" "$work/g.txt" >"$work/g_base.txt"
tail -n +"$((head_lines + 1))" "$work/g.txt" >"$work/g_batch.txt"
"$CLI" snapshot save "$work/g_base.txt" "$work/ov_snap" "$RANKS" --meta \
  >/dev/null || fail=1
"$CLI" ingest "$work/ov_snap" "$work/g_batch.txt" "$RANKS" --compact --compress \
  >"$work/inproc.ingest" || fail=1
run_socket_external ingest "$work/ov_snap" "$work/g_batch.txt" "$RANKS" \
  --compact --compress >"$work/socket.ingest" || fail=1
if diff -u "$work/inproc.ingest" "$work/socket.ingest"; then
  echo "ingest: IDENTICAL"
else
  echo "ingest: MISMATCH between inproc and socket backends" >&2
  fail=1
fi
ov_count="$(grep '^overlay ' "$work/inproc.ingest" | grep -o 'triangles [0-9]*' | grep -o '[0-9]*')"
compact_count="$(grep -o 'compacted triangles [0-9]*' "$work/inproc.ingest" | grep -o '[0-9]*$')"
echo "overlay: ${ov_count:-<none>}   compacted: ${compact_count:-<none>}   direct: ${inproc_count#triangles }"
if [ -z "${ov_count:-}" ] || [ "triangles $ov_count" != "$inproc_count" ]; then
  echo "socket_smoke: overlay triangle count diverged from direct count" >&2
  fail=1
fi
if [ "${compact_count:-}" != "${ov_count:-}" ]; then
  echo "socket_smoke: compaction changed the triangle count" >&2
  fail=1
fi
"$CLI" snapshot load "$work/ov_snap-compacted" "$RANKS" >"$work/compact.load" || fail=1
reload_count="$(grep -o 'triangles [0-9]*' "$work/compact.load" | head -1)"
echo "compacted reload: ${reload_count:-<none>}"
if [ "${reload_count:-}" != "triangles $ov_count" ]; then
  echo "socket_smoke: compacted snapshot reloaded to a different count" >&2
  fail=1
fi

echo "== parallel traversal: --threads sweep over the frozen snapshot =="
# The loaded graph is frozen CSR storage, so --threads engages the parallel
# engine; every printed metric (triangles, volume, messages, pulls,
# candidates) must be bit-identical at every thread count on both backends.
for t in 2 4 8; do
  "$CLI" snapshot load "$work/snap" "$RANKS" --threads "$t" \
    >"$work/inproc.snapload.t$t" || fail=1
  if diff -u "$work/inproc.snapload" "$work/inproc.snapload.t$t"; then
    echo "threads $t (inproc): IDENTICAL"
  else
    echo "threads $t (inproc): MISMATCH vs single-threaded run" >&2
    fail=1
  fi
done
run_socket_external snapshot load "$work/snap" "$RANKS" --threads 4 \
  >"$work/socket.snapload.t4" || fail=1
if diff -u "$work/inproc.snapload" "$work/socket.snapload.t4"; then
  echo "threads 4 (socket): IDENTICAL"
else
  echo "threads 4 (socket): MISMATCH vs inproc single-threaded run" >&2
  fail=1
fi

echo "== resident survey service: serve + query vs direct count =="
# The daemon mmaps a --meta snapshot and serves fused plans; the count
# unit's fires must equal the straight `count` of the same edge list, the
# repeat query must be answered from the cache (identical output, no second
# traversal), and SHUTDOWN must exit 0.
"$CLI" snapshot save "$work/g.txt" "$work/svc_snap" "$RANKS" --meta \
  >/dev/null 2>&1 || fail=1
svc_ep="unix:$work/svc.sock"
"$CLI" serve "$work/svc_snap" "$RANKS" --endpoint "$svc_ep" --window 0 \
  2>"$work/svc.err" &
svc_pid=$!
"$CLI" query "$svc_ep" count hot closure maxlabel >"$work/query.1" || fail=1
"$CLI" query "$svc_ep" count hot closure maxlabel >"$work/query.2" || fail=1
if diff -u "$work/query.1" "$work/query.2"; then
  echo "repeat query: IDENTICAL (served from cache)"
else
  echo "repeat query: MISMATCH -- cache reply diverged" >&2
  fail=1
fi
svc_stats="$("$CLI" query "$svc_ep" stats)"
echo "$svc_stats"
echo "$svc_stats" | grep -q "hits 1 " || { echo "socket_smoke: expected exactly one cache hit" >&2; fail=1; }
echo "$svc_stats" | grep -q "traversals 1 " || { echo "socket_smoke: cache hit must not re-traverse" >&2; fail=1; }
echo "$svc_stats" | grep -q "invalidated 0" || { echo "socket_smoke: unexpected cache invalidations" >&2; fail=1; }
# Windowed plan units: the all-inclusive window [0, 1000000) must agree with
# the plain count (every generated timestamp lies below 1000000), a narrower
# window must fire on at most as many triangles, and the round costs one
# traversal per distinct window on top of the shared base traversal (3 more).
"$CLI" query "$svc_ep" count window:0:1000000 window:200000:800000 \
  >"$work/query.w" || fail=1
w_count="$(grep -o 'unit count param 0 fires [0-9]*' "$work/query.w" | grep -o '[0-9]*$')"
w_wide="$(grep 'unit window param 1000000 ' "$work/query.w" | grep -o 'fires [0-9]*' | grep -o '[0-9]*')"
w_narrow="$(grep -v 'param 1000000 ' "$work/query.w" | grep 'unit window' | grep -o 'fires [0-9]*' | grep -o '[0-9]*')"
echo "window fires: count ${w_count:-<none>}   wide ${w_wide:-<none>}   narrow ${w_narrow:-<none>}"
if [ -z "${w_wide:-}" ] || [ "$w_wide" != "${w_count:-}" ]; then
  echo "socket_smoke: all-inclusive window diverged from plain count" >&2
  fail=1
fi
if [ -z "${w_narrow:-}" ] || [ "$w_narrow" -gt "$w_wide" ]; then
  echo "socket_smoke: narrow window fired more than the wide window" >&2
  fail=1
fi
"$CLI" query "$svc_ep" stats | grep -q "traversals 4 " \
  || { echo "socket_smoke: windowed round should add 3 traversals" >&2; fail=1; }
svc_count="$(grep -o 'unit count param 0 fires [0-9]*' "$work/query.1" | grep -o '[0-9]*$')"
direct_count="${inproc_count#triangles }"
echo "service count: ${svc_count:-<none>}   direct: $direct_count"
if [ -z "${svc_count:-}" ] || [ "$svc_count" != "$direct_count" ]; then
  echo "socket_smoke: service count diverged from direct count" >&2
  fail=1
fi
"$CLI" query "$svc_ep" shutdown >/dev/null || fail=1
if wait "$svc_pid"; then
  echo "service shutdown: exit 0"
else
  echo "socket_smoke: service exited nonzero after SHUTDOWN" >&2
  cat "$work/svc.err" >&2
  fail=1
fi

echo "== resident survey service: SIGTERM drains and exits 0 =="
"$CLI" serve "$work/svc_snap" "$RANKS" --endpoint "unix:$work/svc2.sock" \
  2>"$work/svc2.err" &
svc2_pid=$!
# A served query proves the daemon is up before the signal lands.
"$CLI" query "unix:$work/svc2.sock" count >/dev/null || fail=1
kill -TERM "$svc2_pid"
if wait "$svc2_pid"; then
  echo "SIGTERM: graceful exit 0"
else
  echo "socket_smoke: SIGTERM exit was nonzero" >&2
  cat "$work/svc2.err" >&2
  fail=1
fi

echo "== multi-node launcher: TRIPOLL_HOSTS TCP path on localhost =="
# Four localhost "nodes" rendezvous over TCP through tools/launch_hosts.sh;
# rank 0's preset output must be bit-identical to the inproc run.  One
# retry on a different port block absorbs collisions with other tests.
launcher="$(dirname "$0")/../tools/launch_hosts.sh"
launch_ok=0
for attempt in 1 2; do
  base=$((20000 + (($$ + attempt * 977)) % 20000))
  {
    echo "# four local ranks          "
    echo "127.0.0.1:$base"
    echo "127.0.0.1:$((base + 1))"
    echo ""
    echo "127.0.0.1:$((base + 2))"
    echo "127.0.0.1:$((base + 3))"
  } >"$work/hosts.txt"
  if bash "$launcher" "$work/hosts.txt" \
       "$CLI" preset rmat "$RANKS" "$DELTA" --backend socket \
       >"$work/launch.out" 2>"$work/launch.err"; then
    launch_ok=1
    break
  fi
done
if [ "$launch_ok" -ne 1 ]; then
  echo "socket_smoke: launch_hosts.sh failed on both port blocks" >&2
  cat "$work/launch.err" >&2
  fail=1
elif diff -u "$work/inproc.rmat" "$work/launch.out"; then
  echo "launch_hosts preset rmat: IDENTICAL"
else
  echo "launch_hosts preset rmat: MISMATCH vs inproc" >&2
  fail=1
fi

if [ "$fail" -ne 0 ]; then
  echo "socket_smoke: FAILED" >&2
  exit 1
fi
echo "socket_smoke: OK"
