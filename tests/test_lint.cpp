// test_lint.cpp -- the lint suite's own regression tests.
//
// Three layers, per docs/STATIC_ANALYSIS.md:
//   1. fixtures: every `// EXPECT: <check>` marker in
//      tools/tripoll-lint/fixtures/*.cpp must match the emitted diagnostic
//      set EXACTLY (same file, same line, same check -- nothing extra,
//      nothing missing), so each check demonstrably catches its bug class;
//   2. option plumbing: disabling a check silences exactly its diagnostics
//      (the acceptance criterion "the fixture test fails if the check is
//      disabled" follows: a disabled-by-default check would emit nothing
//      and layer 1 would fail);
//   3. the real tree: src/, examples/, bench/ and the lint tool itself must
//      be clean, pinning "the checks run green on the full tree".

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "lint.hpp"

namespace fs = std::filesystem;
namespace lint = tripoll::lint;

namespace {

const std::string kFixtureDir = TRIPOLL_LINT_FIXTURE_DIR;
const std::string kSourceRoot = TRIPOLL_SOURCE_ROOT;

/// (line, check) pairs -- the comparison currency of these tests.
using diag_set = std::multiset<std::pair<int, std::string>>;

[[nodiscard]] std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << "cannot read " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Parse `// EXPECT: check-a, check-b` markers into (line, check) pairs.
[[nodiscard]] diag_set expected_of(const std::string& path) {
  diag_set out;
  std::istringstream in(read_file(path));
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t at = line.find("EXPECT:");
    if (at == std::string::npos) continue;
    std::istringstream names(line.substr(at + 7));
    std::string name;
    while (std::getline(names, name, ',')) {
      const std::size_t b = name.find_first_not_of(" \t");
      const std::size_t e = name.find_last_not_of(" \t");
      if (b != std::string::npos) out.emplace(lineno, name.substr(b, e - b + 1));
    }
  }
  return out;
}

[[nodiscard]] diag_set actual_of(const std::vector<lint::diagnostic>& diags) {
  diag_set out;
  for (const auto& d : diags) out.emplace(d.line, d.check);
  return out;
}

[[nodiscard]] std::vector<lint::diagnostic> run_on(
    const std::vector<std::string>& paths,
    const lint::options& opts = lint::options{}) {
  std::vector<lint::file_model> models;
  for (const auto& p : paths) models.push_back(lint::parse_file(p));
  return lint::run_checks(models, opts);
}

[[nodiscard]] std::string fixture(const std::string& name) {
  return (fs::path(kFixtureDir) / name).string();
}

std::string dump(const std::vector<lint::diagnostic>& diags) {
  std::ostringstream os;
  for (const auto& d : diags) os << "  " << lint::format_diagnostic(d) << "\n";
  return os.str();
}

// --- layer 1: fixture diagnostic sets are exact -----------------------------------

class FixtureExact : public ::testing::TestWithParam<const char*> {};

TEST_P(FixtureExact, DiagnosticsMatchMarkers) {
  const std::string path = fixture(GetParam());
  const auto diags = run_on({path});
  EXPECT_EQ(actual_of(diags), expected_of(path)) << "diagnostics were:\n"
                                                 << dump(diags);
  for (const auto& d : diags) EXPECT_EQ(d.file, path);
}

INSTANTIATE_TEST_SUITE_P(AllFixtures, FixtureExact,
                         ::testing::Values("wire_padding_bad.cpp", "wire_padding_good.cpp",
                                           "view_member_bad.cpp", "view_member_good.cpp",
                                           "static_init_bad.cpp", "static_init_good.cpp",
                                           "view_escape_bad.cpp", "view_escape_good.cpp",
                                           "blocking_bad.cpp", "blocking_good.cpp",
                                           "nolint.cpp"),
                         [](const auto& info) {
                           std::string n = info.param;
                           return n.substr(0, n.size() - 4);  // strip .cpp
                         });

// --- layer 2: each check is individually live and individually silenceable -------

struct check_case {
  const char* check;
  const char* bad_fixture;
};

class CheckToggle : public ::testing::TestWithParam<check_case> {};

TEST_P(CheckToggle, FiresWhenEnabledSilentWhenDisabled) {
  const auto [check, bad] = GetParam();
  const std::string path = fixture(bad);

  // Enabled (default): the check fires at the marked lines.
  const auto enabled = run_on({path});
  diag_set of_check;
  for (const auto& d : enabled) {
    if (d.check == check) of_check.emplace(d.line, d.check);
  }
  EXPECT_FALSE(of_check.empty()) << check << " found nothing in " << bad;
  EXPECT_EQ(of_check, expected_of(path));

  // Disabled via clang-tidy-style negative spec: exactly its diagnostics
  // disappear; nothing else changes.
  const auto disabled = run_on({path}, lint::options::from_spec(std::string("-") + check));
  for (const auto& d : disabled) EXPECT_NE(d.check, check);
  EXPECT_EQ(disabled.size(), enabled.size() - of_check.size());

  // Positive-only spec: only this check's diagnostics remain.
  const auto only = run_on({path}, lint::options::from_spec(check));
  EXPECT_EQ(actual_of(only), of_check);
}

INSTANTIATE_TEST_SUITE_P(
    AllChecks, CheckToggle,
    ::testing::Values(check_case{"tripoll-wire-padding", "wire_padding_bad.cpp"},
                      check_case{"tripoll-bitwise-view-member", "view_member_bad.cpp"},
                      check_case{"tripoll-handler-static-init", "static_init_bad.cpp"},
                      check_case{"tripoll-view-escape", "view_escape_bad.cpp"},
                      check_case{"tripoll-callback-blocking", "blocking_bad.cpp"}),
    [](const auto& info) {
      std::string n = info.param.check;
      for (auto& c : n) {
        if (c == '-') c = '_';
      }
      return n;
    });

TEST(Options, SpecGrammar) {
  EXPECT_EQ(lint::options::from_spec("").enabled, lint::options::default_enabled());
  EXPECT_EQ(lint::options::from_spec("*").enabled, lint::options::default_enabled());

  const auto minus = lint::options::from_spec("-tripoll-wire-padding");
  EXPECT_FALSE(minus.is_enabled("tripoll-wire-padding"));
  EXPECT_TRUE(minus.is_enabled("tripoll-view-escape"));
  EXPECT_EQ(minus.enabled.size(), lint::all_checks().size() - 1);

  const auto only = lint::options::from_spec("tripoll-view-escape");
  EXPECT_TRUE(only.is_enabled("tripoll-view-escape"));
  EXPECT_EQ(only.enabled.size(), 1u);

  const auto combo =
      lint::options::from_spec("*,-tripoll-callback-blocking,-tripoll-view-escape");
  EXPECT_EQ(combo.enabled.size(), lint::all_checks().size() - 2);
}

TEST(Options, FiveChecksRegistered) {
  EXPECT_EQ(lint::all_checks().size(), 5u);
  for (const auto& c : lint::all_checks()) {
    EXPECT_EQ(c.rfind("tripoll-", 0), 0u) << c;
  }
}

// --- layer 3: the real tree is clean ---------------------------------------------

TEST(Tree, FullTreeIsClean) {
  const auto sources = lint::collect_sources(
      {kSourceRoot + "/src", kSourceRoot + "/examples", kSourceRoot + "/bench",
       kSourceRoot + "/tools"});
  ASSERT_GT(sources.size(), 40u) << "source walk looks broken";
  const auto diags = run_on(sources);
  EXPECT_TRUE(diags.empty()) << dump(diags);
}

TEST(Tree, FixtureSnippetsAreExcludedFromWalks) {
  // The walker must skip fixtures/ (intentionally-bad code) when handed the
  // tool directory, or CI tree runs would always be red.
  const auto sources =
      lint::collect_sources({kSourceRoot + "/tools/tripoll-lint"});
  for (const auto& s : sources) {
    EXPECT_EQ(s.find("fixtures"), std::string::npos) << s;
  }
  ASSERT_FALSE(sources.empty());
}

// --- compile_commands.json discovery ---------------------------------------------

TEST(CompileCommands, ChasesQuotedIncludesUnderRoot) {
  const fs::path root = fs::path(::testing::TempDir()) / "tripoll_lint_cc";
  fs::remove_all(root);
  fs::create_directories(root / "src" / "sub");
  fs::create_directories(root / "build");

  const auto write = [](const fs::path& p, const std::string& body) {
    std::ofstream out(p);
    out << body;
  };
  write(root / "src" / "main.cpp",
        "#include \"sub/one.hpp\"\n#include <vector>\nint main() {}\n");
  write(root / "src" / "sub" / "one.hpp", "#pragma once\n#include \"two.hpp\"\n");
  write(root / "src" / "sub" / "two.hpp", "#pragma once\n");
  // A header outside the include chain must NOT be picked up.
  write(root / "src" / "unreferenced.hpp", "#pragma once\n");

  std::ostringstream db;
  db << "[{\"directory\": \"" << (root / "build").string() << "\",\n"
     << "  \"command\": \"/usr/bin/c++ -I" << (root / "src").string()
     << " -std=gnu++20 -c " << (root / "src" / "main.cpp").string() << "\",\n"
     << "  \"file\": \"" << (root / "src" / "main.cpp").string() << "\"}]\n";
  write(root / "build" / "compile_commands.json", db.str());

  const auto sources =
      lint::sources_from_compile_commands((root / "build").string(), root.string());
  std::set<std::string> names;
  for (const auto& s : sources) names.insert(fs::path(s).filename().string());
  EXPECT_EQ(names, (std::set<std::string>{"main.cpp", "one.hpp", "two.hpp"}));
  fs::remove_all(root);
}

TEST(CompileCommands, MissingDatabaseThrows) {
  EXPECT_THROW(lint::sources_from_compile_commands("/nonexistent-dir-tripoll", "/"),
               std::runtime_error);
}

// --- parser spot checks (the subset the checks rely on) --------------------------

TEST(Parser, MultiDeclaratorMembersWithInitializers) {
  const auto m = lint::parse_source("mem.cpp", R"(
    struct s {
      unsigned long long u = 0, v = 0;
      unsigned int a, b[4];
    };
  )");
  ASSERT_EQ(m.structs.size(), 1u);
  const auto& sd = m.structs[0];
  ASSERT_EQ(sd.members.size(), 4u);
  EXPECT_EQ(sd.members[0].name, "u");
  EXPECT_EQ(sd.members[1].name, "v");
  EXPECT_EQ(sd.members[2].name, "a");
  EXPECT_EQ(sd.members[3].name, "b");
  EXPECT_EQ(sd.members[3].array_count, 4);
}

TEST(Parser, ForceFlagLiteralVersusDependent) {
  const auto m = lint::parse_source("flags.cpp", R"(
    struct opted_out {
      static constexpr bool tripoll_force_member_serialize = true;
      int x = 0;
    };
    template <typename T>
    struct conditional {
      static constexpr bool tripoll_force_member_serialize = !bitwise<T>;
      int x = 0;
    };
    struct unflagged { int x = 0; };
  )");
  ASSERT_EQ(m.structs.size(), 3u);
  EXPECT_EQ(m.structs[0].force_flag, 1);
  EXPECT_EQ(m.structs[1].force_flag, 0);
  EXPECT_EQ(m.structs[2].force_flag, -1);
}

TEST(Parser, WireAssertAndAliasCapture) {
  const auto m = lint::parse_source("anchors.cpp", R"(
    using vertex_id = unsigned long long;
    struct edge { vertex_id u = 0; vertex_id v = 0; };
    TRIPOLL_WIRE_ASSERT(edge, u, v);
    void f(const wire_span<edge>& es);
  )");
  ASSERT_EQ(m.wire_asserts.size(), 1u);
  EXPECT_EQ(m.wire_asserts[0].first, "edge");
  EXPECT_EQ(m.wire_asserts[0].second, (std::vector<std::string>{"u", "v"}));
  EXPECT_EQ(m.wire_span_elems.count("edge"), 1u);
  ASSERT_EQ(m.aliases.count("vertex_id"), 1u);
}

TEST(Parser, HandlerBodiesAreModeled) {
  const auto m = lint::parse_source("handlers.cpp", R"(
    struct relay_handler {
      void operator()(communicator& c, int v) { c.async(0, v); }
    };
  )");
  ASSERT_EQ(m.structs.size(), 1u);
  ASSERT_EQ(m.structs[0].methods.size(), 1u);
  const auto& fn = m.structs[0].methods[0];
  EXPECT_EQ(fn.name, "operator()");
  ASSERT_EQ(fn.params.size(), 2u);
  EXPECT_EQ(fn.params[0].name, "c");
  EXPECT_EQ(fn.params[1].name, "v");
  EXPECT_GT(fn.body_end, fn.body_begin);
}

}  // namespace
