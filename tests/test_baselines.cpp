// Tests for the baseline triangle counters (ground truth and comparators).
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <random>
#include <set>
#include <stdexcept>
#include <tuple>
#include <vector>

#include "baselines/pearce_tc.hpp"
#include "baselines/serial_tc.hpp"
#include "baselines/tom2d_tc.hpp"
#include "baselines/tric_tc.hpp"
#include "comm/runtime.hpp"
#include "gen/erdos_renyi.hpp"
#include "gen/rmat.hpp"
#include "graph/builder.hpp"
#include "graph/types.hpp"

namespace tb = tripoll::baselines;
namespace tc = tripoll::comm;
namespace tg = tripoll::graph;

namespace {

std::vector<tg::edge> complete_graph(tg::vertex_id n) {
  std::vector<tg::edge> edges;
  for (tg::vertex_id u = 0; u < n; ++u) {
    for (tg::vertex_id v = u + 1; v < n; ++v) edges.push_back({u, v});
  }
  return edges;
}

/// O(V^3)-ish brute force via sets; the independent oracle.
std::uint64_t brute_force(const std::vector<tg::edge>& edges) {
  std::map<tg::vertex_id, std::set<tg::vertex_id>> adj;
  for (const auto& e : edges) {
    if (e.u == e.v) continue;
    adj[e.u].insert(e.v);
    adj[e.v].insert(e.u);
  }
  std::uint64_t count = 0;
  for (const auto& [u, nbrs] : adj) {
    for (auto it = nbrs.begin(); it != nbrs.end(); ++it) {
      if (*it <= u) continue;
      for (auto jt = std::next(it); jt != nbrs.end(); ++jt) {
        if (adj.at(*it).contains(*jt)) ++count;
      }
    }
  }
  return count;
}

}  // namespace

TEST(SerialTc, KnownCounts) {
  EXPECT_EQ(tb::serial_triangle_count(complete_graph(3)), 1u);
  EXPECT_EQ(tb::serial_triangle_count(complete_graph(4)), 4u);
  EXPECT_EQ(tb::serial_triangle_count(complete_graph(10)), 120u);
  EXPECT_EQ(tb::serial_triangle_count(std::vector<tg::edge>{{0, 1}, {1, 2}}), 0u);
  EXPECT_EQ(tb::serial_triangle_count(std::vector<tg::edge>{}), 0u);
}

TEST(SerialTc, ToleratesDuplicatesAndLoops) {
  std::vector<tg::edge> edges{{0, 1}, {1, 0}, {0, 1}, {1, 1}, {1, 2}, {0, 2}, {2, 0}};
  EXPECT_EQ(tb::serial_triangle_count(edges), 1u);
}

TEST(SerialTc, SparseIdsRemapped) {
  std::vector<tg::edge> edges{{1000000007, 42}, {42, 999}, {999, 1000000007}};
  EXPECT_EQ(tb::serial_triangle_count(edges), 1u);
}

TEST(SerialTc, CsrBasics) {
  const auto edges = complete_graph(6);
  tb::ordered_csr csr(edges);
  EXPECT_EQ(csr.num_vertices(), 6u);
  EXPECT_EQ(csr.num_undirected_edges(), 15u);
  // Out-degrees in a complete graph under any total order: n-1, n-2, ..., 0.
  std::multiset<std::size_t> outs;
  for (std::uint32_t v = 0; v < 6; ++v) outs.insert(csr.out(v).size());
  EXPECT_EQ(outs, (std::multiset<std::size_t>{0, 1, 2, 3, 4, 5}));
  EXPECT_EQ(csr.wedge_checks(), 0u + 0 + 1 + 3 + 6 + 10);
}

TEST(SerialTc, OutAdjacencySorted) {
  std::mt19937_64 rng(5);
  std::vector<tg::edge> edges;
  for (int i = 0; i < 2000; ++i) edges.push_back({rng() % 300, rng() % 300});
  tb::ordered_csr csr(edges);
  for (std::uint32_t v = 0; v < csr.num_vertices(); ++v) {
    const auto out = csr.out(v);
    for (std::size_t i = 1; i < out.size(); ++i) EXPECT_LT(out[i - 1], out[i]);
    for (const auto t : out) EXPECT_GT(t, v);  // orientation low-rank -> high-rank
  }
}

class SerialVsBrute : public ::testing::TestWithParam<int> {};

TEST_P(SerialVsBrute, RandomGraphsAgree) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()));
  std::uniform_int_distribution<tg::vertex_id> vtx(0, 80);
  std::vector<tg::edge> edges;
  const int m = 400 + GetParam() * 37;
  for (int i = 0; i < m; ++i) edges.push_back({vtx(rng), vtx(rng)});
  const auto expected = brute_force(edges);
  EXPECT_EQ(tb::serial_triangle_count(edges), expected);
  tb::ordered_csr csr(edges);
  EXPECT_EQ(tb::openmp_triangle_count(csr), expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerialVsBrute, ::testing::Range(0, 12));

TEST(OpenmpTc, MatchesSerialOnLargerGraph) {
  std::mt19937_64 rng(99);
  std::vector<tg::edge> edges;
  for (int i = 0; i < 60000; ++i) edges.push_back({rng() % 3000, rng() % 3000});
  tb::ordered_csr csr(edges);
  EXPECT_EQ(tb::openmp_triangle_count(csr), tb::serial_triangle_count(csr));
}

// --- distributed baselines cross-checked against serial ground truth ---------------

namespace {

using plain_graph = tg::dodgr<tg::none, tg::none>;

void build_distributed(tc::communicator& c, plain_graph& g,
                       const std::vector<tg::edge>& edges) {
  tg::graph_builder<tg::none, tg::none> builder(c);
  for (std::size_t i = static_cast<std::size_t>(c.rank()); i < edges.size();
       i += static_cast<std::size_t>(c.size())) {
    builder.add_edge(edges[i].u, edges[i].v);
  }
  builder.build_into(g);
}

std::vector<tg::edge> random_test_graph(std::uint64_t seed) {
  tripoll::gen::erdos_renyi_generator gen(300, 2500, seed);
  std::vector<tg::edge> edges;
  for (std::uint64_t k = 0; k < gen.num_edges(); ++k) edges.push_back(gen.edge_at(k));
  return edges;
}

}  // namespace

TEST(PerfectSquare, Detection) {
  EXPECT_TRUE(tb::is_perfect_square(1));
  EXPECT_TRUE(tb::is_perfect_square(4));
  EXPECT_TRUE(tb::is_perfect_square(9));
  EXPECT_TRUE(tb::is_perfect_square(16));
  EXPECT_FALSE(tb::is_perfect_square(2));
  EXPECT_FALSE(tb::is_perfect_square(8));
  EXPECT_FALSE(tb::is_perfect_square(0));
  EXPECT_FALSE(tb::is_perfect_square(-4));
}

class DistributedBaselines : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(DistributedBaselines, PearceMatchesSerial) {
  const auto [seed, nranks] = GetParam();
  const auto edges = random_test_graph(static_cast<std::uint64_t>(seed));
  const auto expected = tb::serial_triangle_count(edges);
  tc::runtime::run(nranks, [&](tc::communicator& c) {
    plain_graph g(c);
    build_distributed(c, g, edges);
    const auto result = tb::pearce_triangle_count(c, g);
    EXPECT_EQ(result.triangles, expected);
  });
}

TEST_P(DistributedBaselines, TricMatchesSerial) {
  const auto [seed, nranks] = GetParam();
  const auto edges = random_test_graph(static_cast<std::uint64_t>(seed) + 100);
  const auto expected = tb::serial_triangle_count(edges);
  tc::runtime::run(nranks, [&](tc::communicator& c) {
    plain_graph g(c);
    build_distributed(c, g, edges);
    const auto result = tb::tric_triangle_count(c, g);
    EXPECT_EQ(result.triangles, expected);
  });
}

INSTANTIATE_TEST_SUITE_P(SeedsRanks, DistributedBaselines,
                         ::testing::Combine(::testing::Range(0, 3),
                                            ::testing::Values(1, 2, 3, 6)));

class Tom2dBaseline : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(Tom2dBaseline, MatchesSerialOnSquareGrids) {
  const auto [seed, nranks] = GetParam();
  const auto edges = random_test_graph(static_cast<std::uint64_t>(seed) + 200);
  const auto expected = tb::serial_triangle_count(edges);
  tc::runtime::run(nranks, [&](tc::communicator& c) {
    plain_graph g(c);
    build_distributed(c, g, edges);
    const auto result = tb::tom2d_triangle_count(c, g);
    EXPECT_EQ(result.triangles, expected);
  });
}

INSTANTIATE_TEST_SUITE_P(SeedsGrids, Tom2dBaseline,
                         ::testing::Combine(::testing::Range(0, 3),
                                            ::testing::Values(1, 4, 9)));

TEST(Tom2dBaselineErrors, RejectsNonSquareRankCounts) {
  tc::runtime::run(3, [](tc::communicator& c) {
    plain_graph g(c);
    build_distributed(c, g, {});
    EXPECT_THROW((void)tb::tom2d_triangle_count(c, g), std::invalid_argument);
  });
}

TEST(DistributedBaselinesRmat, AllAgreeOnSkewedGraph) {
  tripoll::gen::rmat_generator gen(
      tripoll::gen::rmat_params{10, 10, 0.57, 0.19, 0.19, 31, true});
  std::vector<tg::edge> edges;
  for (std::uint64_t k = 0; k < gen.num_edges(); ++k) edges.push_back(gen.edge_at(k));
  const auto expected = tb::serial_triangle_count(edges);
  ASSERT_GT(expected, 0u);
  tc::runtime::run(4, [&](tc::communicator& c) {
    plain_graph g(c);
    build_distributed(c, g, edges);
    EXPECT_EQ(tb::pearce_triangle_count(c, g).triangles, expected);
    EXPECT_EQ(tb::tom2d_triangle_count(c, g).triangles, expected);
    EXPECT_EQ(tb::tric_triangle_count(c, g).triangles, expected);
  });
}

TEST(DistributedBaselinesStats, PearceReportsTraffic) {
  const auto edges = random_test_graph(7);
  tc::runtime::run(4, [&](tc::communicator& c) {
    plain_graph g(c);
    build_distributed(c, g, edges);
    const auto result = tb::pearce_triangle_count(c, g);
    EXPECT_GT(result.messages, 0u);
    EXPECT_GT(result.volume_bytes, 0u);
    EXPECT_GE(result.seconds, 0.0);
  });
}
