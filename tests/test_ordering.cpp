// Tests for the pluggable vertex-ordering subsystem: degeneracy peeling on
// known graphs, out-degree bounds, determinism across rank counts, count
// equivalence of both orderings under both survey modes, and the
// "survey_result is identical on every rank" contract (including the
// all-reduced volume/message metrics).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <tuple>
#include <utility>
#include <vector>

#include "baselines/serial_tc.hpp"
#include "comm/runtime.hpp"
#include "core/callbacks.hpp"
#include "core/survey.hpp"
#include "gen/distribute.hpp"
#include "gen/rmat.hpp"
#include "gen/temporal.hpp"
#include "graph/builder.hpp"
#include "graph/dodgr.hpp"
#include "graph/ordering.hpp"

namespace tc = tripoll::comm;
namespace tg = tripoll::graph;
namespace cb = tripoll::callbacks;
using tg::ordering_policy;
using tripoll::survey_mode;
using tripoll::triangle_survey;

using plain_graph = tg::dodgr<tg::none, tg::none>;
using temporal_graph = tg::dodgr<tg::none, std::uint64_t>;
using edge_pairs = std::vector<std::pair<tg::vertex_id, tg::vertex_id>>;

namespace {

edge_pairs complete_graph(tg::vertex_id n) {
  edge_pairs edges;
  for (tg::vertex_id u = 0; u < n; ++u) {
    for (tg::vertex_id v = u + 1; v < n; ++v) edges.emplace_back(u, v);
  }
  return edges;
}

/// Build from an explicit list (rank 0 contributes) under a chosen ordering,
/// returning the builder's peel stats.
tg::degeneracy_stats build_plain(tc::communicator& c, plain_graph& g,
                                 const edge_pairs& edges, ordering_policy ordering) {
  tg::graph_builder<tg::none, tg::none> builder(c, ordering);
  if (c.rank0()) {
    for (const auto& [u, v] : edges) builder.add_edge(u, v);
  }
  builder.build_into(g);
  return builder.peel_stats();
}

void feed_rmat(tc::communicator& c, tg::graph_builder<tg::none, tg::none>& builder,
               std::uint32_t scale, std::uint64_t seed) {
  tripoll::gen::rmat_generator rmat(
      tripoll::gen::rmat_params{scale, 16, 0.57, 0.19, 0.19, seed, true});
  tripoll::gen::for_rank_slice(c, rmat.num_edges(), [&](std::uint64_t k) {
    const auto e = rmat.edge_at(k);
    builder.add_edge(e.u, e.v);
  });
}

std::vector<tg::edge> rmat_edges(std::uint32_t scale, std::uint64_t seed) {
  tripoll::gen::rmat_generator rmat(
      tripoll::gen::rmat_params{scale, 16, 0.57, 0.19, 0.19, seed, true});
  std::vector<tg::edge> edges;
  for (std::uint64_t k = 0; k < rmat.num_edges(); ++k) edges.push_back(rmat.edge_at(k));
  return edges;
}

/// Every integer field of a survey_result, in a fixed order, for bit-exact
/// cross-rank comparison.
std::vector<std::uint64_t> result_words(const tripoll::survey_result& r) {
  const auto phase = [](const tripoll::phase_metrics& m) {
    return std::vector<std::uint64_t>{m.volume_bytes, m.messages};
  };
  std::vector<std::uint64_t> words;
  for (const auto* m : {&r.dry_run, &r.push, &r.pull, &r.total}) {
    const auto p = phase(*m);
    words.insert(words.end(), p.begin(), p.end());
  }
  words.insert(words.end(), {r.pulls_granted, r.push_batches, r.wedge_candidates,
                             r.triangles_found, r.proposals_filtered});
  return words;
}

}  // namespace

// --- policy naming/parsing ----------------------------------------------------------

TEST(OrderingPolicy, ParseAndName) {
  EXPECT_EQ(tg::parse_ordering("degree"), ordering_policy::degree);
  EXPECT_EQ(tg::parse_ordering("degeneracy"), ordering_policy::degeneracy);
  EXPECT_FALSE(tg::parse_ordering("bogus").has_value());
  EXPECT_STREQ(tg::ordering_name(ordering_policy::degree), "degree");
  EXPECT_STREQ(tg::ordering_name(ordering_policy::degeneracy), "degeneracy");
}

// --- peeling on graphs with known degeneracy ----------------------------------------

TEST(DegeneracyPeel, KnownGraphs) {
  tc::runtime::run(3, [](tc::communicator& c) {
    {
      plain_graph g(c);  // path: degeneracy 1
      const auto s = build_plain(c, g, {{0, 1}, {1, 2}, {2, 3}}, ordering_policy::degeneracy);
      EXPECT_EQ(s.degeneracy, 1u);
      EXPECT_EQ(s.vertices, 4u);
    }
    {
      plain_graph g(c);  // cycle: degeneracy 2
      const auto s = build_plain(c, g, {{0, 1}, {1, 2}, {2, 3}, {3, 0}},
                                 ordering_policy::degeneracy);
      EXPECT_EQ(s.degeneracy, 2u);
    }
    {
      plain_graph g(c);  // K5: degeneracy 4
      const auto s = build_plain(c, g, complete_graph(5), ordering_policy::degeneracy);
      EXPECT_EQ(s.degeneracy, 4u);
    }
    {
      plain_graph g(c);  // star: degeneracy 1 even though the hub has degree 8
      edge_pairs star;
      for (tg::vertex_id v = 1; v <= 8; ++v) star.emplace_back(0, v);
      const auto s = build_plain(c, g, star, ordering_policy::degeneracy);
      EXPECT_EQ(s.degeneracy, 1u);
    }
  });
}

TEST(DegeneracyPeel, StarPlusCliqueOutDegrees) {
  // Degree order points the star hub at the clique (hub degree 10 is mid
  // pack); degeneracy order peels all leaves first, then the hub at level 1
  // -- its out-degree collapses to the clique attachment only.
  edge_pairs edges = complete_graph(8);                             // vertices 0..7
  for (tg::vertex_id v = 100; v < 110; ++v) edges.emplace_back(8, v);  // star at 8
  edges.emplace_back(8, 0);                                         // attach hub
  tc::runtime::run(2, [&](tc::communicator& c) {
    plain_graph g_deg(c), g_core(c);
    build_plain(c, g_deg, edges, ordering_policy::degree);
    const auto s = build_plain(c, g_core, edges, ordering_policy::degeneracy);
    EXPECT_EQ(s.degeneracy, 7u);  // the K8
    // Under degeneracy order every out-degree is bounded by the degeneracy.
    g_core.for_all_local([&](const tg::vertex_id&, const plain_graph::record_type& rec) {
      EXPECT_LE(rec.adj.size(), s.degeneracy);
    });
    EXPECT_LE(g_core.census().wedge_checks, g_deg.census().wedge_checks);
  });
}

TEST(DegeneracyPeel, OutDegreeBoundedOnRmat) {
  tc::runtime::run(4, [](tc::communicator& c) {
    plain_graph g(c);
    tg::graph_builder<tg::none, tg::none> builder(c, ordering_policy::degeneracy);
    feed_rmat(c, builder, 10, 7);
    builder.build_into(g);
    const auto s = builder.peel_stats();
    ASSERT_GT(s.degeneracy, 0u);
    g.for_all_local([&](const tg::vertex_id& v, const plain_graph::record_type& rec) {
      EXPECT_LE(rec.adj.size(), s.degeneracy) << "vertex " << v;
      // Orientation invariant under the generalized order.
      for (const auto& e : rec.adj) {
        EXPECT_TRUE(tg::order_less(v, rec.order_rank, e.target, e.target_rank));
      }
    });
    EXPECT_EQ(g.ordering(), ordering_policy::degeneracy);
  });
}

// --- determinism: ranks and census independent of the rank count --------------------

TEST(DegeneracyPeel, DeterministicAcrossRankCounts) {
  std::map<tg::vertex_id, std::uint64_t> reference;
  std::uint64_t reference_wedges = 0;
  bool first = true;
  for (const int nranks : {1, 2, 4}) {
    std::map<tg::vertex_id, std::uint64_t> ranks_by_vertex;
    std::uint64_t wedges = 0;
    tc::runtime::run(nranks, [&](tc::communicator& c) {
      plain_graph g(c);
      tg::graph_builder<tg::none, tg::none> builder(c, ordering_policy::degeneracy);
      feed_rmat(c, builder, 9, 321);
      builder.build_into(g);
      std::vector<std::pair<tg::vertex_id, std::uint64_t>> local;
      g.for_all_local([&](const tg::vertex_id& v, const plain_graph::record_type& rec) {
        local.emplace_back(v, rec.order_rank);
      });
      auto per_rank = c.all_gather(local);
      const auto w = g.census().wedge_checks;
      if (c.rank0()) {
        for (auto& vec : per_rank) {
          for (auto& [v, r] : vec) ranks_by_vertex[v] = r;
        }
        wedges = w;
      }
    });
    if (first) {
      reference = ranks_by_vertex;
      reference_wedges = wedges;
      first = false;
    } else {
      EXPECT_EQ(ranks_by_vertex, reference) << nranks << " ranks";
      EXPECT_EQ(wedges, reference_wedges) << nranks << " ranks";
    }
  }
  EXPECT_FALSE(reference.empty());
}

// --- both orderings agree with ground truth under both modes ------------------------

class OrderingEquivalence
    : public ::testing::TestWithParam<std::tuple<ordering_policy, survey_mode, int>> {};

TEST_P(OrderingEquivalence, RmatCountsMatchSerial) {
  const auto [ordering, mode, nranks] = GetParam();
  const auto edges = rmat_edges(10, 99);
  const auto expected = tripoll::baselines::serial_triangle_count(edges);
  ASSERT_GT(expected, 0u);
  tc::runtime::run(nranks, [&, ordering = ordering, mode = mode](tc::communicator& c) {
    plain_graph g(c);
    tg::graph_builder<tg::none, tg::none> builder(c, ordering);
    feed_rmat(c, builder, 10, 99);
    builder.build_into(g);
    cb::count_context ctx;
    const auto result = triangle_survey(g, cb::count_callback{}, ctx, {mode});
    EXPECT_EQ(ctx.global_count(c), expected);
    EXPECT_EQ(result.triangles_found, expected);
  });
}

TEST_P(OrderingEquivalence, TemporalCountsMatchSerial) {
  const auto [ordering, mode, nranks] = GetParam();
  tripoll::gen::temporal_params params;
  params.scale = 9;
  params.edge_factor = 12;
  const tripoll::gen::temporal_generator gen(params);
  std::vector<tg::edge> edges;
  for (std::uint64_t k = 0; k < gen.num_edges(); ++k) {
    const auto e = gen.edge_at(k);
    edges.push_back(tg::edge{e.u, e.v});
  }
  const auto expected = tripoll::baselines::serial_triangle_count(edges);
  ASSERT_GT(expected, 0u);
  tc::runtime::run(nranks, [&, ordering = ordering, mode = mode](tc::communicator& c) {
    temporal_graph g(c);
    tg::graph_builder<tg::none, std::uint64_t, tg::merge::keep_least> builder(c, ordering);
    tripoll::gen::for_rank_slice(c, gen.num_edges(), [&](std::uint64_t k) {
      const auto e = gen.edge_at(k);
      builder.add_edge(e.u, e.v, e.timestamp);
    });
    builder.build_into(g);
    cb::count_context ctx;
    triangle_survey(g, cb::count_callback{}, ctx, {mode});
    EXPECT_EQ(ctx.global_count(c), expected);
  });
}

INSTANTIATE_TEST_SUITE_P(
    PoliciesModesRanks, OrderingEquivalence,
    ::testing::Combine(::testing::Values(ordering_policy::degree,
                                         ordering_policy::degeneracy),
                       ::testing::Values(survey_mode::push_only, survey_mode::push_pull),
                       ::testing::Values(1, 4)));

// --- the survey_result contract: identical on every rank ----------------------------

class ResultAgreement
    : public ::testing::TestWithParam<std::tuple<ordering_policy, survey_mode>> {};

TEST_P(ResultAgreement, SurveyResultIdenticalOnEveryRank) {
  const auto [ordering, mode] = GetParam();
  tc::runtime::run(4, [ordering = ordering, mode = mode](tc::communicator& c) {
    plain_graph g(c);
    tg::graph_builder<tg::none, tg::none> builder(c, ordering);
    feed_rmat(c, builder, 10, 2024);
    builder.build_into(g);
    cb::count_context ctx;
    const auto result = triangle_survey(g, cb::count_callback{}, ctx, {mode});

    // Every rank contributes its packed result; all must be bit-identical
    // (this is what the racy global-snapshot metrics used to violate).
    const auto words = result_words(result);
    const auto all_words = c.all_gather(words);
    const std::vector<double> seconds{result.dry_run.seconds, result.push.seconds,
                                      result.pull.seconds, result.total.seconds};
    const auto all_seconds = c.all_gather(seconds);
    for (int r = 0; r < c.size(); ++r) {
      EXPECT_EQ(all_words[static_cast<std::size_t>(r)], all_words[0])
          << "integer metrics differ between rank " << r << " and rank 0";
      EXPECT_EQ(all_seconds[static_cast<std::size_t>(r)], all_seconds[0])
          << "timings differ between rank " << r << " and rank 0";
    }
    // Volume/messages must be the global sums (nonzero on a 4-rank graph
    // with cross-rank edges), not some rank's local share of them.
    EXPECT_GT(result.push.volume_bytes + result.pull.volume_bytes, 0u);
    EXPECT_EQ(result.total.messages,
              result.dry_run.messages + result.push.messages + result.pull.messages);
  });
}

INSTANTIATE_TEST_SUITE_P(
    PoliciesModes, ResultAgreement,
    ::testing::Combine(::testing::Values(ordering_policy::degree,
                                         ordering_policy::degeneracy),
                       ::testing::Values(survey_mode::push_only, survey_mode::push_pull)));

// --- degeneracy ordering must shrink |W+| on the skewed RMAT preset ------------------

TEST(OrderingAblation, DegeneracyStrictlyReducesWedgeChecksOnRmat) {
  tc::runtime::run(4, [](tc::communicator& c) {
    plain_graph g_deg(c), g_core(c);
    {
      tg::graph_builder<tg::none, tg::none> b(c, ordering_policy::degree);
      feed_rmat(c, b, 12, 42);
      b.build_into(g_deg);
    }
    {
      tg::graph_builder<tg::none, tg::none> b(c, ordering_policy::degeneracy);
      feed_rmat(c, b, 12, 42);
      b.build_into(g_core);
    }
    const auto census_deg = g_deg.census();
    const auto census_core = g_core.census();
    EXPECT_LT(census_core.wedge_checks, census_deg.wedge_checks);
    EXPECT_LE(census_core.max_out_degree, census_deg.max_out_degree);

    // Identical global triangle counts under both orderings.
    cb::count_context ctx_deg, ctx_core;
    triangle_survey(g_deg, cb::count_callback{}, ctx_deg, {survey_mode::push_pull});
    triangle_survey(g_core, cb::count_callback{}, ctx_core, {survey_mode::push_pull});
    EXPECT_EQ(ctx_deg.global_count(c), ctx_core.global_count(c));
  });
}

// --- pull-proposal pre-filter: correctness unchanged, proposals drop ----------------

TEST(PullFilter, FilteredProposalsNeverChangeCounts) {
  // K16: heavy aggregation toward shared targets; some proposals are
  // hopeless (d+(q) >= candidate count) and must be filtered sender-side.
  const auto edges = complete_graph(16);
  tc::runtime::run(3, [&](tc::communicator& c) {
    plain_graph g(c);
    build_plain(c, g, edges, ordering_policy::degree);
    cb::count_context ctx;
    const auto result = triangle_survey(g, cb::count_callback{}, ctx,
                                        {survey_mode::push_pull});
    EXPECT_EQ(ctx.global_count(c), 560u);  // C(16,3)
    EXPECT_GT(result.proposals_filtered, 0u);
  });
}
