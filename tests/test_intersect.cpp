// Property tests for the adjacency-intersection kernels: all must produce
// identical match sets on arbitrary sorted inputs, including the galloping
// and adaptive kernels backing the survey's wedge-closing step.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <set>
#include <vector>

#include "core/intersect.hpp"

namespace core = tripoll::core;

namespace {

constexpr auto kIdentity = [](std::uint64_t x) { return x; };

std::vector<std::uint64_t> sorted_unique(std::mt19937_64& rng, std::size_t n,
                                         std::uint64_t universe) {
  std::vector<std::uint64_t> v(n);
  for (auto& x : v) x = rng() % universe;
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
  return v;
}

template <typename Fn>
std::set<std::uint64_t> collect(Fn&& intersect, const std::vector<std::uint64_t>& a,
                                const std::vector<std::uint64_t>& b) {
  std::set<std::uint64_t> out;
  intersect(a.begin(), a.end(), b.begin(), b.end(), kIdentity, kIdentity,
            [&](std::uint64_t x, std::uint64_t y) {
              EXPECT_EQ(x, y);
              EXPECT_TRUE(out.insert(x).second) << "duplicate match " << x;
            });
  return out;
}

std::set<std::uint64_t> reference(const std::vector<std::uint64_t>& a,
                                  const std::vector<std::uint64_t>& b) {
  std::set<std::uint64_t> sa(a.begin(), a.end());
  std::set<std::uint64_t> out;
  for (const auto x : b) {
    if (sa.contains(x)) out.insert(x);
  }
  return out;
}

}  // namespace

TEST(Intersect, EmptyInputs) {
  const std::vector<std::uint64_t> empty, some{1, 2, 3};
  EXPECT_TRUE(collect([](auto... args) { core::merge_path_intersect(args...); }, empty,
                      some)
                  .empty());
  EXPECT_TRUE(collect([](auto... args) { core::binary_search_intersect(args...); },
                      some, empty)
                  .empty());
  EXPECT_TRUE(
      collect([](auto... args) { core::hash_intersect(args...); }, empty, empty).empty());
}

TEST(Intersect, DisjointAndIdentical) {
  const std::vector<std::uint64_t> a{1, 3, 5}, b{2, 4, 6};
  EXPECT_TRUE(collect([](auto... args) { core::merge_path_intersect(args...); }, a, b)
                  .empty());
  const auto same =
      collect([](auto... args) { core::merge_path_intersect(args...); }, a, a);
  EXPECT_EQ(same, (std::set<std::uint64_t>{1, 3, 5}));
}

class IntersectProperty : public ::testing::TestWithParam<int> {};

TEST_P(IntersectProperty, AllKernelsAgreeWithReference) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()));
  for (int round = 0; round < 20; ++round) {
    const auto a = sorted_unique(rng, 1 + rng() % 200, 1 + rng() % 500);
    const auto b = sorted_unique(rng, 1 + rng() % 200, 1 + rng() % 500);
    const auto want = reference(a, b);
    EXPECT_EQ(collect([](auto... args) { core::merge_path_intersect(args...); }, a, b),
              want);
    EXPECT_EQ(
        collect([](auto... args) { core::binary_search_intersect(args...); }, a, b),
        want);
    EXPECT_EQ(collect([](auto... args) { core::hash_intersect(args...); }, a, b), want);
    EXPECT_EQ(collect([](auto... args) { core::gallop_intersect(args...); }, a, b), want);
    EXPECT_EQ(collect([](auto... args) { core::adaptive_intersect(args...); }, a, b),
              want);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntersectProperty, ::testing::Range(0, 10));

TEST(Intersect, GallopEmptyAndSkewedShapes) {
  const std::vector<std::uint64_t> empty;
  const std::vector<std::uint64_t> some{1, 2, 3};
  EXPECT_TRUE(
      collect([](auto... args) { core::gallop_intersect(args...); }, empty, some).empty());
  EXPECT_TRUE(
      collect([](auto... args) { core::adaptive_intersect(args...); }, some, empty)
          .empty());

  // Shapes straddling the gallop_ratio_threshold in both directions: every
  // kernel must agree on strongly skewed inputs, where adaptive switches
  // strategy.
  std::mt19937_64 rng(7);
  for (const auto& [na, nb] : {std::pair<std::size_t, std::size_t>{5, 3000},
                              {3000, 5},
                              {1, 5000},
                              {64, 64},
                              {33, 511}}) {
    const auto a = sorted_unique(rng, na, 4000);
    const auto b = sorted_unique(rng, nb, 4000);
    const auto want = reference(a, b);
    EXPECT_EQ(collect([](auto... args) { core::gallop_intersect(args...); }, a, b), want);
    EXPECT_EQ(collect([](auto... args) { core::adaptive_intersect(args...); }, a, b),
              want);
  }
}

TEST(Intersect, AdaptivePreservesArgumentOrderWhenSwapped) {
  // na >> nb drives adaptive through the swapped-gallop branch; on_match
  // must still observe (a_elem, b_elem) in that order.
  struct lhs {
    std::uint64_t id;
    char tag;
  };
  struct rhs {
    std::uint64_t id;
    int weight;
  };
  std::vector<lhs> a;
  for (std::uint64_t i = 0; i < 200; ++i) a.push_back(lhs{i, 'a'});
  const std::vector<rhs> b{{50, 500}, {199, 1990}};
  std::vector<std::pair<char, int>> matches;
  core::adaptive_intersect(
      a.begin(), a.end(), b.begin(), b.end(), [](const lhs& x) { return x.id; },
      [](const rhs& y) { return y.id; },
      [&](const lhs& x, const rhs& y) { matches.emplace_back(x.tag, y.weight); });
  ASSERT_EQ(matches.size(), 2u);
  EXPECT_EQ(matches[0], (std::pair<char, int>{'a', 500}));
  EXPECT_EQ(matches[1], (std::pair<char, int>{'a', 1990}));
}

TEST(Intersect, HeterogeneousElementTypesViaKeys) {
  // The survey intersects candidate structs against adjacency entries; the
  // kernels must work through key extractors on different element types.
  struct lhs {
    std::uint64_t id;
    int payload;
  };
  struct rhs {
    double weight;
    std::uint64_t id;
  };
  const std::vector<lhs> a{{1, 10}, {4, 40}, {9, 90}};
  const std::vector<rhs> b{{0.5, 2}, {0.25, 4}, {0.125, 8}, {0.1, 9}};
  std::vector<std::pair<int, double>> matches;
  core::merge_path_intersect(
      a.begin(), a.end(), b.begin(), b.end(), [](const lhs& x) { return x.id; },
      [](const rhs& y) { return y.id; },
      [&](const lhs& x, const rhs& y) { matches.emplace_back(x.payload, y.weight); });
  ASSERT_EQ(matches.size(), 2u);
  EXPECT_EQ(matches[0].first, 40);
  EXPECT_EQ(matches[1].first, 90);
}
