// Tests for the frozen CSR storage layer (graph/frozen.hpp) and its binary
// snapshots (graph/snapshot.hpp): structural identity with the mutable map
// form, projection push-down at freeze time, survey equivalence across the
// backend x ordering x mode matrix, and snapshot round-trips (including
// mmap loads inside forked socket ranks).
//
// Socket ranks are forked child processes, so assertions there run INSIDE
// the ranks (thrown exceptions become child exit status), which the
// parent-side EXPECT_NO_THROW turns into test failures.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include <unistd.h>

#include "comm/counting_set.hpp"
#include "comm/runtime.hpp"
#include "core/analytics.hpp"
#include "core/callbacks.hpp"
#include "core/survey.hpp"
#include "gen/erdos_renyi.hpp"
#include "graph/builder.hpp"
#include "graph/dodgr.hpp"
#include "graph/frozen.hpp"
#include "graph/io.hpp"
#include "graph/ordering.hpp"
#include "graph/snapshot.hpp"
#include "serial/hash.hpp"

namespace tc = tripoll::comm;
namespace tg = tripoll::graph;
namespace cb = tripoll::callbacks;

using tripoll::survey_mode;

namespace {

/// In-rank check that works from forked socket ranks: throw, don't EXPECT.
void require(bool cond, const std::string& what) {
  if (!cond) throw std::runtime_error("frozen check failed: " + what);
}

std::uint64_t edge_ts(tg::vertex_id u, tg::vertex_id v) {
  const auto lo = std::min(u, v);
  const auto hi = std::max(u, v);
  return tripoll::serial::hash_combine(tripoll::serial::splitmix64(lo), hi) % 100000;
}

std::uint64_t vertex_label(tg::vertex_id v) {
  return tripoll::serial::splitmix64(v ^ 0xBEEF) % 512;
}

using meta_graph = tg::dodgr<std::uint64_t, std::uint64_t>;

/// K8 plus a deterministic ER slab: triangles on every rank, pulls granted.
void build_meta_graph(tc::communicator& c, meta_graph& g,
                      tg::ordering_policy ordering) {
  tg::graph_builder<std::uint64_t, std::uint64_t> builder(c, ordering);
  const auto add = [&](tg::vertex_id u, tg::vertex_id v) {
    builder.add_edge(u, v, edge_ts(u, v));
  };
  if (c.rank0()) {
    for (tg::vertex_id u = 0; u < 8; ++u) {
      for (tg::vertex_id v = u + 1; v < 8; ++v) add(u, v);
    }
  }
  tripoll::gen::erdos_renyi_generator er(80, 500, 1234);
  for (std::uint64_t k = static_cast<std::uint64_t>(c.rank()); k < er.num_edges();
       k += static_cast<std::uint64_t>(c.size())) {
    const auto e = er.edge_at(k);
    if (e.u == e.v) continue;
    add(e.u + 100, e.v + 100);
  }
  builder.build_into(g);
  g.for_all_local([](const tg::vertex_id& v, auto& rec) {
    rec.meta = vertex_label(v);
    for (auto& e : rec.adj) e.target_meta = vertex_label(e.target);
  });
}

/// Local closure histogram + digest comparable across runs via reduce.
using hist = std::map<cb::closure_bin, std::uint64_t>;

struct closure_cb {
  template <typename View>
  void operator()(const View& v, hist& h) const {
    ++h[cb::closure_bin_of(static_cast<std::uint64_t>(v.meta_pq),
                           static_cast<std::uint64_t>(v.meta_pr),
                           static_cast<std::uint64_t>(v.meta_qr))];
  }
};

std::uint64_t hist_digest(const hist& h) {
  std::uint64_t sum = 0;
  for (const auto& [bin, n] : h) {
    sum += n * tripoll::serial::splitmix64((std::uint64_t{bin.first} << 32) | bin.second);
  }
  return sum;
}

/// Fresh per-test snapshot prefix under the system temp dir.
std::string fresh_prefix(const char* tag) {
  static std::atomic<int> counter{0};
  return (std::filesystem::temp_directory_path() /
          ("tripoll_frozen_" + std::string(tag) + "_" + std::to_string(::getpid()) +
           "_" + std::to_string(counter.fetch_add(1))))
      .string();
}

void remove_snapshot(const std::string& prefix, int nranks) {
  for (int r = 0; r < nranks; ++r) {
    std::filesystem::remove(tg::snapshot_rank_path(prefix, r));
  }
}

}  // namespace

// --- structural identity ----------------------------------------------------------

TEST(Frozen, ColumnsMatchMutableRecords) {
  tc::runtime::run(3, [](tc::communicator& c) {
    meta_graph g(c);
    build_meta_graph(c, g, tg::ordering_policy::degree);
    auto fz = tg::freeze(g);

    ASSERT_EQ(fz.local_num_vertices(), g.local_num_vertices());
    const auto& ar = fz.arenas();
    ASSERT_EQ(ar.offset.size(), ar.vid.size() + 1);
    ASSERT_EQ(ar.offset[0], 0u);
    ASSERT_EQ(ar.offset[ar.vid.size()], fz.local_num_edges());

    // The frozen vertex walk is sorted by the <+ order key.
    for (std::size_t i = 1; i < ar.vid.size(); ++i) {
      EXPECT_TRUE(tg::make_order_key(ar.vid[i - 1], ar.order_rank[i - 1]) <
                  tg::make_order_key(ar.vid[i], ar.order_rank[i]));
    }

    // Every mutable record appears unchanged behind the view API.
    std::size_t checked = 0;
    g.for_all_local([&](const tg::vertex_id& v, const meta_graph::record_type& rec) {
      const auto view = fz.local_find(v);
      ASSERT_TRUE(view);
      EXPECT_EQ(view->degree, rec.degree);
      EXPECT_EQ(view->order_rank, rec.order_rank);
      EXPECT_EQ(view->meta, rec.meta);
      ASSERT_EQ(view->adj.size(), rec.adj.size());
      for (std::size_t j = 0; j < rec.adj.size(); ++j) {
        const auto e = view->adj[j];
        EXPECT_EQ(e.target, rec.adj[j].target);
        EXPECT_EQ(e.target_rank, rec.adj[j].target_rank);
        EXPECT_EQ(e.target_out_degree, rec.adj[j].target_out_degree);
        EXPECT_EQ(e.edge_meta, rec.adj[j].edge_meta);
        EXPECT_EQ(e.target_meta, rec.adj[j].target_meta);
      }
      ++checked;
    });
    EXPECT_EQ(checked, fz.local_num_vertices());
    EXPECT_FALSE(fz.local_find(999999999));

    // Census agrees with the mutable graph's.
    const auto a = g.census();
    const auto b = fz.census();
    EXPECT_EQ(a.num_vertices, b.num_vertices);
    EXPECT_EQ(a.num_directed_edges, b.num_directed_edges);
    EXPECT_EQ(a.max_degree, b.max_degree);
    EXPECT_EQ(a.max_out_degree, b.max_out_degree);
    EXPECT_EQ(a.wedge_checks, b.wedge_checks);
  });
}

TEST(Frozen, NoneColumnsOccupyZeroBytes) {
  tc::runtime::run(2, [](tc::communicator& c) {
    tg::dodgr<tg::none, tg::none> g(c);
    tg::graph_builder<tg::none, tg::none> builder(c);
    if (c.rank0()) {
      for (tg::vertex_id u = 0; u < 6; ++u) {
        for (tg::vertex_id v = u + 1; v < 6; ++v) builder.add_edge(u, v);
      }
    }
    builder.build_into(g);
    auto fz = tg::freeze(g);
    const auto& ar = fz.arenas();
    EXPECT_EQ(ar.vmeta.bytes(), 0u);
    EXPECT_EQ(ar.emeta.bytes(), 0u);
    EXPECT_EQ(ar.target_vmeta.bytes(), 0u);
    const auto s = fz.local_storage_stats();
    // Exactly three 8-byte edge columns remain.
    EXPECT_EQ(s.edge_bytes, fz.local_num_edges() * 24);
  });
}

TEST(Frozen, ProjectionPushDownStoresProjectedColumns) {
  tc::runtime::run(3, [](tc::communicator& c) {
    meta_graph g(c);
    build_meta_graph(c, g, tg::ordering_policy::degree);

    // Push the closure survey's projections into the arenas: vertex meta
    // dropped entirely, edge meta kept as the 8-byte timestamp.
    auto fz = tg::freeze(g, tripoll::drop_projection{},
                         [](const std::uint64_t& ts) { return ts; });
    static_assert(std::is_same_v<decltype(fz), tg::frozen_dodgr<tg::none, std::uint64_t>>);
    const auto& ar = fz.arenas();
    EXPECT_EQ(ar.vmeta.bytes(), 0u);
    EXPECT_EQ(ar.target_vmeta.bytes(), 0u);
    EXPECT_EQ(ar.emeta.bytes(), fz.local_num_edges() * 8);

    // The projected edge column holds the projected values.
    g.for_all_local([&](const tg::vertex_id& v, const meta_graph::record_type& rec) {
      const auto view = fz.local_find(v);
      ASSERT_TRUE(view);
      for (std::size_t j = 0; j < rec.adj.size(); ++j) {
        EXPECT_EQ(view->adj[j].edge_meta, rec.adj[j].edge_meta);
      }
    });

    // freeze(plan) picks the plan's projections up automatically.
    hist unused;
    auto plan = tripoll::survey(g)
                    .project_vertex(tripoll::drop_projection{})
                    .project_edge(cb::timestamp_projection{})
                    .add(closure_cb{}, unused);
    auto fz2 = tg::freeze(plan);
    static_assert(
        std::is_same_v<decltype(fz2), tg::frozen_dodgr<tg::none, std::uint64_t>>);
    EXPECT_EQ(fz2.local_num_edges(), fz.local_num_edges());
  });
}

// --- survey equivalence matrix ------------------------------------------------------

class FrozenMatrix
    : public ::testing::TestWithParam<
          std::tuple<tc::backend_kind, tg::ordering_policy, survey_mode>> {
 protected:
  template <typename F>
  void run_ranks(int nranks, F&& fn) {
    if (std::get<0>(GetParam()) == tc::backend_kind::inproc) {
      (void)tc::runtime::run(nranks, std::forward<F>(fn));
    } else {
      tc::runtime::run_socket_local(nranks, std::forward<F>(fn));
    }
  }
};

TEST_P(FrozenMatrix, FrozenSurveyMatchesMapSurvey) {
  const auto [backend, ordering, mode] = GetParam();
  (void)backend;
  EXPECT_NO_THROW(run_ranks(3, [ordering = ordering, mode = mode](tc::communicator& c) {
    meta_graph g(c);
    build_meta_graph(c, g, ordering);

    // Map path: sender-side projection per message.
    hist map_hist;
    cb::count_context map_count;
    auto map_res = tripoll::survey(g)
                       .project_vertex(tripoll::drop_projection{})
                       .project_edge(cb::timestamp_projection{})
                       .add(closure_cb{}, map_hist)
                       .add(cb::count_callback{}, map_count)
                       .run({mode});

    // Frozen path: projection pushed down into the arenas at freeze time;
    // the survey itself runs identity projections over pre-projected data.
    auto fz = tg::freeze(g, tripoll::drop_projection{}, cb::timestamp_projection{});
    hist fz_hist;
    cb::count_context fz_count;
    auto fz_res = tripoll::survey(fz)
                      .add(closure_cb{}, fz_hist)
                      .add(cb::count_callback{}, fz_count)
                      .run({mode});

    require(map_res.total.triangles_found == fz_res.total.triangles_found,
            "triangle counts differ");
    require(map_res.total.triangles_found > 0, "graph has no triangles");
    require(map_count.global_count(c) == fz_count.global_count(c),
            "callback counts differ");
    require(map_res.total.total.volume_bytes == fz_res.total.total.volume_bytes,
            "survey volume differs between storage forms");
    require(map_res.total.total.messages == fz_res.total.total.messages,
            "survey message count differs between storage forms");
    require(map_res.total.pulls_granted == fz_res.total.pulls_granted,
            "pull grants differ");
    require(map_res.total.wedge_candidates == fz_res.total.wedge_candidates,
            "wedge candidates differ");
    require(c.all_reduce_sum(hist_digest(map_hist)) ==
                c.all_reduce_sum(hist_digest(fz_hist)),
            "closure histograms differ");
  }));
}

TEST_P(FrozenMatrix, SnapshotRoundTripReproducesSurvey) {
  const auto [backend, ordering, mode] = GetParam();
  (void)backend;
  const std::string prefix = fresh_prefix("matrix");
  EXPECT_NO_THROW(run_ranks(
      3, [ordering = ordering, mode = mode, prefix = prefix](tc::communicator& c) {
        meta_graph g(c);
        build_meta_graph(c, g, ordering);
        auto fz = tg::freeze(g);
        (void)tg::save_snapshot(fz, prefix);

        auto loaded = tg::load_snapshot<std::uint64_t, std::uint64_t>(c, prefix);
        require(loaded.ordering() == ordering, "ordering policy not preserved");
        require(loaded.local_num_vertices() == fz.local_num_vertices(),
                "vertex count not preserved");
        require(loaded.local_num_edges() == fz.local_num_edges(),
                "edge count not preserved");

        hist a, b;
        auto ra = tripoll::survey(fz).add(closure_cb{}, a).run({mode});
        auto rb = tripoll::survey(loaded).add(closure_cb{}, b).run({mode});
        require(ra.total.triangles_found == rb.total.triangles_found,
                "triangles differ after snapshot round-trip");
        require(ra.total.total.volume_bytes == rb.total.total.volume_bytes,
                "volume differs after snapshot round-trip");
        require(c.all_reduce_sum(hist_digest(a)) == c.all_reduce_sum(hist_digest(b)),
                "histograms differ after snapshot round-trip");
      }));
  remove_snapshot(prefix, 3);
}

namespace {

std::string matrix_name(
    const ::testing::TestParamInfo<
        std::tuple<tc::backend_kind, tg::ordering_policy, survey_mode>>& info) {
  const auto backend = std::get<0>(info.param);
  const auto ordering = std::get<1>(info.param);
  const auto mode = std::get<2>(info.param);
  return std::string(backend == tc::backend_kind::inproc ? "inproc" : "socket") + "_" +
         tg::ordering_name(ordering) + "_" +
         (mode == survey_mode::push_pull ? "push_pull" : "push_only");
}

}  // namespace

INSTANTIATE_TEST_SUITE_P(
    Matrix, FrozenMatrix,
    ::testing::Combine(::testing::Values(tc::backend_kind::inproc,
                                         tc::backend_kind::socket),
                       ::testing::Values(tg::ordering_policy::degree,
                                         tg::ordering_policy::degeneracy),
                       ::testing::Values(survey_mode::push_pull,
                                         survey_mode::push_only)),
    matrix_name);

// --- snapshot details ---------------------------------------------------------------

TEST(Snapshot, FilesAreBitIdenticalAcrossSaves) {
  const std::string p1 = fresh_prefix("bits_a");
  const std::string p2 = fresh_prefix("bits_b");
  tc::runtime::run(2, [&](tc::communicator& c) {
    meta_graph g(c);
    build_meta_graph(c, g, tg::ordering_policy::degeneracy);
    auto fz = tg::freeze(g);
    (void)tg::save_snapshot(fz, p1);
    (void)tg::save_snapshot(fz, p2);
  });
  for (int r = 0; r < 2; ++r) {
    const auto f1 = tg::mapped_file::map(tg::snapshot_rank_path(p1, r));
    const auto f2 = tg::mapped_file::map(tg::snapshot_rank_path(p2, r));
    ASSERT_EQ(f1->size(), f2->size());
    ASSERT_GT(f1->size(), 0u);
    EXPECT_TRUE(f1->is_mapped());
    EXPECT_EQ(std::memcmp(f1->data(), f2->data(), f1->size()), 0);
  }
  remove_snapshot(p1, 2);
  remove_snapshot(p2, 2);
}

TEST(Snapshot, LoadedArenasViewTheMapping) {
  const std::string prefix = fresh_prefix("mmap");
  tc::runtime::run(1, [&](tc::communicator& c) {
    meta_graph g(c);
    build_meta_graph(c, g, tg::ordering_policy::degree);
    auto fz = tg::freeze(g);
    const auto bytes = tg::save_snapshot(fz, prefix);
    EXPECT_EQ(bytes, tg::snapshot_file_bytes(fz.local_num_vertices(),
                                             fz.local_num_edges(), 8, 8));

    auto loaded = tg::load_snapshot<std::uint64_t, std::uint64_t>(c, prefix);
    // Column contents identical to the freshly frozen arenas.
    const auto& a = fz.arenas();
    const auto& b = loaded.arenas();
    ASSERT_EQ(a.target.size(), b.target.size());
    EXPECT_EQ(std::memcmp(a.target.data(), b.target.data(), a.target.bytes()), 0);
    EXPECT_EQ(std::memcmp(a.offset.data(), b.offset.data(), a.offset.bytes()), 0);
    EXPECT_EQ(std::memcmp(a.vmeta.data(), b.vmeta.data(), a.vmeta.bytes()), 0);
  });
  remove_snapshot(prefix, 1);
}

TEST(Snapshot, MismatchesAreRejected) {
  const std::string prefix = fresh_prefix("reject");
  tc::runtime::run(2, [&](tc::communicator& c) {
    meta_graph g(c);
    build_meta_graph(c, g, tg::ordering_policy::degree);
    auto fz = tg::freeze(g);
    (void)tg::save_snapshot(fz, prefix);
  });
  // Missing file.
  tc::runtime::run(1, [&](tc::communicator& c) {
    EXPECT_THROW(((void)tg::load_snapshot<std::uint64_t, std::uint64_t>(
                     c, prefix + ".does_not_exist")),
                 std::runtime_error);
    // Wrong rank count (saved with 2): partition-shaped, must refuse.
    EXPECT_THROW(((void)tg::load_snapshot<std::uint64_t, std::uint64_t>(c, prefix)),
                 std::runtime_error);
  });
  // Wrong metadata layout (saved 8/8 bytes, none/none expects 0/0).
  tc::runtime::run(2, [&](tc::communicator& c) {
    EXPECT_THROW(((void)tg::load_snapshot<tg::none, tg::none>(c, prefix)),
                 std::runtime_error);
  });
  remove_snapshot(prefix, 2);
}

TEST(Snapshot, SocketRanksSaveAndLoadAcrossBackends) {
  // Save from forked socket ranks, reload under inproc (and vice versa):
  // snapshot bytes are backend-independent.
  const std::string prefix = fresh_prefix("xbackend");
  std::uint64_t inproc_triangles = 0;
  tc::runtime::run(3, [&](tc::communicator& c) {
    meta_graph g(c);
    build_meta_graph(c, g, tg::ordering_policy::degeneracy);
    auto fz = tg::freeze(g);
    (void)tg::save_snapshot(fz, prefix);
    cb::count_context ctx;
    (void)cb::plan_for(fz, cb::count_callback{}, ctx).run({});
    if (c.rank0()) inproc_triangles = ctx.global_count(c);
    else (void)ctx.global_count(c);
  });
  ASSERT_GT(inproc_triangles, 0u);

  // Forked socket ranks mmap the inproc-written files.
  EXPECT_NO_THROW(tc::runtime::run_socket_local(
      3, [prefix, inproc_triangles](tc::communicator& c) {
        auto loaded = tg::load_snapshot<std::uint64_t, std::uint64_t>(c, prefix);
        cb::count_context ctx;
        (void)cb::plan_for(loaded, cb::count_callback{}, ctx).run({});
        require(ctx.global_count(c) == inproc_triangles,
                "socket-loaded snapshot changed the triangle count");
      }));
  remove_snapshot(prefix, 3);
}

// --- parallel freeze --------------------------------------------------------

namespace {

/// Byte-compare every column of two arena bundles.
template <typename Arenas>
void expect_arenas_identical(const Arenas& a, const Arenas& b, const char* tag) {
  const auto col = [&](const auto& x, const auto& y, const char* name) {
    ASSERT_EQ(x.size(), y.size()) << tag << " " << name;
    if (x.bytes() > 0) {
      EXPECT_EQ(std::memcmp(x.data(), y.data(), x.bytes()), 0) << tag << " " << name;
    }
  };
  col(a.vid, b.vid, "vid");
  col(a.degree, b.degree, "degree");
  col(a.order_rank, b.order_rank, "order_rank");
  col(a.offset, b.offset, "offset");
  col(a.vmeta, b.vmeta, "vmeta");
  col(a.target, b.target, "target");
  col(a.target_rank, b.target_rank, "target_rank");
  col(a.target_out_degree, b.target_out_degree, "target_out_degree");
  col(a.emeta, b.emeta, "emeta");
  col(a.target_vmeta, b.target_vmeta, "target_vmeta");
  col(a.bm_offset, b.bm_offset, "bm_offset");
  col(a.bm_base, b.bm_base, "bm_base");
  col(a.bm_words, b.bm_words, "bm_words");
}

}  // namespace

TEST(ParallelFreeze, ByteIdenticalArenasAcrossThreadCounts) {
  tc::runtime::run(2, [](tc::communicator& c) {
    meta_graph g(c);
    build_meta_graph(c, g, tg::ordering_policy::degeneracy);
    tg::freeze_options serial_opts;
    serial_opts.threads = 1;
    auto base = tg::freeze(g, serial_opts);
    for (const int threads : {2, 4, 8}) {
      tg::freeze_options o;
      o.threads = threads;
      auto fz = tg::freeze(g, o);
      expect_arenas_identical(base.arenas(), fz.arenas(),
                              ("threads=" + std::to_string(threads)).c_str());
    }
  });
}

TEST(ParallelFreeze, HubBitmapRowsIdenticalAcrossThreadCounts) {
  // Counting-shape freeze (empty metadata) with a low hub threshold so the
  // bitmap sections are non-empty; the two-pass parallel builder must place
  // every row exactly where the serial appender did.
  tc::runtime::run(2, [](tc::communicator& c) {
    tg::dodgr<tg::none, tg::none> g(c);
    tg::graph_builder<tg::none, tg::none> builder(c, tg::ordering_policy::degree);
    tripoll::gen::erdos_renyi_generator er(120, 1500, 77);
    for (std::uint64_t k = static_cast<std::uint64_t>(c.rank()); k < er.num_edges();
         k += static_cast<std::uint64_t>(c.size())) {
      const auto e = er.edge_at(k);
      if (e.u != e.v) builder.add_edge(e.u, e.v);
    }
    builder.build_into(g);
    tg::freeze_options serial_opts;
    serial_opts.hub_degree_threshold = 4;
    serial_opts.threads = 1;
    auto base = tg::freeze(g, serial_opts);
    ASSERT_GT(base.arenas().bm_words.size(), 0u) << "test graph grew no bitmap rows";
    for (const int threads : {2, 4, 8}) {
      tg::freeze_options o = serial_opts;
      o.threads = threads;
      auto fz = tg::freeze(g, o);
      expect_arenas_identical(base.arenas(), fz.arenas(),
                              ("bm threads=" + std::to_string(threads)).c_str());
    }
  });
}

// --- compressed snapshots (format v3) ---------------------------------------

TEST(Snapshot, CompressedRoundTripMatchesRawAndShrinks) {
  const std::string praw = fresh_prefix("v3_raw");
  const std::string pcmp = fresh_prefix("v3_cmp");
  tc::runtime::run(2, [&](tc::communicator& c) {
    meta_graph g(c);
    build_meta_graph(c, g, tg::ordering_policy::degeneracy);
    auto fz = tg::freeze(g);
    const auto raw_bytes = tg::save_snapshot(fz, praw);
    const auto cmp_bytes =
        tg::save_snapshot(fz, pcmp, tg::snapshot_codec::compressed);
    EXPECT_LT(cmp_bytes, raw_bytes);

    auto from_raw = tg::load_snapshot<std::uint64_t, std::uint64_t>(c, praw);
    auto from_cmp = tg::load_snapshot<std::uint64_t, std::uint64_t>(c, pcmp);
    expect_arenas_identical(from_raw.arenas(), from_cmp.arenas(), "raw-vs-v3");

    hist a, b;
    auto ra = tripoll::survey(from_raw).add(closure_cb{}, a).run({});
    auto rb = tripoll::survey(from_cmp).add(closure_cb{}, b).run({});
    EXPECT_EQ(ra.total.triangles_found, rb.total.triangles_found);
    EXPECT_EQ(ra.total.total.volume_bytes, rb.total.total.volume_bytes);
    EXPECT_EQ(ra.total.total.messages, rb.total.total.messages);
    EXPECT_EQ(c.all_reduce_sum(hist_digest(a)), c.all_reduce_sum(hist_digest(b)));
  });
  remove_snapshot(praw, 2);
  remove_snapshot(pcmp, 2);
}

TEST(Snapshot, CompressedBitmapSectionsRoundTrip) {
  const std::string praw = fresh_prefix("v3_bm_raw");
  const std::string pcmp = fresh_prefix("v3_bm_cmp");
  tc::runtime::run(1, [&](tc::communicator& c) {
    tg::dodgr<tg::none, tg::none> g(c);
    tg::graph_builder<tg::none, tg::none> builder(c, tg::ordering_policy::degree);
    tripoll::gen::erdos_renyi_generator er(120, 1500, 78);
    for (std::uint64_t k = 0; k < er.num_edges(); ++k) {
      const auto e = er.edge_at(k);
      if (e.u != e.v) builder.add_edge(e.u, e.v);
    }
    builder.build_into(g);
    tg::freeze_options o;
    o.hub_degree_threshold = 4;
    auto fz = tg::freeze(g, o);
    ASSERT_GT(fz.arenas().bm_words.size(), 0u);
    (void)tg::save_snapshot(fz, praw);
    (void)tg::save_snapshot(fz, pcmp, tg::snapshot_codec::compressed);
    auto from_raw = tg::load_snapshot<tg::none, tg::none>(c, praw);
    auto from_cmp = tg::load_snapshot<tg::none, tg::none>(c, pcmp);
    expect_arenas_identical(from_raw.arenas(), from_cmp.arenas(), "bm raw-vs-v3");
  });
  remove_snapshot(praw, 1);
  remove_snapshot(pcmp, 1);
}

TEST(Snapshot, SectionTableReportsCodecs) {
  const std::string praw = fresh_prefix("sect_raw");
  const std::string pcmp = fresh_prefix("sect_cmp");
  tc::runtime::run(1, [&](tc::communicator& c) {
    meta_graph g(c);
    build_meta_graph(c, g, tg::ordering_policy::degree);
    auto fz = tg::freeze(g);
    (void)tg::save_snapshot(fz, praw);
    (void)tg::save_snapshot(fz, pcmp, tg::snapshot_codec::compressed);
  });
  const auto raw = tg::snapshot_sections(tg::snapshot_rank_path(praw, 0));
  ASSERT_EQ(raw.size(), 13u);
  for (const auto& s : raw) EXPECT_EQ(s.codec, 0u);  // v2: everything raw

  const auto cmp = tg::snapshot_sections(tg::snapshot_rank_path(pcmp, 0));
  ASSERT_EQ(cmp.size(), 13u);
  // Structural u64 columns are varint-packed, metadata stays raw.
  const std::vector<std::uint64_t> want_codec = {1, 1, 1, 2, 0, 3, 1, 1, 0, 0, 2, 1, 0};
  for (std::size_t i = 0; i < cmp.size(); ++i) {
    EXPECT_EQ(cmp[i].codec, want_codec[i]) << "section " << i;
    if (cmp[i].codec != 0) {
      EXPECT_LE(cmp[i].stored_bytes, raw[i].stored_bytes);
    }
  }
  remove_snapshot(praw, 1);
  remove_snapshot(pcmp, 1);
}

// --- corruption rejection ----------------------------------------------------

namespace {

/// Write `bytes` over the file at `path`.
void rewrite_file(const std::string& path, const std::vector<char>& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  if (!bytes.empty()) {
    ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  }
  ASSERT_EQ(std::fclose(f), 0);
}

[[nodiscard]] std::vector<char> slurp_file(const std::string& path) {
  const auto mapped = tg::mapped_file::map(path);
  return {reinterpret_cast<const char*>(mapped->data()),
          reinterpret_cast<const char*>(mapped->data()) + mapped->size()};
}

void expect_load_rejected(const std::string& prefix, const char* what) {
  tc::runtime::run(1, [&](tc::communicator& c) {
    EXPECT_THROW(((void)tg::load_snapshot<std::uint64_t, std::uint64_t>(c, prefix)),
                 std::runtime_error)
        << what;
  });
}

}  // namespace

TEST(Snapshot, TruncationSweepAtEverySectionBoundaryIsRejected) {
  // Both layouts: a file cut at any section start (or mid-header) must be
  // refused -- load_snapshot may never trust a section length into reading
  // past the mapping.
  for (const auto codec : {tg::snapshot_codec::raw, tg::snapshot_codec::compressed}) {
    const std::string prefix =
        fresh_prefix(codec == tg::snapshot_codec::raw ? "trunc_raw" : "trunc_v3");
    tc::runtime::run(1, [&](tc::communicator& c) {
      meta_graph g(c);
      build_meta_graph(c, g, tg::ordering_policy::degree);
      auto fz = tg::freeze(g);
      (void)tg::save_snapshot(fz, prefix, codec);
    });
    const std::string path = tg::snapshot_rank_path(prefix, 0);
    const auto pristine = slurp_file(path);
    const auto sections = tg::snapshot_sections(path);
    std::vector<std::size_t> cuts = {0, 8, 64, 127};
    for (const auto& s : sections) cuts.push_back(static_cast<std::size_t>(s.offset));
    for (const std::size_t cut : cuts) {
      // Zero-sized trailing sections can sit exactly at the file end; a
      // "cut" there is the whole file, not a truncation.
      if (cut >= pristine.size()) continue;
      rewrite_file(path, {pristine.begin(), pristine.begin() + cut});
      expect_load_rejected(prefix, ("truncated at " + std::to_string(cut)).c_str());
    }
    rewrite_file(path, pristine);
    tc::runtime::run(1, [&](tc::communicator& c) {  // restored file loads again
      EXPECT_NO_THROW(((void)tg::load_snapshot<std::uint64_t, std::uint64_t>(c, prefix)));
    });
    remove_snapshot(prefix, 1);
  }
}

TEST(Snapshot, CompressedFlipSweepAtEverySectionIsRejected) {
  // v3 checksums every section (including raw metadata), so flipping the
  // first byte of ANY non-empty section -- or of the section table -- must
  // be caught, and the magic/version words are checked in both layouts.
  const std::string prefix = fresh_prefix("flip_v3");
  tc::runtime::run(1, [&](tc::communicator& c) {
    meta_graph g(c);
    build_meta_graph(c, g, tg::ordering_policy::degree);
    auto fz = tg::freeze(g);
    (void)tg::save_snapshot(fz, prefix, tg::snapshot_codec::compressed);
  });
  const std::string path = tg::snapshot_rank_path(prefix, 0);
  const auto pristine = slurp_file(path);
  const auto sections = tg::snapshot_sections(path);
  std::vector<std::size_t> flip_at = {0, 8, 128};  // magic, version, section table
  for (const auto& s : sections) {
    if (s.stored_bytes > 0) flip_at.push_back(static_cast<std::size_t>(s.offset));
  }
  for (const std::size_t at : flip_at) {
    ASSERT_LT(at, pristine.size());
    auto corrupt = pristine;
    corrupt[at] = static_cast<char>(corrupt[at] ^ 0x5A);
    rewrite_file(path, corrupt);
    expect_load_rejected(prefix, ("flipped byte " + std::to_string(at)).c_str());
  }
  rewrite_file(path, pristine);
  remove_snapshot(prefix, 1);
}

// --- crafted (checksum-valid) hostile files ----------------------------------

namespace {

constexpr std::size_t kV3NumSections = 13;
constexpr std::size_t kV3TableOffset = 128;

std::uint64_t test_fnv1a(const char* p, std::size_t n) {
  std::uint64_t h = 14695981039346656037ull;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= static_cast<std::uint8_t>(p[i]);
    h *= 1099511628211ull;
  }
  return h;
}

std::uint64_t read_u64(const std::vector<char>& b, std::size_t off) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(b[off + i])) << (8 * i);
  }
  return v;
}

void store_u64(std::vector<char>& b, std::size_t off, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) b[off + i] = static_cast<char>((v >> (8 * i)) & 0xFF);
}

void put_u64(std::vector<char>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

void put_varint(std::vector<char>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<char>(v));
}

/// Dense metadata-free ER slab: hub bitmaps only materialize for
/// counting-shape freezes (both projected metadata types empty), so the
/// bitmap-section tests need this graph, not meta_graph.
using plain_graph = tg::dodgr<tg::none, tg::none>;
void build_dense_plain_graph(tc::communicator& c, plain_graph& g) {
  tg::graph_builder<tg::none, tg::none> builder(c, tg::ordering_policy::degree);
  tripoll::gen::erdos_renyi_generator er(120, 1500, 78);
  for (std::uint64_t k = 0; k < er.num_edges(); ++k) {
    const auto e = er.edge_at(k);
    if (e.u != e.v) builder.add_edge(e.u, e.v);
  }
  builder.build_into(g);
}

void expect_load_rejected_plain(const std::string& prefix, const char* what) {
  tc::runtime::run(1, [&](tc::communicator& c) {
    EXPECT_THROW(((void)tg::load_snapshot<tg::none, tg::none>(c, prefix)),
                 std::runtime_error)
        << what;
  });
}

/// Rebuild a v3 snapshot with section `idx` replaced by `bytes` under codec
/// tag `codec`, recomputing the section checksum, the table checksum and
/// the header file size.  The result is a well-formed hostile file -- every
/// integrity check passes, so only semantic validation can reject it.
void rewrite_v3_section(const std::string& path, std::size_t idx, std::uint64_t codec,
                        std::vector<char> bytes) {
  const auto pristine = slurp_file(path);
  const auto sections = tg::snapshot_sections(path);
  ASSERT_EQ(sections.size(), kV3NumSections);
  std::vector<std::vector<char>> stored(kV3NumSections);
  std::vector<std::uint64_t> codecs(kV3NumSections);
  for (std::size_t i = 0; i < kV3NumSections; ++i) {
    const auto& s = sections[i];
    stored[i].assign(pristine.begin() + static_cast<std::ptrdiff_t>(s.offset),
                     pristine.begin() + static_cast<std::ptrdiff_t>(s.offset + s.stored_bytes));
    codecs[i] = s.codec;
  }
  stored[idx] = std::move(bytes);
  codecs[idx] = codec;

  std::vector<char> out(pristine.begin(), pristine.begin() + kV3TableOffset);
  out.resize(kV3TableOffset + kV3NumSections * 24, 0);
  for (std::size_t i = 0; i < kV3NumSections; ++i) {
    store_u64(out, kV3TableOffset + i * 24, codecs[i]);
    store_u64(out, kV3TableOffset + i * 24 + 8, stored[i].size());
    store_u64(out, kV3TableOffset + i * 24 + 16,
              test_fnv1a(stored[i].data(), stored[i].size()));
  }
  store_u64(out, 88, test_fnv1a(out.data() + kV3TableOffset, kV3NumSections * 24));
  for (std::size_t i = 0; i < kV3NumSections; ++i) {
    out.resize((out.size() + 63) / 64 * 64, 0);
    out.insert(out.end(), stored[i].begin(), stored[i].end());
  }
  store_u64(out, 72, out.size());
  rewrite_file(path, out);
}

}  // namespace

TEST(Snapshot, CraftedOffsetColumnsAreRejected) {
  // A crafted v3 file carries valid checksums over hostile offset values --
  // a raw-tagged section with arbitrary interiors, or varint gaps whose
  // running sum wraps past 2^64 back to m.  The decoded offsets become
  // WRITE bounds for the vertex-delta target decode, so interior values
  // must be validated, not just front/back.
  const std::string prefix = fresh_prefix("evil_offsets");
  std::vector<std::uint64_t> good_offsets;
  tc::runtime::run(1, [&](tc::communicator& c) {
    meta_graph g(c);
    build_meta_graph(c, g, tg::ordering_policy::degree);
    auto fz = tg::freeze(g);
    (void)tg::save_snapshot(fz, prefix, tg::snapshot_codec::compressed);
    good_offsets.assign(fz.arenas().offset.data(),
                        fz.arenas().offset.data() + fz.arenas().offset.size());
  });
  const std::string path = tg::snapshot_rank_path(prefix, 0);
  const auto pristine = slurp_file(path);
  const std::uint64_t n = read_u64(pristine, 40);
  const std::uint64_t m = read_u64(pristine, 48);
  ASSERT_GE(n, 2u);
  ASSERT_EQ(good_offsets.size(), n + 1);

  // Sanity for the rewrite helper itself: a raw-tagged section 3 holding
  // the TRUE offsets must load (else the rejections below prove nothing).
  std::vector<char> raw_good;
  for (const auto v : good_offsets) put_u64(raw_good, v);
  rewrite_v3_section(path, 3, 0, raw_good);
  tc::runtime::run(1, [&](tc::communicator& c) {
    EXPECT_NO_THROW(((void)tg::load_snapshot<std::uint64_t, std::uint64_t>(c, prefix)));
  });

  // Raw-tagged offsets: front/back pass the spot check, interiors point
  // past m (would drive an out-of-bounds heap write while decoding targets).
  std::vector<char> raw_evil;
  put_u64(raw_evil, 0);
  for (std::uint64_t i = 1; i < n; ++i) put_u64(raw_evil, m + 1000);
  put_u64(raw_evil, m);
  rewrite_file(path, pristine);
  rewrite_v3_section(path, 3, 0, raw_evil);
  expect_load_rejected(prefix, "raw offsets past m");

  // Gap-coded offsets wrapping 2^64: 0, 2^64-1, then +m+1 wraps back to m.
  std::vector<char> gap_evil;
  put_varint(gap_evil, 0);
  put_varint(gap_evil, ~std::uint64_t{0});
  put_varint(gap_evil, m + 1);
  for (std::uint64_t i = 3; i <= n; ++i) put_varint(gap_evil, 0);
  rewrite_file(path, pristine);
  rewrite_v3_section(path, 3, 2, gap_evil);
  expect_load_rejected(prefix, "gap sum wraps past 2^64");

  remove_snapshot(prefix, 1);
}

TEST(Snapshot, NonRawCodecOnViewServedSectionsIsRejected) {
  // Metadata arenas (sections 4, 8, 9) and bitmap words (12) are served as
  // zero-copy views of their logical size; a crafted file tagging them with
  // a varint codec would make the view read past the stored bytes.
  const std::string prefix = fresh_prefix("evil_viewtag");
  tc::runtime::run(1, [&](tc::communicator& c) {
    meta_graph g(c);
    build_meta_graph(c, g, tg::ordering_policy::degree);
    auto fz = tg::freeze(g);
    (void)tg::save_snapshot(fz, prefix, tg::snapshot_codec::compressed);
  });
  {
    const std::string path = tg::snapshot_rank_path(prefix, 0);
    const auto pristine = slurp_file(path);
    const auto sections = tg::snapshot_sections(path);
    for (const std::size_t sec : {std::size_t{4}, std::size_t{8}, std::size_t{9}}) {
      ASSERT_GT(sections[sec].stored_bytes, 0u) << "section " << sec;
      std::vector<char> same(
          pristine.begin() + static_cast<std::ptrdiff_t>(sections[sec].offset),
          pristine.begin() + static_cast<std::ptrdiff_t>(sections[sec].offset +
                                                         sections[sec].stored_bytes));
      rewrite_file(path, pristine);
      rewrite_v3_section(path, sec, 1 /* varint_delta */, std::move(same));
      expect_load_rejected(prefix,
                           ("non-raw tag on section " + std::to_string(sec)).c_str());
    }
  }
  remove_snapshot(prefix, 1);

  // Section 12 (bm_words) needs a counting-shape graph with bitmap rows.
  const std::string pbm = fresh_prefix("evil_viewtag_bm");
  tc::runtime::run(1, [&](tc::communicator& c) {
    plain_graph g(c);
    build_dense_plain_graph(c, g);
    tg::freeze_options o;
    o.hub_degree_threshold = 4;
    auto fz = tg::freeze(g, o);
    ASSERT_GT(fz.arenas().bm_words.size(), 0u);
    (void)tg::save_snapshot(fz, pbm, tg::snapshot_codec::compressed);
  });
  {
    const std::string path = tg::snapshot_rank_path(pbm, 0);
    const auto pristine = slurp_file(path);
    const auto sections = tg::snapshot_sections(path);
    ASSERT_GT(sections[12].stored_bytes, 0u);
    std::vector<char> same(
        pristine.begin() + static_cast<std::ptrdiff_t>(sections[12].offset),
        pristine.begin() +
            static_cast<std::ptrdiff_t>(sections[12].offset + sections[12].stored_bytes));
    rewrite_v3_section(path, 12, 1 /* varint_delta */, std::move(same));
    expect_load_rejected_plain(pbm, "non-raw tag on section 12");
  }
  remove_snapshot(pbm, 1);
}

TEST(Snapshot, CraftedBmOffsetColumnIsRejected) {
  // bm_offset values index into bm_words inside the survey bitmap kernels;
  // hostile interiors must be rejected at load time even when the section
  // is raw-tagged (where no decode would otherwise touch the values).
  const std::string prefix = fresh_prefix("evil_bmoff");
  tc::runtime::run(1, [&](tc::communicator& c) {
    plain_graph g(c);
    build_dense_plain_graph(c, g);
    tg::freeze_options o;
    o.hub_degree_threshold = 4;
    auto fz = tg::freeze(g, o);
    ASSERT_GT(fz.arenas().bm_words.size(), 0u);
    (void)tg::save_snapshot(fz, prefix, tg::snapshot_codec::compressed);
  });
  const std::string path = tg::snapshot_rank_path(prefix, 0);
  const auto pristine = slurp_file(path);
  const std::uint64_t n = read_u64(pristine, 40);
  const std::uint64_t bm_words = read_u64(pristine, 80);
  ASSERT_GE(n, 2u);
  ASSERT_GT(bm_words, 0u);

  std::vector<char> raw_evil;
  put_u64(raw_evil, 0);
  for (std::uint64_t i = 1; i < n; ++i) put_u64(raw_evil, bm_words + 100);
  put_u64(raw_evil, bm_words);
  rewrite_v3_section(path, 10, 0, raw_evil);
  expect_load_rejected_plain(prefix, "raw bm_offset past bm_words");
  remove_snapshot(prefix, 1);
}

// --- analytics over frozen storage ---------------------------------------------------

TEST(Frozen, AnalyticsRunOnFrozenGraphs) {
  tc::runtime::run(2, [](tc::communicator& c) {
    meta_graph g(c);
    build_meta_graph(c, g, tg::ordering_policy::degree);
    auto fz = tg::freeze(g);

    const auto a = tripoll::analytics::clustering_coefficients(g);
    const auto b = tripoll::analytics::clustering_coefficients(fz);
    EXPECT_EQ(a.triangles, b.triangles);
    EXPECT_EQ(a.total_wedges, b.total_wedges);
    EXPECT_DOUBLE_EQ(a.transitivity, b.transitivity);
    EXPECT_DOUBLE_EQ(a.average_local_cc, b.average_local_cc);
  });
}
