// Robustness tests for the comm runtime: oversized payloads, aggressive
// polling, deep RPC relays, large collectives, and watchdog configuration.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <string>
#include <vector>

#include "comm/counting_set.hpp"
#include "comm/distributed_map.hpp"
#include "comm/runtime.hpp"

namespace tc = tripoll::comm;

namespace {

std::atomic<std::uint64_t> g_total{0};

struct sum_vector_handler {
  void operator()(const std::vector<std::uint64_t>& v) {
    g_total.fetch_add(std::accumulate(v.begin(), v.end(), std::uint64_t{0}));
  }
};

struct relay_handler {
  void operator()(tc::communicator& c, std::uint32_t hops, std::uint64_t token) {
    g_total.fetch_add(token);
    if (hops > 0) {
      c.async((c.rank() + static_cast<int>(token % 3) + 1) % c.size(), relay_handler{},
              hops - 1, token + 1);
    }
  }
};

}  // namespace

TEST(Robustness, PayloadLargerThanBufferCapacity) {
  // One message 100x the flush threshold must still arrive intact.
  tc::config cfg;
  cfg.buffer_capacity = 1024;
  g_total = 0;
  tc::runtime::run(
      2,
      [](tc::communicator& c) {
        if (c.rank0()) {
          std::vector<std::uint64_t> big(100 * 1024 / 8, 1);
          c.async(1, sum_vector_handler{}, big);
        }
        c.barrier();
      },
      cfg);
  EXPECT_EQ(g_total.load(), 100u * 1024 / 8);
}

TEST(Robustness, AggressivePollingEveryOp) {
  tc::config cfg;
  cfg.poll_every = 1;
  cfg.drain_batch = 1;
  g_total = 0;
  tc::runtime::run(
      4,
      [](tc::communicator& c) {
        for (int i = 0; i < 2000; ++i) {
          c.async((c.rank() + 1) % c.size(), sum_vector_handler{},
                  std::vector<std::uint64_t>{1});
        }
        c.barrier();
      },
      cfg);
  EXPECT_EQ(g_total.load(), 8000u);
}

TEST(Robustness, DeepRelayChains) {
  // 64 chains of 200 hops each, hopping pseudo-randomly between ranks; the
  // barrier must not complete until every hop has executed.
  g_total = 0;
  tc::runtime::run(5, [](tc::communicator& c) {
    if (c.rank0()) {
      for (std::uint64_t chain = 0; chain < 64; ++chain) {
        c.async(static_cast<int>(chain % c.size()), relay_handler{}, std::uint32_t{199},
                chain * 1000);
      }
    }
    c.barrier();
  });
  // Each chain of 200 executions adds token, token+1, ..., token+199.
  std::uint64_t expected = 0;
  for (std::uint64_t chain = 0; chain < 64; ++chain) {
    for (std::uint64_t h = 0; h < 200; ++h) expected += chain * 1000 + h;
  }
  EXPECT_EQ(g_total.load(), expected);
}

TEST(Robustness, LargeAllGather) {
  tc::runtime::run(6, [](tc::communicator& c) {
    std::vector<std::uint64_t> mine(20000, static_cast<std::uint64_t>(c.rank()));
    const auto all = c.all_gather(mine);
    ASSERT_EQ(all.size(), 6u);
    for (int r = 0; r < 6; ++r) {
      ASSERT_EQ(all[static_cast<std::size_t>(r)].size(), 20000u);
      EXPECT_EQ(all[static_cast<std::size_t>(r)].front(), static_cast<std::uint64_t>(r));
      EXPECT_EQ(all[static_cast<std::size_t>(r)].back(), static_cast<std::uint64_t>(r));
    }
  });
}

TEST(Robustness, CountingSetManyDistinctKeys) {
  tc::runtime::run(4, [](tc::communicator& c) {
    tc::counting_set<std::uint64_t> counts(c, /*cache_capacity=*/128);
    c.barrier();
    // 4 ranks x 25k distinct keys with overlap across ranks.
    for (std::uint64_t k = 0; k < 25000; ++k) {
      counts.async_increment(k % 10007);
      counts.async_increment(k);
    }
    counts.finalize();
    EXPECT_EQ(counts.global_total(), 4u * 2u * 25000u);
    EXPECT_EQ(counts.global_size(), 25000u);  // keys 0..24999
  });
}

TEST(Robustness, MapWithStringVectorValues) {
  struct append_visitor {
    void operator()(const std::string& /*key*/, std::vector<std::string>& value,
                    const std::string& item) {
      value.push_back(item);
    }
  };
  tc::runtime::run(3, [](tc::communicator& c) {
    tc::distributed_map<std::string, std::vector<std::string>> map(c);
    c.barrier();
    for (int i = 0; i < 50; ++i) {
      map.async_visit("shared-key", append_visitor{},
                      "rank" + std::to_string(c.rank()) + "-" + std::to_string(i));
    }
    c.barrier();
    std::uint64_t total = 0;
    map.for_all_local([&](const std::string&, const std::vector<std::string>& v) {
      total += v.size();
    });
    EXPECT_EQ(c.all_reduce_sum(total), 150u);
    EXPECT_EQ(map.global_size(), 1u);
  });
}

TEST(Robustness, WatchdogDisabledDoesNotFire) {
  tc::config cfg;
  cfg.barrier_timeout_seconds = 0.0;  // disabled
  tc::runtime::run(
      3,
      [](tc::communicator& c) {
        for (int i = 0; i < 10; ++i) c.barrier();
      },
      cfg);
}

TEST(Robustness, ManySequentialRuntimes) {
  // Runtimes must be independently constructible/destructible in one
  // process (benches do this dozens of times).
  for (int round = 0; round < 20; ++round) {
    std::atomic<int> ran{0};
    tc::runtime::run(3, [&](tc::communicator& c) {
      (void)c.all_reduce_sum(1);
      ran.fetch_add(1);
    });
    EXPECT_EQ(ran.load(), 3);
  }
}

TEST(Robustness, InterleavedHeterogeneousTraffic) {
  // Counting-set flushes, map visits and plain RPCs interleave in the same
  // buffers -- the serialization heterogeneity the paper highlights.
  struct bump_visitor {
    void operator()(const std::uint64_t&, std::uint64_t& v) { ++v; }
  };
  g_total = 0;
  tc::runtime::run(4, [](tc::communicator& c) {
    tc::counting_set<std::string> counts(c, 16);
    tc::distributed_map<std::uint64_t, std::uint64_t> map(c);
    c.barrier();
    for (int i = 0; i < 500; ++i) {
      counts.async_increment("key" + std::to_string(i % 37));
      map.async_visit(static_cast<std::uint64_t>(i % 53), bump_visitor{});
      c.async((c.rank() + 1) % c.size(), sum_vector_handler{},
              std::vector<std::uint64_t>{2});
    }
    counts.finalize();
    EXPECT_EQ(counts.global_total(), 4u * 500u);
    std::uint64_t map_total = 0;
    map.for_all_local([&](const std::uint64_t&, const std::uint64_t& v) { map_total += v; });
    EXPECT_EQ(c.all_reduce_sum(map_total), 4u * 500u);
  });
  EXPECT_EQ(g_total.load(), 4u * 500u * 2u);
}
