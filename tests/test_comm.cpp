// Tests for the simulated distributed runtime: RPC delivery, barriers with
// termination detection, collectives, stats accounting, failure propagation.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "comm/communicator.hpp"
#include "comm/runtime.hpp"

namespace tc = tripoll::comm;

namespace {

// Handlers mutate rank-local state addressed through dist_handle, or global
// atomics when cross-rank totals are what the test asserts.
std::atomic<std::uint64_t> g_counter{0};

struct bump_counter {
  void operator()(std::uint64_t by) { g_counter.fetch_add(by); }
};

struct local_tally {
  std::uint64_t received = 0;
  std::vector<std::string> strings;
};

struct tally_handler {
  void operator()(tc::communicator& c, tc::dist_handle<local_tally> h, std::uint64_t v) {
    c.resolve(h).received += v;
  }
};

struct tally_string_handler {
  void operator()(tc::communicator& c, tc::dist_handle<local_tally> h,
                  const std::string& s) {
    c.resolve(h).strings.push_back(s);
  }
};

}  // namespace

TEST(Runtime, RunsAllRanks) {
  for (int n : {1, 2, 3, 8}) {
    std::atomic<int> ran{0};
    tc::runtime::run(n, [&](tc::communicator& c) {
      EXPECT_GE(c.rank(), 0);
      EXPECT_LT(c.rank(), c.size());
      EXPECT_EQ(c.size(), n);
      ran.fetch_add(1);
    });
    EXPECT_EQ(ran.load(), n);
  }
}

TEST(Runtime, RejectsZeroRanks) {
  EXPECT_THROW(tc::runtime::run(0, [](tc::communicator&) {}), std::invalid_argument);
}

TEST(Async, DeliversToEveryRank) {
  g_counter = 0;
  tc::runtime::run(4, [](tc::communicator& c) {
    for (int dest = 0; dest < c.size(); ++dest) {
      c.async(dest, bump_counter{}, std::uint64_t{1});
    }
    c.barrier();
  });
  EXPECT_EQ(g_counter.load(), 16u);
}

TEST(Async, HandlerRunsOnDestinationRank) {
  tc::runtime::run(4, [](tc::communicator& c) {
    local_tally tally;
    auto handle = c.register_object(tally);
    c.barrier();  // all ranks registered before messages fly
    // Everyone sends rank r the value r+1.
    for (int dest = 0; dest < c.size(); ++dest) {
      c.async(dest, tally_handler{}, handle, static_cast<std::uint64_t>(dest + 1));
    }
    c.barrier();
    EXPECT_EQ(tally.received,
              static_cast<std::uint64_t>(c.rank() + 1) * static_cast<std::uint64_t>(c.size()));
  });
}

TEST(Async, SelfSendWorks) {
  tc::runtime::run(3, [](tc::communicator& c) {
    local_tally tally;
    auto handle = c.register_object(tally);
    c.barrier();
    c.async(c.rank(), tally_handler{}, handle, std::uint64_t{7});
    c.barrier();
    EXPECT_EQ(tally.received, 7u);
  });
}

TEST(Async, StringPayloadsSurviveBuffering) {
  tc::runtime::run(3, [](tc::communicator& c) {
    local_tally tally;
    auto handle = c.register_object(tally);
    c.barrier();
    if (c.rank0()) {
      for (int i = 0; i < 100; ++i) {
        c.async(1, tally_string_handler{}, handle,
                std::string(static_cast<std::size_t>(i), 'x'));
      }
    }
    c.barrier();
    if (c.rank() == 1) {
      ASSERT_EQ(tally.strings.size(), 100u);
      for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(tally.strings[static_cast<std::size_t>(i)].size(),
                  static_cast<std::size_t>(i));
      }
    } else {
      EXPECT_TRUE(tally.strings.empty());
    }
  });
}

namespace {

// Message chains: handler that forwards to the next rank until hops exhaust.
struct chain_handler {
  void operator()(tc::communicator& c, std::uint32_t hops_left) {
    g_counter.fetch_add(1);
    if (hops_left > 0) {
      c.async((c.rank() + 1) % c.size(), chain_handler{}, hops_left - 1);
    }
  }
};

}  // namespace

TEST(Barrier, DrainsHandlerGeneratedMessages) {
  // A barrier must not complete while handler-spawned messages are pending,
  // even across multiple generations of re-sends.
  g_counter = 0;
  tc::runtime::run(4, [](tc::communicator& c) {
    if (c.rank0()) {
      c.async(1, chain_handler{}, std::uint32_t{63});
    }
    c.barrier();
    EXPECT_EQ(g_counter.load(), 64u);
  });
}

TEST(Barrier, ManyConsecutiveBarriers) {
  tc::runtime::run(8, [](tc::communicator& c) {
    for (int i = 0; i < 50; ++i) c.barrier();
  });
}

TEST(Barrier, HeavyAllToAllTraffic) {
  g_counter = 0;
  const int n = 6;
  const int per_pair = 500;
  tc::runtime::run(n, [&](tc::communicator& c) {
    for (int round = 0; round < per_pair; ++round) {
      for (int dest = 0; dest < c.size(); ++dest) {
        c.async(dest, bump_counter{}, std::uint64_t{1});
      }
    }
    c.barrier();
  });
  EXPECT_EQ(g_counter.load(), static_cast<std::uint64_t>(n) * n * per_pair);
}

TEST(Collectives, AllReduceSum) {
  tc::runtime::run(5, [](tc::communicator& c) {
    const auto total = c.all_reduce_sum<std::uint64_t>(static_cast<std::uint64_t>(c.rank() + 1));
    EXPECT_EQ(total, 15u);  // 1+2+3+4+5
  });
}

TEST(Collectives, AllReduceMinMax) {
  tc::runtime::run(4, [](tc::communicator& c) {
    EXPECT_EQ(c.all_reduce_min(10 + c.rank()), 10);
    EXPECT_EQ(c.all_reduce_max(10 + c.rank()), 13);
  });
}

TEST(Collectives, AllReduceDouble) {
  tc::runtime::run(3, [](tc::communicator& c) {
    const double total = c.all_reduce_sum(0.5 * (c.rank() + 1));
    EXPECT_DOUBLE_EQ(total, 3.0);
  });
}

TEST(Collectives, RepeatedReductionsDoNotLeakState) {
  tc::runtime::run(3, [](tc::communicator& c) {
    for (int i = 0; i < 10; ++i) {
      EXPECT_EQ(c.all_reduce_sum<std::uint64_t>(1), 3u);
    }
  });
}

TEST(Collectives, AllGatherOrdersByRank) {
  tc::runtime::run(4, [](tc::communicator& c) {
    auto values = c.all_gather(std::string(1, static_cast<char>('a' + c.rank())));
    ASSERT_EQ(values.size(), 4u);
    EXPECT_EQ(values[0], "a");
    EXPECT_EQ(values[3], "d");
  });
}

TEST(Collectives, Broadcast) {
  tc::runtime::run(4, [](tc::communicator& c) {
    const std::string v = c.rank() == 2 ? "from-two" : "";
    EXPECT_EQ(c.broadcast(v, 2), "from-two");
  });
}

TEST(Stats, CountsRemoteAndLocalBytes) {
  auto stats = tc::runtime::run(2, [](tc::communicator& c) {
    if (c.rank0()) {
      c.async(1, bump_counter{}, std::uint64_t{1});  // remote
      c.async(0, bump_counter{}, std::uint64_t{1});  // local
    }
    c.barrier();
  });
  EXPECT_GT(stats.remote_bytes, 0u);
  EXPECT_GT(stats.local_bytes, 0u);
  EXPECT_GE(stats.messages_sent, 2u);
  EXPECT_GE(stats.handlers_run, 2u);
}

TEST(Stats, PhaseDeltasViaSnapshots) {
  tc::runtime::run(2, [](tc::communicator& c) {
    c.barrier();
    const auto before = c.stats();
    if (c.rank0()) c.async(1, bump_counter{}, std::uint64_t{1});
    c.barrier();
    const auto after = c.stats();
    const auto delta = after - before;
    if (c.rank0()) {
      EXPECT_GT(delta.remote_bytes, 0u);
    }
  });
}

TEST(Stats, BufferingAggregatesMessages) {
  // With a large buffer, many small RPCs coalesce into few transport buffers.
  tc::config cfg;
  cfg.buffer_capacity = 64 * 1024;
  auto stats = tc::runtime::run(
      2,
      [](tc::communicator& c) {
        if (c.rank0()) {
          for (int i = 0; i < 1000; ++i) c.async(1, bump_counter{}, std::uint64_t{0});
        }
        c.barrier();
      },
      cfg);
  EXPECT_GE(stats.messages_sent, 1000u);
  EXPECT_LE(stats.buffers_sent, 20u);  // ~1000 tiny messages in a handful of flushes
}

// --- coalescing: watermarks, adaptivity, pooling, drain order ---------------

namespace {

struct seq_tally {
  std::map<int, std::vector<std::uint64_t>> by_source;
};

struct seq_handler {
  void operator()(tc::communicator& c, tc::dist_handle<seq_tally> h, int from,
                  std::uint64_t seq) {
    c.resolve(h).by_source[from].push_back(seq);
  }
};

}  // namespace

TEST(Flush, MessageWatermarkBoundsCoalescing) {
  // With an effectively infinite byte threshold, the message-count watermark
  // must still force flushes.
  tc::config cfg;
  cfg.buffer_capacity = 8 * 1024 * 1024;
  cfg.adaptive_flush = false;  // pin byte threshold to buffer_capacity
  cfg.flush_message_watermark = 8;
  auto stats = tc::runtime::run(
      2,
      [](tc::communicator& c) {
        if (c.rank0()) {
          for (int i = 0; i < 100; ++i) c.async(1, bump_counter{}, std::uint64_t{1});
        }
        c.barrier();
      },
      cfg);
  EXPECT_GE(stats.messages_sent, 100u);
  // 100 messages at watermark 8 = 12 watermark flushes + the barrier flush.
  EXPECT_GE(stats.buffers_sent, 12u);
}

TEST(Flush, AdaptiveThresholdGrowsUnderLoadAndDecaysAtBarriers) {
  tc::config cfg;
  cfg.buffer_capacity = 16 * 1024;
  cfg.flush_min_bytes = 256;
  cfg.adaptive_flush = true;
  tc::runtime::run(
      2,
      [&](tc::communicator& c) {
        EXPECT_EQ(c.flush_threshold(1), 256u);
        if (c.rank0()) {
          // ~160 KB of traffic: enough byte-watermark flushes to double the
          // threshold up to the ceiling.
          for (int i = 0; i < 20000; ++i) c.async(1, bump_counter{}, std::uint64_t{1});
          EXPECT_EQ(c.flush_threshold(1), cfg.buffer_capacity);
        }
        c.barrier();
        if (c.rank0()) {
          // decay_flush_thresholds() halved it on barrier entry.
          EXPECT_LT(c.flush_threshold(1), cfg.buffer_capacity);
          for (int i = 0; i < 10; ++i) c.barrier();
          EXPECT_EQ(c.flush_threshold(1), 256u);  // back at the floor
        } else {
          for (int i = 0; i < 10; ++i) c.barrier();
        }
      },
      cfg);
}

TEST(Flush, FixedThresholdWhenAdaptiveDisabled) {
  tc::config cfg;
  cfg.buffer_capacity = 4096;
  cfg.adaptive_flush = false;
  tc::runtime::run(
      2,
      [&](tc::communicator& c) {
        EXPECT_EQ(c.flush_threshold(0), 4096u);
        if (c.rank0()) {
          for (int i = 0; i < 5000; ++i) c.async(1, bump_counter{}, std::uint64_t{1});
          EXPECT_EQ(c.flush_threshold(1), 4096u);  // never moves
        }
        c.barrier();
        EXPECT_EQ(c.flush_threshold(0), 4096u);
      },
      cfg);
}

TEST(Pool, PayloadStorageIsRecycledAcrossRanks) {
  // Rank 0 floods rank 1; the drained payload blocks join rank 1's pool and
  // back its replies, so rank 1's flushes hit the pool instead of malloc.
  tc::config cfg;
  cfg.buffer_capacity = 2048;
  cfg.flush_min_bytes = 2048;
  auto stats = tc::runtime::run(
      2,
      [](tc::communicator& c) {
        if (c.rank0()) {
          for (int i = 0; i < 2000; ++i) c.async(1, bump_counter{}, std::uint64_t{1});
        }
        c.barrier();
        if (c.rank() == 1) {
          for (int i = 0; i < 2000; ++i) c.async(0, bump_counter{}, std::uint64_t{1});
          EXPECT_GT(c.pool().hits(), 0u);
        }
        c.barrier();
      },
      cfg);
  EXPECT_GE(stats.handlers_run, 4000u);
}

TEST(Pool, DisabledByZeroTierCap) {
  tc::config cfg;
  cfg.buffer_capacity = 2048;
  cfg.pool_buffers_per_tier = 0;
  tc::runtime::run(
      2,
      [](tc::communicator& c) {
        if (c.rank0()) {
          for (int i = 0; i < 2000; ++i) c.async(1, bump_counter{}, std::uint64_t{1});
        }
        c.barrier();
        c.async((c.rank() + 1) % c.size(), bump_counter{}, std::uint64_t{1});
        c.barrier();
        EXPECT_EQ(c.pool().hits(), 0u);
        EXPECT_EQ(c.pool().recycled(), 0u);
      },
      cfg);
}

TEST(Drain, PerSourceOrderSurvivesInterleavedDelivery) {
  // Buffers from many sources drain in arbitrary interleaving (tiny flush
  // thresholds force many small buffers), but messages from any one source
  // must be processed in send order.
  tc::config cfg;
  cfg.buffer_capacity = 64;
  cfg.flush_min_bytes = 64;
  const int n = 4;
  const std::uint64_t per_rank = 500;
  tc::runtime::run(
      n,
      [&](tc::communicator& c) {
        seq_tally tally;
        auto handle = c.register_object(tally);
        c.barrier();
        for (std::uint64_t s = 0; s < per_rank; ++s) {
          c.async(0, seq_handler{}, handle, c.rank(), s);
        }
        c.barrier();
        if (c.rank0()) {
          ASSERT_EQ(tally.by_source.size(), static_cast<std::size_t>(n));
          for (const auto& [from, seqs] : tally.by_source) {
            ASSERT_EQ(seqs.size(), per_rank) << "source " << from;
            for (std::uint64_t s = 0; s < per_rank; ++s) {
              ASSERT_EQ(seqs[s], s) << "source " << from << " reordered at " << s;
            }
          }
        }
      },
      cfg);
}

TEST(Abort, ExceptionPropagatesToCaller) {
  EXPECT_THROW(tc::runtime::run(4,
                                [](tc::communicator& c) {
                                  if (c.rank() == 2) {
                                    throw std::runtime_error("rank 2 failed");
                                  }
                                  // Other ranks park in a barrier; they must
                                  // unwind rather than deadlock.
                                  c.barrier();
                                }),
               std::runtime_error);
}

TEST(Abort, FirstErrorWins) {
  try {
    tc::runtime::run(2, [](tc::communicator& c) {
      if (c.rank() == 1) throw std::runtime_error("boom");
      c.barrier();
    });
    FAIL() << "expected exception";
  } catch (const std::runtime_error& e) {
    // Either the original error or (rarely) the abort notification reaches
    // the caller first; the original must be preferred when present.
    EXPECT_TRUE(std::string(e.what()) == "boom" ||
                std::string(e.what()).find("aborted") != std::string::npos);
  }
}

// --- parameterized sweep: rank counts x buffer sizes --------------------------------

class CommSweep : public ::testing::TestWithParam<std::tuple<int, std::size_t>> {};

TEST_P(CommSweep, AllToAllCountsExact) {
  const auto [nranks, buffer_capacity] = GetParam();
  g_counter = 0;
  tc::config cfg;
  cfg.buffer_capacity = buffer_capacity;
  tc::runtime::run(
      nranks,
      [&](tc::communicator& c) {
        for (int dest = 0; dest < c.size(); ++dest) {
          for (int i = 0; i < 50; ++i) c.async(dest, bump_counter{}, std::uint64_t{1});
        }
        c.barrier();
      },
      cfg);
  EXPECT_EQ(g_counter.load(), static_cast<std::uint64_t>(nranks) * nranks * 50);
}

INSTANTIATE_TEST_SUITE_P(
    RanksAndBuffers, CommSweep,
    ::testing::Combine(::testing::Values(1, 2, 4, 7),
                       ::testing::Values(std::size_t{64}, std::size_t{1024},
                                         std::size_t{65536})));
