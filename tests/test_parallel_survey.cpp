// Tests for the intra-rank parallel survey traversal (core/survey.hpp +
// core/parallel.hpp) and the hub/tail bitmap intersection dispatch
// (core/intersect.hpp + the freeze-time bitmap arenas).
//
// The load-bearing property is BIT-IDENTITY: triangle counts, per-callback
// fire counts, volume_bytes and messages must not move across
//   threads x backend x ordering x mode x storage form x hub threshold.
// Wall clock is the only thing allowed to change (benched separately in
// bench_parallel_traversal).
//
// Socket ranks are forked child processes, so assertions there run INSIDE
// the ranks via throw-based require(); the parent turns child exit status
// into test failures.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <tuple>
#include <vector>

#include "comm/counting_set.hpp"
#include "comm/runtime.hpp"
#include "core/callbacks.hpp"
#include "core/intersect.hpp"
#include "core/survey.hpp"
#include "gen/erdos_renyi.hpp"
#include "graph/builder.hpp"
#include "graph/dodgr.hpp"
#include "graph/frozen.hpp"
#include "graph/ordering.hpp"
#include "serial/hash.hpp"

namespace tc = tripoll::comm;
namespace tg = tripoll::graph;
namespace cb = tripoll::callbacks;

using tripoll::reduce_scope;
using tripoll::survey_mode;
using tripoll::survey_options;
using tripoll::survey_result;

namespace {

/// In-rank check that works from forked socket ranks: throw, don't EXPECT.
void require(bool cond, const std::string& what) {
  if (!cond) throw std::runtime_error("parallel survey check failed: " + what);
}

/// A skewed test graph: a K10 hub core every rank touches plus a
/// deterministic ER slab.  Dense low ids keep freeze-time bitmap rows past
/// the density guard, so low hub thresholds really do build bitmaps.
void build_graph(tc::communicator& c, tg::dodgr<tg::none, tg::none>& g,
                 tg::ordering_policy ordering) {
  tg::graph_builder<tg::none, tg::none> builder(c, ordering);
  if (c.rank0()) {
    for (tg::vertex_id u = 0; u < 10; ++u) {
      for (tg::vertex_id v = u + 1; v < 10; ++v) builder.add_edge(u, v);
    }
    // Star edges off the core: hubs with degree >> the clique's.
    for (tg::vertex_id v = 10; v < 60; ++v) builder.add_edge(v % 4, v);
  }
  tripoll::gen::erdos_renyi_generator er(120, 900, 4321);
  for (std::uint64_t k = static_cast<std::uint64_t>(c.rank()); k < er.num_edges();
       k += static_cast<std::uint64_t>(c.size())) {
    const auto e = er.edge_at(k);
    if (e.u == e.v) continue;
    builder.add_edge(e.u, e.v);
  }
  builder.build_into(g);
}

/// Everything that must be bit-identical across thread counts.
struct run_fingerprint {
  std::uint64_t triangles = 0;
  std::uint64_t fires = 0;
  std::uint64_t volume_bytes = 0;
  std::uint64_t messages = 0;
  std::uint64_t push_batches = 0;
  std::uint64_t wedge_candidates = 0;
  std::uint64_t bitmap_batches = 0;
  std::uint64_t list_batches = 0;

  bool operator==(const run_fingerprint&) const = default;
};

template <typename Graph>
run_fingerprint count_run(tc::communicator& c, Graph& g, survey_options opts) {
  cb::count_context ctx;
  const auto r = cb::plan_for(g, cb::count_callback{}, ctx).run(opts);
  run_fingerprint fp;
  fp.triangles = ctx.global_count(c);
  fp.fires = r.invocations[0];
  fp.volume_bytes = r.total.total.volume_bytes;
  fp.messages = r.total.total.messages;
  fp.push_batches = r.total.push_batches;
  fp.wedge_candidates = r.total.wedge_candidates;
  fp.bitmap_batches = r.total.bitmap_batches;
  fp.list_batches = r.total.list_batches;
  return fp;
}

std::string fp_str(const run_fingerprint& fp) {
  return "tri=" + std::to_string(fp.triangles) + " fires=" + std::to_string(fp.fires) +
         " vol=" + std::to_string(fp.volume_bytes) +
         " msg=" + std::to_string(fp.messages) +
         " pb=" + std::to_string(fp.push_batches) +
         " wc=" + std::to_string(fp.wedge_candidates) +
         " bm=" + std::to_string(fp.bitmap_batches) +
         " ls=" + std::to_string(fp.list_batches);
}

}  // namespace

// --- thread-count identity matrix ---------------------------------------------------

class ParallelMatrix
    : public ::testing::TestWithParam<std::tuple<tg::ordering_policy, survey_mode>> {};

TEST_P(ParallelMatrix, ThreadSweepIsBitIdentical) {
  const auto [ordering, mode] = GetParam();
  tc::runtime::run(3, [ordering, mode](tc::communicator& c) {
    tg::dodgr<tg::none, tg::none> g(c);
    build_graph(c, g, ordering);

    // Map-form baseline (always single-threaded traversal).
    const auto map_fp = count_run(c, g, {mode});

    auto fz = tg::freeze(g);
    run_fingerprint base;
    for (const int threads : {1, 2, 4, 8}) {
      const auto fp = count_run(c, fz, {mode, threads});
      if (threads == 1) {
        base = fp;
        // The frozen run must agree with the map run on every observable
        // except the kernel mix (the map form has no bitmap rows).
        require(fp.triangles == map_fp.triangles, "frozen vs map triangles");
        require(fp.fires == map_fp.fires, "frozen vs map fires");
        require(fp.volume_bytes == map_fp.volume_bytes, "frozen vs map volume");
        require(fp.messages == map_fp.messages, "frozen vs map messages");
        require(map_fp.bitmap_batches == 0, "map run must not use bitmaps");
        require(fp.bitmap_batches + fp.list_batches ==
                    map_fp.bitmap_batches + map_fp.list_batches,
                "total closed batches frozen vs map");
        require(fp.triangles > 0, "graph must contain triangles");
      } else {
        require(fp == base, "threads=" + std::to_string(threads) + " diverged: " +
                                fp_str(fp) + " vs " + fp_str(base));
      }
    }
  });
}

INSTANTIATE_TEST_SUITE_P(
    OrderingsAndModes, ParallelMatrix,
    ::testing::Combine(::testing::Values(tg::ordering_policy::degree,
                                         tg::ordering_policy::degeneracy),
                       ::testing::Values(survey_mode::push_only,
                                         survey_mode::push_pull)));

// --- hub threshold sweep ------------------------------------------------------------

TEST(ParallelSurvey, HubThresholdSweepIsEquivalent) {
  tc::runtime::run(2, [](tc::communicator& c) {
    tg::dodgr<tg::none, tg::none> g(c);
    build_graph(c, g, tg::ordering_policy::degree);

    run_fingerprint base;
    bool have_base = false;
    bool any_bitmaps = false;
    for (const std::uint64_t threshold : {std::uint64_t{1}, std::uint64_t{4},
                                          std::uint64_t{64},
                                          std::uint64_t{1} << 30}) {
      tg::freeze_options fo;
      fo.hub_degree_threshold = threshold;
      auto fz = tg::freeze(g, fo);
      for (const int threads : {1, 4}) {
        const auto fp = count_run(c, fz, {survey_mode::push_pull, threads});
        if (!have_base) {
          base = fp;
          have_base = true;
        } else {
          // The kernel mix moves with the threshold; nothing else may.
          auto norm = fp;
          norm.bitmap_batches = base.bitmap_batches;
          norm.list_batches = base.list_batches;
          require(norm == base, "threshold=" + std::to_string(threshold) +
                                    " threads=" + std::to_string(threads) +
                                    " diverged: " + fp_str(fp));
          require(fp.bitmap_batches + fp.list_batches ==
                      base.bitmap_batches + base.list_batches,
                  "total closed batches across thresholds");
        }
        if (fp.bitmap_batches > 0) any_bitmaps = true;
        // Thread count must not move the kernel mix at a fixed threshold.
        const auto fp1 = count_run(c, fz, {survey_mode::push_pull, 1});
        require(fp1.bitmap_batches == fp.bitmap_batches &&
                    fp1.list_batches == fp.list_batches,
                "kernel mix moved with thread count");
      }
    }
    require(any_bitmaps, "no threshold produced a single bitmap batch");

    // Bitmaps disabled: the dispatch must fall back to lists everywhere.
    tg::freeze_options off;
    off.build_hub_bitmaps = false;
    auto fz_off = tg::freeze(g, off);
    require(!fz_off.has_hub_bitmaps(), "build_hub_bitmaps=false left rows behind");
    const auto fp_off = count_run(c, fz_off, {survey_mode::push_pull, 4});
    require(fp_off.bitmap_batches == 0, "bitmap batches without bitmap rows");
    require(fp_off.triangles == base.triangles && fp_off.fires == base.fires &&
                fp_off.volume_bytes == base.volume_bytes &&
                fp_off.messages == base.messages,
            "bitmap on/off changed results");
  });
}

// --- kernel identity on adversarial inputs -------------------------------------------

namespace {

std::vector<std::size_t> probe_hits_dispatch(const tripoll::core::bitmap_view& bm,
                                             const std::vector<std::uint64_t>& ids) {
  std::vector<std::size_t> hits;
  tripoll::core::bitmap_probe(bm, reinterpret_cast<const std::byte*>(ids.data()),
                              sizeof(std::uint64_t), ids.size(),
                              [&](std::size_t i) { hits.push_back(i); });
  return hits;
}

std::vector<std::size_t> probe_hits_scalar(const tripoll::core::bitmap_view& bm,
                                           const std::vector<std::uint64_t>& ids) {
  std::vector<std::size_t> hits;
  tripoll::core::bitmap_probe_scalar(bm, reinterpret_cast<const std::byte*>(ids.data()),
                                     sizeof(std::uint64_t), ids.size(),
                                     [&](std::size_t i) { hits.push_back(i); });
  return hits;
}

}  // namespace

TEST(BitmapKernels, DispatchMatchesScalarOnAdversarialLists) {
  // A row over [1000, 1000 + 4*64) with a skewed membership pattern.
  std::vector<std::uint64_t> words(4, 0);
  tripoll::core::bitmap_view bm{words.data(), words.size(), 1000};
  for (std::uint64_t off = 0; off < 256; ++off) {
    if (off % 3 == 0 || off < 10 || off >= 250) {
      words[off >> 6] |= std::uint64_t{1} << (off & 63U);
    }
  }

  std::vector<std::vector<std::uint64_t>> cases;
  cases.push_back({});                         // empty candidate list
  cases.push_back({0, 1, 2, 999});             // all below base (wraps huge)
  cases.push_back({5000, 1u << 20, ~0ull});    // all past the row
  std::vector<std::uint64_t> skewed;           // heavy repeats + boundary ids
  for (int rep = 0; rep < 7; ++rep) {
    for (std::uint64_t id : {1000ull, 1001ull, 1063ull, 1064ull, 1255ull, 1256ull,
                             999ull, 1300ull}) {
      skewed.push_back(id);
    }
  }
  cases.push_back(skewed);
  std::vector<std::uint64_t> dense;            // every id in and around the row
  for (std::uint64_t id = 990; id < 1270; ++id) dense.push_back(id);
  cases.push_back(dense);
  std::vector<std::uint64_t> disjoint;         // interleaves misses only
  for (std::uint64_t id = 0; id < 64; ++id) disjoint.push_back(id * 2);
  cases.push_back(disjoint);

  for (std::size_t k = 0; k < cases.size(); ++k) {
    EXPECT_EQ(probe_hits_dispatch(bm, cases[k]), probe_hits_scalar(bm, cases[k]))
        << "case " << k;
  }

  // Hits against an expected oracle on the dense case.
  const auto hits = probe_hits_scalar(bm, dense);
  for (std::size_t i = 0, h = 0; i < dense.size(); ++i) {
    const bool member = bm.test(dense[i]);
    if (member) {
      ASSERT_LT(h, hits.size());
      EXPECT_EQ(hits[h++], i);
    }
  }

  // An empty row never reports a hit, whatever the candidates.
  tripoll::core::bitmap_view empty{};
  for (const auto& c : cases) {
    EXPECT_TRUE(probe_hits_dispatch(empty, c).empty());
  }
}

TEST(BitmapKernels, AndPopcountMatchesScalarFold) {
  std::vector<std::uint64_t> a, b;
  for (std::uint64_t i = 0; i < 37; ++i) {
    a.push_back(tripoll::serial::splitmix64(i));
    b.push_back(tripoll::serial::splitmix64(i ^ 0xABCD));
  }
  std::uint64_t expect = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    expect += static_cast<std::uint64_t>(__builtin_popcountll(a[i] & b[i]));
  }
  EXPECT_EQ(tripoll::core::bitmap_and_popcount(a.data(), b.data(), a.size()), expect);
  EXPECT_EQ(tripoll::core::bitmap_and_popcount(a.data(), b.data(), 0), 0u);
}

// --- plan reductions across threads --------------------------------------------------

namespace {

/// Stateful per-thread context: tallies fires and a content-dependent sum,
/// so a worker firing into the wrong slice (or a lost merge) changes it.
struct digest_context {
  std::uint64_t fires = 0;
  std::uint64_t digest = 0;
};

struct digest_callback {
  using vertex_projection = tripoll::drop_projection;
  using edge_projection = tripoll::drop_projection;

  template <typename View>
  void operator()(const View& view, digest_context& ctx) const {
    ++ctx.fires;
    ctx.digest += tripoll::serial::splitmix64(view.p) ^
                  tripoll::serial::splitmix64(view.q) ^
                  tripoll::serial::splitmix64(view.r);
  }
};

struct digest_reduce {
  digest_context operator()(const digest_context& x, const digest_context& y) const {
    return digest_context{x.fires + y.fires, x.digest + y.digest};
  }
};

}  // namespace

TEST(ParallelSurvey, ReducedContextsMergeIdentically) {
  tc::runtime::run(3, [](tc::communicator& c) {
    tg::dodgr<tg::none, tg::none> g(c);
    build_graph(c, g, tg::ordering_policy::degree);
    auto fz = tg::freeze(g);

    digest_context base;
    for (const int threads : {1, 2, 4, 8}) {
      digest_context ctx;
      const auto r =
          cb::plan_for_reduced(fz, digest_callback{}, ctx, digest_reduce{})
              .run({survey_mode::push_pull, threads});
      require(r.invocations[0] == c.all_reduce_sum(ctx.fires),
              "invocations vs reduced context fires");
      if (threads == 1) {
        base = ctx;
        require(ctx.fires > 0, "reduced callback never fired");
      } else {
        require(ctx.fires == base.fires && ctx.digest == base.digest,
                "reduced context diverged at threads=" + std::to_string(threads));
      }
    }

    // Global scope: run() returns with the context already all_reduced.
    digest_context global_ctx;
    (void)cb::plan_for_reduced<reduce_scope::global>(fz, digest_callback{}, global_ctx,
                                                     digest_reduce{})
        .run({survey_mode::push_pull, 4});
    require(global_ctx.fires == c.all_reduce_sum(base.fires),
            "global-scope context not all_reduced");

    // count_reduce: the packaged counting context behaves the same way.
    cb::count_context cnt;
    (void)cb::plan_for_reduced<reduce_scope::global>(fz, cb::count_callback{}, cnt,
                                                     cb::count_reduce{})
        .run({survey_mode::push_pull, 8});
    require(cnt.triangles == c.all_reduce_sum(base.fires),
            "global count_reduce mismatch");
  });
}

// --- fused plans mixing reduced and owning-thread callbacks ---------------------------

TEST(ParallelSurvey, FusedPlanWithCountingSetStaysOnOwningThread) {
  // A plan with any plain .add entry is not parallel-fire capable: the send
  // stages still parallelize but every fire funnels through the main
  // thread, so counting-set callbacks (comm traffic) remain safe.  Run it
  // across thread counts and demand identical histograms.  (This is also
  // the TSan workload: stateful reduced slices + counting set + threads.)
  tc::runtime::run(2, [](tc::communicator& c) {
    tg::dodgr<tg::none, tg::none> g(c);
    build_graph(c, g, tg::ordering_policy::degeneracy);
    auto fz = tg::freeze(g);

    std::uint64_t base_digest = 0;
    std::uint64_t base_fires = 0;
    for (const int threads : {1, 4}) {
      tc::counting_set<tg::vertex_id> per_vertex(c);
      cb::local_count_context lc{&per_vertex};
      digest_context dg;
      const auto r = tripoll::survey(fz)
                         .add(cb::local_count_callback{}, lc)
                         .add_reduced(digest_callback{}, dg, digest_reduce{})
                         .run({survey_mode::push_pull, threads});
      per_vertex.finalize();
      std::uint64_t digest = 0;
      per_vertex.for_all_local([&](const tg::vertex_id& v, std::uint64_t n) {
        digest += tripoll::serial::splitmix64(v) * n;
      });
      digest = c.all_reduce_sum(digest);
      const auto fires = c.all_reduce_sum(dg.fires);
      require(r.invocations[0] == r.invocations[1], "fused callbacks disagree");
      if (threads == 1) {
        base_digest = digest;
        base_fires = fires;
        require(fires > 0, "fused plan never fired");
      } else {
        require(digest == base_digest, "counting-set histogram moved with threads");
        require(fires == base_fires, "reduced fires moved with threads");
      }
    }
  });
}

// --- socket backend -------------------------------------------------------------------

TEST(ParallelSurvey, SocketBackendThreadSweepIsBitIdentical) {
  for (const int threads : {1, 4}) {
    tc::runtime::run_backend(
        tc::backend_kind::socket, 2, [threads](tc::communicator& c) {
          tg::dodgr<tg::none, tg::none> g(c);
          build_graph(c, g, tg::ordering_policy::degree);
          auto fz = tg::freeze(g);
          const auto fp = count_run(c, fz, {survey_mode::push_pull, threads});
          const auto fp_serial = count_run(c, fz, {survey_mode::push_pull, 1});
          require(fp == fp_serial,
                  "socket threads=" + std::to_string(threads) + " diverged: " +
                      fp_str(fp) + " vs " + fp_str(fp_serial));
          require(fp.triangles > 0, "socket run found no triangles");
        });
  }
}
