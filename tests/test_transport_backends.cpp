// Backend-conformance suite: every scenario runs against BOTH transport
// backends -- the threads-as-ranks inproc backend and the one-process-per-
// rank socket backend -- and must behave identically.  Because socket ranks
// are forked child processes, assertions run INSIDE the ranks and failures
// surface as thrown exceptions (child exit status), which the parent-side
// EXPECT_NO_THROW turns into test failures; gtest macros would be invisible
// from a child process.
#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "comm/counting_set.hpp"
#include "comm/distributed_map.hpp"
#include "comm/runtime.hpp"
#include "serial/serialize.hpp"

namespace tc = tripoll::comm;
namespace ts = tripoll::serial;

namespace {

/// In-rank check that works from forked ranks: throw instead of EXPECT.
void require(bool cond, const std::string& what) {
  if (!cond) throw std::runtime_error("conformance check failed: " + what);
}

class BackendConformance : public ::testing::TestWithParam<tc::backend_kind> {
 protected:
  template <typename F>
  void run_ranks(int nranks, F&& fn, tc::config cfg = {}) {
    if (GetParam() == tc::backend_kind::inproc) {
      (void)tc::runtime::run(nranks, std::forward<F>(fn), cfg);
    } else {
      tc::runtime::run_socket_local(nranks, std::forward<F>(fn), cfg);
    }
  }
};

struct tally_handler {
  void operator()(tc::communicator& c, tc::dist_handle<std::uint64_t> h, std::uint64_t v) {
    c.resolve(h) += v;
  }
};

struct seq_state {
  std::vector<std::vector<std::uint64_t>> by_source;
};

struct seq_handler {
  void operator()(tc::communicator& c, tc::dist_handle<seq_state> h, int from,
                  std::uint64_t seq) {
    c.resolve(h).by_source[static_cast<std::size_t>(from)].push_back(seq);
  }
};

struct relay_handler {
  void operator()(tc::communicator& c, tc::dist_handle<std::uint64_t> h,
                  std::uint32_t hops, std::uint64_t token) {
    c.resolve(h) += token;
    if (hops > 0) {
      c.async((c.rank() + static_cast<int>(token % 3) + 1) % c.size(), relay_handler{},
              h, hops - 1, token + 1);
    }
  }
};

struct sum_vector_handler {
  void operator()(tc::communicator& c, tc::dist_handle<std::uint64_t> h,
                  const std::vector<std::uint64_t>& v) {
    c.resolve(h) += std::accumulate(v.begin(), v.end(), std::uint64_t{0});
  }
};

struct view_tally {
  std::uint64_t span_sum = 0;
  std::uint64_t span_elems = 0;
  std::string text;
};

/// Zero-copy arguments: wire_span and string_view point into the drained
/// transport payload for the duration of the handler.
struct view_handler {
  void operator()(tc::communicator& c, tc::dist_handle<view_tally> h,
                  const ts::wire_span<std::uint64_t>& span, std::string_view text) {
    auto& t = c.resolve(h);
    for (const std::uint64_t v : span) t.span_sum += v;
    t.span_elems += span.size();
    t.text.append(text);  // copy out: the view dies with the handler
  }
};

}  // namespace

TEST_P(BackendConformance, AllToAllCountsExact) {
  run_ranks(4, [](tc::communicator& c) {
    std::uint64_t tally = 0;
    auto h = c.register_object(tally);
    c.barrier();
    for (int dest = 0; dest < c.size(); ++dest) {
      for (int i = 0; i < 500; ++i) {
        c.async(dest, tally_handler{}, h, static_cast<std::uint64_t>(c.rank() + 1));
      }
    }
    c.barrier();
    // Rank r receives 500 * (1+2+3+4) = 5000.
    require(tally == 5000, "per-rank tally " + std::to_string(tally));
    const auto total = c.all_reduce_sum(tally);
    require(total == 20000, "global tally " + std::to_string(total));
  });
}

TEST_P(BackendConformance, OutOfOrderDrainKeepsPerSourceFifo) {
  // Tiny flush thresholds force many small transport buffers; interleaving
  // across sources is fine, reordering within one source is not.
  tc::config cfg;
  cfg.buffer_capacity = 64;
  cfg.flush_min_bytes = 64;
  const int n = 4;
  const std::uint64_t per_rank = 400;
  run_ranks(
      n,
      [per_rank](tc::communicator& c) {
        seq_state state;
        state.by_source.resize(static_cast<std::size_t>(c.size()));
        auto h = c.register_object(state);
        c.barrier();
        for (std::uint64_t s = 0; s < per_rank; ++s) {
          c.async(0, seq_handler{}, h, c.rank(), s);
        }
        c.barrier();
        if (c.rank0()) {
          for (int from = 0; from < c.size(); ++from) {
            const auto& seqs = state.by_source[static_cast<std::size_t>(from)];
            require(seqs.size() == per_rank,
                    "source " + std::to_string(from) + " message count");
            for (std::uint64_t s = 0; s < per_rank; ++s) {
              require(seqs[s] == s, "source " + std::to_string(from) +
                                        " reordered at " + std::to_string(s));
            }
          }
        }
      },
      cfg);
}

TEST_P(BackendConformance, HandlerGeneratedChainsDrainBeforeBarrier) {
  run_ranks(5, [](tc::communicator& c) {
    std::uint64_t sum = 0;
    auto h = c.register_object(sum);
    c.barrier();
    if (c.rank0()) {
      for (std::uint64_t chain = 0; chain < 16; ++chain) {
        c.async(static_cast<int>(chain % c.size()), relay_handler{}, h,
                std::uint32_t{199}, chain * 1000);
      }
    }
    c.barrier();
    std::uint64_t expected = 0;
    for (std::uint64_t chain = 0; chain < 16; ++chain) {
      for (std::uint64_t hop = 0; hop < 200; ++hop) expected += chain * 1000 + hop;
    }
    const auto total = c.all_reduce_sum(sum);
    require(total == expected, "relay sum " + std::to_string(total));
  });
}

TEST_P(BackendConformance, SingleRankHandlerChains) {
  // Regression: a 1-rank job whose handlers generate self-sends announces
  // idle with messages still in its own inbox; the termination detector
  // must defer (not busy-retry) until the rank drains and re-announces.
  run_ranks(1, [](tc::communicator& c) {
    std::uint64_t sum = 0;
    auto h = c.register_object(sum);
    c.barrier();
    c.async(0, relay_handler{}, h, std::uint32_t{99}, std::uint64_t{5});
    c.barrier();
    std::uint64_t expected = 0;
    for (std::uint64_t hop = 0; hop < 100; ++hop) expected += 5 + hop;
    require(sum == expected, "single-rank relay sum " + std::to_string(sum));
    for (int i = 0; i < 20; ++i) c.barrier();
  });
}

TEST_P(BackendConformance, Collectives) {
  run_ranks(4, [](tc::communicator& c) {
    const auto sum = c.all_reduce_sum<std::uint64_t>(static_cast<std::uint64_t>(c.rank() + 1));
    require(sum == 10, "all_reduce_sum");
    require(c.all_reduce_min(10 + c.rank()) == 10, "all_reduce_min");
    require(c.all_reduce_max(10 + c.rank()) == 13, "all_reduce_max");
    const auto names = c.all_gather(std::string(1, static_cast<char>('a' + c.rank())));
    require(names.size() == 4 && names[0] == "a" && names[3] == "d", "all_gather");
    const std::string v = c.rank() == 2 ? "from-two" : "";
    require(c.broadcast(v, 2) == "from-two", "broadcast");
    for (int i = 0; i < 10; ++i) {
      require(c.all_reduce_sum<std::uint64_t>(1) == 4, "repeated reduce leaks state");
    }
  });
}

TEST_P(BackendConformance, BarrierGenerationsWithAlternatingTraffic) {
  run_ranks(3, [](tc::communicator& c) {
    std::uint64_t tally = 0;
    auto h = c.register_object(tally);
    c.barrier();
    std::uint64_t expected = 0;
    for (int round = 0; round < 25; ++round) {
      if (round % 2 == c.rank() % 2) {
        c.async((c.rank() + 1) % c.size(), tally_handler{}, h, std::uint64_t{1});
      }
      c.barrier();
      if (round % 2 == ((c.size() + c.rank() - 1) % c.size()) % 2) ++expected;
      require(tally == expected, "round " + std::to_string(round) + " tally " +
                                     std::to_string(tally) + " != " +
                                     std::to_string(expected));
    }
  });
}

TEST_P(BackendConformance, PayloadLargerThanBufferCapacity) {
  tc::config cfg;
  cfg.buffer_capacity = 1024;
  run_ranks(
      2,
      [](tc::communicator& c) {
        std::uint64_t sum = 0;
        auto h = c.register_object(sum);
        c.barrier();
        if (c.rank0()) {
          std::vector<std::uint64_t> big(100 * 1024 / 8, 1);
          c.async(1, sum_vector_handler{}, h, big);
        }
        c.barrier();
        const auto total = c.all_reduce_sum(sum);
        require(total == 100 * 1024 / 8, "large payload sum");
      },
      cfg);
}

TEST_P(BackendConformance, DistributedContainersInterleaved) {
  run_ranks(4, [](tc::communicator& c) {
    tc::counting_set<std::string> counts(c, 16);
    tc::distributed_map<std::uint64_t, std::uint64_t> map(c);
    struct bump_visitor {
      void operator()(const std::uint64_t&, std::uint64_t& v) { ++v; }
    };
    c.barrier();
    for (int i = 0; i < 300; ++i) {
      counts.async_increment("key" + std::to_string(i % 37));
      map.async_visit(static_cast<std::uint64_t>(i % 53), bump_visitor{});
    }
    counts.finalize();
    require(counts.global_total() == 4 * 300, "counting_set total");
    require(counts.global_size() == 37, "counting_set distinct keys");
    std::uint64_t map_total = 0;
    map.for_all_local([&](const std::uint64_t&, const std::uint64_t& v) { map_total += v; });
    require(c.all_reduce_sum(map_total) == 4 * 300, "distributed_map total");
  });
}

TEST_P(BackendConformance, ZeroCopyViewArguments) {
  run_ranks(3, [](tc::communicator& c) {
    view_tally tally;
    auto h = c.register_object(tally);
    c.barrier();
    std::vector<std::uint64_t> payload(257);
    std::iota(payload.begin(), payload.end(), 1);  // sum = 257*258/2
    const std::string text = "zero-copy-" + std::to_string(c.rank());
    for (int i = 0; i < 50; ++i) {
      c.async((c.rank() + 1) % c.size(), view_handler{}, h, ts::as_wire_span(payload),
              std::string_view(text));
    }
    c.barrier();
    require(tally.span_elems == 50 * 257, "span element count");
    require(tally.span_sum == 50ull * (257 * 258 / 2), "span sum");
    require(tally.text.size() == 50 * text.size(), "string_view length");
    const auto total = c.all_reduce_sum(tally.span_sum);
    require(total == 3 * 50ull * (257 * 258 / 2), "global span sum");
  });
}

TEST_P(BackendConformance, GlobalStatsAgreeOnEveryRank) {
  run_ranks(4, [](tc::communicator& c) {
    std::uint64_t tally = 0;
    auto h = c.register_object(tally);
    c.barrier();
    const auto before = c.local_stats();
    for (int i = 0; i < 100; ++i) {
      c.async((c.rank() + 1) % c.size(), tally_handler{}, h, std::uint64_t{1});
    }
    c.barrier();
    const auto delta = c.local_stats() - before;
    // Every rank sent exactly 100 logical messages this phase; the
    // all-reduced global deltas must agree bit-for-bit everywhere.
    const auto global_messages = c.all_reduce_sum(delta.messages_sent);
    require(global_messages == 400, "global message delta " +
                                        std::to_string(global_messages));
    const auto g = c.global_stats();
    const auto g2 = c.broadcast(g, 0);
    require(g.messages_sent == g2.messages_sent && g.remote_bytes == g2.remote_bytes &&
                g.handlers_run == g2.handlers_run,
            "global_stats differs across ranks");
  });
}

TEST_P(BackendConformance, AbortPropagatesToEveryRank) {
  EXPECT_THROW(run_ranks(4,
                         [](tc::communicator& c) {
                           if (c.rank() == 2) {
                             throw std::runtime_error("rank 2 failed deliberately");
                           }
                           // Other ranks park in a barrier; they must unwind
                           // rather than deadlock.
                           c.barrier();
                         }),
               std::runtime_error);
}

INSTANTIATE_TEST_SUITE_P(Backends, BackendConformance,
                         ::testing::Values(tc::backend_kind::inproc,
                                           tc::backend_kind::socket),
                         [](const ::testing::TestParamInfo<tc::backend_kind>& info) {
                           return std::string(tc::backend_name(info.param));
                         });

// --- socket-specific behavior ------------------------------------------------

TEST(SocketBackend, EnvDiscoverySingleRank) {
  // A 1-rank socket job exercises env-based bootstrap without fork.
  ::setenv("TRIPOLL_RANK", "0", 1);
  ::setenv("TRIPOLL_NRANKS", "1", 1);
  ::setenv("TRIPOLL_SOCKET_DIR", "/tmp/tripoll-envtest", 1);
  auto opts = tc::socket_options::from_env();
  EXPECT_EQ(opts.rank, 0);
  EXPECT_EQ(opts.nranks, 1);
  std::uint64_t seen = 0;
  const auto stats = tc::runtime::run_socket_rank(
      [&seen](tc::communicator& c) {
        std::uint64_t tally = 0;
        auto h = c.register_object(tally);
        c.barrier();
        for (int i = 0; i < 10; ++i) c.async(0, tally_handler{}, h, std::uint64_t{1});
        c.barrier();
        seen = tally;
      },
      opts);
  EXPECT_EQ(seen, 10u);
  EXPECT_GE(stats.messages_sent, 10u);
  ::unsetenv("TRIPOLL_RANK");
  ::unsetenv("TRIPOLL_NRANKS");
  ::unsetenv("TRIPOLL_SOCKET_DIR");
}

TEST(SocketBackend, HostsParsing) {
  ::setenv("TRIPOLL_HOSTS", "127.0.0.1:9001,127.0.0.1:9002,127.0.0.1:9003", 1);
  const auto opts = tc::socket_options::from_env();
  ASSERT_EQ(opts.hosts.size(), 3u);
  EXPECT_EQ(opts.hosts[0], "127.0.0.1:9001");
  EXPECT_EQ(opts.hosts[2], "127.0.0.1:9003");
  ::unsetenv("TRIPOLL_HOSTS");
}

TEST(SocketBackend, RejectsInvalidBootstrap) {
  tc::socket_options opts;  // rank/nranks unset
  EXPECT_THROW(tc::socket_transport t(opts), std::invalid_argument);
  opts.rank = 0;
  opts.nranks = 2;
  EXPECT_THROW(tc::socket_transport t2(opts), std::invalid_argument);  // no rendezvous
  opts.hosts = {"127.0.0.1:9001"};  // wrong length
  EXPECT_THROW(tc::socket_transport t3(opts), std::invalid_argument);
}
