// Correctness tests for the TriPoll survey engine: counts against ground
// truth, metadata alignment on every triangle, push vs pull equivalence,
// prebuilt callbacks.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "baselines/serial_tc.hpp"
#include "comm/runtime.hpp"
#include "core/callbacks.hpp"
#include "core/survey.hpp"
#include "gen/erdos_renyi.hpp"
#include "gen/rmat.hpp"
#include "graph/builder.hpp"
#include "graph/dodgr.hpp"

namespace tc = tripoll::comm;
namespace tg = tripoll::graph;
namespace cb = tripoll::callbacks;

using plain_graph = tg::dodgr<tg::none, tg::none>;
using tripoll::survey_mode;
using tripoll::survey_options;
using tripoll::triangle_survey;

namespace {

using edge_pairs = std::vector<std::pair<tg::vertex_id, tg::vertex_id>>;

void build_plain(tc::communicator& c, plain_graph& g, const edge_pairs& edges) {
  tg::graph_builder<tg::none, tg::none> builder(c);
  if (c.rank0()) {
    for (const auto& [u, v] : edges) builder.add_edge(u, v);
  }
  builder.build_into(g);
}

std::uint64_t survey_count(tc::communicator& c, plain_graph& g, survey_mode mode) {
  cb::count_context ctx;
  const auto result = triangle_survey(g, cb::count_callback{}, ctx, {mode});
  const auto global = ctx.global_count(c);
  // The engine's internal cross-check counter must agree with the callback.
  EXPECT_EQ(result.triangles_found, global);
  return global;
}

edge_pairs complete_graph(tg::vertex_id n) {
  edge_pairs edges;
  for (tg::vertex_id u = 0; u < n; ++u) {
    for (tg::vertex_id v = u + 1; v < n; ++v) edges.emplace_back(u, v);
  }
  return edges;
}

/// Independent brute-force count via neighbor-set probing.
std::uint64_t brute_force_count(const edge_pairs& edges) {
  std::map<tg::vertex_id, std::set<tg::vertex_id>> adj;
  for (const auto& [u, v] : edges) {
    if (u == v) continue;
    adj[u].insert(v);
    adj[v].insert(u);
  }
  std::uint64_t count = 0;
  for (const auto& [u, nbrs] : adj) {
    for (auto it = nbrs.begin(); it != nbrs.end(); ++it) {
      for (auto jt = std::next(it); jt != nbrs.end(); ++jt) {
        if (*it > u && adj[*it].contains(*jt)) ++count;
      }
    }
  }
  return count;
}

}  // namespace

// --- toy graphs, both modes, several rank counts -----------------------------------

struct ToyCase {
  const char* name;
  edge_pairs edges;
  std::uint64_t expected;
};

class ToyGraphs
    : public ::testing::TestWithParam<std::tuple<int, survey_mode, int>> {};

TEST_P(ToyGraphs, CountsMatch) {
  const auto [case_index, mode, nranks] = GetParam();
  static const std::vector<ToyCase> cases = {
      {"triangle", {{0, 1}, {1, 2}, {0, 2}}, 1},
      {"path4", {{0, 1}, {1, 2}, {2, 3}}, 0},
      {"star6", {{0, 1}, {0, 2}, {0, 3}, {0, 4}, {0, 5}}, 0},
      {"cycle4", {{0, 1}, {1, 2}, {2, 3}, {3, 0}}, 0},
      {"k4", complete_graph(4), 4},
      {"k5", complete_graph(5), 10},
      {"k33", {{0, 3}, {0, 4}, {0, 5}, {1, 3}, {1, 4}, {1, 5}, {2, 3}, {2, 4}, {2, 5}}, 0},
      {"two_triangles_shared_edge", {{0, 1}, {1, 2}, {0, 2}, {2, 3}, {1, 3}}, 2},
      {"bowtie", {{0, 1}, {1, 2}, {0, 2}, {2, 3}, {3, 4}, {2, 4}}, 2},
  };
  const auto& tcse = cases[static_cast<std::size_t>(case_index)];
  tc::runtime::run(nranks, [&](tc::communicator& c) {
    plain_graph g(c);
    build_plain(c, g, tcse.edges);
    EXPECT_EQ(survey_count(c, g, mode), tcse.expected) << tcse.name;
  });
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ToyGraphs,
    ::testing::Combine(::testing::Range(0, 9),
                       ::testing::Values(survey_mode::push_only, survey_mode::push_pull),
                       ::testing::Values(1, 3)));

// --- randomized cross-checks against the serial counter ------------------------------

class RandomCrossCheck
    : public ::testing::TestWithParam<std::tuple<int, survey_mode, int>> {};

TEST_P(RandomCrossCheck, MatchesSerialGroundTruth) {
  const auto [seed, mode, nranks] = GetParam();
  // Erdos-Renyi with enough density to have triangles.
  tripoll::gen::erdos_renyi_generator gen(200, 1500,
                                          static_cast<std::uint64_t>(seed));
  std::vector<tg::edge> edges;
  for (std::uint64_t k = 0; k < gen.num_edges(); ++k) edges.push_back(gen.edge_at(k));
  const auto expected = tripoll::baselines::serial_triangle_count(edges);

  tc::runtime::run(nranks, [&](tc::communicator& c) {
    plain_graph g(c);
    tg::graph_builder<tg::none, tg::none> builder(c);
    // Edges arrive distributed: each rank contributes a slice.
    for (std::size_t i = static_cast<std::size_t>(c.rank()); i < edges.size();
         i += static_cast<std::size_t>(c.size())) {
      builder.add_edge(edges[i].u, edges[i].v);
    }
    builder.build_into(g);
    EXPECT_EQ(survey_count(c, g, mode), expected);
  });
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, RandomCrossCheck,
    ::testing::Combine(::testing::Range(0, 6),
                       ::testing::Values(survey_mode::push_only, survey_mode::push_pull),
                       ::testing::Values(1, 2, 4)));

TEST(RmatCrossCheck, SmallRmatBothModes) {
  tripoll::gen::rmat_generator gen(tripoll::gen::rmat_params{10, 8, 0.57, 0.19, 0.19, 7, true});
  std::vector<tg::edge> edges;
  for (std::uint64_t k = 0; k < gen.num_edges(); ++k) edges.push_back(gen.edge_at(k));
  const auto expected = tripoll::baselines::serial_triangle_count(edges);
  ASSERT_GT(expected, 0u);

  tc::runtime::run(4, [&](tc::communicator& c) {
    plain_graph g(c);
    tg::graph_builder<tg::none, tg::none> builder(c);
    for (std::size_t i = static_cast<std::size_t>(c.rank()); i < edges.size();
         i += static_cast<std::size_t>(c.size())) {
      builder.add_edge(edges[i].u, edges[i].v);
    }
    builder.build_into(g);
    EXPECT_EQ(survey_count(c, g, survey_mode::push_only), expected);
    EXPECT_EQ(survey_count(c, g, survey_mode::push_pull), expected);
  });
}

// --- metadata alignment: every callback sees the right six pieces --------------------

namespace {

using meta_graph = tg::dodgr<std::uint64_t, std::uint64_t>;
using meta_row = std::array<std::uint64_t, 9>;

struct collect_context {
  std::vector<meta_row> rows;
};

struct collect_callback {
  void operator()(const tripoll::triangle_view<std::uint64_t, std::uint64_t>& v,
                  collect_context& ctx) const {
    ctx.rows.push_back(meta_row{v.p, v.q, v.r, v.meta_p, v.meta_q, v.meta_r, v.meta_pq,
                                v.meta_pr, v.meta_qr});
  }
};

constexpr std::uint64_t vmeta(tg::vertex_id v) { return v * 7 + 1; }
constexpr std::uint64_t emeta(tg::vertex_id u, tg::vertex_id v) {
  return std::min(u, v) * 1000 + std::max(u, v);
}

}  // namespace

class MetadataAlignment : public ::testing::TestWithParam<std::tuple<survey_mode, int>> {};

TEST_P(MetadataAlignment, AllSixPiecesCorrect) {
  const auto [mode, nranks] = GetParam();
  // K8 plus a pendant: uniform degrees inside the clique exercise hash
  // tie-breaking; every triangle's metadata must align exactly.
  const auto k8 = complete_graph(8);

  tc::runtime::run(nranks, [&](tc::communicator& c) {
    meta_graph g(c);
    tg::graph_builder<std::uint64_t, std::uint64_t> builder(c);
    if (c.rank0()) {
      for (const auto& [u, v] : k8) builder.add_edge(u, v, emeta(u, v));
      builder.add_edge(0, 100, emeta(0, 100));
      for (tg::vertex_id v = 0; v < 8; ++v) builder.add_vertex_meta(v, vmeta(v));
      builder.add_vertex_meta(100, vmeta(100));
    }
    builder.build_into(g);

    collect_context ctx;
    triangle_survey(g, collect_callback{}, ctx, {mode});

    auto per_rank = c.all_gather(ctx.rows);
    std::vector<meta_row> all;
    for (auto& v : per_rank) all.insert(all.end(), v.begin(), v.end());
    ASSERT_EQ(all.size(), 56u);  // C(8,3)

    std::set<std::tuple<tg::vertex_id, tg::vertex_id, tg::vertex_id>> seen;
    for (const auto& row : all) {
      const tg::vertex_id p = row[0], q = row[1], r = row[2];
      // Distinct, and an actual triangle in K8.
      EXPECT_LT(p, 8u);
      EXPECT_LT(q, 8u);
      EXPECT_LT(r, 8u);
      // Ordering p <+ q <+ r (all degrees 7 inside the clique).
      EXPECT_TRUE(tg::degree_less(p, 7, q, 7));
      EXPECT_TRUE(tg::degree_less(q, 7, r, 7));
      // Each triangle reported exactly once.
      EXPECT_TRUE(seen.insert({p, q, r}).second);
      // All six metadata pieces.
      EXPECT_EQ(row[3], vmeta(p));
      EXPECT_EQ(row[4], vmeta(q));
      EXPECT_EQ(row[5], vmeta(r));
      EXPECT_EQ(row[6], emeta(p, q));
      EXPECT_EQ(row[7], emeta(p, r));
      EXPECT_EQ(row[8], emeta(q, r));
    }
  });
}

INSTANTIATE_TEST_SUITE_P(
    ModesRanks, MetadataAlignment,
    ::testing::Combine(::testing::Values(survey_mode::push_only, survey_mode::push_pull),
                       ::testing::Values(1, 2, 4)));

// --- pull path actually exercised ---------------------------------------------------

TEST(PushPull, PullsGrantedOnDenseGraph) {
  // In K24 the top-order vertices have tiny d+ but receive huge candidate
  // batches, so pulls must be granted; counts stay exact either way.
  const auto edges = complete_graph(24);
  const auto expected = brute_force_count(edges);
  tc::runtime::run(3, [&](tc::communicator& c) {
    plain_graph g(c);
    build_plain(c, g, edges);
    cb::count_context ctx;
    const auto result =
        triangle_survey(g, cb::count_callback{}, ctx, {survey_mode::push_pull});
    EXPECT_EQ(ctx.global_count(c), expected);
    EXPECT_GT(result.pulls_granted, 0u);
    EXPECT_GT(result.pull.messages, 0u);
  });
}

TEST(PushPull, PhaseMetricsAddUp) {
  const auto edges = complete_graph(16);
  tc::runtime::run(2, [&](tc::communicator& c) {
    plain_graph g(c);
    build_plain(c, g, edges);
    cb::count_context ctx;
    const auto result =
        triangle_survey(g, cb::count_callback{}, ctx, {survey_mode::push_pull});
    EXPECT_EQ(result.total.volume_bytes, result.dry_run.volume_bytes +
                                             result.push.volume_bytes +
                                             result.pull.volume_bytes);
    EXPECT_GE(result.total.seconds, 0.0);
  });
}

TEST(PushOnly, NoPullTrafficReported) {
  tc::runtime::run(2, [](tc::communicator& c) {
    plain_graph g(c);
    build_plain(c, g, complete_graph(10));
    cb::count_context ctx;
    const auto result =
        triangle_survey(g, cb::count_callback{}, ctx, {survey_mode::push_only});
    EXPECT_EQ(result.dry_run.messages, 0u);
    EXPECT_EQ(result.pull.messages, 0u);
    EXPECT_EQ(result.pulls_granted, 0u);
    EXPECT_GT(result.push_batches, 0u);
  });
}

TEST(Survey, EmptyAndTrianglelessGraphs) {
  tc::runtime::run(2, [](tc::communicator& c) {
    plain_graph empty(c);
    build_plain(c, empty, {});
    EXPECT_EQ(survey_count(c, empty, survey_mode::push_pull), 0u);

    plain_graph single(c);
    build_plain(c, single, {{0, 1}});
    EXPECT_EQ(survey_count(c, single, survey_mode::push_only), 0u);
  });
}

TEST(Survey, RepeatedSurveysAreIdempotent) {
  tc::runtime::run(3, [](tc::communicator& c) {
    plain_graph g(c);
    build_plain(c, g, complete_graph(9));
    const auto first = survey_count(c, g, survey_mode::push_pull);
    const auto second = survey_count(c, g, survey_mode::push_pull);
    const auto third = survey_count(c, g, survey_mode::push_only);
    EXPECT_EQ(first, 84u);  // C(9,3)
    EXPECT_EQ(second, first);
    EXPECT_EQ(third, first);
  });
}

// --- prebuilt callbacks ---------------------------------------------------------------

TEST(Callbacks, Log2BinBoundaries) {
  using cb::log2_bin;
  EXPECT_EQ(log2_bin(0), 0u);
  EXPECT_EQ(log2_bin(1), 0u);
  EXPECT_EQ(log2_bin(2), 1u);
  EXPECT_EQ(log2_bin(3), 2u);
  EXPECT_EQ(log2_bin(4), 2u);
  EXPECT_EQ(log2_bin(5), 3u);
  EXPECT_EQ(log2_bin(1024), 10u);
  EXPECT_EQ(log2_bin(1025), 11u);
}

TEST(Callbacks, ClosureTimesBinning) {
  tc::runtime::run(2, [](tc::communicator& c) {
    tg::dodgr<tg::none, std::uint64_t> g(c);
    tg::graph_builder<tg::none, std::uint64_t> builder(c);
    if (c.rank0()) {
      // t1=100, t2=164, t3=1000: open=64 -> bin 6 (exact), close=900 -> bin 10.
      builder.add_edge(0, 1, 100);
      builder.add_edge(0, 2, 164);
      builder.add_edge(1, 2, 1000);
    }
    builder.build_into(g);

    tc::counting_set<cb::closure_bin> counters(c);
    cb::closure_time_context ctx{&counters};
    triangle_survey(g, cb::closure_time_callback{}, ctx, {survey_mode::push_pull});
    counters.finalize();
    auto dist = counters.gather_all();
    ASSERT_EQ(dist.size(), 1u);
    EXPECT_EQ(dist.at({6u, 10u}), 1u);
  });
}

TEST(Callbacks, MaxEdgeLabelDistribution) {
  tc::runtime::run(2, [](tc::communicator& c) {
    tg::dodgr<std::uint32_t, std::uint32_t> g(c);
    tg::graph_builder<std::uint32_t, std::uint32_t> builder(c);
    if (c.rank0()) {
      // Triangle 0-1-2 with distinct vertex labels; max edge label 9.
      builder.add_edge(0, 1, 3);
      builder.add_edge(1, 2, 9);
      builder.add_edge(0, 2, 5);
      builder.add_vertex_meta(0, 10);
      builder.add_vertex_meta(1, 11);
      builder.add_vertex_meta(2, 12);
      // Triangle 3-4-5 with two equal vertex labels: must be excluded.
      builder.add_edge(3, 4, 1);
      builder.add_edge(4, 5, 2);
      builder.add_edge(3, 5, 3);
      builder.add_vertex_meta(3, 7);
      builder.add_vertex_meta(4, 7);
      builder.add_vertex_meta(5, 8);
    }
    builder.build_into(g);

    tc::counting_set<std::uint32_t> counters(c);
    cb::max_edge_label_context<std::uint32_t> ctx{&counters};
    triangle_survey(g, cb::max_edge_label_callback{}, ctx, {survey_mode::push_only});
    counters.finalize();
    auto dist = counters.gather_all();
    ASSERT_EQ(dist.size(), 1u);
    EXPECT_EQ(dist.at(9u), 1u);
  });
}

TEST(Callbacks, DegreeTriples) {
  tc::runtime::run(2, [](tc::communicator& c) {
    tg::dodgr<std::uint64_t, tg::none> g(c);
    tg::graph_builder<std::uint64_t, tg::none> builder(c);
    if (c.rank0()) {
      // Triangle where all vertices have degree 2: log2 bin 1 each.
      builder.add_edge(0, 1);
      builder.add_edge(1, 2);
      builder.add_edge(0, 2);
      for (tg::vertex_id v = 0; v < 3; ++v) builder.add_vertex_meta(v, 2);
    }
    builder.build_into(g);

    tc::counting_set<cb::degree_triple> counters(c);
    cb::degree_triple_context ctx{&counters};
    triangle_survey(g, cb::degree_triple_callback{}, ctx, {survey_mode::push_pull});
    counters.finalize();
    auto dist = counters.gather_all();
    ASSERT_EQ(dist.size(), 1u);
    EXPECT_EQ(dist.at({1u, 1u, 1u}), 1u);
  });
}

TEST(Callbacks, FqdnTuplesSkipNonDistinct) {
  tc::runtime::run(2, [](tc::communicator& c) {
    tg::dodgr<std::string, tg::none> g(c);
    tg::graph_builder<std::string, tg::none> builder(c);
    if (c.rank0()) {
      // Triangle with 3 distinct FQDNs.
      builder.add_edge(0, 1);
      builder.add_edge(1, 2);
      builder.add_edge(0, 2);
      builder.add_vertex_meta(0, "a.com");
      builder.add_vertex_meta(1, "b.com");
      builder.add_vertex_meta(2, "c.com");
      // Triangle where two pages share a domain: excluded.
      builder.add_edge(3, 4);
      builder.add_edge(4, 5);
      builder.add_edge(3, 5);
      builder.add_vertex_meta(3, "x.com");
      builder.add_vertex_meta(4, "x.com");
      builder.add_vertex_meta(5, "y.com");
    }
    builder.build_into(g);

    tc::counting_set<cb::fqdn_tuple> counters(c);
    cb::fqdn_tuple_context ctx{&counters};
    triangle_survey(g, cb::fqdn_tuple_callback{}, ctx, {survey_mode::push_pull});
    counters.finalize();
    auto dist = counters.gather_all();
    ASSERT_EQ(dist.size(), 1u);
    EXPECT_EQ(dist.at({"a.com", "b.com", "c.com"}), 1u);
    EXPECT_EQ(c.all_reduce_sum(ctx.distinct_fqdn_triangles), 1u);
  });
}

TEST(Callbacks, LocalVertexParticipation) {
  tc::runtime::run(3, [](tc::communicator& c) {
    plain_graph g(c);
    build_plain(c, g, complete_graph(4));
    tc::counting_set<tg::vertex_id> per_vertex(c);
    cb::local_count_context ctx{&per_vertex};
    triangle_survey(g, cb::local_count_callback{}, ctx, {survey_mode::push_pull});
    per_vertex.finalize();
    auto counts = per_vertex.gather_all();
    ASSERT_EQ(counts.size(), 4u);
    for (auto& [v, n] : counts) EXPECT_EQ(n, 3u);  // each vertex in C(3,2) triangles
  });
}
