// Property/invariant tests for the survey engine: conservation of wedge
// work, determinism, robustness to configuration, and failure injection.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <tuple>
#include <vector>

#include "comm/runtime.hpp"
#include "core/callbacks.hpp"
#include "core/survey.hpp"
#include "gen/distribute.hpp"
#include "gen/presets.hpp"
#include "gen/rmat.hpp"
#include "graph/builder.hpp"

namespace tc = tripoll::comm;
namespace tg = tripoll::graph;
namespace cb = tripoll::callbacks;
using tripoll::survey_mode;

namespace {

void build_rmat(tc::communicator& c, tripoll::gen::plain_graph& g, std::uint32_t scale,
                std::uint64_t seed) {
  tripoll::gen::rmat_generator rmat(
      tripoll::gen::rmat_params{scale, 8, 0.57, 0.19, 0.19, seed, true});
  tg::graph_builder<tg::none, tg::none> builder(c);
  tripoll::gen::for_rank_slice(c, rmat.num_edges(), [&](std::uint64_t k) {
    const auto e = rmat.edge_at(k);
    builder.add_edge(e.u, e.v);
  });
  builder.build_into(g);
}

}  // namespace

// --- conservation: every wedge is checked exactly once -------------------------------

class WedgeConservation
    : public ::testing::TestWithParam<std::tuple<survey_mode, int>> {};

TEST_P(WedgeConservation, CandidatesEqualWedgeChecks) {
  const auto [mode, nranks] = GetParam();
  tc::runtime::run(nranks, [&](tc::communicator& c) {
    tripoll::gen::plain_graph g(c);
    build_rmat(c, g, 9, 77);
    const auto census = g.census();
    cb::count_context ctx;
    const auto result = tripoll::triangle_survey(g, cb::count_callback{}, ctx, {mode});
    // Whether a wedge travels in a push batch or is examined against a
    // pulled adjacency, it is examined exactly once.
    EXPECT_EQ(result.wedge_candidates, census.wedge_checks);
  });
}

INSTANTIATE_TEST_SUITE_P(
    ModesRanks, WedgeConservation,
    ::testing::Combine(::testing::Values(survey_mode::push_only, survey_mode::push_pull),
                       ::testing::Values(1, 2, 5, 8)));

// --- determinism -------------------------------------------------------------------

TEST(SurveyDeterminism, RepeatedRunsIdentical) {
  tc::runtime::run(4, [](tc::communicator& c) {
    tripoll::gen::plain_graph g(c);
    build_rmat(c, g, 10, 123);
    std::uint64_t first_triangles = 0, first_candidates = 0;
    for (int run = 0; run < 3; ++run) {
      cb::count_context ctx;
      const auto result = tripoll::triangle_survey(g, cb::count_callback{}, ctx,
                                                   {survey_mode::push_pull});
      if (run == 0) {
        first_triangles = result.triangles_found;
        first_candidates = result.wedge_candidates;
      } else {
        EXPECT_EQ(result.triangles_found, first_triangles);
        EXPECT_EQ(result.wedge_candidates, first_candidates);
      }
    }
  });
}

TEST(SurveyDeterminism, CountIndependentOfRankCount) {
  std::vector<std::uint64_t> counts;
  for (const int nranks : {1, 2, 3, 4, 8}) {
    std::uint64_t triangles = 0;
    tc::runtime::run(nranks, [&](tc::communicator& c) {
      tripoll::gen::plain_graph g(c);
      build_rmat(c, g, 10, 321);
      cb::count_context ctx;
      tripoll::triangle_survey(g, cb::count_callback{}, ctx, {survey_mode::push_pull});
      // global_count is a collective; only one rank may write the captured
      // result (every rank storing it concurrently is a data race).
      const auto total = ctx.global_count(c);
      if (c.rank0()) triangles = total;
    });
    counts.push_back(triangles);
  }
  for (std::size_t i = 1; i < counts.size(); ++i) EXPECT_EQ(counts[i], counts[0]);
}

// --- configuration robustness -----------------------------------------------------

class BufferSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BufferSweep, CountsInvariantUnderFlushThreshold) {
  tc::config cfg;
  cfg.buffer_capacity = GetParam();
  std::uint64_t triangles = 0;
  tc::runtime::run(
      4,
      [&](tc::communicator& c) {
        tripoll::gen::plain_graph g(c);
        build_rmat(c, g, 9, 55);
        cb::count_context ctx;
        tripoll::triangle_survey(g, cb::count_callback{}, ctx, {survey_mode::push_pull});
        const auto total = ctx.global_count(c);
        if (c.rank0()) triangles = total;
      },
      cfg);
  // Reference with default config.
  std::uint64_t reference = 0;
  tc::runtime::run(4, [&](tc::communicator& c) {
    tripoll::gen::plain_graph g(c);
    build_rmat(c, g, 9, 55);
    cb::count_context ctx;
    tripoll::triangle_survey(g, cb::count_callback{}, ctx, {survey_mode::push_pull});
    const auto total = ctx.global_count(c);
    if (c.rank0()) reference = total;
  });
  EXPECT_EQ(triangles, reference);
}

INSTANTIATE_TEST_SUITE_P(Capacities, BufferSweep,
                         ::testing::Values(std::size_t{32}, std::size_t{256},
                                           std::size_t{4096}, std::size_t{1048576}));

// --- push-pull vs push-only relationships ------------------------------------------

TEST(PushPullRelations, PullReducesVolumeOnHubHeavyGraph) {
  // The webcc12-like preset is the extreme pull-win case.
  const auto spec = tripoll::gen::standard_suite(-4)[3];
  tc::runtime::run(4, [&](tc::communicator& c) {
    tripoll::gen::plain_graph g(c);
    tripoll::gen::build_dataset(c, g, spec);
    cb::count_context ctx_po, ctx_pp;
    const auto po = tripoll::triangle_survey(g, cb::count_callback{}, ctx_po,
                                             {survey_mode::push_only});
    const auto pp = tripoll::triangle_survey(g, cb::count_callback{}, ctx_pp,
                                             {survey_mode::push_pull});
    EXPECT_EQ(ctx_po.global_count(c), ctx_pp.global_count(c));
    EXPECT_LT(pp.total.volume_bytes, po.total.volume_bytes);
    EXPECT_GT(pp.pulls_granted, 0u);
  });
}

TEST(PushPullRelations, PhaseAccountingConsistent) {
  tc::runtime::run(3, [](tc::communicator& c) {
    tripoll::gen::plain_graph g(c);
    build_rmat(c, g, 9, 99);
    cb::count_context ctx;
    const auto r = tripoll::triangle_survey(g, cb::count_callback{}, ctx,
                                            {survey_mode::push_pull});
    EXPECT_EQ(r.total.volume_bytes,
              r.dry_run.volume_bytes + r.push.volume_bytes + r.pull.volume_bytes);
    EXPECT_EQ(r.total.messages,
              r.dry_run.messages + r.push.messages + r.pull.messages);
    EXPECT_GE(r.total.seconds,
              0.0);  // phases measure max-over-ranks, sum may exceed total
  });
}

// --- failure injection ----------------------------------------------------------------

namespace {

struct throwing_callback {
  void operator()(const tripoll::triangle_view<tg::none, tg::none>& /*view*/,
                  cb::count_context& ctx) const {
    if (++ctx.triangles == 3) {
      throw std::runtime_error("callback failure injection");
    }
  }
};

}  // namespace

TEST(FailureInjection, CallbackExceptionAbortsRun) {
  try {
    tc::runtime::run(3, [](tc::communicator& c) {
      tripoll::gen::plain_graph g(c);
      build_rmat(c, g, 8, 7);
      cb::count_context ctx;
      tripoll::triangle_survey(g, throwing_callback{}, ctx, {survey_mode::push_pull});
    });
    FAIL() << "expected the injected failure to propagate";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_TRUE(what.find("failure injection") != std::string::npos ||
                what.find("aborted") != std::string::npos)
        << what;
  }
}

TEST(FailureInjection, WatchdogDiagnosesMismatchedCollectives) {
  // Rank 1 returns immediately; rank 0 enters an extra barrier nobody else
  // will join.  The watchdog must convert the hang into an error.
  tc::config cfg;
  cfg.barrier_timeout_seconds = 0.3;
  try {
    tc::runtime::run(
        2,
        [](tc::communicator& c) {
          if (c.rank0()) {
            c.barrier();  // pairs with rank 1's implicit final barrier
            c.barrier();  // unmatched: rank 1's thread has already finished
          }
        },
        cfg);
    FAIL() << "expected the watchdog to fire";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("watchdog"), std::string::npos) << e.what();
  }
}
