// Tests for distributed edge-list file ingestion.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <random>
#include <set>
#include <string>
#include <vector>

#include <unistd.h>

#include "comm/runtime.hpp"
#include "core/callbacks.hpp"
#include "core/survey.hpp"
#include "graph/builder.hpp"
#include "graph/io.hpp"

namespace tc = tripoll::comm;
namespace tg = tripoll::graph;

namespace {

class TempFile {
 public:
  explicit TempFile(const std::string& contents) {
    static std::atomic<int> counter{0};
    path_ = std::filesystem::temp_directory_path() /
            ("tripoll_io_test_" + std::to_string(counter.fetch_add(1)) + "_" +
             std::to_string(::getpid()) + ".txt");
    std::ofstream out(path_, std::ios::binary);
    out << contents;
  }
  ~TempFile() { std::filesystem::remove(path_); }
  [[nodiscard]] std::string path() const { return path_.string(); }

 private:
  std::filesystem::path path_;
};

}  // namespace

TEST(ParseEdgeLine, BasicForms) {
  bool malformed = false;
  auto e = tg::parse_edge_line("1 2", &malformed);
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->u, 1u);
  EXPECT_EQ(e->v, 2u);
  EXPECT_FALSE(e->weight.has_value());
  EXPECT_FALSE(malformed);

  e = tg::parse_edge_line("10\t20\t12345", &malformed);
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->weight.value(), 12345u);

  e = tg::parse_edge_line("  7   8  ", &malformed);
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->u, 7u);
}

TEST(ParseEdgeLine, CommentsAndBlanks) {
  bool malformed = false;
  EXPECT_FALSE(tg::parse_edge_line("# a comment", &malformed).has_value());
  EXPECT_FALSE(malformed);
  EXPECT_FALSE(tg::parse_edge_line("% matrix-market comment", &malformed).has_value());
  EXPECT_FALSE(malformed);
  EXPECT_FALSE(tg::parse_edge_line("", &malformed).has_value());
  EXPECT_FALSE(malformed);
  EXPECT_FALSE(tg::parse_edge_line("   ", &malformed).has_value());
  EXPECT_FALSE(malformed);
}

TEST(ParseEdgeLine, MalformedFlagged) {
  bool malformed = false;
  EXPECT_FALSE(tg::parse_edge_line("abc def", &malformed).has_value());
  EXPECT_TRUE(malformed);
  EXPECT_FALSE(tg::parse_edge_line("1", &malformed).has_value());
  EXPECT_TRUE(malformed);
  EXPECT_FALSE(tg::parse_edge_line("1 2 xyz", &malformed).has_value());
  EXPECT_TRUE(malformed);
}

TEST(ParseEdgeLine, WindowsLineEndings) {
  bool malformed = false;
  auto e = tg::parse_edge_line("3 4\r", &malformed);
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->v, 4u);
}

TEST(ReadEdgeList, MissingFileThrows) {
  tc::runtime::run(1, [](tc::communicator& c) {
    EXPECT_THROW(tg::read_edge_list(c, "/nonexistent/missing.txt",
                                    [](const tg::parsed_edge&) {}),
                 std::runtime_error);
  });
}

class ReadEdgeListSweep : public ::testing::TestWithParam<int> {};

TEST_P(ReadEdgeListSweep, EveryLineParsedExactlyOnce) {
  const int nranks = GetParam();
  // A file with varied line lengths so slice boundaries land mid-line.
  std::string contents = "# header comment\n";
  std::vector<std::pair<std::uint64_t, std::uint64_t>> expected;
  std::mt19937_64 rng(7);
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t u = rng() % 100000;
    const std::uint64_t v = rng() % 1000;
    expected.emplace_back(u, v);
    contents += std::to_string(u) + " " + std::to_string(v) + "\n";
  }
  contents += "999999 1\n";  // line without special role
  expected.emplace_back(999999, 1);
  const TempFile file(contents);

  std::mutex mutex;
  std::multiset<std::pair<std::uint64_t, std::uint64_t>> seen;
  std::atomic<std::uint64_t> total_edges{0};
  tc::runtime::run(nranks, [&](tc::communicator& c) {
    const auto stats = tg::read_edge_list(c, file.path(), [&](const tg::parsed_edge& e) {
      const std::lock_guard lock(mutex);
      seen.emplace(e.u, e.v);
    });
    total_edges.fetch_add(stats.edges);
    EXPECT_EQ(stats.malformed, 0u);
  });

  EXPECT_EQ(total_edges.load(), expected.size());
  const std::multiset<std::pair<std::uint64_t, std::uint64_t>> want(expected.begin(),
                                                                    expected.end());
  EXPECT_EQ(seen, want);
}

INSTANTIATE_TEST_SUITE_P(RankCounts, ReadEdgeListSweep, ::testing::Values(1, 2, 3, 7, 16));

/// Exactly-once coverage harness: parse `contents` under `nranks` ranks and
/// compare the multiset of edges (and the exact edge/malformed totals)
/// against expectations, so duplicated and dropped lines both fail.
void expect_exactly_once(
    const std::string& contents, int nranks,
    const std::vector<std::pair<std::uint64_t, std::uint64_t>>& expected,
    std::uint64_t expected_malformed = 0) {
  const TempFile file(contents);
  std::mutex mutex;
  std::multiset<std::pair<std::uint64_t, std::uint64_t>> seen;
  std::atomic<std::uint64_t> total_edges{0};
  std::atomic<std::uint64_t> total_malformed{0};
  tc::runtime::run(nranks, [&](tc::communicator& c) {
    const auto stats = tg::read_edge_list(c, file.path(), [&](const tg::parsed_edge& e) {
      const std::lock_guard lock(mutex);
      seen.emplace(e.u, e.v);
    });
    total_edges.fetch_add(stats.edges);
    total_malformed.fetch_add(stats.malformed);
  });
  EXPECT_EQ(total_edges.load(), expected.size())
      << "nranks=" << nranks << " contents=" << ::testing::PrintToString(contents);
  EXPECT_EQ(total_malformed.load(), expected_malformed);
  const std::multiset<std::pair<std::uint64_t, std::uint64_t>> want(expected.begin(),
                                                                    expected.end());
  EXPECT_EQ(seen, want) << "nranks=" << nranks;
}

class ReadEdgeListTinyFiles : public ::testing::TestWithParam<int> {};

TEST_P(ReadEdgeListTinyFiles, FilesSmallerThanRankCount) {
  const int nranks = GetParam();
  // Each file is shorter (in bytes) than the rank count, so most byte
  // slices are empty and several ranks share begin == 0.
  expect_exactly_once("1 2\n", nranks, {{1, 2}});
  expect_exactly_once("1 2", nranks, {{1, 2}});          // no trailing newline
  expect_exactly_once("1 2\n3 4\n", nranks, {{1, 2}, {3, 4}});
  expect_exactly_once("1 2\n3 4", nranks, {{1, 2}, {3, 4}});
  expect_exactly_once("\n\n1 2\n\n", nranks, {{1, 2}});  // blank lines
  expect_exactly_once("", nranks, {});
  expect_exactly_once("\n", nranks, {});
}

TEST_P(ReadEdgeListTinyFiles, CrlfLineEndings) {
  const int nranks = GetParam();
  expect_exactly_once("1 2\r\n3 4\r\n", nranks, {{1, 2}, {3, 4}});
  expect_exactly_once("1 2\r\n3 4\r", nranks, {{1, 2}, {3, 4}});  // CR, no final LF
  expect_exactly_once("# c\r\n5 6 77\r\n", nranks, {{5, 6}});
}

INSTANTIATE_TEST_SUITE_P(RankCounts, ReadEdgeListTinyFiles,
                         ::testing::Values(1, 2, 3, 5, 8, 16, 32));

TEST(ReadEdgeList, CrlfSweepWithSliceBoundariesInsideLines) {
  // 120 CRLF lines of varying width: byte slices land between '\r' and
  // '\n', inside line bodies, and at line starts for every rank count.
  std::string contents;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> expected;
  for (std::uint64_t i = 0; i < 120; ++i) {
    const std::uint64_t u = i * i % 1000;
    const std::uint64_t v = i;
    expected.emplace_back(u, v);
    contents += std::to_string(u) + " " + std::to_string(v) + "\r\n";
  }
  for (const int nranks : {1, 2, 3, 7, 16, 64}) {
    expect_exactly_once(contents, nranks, expected);
  }
}

TEST(ReadEdgeList, FinalLineWithoutNewlineSweep) {
  // The unterminated final line must be parsed exactly once whichever
  // rank's slice covers its start.
  std::string contents = "# head\n";
  std::vector<std::pair<std::uint64_t, std::uint64_t>> expected;
  for (std::uint64_t i = 0; i < 57; ++i) {
    expected.emplace_back(i, i + 1);
    contents += std::to_string(i) + " " + std::to_string(i + 1) + "\n";
  }
  contents += "100000 200000";  // no trailing '\n'
  expected.emplace_back(100000, 200000);
  for (const int nranks : {1, 2, 3, 4, 5, 8, 13, 32}) {
    expect_exactly_once(contents, nranks, expected);
  }
}

TEST(ReadEdgeList, MalformedLinesCountedOncePerRankSweep) {
  const std::string contents = "1 2\nbogus line\n3 4\n5\n6 7\n";
  for (const int nranks : {1, 2, 3, 6, 12}) {
    expect_exactly_once(contents, nranks, {{1, 2}, {3, 4}, {6, 7}}, 2);
  }
}

TEST(ReadEdgeList, NoTrailingNewline) {
  const TempFile file("1 2\n3 4");  // last line lacks '\n'
  std::atomic<std::uint64_t> edges{0};
  tc::runtime::run(3, [&](tc::communicator& c) {
    const auto stats =
        tg::read_edge_list(c, file.path(), [&](const tg::parsed_edge&) {});
    edges.fetch_add(stats.edges);
  });
  EXPECT_EQ(edges.load(), 2u);
}

TEST(ReadEdgeList, EmptyFile) {
  const TempFile file("");
  tc::runtime::run(2, [&](tc::communicator& c) {
    const auto stats =
        tg::read_edge_list(c, file.path(), [&](const tg::parsed_edge&) {});
    EXPECT_EQ(stats.edges, 0u);
  });
}

TEST(ReadEdgeList, EndToEndGraphFromFile) {
  // Ingest a triangle + pendant from disk, survey it, check the count.
  const TempFile file("# tiny graph\n0 1 100\n1 2 164\n0 2 1000\n2 3 5\n");
  tc::runtime::run(4, [&](tc::communicator& c) {
    tg::graph_builder<tg::none, std::uint64_t, tg::merge::keep_least> builder(c);
    tg::read_edge_list(c, file.path(), [&](const tg::parsed_edge& e) {
      builder.add_edge(e.u, e.v, e.weight.value_or(0));
    });
    tg::dodgr<tg::none, std::uint64_t> g(c);
    builder.build_into(g);
    EXPECT_EQ(g.census().num_directed_edges, 8u);

    tripoll::callbacks::count_context ctx;
    tripoll::triangle_survey(g, tripoll::callbacks::count_callback{}, ctx);
    EXPECT_EQ(ctx.global_count(c), 1u);
  });
}

// --- parallel ingest --------------------------------------------------------

namespace {

using edge_seq = std::vector<std::tuple<std::uint64_t, std::uint64_t, std::uint64_t>>;

/// Parse `path` under `nranks` ranks with `opts`, returning each rank's
/// ORDERED edge sequence (weights folded in; absent weight recorded as a
/// sentinel so "1 2" and "1 2 0" stay distinguishable) plus summed stats.
std::vector<edge_seq> ingest_sequences(const std::string& path, int nranks,
                                       const tg::ingest_options& opts,
                                       tg::ingest_stats* agg = nullptr) {
  std::vector<edge_seq> out(static_cast<std::size_t>(nranks));
  std::mutex mutex;
  tg::ingest_stats total;
  tc::runtime::run(nranks, [&](tc::communicator& c) {
    auto& mine = out[static_cast<std::size_t>(c.rank())];
    const auto stats = tg::read_edge_list(
        c, path,
        [&](const tg::parsed_edge& e) {
          mine.emplace_back(e.u, e.v, e.weight.value_or(~0ull));
        },
        opts);
    const std::lock_guard lock(mutex);
    total.lines += stats.lines;
    total.edges += stats.edges;
    total.malformed += stats.malformed;
    total.bytes += stats.bytes;
  });
  if (agg != nullptr) *agg = total;
  return out;
}

}  // namespace

/// The tentpole contract: at every thread count each rank's edge SEQUENCE
/// (not just multiset) is bit-identical to the serial read, across the
/// line-ending and boundary shapes that stress the sub-slice ownership
/// rule.
TEST(ParallelIngest, BitIdenticalSequencesAcrossThreadCounts) {
  struct ingest_case {
    const char* name;
    std::string contents;
  };
  std::string crlf, bare, mixed;
  for (std::uint64_t i = 0; i < 160; ++i) {
    crlf += std::to_string(i * 37 % 1000) + " " + std::to_string(i) + "\r\n";
    bare += std::to_string(i) + "\t" + std::to_string(i * i % 777) + " " +
            std::to_string(i * 13) + "\n";
    mixed += (i % 9 == 4 ? std::string("bogus line ") + std::to_string(i)
                         : std::to_string(i) + " " + std::to_string(i + 1)) +
             "\n";
  }
  bare.pop_back();  // final line unterminated
  const std::vector<ingest_case> cases = {
      {"crlf", crlf},
      {"no_trailing_newline", bare},
      {"malformed_lines", mixed},
      {"smaller_than_thread_count", "1 2\n"},
      {"empty", ""},
  };
  for (const auto& tcase : cases) {
    const TempFile file(tcase.contents);
    for (const int nranks : {1, 3}) {
      tg::ingest_stats serial_stats;
      const auto serial =
          ingest_sequences(file.path(), nranks, tg::ingest_options{1, false},
                           &serial_stats);
      for (const int threads : {2, 4, 8}) {
        tg::ingest_stats par_stats;
        const auto par = ingest_sequences(
            file.path(), nranks, tg::ingest_options{threads, false}, &par_stats);
        EXPECT_EQ(par, serial) << tcase.name << " nranks=" << nranks
                               << " threads=" << threads;
        EXPECT_EQ(par_stats.lines, serial_stats.lines) << tcase.name;
        EXPECT_EQ(par_stats.edges, serial_stats.edges) << tcase.name;
        EXPECT_EQ(par_stats.malformed, serial_stats.malformed) << tcase.name;
        EXPECT_EQ(par_stats.bytes, serial_stats.bytes) << tcase.name;
      }
    }
  }
}

TEST(ParallelIngest, ThreadCountFromEnvironment) {
  // opts.threads == 0 defers to TRIPOLL_THREADS; the sequence contract
  // holds regardless of where the count came from.
  std::string contents;
  for (std::uint64_t i = 0; i < 64; ++i) {
    contents += std::to_string(i) + " " + std::to_string(i + 1) + "\n";
  }
  const TempFile file(contents);
  const auto serial = ingest_sequences(file.path(), 1, tg::ingest_options{1, false});
  ::setenv("TRIPOLL_THREADS", "4", 1);
  const auto par = ingest_sequences(file.path(), 1, tg::ingest_options{0, false});
  ::unsetenv("TRIPOLL_THREADS");
  EXPECT_EQ(par, serial);
}

TEST(ParallelIngest, DirectIoFallsBackWhereUnsupported) {
  // temp_directory_path is tmpfs on most CI runners, which rejects
  // O_DIRECT: the reader must fall back to buffered reads and produce the
  // identical sequence (and identical stats) either way.
  std::string contents = "# direct-io probe\n";
  for (std::uint64_t i = 0; i < 300; ++i) {
    contents += std::to_string(i * 7 % 500) + " " + std::to_string(i) + "\n";
  }
  const TempFile file(contents);
  tg::ingest_stats buffered_stats, direct_stats;
  const auto buffered = ingest_sequences(file.path(), 2, tg::ingest_options{2, false},
                                         &buffered_stats);
  const auto direct =
      ingest_sequences(file.path(), 2, tg::ingest_options{2, true}, &direct_stats);
  EXPECT_EQ(direct, buffered);
  EXPECT_EQ(direct_stats.edges, buffered_stats.edges);
  EXPECT_EQ(direct_stats.bytes, buffered_stats.bytes);
}

TEST(ParallelIngest, DirectIoEnvironmentOptIn) {
  EXPECT_FALSE(tg::resolve_direct_io(false));
  EXPECT_TRUE(tg::resolve_direct_io(true));
  ::setenv("TRIPOLL_DIRECT_IO", "1", 1);
  EXPECT_TRUE(tg::resolve_direct_io(false));
  ::setenv("TRIPOLL_DIRECT_IO", "0", 1);
  EXPECT_FALSE(tg::resolve_direct_io(false));
  ::unsetenv("TRIPOLL_DIRECT_IO");
}

TEST(EdgeListWriter, RoundTripsThroughReader) {
  const auto path = (std::filesystem::temp_directory_path() /
                     ("tripoll_writer_test_" + std::to_string(::getpid()) + ".txt"))
                        .string();
  {
    tg::edge_list_writer writer(path);
    writer.write(1, 2);
    writer.write(3, 4, 99);
  }
  std::atomic<std::uint64_t> edges{0};
  std::atomic<std::uint64_t> weighted{0};
  tc::runtime::run(2, [&](tc::communicator& c) {
    tg::read_edge_list(c, path, [&](const tg::parsed_edge& e) {
      edges.fetch_add(1);
      if (e.weight.has_value()) weighted.fetch_add(1);
    });
  });
  std::filesystem::remove(path);
  EXPECT_EQ(edges.load(), 2u);
  EXPECT_EQ(weighted.load(), 1u);
}
