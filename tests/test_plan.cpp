// Tests for the declarative survey-plan API (core/plan.hpp): sender-side
// wire projections, multi-survey fusion, stateful/bool callbacks, and
// view-typed string metadata on the receive path.
//
// The core equivalence matrix (projected == identity results; one fused
// run == N sequential runs) executes across BOTH transport backends, both
// vertex orderings and both survey modes.  Socket ranks are forked child
// processes, so assertions there run INSIDE the ranks and surface as
// thrown exceptions (child exit status), which the parent-side
// EXPECT_NO_THROW turns into test failures.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <tuple>
#include <type_traits>
#include <vector>

#include "comm/counting_set.hpp"
#include "comm/runtime.hpp"
#include "core/analytics.hpp"
#include "core/callbacks.hpp"
#include "core/survey.hpp"
#include "gen/erdos_renyi.hpp"
#include "graph/builder.hpp"
#include "graph/dodgr.hpp"
#include "graph/ordering.hpp"
#include "serial/hash.hpp"
#include "serial/wire_guard.hpp"

namespace tc = tripoll::comm;
namespace tg = tripoll::graph;
namespace cb = tripoll::callbacks;

using tripoll::survey_mode;

namespace {

/// In-rank check that works from forked socket ranks: throw, don't EXPECT.
void require(bool cond, const std::string& what) {
  if (!cond) throw std::runtime_error("plan check failed: " + what);
}

// --- rich bitwise metadata -------------------------------------------------------

struct interaction_meta {
  std::uint64_t ts = 0;
  std::uint64_t weight = 0;
  std::array<char, 16> tag{};
};
TRIPOLL_WIRE_ASSERT(interaction_meta, ts, weight, tag);

struct profile_meta {
  std::uint64_t label = 0;
  std::array<char, 24> name{};
};
TRIPOLL_WIRE_ASSERT(profile_meta, label, name);

using rich_graph = tg::dodgr<profile_meta, interaction_meta>;

std::uint64_t edge_ts(tg::vertex_id u, tg::vertex_id v) {
  const auto lo = std::min(u, v);
  const auto hi = std::max(u, v);
  return tripoll::serial::hash_combine(tripoll::serial::splitmix64(lo), hi) % 100000;
}

std::uint64_t vertex_label(tg::vertex_id v) {
  return tripoll::serial::splitmix64(v ^ 0xFACE) % 16;
}

/// K8 plus a moderately dense ER graph: triangles on every rank, pulls
/// granted in push_pull mode.
void build_rich(tc::communicator& c, rich_graph& g, tg::ordering_policy ordering) {
  tg::graph_builder<profile_meta, interaction_meta> builder(c, ordering);
  const auto add = [&](tg::vertex_id u, tg::vertex_id v) {
    interaction_meta em;
    em.ts = edge_ts(u, v);
    em.weight = u + v;
    builder.add_edge(u, v, em);
  };
  if (c.rank0()) {
    for (tg::vertex_id u = 0; u < 8; ++u) {
      for (tg::vertex_id v = u + 1; v < 8; ++v) add(u, v);
    }
  }
  // Distributed slice of a deterministic ER stream over vertices 100..179.
  tripoll::gen::erdos_renyi_generator er(80, 500, 99);
  for (std::uint64_t k = static_cast<std::uint64_t>(c.rank()); k < er.num_edges();
       k += static_cast<std::uint64_t>(c.size())) {
    const auto e = er.edge_at(k);
    if (e.u == e.v) continue;
    add(e.u + 100, e.v + 100);
  }
  builder.build_into(g);
  g.for_all_local([](const tg::vertex_id& v, auto& rec) {
    rec.meta.label = vertex_label(v);
    for (auto& e : rec.adj) e.target_meta.label = vertex_label(e.target);
  });
}

/// Local closure histogram (no RPC traffic from the callback itself).
using hist = std::map<cb::closure_bin, std::uint64_t>;

void bin_closure(std::uint64_t a, std::uint64_t b, std::uint64_t c, hist& h) {
  ++h[cb::closure_bin_of(a, b, c)];
}

/// Identity-projection callback reading the rich structs.
struct rich_closure_cb {
  template <typename View>
  void operator()(const View& v, hist& h) const {
    bin_closure(v.meta_pq.ts, v.meta_pr.ts, v.meta_qr.ts, h);
  }
};

/// Projected callback: edge metadata already reduced to the timestamp.
struct ts_closure_cb {
  template <typename View>
  void operator()(const View& v, hist& h) const {
    bin_closure(static_cast<std::uint64_t>(v.meta_pq),
                static_cast<std::uint64_t>(v.meta_pr),
                static_cast<std::uint64_t>(v.meta_qr), h);
  }
};

/// Stateful bool-returning filter (small functor carried by value).
struct hot_filter_cb {
  std::uint64_t threshold = 0;

  template <typename View>
  bool operator()(const View& v, std::uint64_t& hot) const {
    if (static_cast<std::uint64_t>(v.meta_pq) < threshold ||
        static_cast<std::uint64_t>(v.meta_pr) < threshold ||
        static_cast<std::uint64_t>(v.meta_qr) < threshold) {
      return false;
    }
    ++hot;
    return true;
  }
};

struct edge_ts_projection {
  std::uint64_t operator()(const interaction_meta& m) const { return m.ts; }
};

/// Additive digest so per-rank histograms compare via all_reduce_sum.
std::uint64_t hist_digest(const hist& h) {
  std::uint64_t sum = 0;
  for (const auto& [bin, n] : h) {
    sum += n * tripoll::serial::splitmix64((std::uint64_t{bin.first} << 32) | bin.second);
  }
  return sum;
}

}  // namespace

// --- the equivalence matrix: backends x orderings x modes ---------------------------

class PlanMatrix
    : public ::testing::TestWithParam<
          std::tuple<tc::backend_kind, tg::ordering_policy, survey_mode>> {
 protected:
  template <typename F>
  void run_ranks(int nranks, F&& fn) {
    if (std::get<0>(GetParam()) == tc::backend_kind::inproc) {
      (void)tc::runtime::run(nranks, std::forward<F>(fn));
    } else {
      tc::runtime::run_socket_local(nranks, std::forward<F>(fn));
    }
  }
};

TEST_P(PlanMatrix, ProjectedFusedAndSequentialAgree) {
  const auto [backend, ordering, mode] = GetParam();
  (void)backend;
  EXPECT_NO_THROW(run_ranks(3, [ordering = ordering, mode = mode](tc::communicator& c) {
    rich_graph g(c);
    build_rich(c, g, ordering);

    // 1. Identity plan: full 32/40-byte structs cross the wire.
    hist id_hist;
    auto identity = tripoll::survey(g).add(rich_closure_cb{}, id_hist).run({mode});

    // 2. Projected plan: vertex meta dropped, edge meta -> 8-byte timestamp.
    hist proj_hist;
    auto projected = tripoll::survey(g)
                         .project_vertex(tripoll::drop_projection{})
                         .project_edge(edge_ts_projection{})
                         .add(ts_closure_cb{}, proj_hist)
                         .run({mode});

    // 3. Sequential single-callback projected runs...
    hist seq_hist;
    std::uint64_t seq_hot = 0;
    cb::count_context seq_count;
    auto s1 = tripoll::survey(g)
                  .project_vertex(tripoll::drop_projection{})
                  .project_edge(edge_ts_projection{})
                  .add(cb::count_callback{}, seq_count)
                  .run({mode});
    auto s2 = tripoll::survey(g)
                  .project_vertex(tripoll::drop_projection{})
                  .project_edge(edge_ts_projection{})
                  .add(ts_closure_cb{}, seq_hist)
                  .run({mode});
    auto s3 = tripoll::survey(g)
                  .project_vertex(tripoll::drop_projection{})
                  .project_edge(edge_ts_projection{})
                  .add(hot_filter_cb{50000}, seq_hot)
                  .run({mode});

    // 4. ...and the same three fused into ONE traversal.
    hist fused_hist;
    std::uint64_t fused_hot = 0;
    cb::count_context fused_count;
    auto fused = tripoll::survey(g)
                     .project_vertex(tripoll::drop_projection{})
                     .project_edge(edge_ts_projection{})
                     .add(cb::count_callback{}, fused_count)
                     .add(ts_closure_cb{}, fused_hist)
                     .add(hot_filter_cb{50000}, fused_hot)
                     .run({mode});

    const auto t = identity.total.triangles_found;
    require(t > 0, "no triangles surveyed");
    require(projected.total.triangles_found == t, "projected triangle count");
    require(fused.total.triangles_found == t, "fused triangle count");
    require(s1.total.triangles_found == t && s2.total.triangles_found == t &&
                s3.total.triangles_found == t,
            "sequential triangle counts");

    // Projection correctness: results bit-identical where comparable.
    const auto id_digest = c.all_reduce_sum(hist_digest(id_hist));
    const auto proj_digest = c.all_reduce_sum(hist_digest(proj_hist));
    const auto seq_digest = c.all_reduce_sum(hist_digest(seq_hist));
    const auto fused_digest = c.all_reduce_sum(hist_digest(fused_hist));
    require(id_digest == proj_digest, "projected closure histogram != identity");
    require(seq_digest == fused_digest, "fused closure histogram != sequential");

    // Fused multi-survey equivalence: per-callback results match the
    // sequential runs exactly.
    const auto seq_count_global = c.all_reduce_sum(seq_count.triangles);
    const auto fused_count_global = c.all_reduce_sum(fused_count.triangles);
    require(seq_count_global == fused_count_global, "fused count != sequential count");
    require(c.all_reduce_sum(seq_hot) == c.all_reduce_sum(fused_hot),
            "fused hot filter != sequential hot filter");

    // Per-callback slices: count/closure fire on every triangle, the bool
    // filter on a strict subset (thresholds chosen so both sides are
    // non-empty).
    require(fused.invocations[0] == t && fused.invocations[1] == t,
            "unconditional callbacks must fire per triangle");
    const auto hot_global = c.all_reduce_sum(fused_hot);
    require(fused.invocations[2] == hot_global, "filter slice == filtered count");
    require(hot_global > 0 && hot_global < t, "filter should split the triangles");

    // Wire effect: the projected plan must ship strictly less than the
    // identity plan (3 ranks => real remote traffic), and fusing three
    // callbacks must not inflate the traversal beyond a single run's
    // traffic (callbacks here generate no RPCs of their own).
    require(projected.total.total.volume_bytes < identity.total.total.volume_bytes,
            "projection did not reduce survey volume");
    require(fused.total.total.volume_bytes == s2.total.total.volume_bytes,
            "fused traversal traffic != single-callback traffic");
  }));
}

INSTANTIATE_TEST_SUITE_P(
    BackendsOrderingsModes, PlanMatrix,
    ::testing::Combine(::testing::Values(tc::backend_kind::inproc,
                                         tc::backend_kind::socket),
                       ::testing::Values(tg::ordering_policy::degree,
                                         tg::ordering_policy::degeneracy),
                       ::testing::Values(survey_mode::push_only,
                                         survey_mode::push_pull)));

// --- string metadata arrives as string_view into the payload ------------------------

namespace {

using string_graph = tg::dodgr<std::string, tg::none>;

std::string fqdn_of(tg::vertex_id v) { return "host" + std::to_string(v) + ".example"; }

struct view_collect_ctx {
  std::vector<std::tuple<tg::vertex_id, std::string>> rows;  // (vertex, observed meta)
};

struct view_collect_cb {
  template <typename View>
  void operator()(const View& v, view_collect_ctx& ctx) const {
    // Satellite contract: plain std::string vertex metadata reaches the
    // callback as std::string_view (meta_ref) -- no owning copies on the
    // receive path.
    static_assert(std::is_same_v<std::remove_cvref_t<decltype(v.meta_p)>,
                                 std::string_view>,
                  "string metadata must arrive as string_view");
    ctx.rows.emplace_back(v.p, std::string(v.meta_p));
    ctx.rows.emplace_back(v.q, std::string(v.meta_q));
    ctx.rows.emplace_back(v.r, std::string(v.meta_r));
  }
};

}  // namespace

class StringMeta : public ::testing::TestWithParam<survey_mode> {};

TEST_P(StringMeta, ArrivesAsViewWithCorrectValues) {
  const auto mode = GetParam();
  tc::runtime::run(3, [mode](tc::communicator& c) {
    string_graph g(c);
    tg::graph_builder<std::string, tg::none> builder(c);
    if (c.rank0()) {
      for (tg::vertex_id u = 0; u < 8; ++u) {
        for (tg::vertex_id v = u + 1; v < 8; ++v) builder.add_edge(u, v);
        builder.add_vertex_meta(u, fqdn_of(u));
      }
    }
    builder.build_into(g);

    view_collect_ctx ctx;
    auto r = tripoll::survey(g).add(view_collect_cb{}, ctx).run({mode});
    EXPECT_EQ(r.total.triangles_found, 56u);  // C(8,3)

    for (const auto& [v, meta] : ctx.rows) {
      EXPECT_EQ(meta, fqdn_of(v));
    }
    const auto rows = c.all_reduce_sum<std::uint64_t>(ctx.rows.size());
    EXPECT_EQ(rows, 3 * 56u);
  });
}

INSTANTIATE_TEST_SUITE_P(Modes, StringMeta,
                         ::testing::Values(survey_mode::push_only,
                                           survey_mode::push_pull));

// --- prebuilt analyses through their declared minimal projections -------------------

TEST(PlanFor, FqdnSurveyMatchesIdentityWrapper) {
  tc::runtime::run(2, [](tc::communicator& c) {
    string_graph g(c);
    tg::graph_builder<std::string, tg::none> builder(c);
    if (c.rank0()) {
      for (tg::vertex_id u = 0; u < 6; ++u) {
        for (tg::vertex_id v = u + 1; v < 6; ++v) builder.add_edge(u, v);
        builder.add_vertex_meta(u, fqdn_of(u % 4));  // some duplicate FQDNs
      }
    }
    builder.build_into(g);

    tc::counting_set<cb::fqdn_tuple> plan_counters(c);
    cb::fqdn_tuple_context plan_ctx{&plan_counters};
    (void)cb::plan_for(g, cb::fqdn_tuple_callback{}, plan_ctx).run();
    plan_counters.finalize();

    tc::counting_set<cb::fqdn_tuple> wrap_counters(c);
    cb::fqdn_tuple_context wrap_ctx{&wrap_counters};
    (void)tripoll::triangle_survey(g, cb::fqdn_tuple_callback{}, wrap_ctx);
    wrap_counters.finalize();

    EXPECT_EQ(plan_counters.gather_all(), wrap_counters.gather_all());
    EXPECT_EQ(c.all_reduce_sum(plan_ctx.distinct_fqdn_triangles),
              c.all_reduce_sum(wrap_ctx.distinct_fqdn_triangles));
  });
}

TEST(PlanFor, CountPlanShipsLessThanIdentityOnRichGraph) {
  tc::runtime::run(4, [](tc::communicator& c) {
    rich_graph g(c);
    build_rich(c, g, tg::ordering_policy::degree);

    cb::count_context plan_ctx;
    const auto planned = cb::plan_for(g, cb::count_callback{}, plan_ctx).run().slice(0);

    cb::count_context wrap_ctx;
    const auto wrapped = tripoll::triangle_survey(g, cb::count_callback{}, wrap_ctx);

    EXPECT_EQ(planned.triangles_found, wrapped.triangles_found);
    EXPECT_EQ(plan_ctx.global_count(c), wrap_ctx.global_count(c));
    // drop-projected counting must ship strictly less than full metadata.
    EXPECT_LT(planned.total.volume_bytes, wrapped.total.volume_bytes);
  });
}

// --- closure-time analysis: sort-free callback vs explicit sort ---------------------

TEST(ClosureTimes, SortFreeBinningMatchesSortedReference) {
  // Cross-check the xor mid-element extraction against std::sort on
  // adversarial timestamp patterns (duplicates, all-equal, zero).
  const std::array<std::array<std::uint64_t, 3>, 6> cases = {{
      {100, 164, 1000}, {5, 5, 9}, {7, 7, 7}, {0, 1, 2}, {0, 0, 0}, {123, 7, 123},
  }};
  for (auto ts : cases) {
    hist h;
    bin_closure(ts[0], ts[1], ts[2], h);
    std::sort(ts.begin(), ts.end());
    const cb::closure_bin expected{cb::log2_bin(ts[1] - ts[0]),
                                   cb::log2_bin(ts[2] - ts[0])};
    ASSERT_EQ(h.size(), 1u);
    EXPECT_EQ(h.begin()->first, expected);
    EXPECT_EQ(h.begin()->second, 1u);
  }
}

// --- analytics fusion ----------------------------------------------------------------

TEST(Analytics, FusedClusteringAndSupportMatchesSeparateRuns) {
  tc::runtime::run(3, [](tc::communicator& c) {
    rich_graph g(c);
    build_rich(c, g, tg::ordering_policy::degree);

    namespace ta = tripoll::analytics;
    const auto separate = ta::clustering_coefficients(g);
    tc::counting_set<ta::edge_key> support_sep(c);
    (void)ta::edge_support(g, support_sep);

    tc::counting_set<ta::edge_key> support_fused(c);
    const auto fused = ta::clustering_and_support(g, support_fused);

    EXPECT_EQ(fused.triangles, separate.triangles);
    EXPECT_EQ(fused.total_wedges, separate.total_wedges);
    EXPECT_DOUBLE_EQ(fused.transitivity, separate.transitivity);
    EXPECT_DOUBLE_EQ(fused.average_local_cc, separate.average_local_cc);
    EXPECT_EQ(support_fused.gather_all(), support_sep.gather_all());
  });
}

// --- projection inference ------------------------------------------------------------

namespace {

/// u64/u64 metadata graph matching what the library callbacks project
/// (timestamp_projection needs a uint64-convertible edge meta).
using scalar_graph = tg::dodgr<std::uint64_t, std::uint64_t>;

void build_scalar(tc::communicator& c, scalar_graph& g) {
  tg::graph_builder<std::uint64_t, std::uint64_t> builder(c,
                                                          tg::ordering_policy::degree);
  const auto add = [&](tg::vertex_id u, tg::vertex_id v) {
    builder.add_edge(u, v, edge_ts(u, v));
  };
  if (c.rank0()) {
    for (tg::vertex_id u = 0; u < 8; ++u) {
      for (tg::vertex_id v = u + 1; v < 8; ++v) add(u, v);
    }
  }
  tripoll::gen::erdos_renyi_generator er(80, 500, 321);
  for (std::uint64_t k = static_cast<std::uint64_t>(c.rank()); k < er.num_edges();
       k += static_cast<std::uint64_t>(c.size())) {
    const auto e = er.edge_at(k);
    if (e.u == e.v) continue;
    add(e.u + 100, e.v + 100);
  }
  builder.build_into(g);
  g.for_all_local([](const tg::vertex_id& v, auto& rec) {
    rec.meta = vertex_label(v);
    for (auto& e : rec.adj) e.target_meta = vertex_label(e.target);
  });
}

}  // namespace

TEST(PlanInference, UnionOfDeclaredProjectionTypes) {
  tc::runtime::run(1, [](tc::communicator& c) {
    scalar_graph g(c);
    build_scalar(c, g);
    cb::count_context cnt;
    tc::counting_set<cb::closure_bin> bins(c);
    cb::closure_time_context closure{&bins};
    cb::degree_triple_context degrees;
    cb::max_edge_label_context<std::uint64_t> labels;

    // drop ∪ drop stays drop.
    using only_count = decltype(tripoll::survey(g).add(cb::count_callback{}, cnt));
    static_assert(std::is_same_v<only_count::inferred_vertex_projection,
                                 tripoll::drop_projection>);
    static_assert(std::is_same_v<only_count::inferred_edge_projection,
                                 tripoll::drop_projection>);

    // drop defers to the non-trivial demand on either side.
    using count_closure = decltype(tripoll::survey(g)
                                       .add(cb::count_callback{}, cnt)
                                       .add(cb::closure_time_callback{}, closure));
    static_assert(std::is_same_v<count_closure::inferred_vertex_projection,
                                 tripoll::drop_projection>);
    static_assert(std::is_same_v<count_closure::inferred_edge_projection,
                                 cb::timestamp_projection>);

    using closure_degrees = decltype(tripoll::survey(g)
                                         .add(cb::closure_time_callback{}, closure)
                                         .add(cb::degree_triple_callback{}, degrees));
    static_assert(std::is_same_v<closure_degrees::inferred_vertex_projection,
                                 cb::degree_projection>);
    static_assert(std::is_same_v<closure_degrees::inferred_edge_projection,
                                 cb::timestamp_projection>);

    // Two distinct non-trivial demands widen to identity.
    using mixed = decltype(tripoll::survey(g)
                               .add(cb::closure_time_callback{}, closure)
                               .add(cb::max_edge_label_callback{}, labels));
    static_assert(std::is_same_v<mixed::inferred_vertex_projection,
                                 tripoll::identity_projection>);
    static_assert(std::is_same_v<mixed::inferred_edge_projection,
                                 tripoll::identity_projection>);
    SUCCEED();
  });
}

TEST(PlanInference, InferredRunEquivalentToExplicitProjections) {
  tc::runtime::run(3, [](tc::communicator& c) {
    scalar_graph g(c);
    build_scalar(c, g);

    const auto run_once = [&](auto plan, cb::count_context& cnt,
                              tc::counting_set<cb::closure_bin>& bins) {
      auto res = plan.run({});
      bins.finalize();
      (void)cnt;
      return res;
    };

    cb::count_context c1, c2, c3;
    tc::counting_set<cb::closure_bin> b1(c), b2(c), b3(c);
    cb::closure_time_context cl1{&b1}, cl2{&b2}, cl3{&b3};

    auto inferred = run_once(tripoll::survey(g)
                                 .add(cb::count_callback{}, c1)
                                 .add(cb::closure_time_callback{}, cl1)
                                 .infer_projections(),
                             c1, b1);
    auto explicit_ = run_once(tripoll::survey(g)
                                  .project_vertex(tripoll::drop_projection{})
                                  .project_edge(cb::timestamp_projection{})
                                  .add(cb::count_callback{}, c2)
                                  .add(cb::closure_time_callback{}, cl2),
                              c2, b2);
    auto identity = run_once(tripoll::survey(g)
                                 .add(cb::count_callback{}, c3)
                                 .add(cb::closure_time_callback{}, cl3),
                             c3, b3);

    // Inferred == explicitly projected, bit for bit (traffic included).
    require(inferred.total.triangles_found == explicit_.total.triangles_found,
            "inference changed the triangle count");
    require(inferred.total.total.volume_bytes == explicit_.total.total.volume_bytes,
            "inference changed the wire volume");
    require(inferred.total.total.messages == explicit_.total.total.messages,
            "inference changed the message count");
    require(inferred.invocations == explicit_.invocations,
            "inference changed callback fire counts");
    require(b1.gather_all() == b2.gather_all(),
            "inference changed the closure histogram");

    // ...and cheaper than the identity-projection run (vertex meta dropped).
    require(identity.total.triangles_found == inferred.total.triangles_found,
            "identity run found different triangles");
    require(inferred.total.total.volume_bytes < identity.total.total.volume_bytes,
            "inferred projections did not shrink the wire volume");
    require(b1.gather_all() == b3.gather_all(),
            "projection changed the closure histogram");
  });
}
