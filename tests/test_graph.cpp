// Tests for DODGr construction: orientation, ordering, metadata placement,
// dedup/merge policies, census numbers.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "comm/runtime.hpp"
#include "graph/builder.hpp"
#include "graph/dodgr.hpp"
#include "graph/types.hpp"

namespace tc = tripoll::comm;
namespace tg = tripoll::graph;

using plain_graph = tg::dodgr<tg::none, tg::none>;

TEST(OrderKey, TotalOrderProperties) {
  // degree dominates, then hash, then id; the relation is a strict total
  // order on any sample set.
  std::vector<std::pair<tg::vertex_id, std::uint64_t>> sample;
  for (tg::vertex_id v = 0; v < 50; ++v) sample.emplace_back(v, v % 7);
  for (const auto& [u, du] : sample) {
    EXPECT_FALSE(tg::degree_less(u, du, u, du));  // irreflexive
    for (const auto& [v, dv] : sample) {
      if (u == v) continue;
      // antisymmetric and total
      EXPECT_NE(tg::degree_less(u, du, v, dv), tg::degree_less(v, dv, u, du));
    }
  }
}

TEST(OrderKey, DegreeDominates) {
  EXPECT_TRUE(tg::degree_less(100, 1, 5, 2));
  EXPECT_FALSE(tg::degree_less(5, 2, 100, 1));
}

namespace {

/// Build a plain graph from an explicit edge list contributed by rank 0.
void build_plain(tc::communicator& c, plain_graph& g,
                 const std::vector<std::pair<tg::vertex_id, tg::vertex_id>>& edges) {
  tg::graph_builder<tg::none, tg::none> builder(c);
  if (c.rank0()) {
    for (const auto& [u, v] : edges) builder.add_edge(u, v);
  }
  builder.build_into(g);
}

}  // namespace

TEST(Builder, TriangleCensus) {
  tc::runtime::run(3, [](tc::communicator& c) {
    plain_graph g(c);
    build_plain(c, g, {{0, 1}, {1, 2}, {0, 2}});
    const auto census = g.census();
    EXPECT_EQ(census.num_vertices, 3u);
    EXPECT_EQ(census.num_directed_edges, 6u);  // paper convention: 2x undirected
    EXPECT_EQ(census.max_degree, 2u);
    EXPECT_EQ(census.max_out_degree, 2u);
    EXPECT_EQ(census.wedge_checks, 1u);  // exactly one wedge at the pivot
  });
}

TEST(Builder, EveryUndirectedEdgeOrientedExactlyOnce) {
  tc::runtime::run(4, [](tc::communicator& c) {
    plain_graph g(c);
    // A 10-vertex graph with mixed degrees.
    std::vector<std::pair<tg::vertex_id, tg::vertex_id>> edges;
    for (tg::vertex_id v = 1; v < 10; ++v) edges.emplace_back(0, v);  // star
    edges.insert(edges.end(), {{1, 2}, {2, 3}, {3, 4}, {4, 5}, {1, 5}});
    build_plain(c, g, edges);

    std::uint64_t local_out_edges = 0;
    g.for_all_local([&](const tg::vertex_id&, const plain_graph::record_type& rec) {
      local_out_edges += rec.adj.size();
    });
    EXPECT_EQ(c.all_reduce_sum(local_out_edges), edges.size());
    EXPECT_EQ(g.census().num_directed_edges, 2 * edges.size());
  });
}

TEST(Builder, AdjacencySortedByOrderKey) {
  tc::runtime::run(3, [](tc::communicator& c) {
    plain_graph g(c);
    std::vector<std::pair<tg::vertex_id, tg::vertex_id>> edges;
    for (tg::vertex_id u = 0; u < 20; ++u) {
      for (tg::vertex_id v = u + 1; v < 20; v += (u % 3) + 1) edges.emplace_back(u, v);
    }
    build_plain(c, g, edges);
    g.for_all_local([&](const tg::vertex_id&, const plain_graph::record_type& rec) {
      for (std::size_t i = 1; i < rec.adj.size(); ++i) {
        EXPECT_TRUE(rec.adj[i - 1].key() < rec.adj[i].key());
      }
    });
  });
}

TEST(Builder, OrientationPointsToHigherOrder) {
  tc::runtime::run(3, [](tc::communicator& c) {
    plain_graph g(c);
    build_plain(c, g, {{0, 1}, {1, 2}, {0, 2}, {2, 3}, {3, 4}, {2, 4}});
    g.for_all_local([&](const tg::vertex_id& v, const plain_graph::record_type& rec) {
      for (const auto& e : rec.adj) {
        EXPECT_TRUE(tg::order_less(v, rec.order_rank, e.target, e.target_rank))
            << "edge " << v << "->" << e.target << " violates <+";
      }
    });
  });
}

TEST(Builder, SelfLoopsAndDuplicatesRemoved) {
  tc::runtime::run(2, [](tc::communicator& c) {
    plain_graph g(c);
    tg::graph_builder<tg::none, tg::none> builder(c);
    if (c.rank0()) {
      builder.add_edge(1, 1);  // self loop
      builder.add_edge(1, 2);
      builder.add_edge(2, 1);  // reverse duplicate
      builder.add_edge(1, 2);  // exact duplicate
    }
    // Concurrent duplicate contribution from the other rank.
    if (c.rank() == 1 % c.size()) builder.add_edge(2, 1);
    builder.build_into(g);
    const auto census = g.census();
    EXPECT_EQ(census.num_vertices, 2u);
    EXPECT_EQ(census.num_directed_edges, 2u);  // single undirected edge
  });
}

TEST(Builder, TargetDegreeFieldsMatchActualDegrees) {
  tc::runtime::run(4, [](tc::communicator& c) {
    plain_graph g(c);
    std::vector<std::pair<tg::vertex_id, tg::vertex_id>> edges = {
        {0, 1}, {0, 2}, {0, 3}, {1, 2}, {2, 3}, {3, 4}, {4, 0}};
    build_plain(c, g, edges);

    // Gather true degrees and out-degrees on every rank.
    std::vector<std::pair<tg::vertex_id, std::pair<std::uint64_t, std::uint64_t>>> local;
    g.for_all_local([&](const tg::vertex_id& v, const plain_graph::record_type& rec) {
      local.push_back({v, {rec.degree, rec.out_degree()}});
    });
    auto per_rank = c.all_gather(local);
    std::map<tg::vertex_id, std::pair<std::uint64_t, std::uint64_t>> truth;
    for (auto& vec : per_rank) {
      for (auto& [v, d] : vec) truth[v] = d;
    }

    g.for_all_local([&](const tg::vertex_id&, const plain_graph::record_type& rec) {
      for (const auto& e : rec.adj) {
        EXPECT_EQ(e.target_rank, truth.at(e.target).first);
        EXPECT_EQ(e.target_out_degree, truth.at(e.target).second);
      }
    });
  });
}

TEST(Builder, KeepLeastMergesToChronologicallyFirst) {
  tc::runtime::run(3, [](tc::communicator& c) {
    tg::dodgr<tg::none, std::uint64_t> g(c);
    tg::graph_builder<tg::none, std::uint64_t, tg::merge::keep_least> builder(c);
    // The same contact reported with different timestamps from many ranks.
    builder.add_edge(5, 9, 1000 + static_cast<std::uint64_t>(c.rank()));
    if (c.rank0()) builder.add_edge(9, 5, 17);  // chronological first, reversed
    builder.build_into(g);

    std::uint64_t local_min = UINT64_MAX;
    g.for_all_local([&](const tg::vertex_id&, const auto& rec) {
      for (const auto& e : rec.adj) local_min = std::min(local_min, e.edge_meta);
    });
    EXPECT_EQ(c.all_reduce_min(local_min), 17u);
    EXPECT_EQ(g.census().num_directed_edges, 2u);
  });
}

TEST(Builder, KeepGreatestPolicy) {
  tc::runtime::run(2, [](tc::communicator& c) {
    tg::dodgr<tg::none, std::uint64_t> g(c);
    tg::graph_builder<tg::none, std::uint64_t, tg::merge::keep_greatest> builder(c);
    builder.add_edge(1, 2, static_cast<std::uint64_t>(10 + c.rank()));
    builder.build_into(g);
    std::uint64_t local_max = 0;
    g.for_all_local([&](const tg::vertex_id&, const auto& rec) {
      for (const auto& e : rec.adj) local_max = std::max(local_max, e.edge_meta);
    });
    EXPECT_EQ(c.all_reduce_max(local_max), 11u);
  });
}

TEST(Builder, VertexMetadataColocatedOnAdjacency) {
  tc::runtime::run(3, [](tc::communicator& c) {
    tg::dodgr<std::string, tg::none> g(c);
    tg::graph_builder<std::string, tg::none> builder(c);
    if (c.rank0()) {
      builder.add_edge(0, 1);
      builder.add_edge(1, 2);
      builder.add_edge(0, 2);
      builder.add_vertex_meta(0, "zero.example");
      builder.add_vertex_meta(1, "one.example");
      builder.add_vertex_meta(2, "two.example");
    }
    builder.build_into(g);

    const std::vector<std::string> names{"zero.example", "one.example", "two.example"};
    g.for_all_local([&](const tg::vertex_id& v, const auto& rec) {
      EXPECT_EQ(rec.meta, names[v]);  // own metadata
      for (const auto& e : rec.adj) {
        EXPECT_EQ(e.target_meta, names[e.target]);  // Adjm+ carries target meta
      }
    });
  });
}

TEST(Builder, SelfLoopCounterTracksDrops) {
  tc::runtime::run(2, [](tc::communicator& c) {
    plain_graph g(c);
    tg::graph_builder<tg::none, tg::none> builder(c);
    builder.add_edge(3, 3);
    builder.add_edge(4, 4);
    builder.add_edge(3, 4);
    EXPECT_EQ(builder.local_dropped_self_loops(), 2u);
    builder.build_into(g);
    EXPECT_EQ(g.census().num_directed_edges, 2u);
  });
}

TEST(Builder, IsolatedVertexFromMetadataOnly) {
  tc::runtime::run(2, [](tc::communicator& c) {
    tg::dodgr<std::string, tg::none> g(c);
    tg::graph_builder<std::string, tg::none> builder(c);
    if (c.rank0()) {
      builder.add_edge(0, 1);
      builder.add_vertex_meta(7, "lonely.example");
    }
    builder.build_into(g);
    const auto census = g.census();
    EXPECT_EQ(census.num_vertices, 3u);  // 0, 1 and the isolated 7
    EXPECT_EQ(census.num_directed_edges, 2u);
  });
}

// --- parameterized: construction invariants across rank counts ---------------------

class BuilderSweep : public ::testing::TestWithParam<int> {};

TEST_P(BuilderSweep, InvariantsHoldAcrossRankCounts) {
  const int nranks = GetParam();
  tc::runtime::run(nranks, [](tc::communicator& c) {
    plain_graph g(c);
    tg::graph_builder<tg::none, tg::none> builder(c);
    // All ranks contribute overlapping slices of a ring + chords graph.
    const tg::vertex_id n = 64;
    for (tg::vertex_id v = 0; v < n; ++v) {
      builder.add_edge(v, (v + 1) % n);
      builder.add_edge(v, (v + 5) % n);
    }
    builder.build_into(g);
    const auto census = g.census();
    EXPECT_EQ(census.num_vertices, n);
    EXPECT_EQ(census.num_directed_edges, 2 * 2 * n);  // 2n unique undirected edges
    EXPECT_EQ(census.max_degree, 4u);

    // Orientation invariant (order_rank == degree under the default policy,
    // but the assertion must compare ranks to stay valid for any ordering).
    g.for_all_local([&](const tg::vertex_id& v, const plain_graph::record_type& rec) {
      for (const auto& e : rec.adj) {
        EXPECT_TRUE(tg::order_less(v, rec.order_rank, e.target, e.target_rank));
      }
    });
  });
}

INSTANTIATE_TEST_SUITE_P(RankCounts, BuilderSweep, ::testing::Values(1, 2, 3, 5, 8));
