// Tests for the workload generators: determinism, value ranges, the
// structural properties the experiments rely on.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <set>
#include <unordered_set>
#include <vector>

#include "gen/distribute.hpp"
#include "gen/erdos_renyi.hpp"
#include "gen/presets.hpp"
#include "gen/rmat.hpp"
#include "gen/temporal.hpp"
#include "gen/web.hpp"

namespace tgen = tripoll::gen;
namespace tg = tripoll::graph;

TEST(RankSlice, PartitionsExactly) {
  for (int size : {1, 2, 3, 7, 24}) {
    for (std::uint64_t total : {0ull, 1ull, 100ull, 12345ull}) {
      std::uint64_t covered = 0;
      std::uint64_t prev_end = 0;
      for (int r = 0; r < size; ++r) {
        const auto [lo, hi] = tgen::rank_slice(total, r, size);
        EXPECT_EQ(lo, prev_end);
        EXPECT_LE(lo, hi);
        covered += hi - lo;
        prev_end = hi;
      }
      EXPECT_EQ(covered, total);
      EXPECT_EQ(prev_end, total);
    }
  }
}

TEST(Rmat, DeterministicAndInRange) {
  tgen::rmat_generator gen(tgen::rmat_params{12, 8, 0.57, 0.19, 0.19, 1, true});
  tgen::rmat_generator gen2(tgen::rmat_params{12, 8, 0.57, 0.19, 0.19, 1, true});
  for (std::uint64_t k = 0; k < 5000; ++k) {
    const auto e = gen.edge_at(k);
    const auto e2 = gen2.edge_at(k);
    EXPECT_EQ(e, e2);
    EXPECT_LT(e.u, gen.num_vertices());
    EXPECT_LT(e.v, gen.num_vertices());
  }
}

TEST(Rmat, SeedChangesStream) {
  tgen::rmat_generator a(tgen::rmat_params{12, 8, 0.57, 0.19, 0.19, 1, true});
  tgen::rmat_generator b(tgen::rmat_params{12, 8, 0.57, 0.19, 0.19, 2, true});
  int diff = 0;
  for (std::uint64_t k = 0; k < 100; ++k) {
    if (!(a.edge_at(k) == b.edge_at(k))) ++diff;
  }
  EXPECT_GT(diff, 90);
}

TEST(Rmat, SkewProducesHeavyTail) {
  // With Graph500 parameters the max vertex frequency should far exceed the
  // mean frequency.
  tgen::rmat_generator gen(tgen::rmat_params{10, 16, 0.57, 0.19, 0.19, 3, true});
  std::map<tg::vertex_id, std::uint64_t> freq;
  for (std::uint64_t k = 0; k < gen.num_edges(); ++k) {
    const auto e = gen.edge_at(k);
    ++freq[e.u];
    ++freq[e.v];
  }
  std::uint64_t max_f = 0;
  for (auto& [v, f] : freq) max_f = std::max(max_f, f);
  const double mean = 2.0 * static_cast<double>(gen.num_edges()) /
                      static_cast<double>(gen.num_vertices());
  EXPECT_GT(static_cast<double>(max_f), 8.0 * mean);
}

TEST(Rmat, ScrambleIsBijective) {
  // With ids scrambled, the full stream must still only produce ids in
  // range; additionally hammering the permutation directly would require
  // exposing it, so check a proxy: low ids are no longer systematically
  // favored.  Quadrant parameter a=0.57 strongly favors vertex 0 without
  // scrambling.
  tgen::rmat_params p{10, 16, 0.57, 0.19, 0.19, 3, false};
  tgen::rmat_generator raw(p);
  p.scramble_ids = true;
  tgen::rmat_generator scrambled(p);
  std::uint64_t raw_zero = 0, scr_zero = 0;
  for (std::uint64_t k = 0; k < 10000; ++k) {
    raw_zero += raw.edge_at(k).u == 0;
    scr_zero += scrambled.edge_at(k).u == 0;
  }
  EXPECT_GT(raw_zero, 100u);  // unscrambled: vertex 0 is the hot corner
}

TEST(Rmat, RejectsInvalidParams) {
  EXPECT_THROW(tgen::rmat_generator(tgen::rmat_params{0, 16}), std::invalid_argument);
  EXPECT_THROW(tgen::rmat_generator(tgen::rmat_params{16, 16, 0.9, 0.2, 0.2}),
               std::invalid_argument);
}

TEST(ErdosRenyi, InRangeAndDeterministic) {
  tgen::erdos_renyi_generator gen(1000, 5000, 11);
  for (std::uint64_t k = 0; k < gen.num_edges(); ++k) {
    const auto e = gen.edge_at(k);
    EXPECT_LT(e.u, 1000u);
    EXPECT_LT(e.v, 1000u);
    EXPECT_EQ(e.u, gen.edge_at(k).u);
  }
}

TEST(Temporal, TimestampsInSpanAndOrdered) {
  tgen::temporal_params p;
  p.scale = 10;
  p.edge_factor = 8;
  tgen::temporal_generator gen(p);
  const std::uint64_t slack = 8ull * 24 * 3600;  // a week of jitter
  std::uint64_t prev_base_bound = 0;
  for (std::uint64_t k = 0; k < gen.num_edges(); k += 97) {
    const auto e = gen.edge_at(k);
    EXPECT_LE(e.u, e.v);
    EXPECT_LT(e.v, gen.num_vertices());
    EXPECT_GE(e.timestamp, p.start_time);
    EXPECT_LE(e.timestamp, p.start_time + p.span_seconds + slack);
    // Human activity grows with the network: later indices have (weakly)
    // later base times.  Bot pairs are burst-synchronized and exempt.
    if (!(gen.is_bot(e.u) && gen.is_bot(e.v))) {
      EXPECT_GE(e.timestamp + slack, prev_base_bound);
      prev_base_bound = e.timestamp > slack ? e.timestamp - slack : 0;
    }
  }
}

TEST(Temporal, BotPairsClusterInBurstWindows) {
  tgen::temporal_params p;
  p.scale = 12;
  p.bot_fraction = 0.10;
  tgen::temporal_generator gen(p);
  // Bot-pair timestamps concentrate on few distinct burst windows (8
  // cohorts), while human timestamps spread over the whole span.
  std::set<std::uint64_t> bot_minutes;
  std::uint64_t bot_edges = 0;
  for (std::uint64_t k = 0; k < 50000; ++k) {
    const auto e = gen.edge_at(k);
    if (gen.is_bot(e.u) && gen.is_bot(e.v)) {
      ++bot_edges;
      bot_minutes.insert(e.timestamp / 600);  // 10-minute buckets
    }
  }
  ASSERT_GT(bot_edges, 100u);  // affinity makes bot-bot edges common
  EXPECT_LE(bot_minutes.size(), 16u);  // few shared burst windows
}

TEST(Temporal, BotFractionApproximate) {
  tgen::temporal_params p;
  p.scale = 14;
  p.bot_fraction = 0.10;
  tgen::temporal_generator gen(p);
  std::uint64_t bots = 0;
  const std::uint64_t n = 10000;
  for (tg::vertex_id v = 0; v < n; ++v) bots += gen.is_bot(v);
  EXPECT_GT(bots, 700u);
  EXPECT_LT(bots, 1300u);
}

TEST(Temporal, RejectsBadParams) {
  tgen::temporal_params p;
  p.scale = 0;
  EXPECT_THROW(tgen::temporal_generator{p}, std::invalid_argument);
  p.scale = 10;
  p.bot_fraction = 1.5;
  EXPECT_THROW(tgen::temporal_generator{p}, std::invalid_argument);
}

TEST(Web, DomainsPartitionPages) {
  tgen::web_params p;
  p.scale = 12;
  p.num_domains = 64;
  tgen::web_generator gen(p);
  // domain_of is consistent, monotone, and covers [0, num_domains).
  std::set<std::uint32_t> seen;
  std::uint32_t prev = 0;
  for (tg::vertex_id page = 0; page < gen.num_vertices(); ++page) {
    const auto d = gen.domain_of(page);
    EXPECT_LT(d, p.num_domains);
    EXPECT_GE(d, prev);
    prev = d;
    seen.insert(d);
  }
  EXPECT_EQ(seen.size(), p.num_domains);  // every domain non-empty
}

TEST(Web, PowerLawDomainSizes) {
  tgen::web_params p;
  p.scale = 14;
  p.num_domains = 128;
  tgen::web_generator gen(p);
  std::vector<std::uint64_t> sizes(p.num_domains, 0);
  for (tg::vertex_id page = 0; page < gen.num_vertices(); ++page) {
    ++sizes[gen.domain_of(page)];
  }
  EXPECT_GT(sizes[0], 10 * sizes[p.num_domains - 1]);
}

TEST(Web, FqdnStringsAreStable) {
  tgen::web_params p;
  tgen::web_generator gen(p);
  EXPECT_EQ(gen.fqdn_of_domain(0), "amazon.com");
  EXPECT_EQ(gen.fqdn_of_domain(4), "abebooks.com");
  const auto s = gen.fqdn_of_domain(500);
  EXPECT_FALSE(s.empty());
  EXPECT_NE(s.find('.'), std::string::npos);
  EXPECT_EQ(gen.fqdn_of_domain(500), s);
}

TEST(Web, HubsAttractLinks) {
  tgen::web_params p;
  p.scale = 13;
  tgen::web_generator gen(p);
  std::uint64_t hub_hits = 0;
  const std::uint64_t sample = 20000;
  for (std::uint64_t k = 0; k < sample; ++k) {
    const auto e = gen.edge_at(k);
    EXPECT_LT(e.u, gen.num_vertices());
    EXPECT_LT(e.v, gen.num_vertices());
    if (gen.domain_of(e.v) < p.num_hub_domains) ++hub_hits;
  }
  // At least the configured hub probability's worth of links goes hubward.
  EXPECT_GT(static_cast<double>(hub_hits),
            0.8 * p.p_hub * static_cast<double>(sample));
}

TEST(Web, RejectsBadParams) {
  tgen::web_params p;
  p.scale = 0;
  EXPECT_THROW(tgen::web_generator{p}, std::invalid_argument);
  p.scale = 10;
  p.num_domains = 5000;  // more domains than pages (2^10)
  EXPECT_THROW(tgen::web_generator{p}, std::invalid_argument);
  p.num_domains = 64;
  p.p_intra_domain = 0.9;
  p.p_hub = 0.5;
  EXPECT_THROW(tgen::web_generator{p}, std::invalid_argument);
}

TEST(Presets, StandardSuiteShapes) {
  const auto suite = tgen::standard_suite(-4);
  ASSERT_EQ(suite.size(), 4u);
  EXPECT_EQ(suite[0].name, "friendster-like");
  EXPECT_EQ(suite[0].kind, tgen::dataset_kind::rmat);
  EXPECT_EQ(suite[2].kind, tgen::dataset_kind::web);
  // scale_delta shifts sizes down.
  const auto big = tgen::standard_suite(0);
  EXPECT_GT(big[0].rmat.scale, suite[0].rmat.scale);
}
