// Tests for the extension features: directed-graph support (paper Sec. 4),
// triangle-derived analytics (clustering, edge support) and the
// wedge-sampling approximate counter.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <map>
#include <tuple>
#include <vector>

#include "baselines/approx_tc.hpp"
#include "baselines/serial_tc.hpp"
#include "comm/runtime.hpp"
#include "core/analytics.hpp"
#include "core/callbacks.hpp"
#include "core/survey.hpp"
#include "gen/erdos_renyi.hpp"
#include "gen/rmat.hpp"
#include "graph/builder.hpp"
#include "graph/directed.hpp"

namespace tc = tripoll::comm;
namespace tg = tripoll::graph;
namespace ta = tripoll::analytics;
namespace tb = tripoll::baselines;

using plain_graph = tg::dodgr<tg::none, tg::none>;

// --- directed-graph support -----------------------------------------------------

TEST(DirectedMeta, DirectionResolution) {
  tg::directed_meta<int> m;
  m.flags = 1;  // low -> high seen
  EXPECT_EQ(m.direction(2, 5), tg::edge_direction::as_seen);
  EXPECT_EQ(m.direction(5, 2), tg::edge_direction::reversed);
  m.flags = 2;  // high -> low seen
  EXPECT_EQ(m.direction(2, 5), tg::edge_direction::reversed);
  EXPECT_EQ(m.direction(5, 2), tg::edge_direction::as_seen);
  m.flags = 3;
  EXPECT_EQ(m.direction(2, 5), tg::edge_direction::bidirectional);
  EXPECT_EQ(m.direction(5, 2), tg::edge_direction::bidirectional);
}

namespace {

using directed_row =
    std::tuple<tg::vertex_id, tg::vertex_id, std::uint8_t>;  // (from, to, direction)

struct directed_collect_context {
  std::vector<directed_row> rows;
};

struct directed_collect_callback {
  void operator()(
      const tripoll::triangle_view<tg::none, tg::directed_meta<std::uint32_t>>& v,
      directed_collect_context& ctx) const {
    ctx.rows.emplace_back(v.p, v.q, static_cast<std::uint8_t>(v.meta_pq.direction(v.p, v.q)));
    ctx.rows.emplace_back(v.p, v.r, static_cast<std::uint8_t>(v.meta_pr.direction(v.p, v.r)));
    ctx.rows.emplace_back(v.q, v.r, static_cast<std::uint8_t>(v.meta_qr.direction(v.q, v.r)));
  }
};

}  // namespace

class DirectedTriangle : public ::testing::TestWithParam<tripoll::survey_mode> {};

TEST_P(DirectedTriangle, CallbackSeesOriginalDirections) {
  const auto mode = GetParam();
  tc::runtime::run(3, [&](tc::communicator& c) {
    // Directed input: 0 -> 1, 2 -> 1, and both 0 -> 2 and 2 -> 0.
    tg::directed_graph_builder<tg::none, std::uint32_t> builder(c);
    if (c.rank0()) {
      builder.add_directed_edge(0, 1, 7);
      builder.add_directed_edge(2, 1, 8);
      builder.add_directed_edge(0, 2, 9);
      builder.add_directed_edge(2, 0, 9);
    }
    tg::directed_dodgr<tg::none, std::uint32_t> g(c);
    builder.build_into(g);

    directed_collect_context ctx;
    tripoll::triangle_survey(g, directed_collect_callback{}, ctx, {mode});

    auto per_rank = c.all_gather(ctx.rows);
    std::map<std::pair<tg::vertex_id, tg::vertex_id>, std::uint8_t> seen;
    std::size_t total = 0;
    for (auto& rows : per_rank) {
      for (auto& [from, to, dir] : rows) {
        seen[{std::min(from, to), std::max(from, to)}] = dir == 3 ? 3 : dir;
        // Re-derive direction relative to the canonical (low, high) query to
        // compare against ground truth.
        ++total;
      }
    }
    ASSERT_EQ(total, 3u);  // one triangle, three edges

    // Ground truth relative to each reported (from, to): recompute directly.
    for (auto& rows : per_rank) {
      for (auto& [from, to, dir] : rows) {
        const auto lo = std::min(from, to);
        const auto hi = std::max(from, to);
        if (lo == 0 && hi == 1) {
          // input had 0 -> 1 only
          const auto expected = from == 0 ? tg::edge_direction::as_seen
                                          : tg::edge_direction::reversed;
          EXPECT_EQ(dir, static_cast<std::uint8_t>(expected));
        } else if (lo == 1 && hi == 2) {
          // input had 2 -> 1 only
          const auto expected = from == 2 ? tg::edge_direction::as_seen
                                          : tg::edge_direction::reversed;
          EXPECT_EQ(dir, static_cast<std::uint8_t>(expected));
        } else {
          EXPECT_EQ(dir, static_cast<std::uint8_t>(tg::edge_direction::bidirectional));
        }
      }
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Modes, DirectedTriangle,
                         ::testing::Values(tripoll::survey_mode::push_only,
                                           tripoll::survey_mode::push_pull));

TEST(DirectedBuilder, DuplicateDirectionsMerge) {
  tc::runtime::run(2, [](tc::communicator& c) {
    tg::directed_graph_builder<tg::none, std::uint32_t> builder(c);
    // Both ranks contribute the same directed edge; one adds the reverse.
    builder.add_directed_edge(4, 9, 1);
    if (c.rank0()) builder.add_directed_edge(9, 4, 1);
    tg::directed_dodgr<tg::none, std::uint32_t> g(c);
    builder.build_into(g);

    std::uint8_t flags = 0;
    g.for_all_local([&](const tg::vertex_id&, const auto& rec) {
      for (const auto& e : rec.adj) flags = e.edge_meta.flags;
    });
    EXPECT_EQ(c.all_reduce_max(flags), 3u);  // both directions recorded
    EXPECT_EQ(g.census().num_directed_edges, 2u);  // still one undirected edge
  });
}

// --- analytics: clustering coefficients ---------------------------------------------

namespace {

using edge_pairs = std::vector<std::pair<tg::vertex_id, tg::vertex_id>>;

void build_plain(tc::communicator& c, plain_graph& g, const edge_pairs& edges) {
  tg::graph_builder<tg::none, tg::none> builder(c);
  if (c.rank0()) {
    for (const auto& [u, v] : edges) builder.add_edge(u, v);
  }
  builder.build_into(g);
}

edge_pairs complete_graph(tg::vertex_id n) {
  edge_pairs edges;
  for (tg::vertex_id u = 0; u < n; ++u) {
    for (tg::vertex_id v = u + 1; v < n; ++v) edges.emplace_back(u, v);
  }
  return edges;
}

}  // namespace

TEST(Clustering, CompleteGraphIsFullyClustered) {
  tc::runtime::run(3, [](tc::communicator& c) {
    plain_graph g(c);
    build_plain(c, g, complete_graph(8));
    const auto s = ta::clustering_coefficients(g);
    EXPECT_EQ(s.triangles, 56u);
    EXPECT_DOUBLE_EQ(s.transitivity, 1.0);
    EXPECT_DOUBLE_EQ(s.average_local_cc, 1.0);
    EXPECT_EQ(s.eligible_vertices, 8u);
  });
}

TEST(Clustering, TriangleWithPendantEdge) {
  // Vertices 0,1,2 form a triangle; 3 hangs off 2.
  // d = (2,2,3,1); wedges = 1+1+3+0 = 5; closed wedge count = 3.
  tc::runtime::run(2, [](tc::communicator& c) {
    plain_graph g(c);
    build_plain(c, g, {{0, 1}, {1, 2}, {0, 2}, {2, 3}});
    const auto s = ta::clustering_coefficients(g);
    EXPECT_EQ(s.triangles, 1u);
    EXPECT_EQ(s.total_wedges, 5u);
    EXPECT_DOUBLE_EQ(s.transitivity, 3.0 / 5.0);
    // local cc: v0 = 1, v1 = 1, v2 = 1/3; average over 3 eligible vertices.
    EXPECT_NEAR(s.average_local_cc, (1.0 + 1.0 + 1.0 / 3.0) / 3.0, 1e-12);
    EXPECT_EQ(s.eligible_vertices, 3u);
  });
}

TEST(Clustering, TrianglelessGraphIsZero) {
  tc::runtime::run(2, [](tc::communicator& c) {
    plain_graph g(c);
    build_plain(c, g, {{0, 1}, {1, 2}, {2, 3}});  // path
    const auto s = ta::clustering_coefficients(g);
    EXPECT_EQ(s.triangles, 0u);
    EXPECT_DOUBLE_EQ(s.transitivity, 0.0);
    EXPECT_DOUBLE_EQ(s.average_local_cc, 0.0);
  });
}

TEST(Clustering, BothModesAgree) {
  tripoll::gen::erdos_renyi_generator gen(150, 1200, 3);
  std::vector<tg::edge> edges;
  for (std::uint64_t k = 0; k < gen.num_edges(); ++k) edges.push_back(gen.edge_at(k));
  tc::runtime::run(4, [&](tc::communicator& c) {
    plain_graph g(c);
    tg::graph_builder<tg::none, tg::none> builder(c);
    for (std::size_t i = static_cast<std::size_t>(c.rank()); i < edges.size();
         i += static_cast<std::size_t>(c.size())) {
      builder.add_edge(edges[i].u, edges[i].v);
    }
    builder.build_into(g);
    const auto a = ta::clustering_coefficients(g, tripoll::survey_mode::push_only);
    const auto b = ta::clustering_coefficients(g, tripoll::survey_mode::push_pull);
    EXPECT_EQ(a.triangles, b.triangles);
    EXPECT_DOUBLE_EQ(a.transitivity, b.transitivity);
    EXPECT_NEAR(a.average_local_cc, b.average_local_cc, 1e-12);
  });
}

// --- analytics: edge support ----------------------------------------------------------

TEST(EdgeSupport, K4EveryEdgeInTwoTriangles) {
  tc::runtime::run(3, [](tc::communicator& c) {
    plain_graph g(c);
    build_plain(c, g, complete_graph(4));
    tc::counting_set<ta::edge_key> support(c);
    ta::edge_support(g, support);
    auto all = support.gather_all();
    ASSERT_EQ(all.size(), 6u);
    for (auto& [e, n] : all) EXPECT_EQ(n, 2u);
  });
}

TEST(EdgeSupport, SharedEdgeHasHigherSupport) {
  // Two triangles sharing edge (1,2).
  tc::runtime::run(2, [](tc::communicator& c) {
    plain_graph g(c);
    build_plain(c, g, {{0, 1}, {0, 2}, {1, 2}, {1, 3}, {2, 3}});
    tc::counting_set<ta::edge_key> support(c);
    ta::edge_support(g, support);
    auto all = support.gather_all();
    EXPECT_EQ(all.at({1, 2}), 2u);
    EXPECT_EQ(all.at({0, 1}), 1u);
    EXPECT_EQ(all.at({2, 3}), 1u);
  });
}

// --- approximate counting ---------------------------------------------------------------

TEST(ApproxCount, ExactWhenSamplingEveryWedge) {
  // Sampling >> |W+| draws (with replacement) concentrates tightly.
  const auto edges_vec = complete_graph(12);
  std::vector<tg::edge> edges;
  for (auto& [u, v] : edges_vec) edges.push_back({u, v});
  const auto expected = tb::serial_triangle_count(edges);
  tc::runtime::run(3, [&](tc::communicator& c) {
    plain_graph g(c);
    build_plain(c, g, edges_vec);
    const auto r = tb::approx_triangle_count(c, g, 200000, 5);
    EXPECT_GT(r.samples, 100000u);
    EXPECT_NEAR(r.estimate, static_cast<double>(expected),
                0.05 * static_cast<double>(expected));
  });
}

TEST(ApproxCount, WithinToleranceOnRmat) {
  tripoll::gen::rmat_generator gen(
      tripoll::gen::rmat_params{10, 8, 0.57, 0.19, 0.19, 17, true});
  std::vector<tg::edge> edges;
  for (std::uint64_t k = 0; k < gen.num_edges(); ++k) edges.push_back(gen.edge_at(k));
  const auto expected = tb::serial_triangle_count(edges);
  ASSERT_GT(expected, 100u);
  tc::runtime::run(4, [&](tc::communicator& c) {
    plain_graph g(c);
    tg::graph_builder<tg::none, tg::none> builder(c);
    for (std::size_t i = static_cast<std::size_t>(c.rank()); i < edges.size();
         i += static_cast<std::size_t>(c.size())) {
      builder.add_edge(edges[i].u, edges[i].v);
    }
    builder.build_into(g);
    const auto r = tb::approx_triangle_count(c, g, 150000, 11);
    // Loose 15% tolerance: the estimator is unbiased, seeds are fixed.
    EXPECT_NEAR(r.estimate, static_cast<double>(expected),
                0.15 * static_cast<double>(expected));
    EXPECT_GT(r.total_wedges, 0u);
  });
}

TEST(ApproxCount, ZeroOnTrianglelessGraph) {
  tc::runtime::run(2, [](tc::communicator& c) {
    plain_graph g(c);
    build_plain(c, g, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
    const auto r = tb::approx_triangle_count(c, g, 10000, 3);
    EXPECT_EQ(r.closed, 0u);
    EXPECT_DOUBLE_EQ(r.estimate, 0.0);
  });
}
