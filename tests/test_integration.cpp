// End-to-end integration tests: full generator -> builder -> survey
// pipelines must be bit-identical across rank counts and modes, and the
// dodgr visit API must compose with surveys.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <tuple>
#include <vector>

#include <unistd.h>

#include "comm/counting_set.hpp"
#include "comm/runtime.hpp"
#include "core/callbacks.hpp"
#include "core/survey.hpp"
#include "gen/presets.hpp"
#include "gen/temporal.hpp"
#include "gen/web.hpp"
#include "graph/dodgr.hpp"

namespace tc = tripoll::comm;
namespace tg = tripoll::graph;
namespace cb = tripoll::callbacks;
namespace gen = tripoll::gen;

namespace {

struct temporal_fingerprint {
  tg::graph_census census{};
  std::map<cb::closure_bin, std::uint64_t> histogram;
  std::uint64_t triangles = 0;

  bool operator==(const temporal_fingerprint& other) const {
    return census.num_vertices == other.census.num_vertices &&
           census.num_directed_edges == other.census.num_directed_edges &&
           census.max_degree == other.census.max_degree &&
           census.max_out_degree == other.census.max_out_degree &&
           census.wedge_checks == other.census.wedge_checks &&
           histogram == other.histogram && triangles == other.triangles;
  }
};

temporal_fingerprint run_temporal_pipeline(int nranks, tripoll::survey_mode mode) {
  temporal_fingerprint fp;
  gen::temporal_params params;
  params.scale = 10;
  params.edge_factor = 12;
  tc::runtime::run(nranks, [&](tc::communicator& c) {
    gen::temporal_graph g(c);
    gen::build_temporal_graph(c, g, params);
    tc::counting_set<cb::closure_bin> counters(c);
    cb::closure_time_context ctx{&counters};
    const auto result = tripoll::triangle_survey(g, cb::closure_time_callback{}, ctx,
                                                 {mode});
    counters.finalize();
    auto gathered = counters.gather_all();
    if (c.rank0()) {
      fp.census = g.census();
      fp.histogram = std::move(gathered);
      fp.triangles = result.triangles_found;
    } else {
      (void)g.census();
    }
  });
  return fp;
}

}  // namespace

TEST(Integration, TemporalPipelineIdenticalAcrossRankCounts) {
  const auto reference = run_temporal_pipeline(1, tripoll::survey_mode::push_pull);
  ASSERT_GT(reference.triangles, 0u);
  for (const int nranks : {2, 3, 6}) {
    const auto fp = run_temporal_pipeline(nranks, tripoll::survey_mode::push_pull);
    EXPECT_TRUE(fp == reference) << "rank count " << nranks;
  }
}

TEST(Integration, TemporalPipelineIdenticalAcrossModes) {
  const auto pp = run_temporal_pipeline(4, tripoll::survey_mode::push_pull);
  const auto po = run_temporal_pipeline(4, tripoll::survey_mode::push_only);
  EXPECT_TRUE(pp == po);
}

TEST(Integration, WebPipelineFqdnTotalsStableAcrossRankCounts) {
  gen::web_params params;
  params.scale = 10;
  std::vector<std::uint64_t> distinct_counts;
  std::vector<std::uint64_t> tuple_counts;
  for (const int nranks : {1, 3, 5}) {
    tc::runtime::run(nranks, [&](tc::communicator& c) {
      gen::web_graph g(c);
      gen::build_web_graph(c, g, params);
      tc::counting_set<cb::fqdn_tuple> counters(c);
      cb::fqdn_tuple_context ctx{&counters};
      tripoll::triangle_survey(g, cb::fqdn_tuple_callback{}, ctx);
      counters.finalize();
      const auto distinct = c.all_reduce_sum(ctx.distinct_fqdn_triangles);
      const auto tuples = counters.global_size();
      if (c.rank0()) {
        distinct_counts.push_back(distinct);
        tuple_counts.push_back(tuples);
      }
    });
  }
  ASSERT_EQ(distinct_counts.size(), 3u);
  EXPECT_EQ(distinct_counts[1], distinct_counts[0]);
  EXPECT_EQ(distinct_counts[2], distinct_counts[0]);
  EXPECT_EQ(tuple_counts[1], tuple_counts[0]);
  EXPECT_EQ(tuple_counts[2], tuple_counts[0]);
}

// --- dodgr visit API ----------------------------------------------------------------

namespace {

struct mark_visitor {
  void operator()(const tg::vertex_id& /*v*/,
                  tg::vertex_record<tg::none, tg::none>& rec) {
    rec.degree += 1000000;  // visible marker, applied on the owner
  }
};

}  // namespace

TEST(Integration, DodgrVisitRunsOnOwner) {
  tc::runtime::run(3, [](tc::communicator& c) {
    gen::dataset_spec spec = gen::livejournal_like(-8);
    gen::plain_graph g(c);
    gen::build_dataset(c, g, spec);

    // Every rank asks vertex 1 to be marked; it exists in any nontrivial
    // R-MAT graph slice.  Pick an id that is locally known to exist.
    tg::vertex_id target = 0;
    bool have = false;
    g.for_all_local([&](const tg::vertex_id& v, const auto&) {
      if (!have) {
        target = v;
        have = true;
      }
    });
    if (have) g.async_visit(target, mark_visitor{});
    c.barrier();

    std::uint64_t marked = 0;
    g.for_all_local([&](const tg::vertex_id&, const auto& rec) {
      if (rec.degree >= 1000000) ++marked;
    });
    // Each rank marked exactly one of its own vertices (owner stability).
    EXPECT_EQ(c.all_reduce_sum(marked), static_cast<std::uint64_t>(
        c.all_reduce_sum(static_cast<std::uint64_t>(have ? 1 : 0))));
  });
}

TEST(Integration, EnumerationToFilesCoversAllTriangles) {
  // Sec. 4.5 output mode: each rank streams its discovered triangles to a
  // private file; the union must be exactly the triangle set.
  const auto dir = std::filesystem::temp_directory_path();
  const std::string stem =
      (dir / ("tripoll_enum_" + std::to_string(::getpid()) + "_")).string();
  const int nranks = 3;
  tc::runtime::run(nranks, [&](tc::communicator& c) {
    gen::plain_graph g(c);
    gen::dataset_spec spec = gen::livejournal_like(-7);
    gen::build_dataset(c, g, spec);

    const std::string path = stem + std::to_string(c.rank()) + ".txt";
    cb::enumerate_context ctx;
    ctx.out = std::fopen(path.c_str(), "w");
    ASSERT_NE(ctx.out, nullptr);
    tripoll::triangle_survey(g, cb::enumerate_callback{}, ctx);
    std::fclose(ctx.out);

    // Cross-check: total rows equal the global triangle count.
    cb::count_context count_ctx;
    tripoll::triangle_survey(g, cb::count_callback{}, count_ctx);
    const auto expected = count_ctx.global_count(c);
    EXPECT_EQ(c.all_reduce_sum(ctx.rows), expected);
  });

  // Parse the per-rank files back and verify uniqueness.
  std::set<std::tuple<std::uint64_t, std::uint64_t, std::uint64_t>> seen;
  std::uint64_t rows = 0;
  for (int r = 0; r < nranks; ++r) {
    const std::string path = stem + std::to_string(r) + ".txt";
    std::ifstream in(path);
    std::uint64_t p = 0, q = 0, t = 0;
    while (in >> p >> q >> t) {
      ++rows;
      EXPECT_TRUE(seen.insert({p, q, t}).second) << "duplicate triangle row";
    }
    std::filesystem::remove(path);
  }
  EXPECT_EQ(rows, seen.size());
  EXPECT_GT(rows, 0u);
}

TEST(Integration, VisitToUnknownVertexIsNoop) {
  tc::runtime::run(2, [](tc::communicator& c) {
    gen::plain_graph g(c);
    gen::dataset_spec spec = gen::livejournal_like(-9);
    gen::build_dataset(c, g, spec);
    const auto before = g.census();
    g.invalidate_census();
    g.async_visit(0xFFFFFFFFFFFFull, mark_visitor{});  // id outside the graph
    c.barrier();
    const auto after = g.census();
    EXPECT_EQ(before.num_vertices, after.num_vertices);
    EXPECT_EQ(before.max_degree, after.max_degree);
  });
}
