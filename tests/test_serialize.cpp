// Unit tests for the serialization substrate (cereal stand-in).
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <limits>
#include <map>
#include <optional>
#include <random>
#include <set>
#include <string>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "serial/buffer.hpp"
#include "serial/hash.hpp"
#include "serial/serialize.hpp"

namespace ts = tripoll::serial;

TEST(ByteBuffer, StartsEmpty) {
  ts::byte_buffer buf;
  EXPECT_TRUE(buf.empty());
  EXPECT_EQ(buf.size(), 0u);
}

TEST(ByteBuffer, AppendGrows) {
  ts::byte_buffer buf;
  const char data[] = "hello";
  buf.append(data, 5);
  EXPECT_EQ(buf.size(), 5u);
  buf.append(data, 5);
  EXPECT_EQ(buf.size(), 10u);
}

TEST(ByteBuffer, ReleaseMovesStorage) {
  ts::byte_buffer buf;
  const char data[] = "abc";
  buf.append(data, 3);
  auto bytes = buf.release();
  EXPECT_EQ(bytes.size(), 3u);
  EXPECT_TRUE(buf.empty());
}

TEST(ByteBuffer, MoveTransfersStorage) {
  ts::byte_buffer buf;
  const char data[] = "xyz";
  buf.append(data, 3);
  const auto* p = buf.data();
  ts::byte_buffer other(std::move(buf));
  EXPECT_EQ(other.data(), p);
  EXPECT_EQ(other.size(), 3u);
  EXPECT_TRUE(buf.empty());  // NOLINT(bugprone-use-after-move): moved-from is empty
  EXPECT_EQ(buf.capacity(), 0u);
}

TEST(ByteBuffer, ClearKeepsCapacity) {
  ts::byte_buffer buf;
  const std::uint64_t v = 1;
  for (int i = 0; i < 100; ++i) buf.append(&v, sizeof(v));
  const auto cap = buf.capacity();
  EXPECT_GE(cap, 800u);
  buf.clear();
  EXPECT_TRUE(buf.empty());
  EXPECT_EQ(buf.capacity(), cap);
}

TEST(ByteBuffer, PrepareCommitWritesInPlace) {
  ts::byte_buffer buf;
  std::byte* p = buf.prepare(4);
  p[0] = std::byte{1};
  p[1] = std::byte{2};
  buf.commit(2);
  EXPECT_EQ(buf.size(), 2u);
  EXPECT_EQ(buf.data()[1], std::byte{2});
}

// --- buffer pool -------------------------------------------------------------

TEST(BufferPool, RecycledStorageIsReused) {
  ts::buffer_pool pool(4);
  ts::byte_buffer buf = pool.acquire(4096);
  EXPECT_EQ(pool.misses(), 1u);
  const std::uint64_t v = 42;
  buf.append(&v, sizeof(v));
  const auto* storage = buf.data();
  pool.recycle(std::move(buf));
  EXPECT_EQ(pool.recycled(), 1u);
  EXPECT_EQ(pool.pooled_count(), 1u);

  ts::byte_buffer again = pool.acquire(4096);
  EXPECT_EQ(pool.hits(), 1u);
  EXPECT_EQ(again.data(), storage);  // same block, no allocation
  EXPECT_TRUE(again.empty());        // recycled buffers come back cleared
}

TEST(BufferPool, AcquireGrantsRequestedCapacity) {
  ts::buffer_pool pool;
  for (std::size_t want : {std::size_t{1}, std::size_t{600}, std::size_t{100000}}) {
    EXPECT_GE(pool.acquire(want).capacity(), want);
  }
}

TEST(BufferPool, TierCapDropsExcess) {
  ts::buffer_pool pool(2);
  for (int i = 0; i < 5; ++i) pool.recycle(ts::byte_buffer(4096));
  EXPECT_EQ(pool.pooled_count(), 2u);
}

TEST(BufferPool, TinyAndHugeBlocksAreDropped) {
  ts::buffer_pool pool(8);
  pool.recycle(ts::byte_buffer{});     // no storage at all
  pool.recycle(ts::byte_buffer(16));   // below the smallest tier
  EXPECT_EQ(pool.pooled_count(), 0u);
}

TEST(BufferPool, TryReuseLeavesBufferAloneWhenEmpty) {
  ts::buffer_pool pool;
  ts::byte_buffer buf;
  pool.try_reuse(buf, 4096);
  EXPECT_EQ(buf.capacity(), 0u);  // pool empty: no allocation forced
  pool.recycle(ts::byte_buffer(4096));
  pool.try_reuse(buf, 4096);
  EXPECT_GE(buf.capacity(), 4096u);
  EXPECT_EQ(pool.hits(), 1u);
}

TEST(BufferReader, ReadPastEndThrows) {
  ts::byte_buffer buf;
  const std::uint32_t v = 7;
  buf.append(&v, sizeof(v));
  ts::buffer_reader rd(buf.view());
  std::uint64_t too_big = 0;
  EXPECT_THROW(rd.read(&too_big, sizeof(too_big)), ts::deserialize_error);
}

TEST(BufferReader, TracksRemaining) {
  ts::byte_buffer buf;
  const std::uint64_t v = 42;
  buf.append(&v, sizeof(v));
  ts::buffer_reader rd(buf.view());
  EXPECT_EQ(rd.remaining(), 8u);
  std::uint32_t half = 0;
  rd.read(&half, sizeof(half));
  EXPECT_EQ(rd.remaining(), 4u);
  EXPECT_FALSE(rd.exhausted());
  rd.read(&half, sizeof(half));
  EXPECT_TRUE(rd.exhausted());
}

// --- round trips -------------------------------------------------------------

template <typename T>
void expect_roundtrip(const T& value) {
  EXPECT_EQ(ts::roundtrip(value), value);
}

TEST(Serialize, IntegralRoundtrips) {
  expect_roundtrip<std::int8_t>(-5);
  expect_roundtrip<std::uint8_t>(200);
  expect_roundtrip<std::int32_t>(std::numeric_limits<std::int32_t>::min());
  expect_roundtrip<std::uint64_t>(std::numeric_limits<std::uint64_t>::max());
  expect_roundtrip<bool>(true);
  expect_roundtrip<char>('x');
}

TEST(Serialize, FloatingRoundtrips) {
  expect_roundtrip(3.14159);
  expect_roundtrip(-0.0f);
  expect_roundtrip(std::numeric_limits<double>::infinity());
}

TEST(Serialize, StringRoundtrips) {
  expect_roundtrip(std::string{});
  expect_roundtrip(std::string{"amazon.com"});
  expect_roundtrip(std::string(10000, 'x'));
  std::string with_nulls = "a";
  with_nulls.push_back('\0');
  with_nulls += "b";
  expect_roundtrip(with_nulls);
}

TEST(Serialize, VectorOfPodRoundtrips) {
  expect_roundtrip(std::vector<int>{});
  expect_roundtrip(std::vector<int>{1, 2, 3});
  std::vector<std::uint64_t> big(4096);
  for (std::size_t i = 0; i < big.size(); ++i) big[i] = i * i;
  expect_roundtrip(big);
}

TEST(Serialize, VectorOfStringsRoundtrips) {
  expect_roundtrip(std::vector<std::string>{"", "a", "bb", "ccc"});
}

TEST(Serialize, NestedContainersRoundtrip) {
  expect_roundtrip(std::vector<std::vector<int>>{{1}, {}, {2, 3}});
  std::map<std::string, std::vector<int>> m{{"a", {1, 2}}, {"b", {}}};
  expect_roundtrip(m);
  std::unordered_map<int, std::string> um{{1, "one"}, {2, "two"}};
  expect_roundtrip(um);
  expect_roundtrip(std::set<int>{5, 1, 3});
}

TEST(Serialize, PairTupleRoundtrip) {
  expect_roundtrip(std::pair<int, std::string>{7, "seven"});
  expect_roundtrip(std::tuple<int, double, std::string>{1, 2.5, "x"});
  expect_roundtrip(std::tuple<>{});
}

TEST(Serialize, OptionalRoundtrip) {
  expect_roundtrip(std::optional<int>{});
  expect_roundtrip(std::optional<int>{42});
  expect_roundtrip(std::optional<std::string>{"present"});
}

TEST(Serialize, ArrayRoundtrip) {
  expect_roundtrip(std::array<int, 4>{1, 2, 3, 4});
}

struct custom_meta {
  std::uint64_t timestamp = 0;
  std::string label;
  std::vector<double> scores;

  template <typename Archive>
  void serialize(Archive& ar) {
    ar(timestamp, label, scores);
  }

  bool operator==(const custom_meta&) const = default;
};

TEST(Serialize, CustomTypeWithMemberSerialize) {
  custom_meta m{123456, "purchase", {0.5, 0.75}};
  expect_roundtrip(m);
}

TEST(Serialize, HeterogeneousSequenceInOneBuffer) {
  // The YGM property the paper highlights: messages of heterogeneous types
  // interleave in one byte stream.
  ts::byte_buffer buf;
  ts::pack(buf, 42, std::string{"str"}, std::vector<int>{1, 2},
           custom_meta{9, "m", {1.0}});
  ts::buffer_reader rd(buf.view());
  int i = 0;
  std::string s;
  std::vector<int> v;
  custom_meta m;
  ts::unpack(rd, i, s, v, m);
  EXPECT_EQ(i, 42);
  EXPECT_EQ(s, "str");
  EXPECT_EQ(v, (std::vector<int>{1, 2}));
  EXPECT_EQ(m, (custom_meta{9, "m", {1.0}}));
  EXPECT_TRUE(rd.exhausted());
}

namespace {
struct empty_tag {
  friend bool operator==(const empty_tag&, const empty_tag&) = default;
};
}  // namespace

TEST(Serialize, EmptyTypesOccupyZeroBytes) {
  EXPECT_EQ(ts::packed_size(empty_tag{}), 0u);
}

TEST(Serialize, EmptyTypeInsideTupleDoesNotClobberNeighbors) {
  // Regression: libstdc++ tuples apply empty-base optimization, so an empty
  // element can share an address with another element.  Deserializing by
  // memcpy into the empty member used to overwrite a byte of its neighbor.
  ts::byte_buffer buf;
  const std::uint64_t key = 0, from = 2, deg = 1;
  ts::pack(buf, key, from, deg, empty_tag{});
  ts::buffer_reader rd(buf.view());
  std::tuple<std::uint64_t, std::uint64_t, std::uint64_t, empty_tag> args{};
  std::apply([&rd](auto&... unpacked) { ts::unpack(rd, unpacked...); }, args);
  EXPECT_EQ(std::get<0>(args), 0u);
  EXPECT_EQ(std::get<1>(args), 2u);
  EXPECT_EQ(std::get<2>(args), 1u);
  EXPECT_TRUE(rd.exhausted());
}

TEST(Serialize, EmptyTypeBetweenValuesRoundtrips) {
  ts::byte_buffer buf;
  ts::pack(buf, 7, empty_tag{}, std::string{"x"}, empty_tag{}, 9.5);
  ts::buffer_reader rd(buf.view());
  int a = 0;
  empty_tag t1, t2;
  std::string s;
  double d = 0;
  ts::unpack(rd, a, t1, s, t2, d);
  EXPECT_EQ(a, 7);
  EXPECT_EQ(s, "x");
  EXPECT_DOUBLE_EQ(d, 9.5);
}

TEST(Serialize, VariableLengthStringsNotPadded) {
  // Sec. 4.1.2: variable-length objects are sent without padding.
  const auto short_size = ts::packed_size(std::string{"ab"});
  const auto long_size = ts::packed_size(std::string(100, 'a'));
  EXPECT_LT(short_size, 8u);
  EXPECT_EQ(long_size - short_size, 98u);
}

TEST(Serialize, PackedSizeMatchesBuffer) {
  const std::tuple<int, std::string> value{3, "abc"};
  ts::byte_buffer buf;
  ts::pack(buf, value);
  EXPECT_EQ(buf.size(), ts::packed_size(value));
}

// --- varint ---------------------------------------------------------------------

TEST(Varint, SmallValuesOneByte) {
  ts::byte_buffer buf;
  ts::writer w(buf);
  w.write_varint(0);
  w.write_varint(127);
  EXPECT_EQ(buf.size(), 2u);
}

TEST(Varint, RoundtripBoundaries) {
  const std::uint64_t values[] = {0,   1,    127,  128,   16383, 16384,
                                  1u << 21, 1ull << 42, std::numeric_limits<std::uint64_t>::max()};
  ts::byte_buffer buf;
  ts::writer w(buf);
  for (auto v : values) w.write_varint(v);
  ts::buffer_reader rd(buf.view());
  ts::reader r(rd);
  for (auto v : values) EXPECT_EQ(r.read_varint(), v);
  EXPECT_TRUE(rd.exhausted());
}

TEST(Serialize, VectorLengthPrefixBeyondBufferThrows) {
  // A corrupted length prefix must be caught before any allocation, even
  // when n * sizeof(T) wraps around.
  ts::byte_buffer buf;
  ts::writer w(buf);
  w.write_varint(std::numeric_limits<std::uint64_t>::max());
  ts::buffer_reader rd(buf.view());
  std::vector<std::uint64_t> v;
  EXPECT_THROW(ts::unpack(rd, v), ts::deserialize_error);
}

TEST(Serialize, StringLengthPrefixBeyondBufferThrows) {
  ts::byte_buffer buf;
  ts::writer w(buf);
  w.write_varint(1000);  // promises 1000 bytes that never come
  ts::buffer_reader rd(buf.view());
  std::string s;
  EXPECT_THROW(ts::unpack(rd, s), ts::deserialize_error);
}

TEST(Serialize, ReusedDestinationsShrinkAndGrow) {
  // Deserializing into live destinations exercises both the shrink
  // (resize+memcpy) and grow (assign) read paths.
  ts::byte_buffer buf;
  ts::pack(buf, std::string(100, 'a'), std::string(3, 'b'), std::string(200, 'c'));
  ts::pack(buf, std::vector<std::uint32_t>(50, 5), std::vector<std::uint32_t>(2, 7),
           std::vector<std::uint32_t>(80, 9));
  ts::buffer_reader rd(buf.view());
  std::string s;
  ts::unpack(rd, s);
  EXPECT_EQ(s, std::string(100, 'a'));
  ts::unpack(rd, s);
  EXPECT_EQ(s, std::string(3, 'b'));
  ts::unpack(rd, s);
  EXPECT_EQ(s, std::string(200, 'c'));
  std::vector<std::uint32_t> v;
  ts::unpack(rd, v);
  EXPECT_EQ(v, std::vector<std::uint32_t>(50, 5));
  ts::unpack(rd, v);
  EXPECT_EQ(v, std::vector<std::uint32_t>(2, 7));
  ts::unpack(rd, v);
  EXPECT_EQ(v, std::vector<std::uint32_t>(80, 9));
  EXPECT_TRUE(rd.exhausted());
}

TEST(Varint, TruncatedThrows) {
  ts::byte_buffer buf;
  const std::uint8_t continuation = 0x80;  // promises another byte that never comes
  buf.append(&continuation, 1);
  ts::buffer_reader rd(buf.view());
  ts::reader r(rd);
  EXPECT_THROW((void)r.read_varint(), ts::deserialize_error);
}

// --- property-style random round trips --------------------------------------------

class RandomRoundtrip : public ::testing::TestWithParam<int> {};

TEST_P(RandomRoundtrip, RandomStructuredValues) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()));
  std::uniform_int_distribution<int> len(0, 64);
  std::uniform_int_distribution<int> chr('a', 'z');

  std::vector<std::pair<std::string, std::vector<std::uint32_t>>> value;
  const int entries = len(rng);
  for (int i = 0; i < entries; ++i) {
    std::string key;
    const int klen = len(rng);
    for (int j = 0; j < klen; ++j) key.push_back(static_cast<char>(chr(rng)));
    std::vector<std::uint32_t> nums(static_cast<std::size_t>(len(rng)));
    for (auto& n : nums) n = static_cast<std::uint32_t>(rng());
    value.emplace_back(std::move(key), std::move(nums));
  }
  expect_roundtrip(value);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomRoundtrip, ::testing::Range(0, 25));

// --- hashing ------------------------------------------------------------------------

TEST(Hash, Splitmix64Deterministic) {
  EXPECT_EQ(ts::splitmix64(42), ts::splitmix64(42));
  EXPECT_NE(ts::splitmix64(42), ts::splitmix64(43));
}

TEST(Hash, Splitmix64SpreadsLowBits) {
  // Consecutive inputs should land in different mod-k buckets reasonably often.
  int same_bucket = 0;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    if (ts::splitmix64(i) % 16 == ts::splitmix64(i + 1) % 16) ++same_bucket;
  }
  EXPECT_LT(same_bucket, 200);  // ~62 expected for uniform
}

TEST(Hash, Fnv1aStrings) {
  EXPECT_EQ(ts::fnv1a("abc"), ts::fnv1a("abc"));
  EXPECT_NE(ts::fnv1a("abc"), ts::fnv1a("abd"));
  EXPECT_NE(ts::fnv1a(""), ts::fnv1a("a"));
}

TEST(Hash, CombineOrderSensitive) {
  EXPECT_NE(ts::hash_combine(ts::splitmix64(1), 2),
            ts::hash_combine(ts::splitmix64(2), 1));
}
