#include "gen/web.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>

#include "serial/hash.hpp"

namespace tripoll::gen {

namespace {

[[nodiscard]] double to_unit(std::uint64_t s) noexcept {
  return static_cast<double>(s >> 11) * 0x1.0p-53;
}

// Hub domains carry recognizable names so survey outputs read like the
// paper's Fig. 8 discussion (amazon family, a competing bookseller, an
// edu/library community).
constexpr std::array<const char*, 12> kHubNames{
    "amazon.com",    "amazon.co.uk", "amazon.ca",     "audible.com",
    "abebooks.com",  "wikipedia.org", "archive.org",  "loc.gov",
    "harvard.edu",   "stanford.edu", "openlibrary.org", "worldcat.org"};

constexpr std::array<const char*, 4> kTlds{"com", "org", "net", "edu"};

}  // namespace

web_generator::web_generator(web_params p) : params_(p) {
  if (p.scale == 0 || p.scale > 34) {
    throw std::invalid_argument("web: scale must be in [1, 34]");
  }
  num_pages_ = std::uint64_t{1} << p.scale;
  if (p.num_domains > num_pages_) {
    throw std::invalid_argument("web: num_domains must be in [0, pages]");
  }
  // Auto domain count: enough pages per domain that intra-domain links can
  // close triangles rather than degenerate into self-loops.
  num_domains_ = p.num_domains != 0
                     ? p.num_domains
                     : static_cast<std::uint32_t>(
                           std::max<std::uint64_t>(16, num_pages_ / 32));
  if (p.num_hub_domains > num_domains_) {
    throw std::invalid_argument("web: more hub domains than domains");
  }
  const double total_p = p.p_intra_domain + p.p_hub + p.p_community;
  if (total_p > 1.0) {
    throw std::invalid_argument("web: link-mixture probabilities exceed 1");
  }

  // Power-law domain sizes over contiguous page ranges: weight of domain d
  // is (d+1)^-tau; every domain keeps at least one page.
  const std::uint32_t d_count = num_domains_;
  std::vector<double> weights(d_count);
  double total = 0.0;
  for (std::uint32_t d = 0; d < d_count; ++d) {
    weights[d] = std::pow(static_cast<double>(d + 1), -p.domain_size_tau);
    total += weights[d];
  }
  domain_offsets_.assign(d_count + 1, 0);
  const std::uint64_t spare = num_pages_ - d_count;  // after 1 page each
  double cumulative = 0.0;
  for (std::uint32_t d = 0; d < d_count; ++d) {
    cumulative += weights[d];
    const auto extra =
        static_cast<std::uint64_t>(cumulative / total * static_cast<double>(spare));
    domain_offsets_[d + 1] = (d + 1) + extra;
  }
  domain_offsets_[d_count] = num_pages_;
}

std::uint32_t web_generator::domain_of(graph::vertex_id page) const noexcept {
  const auto it =
      std::upper_bound(domain_offsets_.begin(), domain_offsets_.end(), page);
  return static_cast<std::uint32_t>(std::distance(domain_offsets_.begin(), it) - 1);
}

std::string web_generator::fqdn_of_domain(std::uint32_t domain) const {
  if (domain < params_.num_hub_domains && domain < kHubNames.size()) {
    return kHubNames[domain];
  }
  return "site" + std::to_string(domain) + "." + kTlds[domain % kTlds.size()];
}

graph::vertex_id web_generator::sample_page_in_domain(std::uint32_t domain,
                                                      std::uint64_t state) const noexcept {
  const std::uint64_t lo = domain_offsets_[domain];
  const std::uint64_t hi = domain_offsets_[domain + 1];
  const double u = to_unit(serial::splitmix64(state));
  return lo + static_cast<std::uint64_t>(
                  static_cast<double>(hi - lo) * std::pow(u, params_.page_skew));
}

web_edge web_generator::edge_at(std::uint64_t index) const noexcept {
  std::uint64_t s = serial::splitmix64(params_.seed ^ (index * 0x8CB92BA72F3D8DD7ULL));

  // Source page: skewed toward the big (low-index) domains.
  s = serial::splitmix64(s);
  const auto src = static_cast<graph::vertex_id>(
      static_cast<double>(num_pages_) * std::pow(to_unit(s), 1.5));
  const std::uint32_t src_domain = domain_of(src);

  s = serial::splitmix64(s);
  const double r = to_unit(s);
  s = serial::splitmix64(s);

  graph::vertex_id dst;
  if (r < params_.p_intra_domain) {
    dst = sample_page_in_domain(src_domain, s);
  } else if (r < params_.p_intra_domain + params_.p_hub) {
    // Hub-directed link: hubs chosen with a skew so the very top hubs
    // dominate, like amazon.com in the paper's analysis.
    s = serial::splitmix64(s);
    const auto hub = static_cast<std::uint32_t>(
        static_cast<double>(params_.num_hub_domains) * std::pow(to_unit(s), 2.0));
    dst = sample_page_in_domain(std::min(hub, params_.num_hub_domains - 1), s * 3 + 1);
  } else if (r < params_.p_intra_domain + params_.p_hub + params_.p_community) {
    // Topical community: another domain congruent mod num_communities.
    const std::uint32_t c = params_.num_communities;
    const std::uint32_t steps = 1 + static_cast<std::uint32_t>(serial::splitmix64(s) % 8);
    std::uint32_t peer = src_domain + steps * c;
    if (peer >= num_domains_) {
      peer = src_domain % c + (serial::splitmix64(s + 1) % 8) * c;
      if (peer >= num_domains_) peer = src_domain;
    }
    dst = sample_page_in_domain(peer, s * 5 + 2);
  } else {
    // Global random link, skewed like the source distribution.
    dst = static_cast<graph::vertex_id>(
        static_cast<double>(num_pages_) * std::pow(to_unit(serial::splitmix64(s)), 1.5));
  }

  return web_edge{src, dst};
}

}  // namespace tripoll::gen
