#include "gen/temporal.hpp"

#include <cmath>
#include <stdexcept>

#include "serial/hash.hpp"

namespace tripoll::gen {

namespace {

[[nodiscard]] double to_unit(std::uint64_t s) noexcept {
  return static_cast<double>(s >> 11) * 0x1.0p-53;
}

}  // namespace

temporal_generator::temporal_generator(temporal_params p) : params_(p) {
  if (p.scale == 0 || p.scale > 34) {
    throw std::invalid_argument("temporal: scale must be in [1, 34]");
  }
  if (p.bot_fraction < 0 || p.bot_fraction > 1) {
    throw std::invalid_argument("temporal: bot_fraction must be in [0, 1]");
  }
}

bool temporal_generator::is_bot(graph::vertex_id author) const noexcept {
  if (params_.bot_fraction <= 0.0) return false;
  // Bots are the arithmetic subsequence {0, m, 2m, ...}: deterministic,
  // O(1)-sampleable, and uniformly spread over the scrambled id space.
  const auto modulus =
      static_cast<graph::vertex_id>(1.0 / params_.bot_fraction + 0.5);
  return author % std::max<graph::vertex_id>(1, modulus) == 0;
}

temporal_edge temporal_generator::edge_at(std::uint64_t index) const noexcept {
  const std::uint64_t n = num_vertices();
  std::uint64_t s = serial::splitmix64(params_.seed ^ (index * 0x2545F4914F6CDD1DULL));

  // Heavy-tailed activity: author ~ floor(N * u^skew).
  s = serial::splitmix64(s);
  const auto u_id = static_cast<graph::vertex_id>(
      static_cast<double>(n) * std::pow(to_unit(s), params_.activity_skew));

  s = serial::splitmix64(s);
  graph::vertex_id v_id;
  if (to_unit(s) < params_.p_local) {
    // Reply within a neighborhood of ids (thread locality): authors who
    // interact once tend to share further contacts, seeding wedges.
    s = serial::splitmix64(s);
    const std::uint64_t offset = 1 + static_cast<std::uint64_t>(
        63.0 * std::pow(to_unit(s), 2.0));
    v_id = (u_id + offset) % n;
  } else {
    s = serial::splitmix64(s);
    v_id = static_cast<graph::vertex_id>(
        static_cast<double>(n) * std::pow(to_unit(s), params_.activity_skew));
  }

  // Coordination: a bot's interactions mostly target other bots, making the
  // bot subpopulation a dense, burst-synchronized subgraph.
  if (is_bot(u_id) && params_.bot_fraction > 0.0) {
    s = serial::splitmix64(s);
    if (to_unit(s) < 0.75) {
      const auto modulus = std::max<graph::vertex_id>(
          1, static_cast<graph::vertex_id>(1.0 / params_.bot_fraction + 0.5));
      const graph::vertex_id num_bots = (n + modulus - 1) / modulus;
      s = serial::splitmix64(s);
      v_id = (s % num_bots) * modulus;
    }
  }

  s = serial::splitmix64(s);
  const bool bot_pair = is_bot(u_id) && is_bot(v_id);
  std::uint64_t base;
  std::uint64_t jitter;
  if (bot_pair) {
    // Coordinated machine activity: bots operate in cohorts sharing a burst
    // window, so wedges -- and for same-cohort triangles, the closing edge
    // too -- land within seconds of each other.  This is the fast-closure
    // anomaly signal the paper's narrative anticipates (Sec. 5.7).
    const std::uint64_t cohort_u = serial::splitmix64(u_id ^ 0xC0407ull) % 8;
    const std::uint64_t cohort_v = serial::splitmix64(v_id ^ 0xC0407ull) % 8;
    const std::uint64_t cohort = std::min(cohort_u, cohort_v);
    base = params_.start_time +
           static_cast<std::uint64_t>(
               to_unit(serial::splitmix64((cohort + 1) * 0xB007ull)) * 0.9 *
               static_cast<double>(params_.span_seconds));
    jitter = static_cast<std::uint64_t>(to_unit(s) * 90.0);  // within seconds
  } else {
    // Growing network: the base timestamp advances linearly with the index;
    // a log-uniform human reply delay (seconds .. ~1 week) reorders locally.
    const double progress =
        static_cast<double>(index) / static_cast<double>(num_edges());
    base = params_.start_time +
           static_cast<std::uint64_t>(progress *
                                      static_cast<double>(params_.span_seconds));
    const double log_low = std::log(30.0);
    const double log_high = std::log(7.0 * 24 * 3600.0);
    jitter = static_cast<std::uint64_t>(
        std::exp(log_low + to_unit(s) * (log_high - log_low)));
  }

  return temporal_edge{std::min(u_id, v_id), std::max(u_id, v_id), base + jitter};
}

}  // namespace tripoll::gen
