#include "gen/presets.hpp"

#include "gen/distribute.hpp"

namespace tripoll::gen {

std::vector<dataset_spec> standard_suite(int scale_delta) {
  const auto shift = [scale_delta](std::uint32_t base) {
    const int s = static_cast<int>(base) + scale_delta;
    return static_cast<std::uint32_t>(s < 4 ? 4 : s);
  };

  std::vector<dataset_spec> suite;

  // Friendster-like: large social network with *mild* degree skew relative
  // to its size (real Friendster: dmax 5214 over 66M vertices).  Weak hubs
  // mean a rank's wedges rarely aggregate toward shared targets -- this is
  // the dataset where Push-Pull finds little to pull (paper Table 4:
  // volume ratio only ~1.3x and Push-Only wins on runtime).
  {
    dataset_spec d;
    d.name = "friendster-like";
    d.kind = dataset_kind::rmat;
    d.rmat = rmat_params{shift(17), 16, 0.38, 0.26, 0.26, 101, true};
    suite.push_back(d);
  }
  // Twitter-like: follower graph, strong skew (celebrity hubs).
  {
    dataset_spec d;
    d.name = "twitter-like";
    d.kind = dataset_kind::rmat;
    d.rmat = rmat_params{shift(16), 24, 0.52, 0.19, 0.19, 202, true};
    suite.push_back(d);
  }
  // uk-2007-05-like: page-level web crawl, domain-clustered with hubs.
  {
    dataset_spec d;
    d.name = "uk2007-like";
    d.kind = dataset_kind::web;
    d.web.scale = shift(16);
    d.web.edge_factor = 20;
    d.web.num_domains = 2048;
    d.web.num_communities = 32;
    d.web.num_hub_domains = 12;
    d.web.domain_size_tau = 1.5;
    d.web.p_intra_domain = 0.45;
    d.web.p_hub = 0.20;
    d.web.p_community = 0.20;
    d.web.page_skew = 2.0;
    d.web.seed = 303;
    suite.push_back(d);
  }
  // web-cc12-hostgraph-like: host-level graph, fewer vertices, extreme
  // hubs and very high triangle density; the extreme Push-Pull win case.
  {
    dataset_spec d;
    d.name = "webcc12-host-like";
    d.kind = dataset_kind::web;
    d.web.scale = shift(15);
    d.web.edge_factor = 40;
    d.web.num_domains = 512;
    d.web.num_communities = 16;
    d.web.num_hub_domains = 10;
    d.web.domain_size_tau = 1.9;
    d.web.p_intra_domain = 0.45;
    d.web.p_hub = 0.35;
    d.web.p_community = 0.15;
    d.web.page_skew = 3.0;
    d.web.seed = 404;
    suite.push_back(d);
  }
  return suite;
}

dataset_spec livejournal_like(int scale_delta) {
  dataset_spec d;
  d.name = "livejournal-like";
  d.kind = dataset_kind::rmat;
  const int s = 14 + scale_delta;
  d.rmat = rmat_params{static_cast<std::uint32_t>(s < 4 ? 4 : s), 14,
                       0.48, 0.21, 0.21, 505, true};
  return d;
}

namespace {

template <typename Builder>
void feed_edges(comm::communicator& c, Builder& builder, const dataset_spec& spec) {
  if (spec.kind == dataset_kind::rmat) {
    const rmat_generator gen(spec.rmat);
    for_rank_slice(c, gen.num_edges(), [&](std::uint64_t k) {
      const auto e = gen.edge_at(k);
      builder.add_edge(e.u, e.v);
    });
  } else {
    const web_generator gen(spec.web);
    for_rank_slice(c, gen.num_edges(), [&](std::uint64_t k) {
      const auto e = gen.edge_at(k);
      builder.add_edge(e.u, e.v);
    });
  }
}

}  // namespace

void build_dataset(comm::communicator& c, plain_graph& g, const dataset_spec& spec,
                   graph::ordering_policy ordering) {
  graph::graph_builder<graph::none, graph::none> builder(c, ordering);
  feed_edges(c, builder, spec);
  builder.build_into(g);
}

void build_temporal_graph(comm::communicator& c, temporal_graph& g,
                          const temporal_params& params,
                          graph::ordering_policy ordering) {
  // keep_least: duplicate contacts collapse to the chronologically-first
  // timestamp, the paper's Reddit multigraph reduction.
  graph::graph_builder<graph::none, std::uint64_t, graph::merge::keep_least> builder(
      c, ordering);
  const temporal_generator gen(params);
  for_rank_slice(c, gen.num_edges(), [&](std::uint64_t k) {
    const auto e = gen.edge_at(k);
    builder.add_edge(e.u, e.v, e.timestamp);
  });
  builder.build_into(g);
}

void build_web_graph(comm::communicator& c, web_graph& g, const web_params& params,
                     graph::ordering_policy ordering) {
  graph::graph_builder<std::string, graph::none> builder(c, ordering);
  const web_generator gen(params);
  for_rank_slice(c, gen.num_edges(), [&](std::uint64_t k) {
    const auto e = gen.edge_at(k);
    builder.add_edge(e.u, e.v);
  });
  for_rank_slice(c, gen.num_vertices(), [&](std::uint64_t page) {
    builder.add_vertex_meta(page, gen.vertex_meta_at(page));
  });
  builder.build_into(g);
}

std::vector<graph::edge> materialize_edges(comm::communicator& c,
                                           const dataset_spec& spec) {
  std::vector<graph::edge> local;
  if (spec.kind == dataset_kind::rmat) {
    const rmat_generator gen(spec.rmat);
    for_rank_slice(c, gen.num_edges(),
                   [&](std::uint64_t k) { local.push_back(gen.edge_at(k)); });
  } else {
    const web_generator gen(spec.web);
    for_rank_slice(c, gen.num_edges(), [&](std::uint64_t k) {
      const auto e = gen.edge_at(k);
      local.push_back(graph::edge{e.u, e.v});
    });
  }
  auto per_rank = c.all_gather(local);
  std::vector<graph::edge> all;
  for (auto& v : per_rank) all.insert(all.end(), v.begin(), v.end());
  return all;
}

}  // namespace tripoll::gen
