// rmat.hpp -- deterministic R-MAT (Chakrabarti et al.) edge generator.
//
// Used for the weak-scaling studies (paper Sec. 5.5 uses R-MAT up to scale
// 32; this reproduction uses smaller scales on a single node).  Edges are a
// pure function of (seed, index), so ranks generate disjoint slices of the
// edge list with no communication and runs are exactly reproducible.
#pragma once

#include <cstdint>

#include "graph/types.hpp"

namespace tripoll::gen {

struct rmat_params {
  std::uint32_t scale = 16;        ///< |V| = 2^scale
  std::uint32_t edge_factor = 16;  ///< generated (undirected) edges = ef * |V|
  double a = 0.57;                 ///< quadrant probabilities (Graph500 defaults)
  double b = 0.19;
  double c = 0.19;                 ///< d = 1 - a - b - c
  std::uint64_t seed = 42;
  bool scramble_ids = true;  ///< permute vertex ids to break degree locality
};

class rmat_generator {
 public:
  explicit rmat_generator(rmat_params p);

  [[nodiscard]] std::uint64_t num_vertices() const noexcept {
    return std::uint64_t{1} << params_.scale;
  }

  [[nodiscard]] std::uint64_t num_edges() const noexcept {
    return num_vertices() * params_.edge_factor;
  }

  /// The `index`-th edge (deterministic; may be a duplicate or self-loop,
  /// which graph construction removes, as with real R-MAT streams).
  [[nodiscard]] graph::edge edge_at(std::uint64_t index) const noexcept;

  [[nodiscard]] const rmat_params& params() const noexcept { return params_; }

 private:
  [[nodiscard]] graph::vertex_id scramble(graph::vertex_id v) const noexcept;

  rmat_params params_;
  std::uint64_t mask_;
};

}  // namespace tripoll::gen
