// presets.hpp -- dataset stand-ins for the paper's evaluation graphs.
//
// The paper evaluates on LiveJournal, Friendster, Twitter, uk-2007-05,
// web-cc12-hostgraph and WDC-2012 (Table 1).  Those range from 69M to 224B
// edges; this single-node reproduction uses topology-class-matched synthetic
// graphs (see DESIGN.md Sec. 2): R-MAT of varying skew for the social
// networks, the hub-heavy clustered web generator for the web graphs.
#pragma once

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "comm/communicator.hpp"
#include "gen/distribute.hpp"
#include "gen/rmat.hpp"
#include "gen/temporal.hpp"
#include "gen/web.hpp"
#include "graph/builder.hpp"
#include "graph/dodgr.hpp"
#include "graph/ordering.hpp"
#include "graph/types.hpp"

namespace tripoll::gen {

enum class dataset_kind { rmat, web };

/// A named stand-in graph.
struct dataset_spec {
  std::string name;        ///< paper dataset this stands in for
  dataset_kind kind = dataset_kind::rmat;
  rmat_params rmat{};
  web_params web{};
};

/// The four comparison-graph stand-ins (Friendster / Twitter / uk-2007-05 /
/// web-cc12-hostgraph), sized for a single node.  `scale_delta` shifts every
/// graph's log2 size (e.g. -2 for quick tests).
[[nodiscard]] std::vector<dataset_spec> standard_suite(int scale_delta = 0);

/// LiveJournal-like small social graph (Table 2's smallest row).
[[nodiscard]] dataset_spec livejournal_like(int scale_delta = 0);

/// Metadata-free graph types used by the counting benchmarks.
using plain_graph = graph::dodgr<graph::none, graph::none>;
using temporal_graph = graph::dodgr<graph::none, std::uint64_t>;
using web_graph = graph::dodgr<std::string, graph::none>;

/// Collective: generate and build a metadata-free stand-in graph.
void build_dataset(comm::communicator& c, plain_graph& g, const dataset_spec& spec,
                   graph::ordering_policy ordering = graph::ordering_policy::degree);

/// Collective: generate and build the Reddit-like temporal graph (edge
/// metadata = first-contact timestamp, the paper's multigraph reduction).
void build_temporal_graph(comm::communicator& c, temporal_graph& g,
                          const temporal_params& params,
                          graph::ordering_policy ordering = graph::ordering_policy::degree);

/// Collective: generate and build the WDC-like web graph (vertex metadata =
/// FQDN string).
void build_web_graph(comm::communicator& c, web_graph& g, const web_params& params,
                     graph::ordering_policy ordering = graph::ordering_policy::degree);

/// Collective: gather every (deduplicated) edge of the generated stream on
/// all ranks -- test support for cross-checking against the serial counter.
[[nodiscard]] std::vector<graph::edge> materialize_edges(comm::communicator& c,
                                                         const dataset_spec& spec);

/// Stream the deterministic edge list of one named ablation preset
/// ("rmat" | "temporal" | "web") to `fn(u, v)`, this rank's slice only.
/// Shared by the CLI's deterministic subcommands and the storage bench so
/// both always generate the same graphs the smoke tests diff.
template <typename Fn>
void for_preset_edges(comm::communicator& c, const std::string& which, int delta,
                      Fn&& fn) {
  if (which == "rmat") {
    const auto spec = livejournal_like(delta);
    const rmat_generator g(spec.rmat);
    for_rank_slice(c, g.num_edges(), [&](std::uint64_t k) {
      const auto e = g.edge_at(k);
      fn(e.u, e.v);
    });
  } else if (which == "temporal") {
    temporal_params params;
    params.scale = static_cast<std::uint32_t>(std::max(8, 13 + delta));
    const temporal_generator g(params);
    for_rank_slice(c, g.num_edges(), [&](std::uint64_t k) {
      const auto e = g.edge_at(k);
      fn(e.u, e.v);
    });
  } else if (which == "web") {
    const auto spec = standard_suite(delta)[3];  // webcc12-host-like
    const web_generator g(spec.web);
    for_rank_slice(c, g.num_edges(), [&](std::uint64_t k) {
      const auto e = g.edge_at(k);
      fn(e.u, e.v);
    });
  } else {
    throw std::invalid_argument("for_preset_edges: unknown preset '" + which + "'");
  }
}

}  // namespace tripoll::gen
