// distribute.hpp -- helpers for rank-sliced deterministic generation.
//
// Generators are pure functions of the item index, so each rank produces a
// contiguous slice of the stream with no communication (the communication
// happens when the builder shuffles edges to their owners).
#pragma once

#include <cstdint>
#include <utility>

#include "comm/communicator.hpp"

namespace tripoll::gen {

/// The [begin, end) item range rank `rank` of `size` owns out of `total`.
[[nodiscard]] constexpr std::pair<std::uint64_t, std::uint64_t> rank_slice(
    std::uint64_t total, int rank, int size) noexcept {
  const auto r = static_cast<std::uint64_t>(rank);
  const auto s = static_cast<std::uint64_t>(size);
  return {total * r / s, total * (r + 1) / s};
}

/// Apply `fn(index)` to this rank's slice of [0, total).
template <typename Fn>
void for_rank_slice(const comm::communicator& c, std::uint64_t total, Fn&& fn) {
  const auto [lo, hi] = rank_slice(total, c.rank(), c.size());
  for (std::uint64_t k = lo; k < hi; ++k) fn(k);
}

}  // namespace tripoll::gen
