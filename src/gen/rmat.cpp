#include "gen/rmat.hpp"

#include <stdexcept>

#include "serial/hash.hpp"

namespace tripoll::gen {

namespace {

/// Uniform double in [0, 1) from 53 high bits of a mixed state.
[[nodiscard]] double to_unit(std::uint64_t s) noexcept {
  return static_cast<double>(s >> 11) * 0x1.0p-53;
}

}  // namespace

rmat_generator::rmat_generator(rmat_params p) : params_(p) {
  if (p.scale == 0 || p.scale > 40) {
    throw std::invalid_argument("rmat: scale must be in [1, 40]");
  }
  if (p.a < 0 || p.b < 0 || p.c < 0 || p.a + p.b + p.c > 1.0) {
    throw std::invalid_argument("rmat: quadrant probabilities must be a valid simplex");
  }
  mask_ = num_vertices() - 1;
}

graph::vertex_id rmat_generator::scramble(graph::vertex_id v) const noexcept {
  if (!params_.scramble_ids) return v;
  // Bijective permutation on `scale` bits: odd-multiplier mixing and a
  // masked xorshift, both invertible modulo 2^scale.
  const std::uint32_t half = params_.scale / 2 + 1;
  v = (v * 0x9E3779B97F4A7C15ULL) & mask_;
  v ^= v >> half;
  v = (v * 0xC2B2AE3D27D4EB4FULL) & mask_;
  return v;
}

graph::edge rmat_generator::edge_at(std::uint64_t index) const noexcept {
  std::uint64_t state =
      serial::splitmix64(params_.seed ^ (index * 0xD1B54A32D192ED03ULL));
  graph::vertex_id u = 0;
  graph::vertex_id v = 0;
  const double ab = params_.a + params_.b;
  const double abc = ab + params_.c;
  for (std::uint32_t level = 0; level < params_.scale; ++level) {
    state = serial::splitmix64(state);
    const double r = to_unit(state);
    u <<= 1;
    v <<= 1;
    if (r < params_.a) {
      // top-left quadrant: both bits 0
    } else if (r < ab) {
      v |= 1;  // top-right
    } else if (r < abc) {
      u |= 1;  // bottom-left
    } else {
      u |= 1;  // bottom-right
      v |= 1;
    }
  }
  return graph::edge{scramble(u), scramble(v)};
}

}  // namespace tripoll::gen
