// temporal.hpp -- synthetic Reddit-like temporal interaction graph.
//
// Stand-in for the paper's 9.4B-edge Reddit comment graph (Sec. 5.2/5.7):
// authors are vertices, comments between authors are undirected edges with
// timestamps, and the multigraph reduces to the chronologically-first
// contact (the builder's merge::keep_least policy).  The generator models:
//   * a growing network (edge timestamps increase with edge index),
//   * heavy-tailed author activity (power-law endpoint sampling),
//   * local reply structure (a fraction of edges close near a hub author),
//   * a small bot-like subpopulation whose interactions cluster within
//     seconds-to-minutes, producing the fast-closure spike the paper's
//     anomaly narrative anticipates.
#pragma once

#include <cstdint>

#include "graph/types.hpp"

namespace tripoll::gen {

struct temporal_params {
  std::uint32_t scale = 14;        ///< authors = 2^scale
  std::uint32_t edge_factor = 24;  ///< generated comment edges = ef * authors
  double activity_skew = 2.5;      ///< endpoint ~ floor(N * u^skew)
  double p_local = 0.35;           ///< probability the reply stays in a neighborhood
  double bot_fraction = 0.03;      ///< fraction of authors acting at bot speed
  std::uint64_t start_time = 1'133'395'200;  ///< Dec 2005, seconds
  std::uint64_t span_seconds = 14ull * 365 * 24 * 3600;
  std::uint64_t seed = 1234;
};

struct temporal_edge {
  graph::vertex_id u = 0;
  graph::vertex_id v = 0;
  std::uint64_t timestamp = 0;  ///< seconds since epoch
};

class temporal_generator {
 public:
  explicit temporal_generator(temporal_params p);

  [[nodiscard]] std::uint64_t num_vertices() const noexcept {
    return std::uint64_t{1} << params_.scale;
  }
  [[nodiscard]] std::uint64_t num_edges() const noexcept {
    return num_vertices() * params_.edge_factor;
  }

  [[nodiscard]] temporal_edge edge_at(std::uint64_t index) const noexcept;

  [[nodiscard]] const temporal_params& params() const noexcept { return params_; }

  /// True when the author id belongs to the bot-like subpopulation.
  [[nodiscard]] bool is_bot(graph::vertex_id author) const noexcept;

 private:
  temporal_params params_;
};

}  // namespace tripoll::gen
