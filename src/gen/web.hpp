// web.hpp -- synthetic hyperlink graph with FQDN string metadata.
//
// Stand-in for the Web Data Commons 2012 page graph (paper Sec. 5.8) and
// the uk-2007-05 / web-cc12-hostgraph topologies: pages partition into
// domains with power-law sizes, domains group into topical communities,
// links are a mixture of intra-domain, intra-community, hub-directed and
// random, and each page carries its fully-qualified domain name as string
// vertex metadata (variable length, no padding -- the serialization test
// case the paper calls out).
//
// The hub structure (a few domains attracting links from everywhere) is
// what makes web graphs the extreme win case for the Push-Pull
// optimization: many local sources target the same high-degree vertices.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/types.hpp"

namespace tripoll::gen {

struct web_params {
  std::uint32_t scale = 15;        ///< pages = 2^scale
  std::uint32_t edge_factor = 24;  ///< links = ef * pages
  std::uint32_t num_domains = 0;   ///< 0 = auto: max(16, pages / 32)
  std::uint32_t num_communities = 32;
  std::uint32_t num_hub_domains = 12;
  double domain_size_tau = 1.6;  ///< domain sizes ~ (rank+1)^-tau
  double p_intra_domain = 0.40;
  double p_hub = 0.25;
  double p_community = 0.20;  ///< remainder: global random link
  /// Within-domain page popularity skew: link targets concentrate on each
  /// domain's front pages (u^skew sampling), giving web graphs the dense
  /// triangle cores real crawls show (WDC-2012: |T|/|E| ~ 43).
  double page_skew = 2.0;
  std::uint64_t seed = 99;
};

struct web_edge {
  graph::vertex_id u = 0;
  graph::vertex_id v = 0;
};

class web_generator {
 public:
  explicit web_generator(web_params p);

  [[nodiscard]] std::uint64_t num_vertices() const noexcept { return num_pages_; }
  [[nodiscard]] std::uint64_t num_edges() const noexcept {
    return num_pages_ * params_.edge_factor;
  }

  [[nodiscard]] web_edge edge_at(std::uint64_t index) const noexcept;

  /// Effective number of domains (resolves the num_domains = 0 auto value).
  [[nodiscard]] std::uint32_t num_domains() const noexcept { return num_domains_; }

  /// Domain index of a page.
  [[nodiscard]] std::uint32_t domain_of(graph::vertex_id page) const noexcept;

  /// FQDN string of a domain (hub domains get recognizable names so the
  /// Fig. 8 focus-domain analysis reads naturally).
  [[nodiscard]] std::string fqdn_of_domain(std::uint32_t domain) const;

  /// Vertex metadata for a page: the FQDN of its domain.
  [[nodiscard]] std::string vertex_meta_at(graph::vertex_id page) const {
    return fqdn_of_domain(domain_of(page));
  }

  [[nodiscard]] const web_params& params() const noexcept { return params_; }

 private:
  [[nodiscard]] graph::vertex_id sample_page_in_domain(std::uint32_t domain,
                                                       std::uint64_t state) const noexcept;

  web_params params_;
  std::uint64_t num_pages_;
  std::uint32_t num_domains_;
  std::vector<std::uint64_t> domain_offsets_;  ///< page range per domain
};

}  // namespace tripoll::gen
