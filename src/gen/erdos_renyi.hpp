// erdos_renyi.hpp -- deterministic G(n, M) uniform random edges.
//
// Used by correctness tests (ground-truth cross checks need unstructured
// graphs too) and as a low-clustering extreme in ablations.
#pragma once

#include <cstdint>

#include "graph/types.hpp"
#include "serial/hash.hpp"

namespace tripoll::gen {

class erdos_renyi_generator {
 public:
  erdos_renyi_generator(std::uint64_t num_vertices, std::uint64_t num_edges,
                        std::uint64_t seed = 7)
      : n_(num_vertices), m_(num_edges), seed_(seed) {}

  [[nodiscard]] std::uint64_t num_vertices() const noexcept { return n_; }
  [[nodiscard]] std::uint64_t num_edges() const noexcept { return m_; }

  [[nodiscard]] graph::edge edge_at(std::uint64_t index) const noexcept {
    const std::uint64_t h1 = serial::splitmix64(seed_ ^ (index * 0xA24BAED4963EE407ULL));
    const std::uint64_t h2 = serial::splitmix64(h1 + 0x9FB21C651E98DF25ULL);
    return graph::edge{h1 % n_, h2 % n_};
  }

 private:
  std::uint64_t n_;
  std::uint64_t m_;
  std::uint64_t seed_;
};

}  // namespace tripoll::gen
