#include "comm/socket_transport.hpp"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/uio.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <thread>

#include "comm/handler_registry.hpp"

namespace tripoll::comm {

namespace {

using clock_type = std::chrono::steady_clock;

[[nodiscard]] std::string errno_text(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

/// Gathered send: one sendmsg(MSG_NOSIGNAL) syscall for the whole iovec
/// array (writev semantics, minus writev's SIGPIPE), retrying on partial
/// writes.  Zero-length entries are allowed.  The array is consumed.
void send_all_iov(int fd, iovec* iov, std::size_t iovcnt) {
  while (iovcnt > 0 && iov[0].iov_len == 0) {
    ++iov;
    --iovcnt;
  }
  while (iovcnt > 0) {
    msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = iovcnt;
    const ssize_t sent = ::sendmsg(fd, &msg, MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(errno_text("socket_transport: sendmsg failed"));
    }
    std::size_t n = static_cast<std::size_t>(sent);
    while (iovcnt > 0 && n >= iov[0].iov_len) {
      n -= iov[0].iov_len;
      ++iov;
      --iovcnt;
    }
    if (iovcnt > 0) {
      iov[0].iov_base = static_cast<char*>(iov[0].iov_base) + n;
      iov[0].iov_len -= n;
    }
  }
}

/// iovec over a const buffer (sendmsg never mutates the data; the iovec
/// API's non-const base predates const-correctness).
[[nodiscard]] iovec make_iov(const void* data, std::size_t n) noexcept {
  return iovec{const_cast<void*>(data), n};
}

/// Send whatever the socket accepts without blocking; returns bytes written
/// (stops at EAGAIN), throws on hard errors.
std::size_t send_some_nonblocking(int fd, const std::byte* data, std::size_t n) {
  std::size_t done = 0;
  while (done < n) {
    const ssize_t sent =
        ::send(fd, data + done, n - done, MSG_NOSIGNAL | MSG_DONTWAIT);
    if (sent < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      throw std::runtime_error(errno_text("socket_transport: send failed"));
    }
    done += static_cast<std::size_t>(sent);
  }
  return done;
}

/// Read exactly `n` bytes; false on clean EOF, throws on error.
bool read_all(int fd, void* data, std::size_t n) {
  char* p = static_cast<char*>(data);
  while (n > 0) {
    const ssize_t got = ::recv(fd, p, n, 0);
    if (got < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(errno_text("socket_transport: recv failed"));
    }
    if (got == 0) return false;
    p += got;
    n -= static_cast<std::size_t>(got);
  }
  return true;
}

/// Wait until `fd` is readable or the deadline passes.
void wait_readable(int fd, clock_type::time_point deadline, const char* what) {
  for (;;) {
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - clock_type::now());
    if (left.count() <= 0) {
      throw std::runtime_error(std::string("socket_transport: timed out ") + what);
    }
    pollfd pfd{fd, POLLIN, 0};
    const int n = ::poll(&pfd, 1, static_cast<int>(left.count()));
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(errno_text("socket_transport: poll failed"));
    }
    if (n > 0) return;
  }
}

[[nodiscard]] std::string unix_path(const std::string& dir, int rank) {
  return dir + "/rank-" + std::to_string(rank) + ".sock";
}

void split_host_port(const std::string& endpoint, std::string& host, std::string& port) {
  const auto colon = endpoint.rfind(':');
  if (colon == std::string::npos || colon + 1 >= endpoint.size()) {
    throw std::invalid_argument("socket_transport: endpoint '" + endpoint +
                                "' is not host:port");
  }
  host = endpoint.substr(0, colon);
  port = endpoint.substr(colon + 1);
}

void set_nodelay(int fd) {
  int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

constexpr std::size_t kMaxFrameBody = std::size_t{1} << 30;  // corruption guard

/// Monotone CAS-max (the done/release generation counters only move up).
void raise_to(std::atomic<std::uint64_t>& counter, std::uint64_t value) noexcept {
  std::uint64_t cur = counter.load(std::memory_order_seq_cst);
  while (cur < value &&
         !counter.compare_exchange_weak(cur, value, std::memory_order_seq_cst)) {
  }
}

}  // namespace

socket_options socket_options::from_env() {
  socket_options o;
  if (const char* s = std::getenv("TRIPOLL_RANK")) o.rank = std::atoi(s);
  if (const char* s = std::getenv("TRIPOLL_NRANKS")) o.nranks = std::atoi(s);
  if (const char* s = std::getenv("TRIPOLL_SOCKET_DIR")) o.socket_dir = s;
  if (const char* s = std::getenv("TRIPOLL_HOSTS")) {
    std::string list = s;
    std::size_t start = 0;
    while (start <= list.size()) {
      const auto comma = list.find(',', start);
      const auto end = comma == std::string::npos ? list.size() : comma;
      if (end > start) o.hosts.push_back(list.substr(start, end - start));
      if (comma == std::string::npos) break;
      start = comma + 1;
    }
  }
  return o;
}

socket_transport::socket_transport(const socket_options& opts, config cfg)
    : transport(opts.nranks, cfg), rank_(opts.rank) {
  if (rank_ < 0 || rank_ >= nranks_) {
    throw std::invalid_argument("socket_transport: rank out of range (set "
                                "TRIPOLL_RANK / TRIPOLL_NRANKS?)");
  }
  if (opts.hosts.empty() && opts.socket_dir.empty()) {
    throw std::invalid_argument("socket_transport: no rendezvous configured (set "
                                "TRIPOLL_SOCKET_DIR or TRIPOLL_HOSTS)");
  }
  if (!opts.hosts.empty() && opts.hosts.size() != static_cast<std::size_t>(nranks_)) {
    throw std::invalid_argument("socket_transport: TRIPOLL_HOSTS must list one "
                                "host:port per rank");
  }

  peers_.resize(static_cast<std::size_t>(nranks_));
  for (auto& p : peers_) p = std::make_unique<peer>();
  if (rank_ == 0) coord_.reports.resize(static_cast<std::size_t>(nranks_));

  if (::pipe(wake_pipe_) != 0) {
    throw std::runtime_error(errno_text("socket_transport: pipe failed"));
  }

  try {
    bind_and_listen(opts);
    connect_mesh(opts);
  } catch (...) {
    for (auto& p : peers_) {
      if (p->fd >= 0) ::close(p->fd);
    }
    if (listen_fd_ >= 0) ::close(listen_fd_);
    if (!listen_path_.empty()) ::unlink(listen_path_.c_str());
    ::close(wake_pipe_[0]);
    ::close(wake_pipe_[1]);
    throw;
  }

  receiver_ = std::thread([this] { receive_loop(); });
}

socket_transport::~socket_transport() {
  // Tell every peer this is a clean teardown before the connection EOFs.
  for (int r = 0; r < nranks_; ++r) {
    if (r == rank_) continue;
    auto& p = *peers_[static_cast<std::size_t>(r)];
    if (p.fd < 0 || p.dead.load(std::memory_order_acquire)) continue;
    try {
      send_frame(r, frame_type::fin, nullptr, 0);
    } catch (...) {
      // peer already gone; EOF handling below is moot for it
    }
  }
  shutting_down_.store(true, std::memory_order_release);
  const char wake = 'w';
  (void)!::write(wake_pipe_[1], &wake, 1);
  // Unblock a receiver parked in a blocking mid-frame read (SHUT_WR was
  // already implied by fin; SHUT_RD abandons whatever is still queued).
  for (auto& p : peers_) {
    if (p->fd >= 0) ::shutdown(p->fd, SHUT_RDWR);
  }
  if (receiver_.joinable()) receiver_.join();
  for (auto& p : peers_) {
    if (p->fd >= 0) ::close(p->fd);
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (!listen_path_.empty()) ::unlink(listen_path_.c_str());
  ::close(wake_pipe_[0]);
  ::close(wake_pipe_[1]);
}

// --- rendezvous -------------------------------------------------------------

void socket_transport::bind_and_listen(const socket_options& opts) {
  if (opts.hosts.empty()) {
    // Unix-domain mode.
    ::mkdir(opts.socket_dir.c_str(), 0777);  // best-effort; may pre-exist
    listen_path_ = unix_path(opts.socket_dir, rank_);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (listen_path_.size() >= sizeof(addr.sun_path)) {
      throw std::invalid_argument("socket_transport: socket path too long: " +
                                  listen_path_);
    }
    std::strncpy(addr.sun_path, listen_path_.c_str(), sizeof(addr.sun_path) - 1);
    ::unlink(listen_path_.c_str());
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) throw std::runtime_error(errno_text("socket(AF_UNIX)"));
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      throw std::runtime_error(errno_text(("bind " + listen_path_).c_str()));
    }
  } else {
    // TCP mode: bind the port of our own endpoint on all interfaces.
    std::string host, port;
    split_host_port(opts.hosts[static_cast<std::size_t>(rank_)], host, port);
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) throw std::runtime_error(errno_text("socket(AF_INET)"));
    int one = 1;
    (void)::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_ANY);
    addr.sin_port = htons(static_cast<std::uint16_t>(std::atoi(port.c_str())));
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      throw std::runtime_error(errno_text(("bind :" + port).c_str()));
    }
  }
  if (::listen(listen_fd_, nranks_ > 8 ? nranks_ : 8) != 0) {
    throw std::runtime_error(errno_text("listen"));
  }
}

void socket_transport::send_hello(int fd) const {
  const auto& table = detail::thunk_table::instance();
  std::uint64_t words[3] = {static_cast<std::uint64_t>(rank_),
                            static_cast<std::uint64_t>(table.published()),
                            table.fingerprint()};
  std::byte body[3 * 8];
  for (int i = 0; i < 3; ++i) serial::store_u64_le(body + 8 * i, words[i]);
  std::byte hdr[serial::frame_header::kWireSize];
  serial::frame_header{sizeof(body), static_cast<std::uint8_t>(frame_type::hello)}
      .encode(hdr);
  iovec iov[2] = {make_iov(hdr, sizeof(hdr)), make_iov(body, sizeof(body))};
  send_all_iov(fd, iov, 2);
}

int socket_transport::read_hello(int fd, double deadline_seconds) const {
  const auto deadline =
      clock_type::now() + std::chrono::duration_cast<clock_type::duration>(
                              std::chrono::duration<double>(deadline_seconds));
  wait_readable(fd, deadline, "waiting for HELLO");
  std::byte hdr[serial::frame_header::kWireSize];
  if (!read_all(fd, hdr, sizeof(hdr))) {
    throw std::runtime_error("socket_transport: peer closed during handshake");
  }
  const auto h = serial::frame_header::decode(hdr);
  if (h.type != static_cast<std::uint8_t>(frame_type::hello) || h.body_len != 3 * 8) {
    throw std::runtime_error("socket_transport: malformed HELLO frame");
  }
  std::byte body[3 * 8];
  if (!read_all(fd, body, sizeof(body))) {
    throw std::runtime_error("socket_transport: peer closed during handshake");
  }
  const auto peer_rank = static_cast<int>(serial::load_u64_le(body));
  const auto peer_count = serial::load_u64_le(body + 8);
  const auto peer_fp = serial::load_u64_le(body + 16);
  const auto& table = detail::thunk_table::instance();
  if (peer_count != table.published() || peer_fp != table.fingerprint()) {
    throw std::runtime_error(
        "socket_transport: RPC handler registry mismatch with rank " +
        std::to_string(peer_rank) +
        " (all ranks must run the same binary; handler ids are assigned in "
        "static-init order)");
  }
  if (peer_rank < 0 || peer_rank >= nranks_) {
    throw std::runtime_error("socket_transport: HELLO from out-of-range rank");
  }
  return peer_rank;
}

void socket_transport::connect_mesh(const socket_options& opts) {
  const auto deadline =
      clock_type::now() + std::chrono::duration_cast<clock_type::duration>(
                              std::chrono::duration<double>(opts.connect_timeout_seconds));

  // Connect to every lower rank (they bound their endpoint before connecting
  // anywhere themselves, so retrying until the deadline always converges).
  for (int r = 0; r < rank_; ++r) {
    int fd = -1;
    for (;;) {
      if (opts.hosts.empty()) {
        fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd < 0) throw std::runtime_error(errno_text("socket(AF_UNIX)"));
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        const std::string path = unix_path(opts.socket_dir, r);
        std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
        if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) break;
      } else {
        std::string host, port;
        split_host_port(opts.hosts[static_cast<std::size_t>(r)], host, port);
        addrinfo hints{};
        hints.ai_family = AF_INET;
        hints.ai_socktype = SOCK_STREAM;
        addrinfo* res = nullptr;
        if (::getaddrinfo(host.c_str(), port.c_str(), &hints, &res) != 0 || !res) {
          throw std::runtime_error("socket_transport: cannot resolve " + host);
        }
        fd = ::socket(res->ai_family, res->ai_socktype, res->ai_protocol);
        const bool ok = fd >= 0 && ::connect(fd, res->ai_addr, res->ai_addrlen) == 0;
        ::freeaddrinfo(res);
        if (fd < 0) throw std::runtime_error(errno_text("socket(AF_INET)"));
        if (ok) {
          set_nodelay(fd);
          break;
        }
      }
      ::close(fd);
      if (clock_type::now() >= deadline) {
        throw std::runtime_error("socket_transport: rank " + std::to_string(rank_) +
                                 " timed out connecting to rank " + std::to_string(r));
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    send_hello(fd);
    const int who = read_hello(fd, opts.connect_timeout_seconds);
    if (who != r) {
      ::close(fd);
      throw std::runtime_error("socket_transport: connected endpoint claims rank " +
                               std::to_string(who) + ", expected " + std::to_string(r));
    }
    peers_[static_cast<std::size_t>(r)]->fd = fd;
  }

  // Accept one connection from every higher rank (any arrival order).
  for (int pending = nranks_ - 1 - rank_; pending > 0; --pending) {
    wait_readable(listen_fd_, deadline, "waiting for higher ranks to connect");
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) throw std::runtime_error(errno_text("accept"));
    if (!opts.hosts.empty()) set_nodelay(fd);
    const int who = read_hello(fd, opts.connect_timeout_seconds);
    auto& p = *peers_[static_cast<std::size_t>(who)];
    if (who <= rank_ || p.fd >= 0) {
      ::close(fd);
      throw std::runtime_error("socket_transport: unexpected connection from rank " +
                               std::to_string(who));
    }
    send_hello(fd);
    p.fd = fd;
  }
}

// --- framing ----------------------------------------------------------------

std::vector<std::byte> socket_transport::take_pending_locked(peer& p) {
  std::vector<std::byte> queued;
  if (!p.has_pending.load(std::memory_order_acquire)) return queued;
  const std::lock_guard lock(p.queue_mutex);
  queued.swap(p.pending_out);
  p.has_pending.store(false, std::memory_order_release);
  return queued;
}

void socket_transport::try_flush_pending(peer& p) noexcept {
  if (!p.has_pending.load(std::memory_order_acquire)) return;
  if (p.fd < 0 || p.dead.load(std::memory_order_acquire)) return;
  // try_lock: if the main thread holds the write mutex (possibly blocked in
  // a long DATA send) it will drain the queue itself before its frame.
  if (!p.write_mutex.try_lock()) return;
  const std::lock_guard write_lock(p.write_mutex, std::adopt_lock);
  std::vector<std::byte> queued;
  {
    const std::lock_guard lock(p.queue_mutex);
    queued.swap(p.pending_out);
    p.has_pending.store(false, std::memory_order_release);
  }
  if (queued.empty()) return;
  std::size_t done = 0;
  try {
    done = send_some_nonblocking(p.fd, queued.data(), queued.size());
  } catch (...) {
    abort_run(std::current_exception());
    return;
  }
  if (done < queued.size()) {
    const std::lock_guard lock(p.queue_mutex);
    // Unsent remainder goes back to the FRONT: bytes already queued by the
    // receiver meanwhile must stay after it to keep the frame stream intact.
    p.pending_out.insert(p.pending_out.begin(), queued.begin() + static_cast<std::ptrdiff_t>(done),
                         queued.end());
    p.has_pending.store(true, std::memory_order_release);
  }
}

void socket_transport::wake_receiver() noexcept {
  const char wake = 'w';
  (void)!::write(wake_pipe_[1], &wake, 1);
}

void socket_transport::send_frame(int dest, frame_type type, const std::byte* body,
                                  std::size_t n) {
  auto& p = *peers_[static_cast<std::size_t>(dest)];
  if (p.fd < 0 || p.dead.load(std::memory_order_acquire)) {
    throw std::runtime_error("socket_transport: connection to rank " +
                             std::to_string(dest) + " is down");
  }
  std::byte hdr[serial::frame_header::kWireSize];
  serial::frame_header{static_cast<std::uint32_t>(n), static_cast<std::uint8_t>(type)}
      .encode(hdr);
  const std::lock_guard lock(p.write_mutex);
  // One gathered syscall for (queued control bytes, header, body) -- the
  // frame stream stays intact and the kernel sees one contiguous write.
  const auto queued = take_pending_locked(p);
  iovec iov[3] = {make_iov(queued.data(), queued.size()), make_iov(hdr, sizeof(hdr)),
                  make_iov(body, n)};
  send_all_iov(p.fd, iov, 3);
}

void socket_transport::post_frame(int dest, frame_type type, const std::byte* body,
                                  std::size_t n) noexcept {
  auto& p = *peers_[static_cast<std::size_t>(dest)];
  if (p.fd < 0 || p.dead.load(std::memory_order_acquire)) {
    if (type == frame_type::abort_run_ || type == frame_type::fin) return;  // best-effort
    // A dead control channel means the run is over; propagate as an abort
    // (idempotent) rather than unwinding the caller.
    abort_run(std::make_exception_ptr(std::runtime_error(
        "socket_transport: lost control connection to rank " + std::to_string(dest))));
    return;
  }
  std::byte hdr[serial::frame_header::kWireSize];
  serial::frame_header{static_cast<std::uint32_t>(n), static_cast<std::uint8_t>(type)}
      .encode(hdr);
  {
    const std::lock_guard lock(p.queue_mutex);
    p.pending_out.insert(p.pending_out.end(), hdr, hdr + sizeof(hdr));
    if (n > 0) p.pending_out.insert(p.pending_out.end(), body, body + n);
    p.has_pending.store(true, std::memory_order_release);
  }
  try_flush_pending(p);
  if (p.has_pending.load(std::memory_order_acquire)) {
    // Could not drain now (main thread holds the fd or the socket is
    // full): make sure the receiver's poll loop watches for POLLOUT.
    wake_receiver();
  }
}

void socket_transport::post_control_u64(int dest, frame_type type,
                                        const std::uint64_t* words,
                                        std::size_t n_words) noexcept {
  std::byte body[8 * 8];  // largest control frame: 6 words
  for (std::size_t i = 0; i < n_words; ++i) serial::store_u64_le(body + 8 * i, words[i]);
  post_frame(dest, type, body, n_words * 8);
}

// --- data plane --------------------------------------------------------------

void socket_transport::deliver(int src, int dst, serial::byte_buffer payload,
                               std::uint64_t n_messages) {
  auto& c = counters_;
  if (src == dst) {
    c.local_bytes.fetch_add(payload.size(), std::memory_order_relaxed);
  } else {
    c.remote_bytes.fetch_add(payload.size(), std::memory_order_relaxed);
  }
  c.buffers_sent.fetch_add(1, std::memory_order_relaxed);
  c.messages_sent.fetch_add(n_messages, std::memory_order_relaxed);

  // Count the send before it can possibly be acknowledged anywhere; the
  // termination detector compares cumulative sends against processes.
  sent_total_.fetch_add(1, std::memory_order_seq_cst);

  if (dst == rank_) {
    inbox_.push(mailbox::envelope{std::move(payload), src});
    return;
  }

  auto& p = *peers_[static_cast<std::size_t>(dst)];
  if (p.fd < 0 || p.dead.load(std::memory_order_acquire)) {
    throw std::runtime_error("socket_transport: connection to rank " +
                             std::to_string(dst) + " is down");
  }
  if (8 + payload.size() > kMaxFrameBody) {
    // Fail loudly sender-side instead of silently truncating the u32 frame
    // length (or tripping the receiver's corruption guard).
    throw std::length_error(
        "socket_transport: single RPC payload of " + std::to_string(payload.size()) +
        " bytes exceeds the 1 GiB frame limit; split the message");
  }
  std::byte hdr[serial::frame_header::kWireSize];
  serial::frame_header{static_cast<std::uint32_t>(8 + payload.size()),
                       static_cast<std::uint8_t>(frame_type::data)}
      .encode(hdr);
  std::byte prefix[8];
  serial::store_u64_le(prefix, n_messages);
  const std::lock_guard lock(p.write_mutex);
  // Single gathered syscall for (queued control bytes, header, message
  // count, payload) instead of 3 sequential send_all calls: one kernel
  // crossing per frame and no small-segment dribble ahead of the payload.
  const auto queued = take_pending_locked(p);
  iovec iov[4] = {make_iov(queued.data(), queued.size()), make_iov(hdr, sizeof(hdr)),
                  make_iov(prefix, sizeof(prefix)),
                  make_iov(payload.data(), payload.size())};
  send_all_iov(p.fd, iov, 4);
}

// --- termination detection ----------------------------------------------------

socket_transport::report socket_transport::snapshot_idle_state() {
  const std::lock_guard lock(idle_mutex_);
  return report{announced_gen_, idle_seq_, announced_sent_, announced_recv_, idle_};
}

void socket_transport::announce_idle(int /*rank*/, std::uint64_t generation) {
  report rep;
  {
    const std::lock_guard lock(idle_mutex_);
    announced_gen_ = generation;
    announced_sent_ = sent_total_.load(std::memory_order_seq_cst);
    announced_recv_ = recv_total_.load(std::memory_order_seq_cst);
    ++idle_seq_;
    idle_ = true;
    rep = report{announced_gen_, idle_seq_, announced_sent_, announced_recv_, true};
  }
  if (rank_ == 0) {
    coordinator_note_idle(0, rep);
  } else {
    const std::uint64_t words[4] = {rep.gen, rep.seq, rep.sent, rep.recv};
    post_control_u64(0, frame_type::idle, words, 4);
  }
}

void socket_transport::retract_idle(int /*rank*/) {
  const std::lock_guard lock(idle_mutex_);
  idle_ = false;
}

bool socket_transport::poll_barrier(int /*rank*/, std::uint64_t generation) {
  return done_generation_.load(std::memory_order_acquire) >= generation;
}

void socket_transport::handle_probe(std::uint64_t epoch) {
  const report rep = snapshot_idle_state();
  const std::uint64_t words[6] = {epoch, rep.gen, rep.seq, rep.sent, rep.recv,
                                  rep.idle ? 1u : 0u};
  post_control_u64(0, frame_type::probe_reply, words, 6);
}

void socket_transport::coordinator_note_idle(int from, const report& rep) {
  const std::lock_guard lock(coord_.mutex);
  coord_.reports[static_cast<std::size_t>(from)] = rep;
  coordinator_maybe_start_wave_locked();
}

void socket_transport::coordinator_maybe_start_wave_locked() {
  if (coord_.wave_epoch != 0 || aborted()) return;
  const std::uint64_t gen = done_generation_.load(std::memory_order_acquire) + 1;
  for (const auto& rep : coord_.reports) {
    if (!rep.idle || rep.gen != gen) return;
  }
  // Every rank has an idle report for this generation: run a probe wave.
  // The replies must show nobody moved since reporting AND global sent ==
  // received; announce-then-probe are the two sequential waves that make
  // Mattern-style double counting sound (an in-flight message would leave
  // the sums unequal or force its receiver to move, failing the wave).
  coord_.wave_epoch = ++coord_.epoch_counter;
  coord_.wave_snapshot = coord_.reports;
  coord_.wave_pending = nranks_;
  coord_.wave_failed = false;
  const std::uint64_t epoch = coord_.wave_epoch;
  // Rank 0 replies to itself inline (this may already finish a 1-rank wave).
  coordinator_probe_reply_locked(0, epoch, snapshot_idle_state());
  if (coord_.wave_epoch != epoch) return;  // wave completed synchronously
  for (int r = 1; r < nranks_; ++r) {
    const std::uint64_t words[1] = {epoch};
    post_control_u64(r, frame_type::probe, words, 1);
  }
}

void socket_transport::coordinator_probe_reply(int from, std::uint64_t epoch,
                                               const report& rep) {
  const std::lock_guard lock(coord_.mutex);
  coordinator_probe_reply_locked(from, epoch, rep);
}

void socket_transport::coordinator_probe_reply_locked(int from, std::uint64_t epoch,
                                                      const report& rep) {
  if (epoch != coord_.wave_epoch) return;  // stale wave
  const report& snap = coord_.wave_snapshot[static_cast<std::size_t>(from)];
  if (!(rep.idle && rep.gen == snap.gen && rep.seq == snap.seq &&
        rep.sent == snap.sent && rep.recv == snap.recv)) {
    coord_.wave_failed = true;
  }
  // A probe reply is a fresher consistent sample than the stored report
  // (per-connection FIFO keeps it ordered after the announce it reflects),
  // so fold it in for the retry wave.
  coord_.reports[static_cast<std::size_t>(from)] = rep;
  if (--coord_.wave_pending > 0) return;

  coord_.wave_epoch = 0;
  if (!coord_.wave_failed) {
    std::uint64_t sent = 0, received = 0;
    for (const auto& s : coord_.wave_snapshot) {
      sent += s.sent;
      received += s.recv;
    }
    if (sent == received) {
      publish_done(coord_.wave_snapshot[0].gen);
      return;
    }
  }
  // Messages were in flight (or a rank moved).  Retry ONLY if some report
  // refreshed during the wave -- with unchanged reports a retry would
  // observe the identical state and spin (for nranks==1 it would recurse
  // right here, since the self-reply completes waves inline).  Detection
  // re-arms when the rank that owes progress processes its in-flight
  // message and announces again (its inbox is non-empty, so its barrier
  // loop is guaranteed to retract, drain and re-announce).
  if (coord_.reports != coord_.wave_snapshot) {
    coordinator_maybe_start_wave_locked();
  }
}

void socket_transport::publish_done(std::uint64_t gen) {
  raise_to(done_generation_, gen);
  for (int r = 1; r < nranks_; ++r) {
    const std::uint64_t words[1] = {gen};
    post_control_u64(r, frame_type::done, words, 1);
  }
}

void socket_transport::exit_rendezvous(int /*rank*/) {
  throw_if_aborted();
  const std::uint64_t gen = ++exit_generation_;
  if (rank_ == 0) {
    coordinator_note_exit(gen);
  } else {
    const std::uint64_t words[1] = {gen};
    post_control_u64(0, frame_type::exit_barrier, words, 1);
  }
  // Wait for the coordinator's RELEASE: nobody proceeds (and can deliver
  // next-phase messages into a peer's still-active barrier drain loop)
  // until every rank has left its poll loop.  Arriving data stays queued in
  // the mailbox for the next drain, exactly like the inproc rendezvous.
  // The receiver notifies gen_cv_ when RELEASE lands (or the run aborts);
  // the timeout is belt-and-braces against a lost notification.  The
  // watchdog mirrors the barrier poll loop's: a RELEASE that never comes
  // (coordinator died silently, or ranks disagree on the number of
  // collectives) must abort loudly, not hang the job forever.
  std::unique_lock lock(gen_mutex_);
  const auto wait_start = clock_type::now();
  const double timeout = cfg().barrier_timeout_seconds;
  while (release_generation_.load(std::memory_order_acquire) < gen) {
    throw_if_aborted();
    gen_cv_.wait_for(lock, std::chrono::milliseconds(1), [&] {
      return release_generation_.load(std::memory_order_acquire) >= gen || aborted();
    });
    if (timeout > 0.0 &&
        release_generation_.load(std::memory_order_acquire) < gen && !aborted()) {
      const double waited =
          std::chrono::duration<double>(clock_type::now() - wait_start).count();
      if (waited > timeout) {
        lock.unlock();
        abort_run(std::make_exception_ptr(std::runtime_error(
            "socket_transport: exit-rendezvous watchdog: rank " +
            std::to_string(rank_) + " got no RELEASE for barrier generation " +
            std::to_string(gen) + " after " + std::to_string(waited) +
            "s -- mismatched collectives, or the coordinator exited")));
        throw_if_aborted();
        return;  // unreachable: abort_run recorded an error to throw
      }
    }
  }
}

void socket_transport::coordinator_note_exit(std::uint64_t gen) {
  const std::lock_guard lock(coord_.mutex);
  // Ranks are released from exit generation g before any can send EXIT for
  // g+1, so a simple per-generation count suffices.
  (void)gen;
  if (++coord_.exit_count < nranks_) return;
  coord_.exit_count = 0;
  const std::uint64_t released = release_generation_.load(std::memory_order_acquire) + 1;
  // Queue the peers' RELEASE frames BEFORE unblocking this rank's own
  // exit_rendezvous.  The moment release_generation_ rises, the main
  // thread may return from the final barrier, finish the run and enter
  // the destructor: its FIN sends flush whatever is queued *at that
  // point* and then shut the sockets down, so a RELEASE queued by this
  // (receiver) thread after that instant would be silently discarded --
  // stranding every other rank in its final rendezvous.  Queue-first
  // closes the window: once the main thread can observe the release, the
  // frames are already in the per-peer queues the FIN path drains.
  for (int r = 1; r < nranks_; ++r) {
    const std::uint64_t words[1] = {released};
    post_control_u64(r, frame_type::release, words, 1);
  }
  raise_to(release_generation_, released);
  {
    const std::lock_guard wake_lock(gen_mutex_);
  }
  gen_cv_.notify_all();
}

// --- failure propagation ------------------------------------------------------

void socket_transport::abort_run(std::exception_ptr error) noexcept {
  const bool first = record_abort(error);
  // Unblock exit_rendezvous waiters regardless of who recorded first.
  {
    const std::lock_guard lock(gen_mutex_);
  }
  gen_cv_.notify_all();
  if (!first) return;
  std::string what = "unknown error";
  try {
    std::rethrow_exception(error);
  } catch (const std::exception& e) {
    what = e.what();
  } catch (...) {
  }
  for (int r = 0; r < nranks_; ++r) {
    if (r == rank_) continue;
    // post_frame never blocks (abort can run on the receiver thread) and
    // drops the frame for peers that are already unreachable.
    post_frame(r, frame_type::abort_run_,
               reinterpret_cast<const std::byte*>(what.data()), what.size());
  }
}

// --- receiver thread ----------------------------------------------------------

void socket_transport::connection_lost(int src) {
  auto& p = *peers_[static_cast<std::size_t>(src)];
  p.dead.store(true, std::memory_order_release);
  if (p.fin_received.load(std::memory_order_acquire) ||
      shutting_down_.load(std::memory_order_acquire)) {
    return;  // clean teardown
  }
  abort_run(std::make_exception_ptr(std::runtime_error(
      "socket_transport: rank " + std::to_string(src) +
      " disconnected unexpectedly (crashed?)")));
}

bool socket_transport::read_frame(int src) {
  auto& p = *peers_[static_cast<std::size_t>(src)];
  std::byte hdr[serial::frame_header::kWireSize];
  if (!read_all(p.fd, hdr, sizeof(hdr))) return false;
  const auto h = serial::frame_header::decode(hdr);
  if (h.body_len > kMaxFrameBody) {
    throw std::runtime_error("socket_transport: oversized frame from rank " +
                             std::to_string(src));
  }

  switch (static_cast<frame_type>(h.type)) {
    case frame_type::data: {
      if (h.body_len < 8) throw std::runtime_error("socket_transport: short DATA frame");
      std::byte prefix[8];
      if (!read_all(p.fd, prefix, sizeof(prefix))) return false;
      const std::size_t payload_len = h.body_len - 8;
      serial::byte_buffer payload(payload_len);
      if (payload_len > 0 && !read_all(p.fd, payload.append_raw(payload_len), payload_len)) {
        return false;
      }
      inbox_.push(mailbox::envelope{std::move(payload), src});
      return true;
    }
    case frame_type::idle: {
      std::byte body[4 * 8];
      if (h.body_len != sizeof(body) || !read_all(p.fd, body, sizeof(body))) return false;
      report rep;
      rep.gen = serial::load_u64_le(body);
      rep.seq = serial::load_u64_le(body + 8);
      rep.sent = serial::load_u64_le(body + 16);
      rep.recv = serial::load_u64_le(body + 24);
      rep.idle = true;
      if (rank_ == 0) coordinator_note_idle(src, rep);
      return true;
    }
    case frame_type::probe: {
      std::byte body[8];
      if (h.body_len != sizeof(body) || !read_all(p.fd, body, sizeof(body))) return false;
      handle_probe(serial::load_u64_le(body));
      return true;
    }
    case frame_type::probe_reply: {
      std::byte body[6 * 8];
      if (h.body_len != sizeof(body) || !read_all(p.fd, body, sizeof(body))) return false;
      report rep;
      const std::uint64_t epoch = serial::load_u64_le(body);
      rep.gen = serial::load_u64_le(body + 8);
      rep.seq = serial::load_u64_le(body + 16);
      rep.sent = serial::load_u64_le(body + 24);
      rep.recv = serial::load_u64_le(body + 32);
      rep.idle = serial::load_u64_le(body + 40) != 0;
      if (rank_ == 0) coordinator_probe_reply(src, epoch, rep);
      return true;
    }
    case frame_type::done: {
      std::byte body[8];
      if (h.body_len != sizeof(body) || !read_all(p.fd, body, sizeof(body))) return false;
      raise_to(done_generation_, serial::load_u64_le(body));
      return true;
    }
    case frame_type::exit_barrier: {
      std::byte body[8];
      if (h.body_len != sizeof(body) || !read_all(p.fd, body, sizeof(body))) return false;
      if (rank_ == 0) coordinator_note_exit(serial::load_u64_le(body));
      return true;
    }
    case frame_type::release: {
      std::byte body[8];
      if (h.body_len != sizeof(body) || !read_all(p.fd, body, sizeof(body))) return false;
      raise_to(release_generation_, serial::load_u64_le(body));
      {
        const std::lock_guard lock(gen_mutex_);
      }
      gen_cv_.notify_all();
      return true;
    }
    case frame_type::abort_run_: {
      std::string what(h.body_len, '\0');
      if (h.body_len > 0 && !read_all(p.fd, what.data(), what.size())) return false;
      // aborted_error marks this rank as a secondary casualty: the origin
      // rank reports the root cause, everyone else unwinds quietly.
      record_abort(std::make_exception_ptr(
          aborted_error(what.empty() ? "remote rank aborted" : what)));
      return true;
    }
    case frame_type::fin: {
      p.fin_received.store(true, std::memory_order_release);
      return true;
    }
    case frame_type::hello:
    default:
      throw std::runtime_error("socket_transport: unexpected frame type " +
                               std::to_string(h.type) + " from rank " +
                               std::to_string(src));
  }
}

void socket_transport::receive_loop() {
  std::vector<pollfd> fds;
  std::vector<int> fd_ranks;
  while (!shutting_down_.load(std::memory_order_acquire)) {
    fds.clear();
    fd_ranks.clear();
    fds.push_back(pollfd{wake_pipe_[0], POLLIN, 0});
    fd_ranks.push_back(-1);
    for (int r = 0; r < nranks_; ++r) {
      if (r == rank_) continue;
      auto& p = *peers_[static_cast<std::size_t>(r)];
      if (p.fd < 0 || p.dead.load(std::memory_order_acquire)) continue;
      const short events = static_cast<short>(
          POLLIN | (p.has_pending.load(std::memory_order_acquire) ? POLLOUT : 0));
      fds.push_back(pollfd{p.fd, events, 0});
      fd_ranks.push_back(r);
    }
    const int n = ::poll(fds.data(), static_cast<nfds_t>(fds.size()), 200);
    if (n < 0) {
      if (errno == EINTR) continue;
      abort_run(std::make_exception_ptr(
          std::runtime_error(errno_text("socket_transport: receiver poll failed"))));
      return;
    }
    if (n == 0) continue;
    for (std::size_t i = 0; i < fds.size(); ++i) {
      if (fds[i].revents == 0) continue;
      if (fd_ranks[i] < 0) {
        char buf[64];
        (void)!::read(wake_pipe_[0], buf, sizeof(buf));
        continue;
      }
      const int src = fd_ranks[i];
      auto& p = *peers_[static_cast<std::size_t>(src)];
      if ((fds[i].revents & POLLOUT) != 0) try_flush_pending(p);
      if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      try {
        if (!read_frame(src)) connection_lost(src);
      } catch (...) {
        p.dead.store(true, std::memory_order_release);
        abort_run(std::current_exception());
      }
    }
  }
}

stats_snapshot socket_transport::snapshot() const {
  const auto& c = counters_;
  stats_snapshot s;
  s.remote_bytes = c.remote_bytes.load(std::memory_order_relaxed);
  s.local_bytes = c.local_bytes.load(std::memory_order_relaxed);
  s.buffers_sent = c.buffers_sent.load(std::memory_order_relaxed);
  s.messages_sent = c.messages_sent.load(std::memory_order_relaxed);
  s.handlers_run = c.handlers_run.load(std::memory_order_relaxed);
  return s;
}

}  // namespace tripoll::comm
