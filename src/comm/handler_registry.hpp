// handler_registry.hpp -- mapping RPC handler types to wire ids.
//
// YGM sends "a function to execute, arguments to pass, and an MPI rank at
// which to evaluate" (paper Sec. 4.1.3).  Real YGM ships lambda offsets and
// corrects for ASLR; here each distinct (Handler, Args...) instantiation
// registers a deserialize-and-invoke thunk and is addressed by a dense
// 32-bit id.
//
// Cross-process id stability (socket backend): registration is driven by
// the dynamic initialization of `thunk_registration<...>::id`, i.e. it
// happens during static init, before main, in the (fixed) initializer order
// of the executable image.  Every rank of an SPMD job runs the same binary,
// so every process assigns identical ids without any negotiation -- the
// moral equivalent of YGM's ASLR correction.  The table additionally keeps
// a fingerprint (FNV-1a over registration order and mangled thunk names)
// that the socket backend exchanges in its HELLO handshake to fail fast if
// two processes ever disagree (e.g. mismatched binaries).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <tuple>
#include <type_traits>
#include <typeinfo>
#include <utility>

#include "serial/buffer.hpp"
#include "serial/serialize.hpp"

namespace tripoll::comm {

class communicator;

namespace detail {

/// A thunk deserializes one RPC's arguments and invokes the handler on the
/// destination rank.  `c` is the destination rank's communicator.
using thunk_fn = void (*)(communicator& c, serial::buffer_reader& rd);

/// Global thunk table: a dense, fixed-capacity function-pointer array.
/// Registration (mutex-guarded, once per (Handler, Args...) instantiation,
/// during static init) publishes the entry with a release store on the
/// count; dispatch is a single indexed load with no lock and no branchy
/// container machinery -- the drain loop resolves the table base once per
/// buffer and indexes it per message.
class thunk_table {
 public:
  /// Distinct (Handler, Args...) instantiations a process may register.
  /// Each costs one registration, so 4096 is far beyond any real workload;
  /// the fixed capacity is what makes lock-free lookup trivially safe
  /// (entries never move).
  static constexpr std::uint32_t kMaxThunks = 4096;

  static thunk_table& instance() {
    static thunk_table t;
    return t;
  }

  std::uint32_t register_thunk(thunk_fn fn, const char* name) {
    const std::lock_guard lock(mutex_);
    const std::uint32_t id = count_.load(std::memory_order_relaxed);
    if (id >= kMaxThunks) {
      throw std::runtime_error("thunk_table: too many distinct RPC handler types");
    }
    table_[id] = fn;
    // Fold (id, mangled name) into the running fingerprint: identical
    // registration order and types <=> identical fingerprint.
    std::uint64_t fp = fingerprint_.load(std::memory_order_relaxed);
    fp = fnv1a(fp, reinterpret_cast<const char*>(&id), sizeof(id));
    for (const char* p = name; *p != '\0'; ++p) fp = fnv1a(fp, p, 1);
    fingerprint_.store(fp, std::memory_order_relaxed);
    count_.store(id + 1, std::memory_order_release);
    return id;
  }

  /// Lock-free dispatch lookup.  An id at or past the published count is a
  /// corrupted buffer (ids only travel after registration completed).
  [[nodiscard]] thunk_fn lookup(std::uint32_t id) const {
    if (id >= count_.load(std::memory_order_acquire)) {
      throw std::out_of_range("thunk_table: unknown handler id");
    }
    return table_[id];
  }

  /// Table base + published count for tight dispatch loops: validate ids
  /// against `published` and index `base` directly.
  [[nodiscard]] const thunk_fn* base() const noexcept { return table_.data(); }

  [[nodiscard]] std::uint32_t published() const noexcept {
    return count_.load(std::memory_order_acquire);
  }

  /// Order-and-type digest of the registry, exchanged by the socket
  /// backend's handshake.  Stable by the time any transport exists because
  /// all registration happens during static init.
  [[nodiscard]] std::uint64_t fingerprint() const noexcept {
    return fingerprint_.load(std::memory_order_acquire);
  }

 private:
  [[nodiscard]] static std::uint64_t fnv1a(std::uint64_t h, const char* data,
                                           std::size_t n) noexcept {
    for (std::size_t i = 0; i < n; ++i) {
      h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(data[i]));
      h *= 0x100000001b3ull;
    }
    return h;
  }

  std::array<thunk_fn, kMaxThunks> table_{};
  std::atomic<std::uint32_t> count_{0};
  std::atomic<std::uint64_t> fingerprint_{0xcbf29ce484222325ull};
  std::mutex mutex_;
};

template <typename Handler, typename ArgsTuple>
struct invoker;

template <typename Handler, typename... Args>
struct invoker<Handler, std::tuple<Args...>> {
  static void invoke(communicator& c, serial::buffer_reader& rd) {
    std::tuple<Args...> args{};
    std::apply([&rd](auto&... unpacked) { serial::unpack(rd, unpacked...); }, args);
    Handler h{};
    if constexpr (std::is_invocable_v<Handler&, communicator&, Args&...>) {
      std::apply([&](auto&... unpacked) { h(c, unpacked...); }, args);
    } else {
      static_assert(std::is_invocable_v<Handler&, Args&...>,
                    "RPC handler must be callable as h(comm&, args...) or "
                    "h(args...)");
      std::apply([&](auto&... unpacked) { h(unpacked...); }, args);
    }
  }
};

/// The registration of one (Handler, Args...) pair.  The dynamic
/// initializer of `id` runs during static init of every process that could
/// ever send or receive this RPC (same binary => same instantiations), in a
/// fixed order, so ids agree across processes without communication.
template <typename Handler, typename... Args>
struct thunk_registration {
  static const std::uint32_t id;
};

template <typename Handler, typename... Args>
const std::uint32_t thunk_registration<Handler, Args...>::id =
    thunk_table::instance().register_thunk(
        &invoker<Handler, std::tuple<Args...>>::invoke,
        typeid(invoker<Handler, std::tuple<Args...>>).name());

/// The id for a (Handler, Args...) pair.  Compiles to a load of an
/// initialized constant; the registration side effect lives in the static
/// initializer above.
template <typename Handler, typename... Args>
inline std::uint32_t handler_id() {
  return thunk_registration<Handler, Args...>::id;
}

}  // namespace detail
}  // namespace tripoll::comm
