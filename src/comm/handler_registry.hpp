// handler_registry.hpp -- mapping RPC handler types to wire ids.
//
// YGM sends "a function to execute, arguments to pass, and an MPI rank at
// which to evaluate" (paper Sec. 4.1.3).  Real YGM ships lambda offsets and
// corrects for ASLR; in this single-process runtime each distinct
// (Handler, Args...) instantiation registers a deserialize-and-invoke thunk
// once and is addressed by a dense 32-bit id that is identical on every rank
// because all ranks share the process.
#pragma once

#include <cstdint>
#include <mutex>
#include <tuple>
#include <type_traits>
#include <utility>
#include <vector>

#include "serial/buffer.hpp"
#include "serial/serialize.hpp"

namespace tripoll::comm {

class communicator;

namespace detail {

/// A thunk deserializes one RPC's arguments and invokes the handler on the
/// destination rank.  `c` is the destination rank's communicator.
using thunk_fn = void (*)(communicator& c, serial::buffer_reader& rd);

/// Global thunk table (append-only, mutex-guarded registration; lock-free
/// lookup since entries are never moved after publication).
class thunk_table {
 public:
  static thunk_table& instance() {
    static thunk_table t;
    return t;
  }

  std::uint32_t register_thunk(thunk_fn fn) {
    const std::lock_guard lock(mutex_);
    thunks_.push_back(fn);
    return static_cast<std::uint32_t>(thunks_.size() - 1);
  }

  [[nodiscard]] thunk_fn lookup(std::uint32_t id) const {
    // Safe without the lock: ids are only handed out after the push_back
    // completes, and the deque-backed storage never invalidates entries.
    const std::lock_guard lock(mutex_);
    return thunks_.at(id);
  }

 private:
  mutable std::mutex mutex_;
  std::vector<thunk_fn> thunks_;
};

template <typename Handler, typename ArgsTuple>
struct invoker;

template <typename Handler, typename... Args>
struct invoker<Handler, std::tuple<Args...>> {
  static void invoke(communicator& c, serial::buffer_reader& rd) {
    std::tuple<Args...> args{};
    std::apply([&rd](auto&... unpacked) { serial::unpack(rd, unpacked...); }, args);
    Handler h{};
    if constexpr (std::is_invocable_v<Handler&, communicator&, Args&...>) {
      std::apply([&](auto&... unpacked) { h(c, unpacked...); }, args);
    } else {
      static_assert(std::is_invocable_v<Handler&, Args&...>,
                    "RPC handler must be callable as h(comm&, args...) or "
                    "h(args...)");
      std::apply([&](auto&... unpacked) { h(unpacked...); }, args);
    }
  }
};

/// The id for a (Handler, Args...) pair.  The magic static guarantees a
/// single registration per instantiation, process-wide.
template <typename Handler, typename... Args>
std::uint32_t handler_id() {
  static const std::uint32_t id = thunk_table::instance().register_thunk(
      &invoker<Handler, std::tuple<Args...>>::invoke);
  return id;
}

}  // namespace detail
}  // namespace tripoll::comm
