// handler_registry.hpp -- mapping RPC handler types to wire ids.
//
// YGM sends "a function to execute, arguments to pass, and an MPI rank at
// which to evaluate" (paper Sec. 4.1.3).  Real YGM ships lambda offsets and
// corrects for ASLR; in this single-process runtime each distinct
// (Handler, Args...) instantiation registers a deserialize-and-invoke thunk
// once and is addressed by a dense 32-bit id that is identical on every rank
// because all ranks share the process.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <tuple>
#include <type_traits>
#include <utility>

#include "serial/buffer.hpp"
#include "serial/serialize.hpp"

namespace tripoll::comm {

class communicator;

namespace detail {

/// A thunk deserializes one RPC's arguments and invokes the handler on the
/// destination rank.  `c` is the destination rank's communicator.
using thunk_fn = void (*)(communicator& c, serial::buffer_reader& rd);

/// Global thunk table: a dense, fixed-capacity function-pointer array.
/// Registration (mutex-guarded, once per (Handler, Args...) instantiation)
/// publishes the entry with a release store on the count; dispatch is a
/// single indexed load with no lock and no branchy container machinery --
/// the drain loop resolves the table base once per buffer and indexes it
/// per message.
class thunk_table {
 public:
  /// Distinct (Handler, Args...) instantiations a process may register.
  /// Each costs one registration, so 4096 is far beyond any real workload;
  /// the fixed capacity is what makes lock-free lookup trivially safe
  /// (entries never move).
  static constexpr std::uint32_t kMaxThunks = 4096;

  static thunk_table& instance() {
    static thunk_table t;
    return t;
  }

  std::uint32_t register_thunk(thunk_fn fn) {
    const std::lock_guard lock(mutex_);
    const std::uint32_t id = count_.load(std::memory_order_relaxed);
    if (id >= kMaxThunks) {
      throw std::runtime_error("thunk_table: too many distinct RPC handler types");
    }
    table_[id] = fn;
    count_.store(id + 1, std::memory_order_release);
    return id;
  }

  /// Lock-free dispatch lookup.  An id at or past the published count is a
  /// corrupted buffer (ids only travel after registration completed).
  [[nodiscard]] thunk_fn lookup(std::uint32_t id) const {
    if (id >= count_.load(std::memory_order_acquire)) {
      throw std::out_of_range("thunk_table: unknown handler id");
    }
    return table_[id];
  }

  /// Table base + published count for tight dispatch loops: validate ids
  /// against `published` and index `base` directly.
  [[nodiscard]] const thunk_fn* base() const noexcept { return table_.data(); }

  [[nodiscard]] std::uint32_t published() const noexcept {
    return count_.load(std::memory_order_acquire);
  }

 private:
  std::array<thunk_fn, kMaxThunks> table_{};
  std::atomic<std::uint32_t> count_{0};
  std::mutex mutex_;
};

template <typename Handler, typename ArgsTuple>
struct invoker;

template <typename Handler, typename... Args>
struct invoker<Handler, std::tuple<Args...>> {
  static void invoke(communicator& c, serial::buffer_reader& rd) {
    std::tuple<Args...> args{};
    std::apply([&rd](auto&... unpacked) { serial::unpack(rd, unpacked...); }, args);
    Handler h{};
    if constexpr (std::is_invocable_v<Handler&, communicator&, Args&...>) {
      std::apply([&](auto&... unpacked) { h(c, unpacked...); }, args);
    } else {
      static_assert(std::is_invocable_v<Handler&, Args&...>,
                    "RPC handler must be callable as h(comm&, args...) or "
                    "h(args...)");
      std::apply([&](auto&... unpacked) { h(unpacked...); }, args);
    }
  }
};

/// The id for a (Handler, Args...) pair.  The magic static guarantees a
/// single registration per instantiation, process-wide.
template <typename Handler, typename... Args>
std::uint32_t handler_id() {
  static const std::uint32_t id = thunk_table::instance().register_thunk(
      &invoker<Handler, std::tuple<Args...>>::invoke);
  return id;
}

}  // namespace detail
}  // namespace tripoll::comm
