// counting_set.hpp -- distributed multiset of counters with local caching.
//
// The paper's survey accumulator (Sec. 4.1.4): "a distributed counting set
// that keeps individual counts of different items seen across ranks.  This
// structure stores a small cache on each rank to keep values seen recently,
// which must be flushed and have its contents sent across the network
// occasionally."  Algorithms 3 and 4 increment it from inside triangle
// callbacks; the interleaving of its flush RPCs with the survey's adjacency
// RPCs is exactly the message heterogeneity YGM's serialization provides.
#pragma once

#include <cstdint>
#include <map>
#include <unordered_map>
#include <utility>
#include <vector>

#include "comm/communicator.hpp"
#include "comm/key_hash.hpp"

namespace tripoll::comm {

template <typename Key>
class counting_set {
 public:
  using key_type = Key;
  using count_type = std::uint64_t;
  using self = counting_set<Key>;

  /// `cache_capacity` bounds the number of distinct keys cached locally
  /// before a flush sends the aggregated counts to their owners.
  explicit counting_set(communicator& c, std::size_t cache_capacity = 4096)
      : comm_(&c), handle_(c.register_object(*this)), cache_capacity_(cache_capacity) {}

  ~counting_set() { comm_->deregister_object(handle_); }

  counting_set(const counting_set&) = delete;
  counting_set& operator=(const counting_set&) = delete;

  [[nodiscard]] communicator& comm() noexcept { return *comm_; }

  /// Count `k` once (or `by` times).  Cached locally; the aggregate reaches
  /// the owner at the next cache flush or barrier-preceding flush_cache().
  void async_increment(const Key& k, count_type by = 1) {
    cache_[k] += by;
    if (cache_.size() >= cache_capacity_) flush_cache();
  }

  /// Push all cached counts to their owners.  Must be followed by a
  /// communicator barrier before reading counts (callers typically use
  /// `finalize()`).
  void flush_cache() {
    for (const auto& [k, n] : cache_) {
      comm_->async(owner(k), increment_handler{}, handle_, k, n);
    }
    cache_.clear();
  }

  /// Collective: flush every rank's cache and wait until all increments have
  /// landed.  After this, local storage holds the final counts.
  void finalize() {
    flush_cache();
    comm_->barrier();
  }

  [[nodiscard]] int owner(const Key& k) const noexcept {
    return comm_->owner(key_hash<Key>{}(k));
  }

  // --- access (after finalize) -------------------------------------------------

  template <typename Fn>
  void for_all_local(Fn&& fn) const {
    for (const auto& [k, n] : counts_) fn(k, n);
  }

  [[nodiscard]] std::size_t local_size() const noexcept { return counts_.size(); }

  /// Collective: number of distinct keys across all ranks.
  [[nodiscard]] std::uint64_t global_size() {
    return comm_->all_reduce_sum<std::uint64_t>(counts_.size());
  }

  /// Collective: total of all counts across all ranks.
  [[nodiscard]] std::uint64_t global_total() {
    count_type local = 0;
    for (const auto& [k, n] : counts_) local += n;
    return comm_->all_reduce_sum<std::uint64_t>(local);
  }

  /// Collective: gather the complete distribution onto every rank, sorted by
  /// key.  Intended for survey outputs, which are small relative to the
  /// graph (log-binned histograms, label distributions).
  [[nodiscard]] std::map<Key, count_type> gather_all() {
    std::vector<std::pair<Key, count_type>> local(counts_.begin(), counts_.end());
    auto per_rank = comm_->all_gather(local);
    std::map<Key, count_type> out;
    for (auto& vec : per_rank) {
      for (auto& [k, n] : vec) out[k] += n;
    }
    return out;
  }

  void clear() {
    cache_.clear();
    counts_.clear();
  }

 private:
  struct increment_handler {
    void operator()(communicator& c, dist_handle<self> h, const Key& k, count_type by) {
      c.resolve(h).counts_[k] += by;
    }
  };

  communicator* comm_;
  dist_handle<self> handle_;
  std::size_t cache_capacity_;
  std::unordered_map<Key, count_type, key_hash<Key>> cache_;
  std::unordered_map<Key, count_type, key_hash<Key>> counts_;
};

}  // namespace tripoll::comm
