// service_client.hpp -- blocking client of the resident survey service.
//
// One connection, one request in flight at a time: every call writes one
// frame and reads exactly one reply frame.  `submit_raw` returns the RESULT
// body bytes untouched -- the byte-identity tests diff these across cache
// hits, fused batches and backends -- while `submit` deserializes them.
//
// ERROR replies surface as `service_error` carrying the daemon's reason
// code, so callers can distinguish shutting_down (retry elsewhere) from
// bad_request (fix the plan).
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "service/endpoint.hpp"
#include "service/protocol.hpp"

namespace tripoll::comm {

/// Thrown when the daemon answers with an ERROR frame.
class service_error : public std::runtime_error {
 public:
  service_error(service::error_code code, const std::string& message)
      : std::runtime_error(std::string(service::error_code_name(code)) + ": " +
                           message),
        code_(code) {}

  [[nodiscard]] service::error_code code() const noexcept { return code_; }

 private:
  service::error_code code_;
};

class service_client {
 public:
  /// Dial the daemon, retrying until `timeout_seconds` (it may still be
  /// loading its snapshot).  Throws std::runtime_error on timeout.
  explicit service_client(const std::string& endpoint_spec,
                          double timeout_seconds = 10.0);
  ~service_client();
  service_client(service_client&& other) noexcept;
  service_client& operator=(service_client&&) = delete;
  service_client(const service_client&) = delete;
  service_client& operator=(const service_client&) = delete;

  /// Submit a plan; return the raw RESULT body bytes.
  /// Throws service_error on an ERROR reply.
  [[nodiscard]] std::vector<std::byte> submit_raw(const service::plan_request& req);

  /// Submit a plan; return the deserialized response.
  [[nodiscard]] service::plan_response submit(const service::plan_request& req);

  /// Fetch the daemon's counters.
  [[nodiscard]] service::service_stats stats();

  /// Ask the daemon to shut down gracefully; returns once acknowledged.
  void shutdown();

 private:
  /// Write one frame; read one reply.  ERROR replies throw service_error;
  /// a reply of a type other than `expect` throws std::runtime_error.
  std::vector<std::byte> round_trip(service::frame_type send,
                                    service::frame_type expect,
                                    const std::byte* body, std::size_t n);

  int fd_ = -1;
};

}  // namespace tripoll::comm
