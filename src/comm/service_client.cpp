// service_client.cpp -- blocking frame I/O against the survey daemon.

#include "comm/service_client.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "serial/buffer.hpp"
#include "serial/serialize.hpp"

namespace tripoll::comm {

namespace {

void write_all(int fd, const std::byte* data, std::size_t n) {
  std::size_t off = 0;
  while (off < n) {
    const ssize_t w = ::send(fd, data + off, n - off, MSG_NOSIGNAL);
    if (w > 0) {
      off += static_cast<std::size_t>(w);
      continue;
    }
    if (w < 0 && errno == EINTR) continue;
    throw std::runtime_error(std::string("service_client: send: ") +
                             std::strerror(errno));
  }
}

void read_all(int fd, std::byte* data, std::size_t n) {
  std::size_t off = 0;
  while (off < n) {
    const ssize_t r = ::recv(fd, data + off, n - off, 0);
    if (r > 0) {
      off += static_cast<std::size_t>(r);
      continue;
    }
    if (r < 0 && errno == EINTR) continue;
    if (r == 0) {
      throw std::runtime_error("service_client: daemon closed the connection");
    }
    throw std::runtime_error(std::string("service_client: recv: ") +
                             std::strerror(errno));
  }
}

}  // namespace

service_client::service_client(const std::string& endpoint_spec,
                               double timeout_seconds) {
  fd_ = service::dial_endpoint(service::endpoint::parse(endpoint_spec),
                               timeout_seconds);
}

service_client::~service_client() {
  if (fd_ >= 0) ::close(fd_);
}

service_client::service_client(service_client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)) {}

std::vector<std::byte> service_client::round_trip(service::frame_type send,
                                                  service::frame_type expect,
                                                  const std::byte* body,
                                                  std::size_t n) {
  serial::frame_header hdr;
  hdr.body_len = static_cast<std::uint32_t>(n);
  hdr.type = static_cast<std::uint8_t>(send);
  std::byte wire[serial::frame_header::kWireSize];
  hdr.encode(wire);
  write_all(fd_, wire, sizeof(wire));
  if (n > 0) write_all(fd_, body, n);

  std::byte reply_wire[serial::frame_header::kWireSize];
  read_all(fd_, reply_wire, sizeof(reply_wire));
  const auto reply = serial::frame_header::decode(reply_wire);
  if (reply.body_len > service::kMaxBodyBytes) {
    throw std::runtime_error("service_client: oversized reply frame");
  }
  std::vector<std::byte> reply_body(reply.body_len);
  if (reply.body_len > 0) read_all(fd_, reply_body.data(), reply_body.size());

  if (reply.type == static_cast<std::uint8_t>(service::frame_type::error)) {
    service::error_reply err;
    serial::buffer_reader r(reply_body.data(), reply_body.size());
    serial::unpack(r, err);
    throw service_error(static_cast<service::error_code>(err.code), err.message);
  }
  if (reply.type != static_cast<std::uint8_t>(expect)) {
    throw std::runtime_error("service_client: unexpected reply frame type " +
                             std::to_string(reply.type));
  }
  return reply_body;
}

std::vector<std::byte> service_client::submit_raw(const service::plan_request& req) {
  serial::byte_buffer buf;
  serial::pack(buf, req);
  return round_trip(service::frame_type::submit_plan, service::frame_type::result,
                    buf.data(), buf.size());
}

service::plan_response service_client::submit(const service::plan_request& req) {
  const auto body = submit_raw(req);
  service::plan_response resp;
  serial::buffer_reader r(body.data(), body.size());
  serial::unpack(r, resp);
  return resp;
}

service::service_stats service_client::stats() {
  const auto body = round_trip(service::frame_type::stats,
                               service::frame_type::stats, nullptr, 0);
  service::service_stats s;
  serial::buffer_reader r(body.data(), body.size());
  serial::unpack(r, s);
  return s;
}

void service_client::shutdown() {
  (void)round_trip(service::frame_type::shutdown, service::frame_type::shutdown,
                   nullptr, 0);
}

}  // namespace tripoll::comm
