#include "comm/inproc_transport.hpp"

namespace tripoll::comm {

inproc_transport::inproc_transport(int nranks, config cfg)
    : transport(nranks, cfg),
      mailboxes_(static_cast<std::size_t>(nranks)),
      counters_(static_cast<std::size_t>(nranks)) {}

void inproc_transport::deliver(int src, int dst, serial::byte_buffer payload,
                               std::uint64_t n_messages) {
  auto& c = counters(src);
  if (src == dst) {
    c.local_bytes.fetch_add(payload.size(), std::memory_order_relaxed);
  } else {
    c.remote_bytes.fetch_add(payload.size(), std::memory_order_relaxed);
  }
  c.buffers_sent.fetch_add(1, std::memory_order_relaxed);
  c.messages_sent.fetch_add(n_messages, std::memory_order_relaxed);

  // The in-flight count must rise before the buffer becomes visible in the
  // destination mailbox; the termination detector relies on this ordering.
  in_flight_.fetch_add(1, std::memory_order_seq_cst);
  mailboxes_[static_cast<std::size_t>(dst)].push(
      mailbox::envelope{std::move(payload), src});
}

void inproc_transport::acknowledge_processed(int /*rank*/) {
  in_flight_.fetch_sub(1, std::memory_order_seq_cst);
}

void inproc_transport::announce_idle(int /*rank*/, std::uint64_t /*generation*/) {
  idle_ranks_.fetch_add(1, std::memory_order_seq_cst);
}

void inproc_transport::retract_idle(int /*rank*/) {
  idle_ranks_.fetch_sub(1, std::memory_order_seq_cst);
}

bool inproc_transport::poll_barrier(int /*rank*/, std::uint64_t generation) {
  if (done_generation_.load(std::memory_order_seq_cst) >= generation) return true;
  if (quiescent()) {
    // Quiescence is stable once reached: every rank is idle with empty
    // buffers and nothing is in flight, so nobody can create new work.
    publish_done(generation);
    return true;
  }
  return false;
}

void inproc_transport::publish_done(std::uint64_t gen) noexcept {
  std::uint64_t cur = done_generation_.load(std::memory_order_seq_cst);
  while (cur < gen &&
         !done_generation_.compare_exchange_weak(cur, gen, std::memory_order_seq_cst)) {
    // retry; cur reloaded by compare_exchange_weak
  }
}

void inproc_transport::exit_rendezvous(int /*rank*/) {
  std::unique_lock lock(exit_mutex_);
  const std::uint64_t my_generation = exit_generation_;
  if (++exit_count_ == nranks_) {
    exit_count_ = 0;
    ++exit_generation_;
    // Reset barrier bookkeeping for the next use while every rank is still
    // inside the rendezvous (nobody can be announcing idle concurrently).
    idle_ranks_.store(0, std::memory_order_seq_cst);
    lock.unlock();
    exit_cv_.notify_all();
    return;
  }
  exit_cv_.wait(lock, [&] { return exit_generation_ != my_generation || aborted(); });
  if (exit_generation_ == my_generation) throw aborted_error{};
}

void inproc_transport::abort_run(std::exception_ptr error) noexcept {
  record_abort(error);
  exit_cv_.notify_all();
}

stats_snapshot inproc_transport::snapshot() const {
  stats_snapshot s;
  for (const auto& c : counters_) {
    s.remote_bytes += c.remote_bytes.load(std::memory_order_relaxed);
    s.local_bytes += c.local_bytes.load(std::memory_order_relaxed);
    s.buffers_sent += c.buffers_sent.load(std::memory_order_relaxed);
    s.messages_sent += c.messages_sent.load(std::memory_order_relaxed);
    s.handlers_run += c.handlers_run.load(std::memory_order_relaxed);
  }
  return s;
}

stats_snapshot inproc_transport::snapshot(int rank) const {
  const auto& c = counters_[static_cast<std::size_t>(rank)];
  stats_snapshot s;
  s.remote_bytes = c.remote_bytes.load(std::memory_order_relaxed);
  s.local_bytes = c.local_bytes.load(std::memory_order_relaxed);
  s.buffers_sent = c.buffers_sent.load(std::memory_order_relaxed);
  s.messages_sent = c.messages_sent.load(std::memory_order_relaxed);
  s.handlers_run = c.handlers_run.load(std::memory_order_relaxed);
  return s;
}

}  // namespace tripoll::comm
