// distributed_map.hpp -- hash-partitioned key/value store (YGM container).
//
// The paper's graph storage is "a custom structure built on YGM's
// distributed map container" (Sec. 4.2).  Keys live at a deterministic rank;
// mutation happens through asynchronous visits executed on the owner, which
// keeps every value single-writer.
#pragma once

#include <cstdint>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "comm/communicator.hpp"
#include "comm/key_hash.hpp"

namespace tripoll::comm {

template <typename Key, typename Value>
class distributed_map {
 public:
  using key_type = Key;
  using mapped_type = Value;
  using self = distributed_map<Key, Value>;

  explicit distributed_map(communicator& c)
      : comm_(&c), handle_(c.register_object(*this)) {}

  ~distributed_map() { comm_->deregister_object(handle_); }

  distributed_map(const distributed_map&) = delete;
  distributed_map& operator=(const distributed_map&) = delete;

  [[nodiscard]] communicator& comm() noexcept { return *comm_; }
  [[nodiscard]] int owner(const Key& k) const noexcept {
    return comm_->owner(key_hash<Key>{}(k));
  }

  // --- asynchronous mutation ------------------------------------------------

  /// Insert-or-overwrite at the owner.
  void async_insert(const Key& k, const Value& v) {
    comm_->async(owner(k), insert_handler{}, handle_, k, v);
  }

  /// Run `Visitor{}(key, value&, args...)` on the owner, default-constructing
  /// the value first if the key is absent.  The visitor may also accept a
  /// leading `communicator&` to chain further asyncs.
  template <typename Visitor, typename... Args>
  void async_visit(const Key& k, Visitor /*v*/, const Args&... args) {
    comm_->async(owner(k), visit_handler<Visitor, std::decay_t<Args>...>{}, handle_, k,
                 args...);
  }

  /// Like async_visit but does nothing when the key is absent.
  template <typename Visitor, typename... Args>
  void async_visit_if_exists(const Key& k, Visitor /*v*/, const Args&... args) {
    comm_->async(owner(k), visit_if_exists_handler<Visitor, std::decay_t<Args>...>{},
                 handle_, k, args...);
  }

  /// Erase at the owner (no-op when absent).
  void async_erase(const Key& k) {
    comm_->async(owner(k), erase_handler{}, handle_, k);
  }

  // --- local access -----------------------------------------------------------

  /// Apply `fn(key, value&)` to every locally stored pair.
  template <typename Fn>
  void for_all_local(Fn&& fn) {
    for (auto& [k, v] : local_) fn(k, v);
  }

  template <typename Fn>
  void for_all_local(Fn&& fn) const {
    for (const auto& [k, v] : local_) fn(k, v);
  }

  [[nodiscard]] std::size_t local_size() const noexcept { return local_.size(); }

  [[nodiscard]] bool local_contains(const Key& k) const { return local_.contains(k); }

  [[nodiscard]] Value* local_find(const Key& k) {
    auto it = local_.find(k);
    return it == local_.end() ? nullptr : &it->second;
  }

  [[nodiscard]] const Value* local_find(const Key& k) const {
    auto it = local_.find(k);
    return it == local_.end() ? nullptr : &it->second;
  }

  [[nodiscard]] Value& local_at_or_create(const Key& k) { return local_[k]; }

  /// Direct access to local storage (read-mostly utilities, tests).
  [[nodiscard]] auto& local_storage() noexcept { return local_; }

  // --- collectives ---------------------------------------------------------------

  /// Global number of keys; collective.
  [[nodiscard]] std::uint64_t global_size() {
    return comm_->all_reduce_sum<std::uint64_t>(local_.size());
  }

  void clear_local() { local_.clear(); }

 private:
  struct insert_handler {
    void operator()(communicator& c, dist_handle<self> h, const Key& k, const Value& v) {
      c.resolve(h).local_[k] = v;
    }
  };

  template <typename Visitor, typename... Args>
  struct visit_handler {
    void operator()(communicator& c, dist_handle<self> h, const Key& k,
                    const Args&... args) {
      auto& map = c.resolve(h);
      Value& value = map.local_[k];
      Visitor visitor{};
      if constexpr (std::is_invocable_v<Visitor&, communicator&, const Key&, Value&,
                                        const Args&...>) {
        visitor(c, k, value, args...);
      } else {
        visitor(k, value, args...);
      }
    }
  };

  template <typename Visitor, typename... Args>
  struct visit_if_exists_handler {
    void operator()(communicator& c, dist_handle<self> h, const Key& k,
                    const Args&... args) {
      auto& map = c.resolve(h);
      auto it = map.local_.find(k);
      if (it == map.local_.end()) return;
      Visitor visitor{};
      if constexpr (std::is_invocable_v<Visitor&, communicator&, const Key&, Value&,
                                        const Args&...>) {
        visitor(c, k, it->second, args...);
      } else {
        visitor(k, it->second, args...);
      }
    }
  };

  struct erase_handler {
    void operator()(communicator& c, dist_handle<self> h, const Key& k) {
      c.resolve(h).local_.erase(k);
    }
  };

  communicator* comm_;
  dist_handle<self> handle_;
  std::unordered_map<Key, Value, key_hash<Key>> local_;
};

}  // namespace tripoll::comm
