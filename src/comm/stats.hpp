// stats.hpp -- communication accounting for the simulated transport.
//
// Table 4 of the paper reports measured communication volume for Push-Only
// vs Push-Pull.  Because every RPC in this runtime is really serialized into
// byte buffers, the transport can count exactly how many bytes crossed
// between ranks; surveys snapshot these counters around each phase.
#pragma once

#include <atomic>
#include <cstdint>

namespace tripoll::comm {

/// Monotonic counters kept per source rank (cache-line separated).
struct alignas(64) rank_counters {
  std::atomic<std::uint64_t> remote_bytes{0};   ///< bytes sent to other ranks
  std::atomic<std::uint64_t> local_bytes{0};    ///< bytes self-delivered
  std::atomic<std::uint64_t> buffers_sent{0};   ///< transport-level flushes
  std::atomic<std::uint64_t> messages_sent{0};  ///< logical RPC messages
  std::atomic<std::uint64_t> handlers_run{0};   ///< RPCs executed here
};

/// A point-in-time aggregate over all ranks.  Differences of snapshots give
/// per-phase totals.
struct stats_snapshot {
  std::uint64_t remote_bytes = 0;
  std::uint64_t local_bytes = 0;
  std::uint64_t buffers_sent = 0;
  std::uint64_t messages_sent = 0;
  std::uint64_t handlers_run = 0;

  friend stats_snapshot operator-(stats_snapshot a, const stats_snapshot& b) {
    a.remote_bytes -= b.remote_bytes;
    a.local_bytes -= b.local_bytes;
    a.buffers_sent -= b.buffers_sent;
    a.messages_sent -= b.messages_sent;
    a.handlers_run -= b.handlers_run;
    return a;
  }

  /// Element-wise sum, so per-rank snapshots can be all-reduced into global
  /// totals that agree on every rank regardless of backend.
  friend stats_snapshot operator+(stats_snapshot a, const stats_snapshot& b) {
    a.remote_bytes += b.remote_bytes;
    a.local_bytes += b.local_bytes;
    a.buffers_sent += b.buffers_sent;
    a.messages_sent += b.messages_sent;
    a.handlers_run += b.handlers_run;
    return a;
  }

  /// Total bytes that would traverse a network, the paper's
  /// "communication volume".
  [[nodiscard]] std::uint64_t volume() const noexcept { return remote_bytes; }
};

}  // namespace tripoll::comm
