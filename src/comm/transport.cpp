#include "comm/transport.hpp"

#include <chrono>

namespace tripoll::comm {

transport::transport(int nranks, config cfg)
    : nranks_(nranks),
      cfg_(cfg),
      mailboxes_(static_cast<std::size_t>(nranks)),
      counters_(static_cast<std::size_t>(nranks)) {
  if (nranks <= 0) throw std::invalid_argument("transport: nranks must be positive");
}

void transport::deliver(int src, int dst, serial::byte_buffer payload,
                        std::uint64_t n_messages) {
  auto& c = counters(src);
  if (src == dst) {
    c.local_bytes.fetch_add(payload.size(), std::memory_order_relaxed);
  } else {
    c.remote_bytes.fetch_add(payload.size(), std::memory_order_relaxed);
  }
  c.buffers_sent.fetch_add(1, std::memory_order_relaxed);
  c.messages_sent.fetch_add(n_messages, std::memory_order_relaxed);

  // The in-flight count must rise before the buffer becomes visible in the
  // destination mailbox; the termination detector relies on this ordering.
  in_flight_.fetch_add(1, std::memory_order_seq_cst);
  mailboxes_[static_cast<std::size_t>(dst)].push(
      mailbox::envelope{std::move(payload), src});
}

void transport::publish_done(std::uint64_t gen) noexcept {
  std::uint64_t cur = done_generation_.load(std::memory_order_seq_cst);
  while (cur < gen &&
         !done_generation_.compare_exchange_weak(cur, gen, std::memory_order_seq_cst)) {
    // retry; cur reloaded by compare_exchange_weak
  }
}

void transport::exit_rendezvous() {
  std::unique_lock lock(exit_mutex_);
  const std::uint64_t my_generation = exit_generation_;
  if (++exit_count_ == nranks_) {
    exit_count_ = 0;
    ++exit_generation_;
    // Reset barrier bookkeeping for the next use while every rank is still
    // inside the rendezvous (nobody can be announcing idle concurrently).
    idle_ranks_.store(0, std::memory_order_seq_cst);
    lock.unlock();
    exit_cv_.notify_all();
    return;
  }
  exit_cv_.wait(lock, [&] { return exit_generation_ != my_generation || aborted(); });
  if (exit_generation_ == my_generation) throw aborted_error{};
}

void transport::abort_run(std::exception_ptr error) noexcept {
  {
    const std::lock_guard lock(error_mutex_);
    if (!first_error_) first_error_ = error;
  }
  aborted_.store(true, std::memory_order_release);
  exit_cv_.notify_all();
}

stats_snapshot transport::snapshot() const {
  stats_snapshot s;
  for (const auto& c : counters_) {
    s.remote_bytes += c.remote_bytes.load(std::memory_order_relaxed);
    s.local_bytes += c.local_bytes.load(std::memory_order_relaxed);
    s.buffers_sent += c.buffers_sent.load(std::memory_order_relaxed);
    s.messages_sent += c.messages_sent.load(std::memory_order_relaxed);
    s.handlers_run += c.handlers_run.load(std::memory_order_relaxed);
  }
  return s;
}

stats_snapshot transport::snapshot(int rank) const {
  const auto& c = counters_[static_cast<std::size_t>(rank)];
  stats_snapshot s;
  s.remote_bytes = c.remote_bytes.load(std::memory_order_relaxed);
  s.local_bytes = c.local_bytes.load(std::memory_order_relaxed);
  s.buffers_sent = c.buffers_sent.load(std::memory_order_relaxed);
  s.messages_sent = c.messages_sent.load(std::memory_order_relaxed);
  s.handlers_run = c.handlers_run.load(std::memory_order_relaxed);
  return s;
}

}  // namespace tripoll::comm
