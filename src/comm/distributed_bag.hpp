// distributed_bag.hpp -- unordered distributed collection (YGM container).
//
// A bag holds items with no key: inserts scatter round-robin so storage
// balances, and consumers iterate locally.  TriPoll uses it as the landing
// area for generated/ingested edges before graph construction.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "comm/communicator.hpp"

namespace tripoll::comm {

template <typename T>
class distributed_bag {
 public:
  using value_type = T;
  using self = distributed_bag<T>;

  explicit distributed_bag(communicator& c)
      : comm_(&c), handle_(c.register_object(*this)), next_dest_(c.rank()) {}

  ~distributed_bag() { comm_->deregister_object(handle_); }

  distributed_bag(const distributed_bag&) = delete;
  distributed_bag& operator=(const distributed_bag&) = delete;

  [[nodiscard]] communicator& comm() noexcept { return *comm_; }

  /// Store `item` somewhere (round-robin over ranks, starting at self).
  void async_insert(const T& item) {
    comm_->async(next_dest_, insert_handler{}, handle_, item);
    next_dest_ = (next_dest_ + 1) % comm_->size();
  }

  /// Store `item` on this rank without communication.
  void local_insert(T item) { items_.push_back(std::move(item)); }

  template <typename Fn>
  void for_all_local(Fn&& fn) {
    for (auto& item : items_) fn(item);
  }

  template <typename Fn>
  void for_all_local(Fn&& fn) const {
    for (const auto& item : items_) fn(item);
  }

  [[nodiscard]] std::size_t local_size() const noexcept { return items_.size(); }

  [[nodiscard]] std::uint64_t global_size() {
    return comm_->all_reduce_sum<std::uint64_t>(items_.size());
  }

  [[nodiscard]] std::vector<T>& local_items() noexcept { return items_; }
  [[nodiscard]] const std::vector<T>& local_items() const noexcept { return items_; }

  void clear_local() { items_.clear(); }

 private:
  struct insert_handler {
    void operator()(communicator& c, dist_handle<self> h, const T& item) {
      c.resolve(h).items_.push_back(item);
    }
  };

  communicator* comm_;
  dist_handle<self> handle_;
  int next_dest_;
  std::vector<T> items_;
};

}  // namespace tripoll::comm
