// transport.hpp -- shared state of the threads-as-ranks runtime.
//
// The transport plays the role MPI plays for YGM: it moves opaque byte
// buffers between ranks and provides the collective rendezvous needed for
// barriers.  All cross-rank communication in this repository flows through
// here, so its counters are the ground truth for the communication-volume
// results (Table 4 reproduction).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "comm/config.hpp"
#include "comm/mailbox.hpp"
#include "comm/stats.hpp"

namespace tripoll::comm {

/// Thrown on ranks that observe another rank's failure so the whole run
/// unwinds instead of deadlocking in a barrier.
class aborted_error : public std::runtime_error {
 public:
  aborted_error() : std::runtime_error("tripoll::comm run aborted by another rank") {}
};

class transport {
 public:
  transport(int nranks, config cfg);

  transport(const transport&) = delete;
  transport& operator=(const transport&) = delete;

  [[nodiscard]] int nranks() const noexcept { return nranks_; }
  [[nodiscard]] const config& cfg() const noexcept { return cfg_; }

  /// Deliver a flushed buffer from `src` to `dst`.  `n_messages` is the
  /// number of logical RPCs inside (for stats only).
  void deliver(int src, int dst, serial::byte_buffer payload,
               std::uint64_t n_messages);

  /// Non-blocking receive for rank `rank`.
  bool try_receive(int rank, mailbox::envelope& out) {
    return mailboxes_[static_cast<std::size_t>(rank)].try_pop(out);
  }

  [[nodiscard]] bool inbox_empty(int rank) const {
    return mailboxes_[static_cast<std::size_t>(rank)].empty();
  }

  /// Called by a rank after it fully processed one delivered buffer
  /// (including running all handlers inside it).
  void acknowledge_processed() noexcept { in_flight_.fetch_sub(1, std::memory_order_seq_cst); }

  [[nodiscard]] std::int64_t in_flight() const noexcept {
    return in_flight_.load(std::memory_order_seq_cst);
  }

  // --- termination-detection barrier ------------------------------------
  // Ranks entering the barrier alternate between announcing themselves idle
  // and retracting to process late arrivals; the barrier completes when all
  // ranks are idle and no buffer is in flight.  See communicator::barrier.

  void announce_idle() noexcept { idle_ranks_.fetch_add(1, std::memory_order_seq_cst); }
  void retract_idle() noexcept { idle_ranks_.fetch_sub(1, std::memory_order_seq_cst); }

  [[nodiscard]] bool quiescent() const noexcept {
    return idle_ranks_.load(std::memory_order_seq_cst) == nranks_ &&
           in_flight_.load(std::memory_order_seq_cst) == 0;
  }

  /// Publish that generation `gen` reached quiescence (idempotent; monotone).
  void publish_done(std::uint64_t gen) noexcept;

  [[nodiscard]] std::uint64_t done_generation() const noexcept {
    return done_generation_.load(std::memory_order_seq_cst);
  }

  /// Exit rendezvous: every rank arrives exactly once per barrier; the last
  /// arrival resets the idle count for the next barrier before releasing.
  /// Throws aborted_error if the run was aborted while waiting.
  void exit_rendezvous();

  // --- failure propagation ----------------------------------------------

  /// Record the first exception and wake all waiters.
  void abort_run(std::exception_ptr error) noexcept;

  [[nodiscard]] bool aborted() const noexcept {
    return aborted_.load(std::memory_order_acquire);
  }

  void throw_if_aborted() const {
    if (aborted()) throw aborted_error{};
  }

  [[nodiscard]] std::exception_ptr first_error() const noexcept { return first_error_; }

  // --- stats --------------------------------------------------------------

  [[nodiscard]] rank_counters& counters(int rank) noexcept {
    return counters_[static_cast<std::size_t>(rank)];
  }

  /// Aggregate counters across all ranks (monotone; subtract snapshots for
  /// per-phase numbers).  Note this is a racy point-in-time view: other
  /// ranks' counters keep moving, so two ranks bracketing the same phase can
  /// observe different aggregates.  For metrics that must agree on every
  /// rank, use the per-rank snapshot below and all_reduce the deltas.
  [[nodiscard]] stats_snapshot snapshot() const;

  /// Counters of `rank`'s own sends only.  A rank's counters are written
  /// exclusively from that rank's thread, so between two barriers this view
  /// is exact and deterministic for the bracketing rank.
  [[nodiscard]] stats_snapshot snapshot(int rank) const;

 private:
  int nranks_;
  config cfg_;

  std::vector<mailbox> mailboxes_;
  std::vector<rank_counters> counters_;

  std::atomic<std::int64_t> in_flight_{0};
  std::atomic<std::int64_t> idle_ranks_{0};
  std::atomic<std::uint64_t> done_generation_{0};

  // Exit rendezvous state (a reusable generation barrier with abort support).
  std::mutex exit_mutex_;
  std::condition_variable exit_cv_;
  int exit_count_ = 0;
  std::uint64_t exit_generation_ = 0;

  std::atomic<bool> aborted_{false};
  std::exception_ptr first_error_;
  std::mutex error_mutex_;
};

}  // namespace tripoll::comm
