// transport.hpp -- the pluggable rank-to-rank byte-moving substrate.
//
// The transport plays the role MPI plays for YGM: it moves opaque byte
// buffers between ranks and provides the collective rendezvous needed for
// barriers.  All cross-rank communication in this repository flows through
// here, so its counters are the ground truth for the communication-volume
// results (Table 4 reproduction).
//
// This header defines only the abstract backend interface; concrete
// backends live next to it:
//   * inproc_transport.hpp  -- the original threads-as-ranks backend: every
//     rank is a thread of one process and delivery is a mailbox move.
//   * socket_transport.hpp  -- one OS process per rank, connected over
//     TCP/Unix-domain sockets with length-prefixed frames and a
//     coordinator-based distributed termination detector.
//
// The communicator is written against this interface alone, so backends are
// interchangeable under every survey, baseline and bench.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <exception>
#include <mutex>
#include <stdexcept>

#include "comm/config.hpp"
#include "comm/mailbox.hpp"
#include "comm/stats.hpp"

namespace tripoll::comm {

/// Thrown on ranks that observe another rank's failure so the whole run
/// unwinds instead of deadlocking in a barrier.  Carries the originating
/// rank's error text when the backend transported one (socket ABORT frame).
class aborted_error : public std::runtime_error {
 public:
  aborted_error() : std::runtime_error("tripoll::comm run aborted by another rank") {}
  explicit aborted_error(const std::string& remote_what)
      : std::runtime_error("aborted by peer rank: " + remote_what) {}
};

/// Abstract byte-moving backend.  An instance represents this process's view
/// of the whole job: the inproc backend hosts every rank, the socket backend
/// hosts exactly one.  Methods taking a `rank` argument may only be called
/// for ranks hosted in this process, and only from that rank's thread.
class transport {
 public:
  virtual ~transport() = default;

  transport(const transport&) = delete;
  transport& operator=(const transport&) = delete;

  [[nodiscard]] int nranks() const noexcept { return nranks_; }
  [[nodiscard]] const config& cfg() const noexcept { return cfg_; }

  // --- data plane ---------------------------------------------------------

  /// Deliver a flushed buffer from `src` (a rank hosted here) to `dst` (any
  /// rank).  `n_messages` is the number of logical RPCs inside (stats only).
  virtual void deliver(int src, int dst, serial::byte_buffer payload,
                       std::uint64_t n_messages) = 0;

  /// Non-blocking receive for rank `rank`.
  virtual bool try_receive(int rank, mailbox::envelope& out) = 0;

  [[nodiscard]] virtual bool inbox_empty(int rank) const = 0;

  /// Block until rank `rank`'s inbox is non-empty or `timeout` elapses; used
  /// by the barrier's deep-backoff stage instead of a blind sleep.
  virtual void wait_for_inbox(int rank, std::chrono::microseconds timeout) = 0;

  /// Called by a rank after it fully processed one delivered buffer
  /// (including running all handlers inside it).  The termination detector
  /// balances these acknowledgements against deliveries.
  virtual void acknowledge_processed(int rank) = 0;

  // --- termination-detection barrier --------------------------------------
  // Ranks entering barrier `generation` alternate between announcing
  // themselves idle and retracting to process late arrivals; the barrier
  // completes when every rank is idle and no buffer is in flight anywhere.
  // How quiescence is established is backend-specific: shared-memory
  // counters in-process, a coordinator-run counting protocol over sockets.

  virtual void announce_idle(int rank, std::uint64_t generation) = 0;
  virtual void retract_idle(int rank) = 0;

  /// Poll step of the barrier loop: advance the backend's detection protocol
  /// and return true once `generation` is known globally quiescent.
  [[nodiscard]] virtual bool poll_barrier(int rank, std::uint64_t generation) = 0;

  /// Post-quiescence rendezvous hook: backends that reuse shared barrier
  /// state (inproc) hold every rank here until the state is reset for the
  /// next generation.  Throws aborted_error if the run aborted meanwhile.
  virtual void exit_rendezvous(int rank) = 0;

  // --- failure propagation -------------------------------------------------

  /// Record the first exception, mark the run aborted, and wake/notify every
  /// rank (remote ranks hear about it via backend messages or teardown).
  virtual void abort_run(std::exception_ptr error) noexcept = 0;

  [[nodiscard]] bool aborted() const noexcept {
    return aborted_.load(std::memory_order_acquire);
  }

  void throw_if_aborted() const {
    if (aborted()) throw aborted_error{};
  }

  [[nodiscard]] std::exception_ptr first_error() const noexcept { return first_error_; }

  // --- stats ----------------------------------------------------------------

  /// Monotone send/execute counters of a rank hosted in this process.
  [[nodiscard]] virtual rank_counters& counters(int rank) = 0;

  /// Aggregate counters over the ranks hosted in THIS process: the whole job
  /// for the inproc backend, one rank for the socket backend.  Racy
  /// point-in-time view; for metrics that must agree everywhere, all-reduce
  /// per-rank snapshot deltas instead (communicator::global_stats()).
  [[nodiscard]] virtual stats_snapshot snapshot() const = 0;

  /// Counters of `rank`'s own sends only.  A rank's counters are written
  /// exclusively from that rank's thread, so between two barriers this view
  /// is exact and deterministic for the bracketing rank.
  [[nodiscard]] virtual stats_snapshot snapshot(int rank) const = 0;

 protected:
  transport(int nranks, config cfg) : nranks_(nranks), cfg_(cfg) {
    if (nranks <= 0) throw std::invalid_argument("transport: nranks must be positive");
  }

  /// Latch the first error and set the aborted flag (backend-agnostic part
  /// of abort_run).  Returns true when this call was the first abort.
  bool record_abort(std::exception_ptr error) noexcept {
    bool first = false;
    {
      const std::lock_guard lock(error_mutex_);
      if (!first_error_) {
        first_error_ = error;
        first = true;
      }
    }
    aborted_.store(true, std::memory_order_release);
    return first;
  }

  int nranks_;
  config cfg_;

 private:
  std::atomic<bool> aborted_{false};
  std::exception_ptr first_error_;
  std::mutex error_mutex_;
};

}  // namespace tripoll::comm
