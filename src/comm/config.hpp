// config.hpp -- tunables for the simulated distributed runtime.
#pragma once

#include <cstddef>

namespace tripoll::comm {

/// Runtime configuration.  Defaults mirror the message-buffering regime the
/// paper describes (Sec. 4.1.1): small RPCs are aggregated into buffers of a
/// few KiB before they ever reach the transport.
struct config {
  /// Per-destination send-buffer flush ceiling in bytes.  Larger buffers
  /// amortize per-message overhead but delay delivery; the ablation bench
  /// `bench_ablation_buffering` sweeps this knob.
  std::size_t buffer_capacity = 16 * 1024;

  /// Floor of the adaptive byte watermark.  A destination's effective flush
  /// threshold starts here, doubles toward `buffer_capacity` each time the
  /// buffer fills under sustained traffic (amortizing transport overhead),
  /// and halves back toward this floor at every barrier so trickle traffic
  /// is delivered promptly.
  std::size_t flush_min_bytes = 2 * 1024;

  /// Message-count watermark: a destination buffer holding this many
  /// logical RPCs flushes regardless of byte size, bounding the latency of
  /// tiny-message floods.
  std::size_t flush_message_watermark = 4096;

  /// Adaptive byte watermark on/off.  Off pins the threshold to
  /// `buffer_capacity` (the pre-adaptive fixed-size behavior).
  bool adaptive_flush = true;

  /// Per-tier cap of the per-rank buffer_pool that recycles transport
  /// payload storage.  0 disables pooling.
  std::size_t pool_buffers_per_tier = 16;

  /// How many async() calls a rank performs between opportunistic polls of
  /// its own inbox.  Keeps memory bounded when a rank is send-heavy.
  std::size_t poll_every = 64;

  /// Maximum number of inbound transport buffers drained per opportunistic
  /// poll (a full drain happens at barriers).
  std::size_t drain_batch = 16;

  /// Watchdog: a rank waiting in a barrier longer than this without global
  /// progress aborts the run with a diagnostic instead of hanging forever.
  /// The usual cause is a mismatched collective (some rank skipped a
  /// barrier/all_reduce/gather_all that others entered).  0 disables.
  double barrier_timeout_seconds = 300.0;
};

}  // namespace tripoll::comm
