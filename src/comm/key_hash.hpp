// key_hash.hpp -- deterministic key hashing for ownership decisions.
//
// Distributed containers place a key at `hash(key) % nranks`.  The hash must
// be identical on every rank; std::hash gives no such guarantee across
// processes, so container keys route through these explicit hashes (paper
// Sec. 4.1.4: "stores key-value pairs at deterministic MPI ranks based on a
// hash of the keys").
#pragma once

#include <concepts>
#include <cstdint>
#include <string>
#include <string_view>
#include <tuple>
#include <utility>

#include "serial/hash.hpp"

namespace tripoll::comm {

template <typename Key>
struct key_hash;  // primary template intentionally undefined

template <std::integral K>
struct key_hash<K> {
  [[nodiscard]] std::uint64_t operator()(K k) const noexcept {
    return serial::splitmix64(static_cast<std::uint64_t>(k));
  }
};

template <>
struct key_hash<std::string> {
  [[nodiscard]] std::uint64_t operator()(std::string_view s) const noexcept {
    return serial::splitmix64(serial::fnv1a(s));
  }
};

template <typename A, typename B>
struct key_hash<std::pair<A, B>> {
  [[nodiscard]] std::uint64_t operator()(const std::pair<A, B>& p) const noexcept {
    return serial::hash_combine(key_hash<A>{}(p.first), key_hash<B>{}(p.second));
  }
};

template <typename... Ts>
struct key_hash<std::tuple<Ts...>> {
  [[nodiscard]] std::uint64_t operator()(const std::tuple<Ts...>& t) const noexcept {
    std::uint64_t seed = 0x51ED270B9A3F2A6DULL;
    std::apply(
        [&seed](const Ts&... es) {
          ((seed = serial::hash_combine(seed, key_hash<Ts>{}(es))), ...);
        },
        t);
    return seed;
  }
};

}  // namespace tripoll::comm
