// mailbox.hpp -- per-rank inbox of flushed transport buffers.
//
// Sharded by source rank so concurrent producers (peer rank threads in the
// inproc backend, the receiver thread in the socket backend) do not contend
// on a single mutex: each source maps to one shard with its own lock and
// FIFO, which preserves the per-source delivery order the runtime
// guarantees while making cross-source pushes independent.  A single atomic
// element count keeps empty()/size() lock-free for the barrier's
// quiescence checks, and a condition variable lets the consumer block for
// arrivals instead of spin-polling.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>

#include "serial/buffer.hpp"

namespace tripoll::comm {

/// A mailbox holds opaque byte buffers destined for one rank.  Producers are
/// any thread; the consumer is the owning rank's thread (single consumer).
class mailbox {
 public:
  /// A flushed transport buffer and its source rank.  The payload's storage
  /// block is pool-recycled by the consumer after draining.
  struct envelope {
    serial::byte_buffer payload;
    int source = 0;
  };

  /// Shard fan-out.  Sources map to shards by `source % kShards`, so at up
  /// to kShards concurrent producers pushes never share a lock.
  static constexpr std::size_t kShards = 8;

  void push(envelope e) {
    // Count before inserting: empty() may briefly over-report (conservative
    // for the barrier -- a rank re-checks rather than declaring idle) but
    // never under-reports a message that is already enqueued.  seq_cst on
    // the count_/waiters_ pair: the producer's count_ store must be ordered
    // before its waiters_ load (and the consumer's waiters_ store before
    // its count_ load) or a Dekker-style reordering lets both sides read
    // stale zeros and the push skips a wakeup the consumer is waiting for.
    count_.fetch_add(1, std::memory_order_seq_cst);
    auto& s = shards_[static_cast<std::size_t>(e.source) % kShards];
    {
      const std::lock_guard lock(s.mutex);
      s.queue.push_back(std::move(e));
    }
    if (waiters_.load(std::memory_order_seq_cst) != 0) {
      // Acquire/release the wait mutex so a consumer between its predicate
      // check and wait() cannot miss this notification.
      { const std::lock_guard lock(wait_mutex_); }
      wait_cv_.notify_all();
    }
  }

  /// Non-blocking pop; returns false when the mailbox is empty.  Rotates
  /// through the shards for cross-source fairness; order within one source
  /// is FIFO.
  bool try_pop(envelope& out) {
    if (count_.load(std::memory_order_acquire) == 0) return false;
    for (std::size_t i = 0; i < kShards; ++i) {
      auto& s = shards_[(cursor_ + i) % kShards];
      const std::lock_guard lock(s.mutex);
      if (s.queue.empty()) continue;
      out = std::move(s.queue.front());
      s.queue.pop_front();
      cursor_ = (cursor_ + i) % kShards;  // keep draining this source's burst
      count_.fetch_sub(1, std::memory_order_release);
      return true;
    }
    // A producer has incremented the count but not finished inserting yet;
    // report empty and let the caller poll again.
    return false;
  }

  /// Block until the mailbox is (probably) non-empty or `timeout` elapses;
  /// returns true when messages are available.  Replaces the barrier loop's
  /// blind sleep: a push wakes the consumer immediately.
  bool wait_nonempty(std::chrono::microseconds timeout) {
    if (count_.load(std::memory_order_acquire) != 0) return true;
    std::unique_lock lock(wait_mutex_);
    waiters_.fetch_add(1, std::memory_order_seq_cst);
    const bool ready = wait_cv_.wait_for(lock, timeout, [&] {
      return count_.load(std::memory_order_seq_cst) != 0;
    });
    waiters_.fetch_sub(1, std::memory_order_seq_cst);
    return ready;
  }

  [[nodiscard]] bool empty() const {
    return count_.load(std::memory_order_acquire) == 0;
  }

  [[nodiscard]] std::size_t size() const {
    return count_.load(std::memory_order_acquire);
  }

 private:
  struct alignas(64) shard {
    std::mutex mutex;
    std::deque<envelope> queue;
  };

  std::array<shard, kShards> shards_;
  std::atomic<std::size_t> count_{0};
  std::size_t cursor_ = 0;  ///< consumer-only rotation state

  std::mutex wait_mutex_;
  std::condition_variable wait_cv_;
  std::atomic<int> waiters_{0};
};

}  // namespace tripoll::comm
