// mailbox.hpp -- per-rank inbox of flushed transport buffers.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>

#include "serial/buffer.hpp"

namespace tripoll::comm {

/// A mailbox holds opaque byte buffers destined for one rank.  Producers are
/// any rank (under the mutex); the consumer is the owning rank's thread.
class mailbox {
 public:
  /// A flushed transport buffer and its source rank.  The payload's storage
  /// block is pool-recycled by the consumer after draining.
  struct envelope {
    serial::byte_buffer payload;
    int source = 0;
  };

  void push(envelope e) {
    {
      const std::lock_guard lock(mutex_);
      queue_.push_back(std::move(e));
    }
    cv_.notify_one();
  }

  /// Non-blocking pop; returns false when the mailbox is empty.
  bool try_pop(envelope& out) {
    const std::lock_guard lock(mutex_);
    if (queue_.empty()) return false;
    out = std::move(queue_.front());
    queue_.pop_front();
    return true;
  }

  [[nodiscard]] bool empty() const {
    const std::lock_guard lock(mutex_);
    return queue_.empty();
  }

  [[nodiscard]] std::size_t size() const {
    const std::lock_guard lock(mutex_);
    return queue_.size();
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<envelope> queue_;
};

}  // namespace tripoll::comm
