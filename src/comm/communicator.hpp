// communicator.hpp -- per-rank endpoint of the simulated distributed runtime.
//
// Mirrors the YGM API surface the paper relies on (Sec. 4.1):
//   * async(dest, handler, args...)  -- buffered fire-and-forget RPC
//   * barrier()                      -- flush + quiescence-based termination
//   * all_reduce/broadcast/all_gather -- collectives built on async itself
//   * a distributed-object registry so handlers can address the destination
//     rank's instance of a collectively-constructed container (the ygm_ptr
//     equivalent).
//
// One communicator belongs to exactly one rank thread; only that thread may
// call its methods.  Handlers run on the destination rank's thread, giving
// the single-writer discipline the vertex-centric algorithms assume.  (The
// one sanctioned relaxation -- intra-rank survey workers delivering staged
// buffers straight to the thread-safe transport, never through the
// communicator -- is specified in docs/THREADING.md.)
#pragma once

#include <algorithm>
#include <any>
#include <cassert>
#include <cstdint>
#include <memory>
#include <optional>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "comm/config.hpp"
#include "comm/handler_registry.hpp"
#include "comm/stats.hpp"
#include "comm/transport.hpp"
#include "serial/buffer.hpp"
#include "serial/hash.hpp"
#include "serial/serialize.hpp"

namespace tripoll::comm {

/// Serializable reference to a collectively-constructed object.  All ranks
/// construct distributed objects in the same SPMD order, so the dense id
/// resolves to the destination rank's own instance when it arrives.
template <typename T>
struct dist_handle {
  std::uint32_t id = 0;
};

class communicator {
 public:
  communicator(transport& t, int rank)
      : transport_(&t),
        rank_(rank),
        send_buffers_(static_cast<std::size_t>(t.nranks())),
        pending_messages_(static_cast<std::size_t>(t.nranks()), 0),
        flush_thresholds_(static_cast<std::size_t>(t.nranks()),
                          initial_flush_threshold(t.cfg())),
        pool_(t.cfg().pool_buffers_per_tier) {}

  communicator(const communicator&) = delete;
  communicator& operator=(const communicator&) = delete;

  [[nodiscard]] int rank() const noexcept { return rank_; }
  [[nodiscard]] int size() const noexcept { return transport_->nranks(); }
  [[nodiscard]] bool rank0() const noexcept { return rank_ == 0; }
  [[nodiscard]] const config& cfg() const noexcept { return transport_->cfg(); }

  /// Owning rank for a hashed key (the paper's random/cyclic partitioning).
  [[nodiscard]] int owner(std::uint64_t key) const noexcept {
    return static_cast<int>(serial::splitmix64(key) % static_cast<std::uint64_t>(size()));
  }

  // --- asynchronous RPC ----------------------------------------------------

  /// Fire-and-forget: enqueue `Handler{}(dest_comm, args...)` for execution
  /// on rank `dest`.  Handler must be a stateless (empty) callable; state
  /// travels through `args`, which must be serializable.  Delivery order
  /// between different destinations is unspecified; messages to one
  /// destination are delivered in send order.
  template <typename Handler, typename... Args>
  void async(int dest, Handler /*handler*/, const Args&... args) {
    static_assert(std::is_empty_v<Handler>,
                  "RPC handlers must be stateless; pass state as arguments");
    assert(dest >= 0 && dest < size());
    transport_->throw_if_aborted();

    const std::uint32_t id = detail::handler_id<Handler, std::decay_t<Args>...>();
    auto& buf = send_buffers_[static_cast<std::size_t>(dest)];
    serial::writer w(buf);
    w.write_varint(id);
    w(args...);
    const std::uint64_t pending = ++pending_messages_[static_cast<std::size_t>(dest)];

    // Coalesce until either watermark trips: bytes (adaptive, see below) or
    // message count (bounds latency for floods of tiny RPCs).
    if (buf.size() >= flush_thresholds_[static_cast<std::size_t>(dest)]) {
      flush_grow(dest);
    } else if (pending >= cfg().flush_message_watermark) {
      flush(dest);
    }
    maybe_poll();
  }

  /// Send the same RPC to every rank (including self).
  template <typename Handler, typename... Args>
  void async_bcast(Handler h, const Args&... args) {
    for (int dest = 0; dest < size(); ++dest) async(dest, h, args...);
  }

  /// Flush all per-destination send buffers to the transport.
  void flush_all() {
    for (int dest = 0; dest < size(); ++dest) flush(dest);
  }

  /// Drain and execute everything currently in this rank's inbox.
  void process_incoming() { drain(SIZE_MAX); }

  /// Pin the payload currently being drained so work referencing it
  /// (wire_spans, string_views) can outlive the handler -- the survey
  /// engine's parallel mode hands intersection tasks to worker threads this
  /// way.  Only callable from inside a handler.  The payload's heap block
  /// never moves (byte_buffer moves transfer the pointer), so raw pointers
  /// taken before the call stay valid; a stolen payload skips the buffer
  /// pool and is freed when the last shared_ptr drops.
  [[nodiscard]] std::shared_ptr<const serial::byte_buffer> share_current_payload();

  // --- barrier ---------------------------------------------------------------

  /// Full YGM-style barrier: completes only when every rank has entered the
  /// barrier, all buffers (including those generated by handlers running
  /// inside the barrier) have been flushed, delivered and processed.
  void barrier();

  // --- collectives (built on async; must be called collectively) -----------

  template <typename T, typename Op>
  [[nodiscard]] T all_reduce(const T& value, Op op);

  /// Sum reduction convenience.
  template <typename T>
  [[nodiscard]] T all_reduce_sum(const T& value) {
    return all_reduce(value, [](const T& a, const T& b) { return a + b; });
  }

  template <typename T>
  [[nodiscard]] T all_reduce_min(const T& value) {
    return all_reduce(value, [](const T& a, const T& b) { return a < b ? a : b; });
  }

  template <typename T>
  [[nodiscard]] T all_reduce_max(const T& value) {
    return all_reduce(value, [](const T& a, const T& b) { return a < b ? b : a; });
  }

  /// Every rank receives the vector of all ranks' values, indexed by rank.
  template <typename T>
  [[nodiscard]] std::vector<T> all_gather(const T& value);

  /// Value from `root` distributed to every rank.
  template <typename T>
  [[nodiscard]] T broadcast(const T& value, int root);

  // --- distributed-object registry ------------------------------------------

  /// Register a rank-local object; returns the dense id shared (by SPMD
  /// construction order) with every other rank's twin instance.
  template <typename T>
  dist_handle<T> register_object(T& object) {
    objects_.push_back(static_cast<void*>(&object));
    return dist_handle<T>{static_cast<std::uint32_t>(objects_.size() - 1)};
  }

  template <typename T>
  void deregister_object(dist_handle<T> handle) noexcept {
    if (handle.id < objects_.size()) objects_[handle.id] = nullptr;
  }

  /// Resolve a handle to this rank's instance.
  template <typename T>
  [[nodiscard]] T& resolve(dist_handle<T> handle) {
    assert(handle.id < objects_.size() && objects_[handle.id] != nullptr);
    return *static_cast<T*>(objects_[handle.id]);
  }

  // --- stats -----------------------------------------------------------------

  /// Monotone counters aggregated over the ranks hosted in this process:
  /// the whole job under the inproc backend, only this rank under the
  /// socket backend.  Point-in-time and racy across ranks -- for metrics
  /// that must be identical everywhere use local_stats() deltas with
  /// all_reduce (or global_stats()).
  [[nodiscard]] stats_snapshot stats() const { return transport_->snapshot(); }

  /// Collective: global counter totals as an all-reduced sum of every
  /// rank's own counters.  Identical on every rank and backend-agnostic,
  /// unlike stats(), which reads whatever shared memory happens to be
  /// visible locally.  (The reduction's own traffic is not included in the
  /// returned totals but does advance the underlying counters.)
  [[nodiscard]] stats_snapshot global_stats() {
    return all_reduce(local_stats(),
                      [](const stats_snapshot& a, const stats_snapshot& b) { return a + b; });
  }

  /// This rank's own send counters.  Written only from this rank's thread,
  /// so a (snapshot, barrier, work, barrier, snapshot) bracket yields an
  /// exact, deterministic per-rank delta; all_reduce_sum the deltas for
  /// global per-phase totals that agree on every rank.
  [[nodiscard]] stats_snapshot local_stats() const {
    return transport_->snapshot(rank_);
  }

  [[nodiscard]] transport& underlying_transport() noexcept { return *transport_; }

  /// Effective adaptive byte watermark for one destination (observability
  /// for tests and the buffering ablation).
  [[nodiscard]] std::size_t flush_threshold(int dest) const noexcept {
    return flush_thresholds_[static_cast<std::size_t>(dest)];
  }

  /// This rank's payload-storage pool (telemetry only).
  [[nodiscard]] const serial::buffer_pool& pool() const noexcept { return pool_; }

 private:
  [[nodiscard]] static std::size_t initial_flush_threshold(const config& c) noexcept {
    return c.adaptive_flush ? std::min(c.flush_min_bytes, c.buffer_capacity)
                            : c.buffer_capacity;
  }

  void flush(int dest) {
    auto& buf = send_buffers_[static_cast<std::size_t>(dest)];
    if (buf.empty()) return;
    const std::uint64_t n = pending_messages_[static_cast<std::size_t>(dest)];
    pending_messages_[static_cast<std::size_t>(dest)] = 0;
    transport_->deliver(rank_, dest, buf.release(), n);
    // Re-prime from recycled storage when available; otherwise the buffer
    // grows lazily on the next append.
    pool_.try_reuse(buf, flush_thresholds_[static_cast<std::size_t>(dest)]);
  }

  /// Byte-watermark flush: under sustained traffic the threshold doubles
  /// toward buffer_capacity so bigger buffers amortize transport overhead.
  void flush_grow(int dest) {
    flush(dest);
    if (!cfg().adaptive_flush) return;
    auto& threshold = flush_thresholds_[static_cast<std::size_t>(dest)];
    threshold = std::min(threshold * 2, cfg().buffer_capacity);
  }

  /// Barrier-time decay: thresholds halve back toward the floor so a phase
  /// of trickle traffic after a flood is delivered promptly again.
  void decay_flush_thresholds() {
    if (!cfg().adaptive_flush) return;
    const std::size_t floor_bytes = initial_flush_threshold(cfg());
    for (auto& threshold : flush_thresholds_) {
      threshold = std::max(threshold / 2, floor_bytes);
    }
  }

  /// Execute up to `max_buffers` delivered buffers.
  void drain(std::size_t max_buffers);

  void maybe_poll() {
    if (in_drain_) return;  // no recursive draining from inside a handler
    if (++ops_since_poll_ < cfg().poll_every) return;
    ops_since_poll_ = 0;
    drain(cfg().drain_batch);
  }

  /// Exponential-ish backoff for the barrier wait loop: spin, then yield,
  /// then block on the inbox with a bounded timeout (wakes immediately on
  /// message arrival; done/abort flips are picked up at timeout).
  void backoff(unsigned& spins);

  transport* transport_;
  int rank_;

  std::vector<serial::byte_buffer> send_buffers_;
  std::vector<std::uint64_t> pending_messages_;
  std::vector<std::size_t> flush_thresholds_;
  serial::buffer_pool pool_;
  std::size_t ops_since_poll_ = 0;
  bool in_drain_ = false;

  // Payload-stealing slots for share_current_payload(): the envelope being
  // drained, and (lazily) its shared owner once a handler steals it.
  serial::byte_buffer* current_payload_ = nullptr;
  std::shared_ptr<const serial::byte_buffer> current_payload_shared_;

  std::uint64_t barrier_generation_ = 0;

  std::vector<void*> objects_;

  // Collective scratch (single-writer: handler runs on this rank's thread).
  std::any collective_accumulator_;
  std::any collective_result_;

  template <typename T, typename Op>
  struct reduce_contribute_handler;
  template <typename T>
  struct collective_set_result_handler;
  template <typename T>
  struct gather_contribute_handler;

  template <typename T>
  [[nodiscard]] std::optional<T>& accumulator_slot() {
    if (!collective_accumulator_.has_value() ||
        std::any_cast<std::optional<T>>(&collective_accumulator_) == nullptr) {
      collective_accumulator_ = std::optional<T>{};
    }
    return *std::any_cast<std::optional<T>>(&collective_accumulator_);
  }

  template <typename T>
  [[nodiscard]] std::optional<T>& result_slot() {
    if (!collective_result_.has_value() ||
        std::any_cast<std::optional<T>>(&collective_result_) == nullptr) {
      collective_result_ = std::optional<T>{};
    }
    return *std::any_cast<std::optional<T>>(&collective_result_);
  }
};

// ---------------------------------------------------------------------------
// Collective implementations.
// ---------------------------------------------------------------------------

template <typename T, typename Op>
struct communicator::reduce_contribute_handler {
  void operator()(communicator& c, const T& v) {
    auto& slot = c.accumulator_slot<T>();
    if (!slot.has_value()) {
      slot = v;
    } else {
      slot = Op{}(*slot, v);
    }
  }
};

template <typename T>
struct communicator::collective_set_result_handler {
  void operator()(communicator& c, const T& v) { c.result_slot<T>() = v; }
};

template <typename T>
struct communicator::gather_contribute_handler {
  void operator()(communicator& c, int from, const T& v) {
    auto& slot = c.accumulator_slot<std::vector<std::pair<int, T>>>();
    if (!slot.has_value()) slot.emplace();
    slot->emplace_back(from, v);
  }
};

template <typename T, typename Op>
T communicator::all_reduce(const T& value, Op op) {
  static_assert(std::is_empty_v<Op>,
                "reduction operators must be stateless (captureless lambda or "
                "empty functor)");
  async(0, reduce_contribute_handler<T, Op>{}, value);
  barrier();
  if (rank0()) {
    auto& slot = accumulator_slot<T>();
    assert(slot.has_value());
    const T result = *slot;
    slot.reset();
    async_bcast(collective_set_result_handler<T>{}, result);
  }
  barrier();
  auto& out = result_slot<T>();
  assert(out.has_value());
  T result = std::move(*out);
  out.reset();
  (void)op;
  return result;
}

template <typename T>
std::vector<T> communicator::all_gather(const T& value) {
  async(0, gather_contribute_handler<T>{}, rank_, value);
  barrier();
  if (rank0()) {
    auto& slot = accumulator_slot<std::vector<std::pair<int, T>>>();
    assert(slot.has_value());
    std::vector<T> ordered(static_cast<std::size_t>(size()));
    for (auto& [from, v] : *slot) ordered[static_cast<std::size_t>(from)] = std::move(v);
    slot.reset();
    async_bcast(collective_set_result_handler<std::vector<T>>{}, ordered);
  }
  barrier();
  auto& out = result_slot<std::vector<T>>();
  assert(out.has_value());
  std::vector<T> result = std::move(*out);
  out.reset();
  return result;
}

template <typename T>
T communicator::broadcast(const T& value, int root) {
  if (rank_ == root) {
    async_bcast(collective_set_result_handler<T>{}, value);
  }
  barrier();
  auto& out = result_slot<T>();
  assert(out.has_value());
  T result = std::move(*out);
  out.reset();
  return result;
}

}  // namespace tripoll::comm
