#include "comm/communicator.hpp"

#include <chrono>
#include <stdexcept>
#include <thread>

namespace tripoll::comm {

void communicator::drain(std::size_t max_buffers) {
  if (in_drain_) return;
  in_drain_ = true;
  // Resolve the dispatch table once for the whole drain: dispatch is then an
  // indexed load off `thunks`.  `published` can lag a concurrent
  // registration on another rank, so an id past it re-checks via the slow
  // path (which reloads the count) before declaring the buffer corrupt.
  auto& table = detail::thunk_table::instance();
  const detail::thunk_fn* thunks = table.base();
  std::uint32_t published = table.published();
  mailbox::envelope env;
  std::size_t processed = 0;
  auto& counters = transport_->counters(rank_);
  while (processed < max_buffers && transport_->try_receive(rank_, env)) {
    serial::buffer_reader rd(env.payload.data(), env.payload.size());
    serial::reader ar(rd);
    std::uint64_t handlers = 0;
    current_payload_ = &env.payload;  // handlers may share_current_payload()
    while (!rd.exhausted()) {
      const auto handler = static_cast<std::uint32_t>(ar.read_varint());
      if (handler >= published) [[unlikely]] {
        (void)table.lookup(handler);  // throws if genuinely unknown
        published = table.published();
      }
      thunks[handler](*this, rd);
      ++handlers;
    }
    current_payload_ = nullptr;
    counters.handlers_run.fetch_add(handlers, std::memory_order_relaxed);
    // Only acknowledge after every handler inside the buffer has run; any
    // sends they performed sit in our send buffers and will be flushed
    // before this rank can declare itself idle again.
    transport_->acknowledge_processed(rank_);
    if (current_payload_shared_) {
      // A handler stole the payload: its block now belongs to the shared
      // owner (the reader's raw pointers stayed valid -- the block never
      // moved).  Drop our reference instead of recycling.
      current_payload_shared_.reset();
    } else {
      // The payload's storage block joins this rank's pool and backs a
      // future outbound buffer; pools redistribute blocks across ranks.
      pool_.recycle(std::move(env.payload));
    }
    ++processed;
  }
  in_drain_ = false;
}

std::shared_ptr<const serial::byte_buffer> communicator::share_current_payload() {
  if (current_payload_shared_) return current_payload_shared_;
  if (current_payload_ == nullptr) {
    throw std::logic_error(
        "share_current_payload: no payload is being drained (only handlers "
        "may steal the in-flight payload)");
  }
  current_payload_shared_ =
      std::make_shared<const serial::byte_buffer>(std::move(*current_payload_));
  return current_payload_shared_;
}

void communicator::backoff(unsigned& spins) {
  ++spins;
  if (spins < 64) {
    // busy spin
  } else if (spins < 256) {
    std::this_thread::yield();
  } else {
    transport_->wait_for_inbox(rank_, std::chrono::microseconds(50));
  }
}

void communicator::barrier() {
  transport_->throw_if_aborted();
  decay_flush_thresholds();
  flush_all();
  drain(SIZE_MAX);
  flush_all();  // handlers executed in the drain may have buffered new sends

  const std::uint64_t my_generation = ++barrier_generation_;
  transport_->announce_idle(rank_, my_generation);

  unsigned spins = 0;
  auto wait_start = std::chrono::steady_clock::now();
  const double timeout = cfg().barrier_timeout_seconds;
  while (!transport_->poll_barrier(rank_, my_generation)) {
    if (transport_->aborted()) break;  // fall through to rendezvous-abort path
    if (!transport_->inbox_empty(rank_)) {
      transport_->retract_idle(rank_);
      drain(SIZE_MAX);
      flush_all();
      transport_->announce_idle(rank_, my_generation);
      spins = 0;
      wait_start = std::chrono::steady_clock::now();  // arrivals are progress
      continue;
    }
    backoff(spins);
    if (timeout > 0.0 && spins % 1024 == 0) {
      const double waited = std::chrono::duration<double>(
          std::chrono::steady_clock::now() - wait_start).count();
      if (waited > timeout) {
        transport_->abort_run(std::make_exception_ptr(std::runtime_error(
            "barrier watchdog: no global progress for " +
            std::to_string(waited) +
            "s -- likely a mismatched collective (a rank skipped a "
            "barrier/all_reduce/gather_all that others entered)")));
      }
    }
  }

  transport_->throw_if_aborted();
  transport_->exit_rendezvous(rank_);
}

}  // namespace tripoll::comm
