// runtime.hpp -- SPMD launchers for the distributed runtime.
//
// Thread-spawn mode (`runtime::run`) plays the role of mpirun for the
// inproc backend: it spawns `n` rank threads over one inproc_transport,
// hands each a communicator, executes `rank_main(comm)` on every rank,
// performs a final implicit barrier (so fire-and-forget messages in flight
// at return are still delivered), and joins.  The first exception thrown on
// any rank aborts the whole run and is rethrown to the caller.
//
// Process-spawn mode runs ranks as real OS processes over the socket
// backend:
//   * `run_socket_rank` executes THIS process as one rank of an existing
//     rendezvous (options usually from TRIPOLL_* env vars) -- this is what
//     `tripoll_cli --backend socket` uses when an external launcher starts
//     N copies.
//   * `run_socket_local` is the self-contained local launcher: it forks
//     `n` child processes connected over Unix-domain sockets in a fresh
//     rendezvous directory, waits for all of them, and throws if any rank
//     failed.  Because the children are forked after `rank_main` exists,
//     no argv/env plumbing is needed -- but each child is a genuinely
//     separate process: no memory is shared and every RPC crosses a real
//     socket.
#pragma once

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <dirent.h>
#include <exception>
#include <functional>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "comm/communicator.hpp"
#include "comm/config.hpp"
#include "comm/inproc_transport.hpp"
#include "comm/socket_transport.hpp"
#include "comm/stats.hpp"
#include "comm/transport.hpp"

namespace tripoll::comm {

/// Which byte-moving substrate a run uses.
enum class backend_kind { inproc, socket };

[[nodiscard]] inline const char* backend_name(backend_kind b) noexcept {
  return b == backend_kind::inproc ? "inproc" : "socket";
}

namespace detail {

/// Fresh Unix-socket rendezvous directory for a forked local run.
[[nodiscard]] inline std::string make_rendezvous_dir() {
  const char* base = std::getenv("TMPDIR");
  std::string tmpl = std::string(base && *base ? base : "/tmp") + "/tripoll-sock-XXXXXX";
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  if (::mkdtemp(buf.data()) == nullptr) {
    throw std::runtime_error("runtime: mkdtemp failed: " + std::string(std::strerror(errno)));
  }
  return std::string(buf.data());
}

inline void remove_rendezvous_dir(const std::string& dir) noexcept {
  if (DIR* d = ::opendir(dir.c_str())) {
    while (dirent* e = ::readdir(d)) {
      const std::string name = e->d_name;
      if (name == "." || name == "..") continue;
      ::unlink((dir + "/" + name).c_str());
    }
    ::closedir(d);
  }
  ::rmdir(dir.c_str());
}

/// Wait for every child; throw a summary if any rank failed.  Exit code 3
/// marks a rank that aborted because ANOTHER rank failed (its stderr stays
/// quiet), so the summary points at the root cause.
inline void wait_for_children(const std::vector<pid_t>& pids) {
  std::string primary;    // ranks that failed in their own right
  int secondary_aborts = 0;  // ranks that unwound because a peer failed
  for (std::size_t r = 0; r < pids.size(); ++r) {
    int status = 0;
    pid_t waited;
    while ((waited = ::waitpid(pids[r], &status, 0)) < 0 && errno == EINTR) {
    }
    if (waited < 0) {
      // waitpid itself failed (e.g. ECHILD under SIG_IGN'd SIGCHLD): the
      // rank's outcome is unknown -- report it, never assume success.
      if (!primary.empty()) primary += ", ";
      primary += "rank " + std::to_string(r) +
                 " unwaitable: " + std::string(std::strerror(errno));
      continue;
    }
    int code = -1;
    if (WIFEXITED(status)) code = WEXITSTATUS(status);
    if (code == 0) continue;
    if (code == 3) {
      ++secondary_aborts;
      continue;
    }
    if (!primary.empty()) primary += ", ";
    if (WIFSIGNALED(status)) {
      primary += "rank " + std::to_string(r) + " killed by signal " +
                 std::to_string(WTERMSIG(status));
    } else {
      primary +=
          "rank " + std::to_string(r) + " exited with status " + std::to_string(code);
    }
  }
  if (!primary.empty()) {
    throw std::runtime_error("socket run failed (" + primary +
                             "; see rank stderr for the error)");
  }
  if (secondary_aborts > 0) {
    throw std::runtime_error("socket run failed (" + std::to_string(secondary_aborts) +
                             " rank(s) aborted by a peer)");
  }
}

}  // namespace detail

class runtime {
 public:
  /// Run `rank_main(communicator&)` on `nranks` threads-as-ranks over the
  /// inproc backend.  Returns the aggregate communication statistics of the
  /// whole run.
  template <typename F>
  static stats_snapshot run(int nranks, F&& rank_main, config cfg = {}) {
    inproc_transport t(nranks, cfg);
    {
      std::vector<std::jthread> threads;
      threads.reserve(static_cast<std::size_t>(nranks));
      for (int r = 0; r < nranks; ++r) {
        threads.emplace_back([&t, r, &rank_main] {
          communicator c(t, r);
          try {
            rank_main(c);
            c.barrier();  // final drain: deliver outstanding RPCs
          } catch (...) {
            t.abort_run(std::current_exception());
          }
        });
      }
    }  // join
    if (t.first_error()) std::rethrow_exception(t.first_error());
    return t.snapshot();
  }

  /// Run THIS process as one rank of a socket-backend job (rendezvous from
  /// `opts`, typically socket_options::from_env()).  Returns the global
  /// all-reduced communication statistics, identical on every rank.
  template <typename F>
  static stats_snapshot run_socket_rank(F&& rank_main, socket_options opts,
                                        config cfg = {}) {
    socket_transport t(opts, cfg);
    communicator c(t, t.rank());
    stats_snapshot global{};
    try {
      rank_main(c);
      c.barrier();  // final drain: deliver outstanding RPCs
      global = c.global_stats();
    } catch (...) {
      t.abort_run(std::current_exception());
    }
    if (t.first_error()) std::rethrow_exception(t.first_error());
    return global;
  }

  /// Fork `nranks` local processes connected over Unix-domain sockets and
  /// run `rank_main` as one real process per rank.  Throws when any rank
  /// fails (the failing rank prints its error to stderr).  Must be called
  /// from a single-threaded process state (launchers/tests), as fork with
  /// live rank threads is undefined behavior territory.
  template <typename F>
  static void run_socket_local(int nranks, F&& rank_main, config cfg = {}) {
    if (nranks <= 0) throw std::invalid_argument("runtime: nranks must be positive");
    const std::string dir = detail::make_rendezvous_dir();
    std::vector<pid_t> pids;
    pids.reserve(static_cast<std::size_t>(nranks));
    for (int r = 0; r < nranks; ++r) {
      const pid_t pid = ::fork();
      if (pid < 0) {
        for (const pid_t running : pids) ::kill(running, SIGKILL);
        for (const pid_t running : pids) (void)::waitpid(running, nullptr, 0);
        detail::remove_rendezvous_dir(dir);
        throw std::runtime_error("runtime: fork failed: " +
                                 std::string(std::strerror(errno)));
      }
      if (pid == 0) {
        int status = 0;
        try {
          socket_options opts;
          opts.rank = r;
          opts.nranks = nranks;
          opts.socket_dir = dir;
          (void)run_socket_rank(rank_main, opts, cfg);
        } catch (const aborted_error&) {
          status = 3;  // secondary failure: another rank aborted the run
        } catch (const std::exception& e) {
          std::fprintf(stderr, "tripoll socket rank %d: %s\n", r, e.what());
          status = 1;
        } catch (...) {
          std::fprintf(stderr, "tripoll socket rank %d: unknown error\n", r);
          status = 1;
        }
        std::fflush(nullptr);
        std::_Exit(status);  // skip the parent's atexit/static-destructor state
      }
      pids.push_back(pid);
    }
    try {
      detail::wait_for_children(pids);
    } catch (...) {
      detail::remove_rendezvous_dir(dir);
      throw;
    }
    detail::remove_rendezvous_dir(dir);
  }

  /// Backend-dispatching convenience used by the CLI and benches: inproc
  /// runs threads in-process; socket forks `nranks` local processes (or, if
  /// `TRIPOLL_RANK` is set, joins an externally launched rendezvous as that
  /// single rank).
  template <typename F>
  static void run_backend(backend_kind backend, int nranks, F&& rank_main,
                          config cfg = {}) {
    if (backend == backend_kind::inproc) {
      (void)run(nranks, std::forward<F>(rank_main), cfg);
      return;
    }
    if (std::getenv("TRIPOLL_RANK") != nullptr) {
      auto opts = socket_options::from_env();
      if (opts.nranks == 0) {
        opts.nranks = nranks;
      } else if (opts.nranks != nranks) {
        // A silently-winning env var would make the caller-reported rank
        // count (e.g. the CLI's printed header) lie about the actual job.
        throw std::invalid_argument(
            "runtime: TRIPOLL_NRANKS=" + std::to_string(opts.nranks) +
            " conflicts with the requested rank count " + std::to_string(nranks));
      }
      (void)run_socket_rank(std::forward<F>(rank_main), opts, cfg);
      return;
    }
    run_socket_local(nranks, std::forward<F>(rank_main), cfg);
  }
};

}  // namespace tripoll::comm
