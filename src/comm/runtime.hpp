// runtime.hpp -- SPMD launcher for the threads-as-ranks runtime.
//
// `runtime::run(n, rank_main)` plays the role of mpirun: it spawns `n`
// rank threads, hands each a communicator, executes `rank_main(comm)` on
// every rank, performs a final implicit barrier (so fire-and-forget messages
// in flight at return are still delivered), and joins.  The first exception
// thrown on any rank aborts the whole run and is rethrown to the caller.
#pragma once

#include <exception>
#include <functional>
#include <thread>
#include <utility>
#include <vector>

#include "comm/communicator.hpp"
#include "comm/config.hpp"
#include "comm/stats.hpp"
#include "comm/transport.hpp"

namespace tripoll::comm {

class runtime {
 public:
  /// Run `rank_main(communicator&)` on `nranks` simulated ranks.  Returns
  /// the aggregate communication statistics of the whole run.
  template <typename F>
  static stats_snapshot run(int nranks, F&& rank_main, config cfg = {}) {
    transport t(nranks, cfg);
    {
      std::vector<std::jthread> threads;
      threads.reserve(static_cast<std::size_t>(nranks));
      for (int r = 0; r < nranks; ++r) {
        threads.emplace_back([&t, r, &rank_main] {
          communicator c(t, r);
          try {
            rank_main(c);
            c.barrier();  // final drain: deliver outstanding RPCs
          } catch (...) {
            t.abort_run(std::current_exception());
          }
        });
      }
    }  // join
    if (t.first_error()) std::rethrow_exception(t.first_error());
    return t.snapshot();
  }
};

}  // namespace tripoll::comm
