// socket_transport.hpp -- one OS process per rank, connected over sockets.
//
// The real-multi-process backend the ROADMAP calls for: each rank is a
// separate process, so every RPC genuinely crosses a serialization boundary
// and no state is shared.  Mechanics:
//
//   * Rendezvous: rank r listens on its own endpoint -- a Unix-domain
//     socket `<socket_dir>/rank-<r>.sock` or `hosts[r]` ("host:port") for
//     TCP -- then connects to every lower rank and accepts from every
//     higher one, forming a full mesh.  Discovery comes from
//     `socket_options::from_env()` (TRIPOLL_RANK, TRIPOLL_NRANKS,
//     TRIPOLL_SOCKET_DIR, TRIPOLL_HOSTS) or explicit options (the
//     fork-based local launcher in runtime.hpp).
//   * Handshake: a HELLO frame carries the sender's rank plus the handler
//     registry's count and fingerprint; a mismatch (different binaries)
//     fails fast instead of dispatching the wrong handler.
//   * Framing: length-prefixed frames (serial::frame_header).  DATA frames
//     carry flushed communicator buffers; control frames drive termination
//     detection and failure propagation.
//   * Receive path: one receiver thread polls all peer connections and
//     feeds DATA payloads into this rank's mailbox; control frames are
//     handled on the receiver thread itself.
//   * Termination detection: the shared in_flight_/idle_ranks_ counters of
//     the inproc backend become messages.  Each rank announces IDLE to rank
//     0 with its cumulative (sent, received) DATA-frame counts.  When rank
//     0 has an idle report from everyone for the current generation it runs
//     a probe wave (Mattern-style double counting): every rank replies with
//     its current state, and the barrier completes only if nobody moved
//     since its report and global sent == received -- i.e. nothing is in
//     flight anywhere.  DONE is then broadcast.  Announce-then-probe forms
//     the two sequential waves that make the count comparison sound.
//   * Failure propagation: abort_run broadcasts an ABORT frame with the
//     error text; an unexpected connection teardown (EOF without a prior
//     FIN frame) aborts the run on whoever observes it, so a crashed rank
//     takes the job down instead of deadlocking it.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "comm/transport.hpp"

namespace tripoll::comm {

/// Bootstrap parameters of one rank of a socket-backend job.
struct socket_options {
  int rank = -1;
  int nranks = 0;

  /// Unix-domain mode: directory holding one `rank-<r>.sock` per rank.
  std::string socket_dir;

  /// TCP mode: one "host:port" endpoint per rank (overrides socket_dir).
  std::vector<std::string> hosts;

  /// Give-up deadline for the initial mesh rendezvous (peers may still be
  /// launching) and for blocking handshake reads.
  double connect_timeout_seconds = 30.0;

  /// Read TRIPOLL_RANK, TRIPOLL_NRANKS, TRIPOLL_SOCKET_DIR and
  /// TRIPOLL_HOSTS (comma-separated host:port list).
  [[nodiscard]] static socket_options from_env();
};

class socket_transport final : public transport {
 public:
  socket_transport(const socket_options& opts, config cfg = {});
  ~socket_transport() override;

  [[nodiscard]] int rank() const noexcept { return rank_; }

  // --- transport interface --------------------------------------------------

  void deliver(int src, int dst, serial::byte_buffer payload,
               std::uint64_t n_messages) override;

  bool try_receive(int rank, mailbox::envelope& out) override {
    (void)rank;
    return inbox_.try_pop(out);
  }

  [[nodiscard]] bool inbox_empty(int rank) const override {
    (void)rank;
    return inbox_.empty();
  }

  void wait_for_inbox(int rank, std::chrono::microseconds timeout) override {
    (void)rank;
    inbox_.wait_nonempty(timeout);
  }

  void acknowledge_processed(int rank) override {
    (void)rank;
    recv_total_.fetch_add(1, std::memory_order_seq_cst);
  }

  void announce_idle(int rank, std::uint64_t generation) override;
  void retract_idle(int rank) override;
  [[nodiscard]] bool poll_barrier(int rank, std::uint64_t generation) override;

  /// Post-quiescence exit alignment, preserving the inproc guarantee that
  /// no rank proceeds past a barrier (and possibly delivers next-phase
  /// messages) while a peer is still inside its poll loop: every rank sends
  /// EXIT to rank 0, which broadcasts RELEASE once all have arrived.
  void exit_rendezvous(int rank) override;

  void abort_run(std::exception_ptr error) noexcept override;

  [[nodiscard]] rank_counters& counters(int rank) override {
    (void)rank;
    return counters_;
  }

  [[nodiscard]] stats_snapshot snapshot() const override;
  [[nodiscard]] stats_snapshot snapshot(int rank) const override {
    (void)rank;
    return snapshot();
  }

 private:
  enum class frame_type : std::uint8_t {
    hello = 1,
    data = 2,
    idle = 3,
    probe = 4,
    probe_reply = 5,
    done = 6,
    abort_run_ = 7,
    fin = 8,
    exit_barrier = 9,
    release = 10,
  };

  // Per-peer send discipline: the rank's main thread may write BLOCKING
  // (its progress is guaranteed by the remote receiver, which always keeps
  // reading), but the receiver thread must NEVER block on a send -- a
  // receiver parked on a full socket stops draining, and two ranks doing
  // that to each other deadlock.  Receiver-originated control frames are
  // therefore enqueued into `pending_out` and flushed opportunistically
  // (non-blocking try here, POLLOUT in the poll loop, or the main thread's
  // next blocking write, which always drains the queue first to keep frame
  // order).
  struct peer {
    int fd = -1;
    std::mutex write_mutex;          ///< serializes actual fd writes
    std::mutex queue_mutex;          ///< guards pending_out
    std::vector<std::byte> pending_out;
    std::atomic<bool> has_pending{false};
    std::atomic<bool> fin_received{false};
    /// Set by the receiver on EOF/error; the fd stays allocated until the
    /// destructor (single closer) so no thread ever writes to a reused fd.
    std::atomic<bool> dead{false};
  };

  /// One rank's consistent idle sample: barrier generation, announce
  /// sequence number, cumulative DATA frames sent / processed.
  struct report {
    std::uint64_t gen = 0;
    std::uint64_t seq = 0;
    std::uint64_t sent = 0;
    std::uint64_t recv = 0;
    bool idle = false;

    friend bool operator==(const report&, const report&) = default;
  };

  // --- rendezvous -----------------------------------------------------------
  void bind_and_listen(const socket_options& opts);
  void connect_mesh(const socket_options& opts);
  void send_hello(int fd) const;
  [[nodiscard]] int read_hello(int fd, double deadline_seconds) const;

  // --- framing --------------------------------------------------------------
  /// Blocking send (main thread only): flushes queued control bytes first,
  /// then writes the frame.
  void send_frame(int dest, frame_type type, const std::byte* body, std::size_t n);
  /// Never-blocking sends (safe on the receiver thread): write what the
  /// socket accepts immediately, queue the rest for POLLOUT.  Convert hard
  /// send errors into abort_run instead of throwing.
  void post_frame(int dest, frame_type type, const std::byte* body,
                  std::size_t n) noexcept;
  void post_control_u64(int dest, frame_type type, const std::uint64_t* words,
                        std::size_t n_words) noexcept;
  [[nodiscard]] std::vector<std::byte> take_pending_locked(peer& p);  // write_mutex held
  void try_flush_pending(peer& p) noexcept;         // never blocks
  void wake_receiver() noexcept;

  // --- receiver thread ------------------------------------------------------
  void receive_loop();
  /// Read and dispatch one frame from peer `src`; false on EOF.
  bool read_frame(int src);
  void handle_probe(std::uint64_t epoch);
  void connection_lost(int src);

  // --- local idle state (seq/consistency via idle_mutex_) ------------------
  [[nodiscard]] report snapshot_idle_state();

  // --- coordinator (rank 0) -------------------------------------------------
  void coordinator_note_idle(int from, const report& rep);
  void coordinator_probe_reply(int from, std::uint64_t epoch, const report& rep);
  void coordinator_probe_reply_locked(int from, std::uint64_t epoch, const report& rep);
  void coordinator_maybe_start_wave_locked();
  void publish_done(std::uint64_t gen);
  void coordinator_note_exit(std::uint64_t gen);

  int rank_ = -1;
  mailbox inbox_;
  rank_counters counters_;

  // Cumulative DATA-frame counts: the distributed replacement for the
  // inproc backend's shared in_flight_ counter.
  std::atomic<std::uint64_t> sent_total_{0};
  std::atomic<std::uint64_t> recv_total_{0};

  // Announced idle state, sampled consistently under idle_mutex_ (announce
  // and probe replies are barrier-frequency events; a mutex is simpler and
  // plenty fast).
  std::mutex idle_mutex_;
  bool idle_ = false;
  std::uint64_t idle_seq_ = 0;
  std::uint64_t announced_gen_ = 0;
  std::uint64_t announced_sent_ = 0;
  std::uint64_t announced_recv_ = 0;

  std::atomic<std::uint64_t> done_generation_{0};
  std::atomic<std::uint64_t> release_generation_{0};
  std::uint64_t exit_generation_ = 0;  ///< this rank's exit_rendezvous count

  // Wakes exit_rendezvous waiters when RELEASE lands (or the run aborts)
  // instead of sleep-polling.
  std::mutex gen_mutex_;
  std::condition_variable gen_cv_;

  struct coordinator_state {
    std::mutex mutex;
    std::vector<report> reports;        ///< latest idle report per rank
    std::uint64_t epoch_counter = 0;
    std::uint64_t wave_epoch = 0;       ///< 0 = no wave outstanding
    std::vector<report> wave_snapshot;  ///< reports frozen at wave start
    int wave_pending = 0;
    bool wave_failed = false;
    int exit_count = 0;                 ///< EXIT arrivals for the current generation
  } coord_;

  std::vector<std::unique_ptr<peer>> peers_;  ///< indexed by rank; self unused
  int listen_fd_ = -1;
  std::string listen_path_;  ///< unix-domain socket file to unlink
  int wake_pipe_[2] = {-1, -1};
  std::thread receiver_;
  std::atomic<bool> shutting_down_{false};
};

}  // namespace tripoll::comm
