// inproc_transport.hpp -- the threads-as-ranks backend.
//
// Every rank is a thread of one process; delivery is a mailbox move and the
// termination detector is a pair of shared atomic counters (ranks idle,
// buffers in flight).  This is the fastest backend for single-node runs and
// the reference implementation the socket backend's conformance tests
// compare against.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <vector>

#include "comm/transport.hpp"

namespace tripoll::comm {

class inproc_transport final : public transport {
 public:
  inproc_transport(int nranks, config cfg);

  void deliver(int src, int dst, serial::byte_buffer payload,
               std::uint64_t n_messages) override;

  bool try_receive(int rank, mailbox::envelope& out) override {
    return mailboxes_[static_cast<std::size_t>(rank)].try_pop(out);
  }

  [[nodiscard]] bool inbox_empty(int rank) const override {
    return mailboxes_[static_cast<std::size_t>(rank)].empty();
  }

  void wait_for_inbox(int rank, std::chrono::microseconds timeout) override {
    mailboxes_[static_cast<std::size_t>(rank)].wait_nonempty(timeout);
  }

  void acknowledge_processed(int rank) override;

  // --- termination detection: shared-memory counters ------------------------
  // A barrier generation is quiescent when every rank has announced idle and
  // no delivered buffer is unacknowledged.  Quiescence is stable once
  // reached (idle ranks with empty buffers cannot create work), so the first
  // rank to observe it publishes the generation for everyone.

  void announce_idle(int rank, std::uint64_t generation) override;
  void retract_idle(int rank) override;
  [[nodiscard]] bool poll_barrier(int rank, std::uint64_t generation) override;

  /// Exit rendezvous: every rank arrives exactly once per barrier; the last
  /// arrival resets the idle count for the next barrier before releasing.
  void exit_rendezvous(int rank) override;

  void abort_run(std::exception_ptr error) noexcept override;

  [[nodiscard]] rank_counters& counters(int rank) override {
    return counters_[static_cast<std::size_t>(rank)];
  }

  [[nodiscard]] stats_snapshot snapshot() const override;
  [[nodiscard]] stats_snapshot snapshot(int rank) const override;

 private:
  [[nodiscard]] bool quiescent() const noexcept {
    return idle_ranks_.load(std::memory_order_seq_cst) == nranks_ &&
           in_flight_.load(std::memory_order_seq_cst) == 0;
  }

  /// Publish that generation `gen` reached quiescence (idempotent; monotone).
  void publish_done(std::uint64_t gen) noexcept;

  std::vector<mailbox> mailboxes_;
  std::vector<rank_counters> counters_;

  std::atomic<std::int64_t> in_flight_{0};
  std::atomic<std::int64_t> idle_ranks_{0};
  std::atomic<std::uint64_t> done_generation_{0};

  // Exit rendezvous state (a reusable generation barrier with abort support).
  std::mutex exit_mutex_;
  std::condition_variable exit_cv_;
  int exit_count_ = 0;
  std::uint64_t exit_generation_ = 0;
};

}  // namespace tripoll::comm
