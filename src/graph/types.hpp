// types.hpp -- vertex/edge primitives and the degree ordering <+.
//
// Sec. 3 of the paper: vertices are compared by (degree, hash) so that the
// degree-ordered directed graph G+ (DODGr) keeps each undirected edge only
// as the directed edge (u,v) with u <+ v.  The ordering must be identical on
// every rank, hence the explicit splitmix64 tie-break.
#pragma once

#include <cstdint>
#include <tuple>

#include "serial/hash.hpp"

namespace tripoll::graph {

using vertex_id = std::uint64_t;

/// An undirected input edge (metadata-free form).
struct edge {
  vertex_id u = 0;
  vertex_id v = 0;

  friend bool operator==(const edge&, const edge&) = default;
};

/// The `<+` comparison key of a vertex: degree first, deterministic hash to
/// break ties, id as a final total-order guarantee under hash collisions.
struct order_key {
  std::uint64_t degree = 0;
  std::uint64_t hash = 0;
  vertex_id id = 0;

  [[nodiscard]] friend constexpr bool operator<(const order_key& a,
                                                const order_key& b) noexcept {
    return std::tie(a.degree, a.hash, a.id) < std::tie(b.degree, b.hash, b.id);
  }
  [[nodiscard]] friend constexpr bool operator==(const order_key& a,
                                                 const order_key& b) noexcept {
    return std::tie(a.degree, a.hash, a.id) == std::tie(b.degree, b.hash, b.id);
  }
};

/// Build the `<+` key for vertex `v` of (undirected) degree `degree`.
[[nodiscard]] constexpr order_key make_order_key(vertex_id v, std::uint64_t degree) noexcept {
  return order_key{degree, serial::splitmix64(v), v};
}

/// u <+ v given both degrees.
[[nodiscard]] constexpr bool degree_less(vertex_id u, std::uint64_t du, vertex_id v,
                                         std::uint64_t dv) noexcept {
  return make_order_key(u, du) < make_order_key(v, dv);
}

/// Dummy metadata for plain triangle counting.  The paper affixes booleans
/// as dummy metadata in that case (Sec. 5.3); `none` models the same thing
/// with an explicit name.
struct none {
  friend bool operator==(const none&, const none&) = default;
};

}  // namespace tripoll::graph
