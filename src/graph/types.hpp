// types.hpp -- vertex/edge primitives and the generalized vertex order <+.
//
// Sec. 3 of the paper: vertices are compared by (degree, hash) so that the
// ordered directed graph G+ (DODGr) keeps each undirected edge only as the
// directed edge (u,v) with u <+ v.  This file generalizes the first
// comparison component to an *ordering rank* supplied by the active
// `ordering_policy` (graph/ordering.hpp): under degree order the rank is the
// undirected degree (the paper's <+); under degeneracy order it is the
// k-core peel-wave index.  The order must be identical on every rank, hence
// the explicit splitmix64 tie-break.
#pragma once

#include <cstdint>
#include <tuple>

#include "serial/hash.hpp"
#include "serial/wire_guard.hpp"

namespace tripoll::graph {

using vertex_id = std::uint64_t;

/// An undirected input edge (metadata-free form).
struct edge {
  vertex_id u = 0;
  vertex_id v = 0;

  friend bool operator==(const edge&, const edge&) = default;
};
TRIPOLL_WIRE_ASSERT(edge, u, v);

/// The `<+` comparison key of a vertex: ordering rank first (degree or peel
/// rank, depending on the builder's policy), deterministic hash to break
/// ties, id as a final total-order guarantee under hash collisions.
struct order_key {
  std::uint64_t rank = 0;
  std::uint64_t hash = 0;
  vertex_id id = 0;

  [[nodiscard]] friend constexpr bool operator<(const order_key& a,
                                                const order_key& b) noexcept {
    return std::tie(a.rank, a.hash, a.id) < std::tie(b.rank, b.hash, b.id);
  }
  [[nodiscard]] friend constexpr bool operator==(const order_key& a,
                                                 const order_key& b) noexcept {
    return std::tie(a.rank, a.hash, a.id) == std::tie(b.rank, b.hash, b.id);
  }
};
TRIPOLL_WIRE_ASSERT(order_key, rank, hash, id);

/// Build the `<+` key for vertex `v` of ordering rank `rank`.
[[nodiscard]] constexpr order_key make_order_key(vertex_id v, std::uint64_t rank) noexcept {
  return order_key{rank, serial::splitmix64(v), v};
}

/// u <+ v given both ordering ranks.
[[nodiscard]] constexpr bool order_less(vertex_id u, std::uint64_t rank_u, vertex_id v,
                                        std::uint64_t rank_v) noexcept {
  return make_order_key(u, rank_u) < make_order_key(v, rank_v);
}

/// u <+ v under plain degree order (ranks are the undirected degrees).
[[nodiscard]] constexpr bool degree_less(vertex_id u, std::uint64_t du, vertex_id v,
                                         std::uint64_t dv) noexcept {
  return order_less(u, du, v, dv);
}

/// Dummy metadata for plain triangle counting.  The paper affixes booleans
/// as dummy metadata in that case (Sec. 5.3); `none` models the same thing
/// with an explicit name.
struct none {
  friend bool operator==(const none&, const none&) = default;
};

}  // namespace tripoll::graph
