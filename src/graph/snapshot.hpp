// snapshot.hpp -- binary snapshots of frozen CSR graphs.
//
// `save_snapshot` writes each rank's frozen arenas to its own file
// (`<prefix>.r<k>.tpsnap`); `load_snapshot` mmaps them back as borrowed
// arena views.  A reload therefore skips the entire construction pipeline:
// no edge shuffle, no P4 metadata exchange, and -- because ordering ranks
// are columns of the snapshot -- no degeneracy re-peel.  The paper's
// real-dataset workloads (Reddit, common-crawl) amortize one build across
// arbitrarily many survey sessions this way.
//
// File layout (little-endian, 64-byte-aligned sections):
//
//   [128-byte header]  magic, version, nranks, rank, ordering, n, m,
//                      vmeta/emeta element sizes, file size, bitmap words
//   [vertex columns]   vid[n] degree[n] order_rank[n] offset[n+1] vmeta[n]
//   [edge columns]     target[m] target_rank[m] target_out_degree[m]
//                      emeta[m] target_vmeta[m]
//   [bitmap columns]   bm_offset[n+1] bm_base[n] bm_words[W]   (v2, iff W > 0)
//
// Version 2 appends the optional hub-bitmap sections (graph/frozen.hpp's
// freeze_options) so reloads keep the bitmap intersection kernels without
// rebuilding rows; version-1 files still load, with empty bitmap arenas
// (the survey falls back to the list kernels).
//
// Empty metadata (graph::none, dropped projections) occupies zero bytes on
// disk, mirroring its zero-byte arena.  Only bitwise-serializable metadata
// may be snapshotted (a pointer/string column would be meaningless on
// reload); the requirement is enforced at compile time.
//
// Snapshots are partition-shaped: the loader must run with the same rank
// count that saved them (the vertex->owner hash depends on nranks), which
// the header checks.  The bytes are backend-independent -- files written
// under the inproc backend load bit-identically under the socket backend
// and vice versa.
#pragma once

#include <array>
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <string>
#include <type_traits>

#include "comm/communicator.hpp"
#include "graph/frozen.hpp"
#include "graph/io.hpp"
#include "graph/ordering.hpp"
#include "serial/buffer.hpp"
#include "serial/serialize.hpp"

namespace tripoll::graph {

namespace snapshot_detail {

inline constexpr std::uint64_t kMagic = 0x54504C4C534E4150ull;  // "TPLLSNAP"
inline constexpr std::uint64_t kVersion = 2;       // writes v2; loads v1 and v2
inline constexpr std::uint64_t kMinVersion = 1;
inline constexpr std::size_t kAlign = 64;
inline constexpr std::size_t kHeaderBytes = 128;  // 16 u64 words

template <typename T>
inline constexpr bool snapshot_compatible =
    std::is_empty_v<T> || serial::detail::bitwise<T>;

template <typename T>
[[nodiscard]] constexpr std::uint64_t element_size() noexcept {
  return std::is_empty_v<T> ? 0 : sizeof(T);
}

[[nodiscard]] constexpr std::size_t align_up(std::size_t n) noexcept {
  return (n + kAlign - 1) / kAlign * kAlign;
}

struct header {
  std::uint64_t version = kVersion;
  std::uint64_t nranks = 0;
  std::uint64_t rank = 0;
  std::uint64_t ordering = 0;
  std::uint64_t n = 0;  ///< local vertices
  std::uint64_t m = 0;  ///< local directed (out-)edges
  std::uint64_t vmeta_size = 0;
  std::uint64_t emeta_size = 0;
  std::uint64_t file_size = 0;
  std::uint64_t bm_words = 0;  ///< total hub-bitmap words W (0: no bitmap sections)

  void encode(std::byte out[kHeaderBytes]) const noexcept {
    std::memset(out, 0, kHeaderBytes);
    const std::uint64_t words[11] = {kMagic,     kVersion,   nranks,    rank,
                                     ordering,   n,          m,         vmeta_size,
                                     emeta_size, file_size,  bm_words};
    for (std::size_t i = 0; i < 11; ++i) serial::store_u64_le(out + 8 * i, words[i]);
  }

  [[nodiscard]] static header decode(const std::byte in[kHeaderBytes],
                                     const std::string& path) {
    if (serial::load_u64_le(in) != kMagic) {
      throw std::runtime_error("load_snapshot: '" + path + "' is not a TriPoll snapshot");
    }
    const std::uint64_t version = serial::load_u64_le(in + 8);
    if (version < kMinVersion || version > kVersion) {
      throw std::runtime_error("load_snapshot: '" + path +
                               "' has unsupported snapshot version " +
                               std::to_string(version));
    }
    header h;
    h.version = version;
    h.nranks = serial::load_u64_le(in + 16);
    h.rank = serial::load_u64_le(in + 24);
    h.ordering = serial::load_u64_le(in + 32);
    h.n = serial::load_u64_le(in + 40);
    h.m = serial::load_u64_le(in + 48);
    h.vmeta_size = serial::load_u64_le(in + 56);
    h.emeta_size = serial::load_u64_le(in + 64);
    h.file_size = serial::load_u64_le(in + 72);
    h.bm_words = version >= 2 ? serial::load_u64_le(in + 80) : 0;
    return h;
  }
};

/// Section sizes, in file order.  Version 2 appends three bitmap sections
/// (zero-sized when W == 0); version-1 files have exactly the first 10 --
/// `num_sections(h)` bounds every walk, because even a zero-sized trailing
/// section affects the file size through its alignment padding.
[[nodiscard]] inline std::array<std::uint64_t, 13> section_bytes(const header& h) {
  const std::uint64_t bm_off = h.bm_words > 0 ? (h.n + 1) * 8 : 0;
  const std::uint64_t bm_base = h.bm_words > 0 ? h.n * 8 : 0;
  return {h.n * 8,          h.n * 8, h.n * 8, (h.n + 1) * 8, h.n * h.vmeta_size,
          h.m * 8,          h.m * 8, h.m * 8, h.m * h.emeta_size,
          h.m * h.vmeta_size, bm_off, bm_base, h.bm_words * 8};
}

[[nodiscard]] inline std::size_t num_sections(const header& h) noexcept {
  return h.version >= 2 ? 13 : 10;
}

/// Header + aligned sections for a fully-populated header (version-aware).
[[nodiscard]] inline std::uint64_t file_bytes_for(const header& h) {
  std::uint64_t size = kHeaderBytes;
  const auto sizes = section_bytes(h);
  for (std::size_t i = 0; i < num_sections(h); ++i) size = align_up(size) + sizes[i];
  return size;
}

class file_writer {
 public:
  explicit file_writer(const std::string& path)
      : path_(path), f_(std::fopen(path.c_str(), "wb")) {
    if (f_ == nullptr) {
      throw std::runtime_error("save_snapshot: cannot open '" + path +
                               "': " + std::strerror(errno));
    }
  }
  ~file_writer() {
    if (f_ != nullptr) std::fclose(f_);
  }
  file_writer(const file_writer&) = delete;
  file_writer& operator=(const file_writer&) = delete;

  void write(const void* data, std::size_t n) {
    if (n == 0) return;
    if (std::fwrite(data, 1, n, f_) != n) {
      throw std::runtime_error("save_snapshot: short write to '" + path_ + "'");
    }
    offset_ += n;
  }

  /// Zero-pad to the next section boundary.
  void pad_to_alignment() {
    static constexpr char zeros[kAlign] = {};
    const std::size_t target = align_up(offset_);
    write(zeros, target - offset_);
  }

  [[nodiscard]] std::size_t offset() const noexcept { return offset_; }

  void close() {
    if (std::fclose(f_) != 0) {
      f_ = nullptr;
      throw std::runtime_error("save_snapshot: close failed for '" + path_ + "'");
    }
    f_ = nullptr;
  }

 private:
  std::string path_;
  std::FILE* f_;
  std::size_t offset_ = 0;
};

}  // namespace snapshot_detail

/// Total file size a rank's snapshot will occupy (header + aligned
/// sections).  `bm_words` is the hub-bitmap word count (0 for none / v1).
[[nodiscard]] inline std::uint64_t snapshot_file_bytes(std::uint64_t n, std::uint64_t m,
                                                       std::uint64_t vmeta_size,
                                                       std::uint64_t emeta_size,
                                                       std::uint64_t bm_words = 0) {
  namespace sd = snapshot_detail;
  sd::header h;
  h.n = n;
  h.m = m;
  h.vmeta_size = vmeta_size;
  h.emeta_size = emeta_size;
  h.bm_words = bm_words;
  return sd::file_bytes_for(h);
}

/// Collective: write every rank's frozen arenas under `prefix` (one file per
/// rank, `snapshot_rank_path(prefix, r)`).  Returns this rank's file size.
/// The trailing barrier guarantees all files exist once any rank returns.
template <typename VMeta, typename EMeta>
std::uint64_t save_snapshot(frozen_dodgr<VMeta, EMeta>& g, const std::string& prefix) {
  namespace sd = snapshot_detail;
  static_assert(sd::snapshot_compatible<VMeta> && sd::snapshot_compatible<EMeta>,
                "snapshots require bitwise-serializable (or empty) metadata; "
                "project strings/containers away at freeze() time first");
  auto& c = g.comm();
  const auto& ar = g.arenas();

  sd::header h;
  h.nranks = static_cast<std::uint64_t>(c.size());
  h.rank = static_cast<std::uint64_t>(c.rank());
  h.ordering = static_cast<std::uint64_t>(g.ordering());
  h.n = ar.vid.size();
  h.m = ar.target.size();
  h.vmeta_size = sd::element_size<VMeta>();
  h.emeta_size = sd::element_size<EMeta>();
  h.bm_words = ar.bm_words.size();
  h.file_size = snapshot_file_bytes(h.n, h.m, h.vmeta_size, h.emeta_size, h.bm_words);

  sd::file_writer out(snapshot_rank_path(prefix, c.rank()));
  std::byte hdr[sd::kHeaderBytes];
  h.encode(hdr);
  out.write(hdr, sizeof(hdr));

  const auto write_section = [&](const void* data, std::uint64_t bytes) {
    out.pad_to_alignment();
    out.write(data, bytes);
  };
  write_section(ar.vid.data(), ar.vid.bytes());
  write_section(ar.degree.data(), ar.degree.bytes());
  write_section(ar.order_rank.data(), ar.order_rank.bytes());
  write_section(ar.offset.data(), ar.offset.bytes());
  write_section(ar.vmeta.data(), ar.vmeta.bytes());
  write_section(ar.target.data(), ar.target.bytes());
  write_section(ar.target_rank.data(), ar.target_rank.bytes());
  write_section(ar.target_out_degree.data(), ar.target_out_degree.bytes());
  write_section(ar.emeta.data(), ar.emeta.bytes());
  write_section(ar.target_vmeta.data(), ar.target_vmeta.bytes());
  // v2 bitmap sections are always present in the walk; with no bitmap rows
  // they are zero-sized and contribute only their alignment padding.
  write_section(ar.bm_offset.data(), ar.bm_offset.bytes());
  write_section(ar.bm_base.data(), ar.bm_base.bytes());
  write_section(ar.bm_words.data(), ar.bm_words.bytes());
  if (out.offset() != h.file_size) {
    throw std::runtime_error("save_snapshot: internal size mismatch (wrote " +
                             std::to_string(out.offset()) + ", expected " +
                             std::to_string(h.file_size) + ")");
  }
  out.close();
  c.barrier();
  return h.file_size;
}

/// Collective: reload a frozen graph saved by `save_snapshot`, mmap'ing this
/// rank's file and pointing the arenas into the mapping (zero copy; the
/// mapping stays pinned for the graph's lifetime).  The rank count must
/// match the saving run's.  Throws std::runtime_error on any mismatch.
template <typename VMeta, typename EMeta>
[[nodiscard]] frozen_dodgr<VMeta, EMeta> load_snapshot(comm::communicator& c,
                                                       const std::string& prefix) {
  namespace sd = snapshot_detail;
  static_assert(sd::snapshot_compatible<VMeta> && sd::snapshot_compatible<EMeta>,
                "snapshots require bitwise-serializable (or empty) metadata");
  const std::string path = snapshot_rank_path(prefix, c.rank());
  const auto file = mapped_file::map(path);
  if (file->size() < sd::kHeaderBytes) {
    throw std::runtime_error("load_snapshot: '" + path + "' is truncated");
  }
  const auto h = sd::header::decode(file->data(), path);
  if (h.nranks != static_cast<std::uint64_t>(c.size())) {
    throw std::runtime_error(
        "load_snapshot: '" + path + "' was saved by a " + std::to_string(h.nranks) +
        "-rank job but this run has " + std::to_string(c.size()) +
        " ranks (the vertex partition is rank-count-specific)");
  }
  if (h.rank != static_cast<std::uint64_t>(c.rank())) {
    throw std::runtime_error("load_snapshot: '" + path + "' belongs to rank " +
                             std::to_string(h.rank));
  }
  if (h.vmeta_size != sd::element_size<VMeta>() ||
      h.emeta_size != sd::element_size<EMeta>()) {
    throw std::runtime_error(
        "load_snapshot: '" + path + "' metadata layout (" +
        std::to_string(h.vmeta_size) + "/" + std::to_string(h.emeta_size) +
        " bytes) does not match the requested graph type (" +
        std::to_string(sd::element_size<VMeta>()) + "/" +
        std::to_string(sd::element_size<EMeta>()) + " bytes)");
  }
  if (h.file_size != file->size() || h.file_size != sd::file_bytes_for(h)) {
    throw std::runtime_error("load_snapshot: '" + path + "' is truncated or corrupt");
  }

  // Walk the aligned sections, handing out views pinned by the mapping.
  std::size_t offset = sd::kHeaderBytes;
  const auto sizes = sd::section_bytes(h);
  std::array<const std::byte*, 13> base{};
  for (std::size_t i = 0; i < sd::num_sections(h); ++i) {
    offset = sd::align_up(offset);
    base[i] = file->data() + offset;
    offset += sizes[i];
  }

  const std::shared_ptr<const void> keep = file;
  const auto u64_view = [&](std::size_t sec, std::uint64_t count) {
    return arena<std::uint64_t>(reinterpret_cast<const std::uint64_t*>(base[sec]),
                                count, keep);
  };
  const auto vid_view = [&](std::size_t sec, std::uint64_t count) {
    return arena<vertex_id>(reinterpret_cast<const vertex_id*>(base[sec]), count, keep);
  };

  frozen_arenas<VMeta, EMeta> ar;
  ar.vid = vid_view(0, h.n);
  ar.degree = u64_view(1, h.n);
  ar.order_rank = u64_view(2, h.n);
  ar.offset = u64_view(3, h.n + 1);
  if constexpr (std::is_empty_v<VMeta>) {
    ar.vmeta = meta_column<VMeta>(h.n);
    ar.target_vmeta = meta_column<VMeta>(h.m);
  } else {
    ar.vmeta = meta_column<VMeta>(reinterpret_cast<const VMeta*>(base[4]), h.n, keep);
    ar.target_vmeta =
        meta_column<VMeta>(reinterpret_cast<const VMeta*>(base[9]), h.m, keep);
  }
  ar.target = vid_view(5, h.m);
  ar.target_rank = u64_view(6, h.m);
  ar.target_out_degree = u64_view(7, h.m);
  if constexpr (std::is_empty_v<EMeta>) {
    ar.emeta = meta_column<EMeta>(h.m);
  } else {
    ar.emeta = meta_column<EMeta>(reinterpret_cast<const EMeta*>(base[8]), h.m, keep);
  }
  if (h.bm_words > 0) {  // v1 files and bitmap-free v2 files: arenas stay empty
    ar.bm_offset = u64_view(10, h.n + 1);
    ar.bm_base = u64_view(11, h.n);
    ar.bm_words = u64_view(12, h.bm_words);
  }
  return frozen_dodgr<VMeta, EMeta>(c, std::move(ar),
                                    static_cast<ordering_policy>(h.ordering));
}

}  // namespace tripoll::graph
