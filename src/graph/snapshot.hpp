// snapshot.hpp -- binary snapshots of frozen CSR graphs.
//
// `save_snapshot` writes each rank's frozen arenas to its own file
// (`<prefix>.r<k>.tpsnap`); `load_snapshot` maps them back as arena views.
// A reload therefore skips the entire construction pipeline: no edge
// shuffle, no P4 metadata exchange, and -- because ordering ranks are
// columns of the snapshot -- no degeneracy re-peel.  The paper's
// real-dataset workloads (Reddit, common-crawl) amortize one build across
// arbitrarily many survey sessions this way.
//
// Raw file layout (versions 1-2; little-endian, 64-byte-aligned sections):
//
//   [128-byte header]  magic, version, nranks, rank, ordering, n, m,
//                      vmeta/emeta element sizes, file size, bitmap words
//   [vertex columns]   vid[n] degree[n] order_rank[n] offset[n+1] vmeta[n]
//   [edge columns]     target[m] target_rank[m] target_out_degree[m]
//                      emeta[m] target_vmeta[m]
//   [bitmap columns]   bm_offset[n+1] bm_base[n] bm_words[W]   (v2, iff W > 0)
//
// Version 2 appends the optional hub-bitmap sections (graph/frozen.hpp's
// freeze_options) so reloads keep the bitmap intersection kernels without
// rebuilding rows; version-1 files still load, with empty bitmap arenas
// (the survey falls back to the list kernels).
//
// Version 3 (`save_snapshot(..., snapshot_codec::compressed)`) keeps the
// header and section walk but tags every section with a column codec:
//
//   [128-byte header]  words 0-10 as v2; word 11 = FNV-1a of the table
//   [section table]    13 x { codec, stored_bytes, checksum } u64 triples
//   [aligned sections] each section's STORED bytes (varint streams shrink)
//
// Column codecs: u64 columns delta-encode (ZigZag, the adjacency is sorted
// by the <+ order key so deltas take either sign) then varint-pack; the
// monotonic offset columns store first-value-plus-gaps; the target column
// restarts its delta chain at every CSR vertex slice (short in-slice
// deltas, no cross-vertex noise); metadata arenas and bitmap words stay
// raw, still served zero-copy from the mapping.  Every section carries an
// FNV-1a checksum, verified on load, and v1/v2 files load unchanged --
// the codec tags are what keeps the format extensible.
//
// Empty metadata (graph::none, dropped projections) occupies zero bytes on
// disk, mirroring its zero-byte arena.  Only bitwise-serializable metadata
// may be snapshotted (a pointer/string column would be meaningless on
// reload); the requirement is enforced at compile time.
//
// Snapshots are partition-shaped: the loader must run with the same rank
// count that saved them (the vertex->owner hash depends on nranks), which
// the header checks.  The bytes are backend-independent -- files written
// under the inproc backend load bit-identically under the socket backend
// and vice versa.
#pragma once

#include <array>
#include <atomic>
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <functional>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <vector>

#include "comm/communicator.hpp"
#include "core/parallel.hpp"
#include "graph/frozen.hpp"
#include "graph/io.hpp"
#include "graph/ordering.hpp"
#include "serial/buffer.hpp"
#include "serial/serialize.hpp"

namespace tripoll::graph {

/// How save_snapshot lays a file out: raw (v2, every section mmap-viewable
/// verbatim) or compressed (v3, per-section varint/delta codecs).
enum class snapshot_codec {
  raw,
  compressed,
};

namespace snapshot_detail {

inline constexpr std::uint64_t kMagic = 0x54504C4C534E4150ull;  // "TPLLSNAP"
inline constexpr std::uint64_t kVersionRaw = 2;         ///< snapshot_codec::raw writes
inline constexpr std::uint64_t kVersionCompressed = 3;  ///< snapshot_codec::compressed
inline constexpr std::uint64_t kMinVersion = 1;
inline constexpr std::uint64_t kMaxVersion = 3;
inline constexpr std::size_t kAlign = 64;
inline constexpr std::size_t kHeaderBytes = 128;  // 16 u64 words
inline constexpr std::size_t kNumSections = 13;
inline constexpr std::size_t kTableBytes = kNumSections * 3 * 8;  // v3 section table

/// Per-section column codec tag (the wire values of the v3 section table).
enum class column_codec : std::uint64_t {
  raw = 0,                  ///< verbatim bytes, mmap-viewable
  varint_delta = 1,         ///< zigzag(v[i] - v[i-1]) varints, v[-1] = 0
  varint_gap = 2,           ///< v[i] - v[i-1] varints (monotonic columns)
  varint_vertex_delta = 3,  ///< varint_delta restarted at each CSR slice
};

template <typename T>
inline constexpr bool snapshot_compatible =
    std::is_empty_v<T> || serial::detail::bitwise<T>;

template <typename T>
[[nodiscard]] constexpr std::uint64_t element_size() noexcept {
  return std::is_empty_v<T> ? 0 : sizeof(T);
}

[[nodiscard]] constexpr std::size_t align_up(std::size_t n) noexcept {
  return (n + kAlign - 1) / kAlign * kAlign;
}

/// FNV-1a over a byte range: the snapshot integrity checksum.  Not
/// cryptographic -- it catches torn writes, truncation and bit rot, which
/// is the failure model for files this layer itself wrote.
[[nodiscard]] inline std::uint64_t fnv1a(const std::byte* p, std::size_t n) noexcept {
  std::uint64_t h = 14695981039346656037ull;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= static_cast<std::uint8_t>(p[i]);
    h *= 1099511628211ull;
  }
  return h;
}

struct header {
  std::uint64_t version = kVersionRaw;
  std::uint64_t nranks = 0;
  std::uint64_t rank = 0;
  std::uint64_t ordering = 0;
  std::uint64_t n = 0;  ///< local vertices
  std::uint64_t m = 0;  ///< local directed (out-)edges
  std::uint64_t vmeta_size = 0;
  std::uint64_t emeta_size = 0;
  std::uint64_t file_size = 0;
  std::uint64_t bm_words = 0;  ///< total hub-bitmap words W (0: no bitmap sections)
  std::uint64_t table_checksum = 0;  ///< v3: FNV-1a of the section table
  std::uint64_t content_id = 0;  ///< v3: frozen_dodgr::snapshot_id() (0: absent)

  void encode(std::byte out[kHeaderBytes]) const noexcept {
    std::memset(out, 0, kHeaderBytes);
    const std::uint64_t words[13] = {kMagic,     version,   nranks,    rank,
                                     ordering,   n,         m,         vmeta_size,
                                     emeta_size, file_size, bm_words,  table_checksum,
                                     content_id};
    for (std::size_t i = 0; i < 13; ++i) serial::store_u64_le(out + 8 * i, words[i]);
  }

  [[nodiscard]] static header decode(const std::byte in[kHeaderBytes],
                                     const std::string& path) {
    if (serial::load_u64_le(in) != kMagic) {
      throw std::runtime_error("load_snapshot: '" + path + "' is not a TriPoll snapshot");
    }
    const std::uint64_t version = serial::load_u64_le(in + 8);
    if (version < kMinVersion || version > kMaxVersion) {
      throw std::runtime_error("load_snapshot: '" + path +
                               "' has unsupported snapshot version " +
                               std::to_string(version));
    }
    header h;
    h.version = version;
    h.nranks = serial::load_u64_le(in + 16);
    h.rank = serial::load_u64_le(in + 24);
    h.ordering = serial::load_u64_le(in + 32);
    h.n = serial::load_u64_le(in + 40);
    h.m = serial::load_u64_le(in + 48);
    h.vmeta_size = serial::load_u64_le(in + 56);
    h.emeta_size = serial::load_u64_le(in + 64);
    h.file_size = serial::load_u64_le(in + 72);
    h.bm_words = version >= 2 ? serial::load_u64_le(in + 80) : 0;
    h.table_checksum = version >= 3 ? serial::load_u64_le(in + 88) : 0;
    h.content_id = version >= 3 ? serial::load_u64_le(in + 96) : 0;
    return h;
  }
};

/// Logical (decoded) section sizes, in file order.  Version 2+ appends
/// three bitmap sections (zero-sized when W == 0); version-1 files have
/// exactly the first 10 -- `num_sections(h)` bounds every walk, because
/// even a zero-sized trailing section affects the file size through its
/// alignment padding.
[[nodiscard]] inline std::array<std::uint64_t, kNumSections> section_bytes(
    const header& h) {
  const std::uint64_t bm_off = h.bm_words > 0 ? (h.n + 1) * 8 : 0;
  const std::uint64_t bm_base = h.bm_words > 0 ? h.n * 8 : 0;
  return {h.n * 8,          h.n * 8, h.n * 8, (h.n + 1) * 8, h.n * h.vmeta_size,
          h.m * 8,          h.m * 8, h.m * 8, h.m * h.emeta_size,
          h.m * h.vmeta_size, bm_off, bm_base, h.bm_words * 8};
}

[[nodiscard]] inline std::size_t num_sections(const header& h) noexcept {
  return h.version >= 2 ? kNumSections : 10;
}

/// Header + aligned sections for a fully-populated RAW (v1/v2) header.
[[nodiscard]] inline std::uint64_t file_bytes_for(const header& h) {
  std::uint64_t size = kHeaderBytes;
  const auto sizes = section_bytes(h);
  for (std::size_t i = 0; i < num_sections(h); ++i) size = align_up(size) + sizes[i];
  return size;
}

// --- column codecs ----------------------------------------------------------

inline void append_varint(std::vector<std::byte>& out, std::uint64_t v) {
  std::byte tmp[serial::kMaxVarintBytes];
  out.insert(out.end(), tmp, tmp + serial::varint_encode(tmp, v));
}

/// zigzag(v[i] - v[i-1]) varint stream; v[-1] = 0.
[[nodiscard]] inline std::vector<std::byte> encode_delta(const std::uint64_t* v,
                                                         std::size_t n) {
  std::vector<std::byte> out;
  out.reserve(n * 2 + 16);
  std::uint64_t prev = 0;
  for (std::size_t i = 0; i < n; ++i) {
    append_varint(out, serial::zigzag_encode(static_cast<std::int64_t>(v[i] - prev)));
    prev = v[i];
  }
  return out;
}

/// Gap varint stream for monotonically non-decreasing columns (offsets).
[[nodiscard]] inline std::vector<std::byte> encode_gap(const std::uint64_t* v,
                                                       std::size_t n) {
  std::vector<std::byte> out;
  out.reserve(n + 16);
  std::uint64_t prev = 0;
  for (std::size_t i = 0; i < n; ++i) {
    append_varint(out, v[i] - prev);
    prev = v[i];
  }
  return out;
}

/// Per-vertex delta chains over the CSR target column: the zigzag delta
/// restarts (against 0) at every slice boundary, so one vertex's sorted
/// neighbourhood compresses on its own locality.
[[nodiscard]] inline std::vector<std::byte> encode_vertex_delta(
    const std::uint64_t* v, const std::uint64_t* offset, std::size_t n) {
  std::vector<std::byte> out;
  const std::size_t m = n > 0 ? static_cast<std::size_t>(offset[n]) : 0;
  out.reserve(m * 2 + 16);
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t prev = 0;
    for (std::uint64_t k = offset[i]; k < offset[i + 1]; ++k) {
      append_varint(out, serial::zigzag_encode(static_cast<std::int64_t>(v[k] - prev)));
      prev = v[k];
    }
  }
  return out;
}

[[noreturn]] inline void throw_corrupt(const std::string& path) {
  throw std::runtime_error("load_snapshot: '" + path + "' is truncated or corrupt");
}

/// Validate an offset column end to end: front 0, back == total, and
/// non-decreasing throughout (which, with back == total, bounds every
/// interior value by total).  The decoded values are untrusted input that
/// downstream code uses as slice bounds -- for writes during the
/// vertex-delta decode and for reads in the survey bitmap kernels -- so a
/// front/back spot check is not enough: a crafted file can tag the section
/// raw (arbitrary interior values) or wrap the gap sum past 2^64.
[[nodiscard]] inline bool valid_offsets(const std::uint64_t* v, std::size_t n,
                                        std::uint64_t total) noexcept {
  if (n == 0 || v[0] != 0 || v[n - 1] != total) return false;
  for (std::size_t i = 1; i < n; ++i) {
    if (v[i] < v[i - 1]) return false;
  }
  return true;
}

inline void decode_delta(const std::byte* p, const std::byte* end, std::uint64_t* out,
                         std::size_t n, const std::string& path) {
  std::uint64_t prev = 0;
  for (std::size_t i = 0; i < n; ++i) {
    prev += static_cast<std::uint64_t>(serial::zigzag_decode(serial::varint_decode(p, end)));
    out[i] = prev;
  }
  if (p != end) throw_corrupt(path);  // trailing garbage after the last value
}

inline void decode_gap(const std::byte* p, const std::byte* end, std::uint64_t* out,
                       std::size_t n, const std::string& path) {
  std::uint64_t prev = 0;
  for (std::size_t i = 0; i < n; ++i) {
    prev += serial::varint_decode(p, end);
    out[i] = prev;
  }
  if (p != end) throw_corrupt(path);
}

inline void decode_vertex_delta(const std::byte* p, const std::byte* end,
                                std::uint64_t* out, const std::uint64_t* offset,
                                std::size_t n, const std::string& path) {
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t prev = 0;
    for (std::uint64_t k = offset[i]; k < offset[i + 1]; ++k) {
      prev += static_cast<std::uint64_t>(
          serial::zigzag_decode(serial::varint_decode(p, end)));
      out[k] = prev;
    }
  }
  if (p != end) throw_corrupt(path);
}

/// One section staged for a v3 write: either a view of the arena bytes
/// (raw) or an owned encoded stream.
struct staged_section {
  column_codec codec = column_codec::raw;
  const std::byte* raw_data = nullptr;
  std::uint64_t raw_bytes = 0;
  std::vector<std::byte> enc;

  [[nodiscard]] const std::byte* data() const noexcept {
    return codec == column_codec::raw ? raw_data : enc.data();
  }
  [[nodiscard]] std::uint64_t stored_bytes() const noexcept {
    return codec == column_codec::raw ? raw_bytes : enc.size();
  }
};

class file_writer {
 public:
  explicit file_writer(const std::string& path)
      : path_(path), f_(std::fopen(path.c_str(), "wb")) {
    if (f_ == nullptr) {
      throw std::runtime_error("save_snapshot: cannot open '" + path +
                               "': " + std::strerror(errno));
    }
  }
  ~file_writer() {
    if (f_ != nullptr) std::fclose(f_);
  }
  file_writer(const file_writer&) = delete;
  file_writer& operator=(const file_writer&) = delete;

  void write(const void* data, std::size_t n) {
    if (n == 0) return;
    if (std::fwrite(data, 1, n, f_) != n) {
      throw std::runtime_error("save_snapshot: short write to '" + path_ + "'");
    }
    offset_ += n;
  }

  /// Zero-pad to the next section boundary.
  void pad_to_alignment() {
    static constexpr char zeros[kAlign] = {};
    const std::size_t target = align_up(offset_);
    write(zeros, target - offset_);
  }

  [[nodiscard]] std::size_t offset() const noexcept { return offset_; }

  void close() {
    if (std::fclose(f_) != 0) {
      f_ = nullptr;
      throw std::runtime_error("save_snapshot: close failed for '" + path_ + "'");
    }
    f_ = nullptr;
  }

 private:
  std::string path_;
  std::FILE* f_;
  std::size_t offset_ = 0;
};

}  // namespace snapshot_detail

/// Total file size a rank's RAW snapshot will occupy (header + aligned
/// sections).  `bm_words` is the hub-bitmap word count (0 for none / v1).
/// Compressed (v3) file sizes are data-dependent; read them off the file.
[[nodiscard]] inline std::uint64_t snapshot_file_bytes(std::uint64_t n, std::uint64_t m,
                                                       std::uint64_t vmeta_size,
                                                       std::uint64_t emeta_size,
                                                       std::uint64_t bm_words = 0) {
  namespace sd = snapshot_detail;
  sd::header h;
  h.n = n;
  h.m = m;
  h.vmeta_size = vmeta_size;
  h.emeta_size = emeta_size;
  h.bm_words = bm_words;
  return sd::file_bytes_for(h);
}

/// On-disk layout of one snapshot section (introspection for tests and the
/// snapshot-IO bench): where the stored bytes sit, how many there are, and
/// which column codec produced them (always 0/raw for v1/v2 files).
struct snapshot_section_info {
  std::uint64_t offset = 0;        ///< first stored byte within the file
  std::uint64_t stored_bytes = 0;  ///< bytes on disk (== logical for raw)
  std::uint64_t codec = 0;         ///< column codec tag
};

/// Read the section layout of one rank's snapshot file (any version).
/// Validates only as much as the layout needs; load_snapshot remains the
/// full integrity check.
[[nodiscard]] inline std::vector<snapshot_section_info> snapshot_sections(
    const std::string& path) {
  namespace sd = snapshot_detail;
  const auto file = mapped_file::map(path);
  if (file->size() < sd::kHeaderBytes) {
    throw std::runtime_error("snapshot_sections: '" + path + "' is truncated");
  }
  const auto h = sd::header::decode(file->data(), path);
  std::vector<snapshot_section_info> out(sd::num_sections(h));
  if (h.version >= 3) {
    if (file->size() < sd::kHeaderBytes + sd::kTableBytes) {
      throw std::runtime_error("snapshot_sections: '" + path + "' is truncated");
    }
    std::uint64_t running = sd::kHeaderBytes + sd::kTableBytes;
    for (std::size_t i = 0; i < out.size(); ++i) {
      const std::byte* row = file->data() + sd::kHeaderBytes + i * 24;
      out[i].codec = serial::load_u64_le(row);
      out[i].stored_bytes = serial::load_u64_le(row + 8);
      running = sd::align_up(running);
      out[i].offset = running;
      running += out[i].stored_bytes;
    }
  } else {
    const auto sizes = sd::section_bytes(h);
    std::uint64_t running = sd::kHeaderBytes;
    for (std::size_t i = 0; i < out.size(); ++i) {
      running = sd::align_up(running);
      out[i].offset = running;
      out[i].stored_bytes = sizes[i];
      running += sizes[i];
    }
  }
  return out;
}

/// Collective: write every rank's frozen arenas under `prefix` (one file per
/// rank, `snapshot_rank_path(prefix, r)`).  Returns this rank's file size.
/// The trailing barrier guarantees all files exist once any rank returns.
/// `codec` picks the file layout: raw (v2, mmap-ready verbatim sections) or
/// compressed (v3, per-section varint/delta streams -- the structural
/// columns shrink severalfold; metadata stays raw).
template <typename VMeta, typename EMeta>
std::uint64_t save_snapshot(frozen_dodgr<VMeta, EMeta>& g, const std::string& prefix,
                            snapshot_codec codec) {
  namespace sd = snapshot_detail;
  static_assert(sd::snapshot_compatible<VMeta> && sd::snapshot_compatible<EMeta>,
                "snapshots require bitwise-serializable (or empty) metadata; "
                "project strings/containers away at freeze() time first");
  auto& c = g.comm();
  const auto& ar = g.arenas();

  sd::header h;
  h.nranks = static_cast<std::uint64_t>(c.size());
  h.rank = static_cast<std::uint64_t>(c.rank());
  h.ordering = static_cast<std::uint64_t>(g.ordering());
  h.n = ar.vid.size();
  h.m = ar.target.size();
  h.vmeta_size = sd::element_size<VMeta>();
  h.emeta_size = sd::element_size<EMeta>();
  h.bm_words = ar.bm_words.size();

  if (codec == snapshot_codec::raw) {
    h.version = sd::kVersionRaw;
    h.file_size = snapshot_file_bytes(h.n, h.m, h.vmeta_size, h.emeta_size, h.bm_words);

    sd::file_writer out(snapshot_rank_path(prefix, c.rank()));
    std::byte hdr[sd::kHeaderBytes];
    h.encode(hdr);
    out.write(hdr, sizeof(hdr));

    const auto write_section = [&](const void* data, std::uint64_t bytes) {
      out.pad_to_alignment();
      out.write(data, bytes);
    };
    write_section(ar.vid.data(), ar.vid.bytes());
    write_section(ar.degree.data(), ar.degree.bytes());
    write_section(ar.order_rank.data(), ar.order_rank.bytes());
    write_section(ar.offset.data(), ar.offset.bytes());
    write_section(ar.vmeta.data(), ar.vmeta.bytes());
    write_section(ar.target.data(), ar.target.bytes());
    write_section(ar.target_rank.data(), ar.target_rank.bytes());
    write_section(ar.target_out_degree.data(), ar.target_out_degree.bytes());
    write_section(ar.emeta.data(), ar.emeta.bytes());
    write_section(ar.target_vmeta.data(), ar.target_vmeta.bytes());
    // v2 bitmap sections are always present in the walk; with no bitmap rows
    // they are zero-sized and contribute only their alignment padding.
    write_section(ar.bm_offset.data(), ar.bm_offset.bytes());
    write_section(ar.bm_base.data(), ar.bm_base.bytes());
    write_section(ar.bm_words.data(), ar.bm_words.bytes());
    if (out.offset() != h.file_size) {
      throw std::runtime_error("save_snapshot: internal size mismatch (wrote " +
                               std::to_string(out.offset()) + ", expected " +
                               std::to_string(h.file_size) + ")");
    }
    out.close();
    c.barrier();
    return h.file_size;
  }

  // --- compressed (v3) -------------------------------------------------------
  h.version = sd::kVersionCompressed;
  // v3 carries the content id in header word 12 so reloads (and operators
  // inspecting files) get it without re-hashing the arenas.  v2 keeps word
  // 12 zeroed: its byte layout predates the id and stays bit-identical.
  h.content_id = g.snapshot_id();

  const auto raw_of = [](const auto& column) {
    sd::staged_section s;
    s.codec = sd::column_codec::raw;
    s.raw_data = reinterpret_cast<const std::byte*>(column.data());
    s.raw_bytes = column.bytes();
    return s;
  };
  std::array<sd::staged_section, sd::kNumSections> secs;
  secs[4] = raw_of(ar.vmeta);
  secs[8] = raw_of(ar.emeta);
  secs[9] = raw_of(ar.target_vmeta);
  secs[12] = raw_of(ar.bm_words);

  // Structural columns encode independently; fan the encoders out over the
  // freeze thread pool sizing (the encode wall is one pass per column, so
  // the slowest column -- targets -- bounds the stage).
  using cc = sd::column_codec;
  const std::uint64_t* off64 = ar.offset.data();
  struct encode_job {
    std::size_t idx;
    cc codec;
    std::function<std::vector<std::byte>()> enc;
  };
  const std::vector<encode_job> jobs = {
      {5, cc::varint_vertex_delta,
       [&] { return sd::encode_vertex_delta(ar.target.data(), off64, h.n); }},
      {6, cc::varint_delta, [&] { return sd::encode_delta(ar.target_rank.data(), h.m); }},
      {7, cc::varint_delta,
       [&] { return sd::encode_delta(ar.target_out_degree.data(), h.m); }},
      {0, cc::varint_delta, [&] { return sd::encode_delta(ar.vid.data(), h.n); }},
      {1, cc::varint_delta, [&] { return sd::encode_delta(ar.degree.data(), h.n); }},
      {2, cc::varint_delta, [&] { return sd::encode_delta(ar.order_rank.data(), h.n); }},
      {3, cc::varint_gap, [&] { return sd::encode_gap(off64, h.n + 1); }},
      {10, cc::varint_gap,
       [&] { return sd::encode_gap(ar.bm_offset.data(), ar.bm_offset.size()); }},
      {11, cc::varint_delta,
       [&] { return sd::encode_delta(ar.bm_base.data(), ar.bm_base.size()); }},
  };
  std::atomic<std::size_t> enc_cursor{0};
  core::fork_join(core::resolve_threads(0), [&](int) {
    for (;;) {
      const std::size_t j = enc_cursor.fetch_add(1, std::memory_order_relaxed);
      if (j >= jobs.size()) break;
      secs[jobs[j].idx].codec = jobs[j].codec;
      secs[jobs[j].idx].enc = jobs[j].enc();
    }
  });

  // Section table + file size.
  std::byte table[sd::kTableBytes];
  std::uint64_t running = sd::kHeaderBytes + sd::kTableBytes;
  for (std::size_t i = 0; i < sd::kNumSections; ++i) {
    std::byte* row = table + i * 24;
    serial::store_u64_le(row, static_cast<std::uint64_t>(secs[i].codec));
    serial::store_u64_le(row + 8, secs[i].stored_bytes());
    serial::store_u64_le(row + 16, sd::fnv1a(secs[i].data(), secs[i].stored_bytes()));
    running = sd::align_up(running) + secs[i].stored_bytes();
  }
  h.file_size = running;
  h.table_checksum = sd::fnv1a(table, sd::kTableBytes);

  sd::file_writer out(snapshot_rank_path(prefix, c.rank()));
  std::byte hdr[sd::kHeaderBytes];
  h.encode(hdr);
  out.write(hdr, sizeof(hdr));
  out.write(table, sizeof(table));
  for (const auto& s : secs) {
    out.pad_to_alignment();
    out.write(s.data(), s.stored_bytes());
  }
  if (out.offset() != h.file_size) {
    throw std::runtime_error("save_snapshot: internal size mismatch (wrote " +
                             std::to_string(out.offset()) + ", expected " +
                             std::to_string(h.file_size) + ")");
  }
  out.close();
  c.barrier();
  return h.file_size;
}

/// Raw (v2) save -- the historical default layout.
template <typename VMeta, typename EMeta>
std::uint64_t save_snapshot(frozen_dodgr<VMeta, EMeta>& g, const std::string& prefix) {
  return save_snapshot(g, prefix, snapshot_codec::raw);
}

/// Collective: reload a frozen graph saved by `save_snapshot`.  Raw (v1/v2)
/// sections -- and the raw sections of a v3 file -- are zero-copy views
/// into the mapping, pinned for the graph's lifetime; compressed v3
/// sections decode section-by-section (in parallel, TRIPOLL_THREADS) into
/// owned arenas after their checksums verify.  The rank count must match
/// the saving run's.  Throws std::runtime_error on any mismatch, on
/// sections that overrun the file, and on checksum failures.
template <typename VMeta, typename EMeta>
[[nodiscard]] frozen_dodgr<VMeta, EMeta> load_snapshot(comm::communicator& c,
                                                       const std::string& prefix) {
  namespace sd = snapshot_detail;
  static_assert(sd::snapshot_compatible<VMeta> && sd::snapshot_compatible<EMeta>,
                "snapshots require bitwise-serializable (or empty) metadata");
  const std::string path = snapshot_rank_path(prefix, c.rank());
  const auto file = mapped_file::map(path);
  if (file->size() < sd::kHeaderBytes) {
    throw std::runtime_error("load_snapshot: '" + path + "' is truncated");
  }
  const auto h = sd::header::decode(file->data(), path);
  if (h.nranks != static_cast<std::uint64_t>(c.size())) {
    throw std::runtime_error(
        "load_snapshot: '" + path + "' was saved by a " + std::to_string(h.nranks) +
        "-rank job but this run has " + std::to_string(c.size()) +
        " ranks (the vertex partition is rank-count-specific)");
  }
  if (h.rank != static_cast<std::uint64_t>(c.rank())) {
    throw std::runtime_error("load_snapshot: '" + path + "' belongs to rank " +
                             std::to_string(h.rank));
  }
  if (h.vmeta_size != sd::element_size<VMeta>() ||
      h.emeta_size != sd::element_size<EMeta>()) {
    throw std::runtime_error(
        "load_snapshot: '" + path + "' metadata layout (" +
        std::to_string(h.vmeta_size) + "/" + std::to_string(h.emeta_size) +
        " bytes) does not match the requested graph type (" +
        std::to_string(sd::element_size<VMeta>()) + "/" +
        std::to_string(sd::element_size<EMeta>()) + " bytes)");
  }
  // Element counts are untrusted until proven in-bounds: every vertex and
  // edge occupies at least one stored byte in some section (8 for raw), so
  // counts beyond the file size mean a corrupt or hostile header -- and,
  // unchecked, they would overflow the size arithmetic below into section
  // views pointing past the mapping.
  if (h.n > file->size() || h.m > file->size() || h.bm_words > file->size()) {
    sd::throw_corrupt(path);
  }
  if (h.file_size != file->size()) sd::throw_corrupt(path);

  const std::shared_ptr<const void> keep = file;
  frozen_arenas<VMeta, EMeta> ar;

  if (h.version < 3) {
    if (h.file_size != sd::file_bytes_for(h)) sd::throw_corrupt(path);

    // Walk the aligned sections, handing out views pinned by the mapping.
    std::size_t offset = sd::kHeaderBytes;
    const auto sizes = sd::section_bytes(h);
    std::array<const std::byte*, sd::kNumSections> base{};
    for (std::size_t i = 0; i < sd::num_sections(h); ++i) {
      offset = sd::align_up(offset);
      base[i] = file->data() + offset;
      offset += sizes[i];
    }

    const auto u64_view = [&](std::size_t sec, std::uint64_t count) {
      return arena<std::uint64_t>(reinterpret_cast<const std::uint64_t*>(base[sec]),
                                  count, keep);
    };
    const auto vid_view = [&](std::size_t sec, std::uint64_t count) {
      return arena<vertex_id>(reinterpret_cast<const vertex_id*>(base[sec]), count,
                              keep);
    };

    ar.vid = vid_view(0, h.n);
    ar.degree = u64_view(1, h.n);
    ar.order_rank = u64_view(2, h.n);
    ar.offset = u64_view(3, h.n + 1);
    if constexpr (std::is_empty_v<VMeta>) {
      ar.vmeta = meta_column<VMeta>(h.n);
      ar.target_vmeta = meta_column<VMeta>(h.m);
    } else {
      ar.vmeta = meta_column<VMeta>(reinterpret_cast<const VMeta*>(base[4]), h.n, keep);
      ar.target_vmeta =
          meta_column<VMeta>(reinterpret_cast<const VMeta*>(base[9]), h.m, keep);
    }
    ar.target = vid_view(5, h.m);
    ar.target_rank = u64_view(6, h.m);
    ar.target_out_degree = u64_view(7, h.m);
    if constexpr (std::is_empty_v<EMeta>) {
      ar.emeta = meta_column<EMeta>(h.m);
    } else {
      ar.emeta = meta_column<EMeta>(reinterpret_cast<const EMeta*>(base[8]), h.m, keep);
    }
    if (h.bm_words > 0) {  // v1 files and bitmap-free v2 files: arenas stay empty
      ar.bm_offset = u64_view(10, h.n + 1);
      ar.bm_base = u64_view(11, h.n);
      ar.bm_words = u64_view(12, h.bm_words);
    }
    return frozen_dodgr<VMeta, EMeta>(c, std::move(ar),
                                      static_cast<ordering_policy>(h.ordering));
  }

  // --- version 3: codec-tagged sections --------------------------------------
  if (file->size() < sd::kHeaderBytes + sd::kTableBytes) sd::throw_corrupt(path);
  const std::byte* table = file->data() + sd::kHeaderBytes;
  if (sd::fnv1a(table, sd::kTableBytes) != h.table_checksum) sd::throw_corrupt(path);

  struct section_ref {
    sd::column_codec codec = sd::column_codec::raw;
    std::uint64_t stored = 0;
    std::uint64_t checksum = 0;
    const std::byte* data = nullptr;
  };
  std::array<section_ref, sd::kNumSections> secs;
  std::uint64_t running = sd::kHeaderBytes + sd::kTableBytes;
  for (std::size_t i = 0; i < sd::kNumSections; ++i) {
    const std::byte* row = table + i * 24;
    const std::uint64_t codec_tag = serial::load_u64_le(row);
    if (codec_tag > static_cast<std::uint64_t>(sd::column_codec::varint_vertex_delta)) {
      throw std::runtime_error("load_snapshot: '" + path +
                               "' uses an unknown section codec " +
                               std::to_string(codec_tag));
    }
    secs[i].codec = static_cast<sd::column_codec>(codec_tag);
    secs[i].stored = serial::load_u64_le(row + 8);
    secs[i].checksum = serial::load_u64_le(row + 16);
    running = sd::align_up(running);
    // Checked walk: a stored length may never run past the mapping.
    if (running > file->size() || secs[i].stored > file->size() - running) {
      sd::throw_corrupt(path);
    }
    secs[i].data = file->data() + running;
    running += secs[i].stored;
  }
  if (running != h.file_size) sd::throw_corrupt(path);

  const auto logical = sd::section_bytes(h);
  const std::array<std::uint64_t, sd::kNumSections> counts = {
      h.n, h.n, h.n, h.n + 1, h.n,
      h.m, h.m, h.m, h.m,     h.m,
      h.bm_words > 0 ? h.n + 1 : 0, h.bm_words > 0 ? h.n : 0, h.bm_words};
  for (std::size_t i = 0; i < sd::kNumSections; ++i) {
    // Sections consumed as zero-copy views (metadata arenas and bitmap
    // words) are only ever written raw; any other tag would make the view
    // below cover logical[i] bytes of a shorter stored region.
    const bool view_only = i == 4 || i == 8 || i == 9 || i == 12;
    if (view_only && secs[i].codec != sd::column_codec::raw) sd::throw_corrupt(path);
    if (secs[i].codec == sd::column_codec::raw) {
      // Raw sections are served straight from the mapping; their stored
      // size must equal the logical column size.
      if (secs[i].stored != logical[i]) sd::throw_corrupt(path);
    } else {
      // A varint stream holds at least one byte per value: a smaller
      // section can only be truncation, caught before allocating counts.
      if (counts[i] > secs[i].stored) sd::throw_corrupt(path);
    }
  }

  // Decode the offset column first (the target column's slice boundaries),
  // then the remaining sections in parallel: checksum verify + decode per
  // section, raw sections verify only and stay zero-copy.
  const auto verify = [&](std::size_t i) {
    if (sd::fnv1a(secs[i].data, secs[i].stored) != secs[i].checksum) {
      sd::throw_corrupt(path);
    }
  };
  const auto decode_u64 = [&](std::size_t i, std::vector<std::uint64_t>& out) {
    out.resize(counts[i]);
    const std::byte* p = secs[i].data;
    const std::byte* end = p + secs[i].stored;
    switch (secs[i].codec) {
      case sd::column_codec::varint_delta:
        sd::decode_delta(p, end, out.data(), out.size(), path);
        break;
      case sd::column_codec::varint_gap:
        sd::decode_gap(p, end, out.data(), out.size(), path);
        break;
      default:
        sd::throw_corrupt(path);  // vertex_delta is valid only for section 5
    }
  };

  verify(3);
  std::vector<std::uint64_t> offset_col;
  if (secs[3].codec == sd::column_codec::raw) {
    offset_col.assign(reinterpret_cast<const std::uint64_t*>(secs[3].data),
                      reinterpret_cast<const std::uint64_t*>(secs[3].data) + h.n + 1);
  } else {
    decode_u64(3, offset_col);
  }
  // The CSR invariants double as decode bounds for the vertex-delta codec:
  // offset[i]..offset[i+1] become write indices into an h.m-sized buffer,
  // so every value -- not just front/back -- must be proven in range.
  if (!sd::valid_offsets(offset_col.data(), offset_col.size(), h.m)) {
    sd::throw_corrupt(path);
  }

  std::vector<std::uint64_t> vid_col, degree_col, rank_col, target_col, trank_col,
      toutdeg_col, bmoff_col, bmbase_col;
  struct decode_task {
    std::size_t sec;
    std::vector<std::uint64_t>* out;  ///< nullptr: verify checksum only
  };
  std::vector<decode_task> tasks;
  const auto plan = [&](std::size_t sec, std::vector<std::uint64_t>* out) {
    tasks.push_back({sec, secs[sec].codec == sd::column_codec::raw ? nullptr : out});
  };
  plan(0, &vid_col);
  plan(1, &degree_col);
  plan(2, &rank_col);
  plan(5, &target_col);
  plan(6, &trank_col);
  plan(7, &toutdeg_col);
  plan(10, &bmoff_col);
  plan(11, &bmbase_col);
  tasks.push_back({4, nullptr});
  tasks.push_back({8, nullptr});
  tasks.push_back({9, nullptr});
  tasks.push_back({12, nullptr});

  const int threads = core::resolve_threads(0);
  std::atomic<std::size_t> cursor{0};
  core::fork_join(threads, [&](int) {
    for (;;) {
      const std::size_t t = cursor.fetch_add(1, std::memory_order_relaxed);
      if (t >= tasks.size()) break;
      const auto& task = tasks[t];
      verify(task.sec);
      if (task.out == nullptr) continue;
      if (task.sec == 5 &&
          secs[5].codec == sd::column_codec::varint_vertex_delta) {
        task.out->resize(h.m);
        sd::decode_vertex_delta(secs[5].data, secs[5].data + secs[5].stored,
                                task.out->data(), offset_col.data(),
                                static_cast<std::size_t>(h.n), path);
      } else {
        decode_u64(task.sec, *task.out);
      }
    }
  });
  // bm_offset feeds the survey bitmap kernels as indices into bm_words, so
  // it gets the same full monotonicity check as the CSR offsets -- whether
  // it was gap-decoded or is served raw from the mapping.
  if (h.bm_words > 0) {
    const std::uint64_t* bm_off = secs[10].codec == sd::column_codec::raw
                                      ? reinterpret_cast<const std::uint64_t*>(secs[10].data)
                                      : bmoff_col.data();
    if (!sd::valid_offsets(bm_off, static_cast<std::size_t>(h.n) + 1, h.bm_words)) {
      sd::throw_corrupt(path);
    }
  }

  const auto u64_arena = [&](std::size_t sec, std::vector<std::uint64_t>&& col) {
    if (secs[sec].codec == sd::column_codec::raw) {
      return arena<std::uint64_t>(reinterpret_cast<const std::uint64_t*>(secs[sec].data),
                                  counts[sec], keep);
    }
    return arena<std::uint64_t>(std::move(col));
  };
  ar.vid = u64_arena(0, std::move(vid_col));
  ar.degree = u64_arena(1, std::move(degree_col));
  ar.order_rank = u64_arena(2, std::move(rank_col));
  ar.offset = arena<std::uint64_t>(std::move(offset_col));
  if constexpr (std::is_empty_v<VMeta>) {
    ar.vmeta = meta_column<VMeta>(h.n);
    ar.target_vmeta = meta_column<VMeta>(h.m);
  } else {
    ar.vmeta =
        meta_column<VMeta>(reinterpret_cast<const VMeta*>(secs[4].data), h.n, keep);
    ar.target_vmeta =
        meta_column<VMeta>(reinterpret_cast<const VMeta*>(secs[9].data), h.m, keep);
  }
  ar.target = u64_arena(5, std::move(target_col));
  ar.target_rank = u64_arena(6, std::move(trank_col));
  ar.target_out_degree = u64_arena(7, std::move(toutdeg_col));
  if constexpr (std::is_empty_v<EMeta>) {
    ar.emeta = meta_column<EMeta>(h.m);
  } else {
    ar.emeta =
        meta_column<EMeta>(reinterpret_cast<const EMeta*>(secs[8].data), h.m, keep);
  }
  if (h.bm_words > 0) {
    ar.bm_offset = u64_arena(10, std::move(bmoff_col));
    ar.bm_base = u64_arena(11, std::move(bmbase_col));
    ar.bm_words = arena<std::uint64_t>(
        reinterpret_cast<const std::uint64_t*>(secs[12].data), h.bm_words, keep);
  }
  frozen_dodgr<VMeta, EMeta> out(c, std::move(ar),
                                 static_cast<ordering_policy>(h.ordering));
  out.adopt_snapshot_id(h.content_id);
  return out;
}

/// Header fields of one rank's snapshot file, without loading (or even
/// walking) the sections.  What a process needs before committing to a
/// graph type: the CLI dispatches `serve` on the metadata element sizes,
/// and operators diff `content_id` across snapshot generations.
struct snapshot_peek {
  std::uint64_t version = 0;
  std::uint64_t nranks = 0;
  std::uint64_t rank = 0;
  std::uint64_t ordering = 0;
  std::uint64_t n = 0;
  std::uint64_t m = 0;
  std::uint64_t vmeta_size = 0;
  std::uint64_t emeta_size = 0;
  std::uint64_t content_id = 0;  ///< 0 for v1/v2 files (compute on load)
};

[[nodiscard]] inline snapshot_peek peek_snapshot(const std::string& path) {
  namespace sd = snapshot_detail;
  const auto file = mapped_file::map(path);
  if (file->size() < sd::kHeaderBytes) {
    throw std::runtime_error("peek_snapshot: '" + path + "' is truncated");
  }
  const auto h = sd::header::decode(file->data(), path);
  return snapshot_peek{h.version, h.nranks,     h.rank,       h.ordering, h.n,
                       h.m,       h.vmeta_size, h.emeta_size, h.content_id};
}

}  // namespace tripoll::graph
