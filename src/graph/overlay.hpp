// overlay.hpp -- mutable delta overlay over a frozen DODGr (streaming
// ingest, windowed expiry, incremental re-freeze).
//
// The frozen CSR (graph/frozen.hpp) is build-once: a new batch of
// timestamped edges would force a full re-shuffle, re-peel and re-freeze --
// O(|E|) work for an O(|delta|) change.  `graph::overlay` makes the graph
// a stream target instead:
//
//   frozen_dodgr<VM, EM> base = ...;        // or load_snapshot()
//   graph::overlay ov(base);                // collective, one-time O(|E|)
//   ov.ingest(batch);                       // collective, O(|delta|) rounds
//   tripoll::survey(ov)....run(opts);       // same engine, same results
//   auto refrozen = ov.compact();           // incremental re-freeze
//
// The overlay exposes the exact DODGr read API the survey engine traverses
// (record views with <+-sorted Adjm+, record locators, owner mapping), so
// core/survey.hpp and core/plan.hpp run over it unchanged -- through the
// generic (non-frozen) engine path, whose reported metrics are sums of
// per-batch contributions and therefore bit-identical to surveying a full
// rebuild of the same logical graph.
//
// Incremental maintenance model.  Each local vertex keeps, alongside its
// oriented Adjm+ record, its full UNDIRECTED metadata-augmented neighbor
// list (id, cached <+ rank, edge metadata, neighbor vertex metadata),
// replicated at both endpoints.  A batch then settles in delta-proportional
// collective rounds:
//
//   I1 route+dedup : edges normalize to (min,max) and shuffle to the owner
//                    of the min endpoint; duplicates within the batch merge
//                    chronologically-first (builder merge::keep_least when
//                    the metadata is ordered); duplicates of an already
//                    stored edge are dropped -- the stored edge wins.
//   I2 insert      : surviving edges insert undirected entries at both
//                    endpoints (new vertices materialize on their owner);
//                    both endpoints are marked dirty.
//   I3 rank+info   : dirty vertices recompute degree (and, under degree
//                    ordering, their <+ rank -- degeneracy peel ranks are
//                    sticky: existing vertices keep their frozen rank, new
//                    vertices enter at their current degree) and broadcast
//                    (id, rank, meta) over their neighborhoods -- one bulk
//                    message per (dirty vertex, rank) carrying the target
//                    list, not one per neighbor.  A receiver refreshes its
//                    cached entry; it joins the rebuild set ONLY if the
//                    rank change flips the edge's <+ orientation.  A
//                    non-flipping rank change is patched in place (the
//                    entry rotates to its new key-sorted slot, O(deg)),
//                    so a batch at a hub does not cascade into O(deg)
//                    record rebuilds.
//   I4 rebuild     : vertices whose Adjm+ membership changed (batch
//                    endpoints, expiry, orientation flips) re-orient and
//                    re-sort their record from the local neighbor list
//                    (two-sided state makes this a purely local pass),
//                    noting whether their out-SET actually changed.
//   I5 d+ flow     : targeted builder-P6 twin -- only records whose
//                    out-set changed report their new d+ to in-neighbors
//                    (plus each endpoint of a round-new edge to its new
//                    neighbor), patching target_out_degree in place;
//                    rank-patched records keep their d+ and owe nothing.
//
// Windowed expiry (`expire_before(t_min)`) drops aged-out undirected
// entries locally at BOTH endpoints (the replicated edge metadata makes the
// cut symmetric without communication) and reuses rounds I3-I5.
// `compact()` is the incremental re-freeze: per-rank merge of the overlay
// records into fresh CSR arenas in <+ order, REUSING the maintained ranks
// -- no shuffle, no degeneracy peel -- so steady-state cost is amortized
// O(|delta|).  The result is an ordinary frozen_dodgr: hub bitmaps are
// rebuilt when eligible and v3 snapshots round-trip.
//
// Thread-safety: the overlay is rank-local mutable state; mutating
// collectives (ingest/expire_before/compact) must be called from the
// owning thread with no survey in flight (docs/THREADING.md,
// docs/STREAMING.md).  Surveys over the overlay run the engine's serial
// per-rank path (the overlay is not a frozen_graph), which is what makes
// the bit-identity guarantee thread-count-trivial.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "comm/communicator.hpp"
#include "comm/key_hash.hpp"
#include "graph/dodgr.hpp"
#include "graph/frozen.hpp"
#include "graph/ordering.hpp"
#include "graph/types.hpp"
#include "serial/serialize.hpp"

namespace tripoll::graph {

/// One timestamped edge contributed to an overlay batch (any rank may
/// contribute any edge; self-loops are dropped, duplicates merge).
template <typename EMeta>
struct overlay_edge {
  vertex_id u = 0;
  vertex_id v = 0;
  EMeta meta{};
};

/// Global (identical on every rank) outcome of one ingest/expiry round.
struct overlay_ingest_stats {
  std::uint64_t submitted = 0;      ///< raw edges contributed (incl. dupes)
  std::uint64_t accepted = 0;       ///< genuinely-new undirected edges
  std::uint64_t duplicate_batch = 0;///< merged within the batch
  std::uint64_t duplicate_base = 0; ///< dropped: edge already stored
  std::uint64_t self_loops = 0;     ///< dropped at routing
  std::uint64_t new_vertices = 0;   ///< vertices first seen in this batch
  std::uint64_t rebuilt_vertices = 0; ///< records re-oriented this round
  std::uint64_t expired_edges = 0;  ///< undirected edges aged out
};

template <typename VMeta, typename EMeta>
class overlay {
 public:
  using vertex_meta_type = VMeta;
  using edge_meta_type = EMeta;
  using base_type = frozen_dodgr<VMeta, EMeta>;
  using entry_type = adj_entry<VMeta, EMeta>;
  using record_type = vertex_record<VMeta, EMeta>;
  using edge_batch = std::vector<overlay_edge<EMeta>>;
  using self = overlay<VMeta, EMeta>;

  /// Edge metadata orderable => batch duplicates merge chronologically
  /// first; otherwise the first routed copy wins (deterministic either way
  /// because dedup happens at a single owner rank).
  static constexpr bool meta_ordered = requires(const EMeta& a, const EMeta& b) {
    { a < b } -> std::convertible_to<bool>;
  };
  /// Edge metadata readable as a timestamp => windowed expiry available.
  static constexpr bool meta_timestamped = std::is_convertible_v<EMeta, std::uint64_t>;

  /// Collective: materialize the mutable overlay from a frozen base.  One
  /// O(|E|) pass copies the oriented records and exchanges the reverse
  /// direction so every vertex holds its full undirected neighbor list.
  explicit overlay(base_type& base)
      : comm_(&base.comm()), ordering_(base.ordering()),
        handle_(comm_->register_object(*this)) {
    // Pass 1: materialize every local node (no communication) so reverse
    // messages -- which may be processed as soon as pass 2 starts sending --
    // always find their destination node in place.
    nodes_.reserve(base.local_num_vertices());
    base.for_all_local([&](const vertex_id& v, const auto& rec) {
      node& nd = nodes_[v];
      nd.rec.degree = rec.degree;
      nd.rec.order_rank = rec.order_rank;
      nd.rec.meta = rec.meta;
      nd.rec.adj.reserve(rec.adj.size());
      nd.nbrs.reserve(rec.degree);
      for (const auto& e : rec.adj) {
        nd.rec.adj.push_back(entry_type{e.target, e.target_rank,
                                        e.target_out_degree, e.edge_meta,
                                        e.target_meta});
        nd.nbrs.push_back(nbr{e.target, e.target_rank, e.edge_meta, e.target_meta});
      }
    });
    // Pass 2: each oriented edge (v -> x) registers v in x's undirected
    // neighbor list, carrying v's rank/metadata and the edge's metadata.
    base.for_all_local([&](const vertex_id& v, const auto& rec) {
      for (const auto& e : rec.adj) {
        comm_->async(owner(e.target), reverse_nbr_handler{}, handle_, e.target, v,
                     rec.order_rank, rec.meta, e.edge_meta);
      }
    });
    comm_->barrier();
    for (auto& [v, nd] : nodes_) {
      (void)v;
      std::sort(nd.nbrs.begin(), nd.nbrs.end(),
                [](const nbr& a, const nbr& b) { return a.id < b.id; });
    }
    sid_ = base.snapshot_id();
  }

  ~overlay() { comm_->deregister_object(handle_); }
  overlay(const overlay&) = delete;
  overlay& operator=(const overlay&) = delete;

  // --- DODGr read API (what the survey engine traverses) --------------------

  [[nodiscard]] comm::communicator& comm() noexcept { return *comm_; }
  [[nodiscard]] int owner(vertex_id v) const noexcept {
    return comm_->owner(comm::key_hash<vertex_id>{}(v));
  }

  [[nodiscard]] const record_type* local_find(vertex_id v) const {
    const auto it = nodes_.find(v);
    return it == nodes_.end() ? nullptr : &it->second.rec;
  }

  using record_locator = const record_type*;
  [[nodiscard]] record_locator locate(vertex_id v) const {
    const auto it = nodes_.find(v);
    return it == nodes_.end() ? nullptr : &it->second.rec;
  }
  [[nodiscard]] const record_type& resolve_record(record_locator loc) const {
    return *loc;
  }

  template <typename Fn>
  void for_all_local(Fn&& fn) const {
    for (const auto& [v, nd] : nodes_) fn(v, nd.rec);
  }

  template <typename Fn>
  void for_all_local_located(Fn&& fn) const {
    for (const auto& [v, nd] : nodes_) fn(v, nd.rec, &nd.rec);
  }

  [[nodiscard]] std::size_t local_num_vertices() const noexcept {
    return nodes_.size();
  }
  [[nodiscard]] std::size_t local_num_edges() const noexcept {
    std::size_t m = 0;
    for (const auto& [v, nd] : nodes_) {
      (void)v;
      m += nd.rec.adj.size();
    }
    return m;
  }

  [[nodiscard]] ordering_policy ordering() const noexcept { return ordering_; }

  /// Collective: Table 1 columns over base+delta (cached until mutated).
  [[nodiscard]] graph_census census() {
    if (census_valid_) return census_;
    std::uint64_t verts = 0, dir_edges = 0, dmax = 0, dmax_plus = 0, wedges = 0;
    for (const auto& [v, nd] : nodes_) {
      (void)v;
      ++verts;
      dir_edges += nd.rec.degree;
      dmax = std::max(dmax, nd.rec.degree);
      const std::uint64_t dp = nd.rec.out_degree();
      dmax_plus = std::max(dmax_plus, dp);
      wedges += dp * (dp - 1) / 2;
    }
    census_.num_vertices = comm_->all_reduce_sum(verts);
    census_.num_directed_edges = comm_->all_reduce_sum(dir_edges);
    census_.max_degree = comm_->all_reduce_max(dmax);
    census_.max_out_degree = comm_->all_reduce_max(dmax_plus);
    census_.wedge_checks = comm_->all_reduce_sum(wedges);
    census_valid_ = true;
    return census_;
  }

  /// Rank-local content id, bumped deterministically by every mutating
  /// collective (service cache invalidation keys off it).  Seeded from the
  /// base's id, folded with the batch sequence number and the global
  /// accepted/expired counts -- identical inputs give identical ids, and
  /// any mutation that changed the graph changes the id.
  [[nodiscard]] std::uint64_t snapshot_id() const noexcept { return sid_; }

  /// How many mutating collectives (ingest/expire) have been applied.
  [[nodiscard]] std::uint64_t batches_applied() const noexcept { return batches_; }

  // --- mutation (collective) ------------------------------------------------

  /// Collective: apply one batch of timestamped edges.  New vertices get
  /// default-constructed metadata; see the overload below to supply it.
  overlay_ingest_stats ingest(const edge_batch& edges) {
    return ingest(edges, [](vertex_id) { return VMeta{}; });
  }

  /// Collective: apply one batch, with `vmeta_of(v)` supplying metadata for
  /// vertices first seen in this batch.  The function must be deterministic
  /// and identical on every rank (it runs on the new vertex's owner).
  template <typename VMetaFn>
  overlay_ingest_stats ingest(const edge_batch& edges, VMetaFn&& vmeta_of) {
    overlay_ingest_stats st;
    st.submitted = edges.size();

    // I1: normalize, drop self-loops, shuffle to the min-endpoint's owner
    // (the single dedup point for the batch AND for the stored graph).
    for (const auto& e : edges) {
      if (e.u == e.v) {
        ++local_self_loops_;
        continue;
      }
      const vertex_id a = std::min(e.u, e.v);
      const vertex_id b = std::max(e.u, e.v);
      comm_->async(owner(a), route_edge_handler{}, handle_, a, b, e.meta);
    }
    comm_->barrier();

    // I2: accept genuinely-new edges; insert undirected entries two-sided.
    for (auto& [key, meta] : batch_) {
      const auto [a, b] = key;
      node* na = find_node(a);
      if (na != nullptr && has_nbr(*na, b)) {
        ++local_dup_base_;
        continue;
      }
      ++local_accepted_;
      if (na == nullptr) na = &create_node(a, vmeta_of(a));
      insert_nbr(*na, nbr{b, 0, meta, VMeta{}});
      dirty_.insert(a);
      round_new_nbrs_[a].push_back(b);
      comm_->async(owner(b), insert_reverse_handler{}, handle_, b, a, meta);
    }
    comm_->barrier();
    // Reverse inserts for NEW vertices on other ranks materialized them
    // with default metadata; the handler could not run vmeta_of (it is not
    // wire-shippable), so new vertices created by insert_reverse_handler
    // are stamped here, locally, with the same deterministic function.
    for (const vertex_id v : created_remote_) {
      nodes_.at(v).rec.meta = vmeta_of(v);
      ++st.new_vertices;  // counted here, not in create_node, to stay local
    }
    st.new_vertices += local_new_vertices_;
    created_remote_.clear();
    local_new_vertices_ = 0;

    // I3-I5: shared rank/info/rebuild/d+ cascade (leaves rebuilt_vertices
    // as a local count; the batched reduction below globalizes it).
    propagate_and_rebuild(st);

    // One batched all-reduce for every stat -- collectives have per-call
    // latency, and a streaming ingest's fixed cost is paid per batch.
    const std::array<std::uint64_t, 7> local = {
        std::exchange(local_self_loops_, 0),  std::exchange(local_accepted_, 0),
        std::exchange(local_dup_batch_, 0),   std::exchange(local_dup_base_, 0),
        st.new_vertices, st.submitted, st.rebuilt_vertices};
    const auto total = reduce_stats(local);
    st.self_loops = total[0];
    st.accepted = total[1];
    st.duplicate_batch = total[2];
    st.duplicate_base = total[3];
    st.new_vertices = total[4];
    st.submitted = total[5];
    st.rebuilt_vertices = total[6];
    batch_.clear();
    finish_mutation(st.accepted + st.expired_edges);
    return st;
  }

  /// Collective: sliding-window expiry -- drop every stored edge whose
  /// timestamp is strictly below `t_min`, then re-settle ranks, records and
  /// d+ through the same cascade ingest uses.  Only available when the edge
  /// metadata converts to a timestamp.
  overlay_ingest_stats expire_before(std::uint64_t t_min)
    requires meta_timestamped
  {
    overlay_ingest_stats st;
    std::uint64_t dropped_halves = 0;
    for (auto& [v, nd] : nodes_) {
      const auto old_size = nd.nbrs.size();
      std::erase_if(nd.nbrs, [&](const nbr& x) {
        return static_cast<std::uint64_t>(x.emeta) < t_min;
      });
      if (nd.nbrs.size() != old_size) {
        dropped_halves += old_size - nd.nbrs.size();
        dirty_.insert(v);
      }
    }
    propagate_and_rebuild(st);
    // Replicated metadata makes the cut symmetric: each undirected edge is
    // dropped at exactly its two endpoints, so halves sum to 2x edges.  One
    // batched all-reduce globalizes both counters.
    const auto total = reduce_stats({dropped_halves, st.rebuilt_vertices, 0, 0, 0, 0, 0});
    st.expired_edges = total[0] / 2;
    st.rebuilt_vertices = total[1];
    finish_mutation(st.expired_edges);
    return st;
  }

  /// Collective: incremental re-freeze.  Merges the overlay records into
  /// fresh CSR arenas per rank in <+ order, REUSING the maintained ordering
  /// ranks (no shuffle, no degeneracy peel).  Vertices left with no edges
  /// (fully expired) are dropped, so the compacted graph equals a from-
  /// scratch build of the surviving edge set.  Hub bitmap rows are rebuilt
  /// under the usual eligibility rules; the result is an ordinary
  /// frozen_dodgr whose v3 snapshots round-trip.
  [[nodiscard]] base_type compact(const freeze_options& opts = {}) {
    using arenas_type = typename base_type::arenas_type;

    std::vector<std::pair<order_key, const record_type*>> order;
    order.reserve(nodes_.size());
    for (const auto& [v, nd] : nodes_) {
      if (nd.nbrs.empty()) continue;  // fully expired: drop isolated vertices
      order.emplace_back(make_order_key(v, nd.rec.order_rank), &nd.rec);
    }
    std::sort(order.begin(), order.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });

    const std::size_t n = order.size();
    std::vector<std::uint64_t> offset(n + 1);
    offset[0] = 0;
    for (std::size_t i = 0; i < n; ++i) {
      offset[i + 1] = offset[i] + order[i].second->adj.size();
    }
    const std::size_t m = offset[n];

    std::vector<vertex_id> vid(n);
    std::vector<std::uint64_t> degree(n), order_rank(n);
    std::vector<VMeta> vmeta;
    std::vector<vertex_id> target(m);
    std::vector<std::uint64_t> target_rank(m), target_outdeg(m);
    std::vector<EMeta> emeta;
    std::vector<VMeta> tvmeta;
    if constexpr (!std::is_empty_v<VMeta>) {
      vmeta.resize(n);
      tvmeta.resize(m);
    }
    if constexpr (!std::is_empty_v<EMeta>) emeta.resize(m);

    for (std::size_t i = 0; i < n; ++i) {
      const auto& [key, rec] = order[i];
      vid[i] = key.id;
      degree[i] = rec->degree;
      order_rank[i] = rec->order_rank;
      if constexpr (!std::is_empty_v<VMeta>) vmeta[i] = rec->meta;
      std::size_t e = offset[i];
      for (const auto& entry : rec->adj) {
        target[e] = entry.target;
        target_rank[e] = entry.target_rank;
        target_outdeg[e] = entry.target_out_degree;
        if constexpr (!std::is_empty_v<EMeta>) emeta[e] = entry.edge_meta;
        if constexpr (!std::is_empty_v<VMeta>) tvmeta[e] = entry.target_meta;
        ++e;
      }
    }

    std::vector<std::uint64_t> bm_offset, bm_base, bm_words;
    if constexpr (std::is_empty_v<VMeta> && std::is_empty_v<EMeta>) {
      if (opts.build_hub_bitmaps) {
        detail::build_hub_bitmap_columns(n, offset.data(), target.data(), opts,
                                         core::resolve_threads(opts.threads),
                                         bm_offset, bm_base, bm_words);
      }
    }

    arenas_type ar;
    ar.vid = arena<vertex_id>(std::move(vid));
    ar.degree = arena<std::uint64_t>(std::move(degree));
    ar.order_rank = arena<std::uint64_t>(std::move(order_rank));
    ar.offset = arena<std::uint64_t>(std::move(offset));
    ar.vmeta = detail::make_meta_column<meta_column<VMeta>>(std::move(vmeta), n);
    ar.target = arena<vertex_id>(std::move(target));
    ar.target_rank = arena<std::uint64_t>(std::move(target_rank));
    ar.target_out_degree = arena<std::uint64_t>(std::move(target_outdeg));
    ar.emeta = detail::make_meta_column<meta_column<EMeta>>(std::move(emeta), m);
    ar.target_vmeta = detail::make_meta_column<meta_column<VMeta>>(std::move(tvmeta), m);
    ar.bm_offset = arena<std::uint64_t>(std::move(bm_offset));
    ar.bm_base = arena<std::uint64_t>(std::move(bm_base));
    ar.bm_words = arena<std::uint64_t>(std::move(bm_words));
    comm_->barrier();
    return base_type(*comm_, std::move(ar), ordering_);
  }

 private:
  /// One undirected neighbor with replicated state: the cached <+ rank and
  /// vertex metadata of the neighbor, and the edge's metadata (stored at
  /// BOTH endpoints so orientation, expiry and rebuilds are local).
  struct nbr {
    vertex_id id = 0;
    std::uint64_t rank = 0;
    EMeta emeta{};
    VMeta vmeta{};
  };

  struct node {
    record_type rec;
    std::vector<nbr> nbrs;  ///< sorted by id
  };

  [[nodiscard]] node* find_node(vertex_id v) {
    const auto it = nodes_.find(v);
    return it == nodes_.end() ? nullptr : &it->second;
  }

  node& create_node(vertex_id v, const VMeta& meta) {
    node& nd = nodes_[v];
    nd.rec.meta = meta;
    fresh_.push_back(v);
    ++local_new_vertices_;
    return nd;
  }

  [[nodiscard]] static bool has_nbr(const node& nd, vertex_id id) {
    const auto it = std::lower_bound(
        nd.nbrs.begin(), nd.nbrs.end(), id,
        [](const nbr& x, vertex_id key) { return x.id < key; });
    return it != nd.nbrs.end() && it->id == id;
  }

  static void insert_nbr(node& nd, nbr x) {
    const auto it = std::lower_bound(
        nd.nbrs.begin(), nd.nbrs.end(), x.id,
        [](const nbr& e, vertex_id key) { return e.id < key; });
    if (it != nd.nbrs.end() && it->id == x.id) {
      throw std::runtime_error("tripoll: overlay: duplicate neighbor insert for vertex " +
                               std::to_string(x.id));
    }
    nd.nbrs.insert(it, std::move(x));
  }

  /// Re-key one Adjm+ entry after its target's rank changed without an
  /// orientation flip: update the cached rank/meta and rotate the entry to
  /// its new key-sorted position.  O(deg) worst case vs the O(deg log deg)
  /// hash-and-resort of a full record rebuild, and the record stays sorted
  /// at every point, so later lookups (including further patches in the
  /// same round) keep binary-searching correctly.
  static void patch_adj_entry(record_type& rec, vertex_id target, std::uint64_t old_rank,
                              std::uint64_t new_rank, const VMeta& new_meta) {
    auto& adj = rec.adj;
    const auto key_less = [](const entry_type& e, const order_key& k) { return e.key() < k; };
    const order_key old_key = make_order_key(target, old_rank);
    const auto it = std::lower_bound(adj.begin(), adj.end(), old_key, key_less);
    if (it == adj.end() || it->target != target) return;
    it->target_rank = new_rank;
    it->target_meta = new_meta;
    const order_key new_key = it->key();
    if (new_key < old_key) {
      const auto pos = std::lower_bound(adj.begin(), it, new_key, key_less);
      std::rotate(pos, it, it + 1);
    } else {
      const auto pos = std::lower_bound(it + 1, adj.end(), new_key, key_less);
      std::rotate(it, it + 1, pos);
    }
  }

  /// I3-I5: recompute degree/rank for dirty vertices, broadcast (id, rank,
  /// meta) to their neighborhoods, rebuild dirtied Adjm+ records locally,
  /// then flow d+ to in-neighbors.  Shared by ingest and expiry.
  void propagate_and_rebuild(overlay_ingest_stats& st) {
    // I3a: degrees and ranks are local state.  Under degree ordering the
    // rank IS the (updated) undirected degree, exactly what a full rebuild
    // would assign.  Degeneracy peel ranks are sticky for existing vertices
    // (re-peeling is a full-graph pass by construction); vertices first
    // seen this round enter the order at their current degree.
    for (const vertex_id v : dirty_) {
      node& nd = nodes_.at(v);
      nd.rec.degree = nd.nbrs.size();
      if (ordering_ == ordering_policy::degree) nd.rec.order_rank = nd.rec.degree;
    }
    if (ordering_ != ordering_policy::degree) {
      for (const vertex_id v : fresh_) {
        node& nd = nodes_.at(v);
        nd.rec.order_rank = nd.rec.degree;
      }
    }
    fresh_.clear();

    // I3b: broadcast (id, rank, meta) over each dirty vertex's
    // neighborhood.  Receivers refresh their cached entry; they join the
    // rebuild set ONLY if the rank change flips the edge's <+ orientation
    // (their adjacency membership changes).  A rank change that keeps the
    // orientation is patched in place -- without this distinction a single
    // new edge at a hub would trigger O(deg) full record rebuilds.
    dirty_adj_ = dirty_;
    std::vector<std::vector<vertex_id>> buckets(static_cast<std::size_t>(comm_->size()));
    for (const vertex_id v : dirty_) {
      const node& nd = nodes_.at(v);
      for (auto& b : buckets) b.clear();
      for (const nbr& x : nd.nbrs) {
        buckets[static_cast<std::size_t>(owner(x.id))].push_back(x.id);
      }
      for (int r = 0; r < comm_->size(); ++r) {
        const auto& b = buckets[static_cast<std::size_t>(r)];
        if (b.empty()) continue;
        comm_->async(r, nbr_info_handler{}, handle_, v, nd.rec.order_rank,
                     nd.rec.meta, serial::as_wire_span(b));
      }
    }
    comm_->barrier();

    // I4: purely local re-orientation of every dirtied record.  Records
    // whose out-neighbor SET actually changed (new edge, expiry, or an
    // orientation flip) are remembered: they are the only vertices whose
    // d+ can differ, so they are the only ones that owe I5 reports.
    std::uint64_t rebuilt = 0;
    std::vector<vertex_id> dplus_changed;
    dplus_changed.reserve(dirty_adj_.size());
    for (const vertex_id v : dirty_adj_) {
      node& nd = nodes_.at(v);
      ++rebuilt;
      std::unordered_map<vertex_id, std::uint64_t> old_dplus;
      old_dplus.reserve(nd.rec.adj.size());
      for (const entry_type& e : nd.rec.adj) old_dplus.emplace(e.target, e.target_out_degree);
      nd.rec.adj.clear();
      for (const nbr& x : nd.nbrs) {
        if (!order_less(v, nd.rec.order_rank, x.id, x.rank)) continue;
        const auto it = old_dplus.find(x.id);
        // A target absent from the old record flipped orientation or is a
        // new edge -- in both cases that target's own out-set changed (or
        // the edge is recorded in round_new_nbrs_), so its I5 report
        // overwrites the placeholder below.
        const std::uint64_t dp = it == old_dplus.end() ? 0 : it->second;
        nd.rec.adj.push_back(entry_type{x.id, x.rank, dp, x.emeta, x.vmeta});
      }
      std::sort(nd.rec.adj.begin(), nd.rec.adj.end(),
                [](const entry_type& a, const entry_type& b) { return a.key() < b.key(); });
      bool changed = nd.rec.adj.size() != old_dplus.size();
      if (!changed) {
        for (const entry_type& e : nd.rec.adj) {
          if (!old_dplus.contains(e.target)) {
            changed = true;
            break;
          }
        }
      }
      if (changed) dplus_changed.push_back(v);
    }
    st.rebuilt_vertices = rebuilt;  // local; callers batch-reduce with their stats

    // I5: builder-P6 twin, but targeted -- d+ flows only where it may have
    // changed.  Every record whose out-set changed reports to all its
    // in-neighbors; additionally each endpoint of a round-new edge reports
    // to that specific neighbor (whose placeholder, if the edge oriented
    // toward it, awaits the value -- the handler is idempotent, so the
    // occasional double send is harmless).  Rank-patched records keep
    // their d+ and owe nothing.
    for (const vertex_id v : dplus_changed) {
      const node& nd = nodes_.at(v);
      const auto dplus_v = static_cast<std::uint64_t>(nd.rec.adj.size());
      for (auto& b : buckets) b.clear();
      for (const nbr& x : nd.nbrs) {
        if (order_less(x.id, x.rank, v, nd.rec.order_rank)) {
          buckets[static_cast<std::size_t>(owner(x.id))].push_back(x.id);
        }
      }
      for (int r = 0; r < comm_->size(); ++r) {
        const auto& b = buckets[static_cast<std::size_t>(r)];
        if (b.empty()) continue;
        comm_->async(r, dplus_handler{}, handle_, v, nd.rec.order_rank, dplus_v,
                     serial::as_wire_span(b));
      }
    }
    for (const auto& [v, targets] : round_new_nbrs_) {
      const auto itn = nodes_.find(v);
      if (itn == nodes_.end()) continue;
      const node& nd = itn->second;
      const auto dplus_v = static_cast<std::uint64_t>(nd.rec.adj.size());
      for (auto& b : buckets) b.clear();
      for (const vertex_id x : targets) {
        buckets[static_cast<std::size_t>(owner(x))].push_back(x);
      }
      for (int r = 0; r < comm_->size(); ++r) {
        const auto& b = buckets[static_cast<std::size_t>(r)];
        if (b.empty()) continue;
        comm_->async(r, dplus_handler{}, handle_, v, nd.rec.order_rank, dplus_v,
                     serial::as_wire_span(b));
      }
    }
    round_new_nbrs_.clear();
    comm_->barrier();
    dirty_.clear();
    dirty_adj_.clear();
  }

  /// Elementwise-sum all-reduce of a stats vector: one collective per
  /// mutation instead of one per counter.
  [[nodiscard]] std::array<std::uint64_t, 7> reduce_stats(
      const std::array<std::uint64_t, 7>& local) {
    return comm_->all_reduce(local, [](const std::array<std::uint64_t, 7>& a,
                                       const std::array<std::uint64_t, 7>& b) {
      std::array<std::uint64_t, 7> r{};
      for (std::size_t i = 0; i < r.size(); ++i) r[i] = a[i] + b[i];
      return r;
    });
  }

  /// Deterministically advance the content id and invalidate caches after a
  /// mutating collective (`changed` is a global count, identical everywhere).
  void finish_mutation(std::uint64_t changed) {
    ++batches_;
    detail::fnv1a_accumulator acc;
    acc.mix_u64(sid_);
    acc.mix_u64(batches_);
    acc.mix_u64(changed);
    sid_ = acc.h != 0 ? acc.h : 1;
    census_valid_ = false;
  }

  // --- handlers (run on the destination rank's owning thread) ----------------

  struct reverse_nbr_handler {
    void operator()(comm::communicator& c, comm::dist_handle<self> h, vertex_id v,
                    vertex_id from, std::uint64_t from_rank, const VMeta& from_meta,
                    const EMeta& emeta) {
      self& ov = c.resolve(h);
      node* nd = ov.find_node(v);
      if (nd == nullptr) {
        throw std::runtime_error(
            "tripoll: overlay: base edge targets vertex " + std::to_string(v) +
            " that is not stored on its owner rank");
      }
      nd->nbrs.push_back(nbr{from, from_rank, emeta, from_meta});
    }
  };

  struct route_edge_handler {
    void operator()(comm::communicator& c, comm::dist_handle<self> h, vertex_id a,
                    vertex_id b, const EMeta& meta) {
      self& ov = c.resolve(h);
      auto [it, inserted] = ov.batch_.try_emplace({a, b}, meta);
      if (!inserted) {
        ++ov.local_dup_batch_;
        if constexpr (meta_ordered) {
          if (meta < it->second) it->second = meta;  // chronologically first
        }
      }
    }
  };

  struct insert_reverse_handler {
    void operator()(comm::communicator& c, comm::dist_handle<self> h, vertex_id b,
                    vertex_id a, const EMeta& meta) {
      self& ov = c.resolve(h);
      node* nb = ov.find_node(b);
      if (nb == nullptr) {
        nb = &ov.nodes_[b];
        ov.fresh_.push_back(b);
        ov.created_remote_.push_back(b);
      }
      insert_nbr(*nb, nbr{a, 0, meta, VMeta{}});
      ov.dirty_.insert(b);
      ov.round_new_nbrs_[b].push_back(a);
    }
  };

  /// Rank/meta update for one receiver vertex (bulk handler body).
  void apply_nbr_info(vertex_id v, vertex_id from, std::uint64_t from_rank,
                      const VMeta& from_meta) {
    node* nd = find_node(v);
    if (nd == nullptr) return;  // vertex expired concurrently: nothing to patch
    const auto it = std::lower_bound(
        nd->nbrs.begin(), nd->nbrs.end(), from,
        [](const nbr& x, vertex_id key) { return x.id < key; });
    if (it == nd->nbrs.end() || it->id != from) return;  // edge expired
    const std::uint64_t old_rank = it->rank;
    it->rank = from_rank;
    it->vmeta = from_meta;
    if (dirty_adj_.contains(v)) return;  // full rebuild already scheduled
    const std::uint64_t rank_v = nd->rec.order_rank;
    const bool was_out = order_less(v, rank_v, from, old_rank);
    const bool now_out = order_less(v, rank_v, from, from_rank);
    if (was_out != now_out) {
      // Orientation flip: v's Adjm+ membership changes -- rebuild in I4.
      dirty_adj_.insert(v);
      return;
    }
    // Fast path: the edge keeps its orientation.  If `from` sits in v's
    // record, slide its entry to the new <+ position in place (O(deg)
    // rotate, record stays key-sorted); v's out-degree is unchanged, so
    // no I5 report is owed and no rebuild happens.
    if (now_out) patch_adj_entry(nd->rec, from, old_rank, from_rank, from_meta);
  }

  /// I3b bulk message: one (id, rank, meta) update from a dirty vertex,
  /// fanned out to all its neighbors owned by the receiving rank.  One
  /// message per (dirty vertex, rank) pair instead of per neighbor -- at a
  /// hub endpoint that is the difference between O(deg) and O(ranks)
  /// messages per rank change.
  struct nbr_info_handler {
    void operator()(comm::communicator& c, comm::dist_handle<self> h, vertex_id from,
                    std::uint64_t from_rank, const VMeta& from_meta,
                    const serial::wire_span<vertex_id>& targets) {
      self& ov = c.resolve(h);
      for (const vertex_id v : targets) ov.apply_nbr_info(v, from, from_rank, from_meta);
    }
  };

  /// I5 bulk message: one d+ report from vertex v, patched into the adj
  /// entry for v at each listed in-neighbor owned by the receiving rank.
  struct dplus_handler {
    void operator()(comm::communicator& c, comm::dist_handle<self> h, vertex_id v,
                    std::uint64_t rank_v, std::uint64_t dplus_v,
                    const serial::wire_span<vertex_id>& targets) {
      self& ov = c.resolve(h);
      const auto key = make_order_key(v, rank_v);
      for (const vertex_id u : targets) {
        node* nd = ov.find_node(u);
        if (nd == nullptr) continue;
        const auto it = std::lower_bound(
            nd->rec.adj.begin(), nd->rec.adj.end(), key,
            [](const entry_type& e, const order_key& k) { return e.key() < k; });
        if (it != nd->rec.adj.end() && it->target == v) it->target_out_degree = dplus_v;
      }
    }
  };

  struct pair_key_hash {
    [[nodiscard]] std::size_t operator()(const std::pair<vertex_id, vertex_id>& p) const noexcept {
      return static_cast<std::size_t>(
          serial::splitmix64(serial::splitmix64(p.first) ^ p.second));
    }
  };

  comm::communicator* comm_;
  ordering_policy ordering_;
  comm::dist_handle<self> handle_;
  std::unordered_map<vertex_id, node, comm::key_hash<vertex_id>> nodes_;
  std::unordered_map<std::pair<vertex_id, vertex_id>, EMeta, pair_key_hash> batch_;
  std::unordered_set<vertex_id> dirty_;      ///< structural change this round
  std::unordered_set<vertex_id> dirty_adj_;  ///< records needing re-orientation
  std::vector<vertex_id> fresh_;             ///< vertices first seen this round
  std::vector<vertex_id> created_remote_;    ///< new vertices from reverse inserts
  /// Per round-new edge, each endpoint's list of its new neighbors: the
  /// targets of the endpoint's extra (targeted) I5 d+ reports.
  std::unordered_map<vertex_id, std::vector<vertex_id>, comm::key_hash<vertex_id>>
      round_new_nbrs_;
  graph_census census_{};
  bool census_valid_ = false;
  std::uint64_t sid_ = 1;
  std::uint64_t batches_ = 0;
  std::uint64_t local_accepted_ = 0;
  std::uint64_t local_dup_batch_ = 0;
  std::uint64_t local_dup_base_ = 0;
  std::uint64_t local_self_loops_ = 0;
  std::uint64_t local_new_vertices_ = 0;
};

/// Deduction guide: `graph::overlay ov(frozen);`.
template <typename VMeta, typename EMeta>
overlay(frozen_dodgr<VMeta, EMeta>&) -> overlay<VMeta, EMeta>;

}  // namespace tripoll::graph
