// builder.hpp -- distributed construction of the DODGr from raw edges.
//
// The input is a stream of undirected edges with optional metadata plus
// per-vertex metadata, contributed by every rank.  Construction is itself a
// distributed computation (the input never lands on one rank):
//
//   P1  dedup    : edges shuffle to the owner of their normalized (min,max)
//                  pair; duplicates merge under a policy (e.g. keep the
//                  chronologically-first timestamp, the paper's Reddit rule).
//   P2  scatter  : each unique edge (a,b) delivers (b,meta) to Rank(a) and
//                  (a,meta) to Rank(b), building undirected adjacency.
//   P3  degrees  : d(v) = |Adj(v)| is now local.
//   P3b ordering : assign each vertex its <+ rank under the chosen
//                  ordering_policy -- the degree itself, or the peel-wave
//                  index of a distributed k-core peeling pass
//                  (graph/ordering.hpp).
//   P4  exchange : every vertex sends (v, rank(v), meta(v)) to each neighbor;
//                  receivers learn target ranks/metadata for the <+ order
//                  and the Adjm+ entries.
//   P5  assemble : locally orient edges by <+, sort Adjm+(v), fill records.
//   P6  d+ flow  : every vertex reports d+(v) to its DODGr in-neighbors so
//                  their adjacency entries can drive Push-Pull decisions.
#pragma once

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "comm/communicator.hpp"
#include "comm/distributed_map.hpp"
#include "graph/dodgr.hpp"
#include "graph/ordering.hpp"
#include "graph/types.hpp"

namespace tripoll::graph {

/// Merge policies for duplicate undirected edges (multigraph reduction).
namespace merge {

/// First writer wins (arrival order; nondeterministic under races across
/// ranks, acceptable for metadata-free counting).
struct keep_existing {
  template <typename EM>
  void operator()(EM& /*existing*/, const EM& /*incoming*/) const noexcept {}
};

/// Keep the smallest metadata value (deterministic; with timestamp metadata
/// this is the paper's "chronologically-first comment" rule).
struct keep_least {
  template <typename EM>
  void operator()(EM& existing, const EM& incoming) const {
    if (incoming < existing) existing = incoming;
  }
};

/// Keep the largest metadata value.
struct keep_greatest {
  template <typename EM>
  void operator()(EM& existing, const EM& incoming) const {
    if (existing < incoming) existing = incoming;
  }
};

}  // namespace merge

template <typename VertexMeta, typename EdgeMeta, typename MergePolicy = merge::keep_existing>
class graph_builder {
 public:
  using graph_type = dodgr<VertexMeta, EdgeMeta>;
  using self = graph_builder<VertexMeta, EdgeMeta, MergePolicy>;

  explicit graph_builder(comm::communicator& c,
                         ordering_policy ordering = ordering_policy::degree)
      : comm_(&c), edges_(c), records_(c), ordering_(ordering) {}

  graph_builder(const graph_builder&) = delete;
  graph_builder& operator=(const graph_builder&) = delete;

  [[nodiscard]] ordering_policy ordering() const noexcept { return ordering_; }

  /// Contribute one undirected edge.  Self-loops are dropped (triangles
  /// never use them); duplicates merge under MergePolicy at build time.
  void add_edge(vertex_id u, vertex_id v, const EdgeMeta& meta = EdgeMeta{}) {
    if (u == v) {
      ++dropped_self_loops_;
      return;
    }
    const auto key = normalize(u, v);
    edges_.async_visit(key, dedup_visitor{}, meta);
    // Both endpoints must exist as vertices even if metadata never arrives.
    records_.async_visit(u, touch_visitor{});
    records_.async_visit(v, touch_visitor{});
  }

  /// Contribute metadata for a vertex (may arrive from any rank).
  void add_vertex_meta(vertex_id v, const VertexMeta& meta) {
    records_.async_visit(v, set_meta_visitor{}, meta);
  }

  [[nodiscard]] std::uint64_t local_dropped_self_loops() const noexcept {
    return dropped_self_loops_;
  }

  /// Peeling summary of the last build (meaningful after build_into with
  /// ordering_policy::degeneracy; zero-initialized otherwise).
  [[nodiscard]] const degeneracy_stats& peel_stats() const noexcept {
    return peel_stats_;
  }

  /// Collective: run the construction pipeline, filling `g`.  The builder's
  /// staging storage is released afterwards; the builder may not be reused.
  void build_into(graph_type& g) {
    auto& c = *comm_;
    c.barrier();  // P1 complete: all edges deduped, all vertex meta landed

    // P2: scatter unique edges to both endpoints.
    edges_.for_all_local([&](const pair_key& key, const dedup_slot& slot) {
      records_.async_visit_if_exists(key.first, append_raw_visitor{}, key.second,
                                     slot.meta);
      records_.async_visit_if_exists(key.second, append_raw_visitor{}, key.first,
                                     slot.meta);
    });
    c.barrier();

    // P3+P3b: degrees are local; assign <+ ranks under the chosen policy.
    if (ordering_ == ordering_policy::degeneracy) {
      peel_stats_ = degeneracy_peel(
          c, records_, [](const build_record& rec, auto&& fn) {
            for (const auto& [u, em] : rec.raw_adj) {
              (void)em;
              fn(u);
            }
          });
      records_.for_all_local([](const vertex_id&, build_record& rec) {
        rec.order_rank = rec.peel.rank;
      });
    } else {
      records_.for_all_local([](const vertex_id&, build_record& rec) {
        rec.order_rank = static_cast<std::uint64_t>(rec.raw_adj.size());
      });
    }

    // P4: exchange (id, rank, meta) with neighbors.
    records_.for_all_local([&](const vertex_id& v, build_record& rec) {
      for (const auto& [u, em] : rec.raw_adj) {
        (void)em;
        records_.async_visit_if_exists(u, deliver_ninfo_visitor{}, v, rec.order_rank,
                                       rec.meta);
      }
    });
    c.barrier();

    // P5: orient by <+, sort, assemble final records (rank-local).
    records_.for_all_local([&](const vertex_id& v, build_record& rec) {
      std::sort(rec.ninfo.begin(), rec.ninfo.end(),
                [](const ninfo_entry& a, const ninfo_entry& b) { return a.id < b.id; });
      auto& out = g.storage().local_at_or_create(v);
      out.degree = rec.raw_adj.size();
      out.order_rank = rec.order_rank;
      out.meta = rec.meta;
      out.adj.clear();
      for (const auto& [u, em] : rec.raw_adj) {
        const ninfo_entry& info = find_ninfo(rec, v, u, "P5");
        if (order_less(v, rec.order_rank, u, info.rank)) {
          out.adj.push_back(adj_entry<VertexMeta, EdgeMeta>{u, info.rank, 0, em, info.meta});
        }
      }
      std::sort(out.adj.begin(), out.adj.end(),
                [](const auto& a, const auto& b) { return a.key() < b.key(); });
    });
    c.barrier();

    // P6: report d+(v) to DODGr in-neighbors (u <+ v holds their entry for v).
    records_.for_all_local([&](const vertex_id& v, build_record& rec) {
      const auto* gv = g.local_find(v);
      if (gv == nullptr) {
        throw std::runtime_error("tripoll: graph_builder P6: vertex " +
                                 std::to_string(v) +
                                 " has no assembled record on its owner rank");
      }
      const auto dplus_v = static_cast<std::uint64_t>(gv->adj.size());
      for (const auto& [u, em] : rec.raw_adj) {
        (void)em;
        const ninfo_entry& info = find_ninfo(rec, v, u, "P6");
        if (order_less(u, info.rank, v, rec.order_rank)) {
          g.async_visit(u, set_dplus_visitor{}, v, rec.order_rank, dplus_v);
        }
      }
    });
    c.barrier();

    edges_.clear_local();
    records_.clear_local();
    g.set_ordering(ordering_);
    g.invalidate_census();
  }

 private:
  using pair_key = std::pair<vertex_id, vertex_id>;

  [[nodiscard]] static pair_key normalize(vertex_id u, vertex_id v) noexcept {
    return u < v ? pair_key{u, v} : pair_key{v, u};
  }

  struct dedup_slot {
    EdgeMeta meta{};
    bool set = false;

    template <typename Archive>
    void serialize(Archive& ar) {
      ar(meta, set);
    }
  };

  struct ninfo_entry {
    vertex_id id = 0;
    std::uint64_t rank = 0;  ///< neighbor's <+ ordering rank
    VertexMeta meta{};
  };

  struct build_record {
    VertexMeta meta{};
    std::uint64_t order_rank = 0;
    peel_state peel{};
    std::vector<std::pair<vertex_id, EdgeMeta>> raw_adj;
    std::vector<ninfo_entry> ninfo;
  };

  /// The P4 report neighbor `u` delivered to `v`.  Every neighbor must have
  /// reported itself; a miss means a lost or mis-routed P4 message and is a
  /// construction-breaking bug, so fail loudly instead of dereferencing an
  /// invalid iterator.
  [[nodiscard]] static const ninfo_entry& find_ninfo(const build_record& rec, vertex_id v,
                                                     vertex_id u, const char* phase) {
    const auto it = std::lower_bound(
        rec.ninfo.begin(), rec.ninfo.end(), u,
        [](const ninfo_entry& e, vertex_id id) { return e.id < id; });
    if (it == rec.ninfo.end() || it->id != u) {
      throw std::runtime_error("tripoll: graph_builder " + std::string(phase) +
                               ": neighbor " + std::to_string(u) + " of vertex " +
                               std::to_string(v) + " never arrived in the P4 exchange");
    }
    return *it;
  }

  struct dedup_visitor {
    void operator()(const pair_key& /*key*/, dedup_slot& slot, const EdgeMeta& incoming) {
      if (!slot.set) {
        slot.meta = incoming;
        slot.set = true;
      } else {
        MergePolicy{}(slot.meta, incoming);
      }
    }
  };

  struct touch_visitor {
    void operator()(const vertex_id& /*v*/, build_record& /*rec*/) {}
  };

  struct set_meta_visitor {
    void operator()(const vertex_id& /*v*/, build_record& rec, const VertexMeta& meta) {
      rec.meta = meta;
    }
  };

  struct append_raw_visitor {
    void operator()(const vertex_id& /*v*/, build_record& rec, vertex_id neighbor,
                    const EdgeMeta& meta) {
      rec.raw_adj.emplace_back(neighbor, meta);
    }
  };

  struct deliver_ninfo_visitor {
    void operator()(const vertex_id& /*v*/, build_record& rec, vertex_id neighbor,
                    std::uint64_t neighbor_rank, const VertexMeta& neighbor_meta) {
      rec.ninfo.push_back(ninfo_entry{neighbor, neighbor_rank, neighbor_meta});
    }
  };

  struct set_dplus_visitor {
    // Runs on the owner of `u`: find u's adjacency entry for `v` (search key
    // is v's <+ order key) and record d+(v).
    void operator()(const vertex_id& /*u*/, vertex_record<VertexMeta, EdgeMeta>& rec,
                    vertex_id v, std::uint64_t rank_v, std::uint64_t dplus_v) {
      const auto key = make_order_key(v, rank_v);
      auto it = std::lower_bound(rec.adj.begin(), rec.adj.end(), key,
                                 [](const auto& e, const order_key& k) { return e.key() < k; });
      if (it != rec.adj.end() && it->target == v) it->target_out_degree = dplus_v;
    }
  };

  comm::communicator* comm_;
  comm::distributed_map<pair_key, dedup_slot> edges_;
  comm::distributed_map<vertex_id, build_record> records_;
  ordering_policy ordering_ = ordering_policy::degree;
  degeneracy_stats peel_stats_{};
  std::uint64_t dropped_self_loops_ = 0;
};

}  // namespace tripoll::graph
