// ordering.hpp -- pluggable vertex-ordering policies for DODGr construction.
//
// TriPoll's push/pull decisions and wedge-closing cost are driven entirely by
// the vertex order `<+` (paper Secs. 3/4.3).  The seed implementation
// hard-codes degree order; Pashanasangi & Seshadhri ("Faster and Generalized
// Temporal Triangle Counting, via Degeneracy Ordering") show that ordering by
// the k-core peel sequence bounds every out-degree by the graph degeneracy,
// shrinking |W+| = sum_v C(d+(v), 2) well below what raw degree order
// achieves on skewed graphs.
//
// The subsystem has two parts:
//   * `ordering_policy` selects how the builder assigns each vertex its
//     ordering rank (the first component of `order_key`):
//       - degree:     rank = d(v), the seed behavior.
//       - degeneracy: rank = the vertex's peel-wave index from a distributed
//                     k-core peeling pass (below).
//   * `degeneracy_peel` runs that peeling pass collectively over any staged
//     adjacency held in a distributed_map whose record embeds a
//     `peel_state peel;` member.
//
// Peeling proceeds in globally synchronized *waves*.  At level k, every
// still-alive vertex whose remaining degree is <= k is removed in the current
// wave and notifies each neighbor once; a barrier lands all notifications
// before the next wave's scan.
//
// Determinism guarantee (relied on by frozen snapshots and cross-backend
// result identity): a vertex's wave index -- and therefore its full order
// key (wave, splitmix64(id), id), whose hash/id components depend on nothing
// but the id -- is a pure structural function of the edge set, identical
// across rank counts, transport backends and message timing.  Two mechanisms
// enforce this:
//
//   * The scan performs no communication, so no decrement can land mid-scan:
//     wave membership is decided against a fixed snapshot of `remaining`.
//   * Decrement notifications NEVER touch `remaining` directly.  They park
//     in `peel_state::pending` and are folded into `remaining` at exactly
//     one point per wave, immediately after the wave's barrier.  Without the
//     fold there is a barrier-exit race: the collectives that follow the
//     barrier stagger rank exits, so a fast rank's wave-w+1 decrements could
//     reach a slow rank either before or after its wave-w+1 scan, making
//     membership timing-dependent.  With it, `remaining` at the wave-w scan
//     equals (initial degree - all decrements from waves < w) exactly: the
//     barrier guarantees every wave-(w-1) decrement has arrived by the fold,
//     and no wave-w decrement can be sent until its sender passes the
//     collective the folding rank participates in.
//
// A vertex removed in wave w has at most k not-yet-removed neighbors, and
// every neighbor ordered after it (same wave or later) is not-yet-removed,
// so out-degrees under the (wave, hash, id) order are bounded by the
// degeneracy.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <optional>
#include <string_view>
#include <vector>

#include "comm/communicator.hpp"
#include "comm/distributed_map.hpp"
#include "graph/types.hpp"

namespace tripoll::graph {

/// How the builder assigns ordering ranks (the first `order_key` component).
enum class ordering_policy : std::uint8_t {
  degree,      ///< rank = undirected degree (the paper's <+ order)
  degeneracy,  ///< rank = k-core peel-wave index (Pashanasangi & Seshadhri)
};

[[nodiscard]] constexpr const char* ordering_name(ordering_policy p) noexcept {
  switch (p) {
    case ordering_policy::degree: return "degree";
    case ordering_policy::degeneracy: return "degeneracy";
  }
  return "unknown";
}

/// Parse a CLI-style ordering name; nullopt on anything unrecognized.
[[nodiscard]] inline std::optional<ordering_policy> parse_ordering(
    std::string_view s) noexcept {
  if (s == "degree") return ordering_policy::degree;
  if (s == "degeneracy") return ordering_policy::degeneracy;
  return std::nullopt;
}

/// Per-vertex peeling scratch; embed as `peel_state peel;` in the record type
/// handed to `degeneracy_peel`.
struct peel_state {
  std::uint64_t remaining = 0;  ///< neighbors not yet removed (fold-updated)
  std::uint64_t pending = 0;    ///< decrements parked until the per-wave fold
  std::uint64_t rank = 0;       ///< peel-wave index assigned at removal
  bool removed = false;
};

/// Collective summary of one peeling pass (identical on every rank).
struct degeneracy_stats {
  std::uint64_t degeneracy = 0;  ///< max peel level k that removed a vertex
  std::uint64_t waves = 0;       ///< total synchronized removal waves
  std::uint64_t vertices = 0;    ///< global vertex count peeled
};

namespace ordering_detail {

/// Runs on the owner of a neighbor of a just-removed vertex.  Deliberately
/// touches only `pending`: arrival timing must not influence the `remaining`
/// value the scans read (see the determinism note at the top of this file).
struct peel_decrement_visitor {
  template <typename Record>
  void operator()(const vertex_id& /*v*/, Record& rec) const {
    if (!rec.peel.removed) ++rec.peel.pending;
  }
};

}  // namespace ordering_detail

/// Collective: distributed k-core peeling over `records`.  `for_neighbors`
/// is invoked as `for_neighbors(record, fn)` and must call `fn(u)` once per
/// (unique) neighbor id of that record.  On return, every record's
/// `peel.rank` holds its wave index; ranks are comparable across the whole
/// graph and deterministic for a given edge set.
template <typename Record, typename ForNeighbors>
degeneracy_stats degeneracy_peel(comm::communicator& c,
                                 comm::distributed_map<vertex_id, Record>& records,
                                 ForNeighbors&& for_neighbors) {
  std::vector<vertex_id> alive;
  alive.reserve(records.local_size());
  records.for_all_local([&](const vertex_id& v, Record& rec) {
    std::uint64_t degree = 0;
    for_neighbors(rec, [&](vertex_id) { ++degree; });
    rec.peel = peel_state{degree, 0, 0, false};
    alive.push_back(v);
  });

  degeneracy_stats stats;
  stats.vertices = c.all_reduce_sum<std::uint64_t>(alive.size());
  std::uint64_t global_alive = stats.vertices;
  std::uint64_t wave = 0;
  std::uint64_t level = 0;

  while (global_alive > 0) {
    // Jump the peel level straight to the globally smallest remaining degree
    // (skipping empty levels costs one reduction instead of one per level).
    std::uint64_t local_min = std::numeric_limits<std::uint64_t>::max();
    for (const vertex_id v : alive) {
      local_min = std::min(local_min, records.local_find(v)->peel.remaining);
    }
    level = std::max(level, c.all_reduce_min(local_min));
    stats.degeneracy = std::max(stats.degeneracy, level);

    // Waves at this level until quiescent.
    while (true) {
      // Mark: no communication happens in this scan, so nothing can move
      // `remaining` mid-scan (early decrement arrivals only park in
      // `pending`) -- a vertex joins this wave iff its remaining degree
      // after the previous wave's fold is <= level.
      std::vector<vertex_id> removed_now;
      std::size_t kept = 0;
      for (const vertex_id v : alive) {
        Record& rec = *records.local_find(v);
        if (rec.peel.remaining <= level) {
          rec.peel.removed = true;
          rec.peel.rank = wave;
          removed_now.push_back(v);
        } else {
          alive[kept++] = v;
        }
      }
      alive.resize(kept);
      // Notify: each removed vertex decrements every neighbor exactly once.
      for (const vertex_id v : removed_now) {
        for_neighbors(*records.local_find(v), [&](vertex_id u) {
          records.async_visit_if_exists(u, ordering_detail::peel_decrement_visitor{});
        });
      }
      c.barrier();  // all of this wave's decrements have been parked by now
      // Fold point: the single place `remaining` moves.  No wave-(w+1)
      // decrement can exist yet (its sender is gated behind the all_reduce
      // below, which this rank has not entered), so the fold captures
      // exactly the decrements of waves <= w -- structurally determined.
      for (const vertex_id v : alive) {
        peel_state& st = records.local_find(v)->peel;
        st.remaining -= std::min(st.remaining, st.pending);
        st.pending = 0;
      }
      const auto global_removed = c.all_reduce_sum<std::uint64_t>(removed_now.size());
      if (global_removed == 0) break;
      ++wave;
      global_alive -= global_removed;
      if (global_alive == 0) break;
    }
  }
  stats.waves = wave;
  return stats;
}

}  // namespace tripoll::graph
