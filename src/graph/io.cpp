#include "graph/io.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <vector>

namespace tripoll::graph {

std::shared_ptr<const mapped_file> mapped_file::map(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    throw std::runtime_error("mapped_file: cannot open '" + path +
                             "': " + std::strerror(errno));
  }
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    throw std::runtime_error("mapped_file: fstat '" + path + "': " + err);
  }
  auto out = std::shared_ptr<mapped_file>(new mapped_file());
  out->size_ = static_cast<std::size_t>(st.st_size);
  if (out->size_ == 0) {
    ::close(fd);
    return out;
  }
  void* base = ::mmap(nullptr, out->size_, PROT_READ, MAP_PRIVATE, fd, 0);
  if (base != MAP_FAILED) {
    out->data_ = static_cast<const std::byte*>(base);
    out->mapped_ = true;
    ::close(fd);
    return out;
  }
  // Fallback (exotic filesystems): read the file into owned storage.  The
  // arena views are oblivious to which path provided the bytes.
  void* buf = std::malloc(out->size_);
  if (buf == nullptr) {
    ::close(fd);
    throw std::runtime_error("mapped_file: out of memory reading '" + path + "'");
  }
  std::size_t done = 0;
  while (done < out->size_) {
    const ssize_t got = ::read(fd, static_cast<char*>(buf) + done, out->size_ - done);
    if (got < 0 && errno == EINTR) continue;
    if (got <= 0) {
      std::free(buf);
      ::close(fd);
      throw std::runtime_error("mapped_file: short read on '" + path + "'");
    }
    done += static_cast<std::size_t>(got);
  }
  ::close(fd);
  out->owned_ = buf;
  out->data_ = static_cast<const std::byte*>(buf);
  return out;
}

mapped_file::~mapped_file() {
  if (mapped_ && data_ != nullptr) {
    ::munmap(const_cast<std::byte*>(data_), size_);
  }
  std::free(owned_);
}

std::string snapshot_rank_path(const std::string& prefix, int rank) {
  return prefix + ".r" + std::to_string(rank) + ".tpsnap";
}

namespace {

[[nodiscard]] bool parse_u64(std::string_view token, std::uint64_t& out) {
  const char* first = token.data();
  const char* last = token.data() + token.size();
  const auto [ptr, ec] = std::from_chars(first, last, out);
  return ec == std::errc{} && ptr == last;
}

[[nodiscard]] std::string_view next_token(std::string_view& rest) {
  std::size_t start = 0;
  while (start < rest.size() && (rest[start] == ' ' || rest[start] == '\t')) ++start;
  std::size_t end = start;
  while (end < rest.size() && rest[end] != ' ' && rest[end] != '\t') ++end;
  const auto token = rest.substr(start, end - start);
  rest.remove_prefix(end);
  return token;
}

}  // namespace

std::optional<parsed_edge> parse_edge_line(std::string_view line, bool* malformed) {
  if (malformed != nullptr) *malformed = false;
  // Trim trailing CR (Windows line endings) and leading whitespace.
  while (!line.empty() && (line.back() == '\r' || line.back() == ' ')) {
    line.remove_suffix(1);
  }
  std::string_view rest = line;
  const auto first = next_token(rest);
  if (first.empty() || first.front() == '#' || first.front() == '%') return std::nullopt;

  parsed_edge e;
  if (!parse_u64(first, e.u)) {
    if (malformed != nullptr) *malformed = true;
    return std::nullopt;
  }
  const auto second = next_token(rest);
  if (!parse_u64(second, e.v)) {
    if (malformed != nullptr) *malformed = true;
    return std::nullopt;
  }
  const auto third = next_token(rest);
  if (!third.empty()) {
    std::uint64_t w = 0;
    if (parse_u64(third, w)) {
      e.weight = w;
    } else {
      if (malformed != nullptr) *malformed = true;
      return std::nullopt;
    }
  }
  return e;
}

ingest_stats read_edge_list(const comm::communicator& c, const std::string& path,
                            const std::function<void(const parsed_edge&)>& sink) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    throw std::runtime_error("read_edge_list: cannot open '" + path +
                             "': " + std::strerror(errno));
  }
  std::fseek(f, 0, SEEK_END);
  const auto file_size = static_cast<std::uint64_t>(std::ftell(f));

  const auto rank = static_cast<std::uint64_t>(c.rank());
  const auto nranks = static_cast<std::uint64_t>(c.size());
  std::uint64_t begin = file_size * rank / nranks;
  const std::uint64_t nominal_end = file_size * (rank + 1) / nranks;

  ingest_stats stats;

  // Align the start forward to the next line boundary: the owner of a byte
  // range parses only lines that *start* inside it, so every line is parsed
  // by exactly one rank.  When the previous byte is already a newline, the
  // slice begins exactly at a line start and no alignment is needed.
  if (begin > 0) {
    std::fseek(f, static_cast<long>(begin - 1), SEEK_SET);
    std::uint64_t pos = begin - 1;  // position of the byte just read
    int ch = std::fgetc(f);
    while (ch != EOF && ch != '\n') {
      ch = std::fgetc(f);
      ++pos;
    }
    begin = pos + 1;  // first byte after the newline (== begin when the
                      // previous byte already was one)
  }

  if (begin < file_size) {
    std::fseek(f, static_cast<long>(begin), SEEK_SET);
    std::uint64_t pos = begin;
    std::string line;
    line.reserve(128);
    std::vector<char> buf(1 << 16);
    bool stop = false;
    while (!stop) {
      const std::size_t got = std::fread(buf.data(), 1, buf.size(), f);
      if (got == 0) {
        // A read error must not masquerade as EOF: silently truncating the
        // slice would drop edges from exactly one rank's share.
        if (std::ferror(f) != 0) {
          std::fclose(f);
          throw std::runtime_error("read_edge_list: read error on '" + path + "'");
        }
        break;
      }
      for (std::size_t i = 0; i < got && !stop; ++i) {
        const char ch = buf[i];
        ++pos;
        if (ch != '\n') {
          line.push_back(ch);
          continue;
        }
        // A line belongs to this rank iff it started before nominal_end.
        const std::uint64_t line_start = pos - line.size() - 1;
        if (line_start >= nominal_end) {
          stop = true;
          break;
        }
        ++stats.lines;
        bool malformed = false;
        if (const auto e = parse_edge_line(line, &malformed)) {
          ++stats.edges;
          sink(*e);
        } else if (malformed) {
          ++stats.malformed;
        }
        stats.bytes += line.size() + 1;
        line.clear();
      }
    }
    // Trailing line without newline at EOF.
    if (!stop && !line.empty()) {
      const std::uint64_t line_start = pos - line.size();
      if (line_start < nominal_end) {
        ++stats.lines;
        bool malformed = false;
        if (const auto e = parse_edge_line(line, &malformed)) {
          ++stats.edges;
          sink(*e);
        } else if (malformed) {
          ++stats.malformed;
        }
        stats.bytes += line.size();
      }
    }
  }
  std::fclose(f);
  return stats;
}

edge_list_writer::edge_list_writer(const std::string& path)
    : file_(std::fopen(path.c_str(), "w")) {
  if (file_ == nullptr) {
    throw std::runtime_error("edge_list_writer: cannot open '" + path +
                             "': " + std::strerror(errno));
  }
}

edge_list_writer::~edge_list_writer() {
  if (file_ != nullptr) std::fclose(static_cast<std::FILE*>(file_));
}

void edge_list_writer::write(vertex_id u, vertex_id v) {
  std::fprintf(static_cast<std::FILE*>(file_), "%llu %llu\n",
               static_cast<unsigned long long>(u), static_cast<unsigned long long>(v));
}

void edge_list_writer::write(vertex_id u, vertex_id v, std::uint64_t weight) {
  std::fprintf(static_cast<std::FILE*>(file_), "%llu %llu %llu\n",
               static_cast<unsigned long long>(u), static_cast<unsigned long long>(v),
               static_cast<unsigned long long>(weight));
}

}  // namespace tripoll::graph
