#include "graph/io.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "core/parallel.hpp"

namespace tripoll::graph {

std::shared_ptr<const mapped_file> mapped_file::map(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    throw std::runtime_error("mapped_file: cannot open '" + path +
                             "': " + std::strerror(errno));
  }
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    throw std::runtime_error("mapped_file: fstat '" + path + "': " + err);
  }
  auto out = std::shared_ptr<mapped_file>(new mapped_file());
  out->size_ = static_cast<std::size_t>(st.st_size);
  if (out->size_ == 0) {
    ::close(fd);
    return out;
  }
  void* base = ::mmap(nullptr, out->size_, PROT_READ, MAP_PRIVATE, fd, 0);
  if (base != MAP_FAILED) {
    out->data_ = static_cast<const std::byte*>(base);
    out->mapped_ = true;
    ::close(fd);
    return out;
  }
  // Fallback (exotic filesystems): read the file into owned storage.  The
  // arena views are oblivious to which path provided the bytes.
  void* buf = std::malloc(out->size_);
  if (buf == nullptr) {
    ::close(fd);
    throw std::runtime_error("mapped_file: out of memory reading '" + path + "'");
  }
  std::size_t done = 0;
  while (done < out->size_) {
    const ssize_t got = ::read(fd, static_cast<char*>(buf) + done, out->size_ - done);
    if (got < 0 && errno == EINTR) continue;
    if (got <= 0) {
      std::free(buf);
      ::close(fd);
      throw std::runtime_error("mapped_file: short read on '" + path + "'");
    }
    done += static_cast<std::size_t>(got);
  }
  ::close(fd);
  out->owned_ = buf;
  out->data_ = static_cast<const std::byte*>(buf);
  return out;
}

mapped_file::~mapped_file() {
  if (mapped_ && data_ != nullptr) {
    ::munmap(const_cast<std::byte*>(data_), size_);
  }
  std::free(owned_);
}

std::string snapshot_rank_path(const std::string& prefix, int rank) {
  return prefix + ".r" + std::to_string(rank) + ".tpsnap";
}

namespace {

[[nodiscard]] bool parse_u64(std::string_view token, std::uint64_t& out) {
  const char* first = token.data();
  const char* last = token.data() + token.size();
  const auto [ptr, ec] = std::from_chars(first, last, out);
  return ec == std::errc{} && ptr == last;
}

[[nodiscard]] std::string_view next_token(std::string_view& rest) {
  std::size_t start = 0;
  while (start < rest.size() && (rest[start] == ' ' || rest[start] == '\t')) ++start;
  std::size_t end = start;
  while (end < rest.size() && rest[end] != ' ' && rest[end] != '\t') ++end;
  const auto token = rest.substr(start, end - start);
  rest.remove_prefix(end);
  return token;
}

}  // namespace

std::optional<parsed_edge> parse_edge_line(std::string_view line, bool* malformed) {
  if (malformed != nullptr) *malformed = false;
  // Trim trailing CR (Windows line endings) and leading whitespace.
  while (!line.empty() && (line.back() == '\r' || line.back() == ' ')) {
    line.remove_suffix(1);
  }
  std::string_view rest = line;
  const auto first = next_token(rest);
  if (first.empty() || first.front() == '#' || first.front() == '%') return std::nullopt;

  parsed_edge e;
  if (!parse_u64(first, e.u)) {
    if (malformed != nullptr) *malformed = true;
    return std::nullopt;
  }
  const auto second = next_token(rest);
  if (!parse_u64(second, e.v)) {
    if (malformed != nullptr) *malformed = true;
    return std::nullopt;
  }
  const auto third = next_token(rest);
  if (!third.empty()) {
    std::uint64_t w = 0;
    if (parse_u64(third, w)) {
      e.weight = w;
    } else {
      if (malformed != nullptr) *malformed = true;
      return std::nullopt;
    }
  }
  return e;
}

bool resolve_direct_io(bool requested) {
  if (requested) return true;
  if (const char* env = std::getenv("TRIPOLL_DIRECT_IO")) {
    return env[0] != '\0' && env[0] != '0';
  }
  return false;
}

namespace {

/// Sequential reader over one file.  With `direct` it opens O_DIRECT and
/// reads at kDirectAlign-aligned file offsets into an aligned staging
/// buffer (page-cache bypass); where the filesystem rejects O_DIRECT --
/// at open() or on the first pread() -- it degrades to plain buffered
/// reads of the same bytes.  Each parser thread owns one instance, so no
/// shared file position exists (all reads are pread at explicit offsets).
class file_reader {
 public:
  // O_DIRECT wants the offset, length and buffer address aligned; 4096
  // covers every mainstream block size (512-byte devices accept it too).
  static constexpr std::size_t kDirectAlign = 4096;
  static constexpr std::size_t kBufBytes = 1 << 18;

  file_reader(const std::string& path, bool direct) : path_(path), direct_(direct) {
#if defined(O_DIRECT)
    if (direct_) {
      fd_ = ::open(path.c_str(), O_RDONLY | O_DIRECT);
      if (fd_ < 0) direct_ = false;  // tmpfs & friends: EINVAL/ENOTSUP
    }
#else
    direct_ = false;
#endif
    if (fd_ < 0) {
      fd_ = ::open(path.c_str(), O_RDONLY);
      if (fd_ < 0) {
        throw std::runtime_error("read_edge_list: cannot open '" + path +
                                 "': " + std::strerror(errno));
      }
    }
    if (::posix_memalign(&buf_, kDirectAlign, kBufBytes) != 0) {
      ::close(fd_);
      throw std::runtime_error("read_edge_list: out of memory reading '" + path + "'");
    }
  }

  ~file_reader() {
    std::free(buf_);
    if (fd_ >= 0) ::close(fd_);
  }

  file_reader(const file_reader&) = delete;
  file_reader& operator=(const file_reader&) = delete;

  void seek(std::uint64_t offset) noexcept {
    offset_ = offset;
    avail_ = 0;
    consumed_ = 0;
  }

  /// Copy up to `n` bytes at the current offset into dst; returns the count
  /// (0 only at EOF).  Throws std::runtime_error on a read error -- an
  /// error must never masquerade as EOF, or one thread's share of the
  /// lines would silently vanish.
  std::size_t read(void* dst, std::size_t n) {
    if (consumed_ == avail_ && !refill()) return 0;
    const std::size_t take = std::min(n, avail_ - consumed_);
    std::memcpy(dst, static_cast<const char*>(buf_) + consumed_, take);
    consumed_ += take;
    offset_ += take;
    return take;
  }

 private:
  [[nodiscard]] bool refill() {
    for (;;) {
      const std::uint64_t phys = direct_ ? offset_ / kDirectAlign * kDirectAlign : offset_;
      const ssize_t got = ::pread(fd_, buf_, kBufBytes, static_cast<off_t>(phys));
      if (got < 0) {
        if (errno == EINTR) continue;
        if (direct_ && errno == EINVAL) {
          // Filesystems that accept O_DIRECT at open() but reject the read
          // geometry: drop to buffered reads for the rest of this slice.
          direct_ = false;
          const int plain = ::open(path_.c_str(), O_RDONLY);
          if (plain >= 0) {
            ::close(fd_);
            fd_ = plain;
            continue;
          }
        }
        throw std::runtime_error("read_edge_list: read error on '" + path_ + "'");
      }
      const std::uint64_t skip = offset_ - phys;
      if (static_cast<std::uint64_t>(got) <= skip) return false;  // EOF
      consumed_ = static_cast<std::size_t>(skip);
      avail_ = static_cast<std::size_t>(got);
      return true;
    }
  }

  std::string path_;
  bool direct_ = false;
  int fd_ = -1;
  void* buf_ = nullptr;
  std::uint64_t offset_ = 0;   ///< logical file offset of the next read()
  std::size_t avail_ = 0;      ///< valid bytes in buf_
  std::size_t consumed_ = 0;   ///< bytes of buf_ already handed out
};

/// Parse the lines STARTING in [nominal_begin, nominal_end), the ownership
/// rule shared by ranks and threads: the start is aligned forward to the
/// next line boundary, the final line runs past nominal_end to wherever it
/// ends.  This is the one parse loop behind both the serial and the
/// parallel ingest paths, so their per-line behavior cannot drift.
template <typename EdgeSink>
ingest_stats parse_slice(const std::string& path, bool direct, std::uint64_t nominal_begin,
                         std::uint64_t nominal_end, const EdgeSink& sink) {
  ingest_stats stats;
  file_reader src(path, direct);

  // Align the start forward to the next line boundary: the owner of a byte
  // range parses only lines that *start* inside it, so every line is parsed
  // by exactly one owner.  When the previous byte is already a newline, the
  // slice begins exactly at a line start and no alignment is needed.
  std::uint64_t begin = nominal_begin;
  if (begin > 0) {
    src.seek(begin - 1);
    std::uint64_t pos = begin - 1;  // position of the byte just read
    char ch = 0;
    std::size_t got = src.read(&ch, 1);
    while (got == 1 && ch != '\n') {
      got = src.read(&ch, 1);
      ++pos;
    }
    begin = pos + 1;  // first byte after the newline (== begin when the
                      // previous byte already was one)
  }

  src.seek(begin);
  std::uint64_t pos = begin;
  std::string line;
  line.reserve(128);
  std::vector<char> buf(1 << 16);
  bool stop = false;
  while (!stop) {
    const std::size_t got = src.read(buf.data(), buf.size());
    if (got == 0) break;
    for (std::size_t i = 0; i < got && !stop; ++i) {
      const char ch = buf[i];
      ++pos;
      if (ch != '\n') {
        line.push_back(ch);
        continue;
      }
      // A line belongs to this owner iff it started before nominal_end.
      const std::uint64_t line_start = pos - line.size() - 1;
      if (line_start >= nominal_end) {
        stop = true;
        break;
      }
      ++stats.lines;
      bool malformed = false;
      if (const auto e = parse_edge_line(line, &malformed)) {
        ++stats.edges;
        sink(*e);
      } else if (malformed) {
        ++stats.malformed;
      }
      stats.bytes += line.size() + 1;
      line.clear();
    }
  }
  // Trailing line without newline at EOF.
  if (!stop && !line.empty()) {
    const std::uint64_t line_start = pos - line.size();
    if (line_start < nominal_end) {
      ++stats.lines;
      bool malformed = false;
      if (const auto e = parse_edge_line(line, &malformed)) {
        ++stats.edges;
        sink(*e);
      } else if (malformed) {
        ++stats.malformed;
      }
      stats.bytes += line.size();
    }
  }
  return stats;
}

}  // namespace

ingest_stats read_edge_list(const comm::communicator& c, const std::string& path,
                            const std::function<void(const parsed_edge&)>& sink) {
  return read_edge_list(c, path, sink, ingest_options{1, false});
}

ingest_stats read_edge_list(const comm::communicator& c, const std::string& path,
                            const std::function<void(const parsed_edge&)>& sink,
                            const ingest_options& opts) {
  struct stat st {};
  if (::stat(path.c_str(), &st) != 0) {
    throw std::runtime_error("read_edge_list: cannot open '" + path +
                             "': " + std::strerror(errno));
  }
  const auto file_size = static_cast<std::uint64_t>(st.st_size);
  const bool direct = resolve_direct_io(opts.direct_io);

  const auto rank = static_cast<std::uint64_t>(c.rank());
  const auto nranks = static_cast<std::uint64_t>(c.size());
  const std::uint64_t r_begin = file_size * rank / nranks;
  const std::uint64_t r_end = file_size * (rank + 1) / nranks;

  const int threads = core::resolve_threads(opts.threads);
  if (threads == 1 || r_end - r_begin < 2) {
    return parse_slice(path, direct, r_begin, r_end, sink);
  }

  // Split this rank's nominal byte range over the threads with the same
  // line-ownership rule ranks use; each thread parses its sub-slice into a
  // private shard.  Draining the shards in thread index order reproduces
  // the serial edge sequence bit for bit (lines are owned by ascending
  // start offset in both decompositions).
  struct shard {
    std::vector<parsed_edge> edges;
    ingest_stats stats;
  };
  const auto T = static_cast<std::uint64_t>(threads);
  const std::uint64_t span = r_end - r_begin;
  std::vector<shard> shards(static_cast<std::size_t>(threads));
  core::fork_join(threads, [&](int w) {
    const auto tw = static_cast<std::uint64_t>(w);
    const std::uint64_t t_begin = r_begin + span * tw / T;
    const std::uint64_t t_end = r_begin + span * (tw + 1) / T;
    if (t_begin == t_end) return;
    shard& out = shards[static_cast<std::size_t>(w)];
    out.stats = parse_slice(path, direct, t_begin, t_end,
                            [&out](const parsed_edge& e) { out.edges.push_back(e); });
  });

  ingest_stats total;
  for (const auto& sh : shards) {
    for (const auto& e : sh.edges) sink(e);
    total.lines += sh.stats.lines;
    total.edges += sh.stats.edges;
    total.malformed += sh.stats.malformed;
    total.bytes += sh.stats.bytes;
  }
  return total;
}

edge_list_writer::edge_list_writer(const std::string& path)
    : file_(std::fopen(path.c_str(), "w")) {
  if (file_ == nullptr) {
    throw std::runtime_error("edge_list_writer: cannot open '" + path +
                             "': " + std::strerror(errno));
  }
}

edge_list_writer::~edge_list_writer() {
  if (file_ != nullptr) std::fclose(static_cast<std::FILE*>(file_));
}

void edge_list_writer::write(vertex_id u, vertex_id v) {
  std::fprintf(static_cast<std::FILE*>(file_), "%llu %llu\n",
               static_cast<unsigned long long>(u), static_cast<unsigned long long>(v));
}

void edge_list_writer::write(vertex_id u, vertex_id v, std::uint64_t weight) {
  std::fprintf(static_cast<std::FILE*>(file_), "%llu %llu %llu\n",
               static_cast<unsigned long long>(u), static_cast<unsigned long long>(v),
               static_cast<unsigned long long>(weight));
}

}  // namespace tripoll::graph
