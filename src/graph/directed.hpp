// directed.hpp -- directed-input support (paper Sec. 4, second paragraph).
//
// TriPoll's engine operates on the symmetrized DODGr, so directed inputs
// are handled by remembering, per undirected edge, which original
// direction(s) existed: "each directed edge in the augmented graph may need
// an additional two bits of storage to give the original directionality
// (as-seen, reversed, or bidirectional) for use in the user callback".
//
// `directed_meta<EM>` carries those two bits next to the user's edge
// metadata; `directed_graph_builder` sets them from the contributed edge
// orientation and merges them with bitwise-or when both directions (or
// duplicates) arrive.
#pragma once

#include <cstdint>

#include "graph/builder.hpp"
#include "graph/dodgr.hpp"
#include "graph/types.hpp"

namespace tripoll::graph {

/// Original direction of an undirected DODGr edge relative to a (from, to)
/// query orientation.
enum class edge_direction : std::uint8_t {
  as_seen = 1,        ///< the input contained from -> to only
  reversed = 2,       ///< the input contained to -> from only
  bidirectional = 3,  ///< both directions appeared
};

/// Edge metadata wrapper adding the paper's two directionality bits.
/// Bit 0: low-id -> high-id seen; bit 1: high-id -> low-id seen.
template <typename EdgeMeta>
struct directed_meta {
  EdgeMeta meta{};
  std::uint8_t flags = 0;

  /// Direction of this edge when traversed from `from` to `to` (the two
  /// endpoint ids; which is which determines the interpretation).
  [[nodiscard]] edge_direction direction(vertex_id from, vertex_id to) const noexcept {
    const bool low_to_high = (flags & 1u) != 0;
    const bool high_to_low = (flags & 2u) != 0;
    const bool query_is_low_to_high = from < to;
    const bool fwd = query_is_low_to_high ? low_to_high : high_to_low;
    const bool bwd = query_is_low_to_high ? high_to_low : low_to_high;
    if (fwd && bwd) return edge_direction::bidirectional;
    return fwd ? edge_direction::as_seen : edge_direction::reversed;
  }

  template <typename Archive>
  void serialize(Archive& ar) {
    ar(meta, flags);
  }

  friend bool operator==(const directed_meta&, const directed_meta&) = default;
};

namespace merge {

/// Merge policy for directed_meta: directionality bits accumulate with
/// bitwise-or; the inner policy merges the user metadata.
template <typename InnerPolicy>
struct directed {
  template <typename EM>
  void operator()(directed_meta<EM>& existing, const directed_meta<EM>& incoming) const {
    existing.flags = static_cast<std::uint8_t>(existing.flags | incoming.flags);
    InnerPolicy{}(existing.meta, incoming.meta);
  }
};

}  // namespace merge

/// Graph type for directed inputs.
template <typename VertexMeta, typename EdgeMeta>
using directed_dodgr = dodgr<VertexMeta, directed_meta<EdgeMeta>>;

/// Builder accepting *directed* edges; produces a `directed_dodgr` whose
/// edge metadata records original directionality.
template <typename VertexMeta, typename EdgeMeta,
          typename InnerMergePolicy = merge::keep_existing>
class directed_graph_builder {
 public:
  using graph_type = directed_dodgr<VertexMeta, EdgeMeta>;

  explicit directed_graph_builder(comm::communicator& c) : base_(c) {}

  /// Contribute the directed edge u -> v.
  void add_directed_edge(vertex_id u, vertex_id v, const EdgeMeta& meta = EdgeMeta{}) {
    directed_meta<EdgeMeta> wrapped;
    wrapped.meta = meta;
    wrapped.flags = u < v ? std::uint8_t{1} : std::uint8_t{2};
    base_.add_edge(u, v, wrapped);
  }

  void add_vertex_meta(vertex_id v, const VertexMeta& meta) {
    base_.add_vertex_meta(v, meta);
  }

  [[nodiscard]] std::uint64_t local_dropped_self_loops() const noexcept {
    return base_.local_dropped_self_loops();
  }

  /// Collective; see graph_builder::build_into.
  void build_into(graph_type& g) { base_.build_into(g); }

 private:
  graph_builder<VertexMeta, directed_meta<EdgeMeta>, merge::directed<InnerMergePolicy>>
      base_;
};

}  // namespace tripoll::graph
